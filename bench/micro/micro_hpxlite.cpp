// Microbenchmarks of the hpxlite runtime primitives the paper's
// comparison hinges on: future creation/continuation cost, async task
// spawn, dataflow node activation, and the fork-join team's barrier.
// These are the measured counterparts of the simulator's overhead_model
// constants.
#include <benchmark/benchmark.h>

#include <atomic>
#include <vector>

#include "hpxlite/hpxlite.hpp"

namespace {

void BM_FutureMakeReady(benchmark::State& state) {
  for (auto _ : state) {
    auto f = hpxlite::make_ready_future(42);
    benchmark::DoNotOptimize(f.get());
  }
}
BENCHMARK(BM_FutureMakeReady);

void BM_PromiseSetGet(benchmark::State& state) {
  for (auto _ : state) {
    hpxlite::promise<int> p;
    auto f = p.get_future();
    p.set_value(7);
    benchmark::DoNotOptimize(f.get());
  }
}
BENCHMARK(BM_PromiseSetGet);

void BM_FutureThenChain(benchmark::State& state) {
  hpxlite::runtime_guard guard(2);
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto f = hpxlite::make_ready_future(0);
    for (int i = 0; i < depth; ++i) {
      f = f.then([](hpxlite::future<int>&& r) { return r.get() + 1; });
    }
    benchmark::DoNotOptimize(f.get());
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_FutureThenChain)->Arg(1)->Arg(8)->Arg(64);

void BM_AsyncSpawnAndGet(benchmark::State& state) {
  hpxlite::runtime_guard guard(2);
  for (auto _ : state) {
    auto f = hpxlite::async([] { return 1; });
    benchmark::DoNotOptimize(f.get());
  }
}
BENCHMARK(BM_AsyncSpawnAndGet);

void BM_DataflowNode(benchmark::State& state) {
  hpxlite::runtime_guard guard(2);
  for (auto _ : state) {
    auto a = hpxlite::make_ready_future(1);
    auto b = hpxlite::make_ready_future(2);
    auto f = hpxlite::dataflow(
        hpxlite::unwrapping([](int x, int y) { return x + y; }),
        std::move(a), std::move(b));
    benchmark::DoNotOptimize(f.get());
  }
}
BENCHMARK(BM_DataflowNode);

void BM_SchedulerSubmitDrain(benchmark::State& state) {
  hpxlite::runtime_guard guard(2);
  const int tasks = static_cast<int>(state.range(0));
  std::atomic<int> count{0};
  for (auto _ : state) {
    count = 0;
    for (int i = 0; i < tasks; ++i) {
      hpxlite::runtime::get().submit(
          [&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    hpxlite::runtime::get().wait_idle();
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_SchedulerSubmitDrain)->Arg(64)->Arg(1024);

void BM_ForEachParallel(benchmark::State& state) {
  hpxlite::runtime_guard guard(2);
  const int n = static_cast<int>(state.range(0));
  std::vector<double> data(static_cast<std::size_t>(n), 1.0);
  for (auto _ : state) {
    hpxlite::parallel::for_each(
        hpxlite::par.with(hpxlite::static_chunk_size(256)), data.begin(),
        data.end(), [](double& x) { x *= 1.000001; });
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ForEachParallel)->Arg(1024)->Arg(65536);

void BM_ForEachTaskPolicy(benchmark::State& state) {
  hpxlite::runtime_guard guard(2);
  const int n = static_cast<int>(state.range(0));
  std::vector<double> data(static_cast<std::size_t>(n), 1.0);
  for (auto _ : state) {
    auto f = hpxlite::parallel::for_each(
        hpxlite::par(hpxlite::task).with(hpxlite::static_chunk_size(256)),
        data.begin(), data.end(), [](double& x) { x *= 1.000001; });
    f.get();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ForEachTaskPolicy)->Arg(65536);

// The cost the paper blames: one full fork-join episode (implicit
// global barrier) on the OpenMP-style team.
void BM_ForkJoinBarrier(benchmark::State& state) {
  hpxlite::fork_join_team team(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    team.parallel_for(0, [](std::size_t, std::size_t) {});
  }
}
BENCHMARK(BM_ForkJoinBarrier)->Arg(1)->Arg(2)->Arg(4);

void BM_SpinlockUncontended(benchmark::State& state) {
  hpxlite::spinlock lock;
  for (auto _ : state) {
    lock.lock();
    lock.unlock();
  }
}
BENCHMARK(BM_SpinlockUncontended);

}  // namespace

BENCHMARK_MAIN();
