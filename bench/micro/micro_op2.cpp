// Microbenchmarks of the OP2 layer: plan construction (blocking +
// greedy colouring), plan-cache hits, and op_par_loop dispatch cost per
// backend — the "loop_launch" overhead the simulator charges the
// synchronous drivers for.
#include <benchmark/benchmark.h>

#include <numeric>
#include <vector>

#include "airfoil/airfoil.hpp"
#include "op2/op2.hpp"

namespace {

struct chain_mesh {
  op2::op_set edges;
  op2::op_set nodes;
  op2::op_map e2n;
};

chain_mesh make_chain(int nedge) {
  chain_mesh m;
  m.edges = op2::op_decl_set(nedge, "edges");
  m.nodes = op2::op_decl_set(nedge + 1, "nodes");
  std::vector<int> table;
  table.reserve(static_cast<std::size_t>(nedge) * 2);
  for (int e = 0; e < nedge; ++e) {
    table.push_back(e);
    table.push_back(e + 1);
  }
  m.e2n = op2::op_decl_map(m.edges, m.nodes, 2, table, "e2n");
  return m;
}

void BM_PlanBuildDirect(benchmark::State& state) {
  auto s = op2::op_decl_set(static_cast<int>(state.range(0)), "s");
  for (auto _ : state) {
    benchmark::DoNotOptimize(op2::build_plan(s, 128, {}));
  }
}
BENCHMARK(BM_PlanBuildDirect)->Arg(10000)->Arg(100000);

void BM_PlanBuildColoured(benchmark::State& state) {
  const auto m = make_chain(static_cast<int>(state.range(0)));
  const std::vector<op2::plan_indirection> conflicts{
      {m.e2n, 0, m.nodes.id()}, {m.e2n, 1, m.nodes.id()}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(op2::build_plan(m.edges, 128, conflicts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PlanBuildColoured)->Arg(10000)->Arg(100000);

void BM_PlanCacheHit(benchmark::State& state) {
  op2::clear_plan_cache();
  auto s = op2::op_decl_set(100000, "s");
  (void)op2::get_plan(s, 128, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(op2::get_plan(s, 128, {}));
  }
}
BENCHMARK(BM_PlanCacheHit);

void BM_ParLoopDispatchSeq(benchmark::State& state) {
  op2::init({op2::backend::seq, 1, 128, 0});
  auto s = op2::op_decl_set(static_cast<int>(state.range(0)), "s");
  auto a = op2::op_decl_dat<double>(s, 1, "double", "a");
  auto b = op2::op_decl_dat<double>(s, 1, "double", "b");
  for (auto _ : state) {
    op2::op_par_loop([](const double* x, double* y) { y[0] = x[0]; }, "copy",
                     s, op2::op_arg_dat<double>(a, -1, op2::OP_ID, 1,
                                                op2::OP_READ),
                     op2::op_arg_dat<double>(b, -1, op2::OP_ID, 1,
                                             op2::OP_WRITE));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  op2::finalize();
}
BENCHMARK(BM_ParLoopDispatchSeq)->Arg(16)->Arg(4096);

void BM_ParLoopForkJoin(benchmark::State& state) {
  op2::init({op2::backend::forkjoin, 2, 128, 0});
  auto s = op2::op_decl_set(4096, "s");
  auto a = op2::op_decl_dat<double>(s, 1, "double", "a");
  auto b = op2::op_decl_dat<double>(s, 1, "double", "b");
  for (auto _ : state) {
    op2::op_par_loop([](const double* x, double* y) { y[0] = x[0]; }, "copy",
                     s, op2::op_arg_dat<double>(a, -1, op2::OP_ID, 1,
                                                op2::OP_READ),
                     op2::op_arg_dat<double>(b, -1, op2::OP_ID, 1,
                                             op2::OP_WRITE));
  }
  state.SetItemsProcessed(state.iterations() * 4096);
  op2::finalize();
}
BENCHMARK(BM_ParLoopForkJoin);

void BM_ParLoopHpxForeach(benchmark::State& state) {
  op2::init({op2::backend::hpx_foreach, 2, 128, 16});
  auto s = op2::op_decl_set(4096, "s");
  auto a = op2::op_decl_dat<double>(s, 1, "double", "a");
  auto b = op2::op_decl_dat<double>(s, 1, "double", "b");
  for (auto _ : state) {
    op2::op_par_loop([](const double* x, double* y) { y[0] = x[0]; }, "copy",
                     s, op2::op_arg_dat<double>(a, -1, op2::OP_ID, 1,
                                                op2::OP_READ),
                     op2::op_arg_dat<double>(b, -1, op2::OP_ID, 1,
                                             op2::OP_WRITE));
  }
  state.SetItemsProcessed(state.iterations() * 4096);
  op2::finalize();
}
BENCHMARK(BM_ParLoopHpxForeach);

void BM_ParLoopIndirectInc(benchmark::State& state) {
  op2::init({op2::backend::forkjoin, 2, 128, 0});
  const auto m = make_chain(8192);
  auto degree = op2::op_decl_dat<double>(m.nodes, 1, "double", "degree");
  for (auto _ : state) {
    op2::op_par_loop(
        [](double* x, double* y) {
          x[0] += 1.0;
          y[0] += 1.0;
        },
        "count", m.edges,
        op2::op_arg_dat<double>(degree, 0, m.e2n, 1, op2::OP_INC),
        op2::op_arg_dat<double>(degree, 1, m.e2n, 1, op2::OP_INC));
  }
  state.SetItemsProcessed(state.iterations() * 8192);
  op2::finalize();
}
BENCHMARK(BM_ParLoopIndirectInc);

void BM_AirfoilIteration(benchmark::State& state) {
  op2::init({op2::backend::seq, 1, 128, 0});
  auto s = airfoil::make_sim(airfoil::generate_mesh({96, 24}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(airfoil::run_classic(s, 1));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(s.cells.size()));
  op2::finalize();
}
BENCHMARK(BM_AirfoilIteration);

}  // namespace

BENCHMARK_MAIN();
