// Launch-path cost microbenchmark and regression gate.
//
// Measures, on the seq backend, the cost of op_par_loop's two launch
// paths:
//   capture — first invocation at a call site (validation, plan
//             lookup, binding, write-set scan, reduction-scratch
//             allocation, closure erasure)
//   replay  — repeat invocation of a prepared descriptor
// and *gates* the two properties the prepared-loop pipeline promises
// for a steady-state synchronous replay:
//   1. zero heap allocations (counted by interposing operator new)
//   2. zero plan-cache lookups (op2::plan_cache_lookups())
//
// A third arm gates the continuation core's chain-BUILDING path: after
// one warm-up round to prime the operation-state block pool,
//   3. a `.then` chain of small continuations builds with ZERO heap
//      allocations per node,
//   4. a dataflow chain of small nodes likewise builds with ZERO,
//   5. oversize continuations (captures larger than a pool block) cost
//      at most ONE allocation per node.
//
// A fourth arm re-runs the replay gate on the hpx_shard backend: the
// same loops issued inside an active shard_scope (clamped window,
// completed exchange fence, conflict-free staged write — the shape
// every loop of the sharded Airfoil driver has) must also replay with
// zero heap allocations and zero plan-cache lookups once warm.
//
// scripts/check.sh runs this binary; a non-zero exit fails the gate.
// Output is human-readable ns/loop so regressions are quantifiable.
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <utility>
#include <vector>

#include "hpxlite/dataflow.hpp"
#include "hpxlite/future.hpp"
#include "op2/op2.hpp"
#include "op2/shard.hpp"

// --- operator new interposition ---------------------------------------
// One process-wide counter, bumped by every allocation on any thread.
// Zero-initialised static storage, so counting is valid from the very
// first allocation (even before main).

namespace {
std::atomic<std::uint64_t> g_allocs;

std::uint64_t alloc_count() {
  return g_allocs.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) {
    return p;
  }
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

// --- the measured loops -----------------------------------------------

namespace {

void sum_kernel(const double* x, double* acc) { acc[0] += x[0]; }

void edge_kernel(const double* a, double* b) { b[0] += 0.5 * a[0]; }

// The sharded driver's staged-increment shape: indirect reads, direct
// per-edge write — conflict-free, so the hpx_shard executor splits it
// into interior/boundary spans around the exchange fence.
void stage_kernel(const double* a, const double* b, double* st) {
  st[0] = a[0] - b[0];
}

constexpr int kCells = 1024;
constexpr int kReplays = 2000;
constexpr int kCaptures = 64;

double now_ns() {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct mesh {
  op2::op_set cells;
  op2::op_set edges;
  op2::op_map pedge;
  op2::op_dat p_x;
  op2::op_dat p_y;
  op2::op_dat p_stage;
};

mesh make_mesh() {
  mesh m;
  m.cells = op2::op_decl_set(kCells, "cells");
  m.edges = op2::op_decl_set(kCells, "edges");
  std::vector<int> e2c(static_cast<std::size_t>(kCells) * 2);
  for (int i = 0; i < kCells; ++i) {
    e2c[static_cast<std::size_t>(2 * i)] = i;
    e2c[static_cast<std::size_t>(2 * i) + 1] = (i + 1) % kCells;
  }
  m.pedge = op2::op_decl_map(m.edges, m.cells, 2,
                             std::span<const int>(e2c), "pedge");
  std::vector<double> x(kCells, 1.0);
  m.p_x = op2::op_decl_dat<double>(m.cells, 1, "double",
                                   std::span<const double>(x), "p_x");
  m.p_y = op2::op_decl_dat<double>(m.cells, 1, "double", "p_y");
  m.p_stage = op2::op_decl_dat<double>(m.edges, 1, "double", "p_stage");
  return m;
}

/// One invocation of the measured loop pair: a direct loop with a
/// global reduction (exercises the per-worker reduction slots) and an
/// indirect coloured loop (exercises the plan path).
void run_pair(op2::loop_handle& hd, op2::loop_handle& hi, mesh& m,
              double* total) {
  op2::op_par_loop(hd, sum_kernel, "lo_sum", m.cells,
                   op2::op_arg_dat<double>(m.p_x, -1, op2::OP_ID, 1,
                                           op2::OP_READ),
                   op2::op_arg_gbl<double>(total, 1, op2::OP_INC));
  op2::op_par_loop(hi, edge_kernel, "lo_edge", m.edges,
                   op2::op_arg_dat<double>(m.p_x, 0, m.pedge, 1,
                                           op2::OP_READ),
                   op2::op_arg_dat<double>(m.p_y, 1, m.pedge, 1,
                                           op2::OP_INC));
}

/// One invocation of the shard-arm loop pair: the direct reduction
/// (clamped to the shard window) and the staged conflict-free edge
/// loop (split into interior/boundary spans around the fence).
void run_shard_pair(op2::loop_handle& hd, op2::loop_handle& hi, mesh& m,
                    double* total) {
  op2::op_par_loop(hd, sum_kernel, "lo_sum@s0", m.cells,
                   op2::op_arg_dat<double>(m.p_x, -1, op2::OP_ID, 1,
                                           op2::OP_READ),
                   op2::op_arg_gbl<double>(total, 1, op2::OP_INC));
  op2::op_par_loop(hi, stage_kernel, "lo_stage@s0", m.edges,
                   op2::op_arg_dat<double>(m.p_x, 0, m.pedge, 1,
                                           op2::OP_READ),
                   op2::op_arg_dat<double>(m.p_x, 1, m.pedge, 1,
                                           op2::OP_READ),
                   op2::op_arg_dat<double>(m.p_stage, -1, op2::OP_ID, 1,
                                           op2::OP_WRITE));
}

/// One invocation of the fused-arm launch: the direct reduction and a
/// direct scale loop fused into ONE traversal (the PR-9 fused prepared
/// path) — its replay must stay allocation-free like the unfused one.
void run_fused(op2::fused_handle& h, mesh& m, double* total) {
  op2::op_par_loop_fused(
      h, m.cells,
      op2::fuse_loop(sum_kernel, "lo_fsum",
                     op2::op_arg_dat<double>(m.p_x, -1, op2::OP_ID, 1,
                                             op2::OP_READ),
                     op2::op_arg_gbl<double>(total, 1, op2::OP_INC)),
      op2::fuse_loop(edge_kernel, "lo_fscale",
                     op2::op_arg_dat<double>(m.p_x, -1, op2::OP_ID, 1,
                                             op2::OP_READ),
                     op2::op_arg_dat<double>(m.p_y, -1, op2::OP_ID, 1,
                                             op2::OP_RW)));
}

int fail(const char* what, std::uint64_t observed) {
  std::fprintf(stderr,
               "launch_overhead: GATE FAILED: %s (observed %llu, "
               "expected 0)\n",
               what, static_cast<unsigned long long>(observed));
  return 1;
}

// --- chain-building arm ------------------------------------------------
// Builds a `.then` (and a dataflow) chain of kChainLen nodes per round,
// then resolves it.  Only the BUILD segment is counted: the window from
// the first then()/dataflow() to the last, before the promise is set.
// One untimed warm-up round primes the operation-state block pool.

constexpr int kChainLen = 256;
constexpr int kChainRounds = 64;

struct chain_result {
  std::uint64_t build_allocs = 0;  // operator new calls while building
  double build_ns_per_node = 0.0;
  int final_value = 0;
};

chain_result run_then_chain(int rounds) {
  chain_result r;
  double ns = 0.0;
  for (int round = 0; round < rounds; ++round) {
    hpxlite::promise<int> p;
    hpxlite::future<int> f = p.get_future();
    const std::uint64_t a0 = alloc_count();
    const double t0 = now_ns();
    for (int i = 0; i < kChainLen; ++i) {
      f = f.then([](hpxlite::future<int>&& in) { return in.get() + 1; });
    }
    ns += now_ns() - t0;
    r.build_allocs += alloc_count() - a0;
    p.set_value(0);
    r.final_value = f.get();
  }
  r.build_ns_per_node = ns / (static_cast<double>(rounds) * kChainLen);
  return r;
}

chain_result run_dataflow_chain(int rounds) {
  chain_result r;
  double ns = 0.0;
  for (int round = 0; round < rounds; ++round) {
    hpxlite::promise<int> p;
    hpxlite::future<int> f = p.get_future();
    const std::uint64_t a0 = alloc_count();
    const double t0 = now_ns();
    for (int i = 0; i < kChainLen; ++i) {
      f = hpxlite::dataflow(hpxlite::launch::async,
                            hpxlite::unwrapping([](int v) { return v + 1; }),
                            std::move(f));
    }
    ns += now_ns() - t0;
    r.build_allocs += alloc_count() - a0;
    p.set_value(0);
    r.final_value = f.get();
  }
  r.build_ns_per_node = ns / (static_cast<double>(rounds) * kChainLen);
  return r;
}

// Continuations whose capture exceeds a pool block fall back to a
// single operator new per node — the "≤1 alloc for general
// continuations" half of the gate.
chain_result run_oversize_chain(int rounds) {
  chain_result r;
  double ns = 0.0;
  for (int round = 0; round < rounds; ++round) {
    hpxlite::promise<int> p;
    hpxlite::future<int> f = p.get_future();
    const std::uint64_t a0 = alloc_count();
    const double t0 = now_ns();
    for (int i = 0; i < kChainLen; ++i) {
      std::array<char, 2 * hpxlite::op_state_block_size> ballast{};
      ballast[0] = static_cast<char>(1);
      f = f.then([ballast](hpxlite::future<int>&& in) {
        return in.get() + static_cast<int>(ballast[0]);
      });
    }
    ns += now_ns() - t0;
    r.build_allocs += alloc_count() - a0;
    p.set_value(0);
    r.final_value = f.get();
  }
  r.build_ns_per_node = ns / (static_cast<double>(rounds) * kChainLen);
  return r;
}

}  // namespace

int main() {
  op2::init(op2::make_config("seq", 1));
  op2::profiling::set_alloc_counter(&alloc_count);

  static op2::loop_handle h_direct;
  static op2::loop_handle h_indirect;
  mesh m = make_mesh();
  double total = 0.0;

  // Warm-up: the first invocation captures both descriptors.
  run_pair(h_direct, h_indirect, m, &total);

  // --- steady-state replay: timed AND gated ---------------------------
  const std::uint64_t allocs_before = alloc_count();
  const std::uint64_t lookups_before = op2::plan_cache_lookups();
  const double t0 = now_ns();
  for (int i = 0; i < kReplays; ++i) {
    run_pair(h_direct, h_indirect, m, &total);
  }
  const double t1 = now_ns();
  const std::uint64_t replay_allocs = alloc_count() - allocs_before;
  const std::uint64_t replay_lookups =
      op2::plan_cache_lookups() - lookups_before;
  const double replay_ns = (t1 - t0) / (2.0 * kReplays);

  // --- capture: fresh dats per round force a full rebuild -------------
  double capture_ns_total = 0.0;
  for (int i = 0; i < kCaptures; ++i) {
    mesh fresh = make_mesh();
    const double c0 = now_ns();
    run_pair(h_direct, h_indirect, fresh, &total);
    capture_ns_total += now_ns() - c0;
  }
  const double capture_ns = capture_ns_total / (2.0 * kCaptures);

  std::printf("launch_overhead (seq backend, %d cells, block %d)\n",
              kCells, op2::current_config().block_size);
  std::printf("  %-28s %12.0f ns/loop\n", "capture (first invocation)",
              capture_ns);
  std::printf("  %-28s %12.0f ns/loop\n", "replay (steady state)",
              replay_ns);
  std::printf("  %-28s %12.2f x\n", "capture / replay",
              replay_ns > 0.0 ? capture_ns / replay_ns : 0.0);
  std::printf("  %-28s %12llu\n", "replay heap allocations",
              static_cast<unsigned long long>(replay_allocs));
  std::printf("  %-28s %12llu\n", "replay plan-cache lookups",
              static_cast<unsigned long long>(replay_lookups));

  // --- fused replay: timed AND gated ----------------------------------
  // Two direct loops fused into one launch: after the capture, every
  // repeat call must rebind + interleave with zero heap allocations
  // and zero plan-cache lookups, exactly like the unfused replay.
  static op2::fused_handle h_fused;
  double fused_total = 0.0;
  run_fused(h_fused, m, &fused_total);  // warm-up: captures the group
  const std::uint64_t fa0 = alloc_count();
  const std::uint64_t fl0 = op2::plan_cache_lookups();
  const double f0 = now_ns();
  for (int i = 0; i < kReplays; ++i) {
    run_fused(h_fused, m, &fused_total);
  }
  const double fused_ns = (now_ns() - f0) / kReplays;
  const std::uint64_t fused_allocs = alloc_count() - fa0;
  const std::uint64_t fused_lookups = op2::plan_cache_lookups() - fl0;
  std::printf("  %-28s %12.0f ns/launch (2 member loops)\n",
              "fused replay (steady state)", fused_ns);
  std::printf("  %-28s %12llu\n", "fused replay heap allocations",
              static_cast<unsigned long long>(fused_allocs));
  std::printf("  %-28s %12llu\n", "fused replay plan lookups",
              static_cast<unsigned long long>(fused_lookups));

  // --- chain building: continuation-core build-path cost --------------
  // Warm-up primes the block pool (fresh blocks allocate); the measured
  // rounds must then build nodes entirely from recycled blocks.
  (void)run_then_chain(1);
  (void)run_dataflow_chain(1);
  const chain_result then_chain = run_then_chain(kChainRounds);
  const chain_result df_chain = run_dataflow_chain(kChainRounds);
  const chain_result big_chain = run_oversize_chain(4);
  const hpxlite::op_pool_counters pool = hpxlite::op_pool_stats();

  const std::uint64_t chain_nodes =
      static_cast<std::uint64_t>(kChainRounds) * kChainLen;
  std::printf("  %-28s %12.0f ns/node (allocs/node %.3f)\n",
              "then chain (build)", then_chain.build_ns_per_node,
              static_cast<double>(then_chain.build_allocs) /
                  static_cast<double>(chain_nodes));
  std::printf("  %-28s %12.0f ns/node (allocs/node %.3f)\n",
              "dataflow chain (build)", df_chain.build_ns_per_node,
              static_cast<double>(df_chain.build_allocs) /
                  static_cast<double>(chain_nodes));
  std::printf("  %-28s %12.0f ns/node (allocs/node %.3f)\n",
              "oversize then chain (build)", big_chain.build_ns_per_node,
              static_cast<double>(big_chain.build_allocs) /
                  static_cast<double>(4 * kChainLen));
  std::printf("  %-28s %12llu hits / %llu fresh / %llu oversize\n",
              "op-state pool",
              static_cast<unsigned long long>(pool.pool_hits),
              static_cast<unsigned long long>(pool.fresh_blocks),
              static_cast<unsigned long long>(pool.oversize_allocs));

  // --- shard backend replay: timed AND gated ---------------------------
  // The same promise on hpx_shard: a loop issued inside an active
  // shard_scope (window clamped, fence already completed, staged
  // conflict-free write) replays allocation-free once the descriptors
  // are captured and the op-state pool is primed.  Block size covers
  // the whole set so each interior/boundary span is one inline block —
  // the gate measures the LAUNCH path, not chunk-task spawning.
  op2::init(op2::make_config("hpx_shard", 2, 2 * kCells));
  static op2::loop_handle hs_direct;
  static op2::loop_handle hs_indirect;
  mesh sm = make_mesh();
  double shard_total = 0.0;
  static op2::shard_fence fence;
  fence.arm();
  fence.complete();  // the exchange this window waits on is done
  op2::shard_context ctx;
  ctx.active = true;
  ctx.shard = 0;
  ctx.interior_end = kCells / 2;
  ctx.iterate_end = kCells;
  ctx.fence = &fence;
  constexpr int kShardWarmups = 8;  // capture + prime the op-state pool
  std::uint64_t shard_allocs = 0;
  std::uint64_t shard_lookups = 0;
  double shard_ns = 0.0;
  {
    op2::shard_scope scope(ctx);
    for (int i = 0; i < kShardWarmups; ++i) {
      run_shard_pair(hs_direct, hs_indirect, sm, &shard_total);
    }
    const std::uint64_t sa0 = alloc_count();
    const std::uint64_t sl0 = op2::plan_cache_lookups();
    const double s0 = now_ns();
    for (int i = 0; i < kReplays; ++i) {
      run_shard_pair(hs_direct, hs_indirect, sm, &shard_total);
    }
    shard_ns = (now_ns() - s0) / (2.0 * kReplays);
    shard_allocs = alloc_count() - sa0;
    shard_lookups = op2::plan_cache_lookups() - sl0;
  }
  std::printf("  %-28s %12.0f ns/loop\n", "shard replay (steady state)",
              shard_ns);
  std::printf("  %-28s %12llu\n", "shard replay heap allocations",
              static_cast<unsigned long long>(shard_allocs));
  std::printf("  %-28s %12llu\n", "shard replay plan lookups",
              static_cast<unsigned long long>(shard_lookups));

  int rc = 0;
  if (replay_allocs != 0) {
    rc = fail("steady-state replay heap-allocates", replay_allocs);
  }
  if (shard_allocs != 0) {
    rc = fail("hpx_shard steady-state replay heap-allocates", shard_allocs);
  }
  if (shard_lookups != 0) {
    rc = fail("hpx_shard steady-state replay hits the plan cache",
              shard_lookups);
  }
  const double shard_expected =
      static_cast<double>(kCells) * (kShardWarmups + kReplays);
  if (shard_total != shard_expected) {
    std::fprintf(stderr,
                 "launch_overhead: shard reduction drift: got %f "
                 "expected %f\n",
                 shard_total, shard_expected);
    rc = 1;
  }
  if (replay_lookups != 0) {
    rc = fail("steady-state replay hits the plan cache", replay_lookups);
  }
  if (fused_allocs != 0) {
    rc = fail("fused steady-state replay heap-allocates", fused_allocs);
  }
  if (fused_lookups != 0) {
    rc = fail("fused steady-state replay hits the plan cache",
              fused_lookups);
  }
  const double fused_expected =
      static_cast<double>(kCells) * (1.0 + kReplays);
  if (fused_total != fused_expected) {
    std::fprintf(stderr,
                 "launch_overhead: fused reduction drift: got %f "
                 "expected %f\n",
                 fused_total, fused_expected);
    rc = 1;
  }
  if (then_chain.build_allocs != 0) {
    rc = fail("then-chain build path heap-allocates (small continuations)",
              then_chain.build_allocs);
  }
  if (df_chain.build_allocs != 0) {
    rc = fail("dataflow-chain build path heap-allocates (small nodes)",
              df_chain.build_allocs);
  }
  if (big_chain.build_allocs > static_cast<std::uint64_t>(4) * kChainLen) {
    rc = fail("oversize-chain build path exceeds one allocation per node",
              big_chain.build_allocs);
  }
  if (then_chain.final_value != kChainLen ||
      df_chain.final_value != kChainLen ||
      big_chain.final_value != kChainLen) {
    std::fprintf(stderr, "launch_overhead: chain result drift\n");
    rc = 1;
  }
  // Sanity: the reduction must have actually run every iteration.
  const double expected =
      static_cast<double>(kCells) *
      (1.0 + kReplays + kCaptures);  // warm-up + replays + captures
  if (total != expected) {
    std::fprintf(stderr,
                 "launch_overhead: reduction drift: got %f expected %f\n",
                 total, expected);
    rc = 1;
  }
  op2::finalize();
  if (rc == 0) {
    std::printf(
        "  gate: OK (no replay allocations, no plan lookups, "
        "0 allocs/node chain build)\n");
  }
  return rc;
}
