// Ablation: mesh renumbering (RCM) — the locality optimisation OP2
// applies before planning.  Scrambles the Airfoil mesh's cell
// numbering, then shows (a) the bandwidth damage and its repair by
// RCM, and (b) the real execution-time consequence for the res_calc
// sweep on this machine.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <numeric>
#include <random>
#include <vector>

#include "airfoil/airfoil.hpp"
#include "op2/op2.hpp"

namespace {

/// Time a res_calc-like gather/scatter sweep through `pecell` (the
/// indirection whose locality renumbering controls).
double sweep_seconds(const op2::op_map& pecell, const op2::op_dat& q,
                     op2::op_dat res, int repeats) {  // res handle: written
  auto qv = q.data<double>();
  auto rv = res.data<double>();
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < repeats; ++r) {
    for (int e = 0; e < pecell.from().size(); ++e) {
      const auto a = static_cast<std::size_t>(pecell.at(e, 0));
      const auto b = static_cast<std::size_t>(pecell.at(e, 1));
      const double f = 0.25 * (qv[4 * a] - qv[4 * b]);
      rv[4 * a] += f;
      rv[4 * b] -= f;
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  std::printf("\n=== Ablation: RCM mesh renumbering ===\n");
  op2::init({op2::backend::seq, 1, 128, 0});
  auto s = airfoil::make_sim(airfoil::generate_mesh({400, 100}));
  const int ncell = s.cells.size();

  // Scramble the cell numbering (a badly-ordered mesh file).
  std::vector<int> scramble(static_cast<std::size_t>(ncell));
  std::iota(scramble.begin(), scramble.end(), 0);
  std::mt19937 rng(12345);
  std::shuffle(scramble.begin(), scramble.end(), rng);
  auto bad_pecell = op2::renumber_map_targets(s.pecell, scramble);
  auto bad_q = op2::permute_dat(s.p_q, scramble);
  auto bad_res = op2::permute_dat(s.p_res, scramble);

  // Repair with RCM over the cell-adjacency induced by the edges.
  const auto adj = op2::adjacency_from_map(bad_pecell);
  const auto t0 = std::chrono::steady_clock::now();
  const auto rcm = op2::rcm_order(adj);
  const double rcm_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
  auto fixed_pecell = op2::renumber_map_targets(bad_pecell, rcm);
  auto fixed_q = op2::permute_dat(bad_q, rcm);
  auto fixed_res = op2::permute_dat(bad_res, rcm);

  std::printf("%12s %12s %12s %12s\n", "ordering", "bandwidth", "sweep_ms",
              "vs original");
  constexpr int repeats = 20;
  const double orig = sweep_seconds(s.pecell, s.p_q, s.p_res, repeats);
  std::printf("%12s %12d %12.2f %11.2fx\n", "original",
              op2::map_bandwidth(s.pecell), orig * 1000.0, 1.0);
  const double bad = sweep_seconds(bad_pecell, bad_q, bad_res, repeats);
  std::printf("%12s %12d %12.2f %11.2fx\n", "scrambled",
              op2::map_bandwidth(bad_pecell), bad * 1000.0, bad / orig);
  const double fixed = sweep_seconds(fixed_pecell, fixed_q, fixed_res,
                                     repeats);
  std::printf("%12s %12d %12.2f %11.2fx\n", "RCM",
              op2::map_bandwidth(fixed_pecell), fixed * 1000.0,
              fixed / orig);

  // RCM fixes intra-row locality (bandwidth); the traversal order of
  // the rows themselves still jumps around — sort rows by their
  // minimum renumbered target to restore streaming access.
  const auto row_order = op2::order_rows_by_min_target(fixed_pecell);
  auto sorted_pecell = op2::reorder_map_rows(fixed_pecell, row_order);
  const double sorted = sweep_seconds(sorted_pecell, fixed_q, fixed_res,
                                      repeats);
  std::printf("%12s %12d %12.2f %11.2fx\n", "RCM+rowsort",
              op2::map_bandwidth(sorted_pecell), sorted * 1000.0,
              sorted / orig);
  std::printf("(RCM ordering itself took %.1f ms for %d cells)\n", rcm_ms,
              ncell);
  op2::finalize();
  return 0;
}
