// Ablation: partition quality — RCB vs naive block partitioning on the
// Airfoil mesh across rank counts: edge cut (communication proxy),
// imbalance, and the largest halo.  The substrate quality of OP2's
// distributed mode (not benchmarked in the paper, which is single node;
// included for completeness of the reproduced system).
#include <cstdio>
#include <vector>

#include "airfoil/mesh.hpp"
#include "op2/op2.hpp"

namespace {

std::size_t max_halo(const std::vector<std::vector<int>>& halos) {
  std::size_t m = 0;
  for (const auto& h : halos) {
    m = std::max(m, h.size());
  }
  return m;
}

}  // namespace

int main() {
  std::printf("\n=== Ablation: partitioning quality (RCB vs block) ===\n");
  auto mesh = airfoil::generate_mesh({400, 100});
  const auto& pecell = mesh.map("pecell");
  const auto& pcell = mesh.map("pcell");
  const auto x = mesh.dat("p_x").data<double>();
  const int ncell = mesh.set("cells").size();
  const int nedge = mesh.set("edges").size();

  std::vector<double> centroids(static_cast<std::size_t>(ncell) * 2, 0.0);
  for (int c = 0; c < ncell; ++c) {
    for (int k = 0; k < 4; ++k) {
      const auto n = static_cast<std::size_t>(pcell.at(c, k));
      centroids[static_cast<std::size_t>(2 * c)] += 0.25 * x[2 * n];
      centroids[static_cast<std::size_t>(2 * c + 1)] += 0.25 * x[2 * n + 1];
    }
  }

  std::printf("%d cells, %d edges\n", ncell, nedge);
  std::printf("%8s | %12s %10s %10s | %12s %10s %10s\n", "parts",
              "rcb_cut", "rcb_imb", "rcb_halo", "block_cut", "block_imb",
              "block_halo");
  for (const int nparts : {2, 4, 8, 16, 32}) {
    const auto rcb = op2::partition_rcb(centroids, nparts);
    const auto blk = op2::partition_block(ncell, nparts);

    // Edge ownership: first adjacent cell (owner computes).
    const auto edge_parts_for = [&](const op2::partitioning& cells) {
      op2::partitioning ep;
      ep.nparts = nparts;
      ep.part_of.resize(static_cast<std::size_t>(nedge));
      for (int e = 0; e < nedge; ++e) {
        ep.part_of[static_cast<std::size_t>(e)] =
            cells.part_of[static_cast<std::size_t>(pecell.at(e, 0))];
      }
      return ep;
    };

    const auto rcb_halos =
        op2::build_halos(pecell, edge_parts_for(rcb), rcb);
    const auto blk_halos =
        op2::build_halos(pecell, edge_parts_for(blk), blk);

    std::printf("%8d | %12d %10.3f %10zu | %12d %10.3f %10zu\n", nparts,
                op2::edge_cut(pecell, rcb), op2::imbalance(rcb),
                max_halo(rcb_halos), op2::edge_cut(pecell, blk),
                op2::imbalance(blk), max_halo(blk_halos));
  }
  std::printf("\nexpected: RCB cut grows ~sqrt(parts); block partitioning "
              "cuts whole mesh rows, larger halos at high part counts\n");
  return 0;
}
