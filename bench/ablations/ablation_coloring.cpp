// Ablation: block colouring — the OP2 plan machinery that lets indirect
// increment loops run without atomics.  Reports colour counts across
// block sizes on the real Airfoil mesh, plan-construction cost, and the
// parallel-efficiency consequence on the virtual node (more colours =
// more synchronisation points per loop).
#include <chrono>
#include <cstdio>

#include "figure_common.hpp"

int main() {
  figures::print_header(
      "Ablation: block colouring of the res_calc loop",
      "colour structure and cost as a function of plan block size");

  op2::init({op2::backend::seq, 1, 128, 0});
  auto s = airfoil::make_sim(airfoil::generate_mesh({400, 100}));
  const std::vector<op2::plan_indirection> conflicts{
      {s.pecell, 0, s.p_res.id()}, {s.pecell, 1, s.p_res.id()}};

  std::printf("%12s %10s %10s %14s %16s\n", "block_size", "nblocks",
              "ncolors", "max_blk/color", "plan_build_ms");
  for (const int bs : {16, 32, 64, 128, 256, 512, 1024}) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto plan = op2::build_plan(s.edges, bs, conflicts);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    std::size_t max_blocks = 0;
    for (const auto& c : plan.color_blocks) {
      max_blocks = std::max(max_blocks, c.size());
    }
    std::printf("%12d %10d %10d %14zu %16.3f\n", bs, plan.nblocks,
                plan.ncolors, max_blocks, ms);
  }

  // The scheduling consequence: simulate the dataflow method at 32
  // threads with shapes built at different block sizes.
  std::printf("\n[sim] dataflow at 32 threads, ms/iter by block size\n");
  static const simsched::machine_model machine{};
  static const simsched::overhead_model overheads{};
  auto costs = airfoil::measure_kernel_costs(s, 1);
  airfoil::reset_solution(s);
  std::printf("%12s %12s\n", "block_size", "ms/iter");
  for (const int bs : {32, 128, 512}) {
    const auto shape = airfoil::extract_shape(s, costs, bs, 2);
    const double us = simsched::simulate_airfoil(
        shape, simsched::method::hpx_dataflow, 32, machine, overheads);
    std::printf("%12d %12.3f\n", bs, us / 1000.0 / 2.0);
  }
  op2::finalize();
  return 0;
}
