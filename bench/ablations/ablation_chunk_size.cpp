// Ablation: grain-size (chunk-size) sweep for for_each — the design
// choice behind the paper's Fig 16 and §III-A1 discussion ("Grain size
// is the amount of time a task takes to execute ... HPX provides
// another way to avoid degrading the scalability").
//
// Two views:
//   [real] the actual hpxlite for_each on this machine across static
//          chunk sizes, plus the auto-partitioner
//   [sim]  the virtual 32-thread node across chunk sizes (blocks per
//          chunk)
#include <chrono>
#include <cstdio>
#include <vector>

#include "figure_common.hpp"

namespace {

double real_airfoil_seconds(std::size_t static_chunk) {
  op2::config cfg{op2::backend::hpx_foreach, 2, 128, static_chunk};
  // This ablation compares *fixed* chunkers against the serial-probe
  // auto-partitioner; keep the adaptive tuner out of the arms (it has
  // its own ablation, ablation_tuner).
  cfg.tuner = op2::tuner_mode::off;
  op2::init(cfg);
  auto s = airfoil::make_sim(airfoil::generate_mesh({96, 24}));
  // Warm the prepared handles first (mirrors model_adapter): the
  // measured window compares steady-state replays across chunk sizes,
  // not the one-time capture cost of a cold op_par_loop call site.
  airfoil::run_classic(s, 1);
  airfoil::reset_solution(s);
  const auto r = airfoil::run_classic(s, 4);
  op2::finalize();
  return r.seconds;
}

}  // namespace

int main() {
  figures::print_header(
      "Ablation: chunk size (grain size) for for_each",
      "[real] Airfoil on this machine, 2 workers, seconds for 4 "
      "iterations");
  std::printf("%16s %12s\n", "chunk", "seconds");
  std::printf("%16s %12.4f\n", "auto(1%)", real_airfoil_seconds(0));
  for (const std::size_t chunk : {1ul, 4ul, 16ul, 64ul, 256ul}) {
    std::printf("%16zu %12.4f\n", chunk, real_airfoil_seconds(chunk));
  }

  std::printf("\n[sim] virtual node, 32 threads, ms/iter for "
              "for_each(static chunk of N blocks)\n");
  const auto shape = figures::make_shape({});
  static const simsched::machine_model machine{};
  static const simsched::overhead_model overheads{};
  std::printf("%16s %12s\n", "blocks/chunk", "ms/iter");
  for (const std::size_t chunk : {1ul, 2ul, 4ul, 8ul, 16ul, 64ul}) {
    const double us = simsched::simulate_airfoil(
        shape, simsched::method::hpx_foreach_static, 32, machine, overheads,
        chunk);
    std::printf("%16zu %12.3f\n", chunk,
                us / 1000.0 / figures::sim_iters);
  }
  const double auto_us = simsched::simulate_airfoil(
      shape, simsched::method::hpx_foreach_auto, 32, machine, overheads);
  std::printf("%16s %12.3f   <- pays the 1%% sequential probe\n", "auto(1%)",
              auto_us / 1000.0 / figures::sim_iters);
  return 0;
}
