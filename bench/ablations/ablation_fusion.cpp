// Ablation: cross-loop fusion and time-step tiling on a direct
// element-local chain — the fusion planner's reason to exist.  Three
// kernels stream three 4-component dats (a read-only, b and c updated
// in place):
//
//   k1   b = 0.25 a + 0.75 b       k2   c = c + 0.5 b
//   k3   b = b + 0.125 c
//
// run as an S-step chain over N elements.  The working set is sized to
// overflow the last-level cache (tiling has nothing to win when the
// whole problem is LLC-resident) while one tile stays L2-resident.
// All three arms execute the IDENTICAL per-element operation sequence;
// only the traversal order differs:
//
//   unfused      S steps x 3 op_par_loop — every kernel is its own
//                pass over the arrays (3S sweeps of DRAM traffic)
//   fused        S steps x 1 op_par_loop_fused — one traversal runs
//                all three kernels per element (S sweeps)
//   fused+tiled  1 op_par_loop_fused_steps(S) with a fixed tile —
//                every step of the chain runs over one cache-resident
//                tile before advancing (~1 sweep)
//
// scripts/check.sh runs this as a HARD GATE: fused must beat unfused
// and fused+tiled must beat fused, with all three checksums
// bit-identical, or the binary exits non-zero.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <span>
#include <vector>

#include "op2/op2.hpp"

namespace {

constexpr int kDim = 4;
constexpr int kElems = 1 << 23;  // 3 dats x 32 B x 8M = 768 MiB working set
constexpr int kSteps = 6;
constexpr int kTile = 1 << 14;  // 3 dats x 32 B x 16384 = 1.5 MiB: L2-resident
constexpr int kRepeats = 3;     // best-of, to shrug off scheduling noise

void k1(const double* a, double* b) {
  for (int d = 0; d < kDim; ++d) {
    b[d] = 0.25 * a[d] + 0.75 * b[d];
  }
}
void k2(const double* b, double* c) {
  for (int d = 0; d < kDim; ++d) {
    c[d] = c[d] + 0.5 * b[d];
  }
}
void k3(const double* c, double* b) {
  for (int d = 0; d < kDim; ++d) {
    b[d] = b[d] + 0.125 * c[d];
  }
}

struct arm_result {
  double seconds = 0.0;
  double checksum = 0.0;
};

struct chain_sim {
  op2::op_set elems;
  op2::op_dat d_a, d_b, d_c;
};

chain_sim make_chain() {
  chain_sim s;
  s.elems = op2::op_decl_set(kElems, "elems");
  {  // scoped so each init image is freed before the next is built
    std::vector<double> a(static_cast<std::size_t>(kElems) * kDim);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = 1.0 + 1e-6 * static_cast<double>(i % 1024);
    }
    s.d_a = op2::op_decl_dat<double>(s.elems, kDim, "double",
                                     std::span<const double>(a), "a");
  }
  {
    std::vector<double> b(static_cast<std::size_t>(kElems) * kDim, 0.5);
    s.d_b = op2::op_decl_dat<double>(s.elems, kDim, "double",
                                     std::span<const double>(b), "b");
  }
  {
    std::vector<double> c(static_cast<std::size_t>(kElems) * kDim, 0.0);
    s.d_c = op2::op_decl_dat<double>(s.elems, kDim, "double",
                                     std::span<const double>(c), "c");
  }
  return s;
}

/// Bitwise-stable summary of the chain's final state: ordered sum over
/// b then c.  Every arm applies the identical per-element sequence, so
/// equal bits here means the traversal reorder moved nothing.
double chain_checksum(chain_sim& s) {
  double sum = 0.0;
  for (const double v : s.d_b.data<double>()) {
    sum += v;
  }
  for (const double v : s.d_c.data<double>()) {
    sum += v;
  }
  return sum;
}

template <typename Body>
arm_result run_arm(const op2::config& cfg, Body&& body) {
  arm_result best;
  best.seconds = 1e300;
  for (int rep = 0; rep < kRepeats; ++rep) {
    op2::init(cfg);
    auto s = make_chain();
    const auto t0 = std::chrono::steady_clock::now();
    body(s);
    const auto t1 = std::chrono::steady_clock::now();
    arm_result out;
    out.seconds = std::chrono::duration<double>(t1 - t0).count();
    out.checksum = chain_checksum(s);
    op2::finalize();
    if (out.seconds < best.seconds) {
      best = out;
    }
  }
  return best;
}

void unfused_body(chain_sim& s) {
  static op2::loop_handle h1, h2, h3;
  for (int step = 0; step < kSteps; ++step) {
    op2::op_par_loop(h1, k1, "k1", s.elems,
        op2::op_arg_dat<double>(s.d_a, -1, op2::OP_ID, kDim, op2::OP_READ),
        op2::op_arg_dat<double>(s.d_b, -1, op2::OP_ID, kDim, op2::OP_RW));
    op2::op_par_loop(h2, k2, "k2", s.elems,
        op2::op_arg_dat<double>(s.d_b, -1, op2::OP_ID, kDim, op2::OP_READ),
        op2::op_arg_dat<double>(s.d_c, -1, op2::OP_ID, kDim, op2::OP_RW));
    op2::op_par_loop(h3, k3, "k3", s.elems,
        op2::op_arg_dat<double>(s.d_c, -1, op2::OP_ID, kDim, op2::OP_READ),
        op2::op_arg_dat<double>(s.d_b, -1, op2::OP_ID, kDim, op2::OP_RW));
  }
}

void fused_members(chain_sim& s, op2::fused_handle& h, int steps) {
  op2::op_par_loop_fused_steps(h, s.elems, steps,
      op2::fuse_loop(k1, "k1",
          op2::op_arg_dat<double>(s.d_a, -1, op2::OP_ID, kDim, op2::OP_READ),
          op2::op_arg_dat<double>(s.d_b, -1, op2::OP_ID, kDim, op2::OP_RW)),
      op2::fuse_loop(k2, "k2",
          op2::op_arg_dat<double>(s.d_b, -1, op2::OP_ID, kDim, op2::OP_READ),
          op2::op_arg_dat<double>(s.d_c, -1, op2::OP_ID, kDim, op2::OP_RW)),
      op2::fuse_loop(k3, "k3",
          op2::op_arg_dat<double>(s.d_c, -1, op2::OP_ID, kDim, op2::OP_READ),
          op2::op_arg_dat<double>(s.d_b, -1, op2::OP_ID, kDim, op2::OP_RW)));
}

void fused_body(chain_sim& s) {
  static op2::fused_handle h;
  for (int step = 0; step < kSteps; ++step) {
    fused_members(s, h, 1);
  }
}

void tiled_body(chain_sim& s) {
  static op2::fused_handle h;
  fused_members(s, h, kSteps);
}

}  // namespace

int main() {
  std::printf("\n=== Ablation: cross-loop fusion and time-step tiling ===\n");
  std::printf("seq, %d elements, 3-kernel chain, %d steps, tile %d "
              "(%d tiles)\n",
              kElems, kSteps, kTile, (kElems + kTile - 1) / kTile);

  const auto base = op2::make_config("seq", 1, 128);
  auto tiled_cfg = base;
  tiled_cfg.tile = std::to_string(kTile);

  const auto unfused = run_arm(base, unfused_body);
  const auto fused = run_arm(base, fused_body);
  const auto tiled = run_arm(tiled_cfg, tiled_body);

  std::printf("%12s %10s %9s\n", "arm", "wall_ms", "sweeps");
  std::printf("%12s %10.2f %9d\n", "unfused", 1e3 * unfused.seconds,
              3 * kSteps);
  std::printf("%12s %10.2f %9d\n", "fused", 1e3 * fused.seconds, kSteps);
  std::printf("%12s %10.2f %9s\n", "fused+tiled", 1e3 * tiled.seconds, "~1");
  std::printf("fusion speedup: %.2fx   tiling speedup: %.2fx\n",
              unfused.seconds / fused.seconds, fused.seconds / tiled.seconds);

  // Reordering the traversal must never move the arithmetic.
  if (unfused.checksum != fused.checksum ||
      unfused.checksum != tiled.checksum ||
      !std::isfinite(unfused.checksum)) {
    std::printf("FAIL: arms disagree on the result (unfused %.17g, "
                "fused %.17g, tiled %.17g)\n",
                unfused.checksum, fused.checksum, tiled.checksum);
    return 1;
  }
  // The gates: one traversal must beat three, and a cache-resident
  // tile walked S times must beat S full sweeps.
  if (fused.seconds >= unfused.seconds) {
    std::printf("FAIL: fused (%.2f ms) did not beat unfused (%.2f ms)\n",
                1e3 * fused.seconds, 1e3 * unfused.seconds);
    return 1;
  }
  if (tiled.seconds >= fused.seconds) {
    std::printf("FAIL: fused+tiled (%.2f ms) did not beat fused "
                "(%.2f ms)\n",
                1e3 * tiled.seconds, 1e3 * fused.seconds);
    return 1;
  }
  std::printf("PASS: fused < unfused and fused+tiled < fused\n");
  return 0;
}
