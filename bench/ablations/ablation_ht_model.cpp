// Ablation: the hyper-threading throughput parameter of the virtual
// machine model.  The paper's node has HT "enabled after 16 threads";
// the knee in every figure depends on how much an extra hardware thread
// is worth.  This sweep shows the reproduced 32-thread results are not
// an artefact of one magic value.
#include <cstdio>

#include "figure_common.hpp"

int main() {
  figures::print_header(
      "Ablation: hyper-threading throughput factor",
      "[sim] 32-thread time (ms/iter) and dataflow-vs-omp gain as the "
      "per-HT-thread throughput varies");
  const auto shape = figures::make_shape({});
  static const simsched::overhead_model overheads{};

  std::printf("%10s %12s %12s %12s %14s\n", "ht_factor", "omp@32",
              "async@32", "dflow@32", "dflow gain");
  for (const double ht : {0.0, 0.15, 0.30, 0.50, 1.0}) {
    simsched::machine_model machine;
    machine.ht_throughput = ht;
    const auto ms = [&](simsched::method m) {
      return simsched::simulate_airfoil(shape, m, 32, machine, overheads) /
             1000.0 / figures::sim_iters;
    };
    const double omp = ms(simsched::method::omp_forkjoin);
    const double as = ms(simsched::method::hpx_async);
    const double df = ms(simsched::method::hpx_dataflow);
    std::printf("%10.2f %12.3f %12.3f %12.3f %+13.1f%%\n", ht, omp, as, df,
                (omp / df - 1.0) * 100.0);
  }

  std::printf("\n16 vs 32 threads (omp, ms/iter) — the knee:\n");
  std::printf("%10s %12s %12s\n", "ht_factor", "omp@16", "omp@32");
  for (const double ht : {0.0, 0.30, 1.0}) {
    simsched::machine_model machine;
    machine.ht_throughput = ht;
    const double t16 =
        simsched::simulate_airfoil(shape, simsched::method::omp_forkjoin, 16,
                                   machine, overheads) /
        1000.0 / figures::sim_iters;
    const double t32 =
        simsched::simulate_airfoil(shape, simsched::method::omp_forkjoin, 32,
                                   machine, overheads) /
        1000.0 / figures::sim_iters;
    std::printf("%10.2f %12.3f %12.3f\n", ht, t16, t32);
  }
  return 0;
}
