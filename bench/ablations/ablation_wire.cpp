// Ablation: the overlapped-exchange win must SURVIVE a lossy wire.
//
// ablation_shard established that hiding the halo exchange behind
// interior computation beats fencing on a perfect in-process
// transport.  This ablation re-runs the same fenced-vs-overlapped
// comparison with the reliable wire stack underneath (framed
// datagrams + CRC + ack/retransmit, op2/wire.hpp) and a deterministic
// 1% frame loss injected by the chaos transport — the regime the
// protocol exists for.
//
// scripts/check.sh runs this as a HARD GATE, all of:
//   1. both schedules produce the IDENTICAL, finite checksum — the
//      retransmit protocol delivers exactly the bytes a perfect wire
//      would have (loss may cost time, never bits);
//   2. the overlapped schedule still beats the fenced one under loss;
//   3. the loss was real: at least one retransmit healed a dropped
//      frame, and no link was declared dead.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "airfoil/airfoil.hpp"
#include "op2/op2.hpp"
#include "op2/wire.hpp"

namespace {

constexpr int kIters = 12;
constexpr int kShards = 4;
constexpr int kDelayUs = 1500;  // simulated per-round link latency
constexpr int kRepeats = 3;     // best-of, to shrug off scheduling noise

// 1% per-frame drop on every link, seeded for reproducibility; the
// at-spec guarantees at least one drop per run even on short traffic,
// so gate 3 never depends on the probabilistic tail.
constexpr const char* kLossSpec =
    "link=*:drop:prob=0.01,seed=4242,count=-1;link=*:drop:at=5,count=1";

struct schedule_result {
  double seconds = 0.0;
  double checksum = 0.0;
  double exchange_ms = 0.0;  // summed over shards, best repeat
  double overlap_ms = 0.0;
  std::uint64_t retransmits = 0;
  std::uint64_t dead_links = 0;
};

schedule_result run_schedule(bool overlap) {
  schedule_result best;
  best.seconds = 1e300;
  for (int rep = 0; rep < kRepeats; ++rep) {
    // Re-arm the chaos state per run: every repeat sees the same
    // deterministic drop sequence with a fresh budget.
    op2::wire::wire_fault_injector::configure(kLossSpec);
    auto cfg = op2::make_config("hpx_shard", 4, 128);
    cfg.shards = kShards;
    cfg.shard_overlap = overlap;
    cfg.exchange_delay_us = kDelayUs;
    cfg.wire = "reliable";
    cfg.wire_timeout_ms = 5;
    op2::init(cfg);
    op2::profiling::enable(true);
    op2::profiling::reset();
    auto s = airfoil::make_sim(airfoil::generate_mesh({200, 100}));
    const auto r = airfoil::run_with_backend(s, kIters, "hpx_shard");
    schedule_result out;
    out.seconds = r.seconds;
    out.checksum = airfoil::solution_checksum(s);
    for (const auto& [id, prof] : op2::profiling::shard_snapshot()) {
      out.exchange_ms += 1e3 * prof.exchange_seconds;
      out.overlap_ms += 1e3 * prof.overlap_seconds;
      out.retransmits += prof.retransmits;
      out.dead_links += prof.dead_links;
    }
    op2::profiling::enable(false);
    op2::profiling::reset();
    op2::finalize();
    op2::wire::wire_fault_injector::clear();
    if (out.seconds < best.seconds) {
      best = out;
    }
  }
  return best;
}

}  // namespace

int main() {
  std::printf("\n=== Ablation: overlapped exchange on a lossy wire ===\n");
  std::printf("hpx_shard, %d shards, %d iters (%d exchange rounds), "
              "%d us link latency, reliable wire, 1%% frame loss\n",
              kShards, kIters, 2 * kIters, kDelayUs);

  const auto fenced = run_schedule(false);
  const auto overlapped = run_schedule(true);

  std::printf("%12s %10s %13s %12s %12s %11s\n", "schedule", "wall_ms",
              "exchange_ms", "overlap_ms", "retransmits", "dead_links");
  std::printf("%12s %10.2f %13.2f %12.2f %12llu %11llu\n", "fenced",
              1e3 * fenced.seconds, fenced.exchange_ms, fenced.overlap_ms,
              static_cast<unsigned long long>(fenced.retransmits),
              static_cast<unsigned long long>(fenced.dead_links));
  std::printf("%12s %10.2f %13.2f %12.2f %12llu %11llu\n", "overlapped",
              1e3 * overlapped.seconds, overlapped.exchange_ms,
              overlapped.overlap_ms,
              static_cast<unsigned long long>(overlapped.retransmits),
              static_cast<unsigned long long>(overlapped.dead_links));
  std::printf("overlap speedup under loss: %.2fx\n",
              fenced.seconds / overlapped.seconds);

  // Gate 1: loss may cost time, never bits.
  if (fenced.checksum != overlapped.checksum ||
      !std::isfinite(fenced.checksum)) {
    std::printf("FAIL: schedules disagree on the solution under loss "
                "(fenced %.17g vs overlapped %.17g)\n",
                fenced.checksum, overlapped.checksum);
    return 1;
  }
  // Gate 2: the overlap win survives the lossy wire.
  if (overlapped.seconds >= fenced.seconds) {
    std::printf("FAIL: overlapped schedule (%.2f ms) did not beat the "
                "fenced one (%.2f ms) under loss\n",
                1e3 * overlapped.seconds, 1e3 * fenced.seconds);
    return 1;
  }
  // Gate 3: the wire was genuinely lossy and the protocol healed it.
  if (fenced.retransmits == 0 || overlapped.retransmits == 0) {
    std::printf("FAIL: no retransmits recorded — the loss injection "
                "did not engage\n");
    return 1;
  }
  if (fenced.dead_links != 0 || overlapped.dead_links != 0) {
    std::printf("FAIL: a link was declared dead under 1%% loss\n");
    return 1;
  }
  std::printf("PASS: checksum identical, overlapped < fenced, "
              "loss healed by retransmit\n");
  return 0;
}
