// Ablation: adaptive grain tuner vs the serial-probe auto-partitioner
// vs a fixed static chunk, on the real airfoil loops.
//
// The auto-partitioner (§III-A1) pays a sequential ~1% probe on every
// for_each; the prepared-loop pipeline made replay the steady state, so
// that probe is repeated pure overhead.  The adaptive arm replaces it
// with a per-(loop × backend × threads) grain controller fed by replay
// wall times: it explores a geometric chunk ladder for a bounded number
// of replays, then locks.
//
// Three arms, same mesh and iteration count, each measured over a
// warmed steady-state window:
//   static:64  — fixed chunk, no probe, no adaptation
//   auto-probe — OP2_TUNER=off + auto chunker (pre-PR behaviour)
//   adaptive   — OP2_TUNER=on (this PR's default)
//
// Exit code: non-zero if the adaptive arm fails its *deterministic*
// acceptance property — every tuned airfoil loop (res_calc and update
// included) must reach a converged controller within 32 probing
// replays.  Throughput is printed for comparison but not gated: this
// may be a one-core box where wall-clock ratios are noise.
#include <cstdio>
#include <string>

#include "figure_common.hpp"
#include "op2/tuner.hpp"

namespace {

struct arm_result {
  double seconds = 0.0;
  double loops_per_sec = 0.0;
};

constexpr int kWarmupIters = 1;
constexpr int kMeasuredIters = 40;
// Airfoil runs 2 inner RK phases: 5 loop sites, some invoked twice per
// outer iteration — the measured window replays each site 40..80 times,
// comfortably past the controller's 32-feed convergence bound.
constexpr double kLoopsPerIter = 9.0;  // save + 2*(adt+res+bres+update)

arm_result run_arm(op2::tuner_mode mode, std::size_t static_chunk,
                   std::vector<op2::tuner::entry_info>* controllers = nullptr) {
  op2::config cfg{op2::backend::hpx_foreach, 2, 128, static_chunk};
  cfg.tuner = mode;
  op2::init(cfg);
  auto s = airfoil::make_sim(airfoil::generate_mesh({96, 24}));
  // Steady state: capture happens in the warmup, the measured window
  // sees only replays (plus the adaptive arm's bounded exploration).
  airfoil::run_classic(s, kWarmupIters);
  airfoil::reset_solution(s);
  const auto r = airfoil::run_classic(s, kMeasuredIters);
  if (controllers != nullptr) {
    // Before finalize: the epoch bump sends converged controllers back
    // to probing for re-verification, which would mask what this run's
    // exploration actually achieved.
    *controllers = op2::tuner::snapshot();
  }
  op2::finalize();
  arm_result out;
  out.seconds = r.seconds;
  out.loops_per_sec =
      r.seconds > 0.0 ? kLoopsPerIter * kMeasuredIters / r.seconds : 0.0;
  return out;
}

/// True once the controller has locked a chunk at least once this run.
/// A drift re-probe may be in progress at snapshot time (wall-time
/// noise on a loaded box); that still means "converged, re-verifying",
/// not "failed to converge" — visible as this probing episode being
/// younger than the controller's lifetime exploration count.
bool converged_once(const op2::tuner::entry_info& e) {
  return e.state == hpxlite::grain_controller::state::converged ||
         e.total_probe_feeds > e.probe_feeds;
}

}  // namespace

int main() {
  figures::print_header(
      "Ablation: adaptive grain tuner vs auto-probe vs static chunk",
      "[real] Airfoil on this machine, hpx_foreach, 2 workers, 40 "
      "steady-state iterations per arm");

  std::printf("%12s %12s %14s\n", "arm", "seconds", "loops/sec");
  const auto fixed = run_arm(op2::tuner_mode::off, 64);
  std::printf("%12s %12.4f %14.0f\n", "static:64", fixed.seconds,
              fixed.loops_per_sec);
  const auto probe = run_arm(op2::tuner_mode::off, 0);
  std::printf("%12s %12.4f %14.0f\n", "auto-probe", probe.seconds,
              probe.loops_per_sec);

  // Fresh controllers for the adaptive arm, so the convergence report
  // below reflects exactly this run's exploration.
  op2::tuner::reset();
  std::vector<op2::tuner::entry_info> controllers;
  const auto adaptive = run_arm(op2::tuner_mode::on, 0, &controllers);
  std::printf("%12s %12.4f %14.0f\n", "adaptive", adaptive.seconds,
              adaptive.loops_per_sec);
  if (probe.seconds > 0.0 && adaptive.seconds > 0.0) {
    std::printf("adaptive vs auto-probe steady-state speedup: %.3fx\n",
                probe.seconds / adaptive.seconds);
  }

  std::printf("\nper-loop controllers (adaptive arm):\n");
  std::printf("%12s %8s %12s %18s\n", "loop", "chunk", "state",
              "convergence_iter");
  bool saw_res_calc = false;
  bool saw_update = false;
  bool ok = true;
  for (const auto& e : controllers) {
    const bool good = converged_once(e) && e.probe_feeds <= 32;
    std::printf("%12s %8zu %12s %18llu%s\n", e.loop.c_str(), e.chunk,
                hpxlite::to_string(e.state),
                static_cast<unsigned long long>(e.probe_feeds),
                good ? "" : "   <- NOT CONVERGED");
    saw_res_calc = saw_res_calc || e.loop == "res_calc";
    saw_update = saw_update || e.loop == "update";
    ok = ok && good;
  }
  ok = ok && saw_res_calc && saw_update;
  if (!ok) {
    std::printf("FAIL: adaptive controllers for the airfoil loops "
                "(incl. res_calc, update) must converge within 32 "
                "replays\n");
    return 1;
  }
  std::printf("OK: all controllers converged within 32 replays\n");
  return 0;
}
