// Ablation: fenced vs overlapped halo exchange on the hpx_shard
// backend — the shard-aware core's reason to exist.  Both schedules
// run the identical staged loops over the identical decomposition with
// a deterministic simulated link latency (cfg.exchange_delay_us); the
// only difference is WHEN the exchange fence is waited:
//
//   fenced      wait the fence before dispatching the interior span
//               (shard_overlap = off) — every round serialises
//               compute behind the exchange
//   overlapped  dispatch the interior span first, fence only before
//               the boundary span — the exchange latency hides behind
//               interior computation
//
// scripts/check.sh runs this as a HARD GATE: the overlapped schedule
// must beat the fenced one, or the binary exits non-zero.  The
// per-shard overlap_ms column (also printed by op_timing_output) shows
// where the win comes from: hidden exchange time, not faster kernels.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "airfoil/airfoil.hpp"
#include "op2/op2.hpp"

namespace {

constexpr int kIters = 12;
constexpr int kShards = 4;
constexpr int kDelayUs = 1500;  // simulated per-round link latency
constexpr int kRepeats = 3;     // best-of, to shrug off scheduling noise

struct schedule_result {
  double seconds = 0.0;
  double checksum = 0.0;
  double exchange_ms = 0.0;  // summed over shards, final repeat
  double overlap_ms = 0.0;
};

schedule_result run_schedule(bool overlap) {
  schedule_result best;
  best.seconds = 1e300;
  for (int rep = 0; rep < kRepeats; ++rep) {
    auto cfg = op2::make_config("hpx_shard", 4, 128);
    cfg.shards = kShards;
    cfg.shard_overlap = overlap;
    cfg.exchange_delay_us = kDelayUs;
    op2::init(cfg);
    op2::profiling::enable(true);
    op2::profiling::reset();
    auto s = airfoil::make_sim(airfoil::generate_mesh({200, 100}));
    const auto r = airfoil::run_with_backend(s, kIters, "hpx_shard");
    schedule_result out;
    out.seconds = r.seconds;
    out.checksum = airfoil::solution_checksum(s);
    for (const auto& [id, prof] : op2::profiling::shard_snapshot()) {
      out.exchange_ms += 1e3 * prof.exchange_seconds;
      out.overlap_ms += 1e3 * prof.overlap_seconds;
    }
    op2::profiling::enable(false);
    op2::profiling::reset();
    op2::finalize();
    if (out.seconds < best.seconds) {
      best = out;
    }
  }
  return best;
}

}  // namespace

int main() {
  std::printf("\n=== Ablation: fenced vs overlapped halo exchange ===\n");
  std::printf("hpx_shard, %d shards, %d iters (%d exchange rounds), "
              "%d us simulated link latency per round\n",
              kShards, kIters, 2 * kIters, kDelayUs);

  const auto fenced = run_schedule(false);
  const auto overlapped = run_schedule(true);

  std::printf("%12s %10s %13s %12s\n", "schedule", "wall_ms", "exchange_ms",
              "overlap_ms");
  std::printf("%12s %10.2f %13.2f %12.2f\n", "fenced",
              1e3 * fenced.seconds, fenced.exchange_ms, fenced.overlap_ms);
  std::printf("%12s %10.2f %13.2f %12.2f\n", "overlapped",
              1e3 * overlapped.seconds, overlapped.exchange_ms,
              overlapped.overlap_ms);
  std::printf("overlap speedup: %.2fx\n",
              fenced.seconds / overlapped.seconds);

  // Scheduling must never move the physics.
  if (fenced.checksum != overlapped.checksum ||
      !std::isfinite(fenced.checksum)) {
    std::printf("FAIL: schedules disagree on the solution "
                "(fenced %.17g vs overlapped %.17g)\n",
                fenced.checksum, overlapped.checksum);
    return 1;
  }
  // The gate: hiding the exchange behind interior loops must win.
  if (overlapped.seconds >= fenced.seconds) {
    std::printf("FAIL: overlapped schedule (%.2f ms) did not beat the "
                "fenced one (%.2f ms)\n",
                1e3 * overlapped.seconds, 1e3 * fenced.seconds);
    return 1;
  }
  std::printf("PASS: overlapped < fenced\n");
  return 0;
}
