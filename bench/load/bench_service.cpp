// bench_service — the op2::service load benchmark: N tenants sustain
// concurrent Airfoil jobs in one process through the weighted-fair
// admission controller, plus one deliberately-bursty tenant whose
// shallow queue exercises load shedding.  Reports p50/p99 job latency,
// aggregate loops/sec, admitted/shed/degraded counts and the peak
// number of concurrently-running jobs, and writes BENCH_service.json.
//
// Usage: bench_service [--tenants=N] [--jobs=N] [--iters=N] [--soak]
//   --soak  gate mode for scripts/check.sh: exit non-zero when the
//           service shed everything (nothing completed) or p99 job
//           latency blew past 60 s — either means admission is broken.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "airfoil/job.hpp"
#include "op2/op2.hpp"

namespace {

double percentile(std::vector<double> v, double p) {
  if (v.empty()) {
    return 0.0;
  }
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

int parse_flag(const char* arg, const char* name, int fallback) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    return std::atoi(arg + len + 1);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  int tenants = 8;
  int jobs_per_tenant = 3;
  int niter = 10;
  bool soak = false;
  for (int i = 1; i < argc; ++i) {
    tenants = parse_flag(argv[i], "--tenants", tenants);
    jobs_per_tenant = parse_flag(argv[i], "--jobs", jobs_per_tenant);
    niter = parse_flag(argv[i], "--iters", niter);
    if (std::strcmp(argv[i], "--soak") == 0) {
      soak = true;
    }
  }
  tenants = std::max(1, tenants);

  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  op2::init(op2::make_config("hpx_foreach", hw));
  op2::profiling::enable(true);

  // Enough runners that every tenant can hold its one-job quota
  // concurrently — the "N concurrent Airfoil jobs in one process" claim
  // is peak_running below, not the runner count.
  op2::service::service_config cfg;
  cfg.workers = static_cast<unsigned>(tenants) + 1;
  op2::service::job_service svc(cfg);

  std::vector<std::unique_ptr<airfoil::job_workspace>> spaces;
  for (int t = 0; t < tenants; ++t) {
    op2::service::tenant_options opts;
    opts.name = "tenant-" + std::to_string(t);
    opts.weight = 1.0;
    opts.quota = 1;
    svc.register_tenant(opts);
    spaces.push_back(std::make_unique<airfoil::job_workspace>());
  }
  // The bursty tenant: low weight, shallow queue, far more submissions
  // than it may buffer — its overflow is shed with queue_full, its
  // backlog queues against its own budget, and the steady tenants'
  // latency must not blow up.
  {
    op2::service::tenant_options opts;
    opts.name = "bursty";
    opts.weight = 0.5;
    opts.quota = 1;
    opts.queue_depth = 4;
    svc.register_tenant(opts);
    spaces.push_back(std::make_unique<airfoil::job_workspace>());
  }

  airfoil::job_params params;
  params.niter = niter;

  op2::service::job_options qos;
  qos.qos.max_retries = 1;
  qos.qos.fallback_to_seq = true;
  qos.max_attempts = 2;

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<op2::service::job_handle> handles;
  for (int j = 0; j < jobs_per_tenant; ++j) {
    for (int t = 0; t < tenants; ++t) {
      handles.push_back(svc.submit(
          "tenant-" + std::to_string(t),
          [&params, ws = spaces[static_cast<std::size_t>(t)].get()](
              const op2::service::job_context& ctx) {
            airfoil::run_job(params, *ws, ctx.stop);
          },
          qos));
    }
  }
  const int burst_jobs = 3 * jobs_per_tenant;
  for (int j = 0; j < burst_jobs; ++j) {
    handles.push_back(svc.submit(
        "bursty",
        [&params, ws = spaces.back().get()](
            const op2::service::job_context& ctx) {
          airfoil::run_job(params, *ws, ctx.stop);
        },
        qos));
  }

  std::vector<double> latencies;  // queue wait + run, per completed job
  std::uint64_t loops_done = 0;
  for (auto& h : handles) {
    const auto r = h.get();
    if (r.status == op2::service::job_status::completed) {
      latencies.push_back(r.queue_wait_seconds + r.run_seconds);
      loops_done += static_cast<std::uint64_t>(9) *
                    static_cast<std::uint64_t>(niter);
    }
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const auto stats = svc.stats();
  std::uint64_t degraded = 0;
  for (const auto& [name, t] : op2::profiling::tenant_snapshot()) {
    degraded += t.degradations;
  }
  const double p50 = percentile(latencies, 0.50);
  const double p99 = percentile(latencies, 0.99);
  const double loops_per_sec = wall > 0.0 ? loops_done / wall : 0.0;

  std::printf("bench_service: %d tenants + 1 bursty, %d jobs each, %d iters\n",
              tenants, jobs_per_tenant, niter);
  std::printf("  submitted %llu admitted %llu shed %llu completed %llu "
              "failed %llu cancelled %llu degraded %llu\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.admitted),
              static_cast<unsigned long long>(stats.shed),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.failed),
              static_cast<unsigned long long>(stats.cancelled),
              static_cast<unsigned long long>(degraded));
  std::printf("  peak concurrent jobs %zu (target >= %d)\n",
              stats.peak_running, std::min(tenants, 8));
  std::printf("  job latency p50 %.3f ms  p99 %.3f ms\n", p50 * 1e3,
              p99 * 1e3);
  std::printf("  aggregate %.0f loops/sec over %.3f s\n", loops_per_sec,
              wall);

  {
    std::ofstream json("BENCH_service.json");
    json << "{\n"
         << "  \"tenants\": " << tenants << ",\n"
         << "  \"jobs_per_tenant\": " << jobs_per_tenant << ",\n"
         << "  \"burst_jobs\": " << burst_jobs << ",\n"
         << "  \"iters\": " << niter << ",\n"
         << "  \"submitted\": " << stats.submitted << ",\n"
         << "  \"admitted\": " << stats.admitted << ",\n"
         << "  \"shed\": " << stats.shed << ",\n"
         << "  \"completed\": " << stats.completed << ",\n"
         << "  \"failed\": " << stats.failed << ",\n"
         << "  \"cancelled\": " << stats.cancelled << ",\n"
         << "  \"degraded\": " << degraded << ",\n"
         << "  \"peak_concurrent_jobs\": " << stats.peak_running << ",\n"
         << "  \"p50_latency_ms\": " << p50 * 1e3 << ",\n"
         << "  \"p99_latency_ms\": " << p99 * 1e3 << ",\n"
         << "  \"loops_per_sec\": " << loops_per_sec << ",\n"
         << "  \"wall_seconds\": " << wall << "\n"
         << "}\n";
  }

  if (soak) {
    if (stats.completed == 0) {
      std::fprintf(stderr, "bench_service: FAIL — everything was shed\n");
      return 1;
    }
    if (p99 > 60.0) {
      std::fprintf(stderr, "bench_service: FAIL — p99 %.1f s\n", p99);
      return 1;
    }
  }
  op2::finalize();
  return 0;
}
