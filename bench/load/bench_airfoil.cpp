// bench_airfoil — end-to-end Airfoil throughput across the PR-9 fusion
// arms: the unfused sequential baseline, the fused classic driver
// (OP2_FUSE on collapses update+save_soln into one launch), and the
// fused dataflow driver (one graph node per fused group).  Reports
// iterations/sec and the per-loop time breakdown from the profiling
// snapshot — the fused row appears under its aggregated name
// ("update+save_soln") — and writes BENCH_airfoil.json.
//
// The three arms must agree on the solution checksum bit-for-bit
// (fusion is a schedule change, not a physics change); disagreement
// exits non-zero.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "airfoil/airfoil.hpp"
#include "op2/op2.hpp"

namespace {

struct arm_result {
  std::string name;
  double seconds = 0.0;
  double iters_per_sec = 0.0;
  double checksum = 0.0;
  std::map<std::string, op2::loop_profile> loops;
};

arm_result run_arm(const std::string& label, const op2::config& cfg,
                   const std::string& backend, int niter,
                   const airfoil::mesh_params& mp) {
  op2::init(cfg);
  op2::profiling::enable(true);
  op2::profiling::reset();
  auto s = airfoil::make_sim(airfoil::generate_mesh(mp));
  const auto r = airfoil::run_with_backend(s, niter, backend);
  arm_result out;
  out.name = label;
  out.seconds = r.seconds;
  out.iters_per_sec =
      r.seconds > 0.0 ? static_cast<double>(niter) / r.seconds : 0.0;
  out.checksum = airfoil::solution_checksum(s);
  out.loops = op2::profiling::snapshot();
  op2::profiling::enable(false);
  op2::profiling::reset();
  op2::finalize();
  return out;
}

int parse_flag(const char* arg, const char* name, int fallback) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    return std::atoi(arg + len + 1);
  }
  return fallback;
}

void print_arm(const arm_result& a) {
  std::printf("%10s  %8.2f ms  %8.2f iters/sec\n", a.name.c_str(),
              1e3 * a.seconds, a.iters_per_sec);
  for (const auto& [loop, prof] : a.loops) {
    std::printf("    %-24s %8.2f ms  %6llu calls", loop.c_str(),
                1e3 * prof.total_seconds,
                static_cast<unsigned long long>(prof.invocations));
    if (prof.fused_loops > 1) {
      std::printf("  (fused x%llu)",
                  static_cast<unsigned long long>(prof.fused_loops));
    }
    std::printf("\n");
  }
}

void json_arm(std::ofstream& json, const arm_result& a, bool last) {
  json << "    {\n"
       << "      \"name\": \"" << a.name << "\",\n"
       << "      \"wall_seconds\": " << a.seconds << ",\n"
       << "      \"iters_per_sec\": " << a.iters_per_sec << ",\n"
       << "      \"loops\": {\n";
  std::size_t i = 0;
  for (const auto& [loop, prof] : a.loops) {
    json << "        \"" << loop << "\": {\"total_ms\": "
         << 1e3 * prof.total_seconds
         << ", \"invocations\": " << prof.invocations
         << ", \"fused_loops\": " << prof.fused_loops << "}"
         << (++i == a.loops.size() ? "\n" : ",\n");
  }
  json << "      }\n    }" << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  int niter = 60;
  int imax = 200;
  for (int i = 1; i < argc; ++i) {
    niter = parse_flag(argv[i], "--iters", niter);
    imax = parse_flag(argv[i], "--imax", imax);
  }
  airfoil::mesh_params mp;
  mp.imax = imax;
  mp.jmax = imax / 2;

  // seq baseline with fusion OFF, the fused classic driver, and the
  // fused dataflow driver.
  auto unfused_cfg = op2::make_config("seq", 1, 128);
  unfused_cfg.fuse = false;
  auto fused_cfg = op2::make_config("seq", 1, 128);
  auto dataflow_cfg = op2::make_config("hpx_dataflow", 4, 128);

  std::printf("bench_airfoil: %dx%d mesh, %d iters\n", mp.imax, mp.jmax,
              niter);
  const auto seq = run_arm("seq", unfused_cfg, "seq", niter, mp);
  const auto fused = run_arm("fused", fused_cfg, "seq", niter, mp);
  const auto dataflow =
      run_arm("dataflow", dataflow_cfg, "hpx_dataflow", niter, mp);
  print_arm(seq);
  print_arm(fused);
  print_arm(dataflow);
  std::printf("fused speedup over seq: %.3fx  dataflow: %.3fx\n",
              seq.seconds / fused.seconds, seq.seconds / dataflow.seconds);

  {
    std::ofstream json("BENCH_airfoil.json");
    json << "{\n"
         << "  \"imax\": " << mp.imax << ",\n"
         << "  \"jmax\": " << mp.jmax << ",\n"
         << "  \"iters\": " << niter << ",\n"
         << "  \"arms\": [\n";
    json_arm(json, seq, false);
    json_arm(json, fused, false);
    json_arm(json, dataflow, true);
    json << "  ]\n}\n";
  }

  // Fusion reorders launches, never arithmetic: all arms must agree on
  // the solution to the last bit.
  if (seq.checksum != fused.checksum || seq.checksum != dataflow.checksum ||
      !std::isfinite(seq.checksum)) {
    std::fprintf(stderr,
                 "bench_airfoil: FAIL — arms disagree on the solution "
                 "(seq %.17g, fused %.17g, dataflow %.17g)\n",
                 seq.checksum, fused.checksum, dataflow.checksum);
    return 1;
  }
  return 0;
}
