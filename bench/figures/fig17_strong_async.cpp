// Figure 17: strong scaling of `#pragma omp parallel for` vs async with
// for_each(par(task)) — §III-A2.  Paper headline: ~5% scalability
// improvement at 32 threads from asynchronous task execution.
#include "figure_common.hpp"

int main() {
  figures::print_header(
      "Figure 17: strong scaling, omp vs async+for_each(par(task))",
      "[sim] speedup relative to 1 thread (higher is better)");
  const auto shape = figures::make_shape({});
  const double omp1 =
      figures::sim_ms_per_iter(shape, simsched::method::omp_forkjoin, 1);
  const double as1 =
      figures::sim_ms_per_iter(shape, simsched::method::hpx_async, 1);
  figures::print_series_header({"omp", "async"});
  double omp32 = 0.0;
  double as32 = 0.0;
  for (const unsigned t : figures::paper_threads) {
    const double omp =
        figures::sim_ms_per_iter(shape, simsched::method::omp_forkjoin, t);
    const double as =
        figures::sim_ms_per_iter(shape, simsched::method::hpx_async, t);
    if (t == 32) {
      omp32 = omp;
      as32 = as;
    }
    std::printf("%8u %16.2f %16.2f\n", t, omp1 / omp, as1 / as);
  }
  std::printf("\nasync improvement over omp at 32 threads: %+.1f%% "
              "(paper: ~5%%)\n",
              (omp32 / as32 - 1.0) * 100.0);
  return 0;
}
