// The paper's headline numbers (abstract / §IV / §V), reproduced in one
// table: 1-thread parity of HPX and OpenMP, ~5% improvement from async,
// ~21% improvement from dataflow at 32 threads.
#include "figure_common.hpp"

int main() {
  figures::print_header("Headline summary: paper claims vs this reproduction",
                        "[sim] virtual 16-core+HT node; Airfoil, real plans + "
                        "calibrated kernel costs (DESIGN.md \u00a76)");
  const auto shape = figures::make_shape({});

  const auto t = [&](simsched::method m, unsigned n) {
    return figures::sim_ms_per_iter(shape, m, n);
  };
  using simsched::method;

  const double omp1 = t(method::omp_forkjoin, 1);
  const double fe1 = t(method::hpx_foreach_auto, 1);
  const double as1 = t(method::hpx_async, 1);
  const double df1 = t(method::hpx_dataflow, 1);
  const double omp32 = t(method::omp_forkjoin, 32);
  const double as32 = t(method::hpx_async, 32);
  const double df32 = t(method::hpx_dataflow, 32);

  std::printf("%-52s %12s %12s\n", "claim", "paper", "measured");
  std::printf("%-52s %12s %11.1f%%\n",
              "1-thread parity: for_each vs omp (time delta)", "~0%",
              (fe1 / omp1 - 1.0) * 100.0);
  std::printf("%-52s %12s %11.1f%%\n",
              "1-thread parity: async vs omp (time delta)", "~0%",
              (as1 / omp1 - 1.0) * 100.0);
  std::printf("%-52s %12s %11.1f%%\n",
              "1-thread parity: dataflow vs omp (time delta)", "~0%",
              (df1 / omp1 - 1.0) * 100.0);
  std::printf("%-52s %12s %11.1f%%\n",
              "async improvement over omp at 32 threads", "~5%",
              (omp32 / as32 - 1.0) * 100.0);
  std::printf("%-52s %12s %11.1f%%\n",
              "dataflow improvement over omp at 32 threads", "~21%",
              (omp32 / df32 - 1.0) * 100.0);
  return 0;
}
