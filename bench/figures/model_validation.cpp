// Model-validation harness: runs the REAL Airfoil on this machine and
// the simulator on the SAME mesh with kernel costs measured here, then
// compares predicted vs actual time — the ground-truth check that the
// virtual node's accounting is anchored to reality where reality is
// available (1..2 threads on this box).
#include <cstdio>

#include "figure_common.hpp"

int main() {
  figures::print_header(
      "Model validation: simulator vs real execution",
      "same mesh, kernel costs measured on this machine; ms/iteration");
  const airfoil::mesh_params mp{200, 50};
  constexpr int real_iters = 10;
  constexpr int block = 128;

  // Engine-anchored kernel costs: each loop timed THROUGH op_par_loop,
  // so the model carries the engine's real per-element speed.
  op2::init({op2::backend::seq, 1, block, 0});
  auto s = airfoil::make_sim(airfoil::generate_mesh(mp));
  const auto raw = airfoil::measure_kernel_costs(s, 3);
  airfoil::reset_solution(s);
  const auto costs = airfoil::measure_loop_costs(s, 5);
  const auto shape = airfoil::extract_shape(s, costs, block, 1);
  op2::finalize();
  std::printf("us/elem raw kernels:  %.3f %.3f %.3f %.3f %.3f\n", raw.save,
              raw.adt, raw.res, raw.bres, raw.update);
  std::printf("us/elem via engine:   %.3f %.3f %.3f %.3f %.3f\n",
              costs.save, costs.adt, costs.res, costs.bres, costs.update);

  static const simsched::machine_model machine{};
  static const simsched::overhead_model ov{};

  std::printf("%12s %10s | %12s %12s %8s\n", "method", "threads",
              "real ms/it", "sim ms/it", "ratio");
  // Validate every registered synchronous backend the simulator can
  // model (the fork-join-shaped ones; async methods overlap the driver,
  // so wall time is compared in fig15's cross-check instead).
  for (const auto& name : op2::backend_registry::names()) {
    const auto caps = op2::backend_registry::shared(name).capabilities();
    if (caps.asynchronous || caps.sim_method[0] == '\0') {
      continue;
    }
    const auto m = simsched::method_from_name(caps.sim_method);
    for (const unsigned t : {1u, 2u}) {
      op2::init(op2::make_config(name, t, block));
      auto sim = airfoil::make_sim(airfoil::generate_mesh(mp));
      const double real_ms =
          1000.0 * airfoil::run_with_backend(sim, real_iters, name).seconds /
          real_iters;
      op2::finalize();
      const double sim_ms =
          simsched::simulate_airfoil(shape, m, t, machine, ov) / 1000.0;
      std::printf("%12s %10u | %12.3f %12.3f %8.2f\n", name.c_str(), t,
                  real_ms, sim_ms, real_ms / sim_ms);
    }
  }
  std::printf("\nratio ~1 at 1 thread anchors the model; at 2+ threads this "
              "single-core box oversubscribes, so real >= sim is expected\n");
  return 0;
}
