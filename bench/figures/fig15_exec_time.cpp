// Figure 15: execution time of the Airfoil application under
// `#pragma omp parallel for`, for_each, async and dataflow, versus
// thread count.  The paper's observation: all methods tie at 1 thread;
// async and dataflow pull ahead as threads grow.
//
// Output: one row per thread count, simulated ms/iteration per method,
// followed by a real-execution cross-check on this machine.
#include "figure_common.hpp"

namespace {

void real_execution_check() {
  std::printf("\n[real] Airfoil on this machine (small mesh, wall ms/iter; "
              "thread counts beyond the local core count oversubscribe)\n");
  const airfoil::mesh_params mp{96, 24};
  constexpr int iters = 5;
  std::printf("%8s %16s %16s %16s %16s\n", "threads", "omp(forkjoin)",
              "for_each", "async", "dataflow");
  for (const unsigned t : {1u, 2u, 4u}) {
    double fj = 0.0;
    double fe = 0.0;
    double as = 0.0;
    double df = 0.0;
    {
      op2::init({op2::backend::forkjoin, t, 128, 0});
      auto s = airfoil::make_sim(airfoil::generate_mesh(mp));
      fj = airfoil::run_classic(s, iters).seconds;
    }
    {
      op2::init({op2::backend::hpx_foreach, t, 128, 0});
      auto s = airfoil::make_sim(airfoil::generate_mesh(mp));
      fe = airfoil::run_classic(s, iters).seconds;
    }
    {
      op2::init({op2::backend::hpx_async, t, 128, 0});
      auto s = airfoil::make_sim(airfoil::generate_mesh(mp));
      as = airfoil::run_async(s, iters).seconds;
    }
    {
      op2::init({op2::backend::hpx_dataflow, t, 128, 0});
      auto s = airfoil::make_sim(airfoil::generate_mesh(mp));
      df = airfoil::run_dataflow(s, iters).seconds;
    }
    op2::finalize();
    const double scale = 1000.0 / iters;
    std::printf("%8u %16.2f %16.2f %16.2f %16.2f\n", t, fj * scale,
                fe * scale, as * scale, df * scale);
  }
}

}  // namespace

int main() {
  figures::print_header(
      "Figure 15: Airfoil execution time vs threads",
      "[sim] virtual 16-core+HT node, ms per iteration (lower is better)");
  const auto shape = figures::make_shape({});
  figures::print_series_header(
      {"omp", "for_each", "async", "dataflow"});
  for (const unsigned t : figures::paper_threads) {
    std::printf("%8u %16.3f %16.3f %16.3f %16.3f\n", t,
                figures::sim_ms_per_iter(shape,
                                         simsched::method::omp_forkjoin, t),
                figures::sim_ms_per_iter(
                    shape, simsched::method::hpx_foreach_auto, t),
                figures::sim_ms_per_iter(shape, simsched::method::hpx_async,
                                         t),
                figures::sim_ms_per_iter(shape,
                                         simsched::method::hpx_dataflow, t));
  }
  real_execution_check();
  return 0;
}
