// Figure 15: execution time of the Airfoil application under
// `#pragma omp parallel for`, for_each, async and dataflow, versus
// thread count.  The paper's observation: all methods tie at 1 thread;
// async and dataflow pull ahead as threads grow.
//
// The method list is not hard-coded: both tables enumerate
// op2::backend_registry and include every executor the simulator can
// model (capabilities().sim_method non-empty), so a newly registered
// backend shows up as an extra column automatically.
//
// Output: one row per thread count, simulated ms/iteration per method,
// followed by a real-execution cross-check on this machine.
#include <utility>

#include "figure_common.hpp"

namespace {

/// Registered backends the virtual node can model, with their simsched
/// methods, in registration order (the paper's column order).
std::vector<std::pair<std::string, simsched::method>> simulated_backends() {
  std::vector<std::pair<std::string, simsched::method>> out;
  for (const auto& name : op2::backend_registry::names()) {
    const auto caps = op2::backend_registry::shared(name).capabilities();
    if (caps.sim_method[0] != '\0') {
      out.emplace_back(name, simsched::method_from_name(caps.sim_method));
    }
  }
  return out;
}

void real_execution_check(
    const std::vector<std::pair<std::string, simsched::method>>& methods) {
  std::printf("\n[real] Airfoil on this machine (small mesh, wall ms/iter; "
              "thread counts beyond the local core count oversubscribe)\n");
  const airfoil::mesh_params mp{96, 24};
  constexpr int iters = 5;
  std::printf("%8s", "threads");
  for (const auto& [name, m] : methods) {
    std::printf(" %16s", name.c_str());
  }
  std::printf("\n");
  for (const unsigned t : {1u, 2u, 4u}) {
    std::printf("%8u", t);
    for (const auto& [name, m] : methods) {
      op2::init(op2::make_config(name, t, 128));
      auto s = airfoil::make_sim(airfoil::generate_mesh(mp));
      const double secs = airfoil::run_with_backend(s, iters, name).seconds;
      std::printf(" %16.2f", secs * 1000.0 / iters);
    }
    std::printf("\n");
  }
  op2::finalize();
}

}  // namespace

int main() {
  figures::print_header(
      "Figure 15: Airfoil execution time vs threads",
      "[sim] virtual 16-core+HT node, ms per iteration (lower is better)");
  const auto methods = simulated_backends();
  const auto shape = figures::make_shape({});
  std::vector<std::string> labels;
  for (const auto& [name, m] : methods) {
    labels.push_back(name);
  }
  figures::print_series_header(labels);
  for (const unsigned t : figures::paper_threads) {
    std::printf("%8u", t);
    for (const auto& [name, m] : methods) {
      std::printf(" %16.3f", figures::sim_ms_per_iter(shape, m, t));
    }
    std::printf("\n");
  }
  real_execution_check(methods);
  return 0;
}
