// Worker-utilisation breakdown per method at 32 threads — quantifies
// WHERE each method loses time (the mechanism behind Figs 15-18):
// kernel work vs overhead tasks vs idle waiting at barriers /
// dependencies, extracted from the simulator's schedule trace.
#include <cstdio>
#include <vector>

#include "figure_common.hpp"
#include "simsched/engine.hpp"

int main() {
  figures::print_header(
      "Method utilisation at 32 threads (virtual node)",
      "[sim] capacity split: kernel work / overhead tasks / idle");
  const auto shape = figures::make_shape({});
  static const simsched::machine_model machine{};
  static const simsched::overhead_model ov{};
  constexpr unsigned threads = 32;

  // Kernel work is identical across methods (the actual loops).
  const double kernel_us =
      (shape.save.total_cost_us() +
       2.0 * (shape.adt.total_cost_us() + shape.res.total_cost_us() +
              shape.bres.total_cost_us() + shape.update.total_cost_us())) *
      shape.niter;

  std::printf("%20s %10s %10s %10s %10s\n", "method", "ms/iter", "kernel%",
              "overhead%", "idle%");
  for (const auto m :
       {simsched::method::omp_forkjoin, simsched::method::hpx_foreach_auto,
        simsched::method::hpx_foreach_static, simsched::method::hpx_async,
        simsched::method::hpx_dataflow}) {
    const auto g = simsched::build_airfoil_graph(shape, m, threads, ov);
    std::vector<simsched::task_interval> trace;
    const auto stats = simsched::simulate(g, threads, machine, &trace);

    // Busy time in core-equivalents: each interval contributes its
    // duration x the speed it ran at (serial lane runs at 1.0).
    const double capacity =
        stats.makespan_us * machine.total_throughput(threads);
    const double busy = stats.total_work_us;  // work retired == busy core-eq
    const double kernel_share = kernel_us / capacity;
    const double overhead_share = (busy - kernel_us) / capacity;
    const double idle_share = 1.0 - busy / capacity;
    std::printf("%20s %10.3f %9.1f%% %9.1f%% %9.1f%%\n",
                simsched::to_string(m),
                stats.makespan_us / 1000.0 / shape.niter,
                100.0 * kernel_share, 100.0 * overhead_share,
                100.0 * idle_share);
  }
  std::printf("\nreading: omp/for_each idle at every colour barrier and "
              "master round trip; dataflow converts that idle into "
              "progress, paying only small overhead tasks\n");
  return 0;
}
