// Figure 19: weak scaling efficiency of all four methods — the problem
// size grows in proportion to the thread count; efficiency is
// time(1 thread, base problem) / time(N threads, N x base problem).
//
// Paper shape: dataflow best ("perfect overlap of computation with
// communication"), async next, for_each ~ omp; the hyper-threading knee
// appears past 16 threads for everyone.
#include "figure_common.hpp"

namespace {

simsched::airfoil_shape shape_with_cells(int cells, int block_size) {
  op2::init({op2::backend::seq, 1, block_size, 0});
  auto sim =
      airfoil::make_sim(airfoil::generate_mesh_with_cells(cells));
  auto shape = airfoil::extract_shape(sim, airfoil::nominal_kernel_costs(),
                                      block_size, figures::sim_iters);
  op2::finalize();
  return shape;
}

}  // namespace

int main() {
  figures::print_header(
      "Figure 19: weak scaling efficiency, all methods",
      "[sim] efficiency = t(1 thread, base) / t(N threads, N x base); "
      "1.0 = perfect");
  // Per-thread slice chosen so the 32-thread weak problem equals the
  // strong-scaling problem (400x100 = 40k cells): same operating point,
  // comparable overhead-to-work ratio.
  constexpr int base_cells = 1250;
  constexpr int block_size = 128;

  const auto base_shape = shape_with_cells(base_cells, block_size);
  const double base_omp = figures::sim_ms_per_iter(
      base_shape, simsched::method::omp_forkjoin, 1);
  const double base_fe = figures::sim_ms_per_iter(
      base_shape, simsched::method::hpx_foreach_auto, 1);
  const double base_as =
      figures::sim_ms_per_iter(base_shape, simsched::method::hpx_async, 1);
  const double base_df = figures::sim_ms_per_iter(
      base_shape, simsched::method::hpx_dataflow, 1);

  figures::print_series_header({"omp", "for_each", "async", "dataflow"});
  for (const unsigned t : figures::paper_threads) {
    const auto shape =
        shape_with_cells(base_cells * static_cast<int>(t), block_size);
    const double omp = figures::sim_ms_per_iter(
        shape, simsched::method::omp_forkjoin, t);
    const double fe = figures::sim_ms_per_iter(
        shape, simsched::method::hpx_foreach_auto, t);
    const double as =
        figures::sim_ms_per_iter(shape, simsched::method::hpx_async, t);
    const double df =
        figures::sim_ms_per_iter(shape, simsched::method::hpx_dataflow, t);
    std::printf("%8u %16.3f %16.3f %16.3f %16.3f\n", t, base_omp / omp,
                base_fe / fe, base_as / as, base_df / df);
  }
  std::printf("\nexpected shape: dataflow > async > for_each ~ omp; knee "
              "past 16 threads (hyper-threading)\n");
  return 0;
}
