// Figure 16: strong scaling of `#pragma omp parallel for` vs
// for_each(par) with auto-determined chunk size vs for_each(par) with a
// static chunk size for the large loops.
//
// Expected shape (paper): static chunking beats the auto-partitioner
// (whose ~1% sequential probe hurts large loops), and OpenMP still
// performs best of the three fork-join variants.
#include "figure_common.hpp"

int main() {
  figures::print_header(
      "Figure 16: strong scaling, omp vs for_each(auto) vs "
      "for_each(static chunk)",
      "[sim] speedup relative to 1 thread (higher is better)");
  const auto shape = figures::make_shape({});
  const double omp1 =
      figures::sim_ms_per_iter(shape, simsched::method::omp_forkjoin, 1);
  const double fa1 =
      figures::sim_ms_per_iter(shape, simsched::method::hpx_foreach_auto, 1);
  const double fs1 = figures::sim_ms_per_iter(
      shape, simsched::method::hpx_foreach_static, 1);
  figures::print_series_header({"omp", "foreach_auto", "foreach_static"});
  for (const unsigned t : figures::paper_threads) {
    const double omp =
        figures::sim_ms_per_iter(shape, simsched::method::omp_forkjoin, t);
    const double fa = figures::sim_ms_per_iter(
        shape, simsched::method::hpx_foreach_auto, t);
    const double fs = figures::sim_ms_per_iter(
        shape, simsched::method::hpx_foreach_static, t);
    std::printf("%8u %16.2f %16.2f %16.2f\n", t, omp1 / omp, fa1 / fa,
                fs1 / fs);
  }
  std::printf("\nexpected shape: static > auto; omp >= both for_each "
              "variants at 32 threads\n");
  return 0;
}
