// Per-loop breakdown of the Airfoil iteration — the table OP2's own
// reporting prints (time share per op_par_loop).  Real execution on
// this machine plus the simulated 32-thread split, showing where the
// time goes (res_calc dominates) and how the methods shift it.
#include <chrono>
#include <cstdio>

#include "figure_common.hpp"

namespace {

struct loop_times {
  double save = 0.0;
  double adt = 0.0;
  double res = 0.0;
  double bres = 0.0;
  double update = 0.0;

  double total() const { return save + adt + res + bres + update; }
};

/// Measures each loop by running the solver with per-loop timing: we
/// time the five loops of one classic iteration directly.
loop_times measure_real(airfoil::sim& s, int iters) {
  using clock = std::chrono::steady_clock;
  using namespace op2;
  loop_times t;
  const auto span = [](clock::time_point a) {
    return std::chrono::duration<double, std::milli>(clock::now() - a)
        .count();
  };
  for (int iter = 0; iter < iters; ++iter) {
    auto t0 = clock::now();
    op_par_loop(airfoil::save_soln, "save_soln", s.cells,
                op_arg_dat<double>(s.p_q, -1, OP_ID, 4, OP_READ),
                op_arg_dat<double>(s.p_qold, -1, OP_ID, 4, OP_WRITE));
    t.save += span(t0);
    double rms = 0.0;
    for (int k = 0; k < 2; ++k) {
      t0 = clock::now();
      op_par_loop(airfoil::adt_calc, "adt_calc", s.cells,
                  op_arg_dat<double>(s.p_x, 0, s.pcell, 2, OP_READ),
                  op_arg_dat<double>(s.p_x, 1, s.pcell, 2, OP_READ),
                  op_arg_dat<double>(s.p_x, 2, s.pcell, 2, OP_READ),
                  op_arg_dat<double>(s.p_x, 3, s.pcell, 2, OP_READ),
                  op_arg_dat<double>(s.p_q, -1, OP_ID, 4, OP_READ),
                  op_arg_dat<double>(s.p_adt, -1, OP_ID, 1, OP_WRITE));
      t.adt += span(t0);
      t0 = clock::now();
      op_par_loop(airfoil::res_calc, "res_calc", s.edges,
                  op_arg_dat<double>(s.p_x, 0, s.pedge, 2, OP_READ),
                  op_arg_dat<double>(s.p_x, 1, s.pedge, 2, OP_READ),
                  op_arg_dat<double>(s.p_q, 0, s.pecell, 4, OP_READ),
                  op_arg_dat<double>(s.p_q, 1, s.pecell, 4, OP_READ),
                  op_arg_dat<double>(s.p_adt, 0, s.pecell, 1, OP_READ),
                  op_arg_dat<double>(s.p_adt, 1, s.pecell, 1, OP_READ),
                  op_arg_dat<double>(s.p_res, 0, s.pecell, 4, OP_INC),
                  op_arg_dat<double>(s.p_res, 1, s.pecell, 4, OP_INC));
      t.res += span(t0);
      t0 = clock::now();
      op_par_loop(airfoil::bres_calc, "bres_calc", s.bedges,
                  op_arg_dat<double>(s.p_x, 0, s.pbedge, 2, OP_READ),
                  op_arg_dat<double>(s.p_x, 1, s.pbedge, 2, OP_READ),
                  op_arg_dat<double>(s.p_q, 0, s.pbecell, 4, OP_READ),
                  op_arg_dat<double>(s.p_adt, 0, s.pbecell, 1, OP_READ),
                  op_arg_dat<double>(s.p_res, 0, s.pbecell, 4, OP_INC),
                  op_arg_dat<int>(s.p_bound, -1, OP_ID, 1, OP_READ));
      t.bres += span(t0);
      t0 = clock::now();
      op_par_loop(airfoil::update, "update", s.cells,
                  op_arg_dat<double>(s.p_qold, -1, OP_ID, 4, OP_READ),
                  op_arg_dat<double>(s.p_q, -1, OP_ID, 4, OP_WRITE),
                  op_arg_dat<double>(s.p_res, -1, OP_ID, 4, OP_RW),
                  op_arg_dat<double>(s.p_adt, -1, OP_ID, 1, OP_READ),
                  op_arg_gbl<double>(&rms, 1, OP_INC));
      t.update += span(t0);
    }
  }
  return t;
}

void print_row(const char* name, double ms, double total) {
  std::printf("%12s %10.2f %9.1f%%\n", name, ms, 100.0 * ms / total);
}

}  // namespace

int main() {
  figures::print_header("Loop breakdown: where the Airfoil iteration goes",
                        "[real] classic API, forkjoin backend, this machine");
  op2::init({op2::backend::forkjoin, 2, 128, 0});
  auto s = airfoil::make_sim(airfoil::generate_mesh({200, 50}));
  constexpr int iters = 10;
  const auto t = measure_real(s, iters);
  op2::finalize();
  std::printf("%12s %10s %10s   (%d iterations, 2 stages each)\n", "loop",
              "ms", "share", iters);
  print_row("save_soln", t.save, t.total());
  print_row("adt_calc", t.adt, t.total());
  print_row("res_calc", t.res, t.total());
  print_row("bres_calc", t.bres, t.total());
  print_row("update", t.update, t.total());
  std::printf("%12s %10.2f\n", "total", t.total());

  std::printf("\n[sim] share of kernel work at the model's calibrated "
              "costs\n");
  const auto shape = figures::make_shape({});
  const double save = shape.save.total_cost_us();
  const double adt = 2 * shape.adt.total_cost_us();
  const double res = 2 * shape.res.total_cost_us();
  const double bres = 2 * shape.bres.total_cost_us();
  const double update = 2 * shape.update.total_cost_us();
  const double total = save + adt + res + bres + update;
  std::printf("%12s %9.1f%%\n", "save_soln", 100.0 * save / total);
  std::printf("%12s %9.1f%%\n", "adt_calc", 100.0 * adt / total);
  std::printf("%12s %9.1f%%\n", "res_calc", 100.0 * res / total);
  std::printf("%12s %9.1f%%\n", "bres_calc", 100.0 * bres / total);
  std::printf("%12s %9.1f%%\n", "update", 100.0 * update / total);
  return 0;
}
