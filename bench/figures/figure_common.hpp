// Shared scaffolding for the figure-reproduction harnesses (Figs 15-19
// of the paper).
//
// Every harness combines two measurements:
//   [real]  the actual runtime executing the actual Airfoil code on
//           this machine's threads (meaningful up to the local core
//           count; this box may have only one core)
//   [sim]   the virtual 16-core/32-thread Xeon node (simsched), driven
//           by the real OP2 plans and kernel costs measured here —
//           reproducing the paper's scaling envelope per DESIGN.md's
//           substitution table
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "airfoil/airfoil.hpp"
#include "airfoil/model_adapter.hpp"
#include "simsched/simsched.hpp"

namespace figures {

/// Thread counts of the paper's x axis.
inline const std::vector<unsigned> paper_threads{1, 2, 4, 8, 16, 24, 32};

/// Iterations used for the simulated runs (the paper runs 1000; the
/// schedule shape is periodic, so a few periods suffice and each row
/// reports time *per iteration*).
inline constexpr int sim_iters = 3;

struct figure_config {
  int imax = 400;
  int jmax = 100;
  int block_size = 128;
};

/// Builds the simulated-Airfoil shape: real mesh, real plans, nominal
/// per-element kernel costs (2012-Xeon magnitudes — the simulator's
/// calibrated operating point; see DESIGN.md §6).  Kernel costs
/// measured on *this* machine are printed alongside for transparency:
/// the figure ratios are properties of the work-to-overhead ratio, so
/// pinning the costs keeps the reproduction deterministic and at the
/// paper's scale.
inline simsched::airfoil_shape make_shape(const figure_config& cfg) {
  op2::init({op2::backend::seq, 1, cfg.block_size, 0});
  auto sim = airfoil::make_sim(
      airfoil::generate_mesh({cfg.imax, cfg.jmax}));
  const auto local = airfoil::measure_kernel_costs(sim, 2);
  airfoil::reset_solution(sim);
  const auto costs = airfoil::nominal_kernel_costs();
  std::printf("kernel us/elem (save/adt/res/bres/update): "
              "model %.3f/%.3f/%.3f/%.3f/%.3f, this machine "
              "%.3f/%.3f/%.3f/%.3f/%.3f\n",
              costs.save, costs.adt, costs.res, costs.bres, costs.update,
              local.save, local.adt, local.res, local.bres, local.update);
  auto shape = airfoil::extract_shape(sim, costs, cfg.block_size, sim_iters);
  op2::finalize();
  return shape;
}

/// Simulated execution time per iteration, in milliseconds.
inline double sim_ms_per_iter(const simsched::airfoil_shape& shape,
                              simsched::method m, unsigned threads) {
  static const simsched::machine_model machine{};
  static const simsched::overhead_model overheads{};
  const double us =
      simsched::simulate_airfoil(shape, m, threads, machine, overheads);
  return us / 1000.0 / static_cast<double>(shape.niter);
}

inline void print_header(const char* title, const char* note) {
  std::printf("\n=== %s ===\n", title);
  std::printf("%s\n", note);
}

inline void print_series_header(const std::vector<std::string>& names) {
  std::printf("%8s", "threads");
  for (const auto& n : names) {
    std::printf(" %16s", n.c_str());
  }
  std::printf("\n");
}

}  // namespace figures
