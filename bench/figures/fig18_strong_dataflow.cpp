// Figure 18: strong scaling of `#pragma omp parallel for` vs dataflow
// (the modified OP2 API, §III-B).  Paper headline: ~21% scalability
// improvement at 32 threads from the automatically-built dependency
// tree (no global barriers, no driver round trips).
#include "figure_common.hpp"

int main() {
  figures::print_header(
      "Figure 18: strong scaling, omp vs dataflow (modified OP2 API)",
      "[sim] speedup relative to 1 thread (higher is better)");
  const auto shape = figures::make_shape({});
  const double omp1 =
      figures::sim_ms_per_iter(shape, simsched::method::omp_forkjoin, 1);
  const double df1 =
      figures::sim_ms_per_iter(shape, simsched::method::hpx_dataflow, 1);
  figures::print_series_header({"omp", "dataflow"});
  double omp32 = 0.0;
  double df32 = 0.0;
  for (const unsigned t : figures::paper_threads) {
    const double omp =
        figures::sim_ms_per_iter(shape, simsched::method::omp_forkjoin, t);
    const double df =
        figures::sim_ms_per_iter(shape, simsched::method::hpx_dataflow, t);
    if (t == 32) {
      omp32 = omp;
      df32 = df;
    }
    std::printf("%8u %16.2f %16.2f\n", t, omp1 / omp, df1 / df);
  }
  std::printf("\ndataflow improvement over omp at 32 threads: %+.1f%% "
              "(paper: ~21%%)\n",
              (omp32 / df32 - 1.0) * 100.0);
  return 0;
}
