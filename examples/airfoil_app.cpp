// The full Airfoil application as a command-line program — the
// reproduction's equivalent of OP2's airfoil binary reading
// new_grid.dat (we generate the mesh; see airfoil/mesh.hpp).
//
//   ./examples/airfoil_app [--backend=<name>] [--threads=N]
//                          [--imax=N] [--jmax=N] [--iters=N]
//                          [--block=N] [--chunk=N]
//                          [--save-mesh=path] [--profile] [--help]
//
// --backend accepts any name (or alias) registered in
// op2::backend_registry; --help lists what is available in this build.
//
// Prints the RMS residual every 100 iterations, like the original.
#include <cstdio>
#include <iostream>
#include <cstdlib>
#include <cstring>
#include <string>

#include "airfoil/airfoil.hpp"

namespace {

struct options {
  std::string backend = "forkjoin";
  unsigned threads = 2;
  int imax = 200;
  int jmax = 50;
  int iters = 200;
  int block = 128;
  std::size_t chunk = 0;
  std::string save_mesh;
  bool profile = false;
};

int usage(std::FILE* out = stderr, int code = 2) {
  std::fprintf(out,
               "usage: airfoil_app [--backend=<name>] [--threads=N]\n"
               "                   [--imax=N] [--jmax=N] [--iters=N] "
               "[--block=N] [--chunk=N]\n"
               "                   [--save-mesh=path] [--profile] "
               "[--help]\n"
               "registered backends:");
  for (const auto& name : op2::backend_registry::names()) {
    std::fprintf(out, " %s", name.c_str());
  }
  std::fprintf(out, "\n");
  return code;
}

bool parse_flag(const char* arg, const char* name, std::string& out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    out = arg + len + 1;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  options opt;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (parse_flag(argv[i], "--backend", value)) {
      opt.backend = value;
    } else if (parse_flag(argv[i], "--threads", value)) {
      opt.threads = static_cast<unsigned>(std::atoi(value.c_str()));
    } else if (parse_flag(argv[i], "--imax", value)) {
      opt.imax = std::atoi(value.c_str());
    } else if (parse_flag(argv[i], "--jmax", value)) {
      opt.jmax = std::atoi(value.c_str());
    } else if (parse_flag(argv[i], "--iters", value)) {
      opt.iters = std::atoi(value.c_str());
    } else if (parse_flag(argv[i], "--block", value)) {
      opt.block = std::atoi(value.c_str());
    } else if (parse_flag(argv[i], "--chunk", value)) {
      opt.chunk = static_cast<std::size_t>(std::atol(value.c_str()));
    } else if (parse_flag(argv[i], "--save-mesh", value)) {
      opt.save_mesh = value;
    } else if (std::string(argv[i]) == "--profile") {
      opt.profile = true;
    } else if (std::string(argv[i]) == "--help") {
      return usage(stdout, 0);
    } else {
      return usage();
    }
  }

  // Resolve through the registry: aliases canonicalise, typos get the
  // "unknown backend ... available: ..." message.
  op2::config cfg;
  try {
    cfg = op2::make_config(opt.backend, opt.threads, opt.block, opt.chunk);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return usage();
  }

  std::printf("airfoil: %dx%d cells, %d iterations, backend=%s, "
              "threads=%u, block=%d\n",
              opt.imax, opt.jmax, opt.iters, cfg.backend_name.c_str(),
              opt.threads, opt.block);

  op2::init(cfg);
  if (opt.profile) {
    op2::profiling::enable(true);
  }
  auto mesh = airfoil::generate_mesh({opt.imax, opt.jmax});
  if (!opt.save_mesh.empty()) {
    op2::write_mesh_file(opt.save_mesh, mesh);
    std::printf("mesh written to %s\n", opt.save_mesh.c_str());
  }
  auto sim = airfoil::make_sim(std::move(mesh));

  // Driver selection follows the executor's capabilities (dataflow API,
  // async futures, or the classic synchronous loop nest).
  airfoil::run_result result =
      airfoil::run_with_backend(sim, opt.iters, cfg.backend_name);

  for (std::size_t i = 99; i < result.rms_history.size(); i += 100) {
    std::printf("  iter %5zu  rms = %.6e\n", i + 1, result.rms_history[i]);
  }
  if (!result.rms_history.empty()) {
    std::printf("final rms = %.6e after %d iterations\n",
                result.rms_history.back(), opt.iters);
  }
  std::printf("elapsed: %.3f s (%.3f ms/iter), checksum = %.12e\n",
              result.seconds,
              1000.0 * result.seconds / static_cast<double>(opt.iters),
              airfoil::solution_checksum(sim));
  if (opt.profile) {
    op2::profiling::report(std::cout);
    op2::profiling::enable(false);
    op2::profiling::reset();
  }
  op2::finalize();
  return 0;
}
