// The full Airfoil application as a command-line program — the
// reproduction's equivalent of OP2's airfoil binary reading
// new_grid.dat (we generate the mesh; see airfoil/mesh.hpp).
//
//   ./examples/airfoil_app [--backend=seq|forkjoin|foreach|async|dataflow]
//                          [--threads=N] [--imax=N] [--jmax=N]
//                          [--iters=N] [--block=N] [--chunk=N]
//                          [--save-mesh=path] [--profile]
//
// Prints the RMS residual every 100 iterations, like the original.
#include <cstdio>
#include <iostream>
#include <cstdlib>
#include <cstring>
#include <string>

#include "airfoil/airfoil.hpp"

namespace {

struct options {
  std::string backend = "forkjoin";
  unsigned threads = 2;
  int imax = 200;
  int jmax = 50;
  int iters = 200;
  int block = 128;
  std::size_t chunk = 0;
  std::string save_mesh;
  bool profile = false;
};

int usage() {
  std::fprintf(stderr,
               "usage: airfoil_app [--backend=seq|forkjoin|foreach|async|"
               "dataflow] [--threads=N]\n"
               "                   [--imax=N] [--jmax=N] [--iters=N] "
               "[--block=N] [--chunk=N]\n"
               "                   [--save-mesh=path] [--profile]\n");
  return 2;
}

bool parse_flag(const char* arg, const char* name, std::string& out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    out = arg + len + 1;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  options opt;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (parse_flag(argv[i], "--backend", value)) {
      opt.backend = value;
    } else if (parse_flag(argv[i], "--threads", value)) {
      opt.threads = static_cast<unsigned>(std::atoi(value.c_str()));
    } else if (parse_flag(argv[i], "--imax", value)) {
      opt.imax = std::atoi(value.c_str());
    } else if (parse_flag(argv[i], "--jmax", value)) {
      opt.jmax = std::atoi(value.c_str());
    } else if (parse_flag(argv[i], "--iters", value)) {
      opt.iters = std::atoi(value.c_str());
    } else if (parse_flag(argv[i], "--block", value)) {
      opt.block = std::atoi(value.c_str());
    } else if (parse_flag(argv[i], "--chunk", value)) {
      opt.chunk = static_cast<std::size_t>(std::atol(value.c_str()));
    } else if (parse_flag(argv[i], "--save-mesh", value)) {
      opt.save_mesh = value;
    } else if (std::string(argv[i]) == "--profile") {
      opt.profile = true;
    } else {
      return usage();
    }
  }

  op2::backend bk;
  if (opt.backend == "seq") {
    bk = op2::backend::seq;
  } else if (opt.backend == "forkjoin") {
    bk = op2::backend::forkjoin;
  } else if (opt.backend == "foreach") {
    bk = op2::backend::hpx_foreach;
  } else if (opt.backend == "async") {
    bk = op2::backend::hpx_async;
  } else if (opt.backend == "dataflow") {
    bk = op2::backend::hpx_dataflow;
  } else {
    return usage();
  }

  std::printf("airfoil: %dx%d cells, %d iterations, backend=%s, "
              "threads=%u, block=%d\n",
              opt.imax, opt.jmax, opt.iters, opt.backend.c_str(),
              opt.threads, opt.block);

  op2::init({bk, opt.threads, opt.block, opt.chunk});
  if (opt.profile) {
    op2::profiling::enable(true);
  }
  auto mesh = airfoil::generate_mesh({opt.imax, opt.jmax});
  if (!opt.save_mesh.empty()) {
    op2::write_mesh_file(opt.save_mesh, mesh);
    std::printf("mesh written to %s\n", opt.save_mesh.c_str());
  }
  auto sim = airfoil::make_sim(std::move(mesh));

  airfoil::run_result result;
  switch (bk) {
    case op2::backend::hpx_async:
      result = airfoil::run_async(sim, opt.iters);
      break;
    case op2::backend::hpx_dataflow:
      result = airfoil::run_dataflow(sim, opt.iters);
      break;
    default:
      result = airfoil::run_classic(sim, opt.iters);
      break;
  }

  for (std::size_t i = 99; i < result.rms_history.size(); i += 100) {
    std::printf("  iter %5zu  rms = %.6e\n", i + 1, result.rms_history[i]);
  }
  if (!result.rms_history.empty()) {
    std::printf("final rms = %.6e after %d iterations\n",
                result.rms_history.back(), opt.iters);
  }
  std::printf("elapsed: %.3f s (%.3f ms/iter), checksum = %.12e\n",
              result.seconds,
              1000.0 * result.seconds / static_cast<double>(opt.iters),
              airfoil::solution_checksum(sim));
  if (opt.profile) {
    op2::profiling::report(std::cout);
    op2::profiling::enable(false);
    op2::profiling::reset();
  }
  op2::finalize();
  return 0;
}
