// Second domain application on the OP2 API: 2D linearised shallow-water
// equations on an unstructured quad mesh (the same mesh representation
// Airfoil uses).  Demonstrates that the library is a framework, not an
// Airfoil-shaped one-off:
//
//   dh/dt = -H (du/dx + dv/dy)         (continuity)
//   du/dt = -g dh/dx,  dv/dt = -g dh/dy (momentum)
//
// discretised finite-volume style with edge fluxes (indirect INC
// loops), a direct update loop, and a global energy reduction — the
// same loop taxonomy as the paper's application.
//
//   ./examples/shallow_water [iters]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "airfoil/mesh.hpp"
#include "op2/op2.hpp"

namespace {

constexpr double g = 9.81;   // gravity
constexpr double H = 10.0;   // mean depth
constexpr double dt = 1e-4;  // time step

// Edge flux: exchange between the two adjacent cells proportional to
// the state difference projected on the face normal (dx, dy from the
// node coordinates, same convention as Airfoil's res_calc).
void sw_flux(const double* x1, const double* x2, const double* qa,
             const double* qb, double* fa, double* fb) {
  const double dx = x1[0] - x2[0];
  const double dy = x1[1] - x2[1];
  // Normal flux of (h, u, v): upwind-free central differences with a
  // small diffusive term for stability.
  const double un_a = qa[1] * dy - qa[2] * dx;
  const double un_b = qb[1] * dy - qb[2] * dx;
  const double fh = 0.5 * H * (un_a + un_b) + 0.1 * (qa[0] - qb[0]);
  const double fu = 0.5 * g * (qa[0] + qb[0]) * dy + 0.1 * (qa[1] - qb[1]);
  const double fv = -0.5 * g * (qa[0] + qb[0]) * dx + 0.1 * (qa[2] - qb[2]);
  fa[0] += fh;
  fb[0] -= fh;
  fa[1] += fu;
  fb[1] -= fu;
  fa[2] += fv;
  fb[2] -= fv;
}

// Reflective boundary: no normal flow; only the pressure term acts.
void sw_bflux(const double* x1, const double* x2, const double* q,
              double* f) {
  const double dx = x1[0] - x2[0];
  const double dy = x1[1] - x2[1];
  f[1] += g * q[0] * dy;
  f[2] += -g * q[0] * dx;
}

void sw_update(double* q, double* f, const double* area, double* energy) {
  for (int n = 0; n < 3; ++n) {
    q[n] -= dt / area[0] * f[n];
    f[n] = 0.0;
  }
  energy[0] += 0.5 * (g * q[0] * q[0] + H * (q[1] * q[1] + q[2] * q[2]));
}

void cell_area(const double* x1, const double* x2, const double* x3,
               const double* x4, double* area) {
  area[0] = 0.5 * std::fabs((x3[0] - x1[0]) * (x4[1] - x2[1]) -
                            (x4[0] - x2[0]) * (x3[1] - x1[1]));
}

}  // namespace

int main(int argc, char** argv) {
  const int iters = argc > 1 ? std::atoi(argv[1]) : 100;
  op2::init({op2::backend::hpx_foreach, 4, 128, 0});

  // Reuse the unstructured quad-channel generator (flat bottom).
  airfoil::mesh_params params;
  params.imax = 100;
  params.jmax = 50;
  params.bump_height = 0.0;
  auto mesh = airfoil::generate_mesh(params);
  auto cells = mesh.set("cells");
  auto edges = mesh.set("edges");
  auto bedges = mesh.set("bedges");
  auto pcell = mesh.map("pcell");
  auto pedge = mesh.map("pedge");
  auto pecell = mesh.map("pecell");
  auto pbedge = mesh.map("pbedge");
  auto pbecell = mesh.map("pbecell");
  auto p_x = mesh.dat("p_x");

  auto q = op2::op_decl_dat<double>(cells, 3, "double", "q");  // h, u, v
  auto f = op2::op_decl_dat<double>(cells, 3, "double", "f");
  auto area = op2::op_decl_dat<double>(cells, 1, "double", "area");

  // Geometry pass: cell areas from corner coordinates (indirect reads).
  op2::op_par_loop(cell_area, "cell_area", cells,
                   op2::op_arg_dat<double>(p_x, 0, pcell, 2, op2::OP_READ),
                   op2::op_arg_dat<double>(p_x, 1, pcell, 2, op2::OP_READ),
                   op2::op_arg_dat<double>(p_x, 2, pcell, 2, op2::OP_READ),
                   op2::op_arg_dat<double>(p_x, 3, pcell, 2, op2::OP_READ),
                   op2::op_arg_dat<double>(area, -1, op2::OP_ID, 1,
                                           op2::OP_WRITE));

  // Initial condition: a Gaussian hump of water at the channel centre.
  {
    auto qv = q.data<double>();
    const auto xv = p_x.data<double>();
    const auto table = pcell.table();
    for (int c = 0; c < cells.size(); ++c) {
      double cx = 0.0;
      double cy = 0.0;
      for (int k = 0; k < 4; ++k) {
        const auto n = static_cast<std::size_t>(table[static_cast<std::size_t>(4 * c + k)]);
        cx += 0.25 * xv[2 * n];
        cy += 0.25 * xv[2 * n + 1];
      }
      const double r2 = (cx - 2.0) * (cx - 2.0) + (cy - 1.0) * (cy - 1.0);
      qv[static_cast<std::size_t>(3 * c)] = std::exp(-8.0 * r2);
    }
  }

  std::printf("shallow water: %d cells, %d edges, %d iterations\n",
              cells.size(), edges.size(), iters);
  double energy = 0.0;
  for (int iter = 0; iter < iters; ++iter) {
    op2::op_par_loop(sw_flux, "sw_flux", edges,
                     op2::op_arg_dat<double>(p_x, 0, pedge, 2, op2::OP_READ),
                     op2::op_arg_dat<double>(p_x, 1, pedge, 2, op2::OP_READ),
                     op2::op_arg_dat<double>(q, 0, pecell, 3, op2::OP_READ),
                     op2::op_arg_dat<double>(q, 1, pecell, 3, op2::OP_READ),
                     op2::op_arg_dat<double>(f, 0, pecell, 3, op2::OP_INC),
                     op2::op_arg_dat<double>(f, 1, pecell, 3, op2::OP_INC));
    op2::op_par_loop(sw_bflux, "sw_bflux", bedges,
                     op2::op_arg_dat<double>(p_x, 0, pbedge, 2, op2::OP_READ),
                     op2::op_arg_dat<double>(p_x, 1, pbedge, 2, op2::OP_READ),
                     op2::op_arg_dat<double>(q, 0, pbecell, 3, op2::OP_READ),
                     op2::op_arg_dat<double>(f, 0, pbecell, 3, op2::OP_INC));
    energy = 0.0;
    op2::op_par_loop(sw_update, "sw_update", cells,
                     op2::op_arg_dat<double>(q, -1, op2::OP_ID, 3,
                                             op2::OP_RW),
                     op2::op_arg_dat<double>(f, -1, op2::OP_ID, 3,
                                             op2::OP_RW),
                     op2::op_arg_dat<double>(area, -1, op2::OP_ID, 1,
                                             op2::OP_READ),
                     op2::op_arg_gbl<double>(&energy, 1, op2::OP_INC));
    if ((iter + 1) % 25 == 0) {
      std::printf("  iter %4d  total energy = %.6e\n", iter + 1, energy);
    }
  }

  double hmax = 0.0;
  for (int c = 0; c < cells.size(); ++c) {
    hmax = std::max(hmax, q.data<double>()[static_cast<std::size_t>(3 * c)]);
  }
  std::printf("final max surface height: %.4f (started at 1.0)\n", hmax);
  op2::finalize();
  return 0;
}
