// Quickstart: the OP2 API in ~80 lines.
//
// Declares a 1D chain mesh (edges connecting nodes), runs a direct
// loop, an indirect increment loop, and a global reduction — first
// synchronously on the fork-join backend, then through the futures and
// dataflow APIs of the paper.
//
//   ./examples/quickstart
#include <cstdio>
#include <numeric>
#include <vector>

#include "op2/op2.hpp"

namespace {

// User kernels, OP2 style: one pointer per op_arg.
void double_it(const double* in, double* out) { out[0] = 2.0 * in[0]; }

void scatter_add(double* left, double* right) {
  left[0] += 1.0;
  right[0] += 1.0;
}

void sum_up(const double* v, double* acc) { acc[0] += v[0]; }

}  // namespace

int main() {
  // 1. Start the runtime: HPX-style for_each backend, 4 worker threads.
  op2::init({op2::backend::hpx_foreach, 4, 64, 0});

  // 2. Declare the mesh: 1000 edges chaining 1001 nodes.
  const int nedge = 1000;
  auto edges = op2::op_decl_set(nedge, "edges");
  auto nodes = op2::op_decl_set(nedge + 1, "nodes");
  std::vector<int> conn;
  for (int e = 0; e < nedge; ++e) {
    conn.push_back(e);
    conn.push_back(e + 1);
  }
  auto e2n = op2::op_decl_map(edges, nodes, 2, conn, "e2n");

  // 3. Data on sets.
  std::vector<double> init(nedge, 1.5);
  auto length = op2::op_decl_dat<double>(edges, 1, "double",
                                         std::span<const double>(init),
                                         "length");
  auto doubled = op2::op_decl_dat<double>(edges, 1, "double", "doubled");
  auto degree = op2::op_decl_dat<double>(nodes, 1, "double", "degree");

  // 4. A direct loop: doubled[e] = 2 * length[e].
  op2::op_par_loop(double_it, "double_it", edges,
                   op2::op_arg_dat<double>(length, -1, op2::OP_ID, 1,
                                           op2::OP_READ),
                   op2::op_arg_dat<double>(doubled, -1, op2::OP_ID, 1,
                                           op2::OP_WRITE));

  // 5. An indirect increment loop: each edge bumps both its nodes.
  //    The runtime colours blocks so no atomics are needed.
  op2::op_par_loop(scatter_add, "scatter_add", edges,
                   op2::op_arg_dat<double>(degree, 0, e2n, 1, op2::OP_INC),
                   op2::op_arg_dat<double>(degree, 1, e2n, 1, op2::OP_INC));

  // 6. A global reduction.
  double total = 0.0;
  op2::op_par_loop(sum_up, "sum_up", edges,
                   op2::op_arg_dat<double>(doubled, -1, op2::OP_ID, 1,
                                           op2::OP_READ),
                   op2::op_arg_gbl<double>(&total, 1, op2::OP_INC));
  std::printf("sum(doubled) = %.1f (expect %.1f)\n", total, 2.0 * 1.5 * nedge);
  std::printf("degree[0] = %.0f, degree[500] = %.0f (expect 1 and 2)\n",
              degree.data<double>()[0], degree.data<double>()[500]);

  // 7. The same loop through the futures API (§III-A2): launch, then
  //    .get() when the result is needed.
  auto f = op2::op_par_loop_async(
      double_it, "double_it", edges,
      op2::op_arg_dat<double>(doubled, -1, op2::OP_ID, 1, op2::OP_READ),
      op2::op_arg_dat<double>(length, -1, op2::OP_ID, 1, op2::OP_WRITE));
  f.get();
  std::printf("after async re-double: length[0] = %.1f (expect 6.0)\n",
              length.data<double>()[0]);

  // 8. And through the dataflow API (§III-B): dependencies are derived
  //    from the argument futures automatically; no .get() placement.
  op2::op_dat_df dlen(length), ddbl(doubled);
  op2::op_par_loop(double_it, "double_it", edges,
                   op2::op_arg_dat1<double>(dlen, -1, op2::OP_ID, 1,
                                            op2::OP_READ),
                   op2::op_arg_dat1<double>(ddbl, -1, op2::OP_ID, 1,
                                            op2::OP_WRITE));
  op2::op_par_loop(double_it, "double_it", edges,
                   op2::op_arg_dat1<double>(ddbl, -1, op2::OP_ID, 1,
                                            op2::OP_READ),
                   op2::op_arg_dat1<double>(dlen, -1, op2::OP_ID, 1,
                                            op2::OP_WRITE));
  dlen.wait();
  std::printf("after dataflow chain: length[0] = %.1f (expect 24.0)\n",
              length.data<double>()[0]);

  op2::finalize();
  return 0;
}
