// The modified OP2 API (§III-B) in action on a multi-field pipeline:
// a 1D explicit heat solve with separate flux/limit/apply stages, all
// launched up front — the dependency tree (RAW, WAR, WAW chains across
// three dats) is derived automatically from the argument futures.
//
// Also prints what the runtime did: how many tasks executed and how
// many were stolen, to show asynchronous execution really happened.
//
//   ./examples/dataflow_pipeline [steps]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "hpxlite/scheduler.hpp"
#include "op2/op2.hpp"

namespace {

// flux[e] = T[left] - T[right] on each interior face.
void compute_flux(const double* tl, const double* tr, double* fl) {
  fl[0] = tl[0] - tr[0];
}

// Limiter stage: clamp fluxes (a second loop on the same dat, creating
// a WAW dependency with compute_flux that the API must order).
void limit_flux(double* fl) {
  if (fl[0] > 0.5) {
    fl[0] = 0.5;
  } else if (fl[0] < -0.5) {
    fl[0] = -0.5;
  }
}

// Apply stage: T gains flux from its left face, loses to its right.
void apply_flux(double* t_left_cell, double* t_right_cell,
                const double* fl) {
  constexpr double k = 0.4;
  t_left_cell[0] -= k * fl[0];
  t_right_cell[0] += k * fl[0];
}

void measure(const double* t, double* acc) { acc[0] += t[0]; }

}  // namespace

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 50;
  op2::init({op2::backend::hpx_dataflow, 4, 32, 0});

  const int ncell = 1 << 12;
  auto cells = op2::op_decl_set(ncell, "cells");
  auto faces = op2::op_decl_set(ncell - 1, "faces");
  std::vector<int> conn;
  for (int fidx = 0; fidx < ncell - 1; ++fidx) {
    conn.push_back(fidx);      // left cell
    conn.push_back(fidx + 1);  // right cell
  }
  auto f2c = op2::op_decl_map(faces, cells, 2, conn, "f2c");

  // A hot spot in the middle of a cold bar.
  std::vector<double> t0(static_cast<std::size_t>(ncell), 0.0);
  for (int c = ncell / 2 - 8; c < ncell / 2 + 8; ++c) {
    t0[static_cast<std::size_t>(c)] = 100.0;
  }
  op2::op_dat_df temp(op2::op_decl_dat<double>(
      cells, 1, "double", std::span<const double>(t0), "temp"));
  op2::op_dat_df flux(op2::op_decl_dat<double>(faces, 1, "double", "flux"));

  // Per-step observable slots (the paper's data[t] pattern).
  std::vector<double> heat(static_cast<std::size_t>(steps), 0.0);
  std::vector<hpxlite::shared_future<void>> step_done(
      static_cast<std::size_t>(steps));

  // Launch EVERY stage of EVERY step without blocking once.
  for (int s = 0; s < steps; ++s) {
    op2::op_par_loop(compute_flux, "compute_flux", faces,
                     op2::op_arg_dat1<double>(temp, 0, f2c, 1, op2::OP_READ),
                     op2::op_arg_dat1<double>(temp, 1, f2c, 1, op2::OP_READ),
                     op2::op_arg_dat1<double>(flux, -1, op2::OP_ID, 1,
                                              op2::OP_WRITE));
    op2::op_par_loop(limit_flux, "limit_flux", faces,
                     op2::op_arg_dat1<double>(flux, -1, op2::OP_ID, 1,
                                              op2::OP_RW));
    op2::op_par_loop(apply_flux, "apply_flux", faces,
                     op2::op_arg_dat1<double>(temp, 0, f2c, 1, op2::OP_INC),
                     op2::op_arg_dat1<double>(temp, 1, f2c, 1, op2::OP_INC),
                     op2::op_arg_dat1<double>(flux, -1, op2::OP_ID, 1,
                                              op2::OP_READ));
    step_done[static_cast<std::size_t>(s)] = op2::op_par_loop(
        measure, "measure", cells,
        op2::op_arg_dat1<double>(temp, -1, op2::OP_ID, 1, op2::OP_READ),
        op2::op_arg_gbl1<double>(&heat[static_cast<std::size_t>(s)], 1,
                                 op2::OP_INC));
  }
  std::printf("launched %d loops without blocking; draining the tree...\n",
              4 * steps);

  temp.wait();
  flux.wait();
  step_done.back().wait();

  const double total = heat.back();
  double peak = 0.0;
  for (const double t : temp.dat().data<double>()) {
    peak = std::max(peak, t);
  }
  std::printf("after %d steps: total heat = %.2f (conserved: %.2f), "
              "peak T = %.2f (diffused from 100)\n",
              steps, total, 16 * 100.0, peak);

  const auto st = hpxlite::runtime::get().stats();
  std::printf("runtime: %llu tasks executed, %llu stolen, %llu helped "
              "while waiting\n",
              static_cast<unsigned long long>(st.tasks_executed),
              static_cast<unsigned long long>(st.tasks_stolen),
              static_cast<unsigned long long>(st.helped_while_waiting));
  op2::finalize();
  return 0;
}
