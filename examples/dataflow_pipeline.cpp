// The modified OP2 API (§III-B) in action on a multi-field pipeline:
// a 1D explicit heat solve with separate flux/limit/apply stages, all
// launched up front — the dependency tree (RAW, WAR, WAW chains across
// three dats) is derived automatically from the argument futures.
//
// The two adjacent direct loops on flux (limit then damp) are run as
// ONE fused dataflow node (`op_par_loop_fused`): the fusion plan the
// pipeline executes under is printed first, straight from the
// legality planner — the indirect stages stay singletons, the direct
// pair fuses.
//
// Also prints what the runtime did: how many tasks executed and how
// many were stolen, to show asynchronous execution really happened.
//
//   ./examples/dataflow_pipeline [steps]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "hpxlite/scheduler.hpp"
#include "op2/fusion.hpp"
#include "op2/op2.hpp"

namespace {

// flux[e] = T[left] - T[right] on each interior face.
void compute_flux(const double* tl, const double* tr, double* fl) {
  fl[0] = tl[0] - tr[0];
}

// Limiter stage: clamp fluxes (a second loop on the same dat, creating
// a WAW dependency with compute_flux that the API must order).
void limit_flux(double* fl) {
  if (fl[0] > 0.5) {
    fl[0] = 0.5;
  } else if (fl[0] < -0.5) {
    fl[0] = -0.5;
  }
}

// Apply stage: T gains flux from its left face, loses to its right.
void apply_flux(double* t_left_cell, double* t_right_cell,
                const double* fl) {
  constexpr double k = 0.4;
  t_left_cell[0] -= k * fl[0];
  t_right_cell[0] += k * fl[0];
}

// Damping stage: a second direct RW loop on flux, adjacent to
// limit_flux — exactly the shape the fusion planner merges.
void scale_flux(double* fl) { fl[0] *= 0.98; }

void measure(const double* t, double* acc) { acc[0] += t[0]; }

/// The per-step loop chain, described to the fusion planner the same
/// way the runtime sees it: set + args per loop.  Returns the plan the
/// pipeline below executes under.
op2::fusion::fusion_plan describe_pipeline() {
  using op2::fusion::arg_desc;
  using op2::fusion::loop_desc;
  const auto dat = [](const char* id, op2::access acc) {
    arg_desc a;
    a.dat = id;
    a.acc = acc;
    return a;
  };
  const auto via = [](const char* id, const char* map, op2::access acc) {
    arg_desc a;
    a.dat = id;
    a.map = map;
    a.acc = acc;
    return a;
  };
  const auto gbl = [](const char* id, op2::access acc) {
    arg_desc a;
    a.gbl = id;
    a.acc = acc;
    return a;
  };
  const auto loop = [](const char* name, const char* set,
                       std::vector<arg_desc> args) {
    loop_desc l;
    l.name = name;
    l.set = set;
    l.args = std::move(args);
    return l;
  };
  return op2::fusion::plan_fusion({
      loop("compute_flux", "faces",
           {via("temp", "f2c", op2::OP_READ), via("temp", "f2c", op2::OP_READ),
            dat("flux", op2::OP_WRITE)}),
      loop("limit_flux", "faces", {dat("flux", op2::OP_RW)}),
      loop("scale_flux", "faces", {dat("flux", op2::OP_RW)}),
      loop("apply_flux", "faces",
           {via("temp", "f2c", op2::OP_INC), via("temp", "f2c", op2::OP_INC),
            dat("flux", op2::OP_READ)}),
      loop("measure", "cells",
           {dat("temp", op2::OP_READ), gbl("heat", op2::OP_INC)}),
  });
}

}  // namespace

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 50;
  op2::init({op2::backend::hpx_dataflow, 4, 32, 0});

  const int ncell = 1 << 12;
  auto cells = op2::op_decl_set(ncell, "cells");
  auto faces = op2::op_decl_set(ncell - 1, "faces");
  std::vector<int> conn;
  for (int fidx = 0; fidx < ncell - 1; ++fidx) {
    conn.push_back(fidx);      // left cell
    conn.push_back(fidx + 1);  // right cell
  }
  auto f2c = op2::op_decl_map(faces, cells, 2, conn, "f2c");

  // A hot spot in the middle of a cold bar.
  std::vector<double> t0(static_cast<std::size_t>(ncell), 0.0);
  for (int c = ncell / 2 - 8; c < ncell / 2 + 8; ++c) {
    t0[static_cast<std::size_t>(c)] = 100.0;
  }
  op2::op_dat_df temp(op2::op_decl_dat<double>(
      cells, 1, "double", std::span<const double>(t0), "temp"));
  op2::op_dat_df flux(op2::op_decl_dat<double>(faces, 1, "double", "flux"));

  // What will fuse and what will not, before anything runs.
  std::printf("%s", describe_pipeline().describe().c_str());

  // Per-step observable slots (the paper's data[t] pattern).
  static op2::fused_handle fused_limit_scale;
  std::vector<double> heat(static_cast<std::size_t>(steps), 0.0);
  std::vector<hpxlite::shared_future<void>> step_done(
      static_cast<std::size_t>(steps));

  // Launch EVERY stage of EVERY step without blocking once.
  for (int s = 0; s < steps; ++s) {
    op2::op_par_loop(compute_flux, "compute_flux", faces,
                     op2::op_arg_dat1<double>(temp, 0, f2c, 1, op2::OP_READ),
                     op2::op_arg_dat1<double>(temp, 1, f2c, 1, op2::OP_READ),
                     op2::op_arg_dat1<double>(flux, -1, op2::OP_ID, 1,
                                              op2::OP_WRITE));
    // The planner's fused pair, as ONE dataflow node: limit then damp
    // run element-interleaved in a single traversal of flux.
    op2::op_par_loop_fused(
        fused_limit_scale, faces,
        op2::fuse_loop(limit_flux, "limit_flux",
                       op2::op_arg_dat1<double>(flux, -1, op2::OP_ID, 1,
                                                op2::OP_RW)),
        op2::fuse_loop(scale_flux, "scale_flux",
                       op2::op_arg_dat1<double>(flux, -1, op2::OP_ID, 1,
                                                op2::OP_RW)));
    op2::op_par_loop(apply_flux, "apply_flux", faces,
                     op2::op_arg_dat1<double>(temp, 0, f2c, 1, op2::OP_INC),
                     op2::op_arg_dat1<double>(temp, 1, f2c, 1, op2::OP_INC),
                     op2::op_arg_dat1<double>(flux, -1, op2::OP_ID, 1,
                                              op2::OP_READ));
    step_done[static_cast<std::size_t>(s)] = op2::op_par_loop(
        measure, "measure", cells,
        op2::op_arg_dat1<double>(temp, -1, op2::OP_ID, 1, op2::OP_READ),
        op2::op_arg_gbl1<double>(&heat[static_cast<std::size_t>(s)], 1,
                                 op2::OP_INC));
  }
  std::printf("launched %d loops as %d nodes without blocking; "
              "draining the tree...\n",
              5 * steps, 4 * steps);

  temp.wait();
  flux.wait();
  step_done.back().wait();

  const double total = heat.back();
  double peak = 0.0;
  for (const double t : temp.dat().data<double>()) {
    peak = std::max(peak, t);
  }
  std::printf("after %d steps: total heat = %.2f (conserved: %.2f), "
              "peak T = %.2f (diffused from 100)\n",
              steps, total, 16 * 100.0, peak);

  const auto st = hpxlite::runtime::get().stats();
  std::printf("runtime: %llu tasks executed, %llu stolen, %llu helped "
              "while waiting\n",
              static_cast<unsigned long long>(st.tasks_executed),
              static_cast<unsigned long long>(st.tasks_stolen),
              static_cast<unsigned long long>(st.helped_while_waiting));
  op2::finalize();
  return 0;
}
