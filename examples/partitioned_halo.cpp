// Distributed-execution substrate demo: partition the Airfoil mesh
// across P simulated ranks with recursive coordinate bisection, build
// halo (ghost) lists, and run an edge sweep rank-by-rank with explicit
// halo exchanges — the structure OP2's MPI mode layers under the
// OpenMP/HPX node-level parallelism the paper studies.  The partitioned
// result is verified against the single-domain sweep.
//
//   ./examples/partitioned_halo [nparts]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "airfoil/mesh.hpp"
#include "op2/op2.hpp"

namespace {

/// One edge sweep: every edge adds the across-edge cell difference into
/// both cells (a diffusion step).  `allowed` restricts which edges this
/// rank executes (empty = all).
void sweep(const op2::op_map& pecell, std::vector<double>& value,
           std::vector<double>& delta, const std::vector<int>* edges) {
  const auto body = [&](int e) {
    const auto a = static_cast<std::size_t>(pecell.at(e, 0));
    const auto b = static_cast<std::size_t>(pecell.at(e, 1));
    const double f = 0.25 * (value[a] - value[b]);
    delta[a] -= f;
    delta[b] += f;
  };
  if (edges == nullptr) {
    for (int e = 0; e < pecell.from().size(); ++e) {
      body(e);
    }
  } else {
    for (const int e : *edges) {
      body(e);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int nparts = argc > 1 ? std::atoi(argv[1]) : 4;
  auto mesh = airfoil::generate_mesh({80, 20});
  const auto& pecell = mesh.map("pecell");
  const auto& pcell = mesh.map("pcell");
  const auto x = mesh.dat("p_x").data<double>();
  const int ncell = mesh.set("cells").size();
  const int nedge = mesh.set("edges").size();

  // Partition cells geometrically by centroid.
  std::vector<double> centroids(static_cast<std::size_t>(ncell) * 2);
  for (int c = 0; c < ncell; ++c) {
    for (int k = 0; k < 4; ++k) {
      const auto n = static_cast<std::size_t>(pcell.at(c, k));
      centroids[static_cast<std::size_t>(2 * c)] += 0.25 * x[2 * n];
      centroids[static_cast<std::size_t>(2 * c + 1)] += 0.25 * x[2 * n + 1];
    }
  }
  const auto cell_parts = op2::partition_rcb(centroids, nparts);

  // Edges follow their first cell (owner-computes rule).
  op2::partitioning edge_parts;
  edge_parts.nparts = nparts;
  edge_parts.part_of.resize(static_cast<std::size_t>(nedge));
  std::vector<std::vector<int>> rank_edges(static_cast<std::size_t>(nparts));
  for (int e = 0; e < nedge; ++e) {
    const int owner =
        cell_parts.part_of[static_cast<std::size_t>(pecell.at(e, 0))];
    edge_parts.part_of[static_cast<std::size_t>(e)] = owner;
    rank_edges[static_cast<std::size_t>(owner)].push_back(e);
  }

  const auto halos = op2::build_halos(pecell, edge_parts, cell_parts);
  std::printf("partitioned %d cells / %d edges into %d ranks "
              "(imbalance %.3f, edge cut %d)\n",
              ncell, nedge, nparts, op2::imbalance(cell_parts),
              op2::edge_cut(pecell, cell_parts));
  for (int p = 0; p < nparts; ++p) {
    std::printf("  rank %d: %5zu edges, %4zu ghost cells\n", p,
                rank_edges[static_cast<std::size_t>(p)].size(),
                halos[static_cast<std::size_t>(p)].size());
  }

  // Initial field: a smooth bump.
  std::vector<double> value(static_cast<std::size_t>(ncell));
  for (int c = 0; c < ncell; ++c) {
    value[static_cast<std::size_t>(c)] =
        std::sin(centroids[static_cast<std::size_t>(2 * c)]) +
        0.5 * centroids[static_cast<std::size_t>(2 * c + 1)];
  }

  // Reference: single-domain sweeps.
  std::vector<double> ref = value;
  {
    std::vector<double> delta(static_cast<std::size_t>(ncell), 0.0);
    for (int step = 0; step < 10; ++step) {
      std::fill(delta.begin(), delta.end(), 0.0);
      sweep(pecell, ref, delta, nullptr);
      for (int c = 0; c < ncell; ++c) {
        ref[static_cast<std::size_t>(c)] += delta[static_cast<std::size_t>(c)];
      }
    }
  }

  // Partitioned: each rank owns a private copy of its cells + ghosts;
  // before each step the "exchange" refreshes ghosts from the owners,
  // after each step owners accumulate the deltas their edges produced
  // on foreign cells (the INC halo reduction of a real MPI OP2 run).
  std::vector<double> dist = value;
  {
    std::vector<double> delta(static_cast<std::size_t>(ncell), 0.0);
    for (int step = 0; step < 10; ++step) {
      std::fill(delta.begin(), delta.end(), 0.0);
      // Each rank executes its edges.  Reads of ghost cells hit the
      // freshly-exchanged `dist` (owners wrote it last step); INC
      // contributions land in the shared delta, standing in for the
      // halo reduction message.
      for (int p = 0; p < nparts; ++p) {
        sweep(pecell, dist, delta, &rank_edges[static_cast<std::size_t>(p)]);
      }
      for (int c = 0; c < ncell; ++c) {
        dist[static_cast<std::size_t>(c)] +=
            delta[static_cast<std::size_t>(c)];
      }
    }
  }

  double max_err = 0.0;
  for (int c = 0; c < ncell; ++c) {
    max_err = std::max(max_err,
                       std::fabs(dist[static_cast<std::size_t>(c)] -
                                 ref[static_cast<std::size_t>(c)]));
  }
  std::printf("partitioned vs single-domain after 10 sweeps: max |diff| = "
              "%.3e %s\n",
              max_err, max_err < 1e-12 ? "(exact)" : "(MISMATCH)");
  return max_err < 1e-12 ? 0 : 1;
}
