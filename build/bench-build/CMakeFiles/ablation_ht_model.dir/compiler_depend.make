# Empty compiler generated dependencies file for ablation_ht_model.
# This may be replaced when dependencies are built.
