file(REMOVE_RECURSE
  "../bench/ablation_ht_model"
  "../bench/ablation_ht_model.pdb"
  "CMakeFiles/ablation_ht_model.dir/ablations/ablation_ht_model.cpp.o"
  "CMakeFiles/ablation_ht_model.dir/ablations/ablation_ht_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ht_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
