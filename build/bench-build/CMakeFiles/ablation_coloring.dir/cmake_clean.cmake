file(REMOVE_RECURSE
  "../bench/ablation_coloring"
  "../bench/ablation_coloring.pdb"
  "CMakeFiles/ablation_coloring.dir/ablations/ablation_coloring.cpp.o"
  "CMakeFiles/ablation_coloring.dir/ablations/ablation_coloring.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
