# Empty compiler generated dependencies file for fig19_weak_scaling.
# This may be replaced when dependencies are built.
