file(REMOVE_RECURSE
  "../bench/fig19_weak_scaling"
  "../bench/fig19_weak_scaling.pdb"
  "CMakeFiles/fig19_weak_scaling.dir/figures/fig19_weak_scaling.cpp.o"
  "CMakeFiles/fig19_weak_scaling.dir/figures/fig19_weak_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_weak_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
