file(REMOVE_RECURSE
  "../bench/micro_hpxlite"
  "../bench/micro_hpxlite.pdb"
  "CMakeFiles/micro_hpxlite.dir/micro/micro_hpxlite.cpp.o"
  "CMakeFiles/micro_hpxlite.dir/micro/micro_hpxlite.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_hpxlite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
