# Empty compiler generated dependencies file for micro_hpxlite.
# This may be replaced when dependencies are built.
