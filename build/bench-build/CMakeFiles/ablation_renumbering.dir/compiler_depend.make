# Empty compiler generated dependencies file for ablation_renumbering.
# This may be replaced when dependencies are built.
