file(REMOVE_RECURSE
  "../bench/ablation_renumbering"
  "../bench/ablation_renumbering.pdb"
  "CMakeFiles/ablation_renumbering.dir/ablations/ablation_renumbering.cpp.o"
  "CMakeFiles/ablation_renumbering.dir/ablations/ablation_renumbering.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_renumbering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
