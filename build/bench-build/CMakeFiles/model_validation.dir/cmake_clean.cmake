file(REMOVE_RECURSE
  "../bench/model_validation"
  "../bench/model_validation.pdb"
  "CMakeFiles/model_validation.dir/figures/model_validation.cpp.o"
  "CMakeFiles/model_validation.dir/figures/model_validation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
