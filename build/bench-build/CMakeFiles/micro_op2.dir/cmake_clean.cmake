file(REMOVE_RECURSE
  "../bench/micro_op2"
  "../bench/micro_op2.pdb"
  "CMakeFiles/micro_op2.dir/micro/micro_op2.cpp.o"
  "CMakeFiles/micro_op2.dir/micro/micro_op2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_op2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
