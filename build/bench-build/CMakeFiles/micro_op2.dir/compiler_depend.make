# Empty compiler generated dependencies file for micro_op2.
# This may be replaced when dependencies are built.
