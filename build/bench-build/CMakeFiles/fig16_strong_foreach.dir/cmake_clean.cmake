file(REMOVE_RECURSE
  "../bench/fig16_strong_foreach"
  "../bench/fig16_strong_foreach.pdb"
  "CMakeFiles/fig16_strong_foreach.dir/figures/fig16_strong_foreach.cpp.o"
  "CMakeFiles/fig16_strong_foreach.dir/figures/fig16_strong_foreach.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_strong_foreach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
