# Empty dependencies file for fig16_strong_foreach.
# This may be replaced when dependencies are built.
