file(REMOVE_RECURSE
  "../bench/fig15_exec_time"
  "../bench/fig15_exec_time.pdb"
  "CMakeFiles/fig15_exec_time.dir/figures/fig15_exec_time.cpp.o"
  "CMakeFiles/fig15_exec_time.dir/figures/fig15_exec_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_exec_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
