file(REMOVE_RECURSE
  "../bench/fig17_strong_async"
  "../bench/fig17_strong_async.pdb"
  "CMakeFiles/fig17_strong_async.dir/figures/fig17_strong_async.cpp.o"
  "CMakeFiles/fig17_strong_async.dir/figures/fig17_strong_async.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_strong_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
