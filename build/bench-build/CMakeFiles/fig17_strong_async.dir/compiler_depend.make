# Empty compiler generated dependencies file for fig17_strong_async.
# This may be replaced when dependencies are built.
