file(REMOVE_RECURSE
  "../bench/loop_breakdown"
  "../bench/loop_breakdown.pdb"
  "CMakeFiles/loop_breakdown.dir/figures/loop_breakdown.cpp.o"
  "CMakeFiles/loop_breakdown.dir/figures/loop_breakdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
