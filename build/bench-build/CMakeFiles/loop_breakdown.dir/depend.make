# Empty dependencies file for loop_breakdown.
# This may be replaced when dependencies are built.
