# Empty compiler generated dependencies file for fig18_strong_dataflow.
# This may be replaced when dependencies are built.
