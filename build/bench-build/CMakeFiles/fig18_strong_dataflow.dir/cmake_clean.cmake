file(REMOVE_RECURSE
  "../bench/fig18_strong_dataflow"
  "../bench/fig18_strong_dataflow.pdb"
  "CMakeFiles/fig18_strong_dataflow.dir/figures/fig18_strong_dataflow.cpp.o"
  "CMakeFiles/fig18_strong_dataflow.dir/figures/fig18_strong_dataflow.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_strong_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
