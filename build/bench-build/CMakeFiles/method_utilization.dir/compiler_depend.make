# Empty compiler generated dependencies file for method_utilization.
# This may be replaced when dependencies are built.
