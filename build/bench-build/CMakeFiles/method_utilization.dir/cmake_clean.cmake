file(REMOVE_RECURSE
  "../bench/method_utilization"
  "../bench/method_utilization.pdb"
  "CMakeFiles/method_utilization.dir/figures/method_utilization.cpp.o"
  "CMakeFiles/method_utilization.dir/figures/method_utilization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/method_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
