
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hpxlite/test_irange.cpp" "tests/CMakeFiles/test_hpxlite_core.dir/hpxlite/test_irange.cpp.o" "gcc" "tests/CMakeFiles/test_hpxlite_core.dir/hpxlite/test_irange.cpp.o.d"
  "/root/repo/tests/hpxlite/test_scheduler.cpp" "tests/CMakeFiles/test_hpxlite_core.dir/hpxlite/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/test_hpxlite_core.dir/hpxlite/test_scheduler.cpp.o.d"
  "/root/repo/tests/hpxlite/test_spinlock.cpp" "tests/CMakeFiles/test_hpxlite_core.dir/hpxlite/test_spinlock.cpp.o" "gcc" "tests/CMakeFiles/test_hpxlite_core.dir/hpxlite/test_spinlock.cpp.o.d"
  "/root/repo/tests/hpxlite/test_unique_function.cpp" "tests/CMakeFiles/test_hpxlite_core.dir/hpxlite/test_unique_function.cpp.o" "gcc" "tests/CMakeFiles/test_hpxlite_core.dir/hpxlite/test_unique_function.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hpxlite/CMakeFiles/hpxlite.dir/DependInfo.cmake"
  "/root/repo/build/src/op2/CMakeFiles/op2.dir/DependInfo.cmake"
  "/root/repo/build/src/airfoil/CMakeFiles/airfoil.dir/DependInfo.cmake"
  "/root/repo/build/src/simsched/CMakeFiles/simsched.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/codegen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
