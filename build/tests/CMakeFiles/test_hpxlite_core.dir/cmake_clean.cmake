file(REMOVE_RECURSE
  "CMakeFiles/test_hpxlite_core.dir/hpxlite/test_irange.cpp.o"
  "CMakeFiles/test_hpxlite_core.dir/hpxlite/test_irange.cpp.o.d"
  "CMakeFiles/test_hpxlite_core.dir/hpxlite/test_scheduler.cpp.o"
  "CMakeFiles/test_hpxlite_core.dir/hpxlite/test_scheduler.cpp.o.d"
  "CMakeFiles/test_hpxlite_core.dir/hpxlite/test_spinlock.cpp.o"
  "CMakeFiles/test_hpxlite_core.dir/hpxlite/test_spinlock.cpp.o.d"
  "CMakeFiles/test_hpxlite_core.dir/hpxlite/test_unique_function.cpp.o"
  "CMakeFiles/test_hpxlite_core.dir/hpxlite/test_unique_function.cpp.o.d"
  "test_hpxlite_core"
  "test_hpxlite_core.pdb"
  "test_hpxlite_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpxlite_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
