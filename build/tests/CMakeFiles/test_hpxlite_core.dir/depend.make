# Empty dependencies file for test_hpxlite_core.
# This may be replaced when dependencies are built.
