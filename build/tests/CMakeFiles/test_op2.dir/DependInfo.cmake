
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/op2/test_arg.cpp" "tests/CMakeFiles/test_op2.dir/op2/test_arg.cpp.o" "gcc" "tests/CMakeFiles/test_op2.dir/op2/test_arg.cpp.o.d"
  "/root/repo/tests/op2/test_dat_stats.cpp" "tests/CMakeFiles/test_op2.dir/op2/test_dat_stats.cpp.o" "gcc" "tests/CMakeFiles/test_op2.dir/op2/test_dat_stats.cpp.o.d"
  "/root/repo/tests/op2/test_dataflow_api.cpp" "tests/CMakeFiles/test_op2.dir/op2/test_dataflow_api.cpp.o" "gcc" "tests/CMakeFiles/test_op2.dir/op2/test_dataflow_api.cpp.o.d"
  "/root/repo/tests/op2/test_dataflow_random.cpp" "tests/CMakeFiles/test_op2.dir/op2/test_dataflow_random.cpp.o" "gcc" "tests/CMakeFiles/test_op2.dir/op2/test_dataflow_random.cpp.o.d"
  "/root/repo/tests/op2/test_mesh_io.cpp" "tests/CMakeFiles/test_op2.dir/op2/test_mesh_io.cpp.o" "gcc" "tests/CMakeFiles/test_op2.dir/op2/test_mesh_io.cpp.o.d"
  "/root/repo/tests/op2/test_par_loop.cpp" "tests/CMakeFiles/test_op2.dir/op2/test_par_loop.cpp.o" "gcc" "tests/CMakeFiles/test_op2.dir/op2/test_par_loop.cpp.o.d"
  "/root/repo/tests/op2/test_partition.cpp" "tests/CMakeFiles/test_op2.dir/op2/test_partition.cpp.o" "gcc" "tests/CMakeFiles/test_op2.dir/op2/test_partition.cpp.o.d"
  "/root/repo/tests/op2/test_plan.cpp" "tests/CMakeFiles/test_op2.dir/op2/test_plan.cpp.o" "gcc" "tests/CMakeFiles/test_op2.dir/op2/test_plan.cpp.o.d"
  "/root/repo/tests/op2/test_profiling_consts.cpp" "tests/CMakeFiles/test_op2.dir/op2/test_profiling_consts.cpp.o" "gcc" "tests/CMakeFiles/test_op2.dir/op2/test_profiling_consts.cpp.o.d"
  "/root/repo/tests/op2/test_renumber.cpp" "tests/CMakeFiles/test_op2.dir/op2/test_renumber.cpp.o" "gcc" "tests/CMakeFiles/test_op2.dir/op2/test_renumber.cpp.o.d"
  "/root/repo/tests/op2/test_set_map_dat.cpp" "tests/CMakeFiles/test_op2.dir/op2/test_set_map_dat.cpp.o" "gcc" "tests/CMakeFiles/test_op2.dir/op2/test_set_map_dat.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hpxlite/CMakeFiles/hpxlite.dir/DependInfo.cmake"
  "/root/repo/build/src/op2/CMakeFiles/op2.dir/DependInfo.cmake"
  "/root/repo/build/src/airfoil/CMakeFiles/airfoil.dir/DependInfo.cmake"
  "/root/repo/build/src/simsched/CMakeFiles/simsched.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/codegen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
