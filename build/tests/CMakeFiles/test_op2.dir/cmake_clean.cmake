file(REMOVE_RECURSE
  "CMakeFiles/test_op2.dir/op2/test_arg.cpp.o"
  "CMakeFiles/test_op2.dir/op2/test_arg.cpp.o.d"
  "CMakeFiles/test_op2.dir/op2/test_dat_stats.cpp.o"
  "CMakeFiles/test_op2.dir/op2/test_dat_stats.cpp.o.d"
  "CMakeFiles/test_op2.dir/op2/test_dataflow_api.cpp.o"
  "CMakeFiles/test_op2.dir/op2/test_dataflow_api.cpp.o.d"
  "CMakeFiles/test_op2.dir/op2/test_dataflow_random.cpp.o"
  "CMakeFiles/test_op2.dir/op2/test_dataflow_random.cpp.o.d"
  "CMakeFiles/test_op2.dir/op2/test_mesh_io.cpp.o"
  "CMakeFiles/test_op2.dir/op2/test_mesh_io.cpp.o.d"
  "CMakeFiles/test_op2.dir/op2/test_par_loop.cpp.o"
  "CMakeFiles/test_op2.dir/op2/test_par_loop.cpp.o.d"
  "CMakeFiles/test_op2.dir/op2/test_partition.cpp.o"
  "CMakeFiles/test_op2.dir/op2/test_partition.cpp.o.d"
  "CMakeFiles/test_op2.dir/op2/test_plan.cpp.o"
  "CMakeFiles/test_op2.dir/op2/test_plan.cpp.o.d"
  "CMakeFiles/test_op2.dir/op2/test_profiling_consts.cpp.o"
  "CMakeFiles/test_op2.dir/op2/test_profiling_consts.cpp.o.d"
  "CMakeFiles/test_op2.dir/op2/test_renumber.cpp.o"
  "CMakeFiles/test_op2.dir/op2/test_renumber.cpp.o.d"
  "CMakeFiles/test_op2.dir/op2/test_set_map_dat.cpp.o"
  "CMakeFiles/test_op2.dir/op2/test_set_map_dat.cpp.o.d"
  "test_op2"
  "test_op2.pdb"
  "test_op2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_op2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
