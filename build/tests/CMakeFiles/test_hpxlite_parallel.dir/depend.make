# Empty dependencies file for test_hpxlite_parallel.
# This may be replaced when dependencies are built.
