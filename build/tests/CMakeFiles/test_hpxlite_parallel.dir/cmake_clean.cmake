file(REMOVE_RECURSE
  "CMakeFiles/test_hpxlite_parallel.dir/hpxlite/test_fork_join_team.cpp.o"
  "CMakeFiles/test_hpxlite_parallel.dir/hpxlite/test_fork_join_team.cpp.o.d"
  "CMakeFiles/test_hpxlite_parallel.dir/hpxlite/test_parallel_foreach.cpp.o"
  "CMakeFiles/test_hpxlite_parallel.dir/hpxlite/test_parallel_foreach.cpp.o.d"
  "CMakeFiles/test_hpxlite_parallel.dir/hpxlite/test_parallel_reduce.cpp.o"
  "CMakeFiles/test_hpxlite_parallel.dir/hpxlite/test_parallel_reduce.cpp.o.d"
  "CMakeFiles/test_hpxlite_parallel.dir/hpxlite/test_parallel_scan.cpp.o"
  "CMakeFiles/test_hpxlite_parallel.dir/hpxlite/test_parallel_scan.cpp.o.d"
  "CMakeFiles/test_hpxlite_parallel.dir/hpxlite/test_stress.cpp.o"
  "CMakeFiles/test_hpxlite_parallel.dir/hpxlite/test_stress.cpp.o.d"
  "CMakeFiles/test_hpxlite_parallel.dir/hpxlite/test_sync.cpp.o"
  "CMakeFiles/test_hpxlite_parallel.dir/hpxlite/test_sync.cpp.o.d"
  "test_hpxlite_parallel"
  "test_hpxlite_parallel.pdb"
  "test_hpxlite_parallel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpxlite_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
