
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hpxlite/test_fork_join_team.cpp" "tests/CMakeFiles/test_hpxlite_parallel.dir/hpxlite/test_fork_join_team.cpp.o" "gcc" "tests/CMakeFiles/test_hpxlite_parallel.dir/hpxlite/test_fork_join_team.cpp.o.d"
  "/root/repo/tests/hpxlite/test_parallel_foreach.cpp" "tests/CMakeFiles/test_hpxlite_parallel.dir/hpxlite/test_parallel_foreach.cpp.o" "gcc" "tests/CMakeFiles/test_hpxlite_parallel.dir/hpxlite/test_parallel_foreach.cpp.o.d"
  "/root/repo/tests/hpxlite/test_parallel_reduce.cpp" "tests/CMakeFiles/test_hpxlite_parallel.dir/hpxlite/test_parallel_reduce.cpp.o" "gcc" "tests/CMakeFiles/test_hpxlite_parallel.dir/hpxlite/test_parallel_reduce.cpp.o.d"
  "/root/repo/tests/hpxlite/test_parallel_scan.cpp" "tests/CMakeFiles/test_hpxlite_parallel.dir/hpxlite/test_parallel_scan.cpp.o" "gcc" "tests/CMakeFiles/test_hpxlite_parallel.dir/hpxlite/test_parallel_scan.cpp.o.d"
  "/root/repo/tests/hpxlite/test_stress.cpp" "tests/CMakeFiles/test_hpxlite_parallel.dir/hpxlite/test_stress.cpp.o" "gcc" "tests/CMakeFiles/test_hpxlite_parallel.dir/hpxlite/test_stress.cpp.o.d"
  "/root/repo/tests/hpxlite/test_sync.cpp" "tests/CMakeFiles/test_hpxlite_parallel.dir/hpxlite/test_sync.cpp.o" "gcc" "tests/CMakeFiles/test_hpxlite_parallel.dir/hpxlite/test_sync.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hpxlite/CMakeFiles/hpxlite.dir/DependInfo.cmake"
  "/root/repo/build/src/op2/CMakeFiles/op2.dir/DependInfo.cmake"
  "/root/repo/build/src/airfoil/CMakeFiles/airfoil.dir/DependInfo.cmake"
  "/root/repo/build/src/simsched/CMakeFiles/simsched.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/codegen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
