
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hpxlite/test_async.cpp" "tests/CMakeFiles/test_hpxlite_future.dir/hpxlite/test_async.cpp.o" "gcc" "tests/CMakeFiles/test_hpxlite_future.dir/hpxlite/test_async.cpp.o.d"
  "/root/repo/tests/hpxlite/test_channel.cpp" "tests/CMakeFiles/test_hpxlite_future.dir/hpxlite/test_channel.cpp.o" "gcc" "tests/CMakeFiles/test_hpxlite_future.dir/hpxlite/test_channel.cpp.o.d"
  "/root/repo/tests/hpxlite/test_dataflow.cpp" "tests/CMakeFiles/test_hpxlite_future.dir/hpxlite/test_dataflow.cpp.o" "gcc" "tests/CMakeFiles/test_hpxlite_future.dir/hpxlite/test_dataflow.cpp.o.d"
  "/root/repo/tests/hpxlite/test_future.cpp" "tests/CMakeFiles/test_hpxlite_future.dir/hpxlite/test_future.cpp.o" "gcc" "tests/CMakeFiles/test_hpxlite_future.dir/hpxlite/test_future.cpp.o.d"
  "/root/repo/tests/hpxlite/test_timed_wait.cpp" "tests/CMakeFiles/test_hpxlite_future.dir/hpxlite/test_timed_wait.cpp.o" "gcc" "tests/CMakeFiles/test_hpxlite_future.dir/hpxlite/test_timed_wait.cpp.o.d"
  "/root/repo/tests/hpxlite/test_when_any.cpp" "tests/CMakeFiles/test_hpxlite_future.dir/hpxlite/test_when_any.cpp.o" "gcc" "tests/CMakeFiles/test_hpxlite_future.dir/hpxlite/test_when_any.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hpxlite/CMakeFiles/hpxlite.dir/DependInfo.cmake"
  "/root/repo/build/src/op2/CMakeFiles/op2.dir/DependInfo.cmake"
  "/root/repo/build/src/airfoil/CMakeFiles/airfoil.dir/DependInfo.cmake"
  "/root/repo/build/src/simsched/CMakeFiles/simsched.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/codegen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
