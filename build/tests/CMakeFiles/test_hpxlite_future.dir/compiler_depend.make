# Empty compiler generated dependencies file for test_hpxlite_future.
# This may be replaced when dependencies are built.
