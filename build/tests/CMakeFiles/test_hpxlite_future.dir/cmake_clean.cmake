file(REMOVE_RECURSE
  "CMakeFiles/test_hpxlite_future.dir/hpxlite/test_async.cpp.o"
  "CMakeFiles/test_hpxlite_future.dir/hpxlite/test_async.cpp.o.d"
  "CMakeFiles/test_hpxlite_future.dir/hpxlite/test_channel.cpp.o"
  "CMakeFiles/test_hpxlite_future.dir/hpxlite/test_channel.cpp.o.d"
  "CMakeFiles/test_hpxlite_future.dir/hpxlite/test_dataflow.cpp.o"
  "CMakeFiles/test_hpxlite_future.dir/hpxlite/test_dataflow.cpp.o.d"
  "CMakeFiles/test_hpxlite_future.dir/hpxlite/test_future.cpp.o"
  "CMakeFiles/test_hpxlite_future.dir/hpxlite/test_future.cpp.o.d"
  "CMakeFiles/test_hpxlite_future.dir/hpxlite/test_timed_wait.cpp.o"
  "CMakeFiles/test_hpxlite_future.dir/hpxlite/test_timed_wait.cpp.o.d"
  "CMakeFiles/test_hpxlite_future.dir/hpxlite/test_when_any.cpp.o"
  "CMakeFiles/test_hpxlite_future.dir/hpxlite/test_when_any.cpp.o.d"
  "test_hpxlite_future"
  "test_hpxlite_future.pdb"
  "test_hpxlite_future[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpxlite_future.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
