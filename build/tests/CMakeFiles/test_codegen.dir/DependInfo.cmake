
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/codegen/test_emitter.cpp" "tests/CMakeFiles/test_codegen.dir/codegen/test_emitter.cpp.o" "gcc" "tests/CMakeFiles/test_codegen.dir/codegen/test_emitter.cpp.o.d"
  "/root/repo/tests/codegen/test_op2hpx_target.cpp" "tests/CMakeFiles/test_codegen.dir/codegen/test_op2hpx_target.cpp.o" "gcc" "tests/CMakeFiles/test_codegen.dir/codegen/test_op2hpx_target.cpp.o.d"
  "/root/repo/tests/codegen/test_parser.cpp" "tests/CMakeFiles/test_codegen.dir/codegen/test_parser.cpp.o" "gcc" "tests/CMakeFiles/test_codegen.dir/codegen/test_parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hpxlite/CMakeFiles/hpxlite.dir/DependInfo.cmake"
  "/root/repo/build/src/op2/CMakeFiles/op2.dir/DependInfo.cmake"
  "/root/repo/build/src/airfoil/CMakeFiles/airfoil.dir/DependInfo.cmake"
  "/root/repo/build/src/simsched/CMakeFiles/simsched.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/codegen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
