
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/simsched/test_airfoil_model.cpp" "tests/CMakeFiles/test_simsched.dir/simsched/test_airfoil_model.cpp.o" "gcc" "tests/CMakeFiles/test_simsched.dir/simsched/test_airfoil_model.cpp.o.d"
  "/root/repo/tests/simsched/test_engine.cpp" "tests/CMakeFiles/test_simsched.dir/simsched/test_engine.cpp.o" "gcc" "tests/CMakeFiles/test_simsched.dir/simsched/test_engine.cpp.o.d"
  "/root/repo/tests/simsched/test_machine.cpp" "tests/CMakeFiles/test_simsched.dir/simsched/test_machine.cpp.o" "gcc" "tests/CMakeFiles/test_simsched.dir/simsched/test_machine.cpp.o.d"
  "/root/repo/tests/simsched/test_overheads.cpp" "tests/CMakeFiles/test_simsched.dir/simsched/test_overheads.cpp.o" "gcc" "tests/CMakeFiles/test_simsched.dir/simsched/test_overheads.cpp.o.d"
  "/root/repo/tests/simsched/test_trace.cpp" "tests/CMakeFiles/test_simsched.dir/simsched/test_trace.cpp.o" "gcc" "tests/CMakeFiles/test_simsched.dir/simsched/test_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hpxlite/CMakeFiles/hpxlite.dir/DependInfo.cmake"
  "/root/repo/build/src/op2/CMakeFiles/op2.dir/DependInfo.cmake"
  "/root/repo/build/src/airfoil/CMakeFiles/airfoil.dir/DependInfo.cmake"
  "/root/repo/build/src/simsched/CMakeFiles/simsched.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/codegen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
