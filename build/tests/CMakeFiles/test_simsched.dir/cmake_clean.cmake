file(REMOVE_RECURSE
  "CMakeFiles/test_simsched.dir/simsched/test_airfoil_model.cpp.o"
  "CMakeFiles/test_simsched.dir/simsched/test_airfoil_model.cpp.o.d"
  "CMakeFiles/test_simsched.dir/simsched/test_engine.cpp.o"
  "CMakeFiles/test_simsched.dir/simsched/test_engine.cpp.o.d"
  "CMakeFiles/test_simsched.dir/simsched/test_machine.cpp.o"
  "CMakeFiles/test_simsched.dir/simsched/test_machine.cpp.o.d"
  "CMakeFiles/test_simsched.dir/simsched/test_overheads.cpp.o"
  "CMakeFiles/test_simsched.dir/simsched/test_overheads.cpp.o.d"
  "CMakeFiles/test_simsched.dir/simsched/test_trace.cpp.o"
  "CMakeFiles/test_simsched.dir/simsched/test_trace.cpp.o.d"
  "test_simsched"
  "test_simsched.pdb"
  "test_simsched[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simsched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
