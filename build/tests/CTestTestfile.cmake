# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_hpxlite_core[1]_include.cmake")
include("/root/repo/build/tests/test_hpxlite_future[1]_include.cmake")
include("/root/repo/build/tests/test_hpxlite_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_op2[1]_include.cmake")
include("/root/repo/build/tests/test_airfoil[1]_include.cmake")
include("/root/repo/build/tests/test_simsched[1]_include.cmake")
include("/root/repo/build/tests/test_codegen[1]_include.cmake")
