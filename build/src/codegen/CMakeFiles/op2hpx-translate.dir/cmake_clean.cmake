file(REMOVE_RECURSE
  "CMakeFiles/op2hpx-translate.dir/src/translate_main.cpp.o"
  "CMakeFiles/op2hpx-translate.dir/src/translate_main.cpp.o.d"
  "op2hpx-translate"
  "op2hpx-translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/op2hpx-translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
