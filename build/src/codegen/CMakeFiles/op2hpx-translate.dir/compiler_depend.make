# Empty compiler generated dependencies file for op2hpx-translate.
# This may be replaced when dependencies are built.
