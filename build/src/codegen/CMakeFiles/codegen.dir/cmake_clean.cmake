file(REMOVE_RECURSE
  "CMakeFiles/codegen.dir/src/translator.cpp.o"
  "CMakeFiles/codegen.dir/src/translator.cpp.o.d"
  "libcodegen.a"
  "libcodegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
