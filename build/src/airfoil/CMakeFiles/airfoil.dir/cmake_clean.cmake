file(REMOVE_RECURSE
  "CMakeFiles/airfoil.dir/src/distributed.cpp.o"
  "CMakeFiles/airfoil.dir/src/distributed.cpp.o.d"
  "CMakeFiles/airfoil.dir/src/mesh.cpp.o"
  "CMakeFiles/airfoil.dir/src/mesh.cpp.o.d"
  "CMakeFiles/airfoil.dir/src/model_adapter.cpp.o"
  "CMakeFiles/airfoil.dir/src/model_adapter.cpp.o.d"
  "CMakeFiles/airfoil.dir/src/solver.cpp.o"
  "CMakeFiles/airfoil.dir/src/solver.cpp.o.d"
  "CMakeFiles/airfoil.dir/src/state_io.cpp.o"
  "CMakeFiles/airfoil.dir/src/state_io.cpp.o.d"
  "libairfoil.a"
  "libairfoil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airfoil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
