file(REMOVE_RECURSE
  "CMakeFiles/hpxlite.dir/src/fork_join_team.cpp.o"
  "CMakeFiles/hpxlite.dir/src/fork_join_team.cpp.o.d"
  "CMakeFiles/hpxlite.dir/src/scheduler.cpp.o"
  "CMakeFiles/hpxlite.dir/src/scheduler.cpp.o.d"
  "libhpxlite.a"
  "libhpxlite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpxlite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
