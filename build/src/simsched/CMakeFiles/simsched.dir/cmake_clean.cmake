file(REMOVE_RECURSE
  "CMakeFiles/simsched.dir/src/airfoil_model.cpp.o"
  "CMakeFiles/simsched.dir/src/airfoil_model.cpp.o.d"
  "CMakeFiles/simsched.dir/src/engine.cpp.o"
  "CMakeFiles/simsched.dir/src/engine.cpp.o.d"
  "libsimsched.a"
  "libsimsched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simsched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
