file(REMOVE_RECURSE
  "CMakeFiles/op2.dir/src/constants.cpp.o"
  "CMakeFiles/op2.dir/src/constants.cpp.o.d"
  "CMakeFiles/op2.dir/src/mesh_io.cpp.o"
  "CMakeFiles/op2.dir/src/mesh_io.cpp.o.d"
  "CMakeFiles/op2.dir/src/partition.cpp.o"
  "CMakeFiles/op2.dir/src/partition.cpp.o.d"
  "CMakeFiles/op2.dir/src/plan.cpp.o"
  "CMakeFiles/op2.dir/src/plan.cpp.o.d"
  "CMakeFiles/op2.dir/src/profiling.cpp.o"
  "CMakeFiles/op2.dir/src/profiling.cpp.o.d"
  "CMakeFiles/op2.dir/src/renumber.cpp.o"
  "CMakeFiles/op2.dir/src/renumber.cpp.o.d"
  "CMakeFiles/op2.dir/src/runtime.cpp.o"
  "CMakeFiles/op2.dir/src/runtime.cpp.o.d"
  "libop2.a"
  "libop2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/op2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
