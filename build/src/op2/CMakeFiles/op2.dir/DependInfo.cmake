
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/op2/src/constants.cpp" "src/op2/CMakeFiles/op2.dir/src/constants.cpp.o" "gcc" "src/op2/CMakeFiles/op2.dir/src/constants.cpp.o.d"
  "/root/repo/src/op2/src/mesh_io.cpp" "src/op2/CMakeFiles/op2.dir/src/mesh_io.cpp.o" "gcc" "src/op2/CMakeFiles/op2.dir/src/mesh_io.cpp.o.d"
  "/root/repo/src/op2/src/partition.cpp" "src/op2/CMakeFiles/op2.dir/src/partition.cpp.o" "gcc" "src/op2/CMakeFiles/op2.dir/src/partition.cpp.o.d"
  "/root/repo/src/op2/src/plan.cpp" "src/op2/CMakeFiles/op2.dir/src/plan.cpp.o" "gcc" "src/op2/CMakeFiles/op2.dir/src/plan.cpp.o.d"
  "/root/repo/src/op2/src/profiling.cpp" "src/op2/CMakeFiles/op2.dir/src/profiling.cpp.o" "gcc" "src/op2/CMakeFiles/op2.dir/src/profiling.cpp.o.d"
  "/root/repo/src/op2/src/renumber.cpp" "src/op2/CMakeFiles/op2.dir/src/renumber.cpp.o" "gcc" "src/op2/CMakeFiles/op2.dir/src/renumber.cpp.o.d"
  "/root/repo/src/op2/src/runtime.cpp" "src/op2/CMakeFiles/op2.dir/src/runtime.cpp.o" "gcc" "src/op2/CMakeFiles/op2.dir/src/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hpxlite/CMakeFiles/hpxlite.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
