file(REMOVE_RECURSE
  "CMakeFiles/airfoil_app.dir/airfoil_app.cpp.o"
  "CMakeFiles/airfoil_app.dir/airfoil_app.cpp.o.d"
  "airfoil_app"
  "airfoil_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airfoil_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
