# Empty compiler generated dependencies file for airfoil_app.
# This may be replaced when dependencies are built.
