# Empty dependencies file for shallow_water.
# This may be replaced when dependencies are built.
