# Empty compiler generated dependencies file for partitioned_halo.
# This may be replaced when dependencies are built.
