file(REMOVE_RECURSE
  "CMakeFiles/partitioned_halo.dir/partitioned_halo.cpp.o"
  "CMakeFiles/partitioned_halo.dir/partitioned_halo.cpp.o.d"
  "partitioned_halo"
  "partitioned_halo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partitioned_halo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
