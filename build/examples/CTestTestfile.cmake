# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_airfoil_app "/root/repo/build/examples/airfoil_app" "--backend=dataflow" "--threads=2" "--imax=48" "--jmax=12" "--iters=20")
set_tests_properties(example_airfoil_app PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_shallow_water "/root/repo/build/examples/shallow_water" "20")
set_tests_properties(example_shallow_water PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dataflow_pipeline "/root/repo/build/examples/dataflow_pipeline" "20")
set_tests_properties(example_dataflow_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_partitioned_halo "/root/repo/build/examples/partitioned_halo" "5")
set_tests_properties(example_partitioned_halo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_translator_cli "/root/repo/build/src/codegen/op2hpx-translate" "--list" "/root/repo/examples/quickstart.cpp")
set_tests_properties(example_translator_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
