#----------------------------------------------------------------
# Generated CMake target import file for configuration "Release".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "op2hpx::hpxlite" for configuration "Release"
set_property(TARGET op2hpx::hpxlite APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(op2hpx::hpxlite PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libhpxlite.a"
  )

list(APPEND _cmake_import_check_targets op2hpx::hpxlite )
list(APPEND _cmake_import_check_files_for_op2hpx::hpxlite "${_IMPORT_PREFIX}/lib/libhpxlite.a" )

# Import target "op2hpx::op2" for configuration "Release"
set_property(TARGET op2hpx::op2 APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(op2hpx::op2 PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libop2.a"
  )

list(APPEND _cmake_import_check_targets op2hpx::op2 )
list(APPEND _cmake_import_check_files_for_op2hpx::op2 "${_IMPORT_PREFIX}/lib/libop2.a" )

# Import target "op2hpx::airfoil" for configuration "Release"
set_property(TARGET op2hpx::airfoil APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(op2hpx::airfoil PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libairfoil.a"
  )

list(APPEND _cmake_import_check_targets op2hpx::airfoil )
list(APPEND _cmake_import_check_files_for_op2hpx::airfoil "${_IMPORT_PREFIX}/lib/libairfoil.a" )

# Import target "op2hpx::simsched" for configuration "Release"
set_property(TARGET op2hpx::simsched APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(op2hpx::simsched PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libsimsched.a"
  )

list(APPEND _cmake_import_check_targets op2hpx::simsched )
list(APPEND _cmake_import_check_files_for_op2hpx::simsched "${_IMPORT_PREFIX}/lib/libsimsched.a" )

# Import target "op2hpx::codegen" for configuration "Release"
set_property(TARGET op2hpx::codegen APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(op2hpx::codegen PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libcodegen.a"
  )

list(APPEND _cmake_import_check_targets op2hpx::codegen )
list(APPEND _cmake_import_check_files_for_op2hpx::codegen "${_IMPORT_PREFIX}/lib/libcodegen.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
