#!/usr/bin/env sh
# Pre-merge gate: tier-1 build + tests, the fault/resilience label on
# its own, and a thread-sanitized build of the backend smoke harness.
#
#   scripts/check.sh [build-dir]
#
# The build dir defaults to ./build; the TSan configure goes to
# <build-dir>-tsan.  Every step stops the script on failure.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build"}
tsan_build="${build}-tsan"
jobs=$(nproc 2>/dev/null || echo 2)

step() {
  printf '\n== %s ==\n' "$*"
}

step "tier 1: configure + build ($build)"
cmake -S "$repo" -B "$build"
cmake --build "$build" -j "$jobs"

step "tier 1: full test suite"
ctest --test-dir "$build" --output-on-failure

step "resilience: ctest -L fault"
ctest --test-dir "$build" -L fault --output-on-failure

step "adaptive grain tuner: ctest -L tuner"
ctest --test-dir "$build" -L tuner --output-on-failure

step "launch path: prepared-loop replay gate (zero allocs, no plan lookups)"
# Both tuner arms: OP2_TUNER=off must reproduce the pre-tuner replay
# sequence exactly, and the default (on) must keep the steady-state
# gate clean too.
OP2_TUNER=off "$build/bench/launch_overhead"
OP2_TUNER=on "$build/bench/launch_overhead"

step "adaptive grain tuner: convergence within 32 replays (ablation_tuner)"
"$build/bench/ablation_tuner"

step "thread sanitizer: configure + build backend_smoke ($tsan_build)"
cmake -S "$repo" -B "$tsan_build" -DOP2_SANITIZE=thread
cmake --build "$tsan_build" -j "$jobs" --target backend_smoke

step "thread sanitizer: reduction-merge contention (shared-global finalise)"
# Lost-update stress cannot bite on a single-CPU host; TSan detects the
# unsynchronised final combine deterministically regardless of core count.
cmake --build "$tsan_build" -j "$jobs" --target test_op2
"$tsan_build/tests/test_op2" --gtest_filter='PreparedContention.*'

printf '\nAll checks passed.\n'
