#!/usr/bin/env sh
# Pre-merge gate: tier-1 build + tests, the fault/resilience label on
# its own, and a thread-sanitized build of the backend smoke harness.
#
#   scripts/check.sh [build-dir]
#
# The build dir defaults to ./build; the TSan configure goes to
# <build-dir>-tsan.  Every step stops the script on failure.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build"}
tsan_build="${build}-tsan"
jobs=$(nproc 2>/dev/null || echo 2)

step() {
  printf '\n== %s ==\n' "$*"
}

step "tier 1: configure + build ($build)"
cmake -S "$repo" -B "$build"
cmake --build "$build" -j "$jobs"

step "tier 1: full test suite"
ctest --test-dir "$build" --output-on-failure

step "resilience: ctest -L fault"
ctest --test-dir "$build" -L fault --output-on-failure

step "adaptive grain tuner: ctest -L tuner"
ctest --test-dir "$build" -L tuner --output-on-failure

step "cancellation/deadlines/backpressure: ctest -L cancel"
ctest --test-dir "$build" -L cancel --output-on-failure

step "job service: ctest -L service"
ctest --test-dir "$build" -L service --output-on-failure

step "chaos: ctest -L chaos (faulted tenant heals, bystanders bit-exact)"
ctest --test-dir "$build" -L chaos --output-on-failure

step "shard core: ctest -L shard (decomposition, exchange, bit-exactness matrix)"
ctest --test-dir "$build" -L shard --output-on-failure

step "fusion: ctest -L fusion (planner legality, fused runtime, acceptance matrix)"
ctest --test-dir "$build" -L fusion --output-on-failure

step "reliable wire: ctest -L wire (frame codec, chaos, retransmit, link death)"
ctest --test-dir "$build" -L wire --output-on-failure

step "job service: bench_service soak (writes BENCH_service.json)"
# A short multi-tenant soak through the admission controller: hard-fails
# when everything was shed or p99 job latency blew up — either means
# admission or fairness is broken.
(cd "$repo" && "$build/bench/bench_service" --tenants=8 --jobs=3 --iters=10 --soak)

step "self-healing: airfoil under an injected stall (deadline + ladder + window)"
# A 60 s stall in res_calc must not abort or hang the solve: the
# deadline cancels the attempt, the ladder re-runs it a rung down, and
# the bounded dataflow window keeps admission finite throughout.
OP2_FAULT='res_calc:stall:at=2,stall_ms=60000' \
OP2_FAILURE_POLICY='deadline=250' \
OP2_WATCHDOG_MS=400 \
OP2_DATAFLOW_WINDOW=8 \
  "$build/examples/airfoil_app" --backend=hpx_dataflow --threads=4 \
      --imax=40 --jmax=40 --iters=20 --profile

step "launch path: replay + chain-building gates (zero allocs/node)"
# Both tuner arms: OP2_TUNER=off must reproduce the pre-tuner replay
# sequence exactly, and the default (on) must keep the steady-state
# gate clean too.  The binary also gates the continuation core's
# chain-BUILDING path: 0 allocations per then/dataflow node once the
# operation-state block pool is warm, ≤1 for oversize continuations.
OP2_TUNER=off "$build/bench/launch_overhead"
OP2_TUNER=on "$build/bench/launch_overhead"

step "adaptive grain tuner: convergence within 32 replays (ablation_tuner)"
"$build/bench/ablation_tuner"

step "shard core: overlapped exchange must beat the fenced schedule (ablation_shard)"
# Fenced vs overlapped halo exchange under a deterministic simulated
# link latency; hard-fails if the overlap win regresses or the two
# schedules disagree on a single bit of the solution.
"$build/bench/ablation_shard"

step "reliable wire: overlap win must survive 1% frame loss (ablation_wire)"
# The same fenced-vs-overlapped comparison over the reliable wire stack
# with a deterministic 1% drop rate injected below the protocol;
# hard-fails if the schedules disagree on a single bit, the overlap win
# disappears, no retransmit was needed (loss did not engage) or a link
# was declared dead.
"$build/bench/ablation_wire"

step "fusion: fused must beat unfused, tiled must beat fused (ablation_fusion)"
# Unfused / fused / fused+tiled over a DRAM-resident direct chain; all
# three arms must produce bit-identical checksums, and each schedule
# must beat the previous one or the binary exits non-zero.
"$build/bench/ablation_fusion"

step "thread sanitizer: configure + build backend_smoke ($tsan_build)"
# libstdc++.so is not TSan-instrumented, so the atomic refcounts inside
# std::exception_ptr are invisible to the tool; scripts/tsan.supp
# suppresses exactly that false positive (see the file for details).
TSAN_OPTIONS="suppressions=$repo/scripts/tsan.supp${TSAN_OPTIONS:+:$TSAN_OPTIONS}"
export TSAN_OPTIONS
cmake -S "$repo" -B "$tsan_build" -DOP2_SANITIZE=thread
cmake --build "$tsan_build" -j "$jobs" --target backend_smoke

step "thread sanitizer: reduction-merge contention (shared-global finalise)"
# Lost-update stress cannot bite on a single-CPU host; TSan detects the
# unsynchronised final combine deterministically regardless of core count.
cmake --build "$tsan_build" -j "$jobs" --target test_op2
"$tsan_build/tests/test_op2" --gtest_filter='PreparedContention.*'

step "thread sanitizer: cancellation racing completion (CancelStress)"
# The stop-token fast paths are relaxed atomics by design; TSan checks
# the chunk hand-off and callback teardown around a racing cancel.
cmake --build "$tsan_build" -j "$jobs" --target test_cancel
"$tsan_build/tests/test_cancel" --gtest_filter='CancelStress.*'

step "thread sanitizer: job-service admission controller (ServiceStress)"
# Concurrent submit/cancel/set_quota against the weighted-fair
# dispatcher, plus faulted-and-clean tenants churning through real
# Airfoil jobs — the admission controller's locking under TSan.
cmake --build "$tsan_build" -j "$jobs" --target test_service test_chaos
"$tsan_build/tests/test_service" --gtest_filter='ServiceStress.*'
"$tsan_build/tests/test_chaos" --gtest_filter='ChaosServiceStress.*'

step "thread sanitizer: halo-exchange progress engine (ExchangeStress)"
# Concurrent fence waiters racing the exchanger's progress thread across
# hundreds of rounds, plus mid-round destruction — the pack/publish/
# consume/scatter hand-off and the fence fast path under TSan.
cmake --build "$tsan_build" -j "$jobs" --target test_shard
"$tsan_build/tests/test_shard" --gtest_filter='ExchangeStress.*'

step "thread sanitizer: reliable wire protocol (WireStress)"
# Two links published/consumed from racing threads while the pump
# thread retransmits through a lossy chaos wire, plus exchanger rounds
# with concurrent fence waiters over the full wire stack — the
# protocol's pending/stash/delivered locking under TSan.
cmake --build "$tsan_build" -j "$jobs" --target test_wire
"$tsan_build/tests/test_wire" --gtest_filter='WireStress.*'

step "thread sanitizer: concurrent fused replays (FusedStress)"
# Several threads replaying through ONE shared fused_handle (the site
# cache's find/CAS/busy paths) plus fused dataflow nodes racing on the
# worker pool — the fused launch path's locking under TSan.
cmake --build "$tsan_build" -j "$jobs" --target test_fusion
"$tsan_build/tests/test_fusion" --gtest_filter='FusedStress.*'

step "thread sanitizer: operation-state continuation core (OpState)"
# The pooled op-state path moves completion hand-off onto intrusive
# node lists and a thread-cached block pool; TSan checks registration
# racing completion, pool recycling across threads, and the combinator
# arm countdowns.
cmake --build "$tsan_build" -j "$jobs" --target test_hpxlite_future
"$tsan_build/tests/test_hpxlite_future" \
    --gtest_filter='OpState.*:FutureTest.*:AsyncTest.*:DataflowTest.*:WhenAnyTest.*'

printf '\nAll checks passed.\n'
