// The sharded Airfoil acceptance matrix: hpx_shard with N = 1, 2, 4
// shards must reproduce the seq oracle's q field BIT-FOR-BIT (the
// staged-increment scheme replays seq's accumulation order exactly),
// under every knob — halo depth 2, overlap disabled, simulated link
// latency.  Plus the chaos scenario (a throw in ONE shard's boundary
// loop heals through the failure ladder without perturbing any bit),
// service composition, and the per-shard profiling counters.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "airfoil/airfoil.hpp"
#include "op2/op2.hpp"

namespace {

using airfoil::generate_mesh;
using airfoil::make_sim;
using airfoil::mesh_params;
using airfoil::run_with_backend;

constexpr int kIters = 6;

mesh_params small_mesh() {
  mesh_params p;
  p.imax = 16;
  p.jmax = 8;
  return p;
}

struct field_result {
  std::vector<double> q;
  std::vector<double> rms;
};

/// One full solve under `cfg` (init → run → finalize), returning the
/// final q field and rms history.
field_result run_under(const op2::config& cfg, const std::string& backend) {
  op2::init(cfg);
  auto s = make_sim(generate_mesh(small_mesh()));
  const auto r = run_with_backend(s, kIters, backend);
  field_result out;
  const auto q = s.p_q.data<double>();
  out.q.assign(q.begin(), q.end());
  out.rms = r.rms_history;
  op2::finalize();
  return out;
}

const field_result& seq_reference() {
  static const field_result ref =
      run_under(op2::make_config("seq", 1, 32), "seq");
  return ref;
}

/// q must agree bit-for-bit; rms is a cross-shard sum (reassociated by
/// construction), so it gets a tight NEAR instead.
void expect_matches_seq(const field_result& got, const std::string& what) {
  const auto& ref = seq_reference();
  ASSERT_EQ(got.q.size(), ref.q.size()) << what;
  for (std::size_t i = 0; i < ref.q.size(); ++i) {
    ASSERT_EQ(got.q[i], ref.q[i]) << what << " q entry " << i;
  }
  ASSERT_EQ(got.rms.size(), ref.rms.size()) << what;
  for (std::size_t i = 0; i < ref.rms.size(); ++i) {
    EXPECT_NEAR(got.rms[i], ref.rms[i],
                1e-12 * std::max(1.0, std::fabs(ref.rms[i])))
        << what << " iteration " << i;
  }
}

op2::config shard_config(int nshards) {
  auto cfg = op2::make_config("hpx_shard", 4, 32);
  cfg.shards = nshards;
  return cfg;
}

class ShardMatrix : public ::testing::TestWithParam<int> {
 protected:
  void TearDown() override {
    op2::fault_injector::clear();
    op2::profiling::enable(false);
    op2::profiling::reset();
    op2::finalize();
  }
};

TEST_P(ShardMatrix, BitIdenticalToSeq) {
  const auto got = run_under(shard_config(GetParam()), "hpx_shard");
  expect_matches_seq(got, "shards=" + std::to_string(GetParam()));
}

TEST_P(ShardMatrix, BitIdenticalWithHaloDepthTwo) {
  auto cfg = shard_config(GetParam());
  cfg.halo_depth = 2;
  const auto got = run_under(cfg, "hpx_shard");
  expect_matches_seq(got, "depth2/shards=" + std::to_string(GetParam()));
}

TEST_P(ShardMatrix, BitIdenticalWithOverlapDisabled) {
  // The fenced baseline: exchange completes before the interior span is
  // even dispatched.  Scheduling only — the physics must not move.
  auto cfg = shard_config(GetParam());
  cfg.shard_overlap = false;
  const auto got = run_under(cfg, "hpx_shard");
  expect_matches_seq(got, "fenced/shards=" + std::to_string(GetParam()));
}

TEST_P(ShardMatrix, BitIdenticalWithSimulatedLinkLatency) {
  // A visible per-round exchange delay forces real overlap (boundary
  // loops genuinely wait on the fence) without changing any bit.
  auto cfg = shard_config(GetParam());
  cfg.exchange_delay_us = 300;
  const auto got = run_under(cfg, "hpx_shard");
  expect_matches_seq(got, "delayed/shards=" + std::to_string(GetParam()));
}

std::string shard_count_name(const ::testing::TestParamInfo<int>& p) {
  return "N" + std::to_string(p.param);
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardMatrix, ::testing::Values(1, 2, 4),
                         shard_count_name);

// --- chaos ------------------------------------------------------------

class ShardChaos : public ::testing::Test {
 protected:
  void TearDown() override {
    op2::fault_injector::clear();
    op2::profiling::enable(false);
    op2::profiling::reset();
    op2::finalize();
  }
};

TEST_F(ShardChaos, ThrowInOneShardsBoundaryLoopHealsBitExactly) {
  // The shard-qualified spec targets ONLY shard 1's boundary residual
  // loop; rollback + retry absorbs the throw inside that shard while
  // the other shards' work is untouched — the healed field is still
  // bit-identical to seq, not merely close.
  auto cfg = shard_config(2);
  cfg.on_failure.max_retries = 2;
  cfg.on_failure.fallback_to_seq = true;
  op2::init(cfg);
  op2::fault_injector::configure("bres_calc@s1:throw:at=1");
  auto s = make_sim(generate_mesh(small_mesh()));
  const auto r = run_with_backend(s, kIters, "hpx_shard");
  EXPECT_EQ(op2::fault_injector::fired_count(), 1);
  field_result got;
  const auto q = s.p_q.data<double>();
  got.q.assign(q.begin(), q.end());
  got.rms = r.rms_history;
  expect_matches_seq(got, "chaos/bres_calc@s1");
}

TEST_F(ShardChaos, ShardQualifiedSpecLeavesOtherShardsUnarmed) {
  // A spec for a shard id that the 2-shard run never creates must
  // never fire — the run completes clean.
  auto cfg = shard_config(2);
  cfg.on_failure.max_retries = 1;
  op2::init(cfg);
  op2::fault_injector::configure("res_calc@s7:throw:at=1");
  auto s = make_sim(generate_mesh(small_mesh()));
  const auto r = run_with_backend(s, kIters, "hpx_shard");
  EXPECT_EQ(op2::fault_injector::fired_count(), 0);
  field_result got;
  const auto q = s.p_q.data<double>();
  got.q.assign(q.begin(), q.end());
  got.rms = r.rms_history;
  expect_matches_seq(got, "chaos/unarmed");
}

// --- service composition ----------------------------------------------

TEST_F(ShardChaos, TwoTenantsRunShardedJobsToTheSameBits) {
  namespace svc = op2::service;
  op2::init(shard_config(2));
  std::vector<double> q_blue, q_green;
  {  // the service must be gone before seq_reference() re-inits op2
    svc::service_config scfg;
    scfg.workers = 2;
    svc::job_service service(scfg);
    for (const char* name : {"blue", "green"}) {
      svc::tenant_options t;
      t.name = name;
      service.register_tenant(t);
    }
    auto run_job = [](std::vector<double>& q_out) {
      auto s = make_sim(generate_mesh(small_mesh()));
      run_with_backend(s, kIters, "hpx_shard");
      const auto q = s.p_q.data<double>();
      q_out.assign(q.begin(), q.end());
    };
    auto hb = service.submit(
        "blue", [&](const svc::job_context&) { run_job(q_blue); });
    auto hg = service.submit(
        "green", [&](const svc::job_context&) { run_job(q_green); });
    EXPECT_EQ(hb.get().status, svc::job_status::completed);
    EXPECT_EQ(hg.get().status, svc::job_status::completed);
  }
  const auto& ref = seq_reference();
  ASSERT_EQ(q_blue.size(), ref.q.size());
  ASSERT_EQ(q_green.size(), ref.q.size());
  for (std::size_t i = 0; i < ref.q.size(); ++i) {
    ASSERT_EQ(q_blue[i], ref.q[i]) << "blue entry " << i;
    ASSERT_EQ(q_green[i], ref.q[i]) << "green entry " << i;
  }
}

// --- profiling --------------------------------------------------------

TEST_F(ShardChaos, ProfilingShowsPerShardLoopsExchangesAndShape) {
  op2::init(shard_config(2));
  op2::profiling::enable(true);
  op2::profiling::reset();
  auto s = make_sim(generate_mesh(small_mesh()));
  run_with_backend(s, kIters, "hpx_shard");

  // Per-shard loop instances are profiled under their qualified names
  // and hit the prepared-loop replay path after the first invocation.
  const auto loops = op2::profiling::snapshot();
  for (const char* name : {"adt_calc@s0", "adt_calc@s1", "res_calc@s0"}) {
    const auto it = loops.find(name);
    ASSERT_NE(it, loops.end()) << name;
    EXPECT_EQ(it->second.invocations, 2u * kIters) << name;
    EXPECT_GE(it->second.replays, 1u) << name;
  }
  // The k=1 update fuses with the next iteration's save_soln into one
  // launch profiled under the aggregated name; only the k=0 updates and
  // the final iteration's k=1 update remain standalone.
  {
    const auto it = loops.find("update@s1");
    ASSERT_NE(it, loops.end());
    EXPECT_EQ(it->second.invocations, static_cast<std::uint64_t>(kIters + 1));
    EXPECT_GE(it->second.replays, 1u);
  }
  {
    const auto it = loops.find("update@s1+save_soln@s1");
    ASSERT_NE(it, loops.end());
    EXPECT_EQ(it->second.invocations, static_cast<std::uint64_t>(kIters - 1));
    EXPECT_GE(it->second.replays, 1u);
    EXPECT_EQ(it->second.fused_loops, 2u);
    EXPECT_GT(it->second.fused_group, 0u);
  }

  // The shard table: one row per shard carrying the owner/halo shape
  // and one exchange record per round (two rounds per iteration).
  const auto shards = op2::profiling::shard_snapshot();
  ASSERT_EQ(shards.size(), 2u);
  std::uint64_t owned_total = 0;
  for (const auto& [id, prof] : shards) {
    EXPECT_EQ(prof.halo_depth, 1) << "shard " << id;
    EXPECT_GT(prof.owned, 0u) << "shard " << id;
    EXPECT_GT(prof.halo, 0u) << "shard " << id;
    EXPECT_EQ(prof.exchanges, static_cast<std::uint64_t>(2 * kIters))
        << "shard " << id;
    EXPECT_GE(prof.exchange_seconds, 0.0);
    EXPECT_GE(prof.overlap_seconds, 0.0);
    owned_total += prof.owned;
  }
  const int ncell = generate_mesh(small_mesh()).set("cells").size();
  EXPECT_EQ(owned_total, static_cast<std::uint64_t>(ncell));
}

}  // namespace
