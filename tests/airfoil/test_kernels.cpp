#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "airfoil/kernels.hpp"

namespace {

using airfoil::constants;

TEST(Constants, FreeStreamStateConsistent) {
  const auto& c = constants();
  EXPECT_DOUBLE_EQ(c.gm1, c.gam - 1.0);
  EXPECT_GT(c.qinf[0], 0.0);
  EXPECT_GT(c.qinf[1], 0.0);  // flow in +x (small positive alpha)
  EXPECT_GT(c.qinf[3], 0.0);
  // Pressure recovered from the conservative state must be ~1.
  const double ri = 1.0 / c.qinf[0];
  const double p = c.gm1 * (c.qinf[3] - 0.5 * ri * (c.qinf[1] * c.qinf[1] +
                                                    c.qinf[2] * c.qinf[2]));
  EXPECT_NEAR(p, 1.0, 1e-12);
  // Mach number recovered from the velocity must match.
  const double u = std::hypot(c.qinf[1], c.qinf[2]) * ri;
  const double a = std::sqrt(c.gam * p / c.qinf[0]);
  EXPECT_NEAR(u / a, c.mach, 1e-12);
}

TEST(SaveSoln, CopiesAllFourComponents) {
  const double q[4] = {1.0, 2.0, 3.0, 4.0};
  double qold[4] = {0.0, 0.0, 0.0, 0.0};
  airfoil::save_soln(q, qold);
  for (int n = 0; n < 4; ++n) {
    EXPECT_EQ(qold[n], q[n]);
  }
}

TEST(AdtCalc, PositiveForFreeStreamOnUnitSquare) {
  const auto& c = constants();
  const double x1[2] = {0.0, 0.0};
  const double x2[2] = {1.0, 0.0};
  const double x3[2] = {1.0, 1.0};
  const double x4[2] = {0.0, 1.0};
  double adt = -1.0;
  airfoil::adt_calc(x1, x2, x3, x4, c.qinf.data(), &adt);
  EXPECT_GT(adt, 0.0);
  EXPECT_TRUE(std::isfinite(adt));
}

TEST(AdtCalc, ScalesWithCellSize) {
  // A smaller cell must produce a smaller (more restrictive dt⁻¹-like)
  // measure; adt sums |face| terms so it shrinks with the cell.
  const auto& c = constants();
  const double x1[2] = {0.0, 0.0};
  const double x2[2] = {1.0, 0.0};
  const double x3[2] = {1.0, 1.0};
  const double x4[2] = {0.0, 1.0};
  double adt_big = 0.0;
  airfoil::adt_calc(x1, x2, x3, x4, c.qinf.data(), &adt_big);
  const double y1[2] = {0.0, 0.0};
  const double y2[2] = {0.5, 0.0};
  const double y3[2] = {0.5, 0.5};
  const double y4[2] = {0.0, 0.5};
  double adt_small = 0.0;
  airfoil::adt_calc(y1, y2, y3, y4, c.qinf.data(), &adt_small);
  EXPECT_LT(adt_small, adt_big);
  EXPECT_NEAR(adt_small, 0.5 * adt_big, 1e-12);
}

TEST(ResCalc, UniformFlowFluxesCancelAntisymmetrically) {
  // For equal states on both sides the dissipation term vanishes and
  // whatever flux leaves cell 1 enters cell 2 exactly.
  const auto& c = constants();
  const double x1[2] = {0.0, 1.0};
  const double x2[2] = {0.0, 0.0};
  const double adt = 1.0;
  double res1[4] = {0, 0, 0, 0};
  double res2[4] = {0, 0, 0, 0};
  airfoil::res_calc(x1, x2, c.qinf.data(), c.qinf.data(), &adt, &adt, res1,
                    res2);
  for (int n = 0; n < 4; ++n) {
    EXPECT_NEAR(res1[n], -res2[n], 1e-14) << "component " << n;
  }
  // Mass flux through a unit vertical face equals the x-momentum.
  EXPECT_NEAR(res1[0], c.qinf[1], 1e-14);
}

TEST(ResCalc, DissipationDampsStateDifferences) {
  const auto& c = constants();
  const double x1[2] = {0.0, 1.0};
  const double x2[2] = {0.0, 0.0};
  const double adt = 2.0;
  std::array<double, 4> qa = c.qinf;
  std::array<double, 4> qb = c.qinf;
  qb[0] += 0.1;  // density jump
  double res1[4] = {0, 0, 0, 0};
  double res2[4] = {0, 0, 0, 0};
  airfoil::res_calc(x1, x2, qa.data(), qb.data(), &adt, &adt, res1, res2);
  // Compare against the no-jump case: the mu*(q1-q2) term must pull
  // res1[0] down (q1[0] < q2[0]).
  double ref1[4] = {0, 0, 0, 0};
  double ref2[4] = {0, 0, 0, 0};
  airfoil::res_calc(x1, x2, qa.data(), qa.data(), &adt, &adt, ref1, ref2);
  EXPECT_LT(res1[0], ref1[0]);
}

TEST(ResCalc, AccumulatesIntoExistingResidual) {
  const auto& c = constants();
  const double x1[2] = {0.0, 1.0};
  const double x2[2] = {0.0, 0.0};
  const double adt = 1.0;
  double res1[4] = {10, 10, 10, 10};
  double res2[4] = {10, 10, 10, 10};
  airfoil::res_calc(x1, x2, c.qinf.data(), c.qinf.data(), &adt, &adt, res1,
                    res2);
  EXPECT_NEAR(res1[0] + res2[0], 20.0, 1e-12);  // += f and -= f
}

TEST(BresCalc, WallAppliesOnlyPressure) {
  const auto& c = constants();
  const double x1[2] = {1.0, 0.0};
  const double x2[2] = {0.0, 0.0};  // bottom wall, outward normal -y
  const double adt = 1.0;
  double res[4] = {0, 0, 0, 0};
  const int wall = airfoil::bound_wall;
  airfoil::bres_calc(x1, x2, c.qinf.data(), &adt, res, &wall);
  EXPECT_EQ(res[0], 0.0);  // no mass flux through a wall
  EXPECT_EQ(res[3], 0.0);  // no energy flux through a wall
  // Pressure ~1 acting on outward normal (0,-1): res[2] = -p*dx with
  // dx = +1 → negative y-momentum contribution.
  EXPECT_NEAR(res[2], -1.0, 1e-9);
  EXPECT_EQ(res[1], 0.0);  // dy = 0 on this face
}

TEST(BresCalc, FarFieldAtFreeStreamMatchesInteriorFlux) {
  // A far-field face with the cell at free stream behaves like an
  // interior face between two free-stream cells (zero dissipation).
  const auto& c = constants();
  const double x1[2] = {0.0, 0.0};
  const double x2[2] = {0.0, 1.0};  // left boundary, outward -x
  const double adt = 1.0;
  double bres[4] = {0, 0, 0, 0};
  const int far = airfoil::bound_farfield;
  airfoil::bres_calc(x1, x2, c.qinf.data(), &adt, bres, &far);
  double res1[4] = {0, 0, 0, 0};
  double res2[4] = {0, 0, 0, 0};
  airfoil::res_calc(x1, x2, c.qinf.data(), c.qinf.data(), &adt, &adt, res1,
                    res2);
  for (int n = 0; n < 4; ++n) {
    EXPECT_NEAR(bres[n], res1[n], 1e-13) << "component " << n;
  }
}

TEST(Update, AppliesExplicitStepAndResetsResidual) {
  const double qold[4] = {1.0, 0.5, 0.0, 2.0};
  double q[4] = {9, 9, 9, 9};
  double res[4] = {0.2, -0.4, 0.0, 1.0};
  const double adt = 2.0;
  double rms = 0.0;
  airfoil::update(qold, q, res, &adt, &rms);
  EXPECT_DOUBLE_EQ(q[0], 1.0 - 0.1);
  EXPECT_DOUBLE_EQ(q[1], 0.5 + 0.2);
  EXPECT_DOUBLE_EQ(q[2], 0.0);
  EXPECT_DOUBLE_EQ(q[3], 2.0 - 0.5);
  for (int n = 0; n < 4; ++n) {
    EXPECT_EQ(res[n], 0.0);
  }
  EXPECT_DOUBLE_EQ(rms, 0.01 + 0.04 + 0.0 + 0.25);
}

TEST(Update, RmsAccumulatesAcrossCalls) {
  const double qold[4] = {1, 1, 1, 1};
  double q[4];
  double res[4] = {1, 0, 0, 0};
  const double adt = 1.0;
  double rms = 0.0;
  airfoil::update(qold, q, res, &adt, &rms);
  res[0] = 1.0;
  airfoil::update(qold, q, res, &adt, &rms);
  EXPECT_DOUBLE_EQ(rms, 2.0);
}

}  // namespace
