// Distributed (simulated-MPI) Airfoil: decomposition correctness and
// agreement with the single-domain solver.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "airfoil/airfoil.hpp"

namespace {

using airfoil::dist_sim;
using airfoil::gather_q;
using airfoil::generate_mesh;
using airfoil::make_dist_sim;
using airfoil::make_sim;
using airfoil::mesh_params;
using airfoil::run_classic;
using airfoil::run_distributed;

mesh_params small_mesh() {
  mesh_params p;
  p.imax = 20;
  p.jmax = 10;
  return p;
}

class DistributedTest : public ::testing::Test {
 protected:
  void SetUp() override { op2::init({op2::backend::seq, 1, 32, 0}); }
  void TearDown() override { op2::finalize(); }
};

TEST_F(DistributedTest, DecompositionCoversEveryCellOnce) {
  const auto mesh = generate_mesh(small_mesh());
  const int ncell = mesh.set("cells").size();
  const auto d = make_dist_sim(mesh, 4);
  ASSERT_EQ(d.ranks.size(), 4u);
  std::vector<int> owner_count(static_cast<std::size_t>(ncell), 0);
  for (const auto& rank : d.ranks) {
    for (int c = 0; c < rank.nowned; ++c) {
      owner_count[static_cast<std::size_t>(
          rank.global_cell[static_cast<std::size_t>(c)])] += 1;
    }
  }
  for (int c = 0; c < ncell; ++c) {
    ASSERT_EQ(owner_count[static_cast<std::size_t>(c)], 1) << "cell " << c;
  }
}

TEST_F(DistributedTest, EveryEdgeAssignedToExactlyOneRank) {
  const auto mesh = generate_mesh(small_mesh());
  const auto d = make_dist_sim(mesh, 4);
  int total_edges = 0;
  int total_bedges = 0;
  for (const auto& rank : d.ranks) {
    total_edges += rank.local.edges.size();
    total_bedges += rank.local.bedges.size();
  }
  EXPECT_EQ(total_edges, mesh.set("edges").size());
  EXPECT_EQ(total_bedges, mesh.set("bedges").size());
}

TEST_F(DistributedTest, GhostLinksPointAtOwners) {
  const auto mesh = generate_mesh(small_mesh());
  const auto d = make_dist_sim(mesh, 4);
  for (std::size_t r = 0; r < d.ranks.size(); ++r) {
    for (const auto& g : d.ranks[r].ghosts) {
      ASSERT_NE(g.owner_rank, static_cast<int>(r));
      const auto& owner = d.ranks[static_cast<std::size_t>(g.owner_rank)];
      ASSERT_LT(g.owner_local_cell, owner.nowned);
      // The link connects the same global cell on both sides.
      EXPECT_EQ(owner.global_cell[static_cast<std::size_t>(
                    g.owner_local_cell)],
                d.ranks[r].global_cell[static_cast<std::size_t>(
                    g.local_cell)]);
      // Ghosts live after the owned range.
      EXPECT_GE(g.local_cell, d.ranks[r].nowned);
    }
  }
}

TEST_F(DistributedTest, SingleRankMatchesReferenceExactly) {
  const auto mesh = generate_mesh(small_mesh());
  auto ref = make_sim(mesh);
  const auto ref_result = run_classic(ref, 6);

  auto d = make_dist_sim(mesh, 1);
  const auto dist_result = run_distributed(d, 6);

  ASSERT_EQ(dist_result.rms_history.size(), ref_result.rms_history.size());
  for (std::size_t i = 0; i < ref_result.rms_history.size(); ++i) {
    EXPECT_DOUBLE_EQ(dist_result.rms_history[i], ref_result.rms_history[i]);
  }
  const auto q = gather_q(d);
  const auto ref_q = ref.p_q.data<double>();
  for (std::size_t i = 0; i < q.size(); ++i) {
    ASSERT_EQ(q[i], ref_q[i]) << "entry " << i;
  }
}

class DistributedRankCount : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { op2::init({op2::backend::seq, 1, 32, 0}); }
  void TearDown() override { op2::finalize(); }
};

TEST_P(DistributedRankCount, MatchesReferenceUpToRounding) {
  const int nranks = GetParam();
  const auto mesh = generate_mesh(small_mesh());
  auto ref = make_sim(mesh);
  const auto ref_result = run_classic(ref, 8);
  const auto ref_q = ref.p_q.data<double>();

  auto d = make_dist_sim(mesh, nranks);
  const auto dist_result = run_distributed(d, 8);

  // q agrees up to halo-reduction reassociation.
  const auto q = gather_q(d);
  for (std::size_t i = 0; i < q.size(); ++i) {
    ASSERT_NEAR(q[i], ref_q[i], 1e-11 * std::max(1.0, std::fabs(ref_q[i])))
        << "entry " << i;
  }
  // rms histories agree to the same tolerance.
  for (std::size_t i = 0; i < ref_result.rms_history.size(); ++i) {
    EXPECT_NEAR(dist_result.rms_history[i], ref_result.rms_history[i],
                1e-10 * std::max(1.0, ref_result.rms_history[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, DistributedRankCount,
                         ::testing::Values(2, 3, 4, 7));

TEST_F(DistributedTest, WorksUnderParallelBackend) {
  op2::init({op2::backend::forkjoin, 3, 16, 0});
  const auto mesh = generate_mesh(small_mesh());
  auto ref = make_sim(mesh);
  run_classic(ref, 5);
  const auto ref_q = ref.p_q.data<double>();

  auto d = make_dist_sim(mesh, 3);
  run_distributed(d, 5);
  const auto q = gather_q(d);
  for (std::size_t i = 0; i < q.size(); ++i) {
    ASSERT_NEAR(q[i], ref_q[i], 1e-11 * std::max(1.0, std::fabs(ref_q[i])));
  }
}

TEST_F(DistributedTest, InvalidRankCountRejected) {
  const auto mesh = generate_mesh(small_mesh());
  EXPECT_THROW(make_dist_sim(mesh, 0), std::invalid_argument);
}

}  // namespace
