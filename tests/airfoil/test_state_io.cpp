#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "airfoil/airfoil.hpp"

namespace {

using airfoil::generate_mesh;
using airfoil::load_state;
using airfoil::make_sim;
using airfoil::run_classic;
using airfoil::save_state;
using airfoil::solution_checksum;

airfoil::mesh_params tiny() {
  airfoil::mesh_params p;
  p.imax = 16;
  p.jmax = 6;
  return p;
}

TEST(StateIo, RoundTripPreservesSolution) {
  op2::init({op2::backend::seq, 1, 32, 0});
  auto s = make_sim(generate_mesh(tiny()));
  run_classic(s, 5);
  const double checksum = solution_checksum(s);

  const std::string path = ::testing::TempDir() + "/airfoil_state_rt.txt";
  save_state(s, path);
  auto restored = load_state(path);
  EXPECT_EQ(solution_checksum(restored), checksum);
  EXPECT_EQ(restored.cells.size(), s.cells.size());
  EXPECT_EQ(restored.edges.size(), s.edges.size());

  const auto orig = s.p_adt.data<double>();
  const auto back = restored.p_adt.data<double>();
  for (std::size_t i = 0; i < orig.size(); ++i) {
    ASSERT_EQ(back[i], orig[i]);
  }
  op2::finalize();
}

TEST(StateIo, ResumeContinuesIdenticallyToUnbrokenRun) {
  op2::init({op2::backend::seq, 1, 32, 0});
  // Unbroken 10-iteration run.
  auto full = make_sim(generate_mesh(tiny()));
  const auto full_result = run_classic(full, 10);

  // 5 iterations, checkpoint, restore, 5 more.
  auto first = make_sim(generate_mesh(tiny()));
  run_classic(first, 5);
  const std::string path = ::testing::TempDir() + "/airfoil_state_resume.txt";
  save_state(first, path);
  auto resumed = load_state(path);
  const auto tail = run_classic(resumed, 5);

  EXPECT_EQ(solution_checksum(resumed), solution_checksum(full));
  // The resumed run's residual history continues the original's.
  ASSERT_EQ(tail.rms_history.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(tail.rms_history[i], full_result.rms_history[i + 5]);
  }
  op2::finalize();
}

TEST(StateIo, MissingFileThrows) {
  EXPECT_THROW(load_state("/nonexistent/airfoil_state.txt"),
               std::runtime_error);
}

TEST(StateIo, LoadAcrossBackends) {
  // Checkpoint under seq, continue under dataflow: identical physics.
  op2::init({op2::backend::seq, 1, 32, 0});
  auto a = make_sim(generate_mesh(tiny()));
  run_classic(a, 4);
  const std::string path = ::testing::TempDir() + "/airfoil_state_xbk.txt";
  save_state(a, path);
  const auto cont_seq = run_classic(a, 3);

  op2::init({op2::backend::hpx_dataflow, 3, 32, 0});
  auto b = load_state(path);
  const auto cont_df = airfoil::run_dataflow(b, 3);
  op2::finalize();

  ASSERT_EQ(cont_df.rms_history.size(), cont_seq.rms_history.size());
  for (std::size_t i = 0; i < cont_seq.rms_history.size(); ++i) {
    EXPECT_NEAR(cont_df.rms_history[i], cont_seq.rms_history[i],
                1e-12 * std::max(1.0, cont_seq.rms_history[i]));
  }
  EXPECT_NEAR(solution_checksum(b), solution_checksum(a),
              1e-9 * std::abs(solution_checksum(a)));
}

}  // namespace
