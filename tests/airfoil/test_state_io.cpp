#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "airfoil/airfoil.hpp"

namespace {

using airfoil::generate_mesh;
using airfoil::load_state;
using airfoil::make_sim;
using airfoil::run_classic;
using airfoil::save_state;
using airfoil::solution_checksum;

airfoil::mesh_params tiny() {
  airfoil::mesh_params p;
  p.imax = 16;
  p.jmax = 6;
  return p;
}

TEST(StateIo, RoundTripPreservesSolution) {
  op2::init({op2::backend::seq, 1, 32, 0});
  auto s = make_sim(generate_mesh(tiny()));
  run_classic(s, 5);
  const double checksum = solution_checksum(s);

  const std::string path = ::testing::TempDir() + "/airfoil_state_rt.txt";
  save_state(s, path);
  auto restored = load_state(path);
  EXPECT_EQ(solution_checksum(restored), checksum);
  EXPECT_EQ(restored.cells.size(), s.cells.size());
  EXPECT_EQ(restored.edges.size(), s.edges.size());

  const auto orig = s.p_adt.data<double>();
  const auto back = restored.p_adt.data<double>();
  for (std::size_t i = 0; i < orig.size(); ++i) {
    ASSERT_EQ(back[i], orig[i]);
  }
  op2::finalize();
}

TEST(StateIo, ResumeContinuesIdenticallyToUnbrokenRun) {
  op2::init({op2::backend::seq, 1, 32, 0});
  // Unbroken 10-iteration run.
  auto full = make_sim(generate_mesh(tiny()));
  const auto full_result = run_classic(full, 10);

  // 5 iterations, checkpoint, restore, 5 more.
  auto first = make_sim(generate_mesh(tiny()));
  run_classic(first, 5);
  const std::string path = ::testing::TempDir() + "/airfoil_state_resume.txt";
  save_state(first, path);
  auto resumed = load_state(path);
  const auto tail = run_classic(resumed, 5);

  EXPECT_EQ(solution_checksum(resumed), solution_checksum(full));
  // The resumed run's residual history continues the original's.
  ASSERT_EQ(tail.rms_history.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(tail.rms_history[i], full_result.rms_history[i + 5]);
  }
  op2::finalize();
}

TEST(StateIo, MissingFileThrows) {
  EXPECT_THROW(load_state("/nonexistent/airfoil_state.txt"),
               std::runtime_error);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void spew(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
}

/// A checkpoint to damage, plus its expected solution fingerprint.
std::string write_reference_checkpoint(const std::string& name,
                                       double* checksum) {
  op2::init({op2::backend::seq, 1, 32, 0});
  auto s = make_sim(generate_mesh(tiny()));
  run_classic(s, 3);
  *checksum = solution_checksum(s);
  const std::string path = ::testing::TempDir() + "/" + name;
  save_state(s, path);
  op2::finalize();
  return path;
}

TEST(StateIo, TruncatedCheckpointReportsTruncation) {
  double checksum = 0.0;
  const auto path =
      write_reference_checkpoint("airfoil_state_trunc.txt", &checksum);
  const std::string full = slurp(path);
  spew(path, full.substr(0, full.size() - 16));
  try {
    load_state(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("truncated"), std::string::npos) << what;
    EXPECT_NE(what.find(path), std::string::npos) << what;
  }
}

TEST(StateIo, CorruptedPayloadFailsChecksumVerification) {
  double checksum = 0.0;
  const auto path =
      write_reference_checkpoint("airfoil_state_corrupt.txt", &checksum);
  std::string full = slurp(path);
  // Flip the final payload byte: same length, different content.
  full.back() = full.back() == 'X' ? 'Y' : 'X';
  spew(path, full);
  try {
    load_state(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("checksum"), std::string::npos) << what;
    EXPECT_NE(what.find(path), std::string::npos) << what;
  }
}

TEST(StateIo, UnsupportedVersionIsRejected) {
  const std::string path = ::testing::TempDir() + "/airfoil_state_v99.txt";
  spew(path, "airfoil-state 99\nbytes 0\nfnv1a 0\n");
  try {
    load_state(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported version"),
              std::string::npos)
        << e.what();
  }
}

TEST(StateIo, LegacyBareMeshCheckpointStillLoads) {
  double checksum = 0.0;
  const auto path =
      write_reference_checkpoint("airfoil_state_legacy.txt", &checksum);
  // Strip the three-line envelope, leaving the bare v1 mesh payload.
  std::string full = slurp(path);
  for (int line = 0; line < 3; ++line) {
    full.erase(0, full.find('\n') + 1);
  }
  spew(path, full);
  op2::init({op2::backend::seq, 1, 32, 0});
  auto restored = load_state(path);
  EXPECT_EQ(solution_checksum(restored), checksum);
  op2::finalize();
}

TEST(StateIo, LoadAcrossBackends) {
  // Checkpoint under seq, continue under dataflow: identical physics.
  op2::init({op2::backend::seq, 1, 32, 0});
  auto a = make_sim(generate_mesh(tiny()));
  run_classic(a, 4);
  const std::string path = ::testing::TempDir() + "/airfoil_state_xbk.txt";
  save_state(a, path);
  const auto cont_seq = run_classic(a, 3);

  op2::init({op2::backend::hpx_dataflow, 3, 32, 0});
  auto b = load_state(path);
  const auto cont_df = airfoil::run_dataflow(b, 3);
  op2::finalize();

  ASSERT_EQ(cont_df.rms_history.size(), cont_seq.rms_history.size());
  for (std::size_t i = 0; i < cont_seq.rms_history.size(); ++i) {
    EXPECT_NEAR(cont_df.rms_history[i], cont_seq.rms_history[i],
                1e-12 * std::max(1.0, cont_seq.rms_history[i]));
  }
  EXPECT_NEAR(solution_checksum(b), solution_checksum(a),
              1e-9 * std::abs(solution_checksum(a)));
}

}  // namespace
