#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "airfoil/mesh.hpp"
#include "airfoil/constants.hpp"

namespace {

using airfoil::generate_mesh;
using airfoil::generate_mesh_with_cells;
using airfoil::mesh_params;

mesh_params small_params() {
  mesh_params p;
  p.imax = 12;
  p.jmax = 5;
  return p;
}

TEST(AirfoilMesh, SetSizesMatchStructuredGrid) {
  const auto p = small_params();
  const auto m = generate_mesh(p);
  EXPECT_EQ(m.set("nodes").size(), (p.imax + 1) * (p.jmax + 1));
  EXPECT_EQ(m.set("cells").size(), p.imax * p.jmax);
  EXPECT_EQ(m.set("edges").size(),
            (p.imax - 1) * p.jmax + p.imax * (p.jmax - 1));
  EXPECT_EQ(m.set("bedges").size(), 2 * p.imax + 2 * p.jmax);
}

TEST(AirfoilMesh, MapsHaveExpectedShapes) {
  const auto m = generate_mesh(small_params());
  EXPECT_EQ(m.map("pcell").dim(), 4);
  EXPECT_EQ(m.map("pedge").dim(), 2);
  EXPECT_EQ(m.map("pecell").dim(), 2);
  EXPECT_EQ(m.map("pbedge").dim(), 2);
  EXPECT_EQ(m.map("pbecell").dim(), 1);
  EXPECT_EQ(m.map("pcell").from(), m.set("cells"));
  EXPECT_EQ(m.map("pcell").to(), m.set("nodes"));
  EXPECT_EQ(m.map("pecell").to(), m.set("cells"));
}

TEST(AirfoilMesh, RejectsTinyGrids) {
  mesh_params p;
  p.imax = 1;
  p.jmax = 5;
  EXPECT_THROW(generate_mesh(p), std::invalid_argument);
}

TEST(AirfoilMesh, CellCornersAreCounterClockwise) {
  const auto p = small_params();
  const auto m = generate_mesh(p);
  const auto& pcell = m.map("pcell");
  const auto x = m.dat("p_x").data<double>();
  // Shoelace area of every quad must be positive (CCW orientation).
  for (int c = 0; c < m.set("cells").size(); ++c) {
    double area = 0.0;
    for (int k = 0; k < 4; ++k) {
      const auto a = static_cast<std::size_t>(pcell.at(c, k));
      const auto b = static_cast<std::size_t>(pcell.at(c, (k + 1) % 4));
      area += x[2 * a] * x[2 * b + 1] - x[2 * b] * x[2 * a + 1];
    }
    ASSERT_GT(area, 0.0) << "cell " << c;
  }
}

TEST(AirfoilMesh, InteriorEdgeNormalsPointFromCell1ToCell2) {
  // The res_calc convention: with d = x1 - x2, the normal (dy, -dx)
  // must point from pecell[0] toward pecell[1].
  const auto p = small_params();
  const auto m = generate_mesh(p);
  const auto& pedge = m.map("pedge");
  const auto& pecell = m.map("pecell");
  const auto& pcell = m.map("pcell");
  const auto x = m.dat("p_x").data<double>();

  const auto centroid = [&](int cell, double* out) {
    out[0] = out[1] = 0.0;
    for (int k = 0; k < 4; ++k) {
      const auto n = static_cast<std::size_t>(pcell.at(cell, k));
      out[0] += 0.25 * x[2 * n];
      out[1] += 0.25 * x[2 * n + 1];
    }
  };

  for (int e = 0; e < m.set("edges").size(); ++e) {
    const auto n1 = static_cast<std::size_t>(pedge.at(e, 0));
    const auto n2 = static_cast<std::size_t>(pedge.at(e, 1));
    const double dx = x[2 * n1] - x[2 * n2];
    const double dy = x[2 * n1 + 1] - x[2 * n2 + 1];
    double c1[2];
    double c2[2];
    centroid(pecell.at(e, 0), c1);
    centroid(pecell.at(e, 1), c2);
    // Vector from cell1 centroid to cell2 centroid.
    const double vx = c2[0] - c1[0];
    const double vy = c2[1] - c1[1];
    const double dot = dy * vx - dx * vy;
    ASSERT_GT(dot, 0.0) << "edge " << e;
  }
}

TEST(AirfoilMesh, BoundaryEdgeNormalsPointOutward) {
  const auto p = small_params();
  const auto m = generate_mesh(p);
  const auto& pbedge = m.map("pbedge");
  const auto& pbecell = m.map("pbecell");
  const auto& pcell = m.map("pcell");
  const auto x = m.dat("p_x").data<double>();

  for (int e = 0; e < m.set("bedges").size(); ++e) {
    const auto n1 = static_cast<std::size_t>(pbedge.at(e, 0));
    const auto n2 = static_cast<std::size_t>(pbedge.at(e, 1));
    const double dx = x[2 * n1] - x[2 * n2];
    const double dy = x[2 * n1 + 1] - x[2 * n2 + 1];
    // Midpoint of the edge minus adjacent-cell centroid ~ outward dir.
    double cx = 0.0;
    double cy = 0.0;
    for (int k = 0; k < 4; ++k) {
      const auto n = static_cast<std::size_t>(pcell.at(pbecell.at(e, 0), k));
      cx += 0.25 * x[2 * n];
      cy += 0.25 * x[2 * n + 1];
    }
    const double mx = 0.5 * (x[2 * n1] + x[2 * n2]) - cx;
    const double my = 0.5 * (x[2 * n1 + 1] + x[2 * n2 + 1]) - cy;
    const double dot = dy * mx - dx * my;
    ASSERT_GT(dot, 0.0) << "boundary edge " << e;
  }
}

TEST(AirfoilMesh, BoundMarkersWallOnBottomFarfieldElsewhere) {
  const auto p = small_params();
  const auto m = generate_mesh(p);
  const auto bound = m.dat("p_bound").data<int>();
  int walls = 0;
  int farfields = 0;
  for (const int b : bound) {
    if (b == airfoil::bound_wall) {
      ++walls;
    } else if (b == airfoil::bound_farfield) {
      ++farfields;
    } else {
      FAIL() << "unexpected bound marker " << b;
    }
  }
  EXPECT_EQ(walls, p.imax);                   // entire bottom wall
  EXPECT_EQ(farfields, p.imax + 2 * p.jmax);  // top + left + right
}

TEST(AirfoilMesh, BumpDeformsOnlyInteriorOfBottomWall) {
  mesh_params p = small_params();
  p.imax = 40;
  p.bump_height = 0.1;
  const auto m = generate_mesh(p);
  const auto x = m.dat("p_x").data<double>();
  double max_y0 = 0.0;
  for (int i = 0; i <= p.imax; ++i) {
    const auto n = static_cast<std::size_t>(i);  // j = 0 row
    max_y0 = std::max(max_y0, x[2 * n + 1]);
  }
  EXPECT_GT(max_y0, 0.05);   // the bump is present
  EXPECT_LE(max_y0, 0.1001);  // and bounded by bump_height
  // Corners stay on y = 0.
  EXPECT_EQ(x[1], 0.0);
  const auto last = static_cast<std::size_t>(p.imax);
  EXPECT_EQ(x[2 * last + 1], 0.0);
}

TEST(AirfoilMesh, TargetCellCountApproximatelyHonoured) {
  const auto m = generate_mesh_with_cells(10000);
  const int n = m.set("cells").size();
  EXPECT_GT(n, 5000);
  EXPECT_LT(n, 20000);
  EXPECT_THROW(generate_mesh_with_cells(1), std::invalid_argument);
}

TEST(AirfoilMesh, EveryCellReachedByExactlyFourEdgesOrBedges) {
  // Each quad cell has 4 faces; every face appears exactly once as an
  // interior edge side or a boundary edge.
  const auto p = small_params();
  const auto m = generate_mesh(p);
  std::vector<int> face_count(static_cast<std::size_t>(m.set("cells").size()),
                              0);
  const auto& pecell = m.map("pecell");
  for (int e = 0; e < m.set("edges").size(); ++e) {
    face_count[static_cast<std::size_t>(pecell.at(e, 0))] += 1;
    face_count[static_cast<std::size_t>(pecell.at(e, 1))] += 1;
  }
  const auto& pbecell = m.map("pbecell");
  for (int e = 0; e < m.set("bedges").size(); ++e) {
    face_count[static_cast<std::size_t>(pbecell.at(e, 0))] += 1;
  }
  for (std::size_t c = 0; c < face_count.size(); ++c) {
    ASSERT_EQ(face_count[c], 4) << "cell " << c;
  }
}

}  // namespace
