// Registry-driven equivalence: iterate op2::backend_registry::names()
// (so a newly registered backend is covered automatically) and check
// every backend reproduces the Airfoil flow field on a tiny mesh.
//
// Two tiers of agreement:
//   - flow field (solution checksum): BIT-IDENTICAL across all
//     plan-following backends and thread counts — colouring fixes the
//     order of indirect increments, so q is schedule-independent; the
//     raw `seq` oracle iterates in element order instead and is only
//     required to match to rounding.
//   - rms residuals: global reductions merge block-private buffers in
//     thread-completion order, so parallel runs may differ from the
//     oracle by rounding only.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "airfoil/airfoil.hpp"

namespace {

using airfoil::generate_mesh;
using airfoil::make_sim;
using airfoil::mesh_params;
using airfoil::run_result;
using airfoil::run_with_backend;
using airfoil::solution_checksum;

constexpr int kIters = 8;

mesh_params tiny() {
  mesh_params p;
  p.imax = 24;
  p.jmax = 8;
  return p;
}

struct outcome {
  run_result result;
  double checksum = 0.0;
};

outcome run_backend(const std::string& name, unsigned threads) {
  op2::init(op2::make_config(name, threads, 32));
  auto s = make_sim(generate_mesh(tiny()));
  outcome o;
  o.result = run_with_backend(s, kIters, name);
  o.checksum = solution_checksum(s);
  op2::finalize();
  return o;
}

/// Sequential-oracle reference, computed once.
const outcome& seq_reference() {
  static const outcome ref = run_backend("seq", 1);
  return ref;
}

/// Plan-following reference for the bit-identity assertion.
const outcome& colored_reference() {
  static const outcome ref = run_backend("forkjoin", 1);
  return ref;
}

class BackendEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(BackendEquivalence, MatchesOracleOnTinyMesh) {
  const std::string name = GetParam();
  const auto& oracle = seq_reference();
  for (const unsigned threads : {1u, 4u}) {
    const auto got = run_backend(name, threads);
    ASSERT_EQ(got.result.rms_history.size(),
              oracle.result.rms_history.size())
        << name << " t" << threads;
    for (std::size_t i = 0; i < oracle.result.rms_history.size(); ++i) {
      const double ref = oracle.result.rms_history[i];
      EXPECT_NEAR(got.result.rms_history[i], ref,
                  1e-12 * std::max(1.0, std::fabs(ref)))
          << name << " t" << threads << " iteration " << i;
    }
    if (name == "seq") {
      EXPECT_EQ(got.checksum, oracle.checksum);
    } else {
      // Colouring makes the flow field schedule-independent: every
      // plan-following backend must agree to the last bit, at every
      // thread count.
      EXPECT_EQ(got.checksum, colored_reference().checksum)
          << name << " t" << threads;
      EXPECT_NEAR(got.checksum, oracle.checksum,
                  1e-9 * std::fabs(oracle.checksum))
          << name << " t" << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, BackendEquivalence,
    ::testing::ValuesIn(op2::backend_registry::names()),
    [](const ::testing::TestParamInfo<std::string>& pinfo) {
      return pinfo.param;
    });

// --- chunker x backend smoke matrix -----------------------------------
//
// Every chunk_spec the config grammar can express, under every
// registered backend: the grain decision partitions work, it must
// never change what the flow field converges to.  Backends that ignore
// the chunk spec (seq) are included deliberately — the config must be
// accepted and harmless there too.

struct chunker_backend_param {
  std::string backend;
  std::string chunker;
};

class ChunkerBackendMatrix
    : public ::testing::TestWithParam<chunker_backend_param> {};

TEST_P(ChunkerBackendMatrix, FlowFieldIndependentOfChunker) {
  const auto& p = GetParam();
  auto cfg = op2::make_config(p.backend, 2, 32);
  cfg.chunker = p.chunker;
  op2::init(cfg);
  auto s = make_sim(generate_mesh(tiny()));
  const auto result = run_with_backend(s, kIters, p.backend);
  const double checksum = solution_checksum(s);
  op2::finalize();

  const auto& oracle = seq_reference();
  ASSERT_EQ(result.rms_history.size(), oracle.result.rms_history.size());
  for (std::size_t i = 0; i < oracle.result.rms_history.size(); ++i) {
    const double ref = oracle.result.rms_history[i];
    EXPECT_NEAR(result.rms_history[i], ref,
                1e-12 * std::max(1.0, std::fabs(ref)))
        << p.backend << " chunker=" << p.chunker << " iteration " << i;
  }
  if (p.backend == "seq") {
    EXPECT_EQ(checksum, oracle.checksum);
  } else {
    EXPECT_EQ(checksum, colored_reference().checksum)
        << p.backend << " chunker=" << p.chunker;
  }
}

std::vector<chunker_backend_param> chunker_backend_cases() {
  std::vector<chunker_backend_param> cases;
  for (const auto& backend : op2::backend_registry::names()) {
    for (const char* chunker :
         {"auto", "static:4", "dynamic:8", "guided:2", "adaptive"}) {
      cases.push_back({backend, chunker});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllChunkers, ChunkerBackendMatrix,
    ::testing::ValuesIn(chunker_backend_cases()),
    [](const ::testing::TestParamInfo<chunker_backend_param>& pinfo) {
      std::string name = pinfo.param.backend + "_" + pinfo.param.chunker;
      for (char& c : name) {
        if (c == ':') {
          c = '_';
        }
      }
      return name;
    });

}  // namespace
