// End-to-end Airfoil runs: every programming model (classic under each
// backend, async, dataflow) must produce the identical flow field.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "airfoil/airfoil.hpp"
#include "airfoil/model_adapter.hpp"

namespace {

using airfoil::generate_mesh;
using airfoil::make_sim;
using airfoil::mesh_params;
using airfoil::run_async;
using airfoil::run_classic;
using airfoil::run_dataflow;
using airfoil::run_result;
using airfoil::sim;
using airfoil::solution_checksum;

mesh_params tiny() {
  mesh_params p;
  p.imax = 24;
  p.jmax = 8;
  return p;
}

constexpr int kIters = 8;

/// Reference result computed with the sequential backend.
const run_result& reference(double* checksum) {
  static double ref_checksum = 0.0;
  static run_result ref = [] {
    op2::init({op2::backend::seq, 1, 32, 0});
    auto s = make_sim(generate_mesh(tiny()));
    auto r = run_classic(s, kIters);
    ref_checksum = solution_checksum(s);
    op2::finalize();
    return r;
  }();
  if (checksum != nullptr) {
    *checksum = ref_checksum;
  }
  return ref;
}

void expect_matches_reference(const run_result& got, double checksum) {
  double ref_checksum = 0.0;
  const auto& ref = reference(&ref_checksum);
  ASSERT_EQ(got.rms_history.size(), ref.rms_history.size());
  for (std::size_t i = 0; i < ref.rms_history.size(); ++i) {
    // The parallel global reduction reorders additions; allow only
    // rounding-level differences.
    EXPECT_NEAR(got.rms_history[i], ref.rms_history[i],
                1e-12 * std::max(1.0, std::fabs(ref.rms_history[i])))
        << "iteration " << i;
  }
  EXPECT_NEAR(checksum, ref_checksum, 1e-9 * std::fabs(ref_checksum));
}

TEST(AirfoilSolver, PhysicsSanity) {
  double checksum = 0.0;
  const auto& ref = reference(&checksum);
  // The run produced a finite, non-trivial residual history.
  ASSERT_EQ(ref.rms_history.size(), static_cast<std::size_t>(kIters));
  for (const double rms : ref.rms_history) {
    ASSERT_TRUE(std::isfinite(rms));
    ASSERT_GT(rms, 0.0);
  }
  ASSERT_TRUE(std::isfinite(checksum));
  // The flow remains physical: positive density and pressure everywhere.
  op2::init({op2::backend::seq, 1, 32, 0});
  auto s = make_sim(generate_mesh(tiny()));
  run_classic(s, kIters);
  const auto& c = airfoil::constants();
  auto q = s.p_q.data<double>();
  for (int cell = 0; cell < s.cells.size(); ++cell) {
    const auto ci = static_cast<std::size_t>(4 * cell);
    const double rho = q[ci];
    ASSERT_GT(rho, 0.0);
    const double p = c.gm1 * (q[ci + 3] -
                              0.5 * (q[ci + 1] * q[ci + 1] +
                                     q[ci + 2] * q[ci + 2]) /
                                  rho);
    ASSERT_GT(p, 0.0);
  }
  op2::finalize();
}

struct model_case {
  std::string name;
  op2::backend bk;
  unsigned threads;
  run_result (*runner)(sim&, int);
};

class SolverEquivalence : public ::testing::TestWithParam<model_case> {};

TEST_P(SolverEquivalence, MatchesSequentialReference) {
  const auto& param = GetParam();
  op2::init({param.bk, param.threads, 32, 0});
  auto s = make_sim(generate_mesh(tiny()));
  const auto got = param.runner(s, kIters);
  const double checksum = solution_checksum(s);
  op2::finalize();
  expect_matches_reference(got, checksum);
}

INSTANTIATE_TEST_SUITE_P(
    Models, SolverEquivalence,
    ::testing::Values(
        model_case{"forkjoin_t1", op2::backend::forkjoin, 1, run_classic},
        model_case{"forkjoin_t4", op2::backend::forkjoin, 4, run_classic},
        model_case{"foreach_t1", op2::backend::hpx_foreach, 1, run_classic},
        model_case{"foreach_t4", op2::backend::hpx_foreach, 4, run_classic},
        model_case{"async_t1", op2::backend::hpx_async, 1, run_async},
        model_case{"async_t4", op2::backend::hpx_async, 4, run_async},
        model_case{"dataflow_t1", op2::backend::hpx_dataflow, 1,
                   run_dataflow},
        model_case{"dataflow_t4", op2::backend::hpx_dataflow, 4,
                   run_dataflow}),
    [](const ::testing::TestParamInfo<model_case>& pinfo) {
      return pinfo.param.name;
    });

TEST(AirfoilSolver, DeterministicAcrossRepeats) {
  op2::init({op2::backend::hpx_dataflow, 4, 32, 0});
  auto s1 = make_sim(generate_mesh(tiny()));
  const auto r1 = run_dataflow(s1, kIters);
  const double c1 = solution_checksum(s1);
  auto s2 = make_sim(generate_mesh(tiny()));
  const auto r2 = run_dataflow(s2, kIters);
  const double c2 = solution_checksum(s2);
  op2::finalize();
  EXPECT_EQ(c1, c2);  // the flow field itself is schedule-independent
  ASSERT_EQ(r1.rms_history.size(), r2.rms_history.size());
  for (std::size_t i = 0; i < r1.rms_history.size(); ++i) {
    // The rms reduction merges block-private partials in completion
    // order, so only rounding-level variation is permitted.
    EXPECT_NEAR(r1.rms_history[i], r2.rms_history[i],
                1e-13 * std::max(1.0, r1.rms_history[i]));
  }
}

TEST(AirfoilSolver, ResetSolutionRestoresFreeStream) {
  op2::init({op2::backend::seq, 1, 32, 0});
  auto s = make_sim(generate_mesh(tiny()));
  run_classic(s, 3);
  airfoil::reset_solution(s);
  const auto& qinf = airfoil::constants().qinf;
  auto q = s.p_q.data<double>();
  for (int cell = 0; cell < s.cells.size(); ++cell) {
    for (int n = 0; n < 4; ++n) {
      ASSERT_EQ(q[static_cast<std::size_t>(4 * cell + n)],
                qinf[static_cast<std::size_t>(n)]);
    }
  }
  for (const double v : s.p_res.data<double>()) {
    ASSERT_EQ(v, 0.0);
  }
  op2::finalize();
}

TEST(AirfoilSolver, LongerRunStaysStable) {
  op2::init({op2::backend::seq, 1, 64, 0});
  auto s = make_sim(generate_mesh(tiny()));
  const auto r = run_classic(s, 60);
  op2::finalize();
  for (const double rms : r.rms_history) {
    ASSERT_TRUE(std::isfinite(rms));
  }
  // The transient should decay: late residuals below the early peak.
  const double early_peak =
      *std::max_element(r.rms_history.begin(), r.rms_history.begin() + 10);
  EXPECT_LT(r.rms_history.back(), early_peak);
}

}  // namespace

namespace airfoil_model_costs {

TEST(ModelCosts, EngineMeasuredCostsArePositiveAndOrdered) {
  op2::init({op2::backend::seq, 1, 64, 0});
  auto s = airfoil::make_sim(airfoil::generate_mesh({32, 8}));
  const auto costs = airfoil::measure_loop_costs(s, 2);
  op2::finalize();
  EXPECT_GT(costs.save, 0.0);
  EXPECT_GT(costs.adt, 0.0);
  EXPECT_GT(costs.res, 0.0);
  EXPECT_GT(costs.bres, 0.0);
  EXPECT_GT(costs.update, 0.0);
  // adt does much more arithmetic than save_soln per element.
  EXPECT_GT(costs.adt, costs.save);
  // Profiling left disabled and clean.
  EXPECT_FALSE(op2::profiling::enabled());
  EXPECT_TRUE(op2::profiling::snapshot().empty());
}

}  // namespace airfoil_model_costs
