// The modified OP2 API (§III-B): op_dat_df handles, op_arg_dat1,
// dataflow op_par_loop with automatic dependency derivation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <numeric>
#include <thread>
#include <vector>

#include "op2/op2.hpp"

namespace {

using namespace op2;

class DataflowApiTest : public ::testing::Test {
 protected:
  void SetUp() override { op2::init({backend::hpx_dataflow, 3, 16, 0}); }
  void TearDown() override { op2::finalize(); }
};

void scale2(const double* in, double* out) { out[0] = 2.0 * in[0]; }

TEST_F(DataflowApiTest, SingleLoopCompletes) {
  auto s = op_decl_set(200, "s");
  std::vector<double> init(200, 1.0);
  op_dat_df a(op_decl_dat<double>(s, 1, "double",
                                  std::span<const double>(init), "a"));
  op_dat_df b(op_decl_dat<double>(s, 1, "double", "b"));
  auto f = op_par_loop(scale2, "x2", s,
                       op_arg_dat1<double>(a, -1, OP_ID, 1, OP_READ),
                       op_arg_dat1<double>(b, -1, OP_ID, 1, OP_WRITE));
  f.wait();
  for (const double v : b.dat().data<double>()) {
    ASSERT_EQ(v, 2.0);
  }
}

TEST_F(DataflowApiTest, ChainOrdersRawDependencies) {
  // b = 2a; c = 2b; d = 2c — the tree must serialise the chain.
  auto s = op_decl_set(500, "s");
  std::vector<double> init(500, 1.0);
  op_dat_df a(op_decl_dat<double>(s, 1, "double",
                                  std::span<const double>(init), "a"));
  op_dat_df b(op_decl_dat<double>(s, 1, "double", "b"));
  op_dat_df c(op_decl_dat<double>(s, 1, "double", "c"));
  op_dat_df d(op_decl_dat<double>(s, 1, "double", "d"));
  op_par_loop(scale2, "x2", s, op_arg_dat1<double>(a, -1, OP_ID, 1, OP_READ),
              op_arg_dat1<double>(b, -1, OP_ID, 1, OP_WRITE));
  op_par_loop(scale2, "x2", s, op_arg_dat1<double>(b, -1, OP_ID, 1, OP_READ),
              op_arg_dat1<double>(c, -1, OP_ID, 1, OP_WRITE));
  op_par_loop(scale2, "x2", s, op_arg_dat1<double>(c, -1, OP_ID, 1, OP_READ),
              op_arg_dat1<double>(d, -1, OP_ID, 1, OP_WRITE));
  d.wait();
  for (const double v : d.dat().data<double>()) {
    ASSERT_EQ(v, 8.0);
  }
}

TEST_F(DataflowApiTest, WriteAfterReadIsOrdered) {
  // Loop 1 reads a (slowly); loop 2 overwrites a.  The WAR dependency
  // must delay loop 2 until loop 1's reads are done.
  auto s = op_decl_set(64, "s");
  std::vector<double> init(64, 7.0);
  op_dat_df a(op_decl_dat<double>(s, 1, "double",
                                  std::span<const double>(init), "a"));
  op_dat_df sink(op_decl_dat<double>(s, 1, "double", "sink"));
  std::atomic<int> bad_reads{0};
  op_par_loop(
      [&bad_reads](const double* in, double* out) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        if (in[0] != 7.0) {
          bad_reads.fetch_add(1);
        }
        out[0] = in[0];
      },
      "slow_read", s, op_arg_dat1<double>(a, -1, OP_ID, 1, OP_READ),
      op_arg_dat1<double>(sink, -1, OP_ID, 1, OP_WRITE));
  op_par_loop([](double* v) { v[0] = -1.0; }, "clobber", s,
              op_arg_dat1<double>(a, -1, OP_ID, 1, OP_WRITE));
  a.wait();
  sink.wait();
  EXPECT_EQ(bad_reads.load(), 0);
  for (const double v : a.dat().data<double>()) {
    ASSERT_EQ(v, -1.0);
  }
  for (const double v : sink.dat().data<double>()) {
    ASSERT_EQ(v, 7.0);
  }
}

TEST_F(DataflowApiTest, WriteAfterWriteIsOrdered) {
  // Two writers to the same dat (the res_calc/bres_calc situation):
  // the second must observe the first's increments.
  const int nedge = 100;
  auto edges = op_decl_set(nedge, "edges");
  auto nodes = op_decl_set(nedge + 1, "nodes");
  std::vector<int> table;
  for (int e = 0; e < nedge; ++e) {
    table.push_back(e);
    table.push_back(e + 1);
  }
  auto e2n = op_decl_map(edges, nodes, 2, table, "e2n");
  op_dat_df degree(op_decl_dat<double>(nodes, 1, "double", "degree"));
  for (int round = 0; round < 2; ++round) {
    op_par_loop(
        [](double* x, double* y) {
          x[0] += 1.0;
          y[0] += 1.0;
        },
        "count", edges, op_arg_dat1<double>(degree, 0, e2n, 1, OP_INC),
        op_arg_dat1<double>(degree, 1, e2n, 1, OP_INC));
  }
  degree.wait();
  auto dv = degree.dat().data<double>();
  for (int n = 1; n < nedge; ++n) {
    ASSERT_EQ(dv[static_cast<std::size_t>(n)], 4.0);
  }
}

TEST_F(DataflowApiTest, IndependentReadersOverlap) {
  // Two loops that only read the same dat get no mutual dependency:
  // both depend on the writer, not on each other.  We verify both
  // results are correct (overlap itself is unobservable determinism-
  // wise, but this exercises the reader bookkeeping path).
  auto s = op_decl_set(300, "s");
  std::vector<double> init(300, 3.0);
  op_dat_df a(op_decl_dat<double>(s, 1, "double",
                                  std::span<const double>(init), "a"));
  op_dat_df r1(op_decl_dat<double>(s, 1, "double", "r1"));
  op_dat_df r2(op_decl_dat<double>(s, 1, "double", "r2"));
  op_par_loop(scale2, "x2", s, op_arg_dat1<double>(a, -1, OP_ID, 1, OP_READ),
              op_arg_dat1<double>(r1, -1, OP_ID, 1, OP_WRITE));
  op_par_loop([](const double* in, double* out) { out[0] = in[0] + 1.0; },
              "plus1", s, op_arg_dat1<double>(a, -1, OP_ID, 1, OP_READ),
              op_arg_dat1<double>(r2, -1, OP_ID, 1, OP_WRITE));
  r1.wait();
  r2.wait();
  EXPECT_EQ(r1.dat().data<double>()[0], 6.0);
  EXPECT_EQ(r2.dat().data<double>()[0], 4.0);
}

TEST_F(DataflowApiTest, GlobalReductionThroughDataflow) {
  auto s = op_decl_set(1000, "s");
  std::vector<double> init(1000, 0.25);
  op_dat_df a(op_decl_dat<double>(s, 1, "double",
                                  std::span<const double>(init), "a"));
  double total = 0.0;
  auto f = op_par_loop([](const double* v, double* acc) { acc[0] += v[0]; },
                       "sum", s, op_arg_dat1<double>(a, -1, OP_ID, 1, OP_READ),
                       op_arg_gbl1<double>(&total, 1, OP_INC));
  f.wait();
  EXPECT_DOUBLE_EQ(total, 250.0);
}

TEST_F(DataflowApiTest, ReadyFutureAggregatesUses) {
  auto s = op_decl_set(100, "s");
  op_dat_df a(op_decl_dat<double>(s, 1, "double", "a"));
  op_par_loop([](double* v) { v[0] = 1.0; }, "w", s,
              op_arg_dat1<double>(a, -1, OP_ID, 1, OP_WRITE));
  auto f = a.ready_future();
  f.get();
  EXPECT_EQ(a.dat().data<double>()[0], 1.0);
}

TEST_F(DataflowApiTest, InvalidHandleRejected) {
  op_dat_df none;
  EXPECT_THROW(op_arg_dat1<double>(none, -1, OP_ID, 1, OP_READ),
               std::invalid_argument);
  EXPECT_NO_THROW(none.wait());  // waiting on nothing is a no-op
}

TEST_F(DataflowApiTest, DeepPipelineMatchesSequentialResult) {
  // data[t] = 2*data[t-1] alternating between two buffers, launched
  // entirely up front — the paper's Fig 14 pattern.
  auto s = op_decl_set(128, "s");
  std::vector<double> init(128, 1.0);
  op_dat_df ping(op_decl_dat<double>(s, 1, "double",
                                     std::span<const double>(init), "ping"));
  op_dat_df pong(op_decl_dat<double>(s, 1, "double", "pong"));
  constexpr int steps = 20;
  for (int t = 0; t < steps; ++t) {
    auto& src = (t % 2 == 0) ? ping : pong;
    auto& dst = (t % 2 == 0) ? pong : ping;
    op_par_loop(scale2, "x2", s,
                op_arg_dat1<double>(src, -1, OP_ID, 1, OP_READ),
                op_arg_dat1<double>(dst, -1, OP_ID, 1, OP_WRITE));
  }
  ping.wait();
  pong.wait();
  auto& last = (steps % 2 == 0) ? ping : pong;
  for (const double v : last.dat().data<double>()) {
    ASSERT_EQ(v, std::pow(2.0, steps));
  }
}

}  // namespace
