// Randomised differential testing of the dataflow API: a random
// program of loops (random access modes, direct and indirect, multiple
// dats) is executed twice — once loop-by-loop on the sequential
// backend, once launched entirely up front through the modified API on
// a multi-threaded pool — and every dat must match EXACTLY.
//
// Integer dats make the comparison bit-exact regardless of execution
// order (integer addition is associative), so any mismatch is a real
// dependency-ordering bug, not floating-point noise.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "op2/op2.hpp"

namespace {

using namespace op2;

constexpr int kNodes = 257;
constexpr int kEdges = kNodes - 1;
constexpr int kDats = 4;

struct random_program {
  // One step: which dat is read, which is written, how.
  struct step {
    int src;        // dat index read (node dat)
    int dst;        // dat index written
    int kind;       // 0: direct copy+1, 1: direct add, 2: edge scatter,
                    // 3: edge gather-diff
  };
  std::vector<step> steps;
};

random_program make_program(unsigned seed, int length) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dat_pick(0, kDats - 1);
  std::uniform_int_distribution<int> kind_pick(0, 3);
  random_program prog;
  for (int i = 0; i < length; ++i) {
    random_program::step s;
    s.src = dat_pick(rng);
    do {
      s.dst = dat_pick(rng);
    } while (s.dst == s.src);
    s.kind = kind_pick(rng);
    prog.steps.push_back(s);
  }
  return prog;
}

struct world {
  op_set nodes, edges;
  op_map e2n;
  std::vector<op_dat> dats;  // int dats on nodes
};

world make_world() {
  world w;
  w.nodes = op_decl_set(kNodes, "nodes");
  w.edges = op_decl_set(kEdges, "edges");
  std::vector<int> table;
  for (int e = 0; e < kEdges; ++e) {
    table.push_back(e);
    table.push_back(e + 1);
  }
  w.e2n = op_decl_map(w.edges, w.nodes, 2, table, "e2n");
  for (int d = 0; d < kDats; ++d) {
    std::vector<int> init(kNodes);
    for (int n = 0; n < kNodes; ++n) {
      init[static_cast<std::size_t>(n)] = n * (d + 1) % 13;
    }
    w.dats.push_back(op_decl_dat<int>(w.nodes, 1, "int",
                                      std::span<const int>(init),
                                      "dat" + std::to_string(d)));
  }
  return w;
}

// The four loop kernels of the random program.
void k_copy(const int* a, int* b) { b[0] = a[0] + 1; }
void k_add(const int* a, int* b) { b[0] += a[0]; }
void k_scatter(const int* src_l, const int* src_r, int* dl, int* dr) {
  dl[0] += src_r[0];
  dr[0] += src_l[0];
}
void k_gather(const int* sl, const int* sr, int* dl, int* dr) {
  dl[0] += sl[0] - sr[0];
  dr[0] += sr[0] - sl[0];
}

/// Runs one step through the classic API (current backend).
void run_step_classic(world& w, const random_program::step& s) {
  auto& src = w.dats[static_cast<std::size_t>(s.src)];
  auto& dst = w.dats[static_cast<std::size_t>(s.dst)];
  switch (s.kind) {
    case 0:
      op_par_loop(k_copy, "copy", w.nodes,
                  op_arg_dat<int>(src, -1, OP_ID, 1, OP_READ),
                  op_arg_dat<int>(dst, -1, OP_ID, 1, OP_WRITE));
      return;
    case 1:
      op_par_loop(k_add, "add", w.nodes,
                  op_arg_dat<int>(src, -1, OP_ID, 1, OP_READ),
                  op_arg_dat<int>(dst, -1, OP_ID, 1, OP_RW));
      return;
    case 2:
      op_par_loop(k_scatter, "scatter", w.edges,
                  op_arg_dat<int>(src, 0, w.e2n, 1, OP_READ),
                  op_arg_dat<int>(src, 1, w.e2n, 1, OP_READ),
                  op_arg_dat<int>(dst, 0, w.e2n, 1, OP_INC),
                  op_arg_dat<int>(dst, 1, w.e2n, 1, OP_INC));
      return;
    default:
      op_par_loop(k_gather, "gather", w.edges,
                  op_arg_dat<int>(src, 0, w.e2n, 1, OP_READ),
                  op_arg_dat<int>(src, 1, w.e2n, 1, OP_READ),
                  op_arg_dat<int>(dst, 0, w.e2n, 1, OP_INC),
                  op_arg_dat<int>(dst, 1, w.e2n, 1, OP_INC));
      return;
  }
}

/// Runs one step through the modified (dataflow) API.
void run_step_dataflow(world& w, std::vector<op_dat_df>& handles,
                       const random_program::step& s) {
  auto& src = handles[static_cast<std::size_t>(s.src)];
  auto& dst = handles[static_cast<std::size_t>(s.dst)];
  switch (s.kind) {
    case 0:
      op_par_loop(k_copy, "copy", w.nodes,
                  op_arg_dat1<int>(src, -1, OP_ID, 1, OP_READ),
                  op_arg_dat1<int>(dst, -1, OP_ID, 1, OP_WRITE));
      return;
    case 1:
      op_par_loop(k_add, "add", w.nodes,
                  op_arg_dat1<int>(src, -1, OP_ID, 1, OP_READ),
                  op_arg_dat1<int>(dst, -1, OP_ID, 1, OP_RW));
      return;
    case 2:
      op_par_loop(k_scatter, "scatter", w.edges,
                  op_arg_dat1<int>(src, 0, w.e2n, 1, OP_READ),
                  op_arg_dat1<int>(src, 1, w.e2n, 1, OP_READ),
                  op_arg_dat1<int>(dst, 0, w.e2n, 1, OP_INC),
                  op_arg_dat1<int>(dst, 1, w.e2n, 1, OP_INC));
      return;
    default:
      op_par_loop(k_gather, "gather", w.edges,
                  op_arg_dat1<int>(src, 0, w.e2n, 1, OP_READ),
                  op_arg_dat1<int>(src, 1, w.e2n, 1, OP_READ),
                  op_arg_dat1<int>(dst, 0, w.e2n, 1, OP_INC),
                  op_arg_dat1<int>(dst, 1, w.e2n, 1, OP_INC));
      return;
  }
}

class RandomDataflowTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomDataflowTest, DataflowMatchesSequentialOracle) {
  const unsigned seed = GetParam();
  const auto prog = make_program(seed, 40);

  // Oracle: sequential backend, loop by loop.
  op2::init({backend::seq, 1, 16, 0});
  world oracle = make_world();
  for (const auto& s : prog.steps) {
    run_step_classic(oracle, s);
  }

  // Subject: dataflow API, everything launched up front, 4 threads.
  op2::init({backend::hpx_dataflow, 4, 16, 0});
  world subject = make_world();
  std::vector<op_dat_df> handles;
  handles.reserve(kDats);
  for (auto& d : subject.dats) {
    handles.emplace_back(d);
  }
  for (const auto& s : prog.steps) {
    run_step_dataflow(subject, handles, s);
  }
  for (auto& h : handles) {
    h.wait();
  }
  op2::finalize();

  for (int d = 0; d < kDats; ++d) {
    const auto expect = oracle.dats[static_cast<std::size_t>(d)].data<int>();
    const auto got = subject.dats[static_cast<std::size_t>(d)].data<int>();
    for (int n = 0; n < kNodes; ++n) {
      ASSERT_EQ(got[static_cast<std::size_t>(n)],
                expect[static_cast<std::size_t>(n)])
          << "seed " << seed << " dat " << d << " node " << n;
    }
  }
}

TEST_P(RandomDataflowTest, AsyncDriverMatchesSequentialOracle) {
  // Same program through op_par_loop_async with a full wait per loop
  // (the conservative correct placement) — validates the async path on
  // the identical workload.
  const unsigned seed = GetParam();
  const auto prog = make_program(seed, 25);

  op2::init({backend::seq, 1, 16, 0});
  world oracle = make_world();
  for (const auto& s : prog.steps) {
    run_step_classic(oracle, s);
  }

  op2::init({backend::hpx_async, 4, 16, 0});
  world subject = make_world();
  for (const auto& s : prog.steps) {
    run_step_classic(subject, s);  // classic entry waits per loop
  }
  op2::finalize();

  for (int d = 0; d < kDats; ++d) {
    const auto expect = oracle.dats[static_cast<std::size_t>(d)].data<int>();
    const auto got = subject.dats[static_cast<std::size_t>(d)].data<int>();
    for (int n = 0; n < kNodes; ++n) {
      ASSERT_EQ(got[static_cast<std::size_t>(n)],
                expect[static_cast<std::size_t>(n)])
          << "seed " << seed << " dat " << d << " node " << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDataflowTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

}  // namespace
