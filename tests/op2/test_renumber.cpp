#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

#include "op2/renumber.hpp"

namespace {

using namespace op2;

/// A chain of nedge edges over nedge+1 nodes, with the node identities
/// scrambled by a fixed pseudo-random permutation — RCM should undo the
/// scramble's bandwidth damage.
struct scrambled_chain {
  op_set edges, nodes;
  op_map e2n;
};

scrambled_chain make_scrambled_chain(int nedge, unsigned seed) {
  scrambled_chain m;
  m.edges = op_decl_set(nedge, "edges");
  m.nodes = op_decl_set(nedge + 1, "nodes");
  std::vector<int> label(static_cast<std::size_t>(nedge + 1));
  std::iota(label.begin(), label.end(), 0);
  std::mt19937 rng(seed);
  std::shuffle(label.begin(), label.end(), rng);
  std::vector<int> table;
  for (int e = 0; e < nedge; ++e) {
    table.push_back(label[static_cast<std::size_t>(e)]);
    table.push_back(label[static_cast<std::size_t>(e + 1)]);
  }
  m.e2n = op_decl_map(m.edges, m.nodes, 2, table, "e2n");
  return m;
}

TEST(Adjacency, ChainNeighbours) {
  const int nedge = 10;
  auto edges = op_decl_set(nedge, "edges");
  auto nodes = op_decl_set(nedge + 1, "nodes");
  std::vector<int> table;
  for (int e = 0; e < nedge; ++e) {
    table.push_back(e);
    table.push_back(e + 1);
  }
  auto e2n = op_decl_map(edges, nodes, 2, table, "e2n");
  const auto adj = adjacency_from_map(e2n);
  ASSERT_EQ(adj.size, nedge + 1);
  EXPECT_EQ(adj.neighbors[0], (std::vector<int>{1}));
  EXPECT_EQ(adj.neighbors[5], (std::vector<int>{4, 6}));
  EXPECT_EQ(adj.neighbors[10], (std::vector<int>{9}));
}

TEST(Adjacency, DeduplicatesAndDropsSelfLoops) {
  auto from = op_decl_set(3, "from");
  auto to = op_decl_set(2, "to");
  const std::vector<int> table{0, 1, 0, 1, 1, 1};  // repeated pair + self
  auto m = op_decl_map(from, to, 2, table, "m");
  const auto adj = adjacency_from_map(m);
  EXPECT_EQ(adj.neighbors[0], (std::vector<int>{1}));
  EXPECT_EQ(adj.neighbors[1], (std::vector<int>{0}));
}

TEST(Rcm, ProducesValidPermutation) {
  const auto m = make_scrambled_chain(200, 42);
  const auto perm = rcm_order(adjacency_from_map(m.e2n));
  EXPECT_EQ(perm.size(), 201u);
  EXPECT_TRUE(is_permutation(perm));
}

TEST(Rcm, RestoresChainBandwidthToOne) {
  // A chain has optimal bandwidth 1; RCM on a path graph achieves it.
  const auto m = make_scrambled_chain(300, 7);
  const int before = map_bandwidth(m.e2n);
  const auto perm = rcm_order(adjacency_from_map(m.e2n));
  const auto renumbered = renumber_map_targets(m.e2n, perm);
  const int after = map_bandwidth(renumbered);
  EXPECT_GT(before, 10);  // the scramble really did damage
  EXPECT_EQ(after, 1);
}

TEST(Rcm, HandlesDisconnectedComponents) {
  // Two disjoint chains in one map.
  auto edges = op_decl_set(4, "edges");
  auto nodes = op_decl_set(6, "nodes");
  const std::vector<int> table{0, 1, 1, 2, 3, 4, 4, 5};
  auto e2n = op_decl_map(edges, nodes, 2, table, "e2n");
  const auto perm = rcm_order(adjacency_from_map(e2n));
  EXPECT_TRUE(is_permutation(perm));
  EXPECT_LE(map_bandwidth(renumber_map_targets(e2n, perm)), 1);
}

TEST(Rcm, IsolatedVerticesIncluded) {
  adjacency adj;
  adj.size = 3;
  adj.neighbors = {{}, {}, {}};
  const auto perm = rcm_order(adj);
  EXPECT_EQ(perm.size(), 3u);
  EXPECT_TRUE(is_permutation(perm));
}

TEST(Permutation, IdentityAndValidation) {
  const auto id = identity_order(5);
  EXPECT_EQ(id, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(is_permutation(id));
  EXPECT_FALSE(is_permutation(std::vector<int>{0, 0, 1}));
  EXPECT_FALSE(is_permutation(std::vector<int>{0, 3, 1}));
  EXPECT_FALSE(is_permutation(std::vector<int>{-1, 0, 1}));
}

TEST(Permutation, PermuteDatMovesRows) {
  auto s = op_decl_set(3, "s");
  const std::vector<double> init{10, 11, 20, 21, 30, 31};
  auto d = op_decl_dat<double>(s, 2, "double",
                               std::span<const double>(init), "d");
  const std::vector<int> perm{2, 0, 1};  // element 0 -> slot 2, etc.
  auto p = permute_dat(d, perm);
  const auto v = p.data<double>();
  EXPECT_EQ(v[0], 20.0);  // old element 1
  EXPECT_EQ(v[2], 30.0);  // old element 2
  EXPECT_EQ(v[4], 10.0);  // old element 0
  EXPECT_EQ(v[5], 11.0);
}

TEST(Permutation, PermuteDatRejectsBadPerm) {
  auto s = op_decl_set(3, "s");
  auto d = op_decl_dat<double>(s, 1, "double", "d");
  EXPECT_THROW(permute_dat(d, std::vector<int>{0, 1}),
               std::invalid_argument);
  EXPECT_THROW(permute_dat(d, std::vector<int>{0, 0, 1}),
               std::invalid_argument);
}

TEST(Permutation, RenumberTargetsConsistentWithPermuteDat) {
  // Golden consistency: gather through (renumbered map, permuted dat)
  // equals gather through (original map, original dat).
  const auto m = make_scrambled_chain(50, 3);
  std::vector<double> vals(static_cast<std::size_t>(m.nodes.size()));
  std::iota(vals.begin(), vals.end(), 0.0);
  auto d = op_decl_dat<double>(m.nodes, 1, "double",
                               std::span<const double>(vals), "d");
  const auto perm = rcm_order(adjacency_from_map(m.e2n));
  const auto new_map = renumber_map_targets(m.e2n, perm);
  const auto new_dat = permute_dat(d, perm);
  const auto old_vals = d.data<double>();
  const auto new_vals = new_dat.data<double>();
  for (int e = 0; e < m.edges.size(); ++e) {
    for (int j = 0; j < 2; ++j) {
      EXPECT_EQ(new_vals[static_cast<std::size_t>(new_map.at(e, j))],
                old_vals[static_cast<std::size_t>(m.e2n.at(e, j))]);
    }
  }
}

TEST(Permutation, ReorderMapRows) {
  auto from = op_decl_set(3, "from");
  auto to = op_decl_set(5, "to");
  const std::vector<int> table{0, 1, 2, 3, 4, 0};
  auto m = op_decl_map(from, to, 2, table, "m");
  const std::vector<int> perm{1, 2, 0};  // row 0 moves to position 1
  auto r = reorder_map_rows(m, perm);
  EXPECT_EQ(r.at(1, 0), 0);
  EXPECT_EQ(r.at(1, 1), 1);
  EXPECT_EQ(r.at(2, 0), 2);
  EXPECT_EQ(r.at(0, 0), 4);
}

TEST(Permutation, OrderRowsByMinTargetSorts) {
  auto from = op_decl_set(3, "from");
  auto to = op_decl_set(10, "to");
  const std::vector<int> table{8, 9, 0, 1, 4, 5};
  auto m = op_decl_map(from, to, 2, table, "m");
  const auto perm = order_rows_by_min_target(m);
  // Row 1 (min target 0) should come first, then row 2, then row 0.
  EXPECT_EQ(perm, (std::vector<int>{2, 0, 1}));
  auto r = reorder_map_rows(m, perm);
  EXPECT_EQ(r.at(0, 0), 0);
  EXPECT_EQ(r.at(1, 0), 4);
  EXPECT_EQ(r.at(2, 0), 8);
}

TEST(Bandwidth, SingleColumnMapIsZero) {
  auto from = op_decl_set(4, "from");
  auto to = op_decl_set(4, "to");
  const std::vector<int> table{3, 1, 0, 2};
  auto m = op_decl_map(from, to, 1, table, "m");
  EXPECT_EQ(map_bandwidth(m), 0);
}

}  // namespace
