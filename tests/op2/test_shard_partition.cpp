// Shard decomposition: RCB determinism (the invariant partition.hpp
// documents) and the owner/halo/import/export structure
// build_halo_partition guarantees.  These layouts seed every sharded
// run, golden test and tuner-cache key, so they are pinned hard here.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "airfoil/airfoil.hpp"
#include "op2/op2.hpp"
#include "op2/partition.hpp"
#include "op2/shard.hpp"

namespace {

using op2::build_halo_partition;
using op2::op_decl_map;
using op2::op_decl_set;
using op2::partition_rcb;
using op2::partitioning;

// --- RCB determinism --------------------------------------------------

TEST(RcbDeterminism, SameInputSameAssignment) {
  std::vector<double> xy;
  for (int i = 0; i < 64; ++i) {
    xy.push_back(static_cast<double>(i % 8));
    xy.push_back(static_cast<double>(i / 8));
  }
  const auto a = partition_rcb(xy, 5);
  const auto b = partition_rcb(xy, 5);
  EXPECT_EQ(a.part_of, b.part_of);
}

TEST(RcbDeterminism, EqualCoordinatesTieBreakByElementId) {
  // Four coincident points: nth_element alone could split them any
  // way; the (coordinate, id) comparator makes the split the unique
  // lexicographic-median one — low ids left, high ids right.
  const std::vector<double> xy = {1.0, 1.0, 1.0, 1.0,
                                  1.0, 1.0, 1.0, 1.0};
  const auto p = partition_rcb(xy, 2);
  EXPECT_EQ(p.part_of, (std::vector<int>{0, 0, 1, 1}));
}

TEST(RcbDeterminism, DuplicateHeavyInputIsStillDeterministic) {
  // Many duplicates across a grid with only two distinct x values per
  // axis stripe — the degenerate case where implementation-defined
  // nth_element tie handling would diverge across platforms.
  std::vector<double> xy;
  for (int i = 0; i < 96; ++i) {
    xy.push_back(static_cast<double>((i / 3) % 2));
    xy.push_back(static_cast<double>(i % 3 == 0 ? 0 : 1));
  }
  const auto a = partition_rcb(xy, 6);
  const auto b = partition_rcb(xy, 6);
  EXPECT_EQ(a.part_of, b.part_of);
  // Balanced to within one element per split.
  EXPECT_LE(op2::imbalance(a), 1.25);
}

// --- halo partition structure ----------------------------------------

/// A 12-cell ring with an adjacency map (i, i+1 mod 12), partitioned
/// into three contiguous blocks — halos and links are known by hand.
struct ring_fixture {
  op2::op_set cells = op_decl_set(12, "cells");
  op2::op_set edges = op_decl_set(12, "edges");
  op2::op_map adj;
  partitioning parts;

  ring_fixture() {
    std::vector<int> table;
    for (int i = 0; i < 12; ++i) {
      table.push_back(i);
      table.push_back((i + 1) % 12);
    }
    adj = op_decl_map(edges, cells, 2, table, "adj");
    parts.nparts = 3;
    parts.part_of = {0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2};
  }
};

TEST(HaloPartition, RingDepthOneHalosAreTheBlockNeighbours) {
  ring_fixture f;
  const auto hp = build_halo_partition(f.parts, f.adj, 1);
  ASSERT_EQ(hp.nshards, 3);
  ASSERT_EQ(hp.shards.size(), 3u);
  EXPECT_EQ(hp.shards[0].owned, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(hp.shards[0].halo, (std::vector<int>{4, 11}));
  EXPECT_EQ(hp.shards[1].halo, (std::vector<int>{3, 8}));
  EXPECT_EQ(hp.shards[2].halo, (std::vector<int>{0, 7}));
}

TEST(HaloPartition, RingDepthTwoExpandsOneMoreHop) {
  ring_fixture f;
  const auto hp = build_halo_partition(f.parts, f.adj, 2);
  EXPECT_EQ(hp.shards[0].halo, (std::vector<int>{4, 5, 10, 11}));
  EXPECT_EQ(hp.halo_depth, 2);
}

TEST(HaloPartition, LocalNumberingIsOwnedFirstAndInvertible) {
  ring_fixture f;
  const auto hp = build_halo_partition(f.parts, f.adj, 1);
  for (const auto& sp : hp.shards) {
    for (int l = 0; l < sp.local_count(); ++l) {
      const int g = sp.global_of(l);
      EXPECT_EQ(sp.local_of[static_cast<std::size_t>(g)], l);
    }
    // Absent elements map to -1.
    for (int g = 0; g < 12; ++g) {
      const int l = sp.local_of[static_cast<std::size_t>(g)];
      if (l < 0) {
        continue;
      }
      EXPECT_EQ(sp.global_of(l), g);
    }
  }
}

TEST(HaloPartition, ImportExportLinksMirrorEachOther) {
  ring_fixture f;
  const auto hp = build_halo_partition(f.parts, f.adj, 1);
  for (int s = 0; s < hp.nshards; ++s) {
    const auto& sp = hp.shards[static_cast<std::size_t>(s)];
    // Imports cover the halo exactly, grouped by owner, ascending.
    std::set<int> from_imports;
    for (const auto& link : sp.imports) {
      for (const int g : link.elements) {
        EXPECT_EQ(f.parts.part_of[static_cast<std::size_t>(g)], link.peer);
        from_imports.insert(g);
      }
      EXPECT_TRUE(std::is_sorted(link.elements.begin(),
                                 link.elements.end()));
    }
    EXPECT_EQ(from_imports,
              std::set<int>(sp.halo.begin(), sp.halo.end()));
    // Every import link has a matching export link on the peer with
    // the SAME elements in the SAME order (the wire carries no ids).
    for (const auto& link : sp.imports) {
      const auto& peer = hp.shards[static_cast<std::size_t>(link.peer)];
      bool found = false;
      for (const auto& exp : peer.exports) {
        if (exp.peer == s) {
          EXPECT_EQ(exp.elements, link.elements);
          found = true;
        }
      }
      EXPECT_TRUE(found) << "shard " << s << " import from " << link.peer;
    }
  }
}

TEST(HaloPartition, AirfoilMeshDecompositionIsDeterministicAndCovering) {
  const auto mesh = airfoil::generate_mesh({16, 8});
  const auto& pcell = mesh.map("pcell");
  const auto& pecell = mesh.map("pecell");
  const auto x = mesh.dat("p_x").data<double>();
  const int ncell = mesh.set("cells").size();
  std::vector<double> centroids(static_cast<std::size_t>(ncell) * 2, 0.0);
  for (int c = 0; c < ncell; ++c) {
    for (int k = 0; k < 4; ++k) {
      const auto n = static_cast<std::size_t>(pcell.at(c, k));
      centroids[static_cast<std::size_t>(2 * c)] += 0.25 * x[2 * n];
      centroids[static_cast<std::size_t>(2 * c + 1)] += 0.25 * x[2 * n + 1];
    }
  }
  const auto parts = partition_rcb(centroids, 4);
  const auto hp = build_halo_partition(parts, pecell, 1);
  const auto hp2 = build_halo_partition(parts, pecell, 1);

  std::vector<int> owner_count(static_cast<std::size_t>(ncell), 0);
  for (int s = 0; s < hp.nshards; ++s) {
    const auto& sp = hp.shards[static_cast<std::size_t>(s)];
    EXPECT_TRUE(std::is_sorted(sp.owned.begin(), sp.owned.end()));
    EXPECT_TRUE(std::is_sorted(sp.halo.begin(), sp.halo.end()));
    for (const int g : sp.owned) {
      owner_count[static_cast<std::size_t>(g)] += 1;
    }
    // Halo is disjoint from owned and exactly the depth-1 neighbour
    // region: every foreign cell sharing a pecell row with an owned
    // cell, nothing more.
    std::set<int> expected;
    for (int e = 0; e < pecell.from().size(); ++e) {
      const int a = pecell.at(e, 0);
      const int b = pecell.at(e, 1);
      const bool oa = parts.part_of[static_cast<std::size_t>(a)] == s;
      const bool ob = parts.part_of[static_cast<std::size_t>(b)] == s;
      if (oa && !ob) {
        expected.insert(b);
      }
      if (ob && !oa) {
        expected.insert(a);
      }
    }
    EXPECT_EQ(std::set<int>(sp.halo.begin(), sp.halo.end()), expected)
        << "shard " << s;
    // Deterministic rebuild.
    EXPECT_EQ(sp.owned, hp2.shards[static_cast<std::size_t>(s)].owned);
    EXPECT_EQ(sp.halo, hp2.shards[static_cast<std::size_t>(s)].halo);
  }
  for (int c = 0; c < ncell; ++c) {
    EXPECT_EQ(owner_count[static_cast<std::size_t>(c)], 1) << "cell " << c;
  }
}

TEST(HaloPartition, RejectsBadArguments) {
  ring_fixture f;
  EXPECT_THROW(build_halo_partition(f.parts, f.adj, 0),
               std::invalid_argument);
  partitioning wrong;
  wrong.nparts = 2;
  wrong.part_of = {0, 1};  // does not cover the 12-cell target set
  EXPECT_THROW(build_halo_partition(wrong, f.adj, 1),
               std::invalid_argument);
}

}  // namespace
