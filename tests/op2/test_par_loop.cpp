// op_par_loop behaviour across every backend, parameterised so each
// test runs under seq, forkjoin, hpx_foreach, hpx_async and
// hpx_dataflow with multiple thread counts.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <string>
#include <vector>

#include "op2/op2.hpp"

namespace {

using namespace op2;

struct backend_param {
  backend bk;
  unsigned threads;
};

std::string param_name(const ::testing::TestParamInfo<backend_param>& info) {
  return std::string(to_string(info.param.bk)) + "_t" +
         std::to_string(info.param.threads);
}

class ParLoopTest : public ::testing::TestWithParam<backend_param> {
 protected:
  void SetUp() override {
    const auto p = GetParam();
    op2::init({p.bk, p.threads, 16, 0});
  }
  void TearDown() override { op2::finalize(); }
};

// Kernels used by the tests (OP2 style: pointer per argument).
void copy_kernel(const double* in, double* out) { out[0] = in[0]; }
void scale2_kernel(const double* in, double* out) { out[0] = 2.0 * in[0]; }

TEST_P(ParLoopTest, DirectCopy) {
  auto s = op_decl_set(1000, "s");
  std::vector<double> init(1000);
  std::iota(init.begin(), init.end(), 1.0);
  auto a = op_decl_dat<double>(s, 1, "double",
                               std::span<const double>(init), "a");
  auto b = op_decl_dat<double>(s, 1, "double", "b");
  op_par_loop(copy_kernel, "copy", s,
              op_arg_dat<double>(a, -1, OP_ID, 1, OP_READ),
              op_arg_dat<double>(b, -1, OP_ID, 1, OP_WRITE));
  auto bv = b.data<double>();
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(bv[static_cast<std::size_t>(i)], init[static_cast<std::size_t>(i)]);
  }
}

TEST_P(ParLoopTest, DirectMultiComponent) {
  auto s = op_decl_set(321, "s");
  auto a = op_decl_dat<double>(s, 4, "double", "a");
  {
    auto av = a.data<double>();
    for (std::size_t i = 0; i < av.size(); ++i) {
      av[i] = static_cast<double>(i);
    }
  }
  auto b = op_decl_dat<double>(s, 4, "double", "b");
  op_par_loop([](const double* q, double* qold) {
                for (int n = 0; n < 4; ++n) {
                  qold[n] = q[n];
                }
              },
              "save_soln", s, op_arg_dat<double>(a, -1, OP_ID, 4, OP_READ),
              op_arg_dat<double>(b, -1, OP_ID, 4, OP_WRITE));
  auto av = a.data<double>();
  auto bv = b.data<double>();
  for (std::size_t i = 0; i < av.size(); ++i) {
    ASSERT_EQ(bv[i], av[i]);
  }
}

TEST_P(ParLoopTest, IndirectRead) {
  // Gather: cell value = sum of its two node values.
  const int ncell = 500;
  auto cells = op_decl_set(ncell, "cells");
  auto nodes = op_decl_set(ncell + 1, "nodes");
  std::vector<int> table;
  for (int c = 0; c < ncell; ++c) {
    table.push_back(c);
    table.push_back(c + 1);
  }
  auto c2n = op_decl_map(cells, nodes, 2, table, "c2n");
  std::vector<double> nval(static_cast<std::size_t>(ncell + 1));
  std::iota(nval.begin(), nval.end(), 0.0);
  auto xn = op_decl_dat<double>(nodes, 1, "double",
                                std::span<const double>(nval), "xn");
  auto out = op_decl_dat<double>(cells, 1, "double", "out");
  op_par_loop([](const double* n0, const double* n1, double* o) {
                o[0] = n0[0] + n1[0];
              },
              "gather", cells, op_arg_dat<double>(xn, 0, c2n, 1, OP_READ),
              op_arg_dat<double>(xn, 1, c2n, 1, OP_READ),
              op_arg_dat<double>(out, -1, OP_ID, 1, OP_WRITE));
  auto ov = out.data<double>();
  for (int c = 0; c < ncell; ++c) {
    ASSERT_EQ(ov[static_cast<std::size_t>(c)], 2.0 * c + 1.0);
  }
}

TEST_P(ParLoopTest, IndirectIncrementChain) {
  // Scatter-add over a chain: node degree accumulates 1 per incident
  // edge; interior nodes end at 2, boundary nodes at 1.
  const int nedge = 777;
  auto edges = op_decl_set(nedge, "edges");
  auto nodes = op_decl_set(nedge + 1, "nodes");
  std::vector<int> table;
  for (int e = 0; e < nedge; ++e) {
    table.push_back(e);
    table.push_back(e + 1);
  }
  auto e2n = op_decl_map(edges, nodes, 2, table, "e2n");
  auto degree = op_decl_dat<double>(nodes, 1, "double", "degree");
  op_par_loop([](double* a, double* b) {
                a[0] += 1.0;
                b[0] += 1.0;
              },
              "count", edges, op_arg_dat<double>(degree, 0, e2n, 1, OP_INC),
              op_arg_dat<double>(degree, 1, e2n, 1, OP_INC));
  auto dv = degree.data<double>();
  EXPECT_EQ(dv[0], 1.0);
  EXPECT_EQ(dv[static_cast<std::size_t>(nedge)], 1.0);
  for (int n = 1; n < nedge; ++n) {
    ASSERT_EQ(dv[static_cast<std::size_t>(n)], 2.0) << "node " << n;
  }
}

TEST_P(ParLoopTest, GlobalReductionSum) {
  auto s = op_decl_set(2048, "s");
  std::vector<double> init(2048, 0.5);
  auto a = op_decl_dat<double>(s, 1, "double",
                               std::span<const double>(init), "a");
  double total = 0.0;
  op_par_loop([](const double* v, double* acc) { acc[0] += v[0]; }, "sum", s,
              op_arg_dat<double>(a, -1, OP_ID, 1, OP_READ),
              op_arg_gbl<double>(&total, 1, OP_INC));
  EXPECT_DOUBLE_EQ(total, 1024.0);
}

TEST_P(ParLoopTest, GlobalReadBroadcast) {
  auto s = op_decl_set(100, "s");
  auto a = op_decl_dat<double>(s, 1, "double", "a");
  double factor = 4.0;
  op_par_loop([](double* v, const double* f) { v[0] = f[0]; }, "bcast", s,
              op_arg_dat<double>(a, -1, OP_ID, 1, OP_WRITE),
              op_arg_gbl<double>(&factor, 1, OP_READ));
  for (const double v : a.data<double>()) {
    ASSERT_EQ(v, 4.0);
  }
}

TEST_P(ParLoopTest, MultiDimGlobalReduction) {
  auto s = op_decl_set(600, "s");
  auto a = op_decl_dat<double>(s, 2, "double", "a");
  {
    auto av = a.data<double>();
    for (int i = 0; i < 600; ++i) {
      av[static_cast<std::size_t>(2 * i)] = 1.0;
      av[static_cast<std::size_t>(2 * i + 1)] = 2.0;
    }
  }
  double acc[2] = {0.0, 0.0};
  op_par_loop([](const double* v, double* g) {
                g[0] += v[0];
                g[1] += v[1];
              },
              "sum2", s, op_arg_dat<double>(a, -1, OP_ID, 2, OP_READ),
              op_arg_gbl<double>(acc, 2, OP_INC));
  EXPECT_DOUBLE_EQ(acc[0], 600.0);
  EXPECT_DOUBLE_EQ(acc[1], 1200.0);
}

TEST_P(ParLoopTest, EmptySetIsNoop) {
  auto s = op_decl_set(0, "empty");
  auto a = op_decl_dat<double>(s, 1, "double", "a");
  double total = 0.0;
  op_par_loop([](const double* v, double* acc) { acc[0] += v[0]; }, "sum", s,
              op_arg_dat<double>(a, -1, OP_ID, 1, OP_READ),
              op_arg_gbl<double>(&total, 1, OP_INC));
  EXPECT_EQ(total, 0.0);
}

TEST_P(ParLoopTest, RwAccessReadsAndWrites) {
  auto s = op_decl_set(256, "s");
  std::vector<double> init(256, 3.0);
  auto a = op_decl_dat<double>(s, 1, "double",
                               std::span<const double>(init), "a");
  op_par_loop([](double* v) { v[0] = v[0] * v[0]; }, "square", s,
              op_arg_dat<double>(a, -1, OP_ID, 1, OP_RW));
  for (const double v : a.data<double>()) {
    ASSERT_EQ(v, 9.0);
  }
}

TEST_P(ParLoopTest, SequentialLoopDependencyChain) {
  // Two loops where the second consumes the first's output — the
  // backend must order them correctly even when asynchronous.
  auto s = op_decl_set(400, "s");
  std::vector<double> init(400, 1.0);
  auto a = op_decl_dat<double>(s, 1, "double",
                               std::span<const double>(init), "a");
  auto b = op_decl_dat<double>(s, 1, "double", "b");
  auto c = op_decl_dat<double>(s, 1, "double", "c");
  op_par_loop(scale2_kernel, "x2", s,
              op_arg_dat<double>(a, -1, OP_ID, 1, OP_READ),
              op_arg_dat<double>(b, -1, OP_ID, 1, OP_WRITE));
  op_par_loop(scale2_kernel, "x2", s,
              op_arg_dat<double>(b, -1, OP_ID, 1, OP_READ),
              op_arg_dat<double>(c, -1, OP_ID, 1, OP_WRITE));
  for (const double v : c.data<double>()) {
    ASSERT_EQ(v, 4.0);
  }
}

TEST_P(ParLoopTest, WrongIterationSetRejected) {
  auto s = op_decl_set(10, "s");
  auto t = op_decl_set(10, "t");
  auto a = op_decl_dat<double>(t, 1, "double", "a");
  EXPECT_THROW(op_par_loop(copy_kernel, "bad", s,
                           op_arg_dat<double>(a, -1, OP_ID, 1, OP_READ),
                           op_arg_dat<double>(a, -1, OP_ID, 1, OP_WRITE)),
               std::invalid_argument);
}

TEST_P(ParLoopTest, MapFromWrongSetRejected) {
  auto s = op_decl_set(10, "s");
  auto t = op_decl_set(10, "t");
  auto u = op_decl_set(10, "u");
  std::vector<int> table(10, 0);
  auto m = op_decl_map(t, u, 1, table, "m");  // from t, not s
  auto a = op_decl_dat<double>(u, 1, "double", "a");
  auto out = op_decl_dat<double>(s, 1, "double", "out");
  EXPECT_THROW(op_par_loop(copy_kernel, "bad", s,
                           op_arg_dat<double>(a, 0, m, 1, OP_READ),
                           op_arg_dat<double>(out, -1, OP_ID, 1, OP_WRITE)),
               std::invalid_argument);
}

TEST_P(ParLoopTest, AsyncVariantCompletesOnGet) {
  auto s = op_decl_set(512, "s");
  std::vector<double> init(512, 5.0);
  auto a = op_decl_dat<double>(s, 1, "double",
                               std::span<const double>(init), "a");
  auto b = op_decl_dat<double>(s, 1, "double", "b");
  auto f = op_par_loop_async(scale2_kernel, "x2", s,
                             op_arg_dat<double>(a, -1, OP_ID, 1, OP_READ),
                             op_arg_dat<double>(b, -1, OP_ID, 1, OP_WRITE));
  f.get();
  for (const double v : b.data<double>()) {
    ASSERT_EQ(v, 10.0);
  }
}

TEST_P(ParLoopTest, AsyncIndirectIncrement) {
  const int nedge = 300;
  auto edges = op_decl_set(nedge, "edges");
  auto nodes = op_decl_set(nedge + 1, "nodes");
  std::vector<int> table;
  for (int e = 0; e < nedge; ++e) {
    table.push_back(e);
    table.push_back(e + 1);
  }
  auto e2n = op_decl_map(edges, nodes, 2, table, "e2n");
  auto degree = op_decl_dat<double>(nodes, 1, "double", "degree");
  auto f = op_par_loop_async(
      [](double* a, double* b) {
        a[0] += 1.0;
        b[0] += 1.0;
      },
      "count", edges, op_arg_dat<double>(degree, 0, e2n, 1, OP_INC),
      op_arg_dat<double>(degree, 1, e2n, 1, OP_INC));
  f.get();
  auto dv = degree.data<double>();
  for (int n = 1; n < nedge; ++n) {
    ASSERT_EQ(dv[static_cast<std::size_t>(n)], 2.0);
  }
}

TEST_P(ParLoopTest, GlobalMinReduction) {
  auto s = op_decl_set(777, "s");
  auto a = op_decl_dat<double>(s, 1, "double", "a");
  {
    auto av = a.data<double>();
    for (int i = 0; i < 777; ++i) {
      av[static_cast<std::size_t>(i)] = 100.0 + i;
    }
    av[400] = -5.5;  // the global minimum, mid-set
  }
  double lowest = 1e300;
  op_par_loop([](const double* v, double* m) {
                if (v[0] < m[0]) {
                  m[0] = v[0];
                }
              },
              "min", s, op_arg_dat<double>(a, -1, OP_ID, 1, OP_READ),
              op_arg_gbl<double>(&lowest, 1, OP_MIN));
  EXPECT_DOUBLE_EQ(lowest, -5.5);
}

TEST_P(ParLoopTest, GlobalMaxReduction) {
  auto s = op_decl_set(555, "s");
  auto a = op_decl_dat<double>(s, 1, "double", "a");
  {
    auto av = a.data<double>();
    for (int i = 0; i < 555; ++i) {
      av[static_cast<std::size_t>(i)] = -static_cast<double>(i);
    }
    av[123] = 42.0;
  }
  double highest = -1e300;
  op_par_loop([](const double* v, double* m) {
                if (v[0] > m[0]) {
                  m[0] = v[0];
                }
              },
              "max", s, op_arg_dat<double>(a, -1, OP_ID, 1, OP_READ),
              op_arg_gbl<double>(&highest, 1, OP_MAX));
  EXPECT_DOUBLE_EQ(highest, 42.0);
}

TEST_P(ParLoopTest, MinAndMaxRespectPriorValue) {
  // The reduction combines with the caller's existing value, like
  // OP_INC does: a tighter prior bound survives.
  auto s = op_decl_set(64, "s");
  std::vector<double> init(64, 10.0);
  auto a = op_decl_dat<double>(s, 1, "double",
                               std::span<const double>(init), "a");
  double lo = 3.0;   // tighter than any element
  double hi = 99.0;  // higher than any element
  op_par_loop([](const double* v, double* m) {
                if (v[0] < m[0]) {
                  m[0] = v[0];
                }
              },
              "min", s, op_arg_dat<double>(a, -1, OP_ID, 1, OP_READ),
              op_arg_gbl<double>(&lo, 1, OP_MIN));
  op_par_loop([](const double* v, double* m) {
                if (v[0] > m[0]) {
                  m[0] = v[0];
                }
              },
              "max", s, op_arg_dat<double>(a, -1, OP_ID, 1, OP_READ),
              op_arg_gbl<double>(&hi, 1, OP_MAX));
  EXPECT_DOUBLE_EQ(lo, 3.0);
  EXPECT_DOUBLE_EQ(hi, 99.0);
}

TEST_P(ParLoopTest, IntMinMaxReduction) {
  auto s = op_decl_set(200, "s");
  auto a = op_decl_dat<int>(s, 1, "int", "a");
  {
    auto av = a.data<int>();
    for (int i = 0; i < 200; ++i) {
      av[static_cast<std::size_t>(i)] = (i * 37) % 199;
    }
  }
  int lo = 1 << 30;
  int hi = -(1 << 30);
  op_par_loop([](const int* v, int* mn, int* mx) {
                if (v[0] < mn[0]) {
                  mn[0] = v[0];
                }
                if (v[0] > mx[0]) {
                  mx[0] = v[0];
                }
              },
              "minmax", s, op_arg_dat<int>(a, -1, OP_ID, 1, OP_READ),
              op_arg_gbl<int>(&lo, 1, OP_MIN),
              op_arg_gbl<int>(&hi, 1, OP_MAX));
  EXPECT_EQ(lo, 0);
  EXPECT_EQ(hi, 198);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, ParLoopTest,
    ::testing::Values(backend_param{backend::seq, 1},
                      backend_param{backend::forkjoin, 1},
                      backend_param{backend::forkjoin, 4},
                      backend_param{backend::hpx_foreach, 1},
                      backend_param{backend::hpx_foreach, 4},
                      backend_param{backend::hpx_async, 4},
                      backend_param{backend::hpx_dataflow, 4}),
    param_name);

// Backend-independent checks of loop-time validation.
TEST(ParLoopValidation, MinMaxOnDatArgsRejected) {
  op2::init({backend::seq, 1, 16, 0});
  auto s = op_decl_set(4, "s");
  auto a = op_decl_dat<double>(s, 1, "double", "a");
  EXPECT_THROW(op_arg_dat<double>(a, -1, OP_ID, 1, OP_MIN),
               std::invalid_argument);
  EXPECT_THROW(op_arg_dat<double>(a, -1, OP_ID, 1, OP_MAX),
               std::invalid_argument);
  double g = 0.0;
  EXPECT_THROW(op_arg_gbl<double>(&g, 1, OP_WRITE), std::invalid_argument);
  EXPECT_NO_THROW(op_arg_gbl<double>(&g, 1, OP_MIN));
  EXPECT_NO_THROW(op_arg_gbl<double>(&g, 1, OP_MAX));
  op2::finalize();
}

TEST(ParLoopValidation, ThrowingKernelPropagatesAcrossBackends) {
  // Failure injection: a kernel that throws mid-loop must surface the
  // exception at the op_par_loop call on every backend.
  for (const auto bk : {backend::seq, backend::forkjoin,
                        backend::hpx_foreach}) {
    op2::init({bk, 3, 8, 0});
    auto s = op_decl_set(200, "s");
    auto a = op_decl_dat<double>(s, 1, "double", "a");
    EXPECT_THROW(
        op_par_loop(
            [](double* v) {
              if (v == nullptr) {
                return;
              }
              throw std::runtime_error("kernel failure");
            },
            "boom", s, op_arg_dat<double>(a, -1, OP_ID, 1, OP_RW)),
        std::runtime_error)
        << to_string(bk);
    // The backend survives for the next loop.
    EXPECT_NO_THROW(op_par_loop([](double* v) { v[0] = 1.0; }, "ok", s,
                                op_arg_dat<double>(a, -1, OP_ID, 1,
                                                   OP_WRITE)));
    op2::finalize();
  }
}

TEST(ParLoopValidation, ThrowingKernelPropagatesThroughAsyncFuture) {
  op2::init({backend::hpx_async, 2, 8, 0});
  auto s = op_decl_set(100, "s");
  auto a = op_decl_dat<double>(s, 1, "double", "a");
  auto f = op_par_loop_async(
      [](double* v) {
        (void)v;
        throw std::logic_error("async kernel failure");
      },
      "boom", s, op_arg_dat<double>(a, -1, OP_ID, 1, OP_RW));
  EXPECT_THROW(f.get(), std::logic_error);
  op2::finalize();
}

TEST(ParLoopValidation, InvalidSetRejected) {
  op2::init({backend::seq, 1, 16, 0});
  op_set none;
  auto s = op_decl_set(4, "s");
  auto a = op_decl_dat<double>(s, 1, "double", "a");
  EXPECT_THROW(
      op_par_loop([](const double*) {}, "bad", none,
                  op_arg_dat<double>(a, -1, OP_ID, 1, OP_READ)),
      std::invalid_argument);
  op2::finalize();
}

}  // namespace
