// Prepared-loop pipeline: capture-once/replay-many launch descriptors.
//
// Covers the lifecycle contract:
//   - the first invocation at a call site captures, repeats replay
//     (observed through the profiling captures/replays counters);
//   - a resized dat, a resized set, a changed block_size and a changed
//     static_chunk each force a re-capture;
//   - OP2_PREPARED / config::prepared_loops force the one-shot path
//     (the control arm), and loop_handle::invalidate drops a descriptor;
//   - globals are rebound per replay (results land in the caller's
//     current pointer, not the captured one);
//   - backend x loop equivalence matrix: replayed results match the
//     one-shot path under every registered backend, for the classic,
//     async and dataflow APIs;
//   - two concurrently replaying reduction loops don't corrupt each
//     other's accumulators (the per-loop/per-worker slot design that
//     replaced the global reduction lock);
//   - two loops finalising concurrently into the SAME global — two
//     distinct loops sharing one accumulator, and an async replay
//     overlapping its own call site (replay + one-shot fallback) —
//     lose no updates (the serialised final combine).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "op2/op2.hpp"

namespace {

using namespace op2;

// OP2-style kernels (pointer per argument).
void scale_add(const double* in, double* out, double* acc) {
  out[0] = 2.0 * in[0] + 1.0;
  acc[0] += out[0] * out[0];
}

void edge_gather(const double* a, const double* b, double* out) {
  out[0] += 0.25 * (a[0] + b[0]);
}

void sum_to(const double* x, double* acc) { acc[0] += x[0]; }

void sum_sq(const double* x, double* acc) { acc[0] += x[0] * x[0]; }

void count_one(double* acc) { acc[0] += 1.0; }

// Wide reduction with a rendezvous: each kernel invocation waits (with
// a deadline, so an under-provisioned pool degrades instead of
// hanging) until all loops of the round have started, so the loops
// complete — and finalise into the shared global — at the same moment.
// The wide combine gives concurrent finalises a real window to collide
// in; without the serialised final combine this loses updates within a
// few rounds.
constexpr int kWideDim = 256;
constexpr int kShareLoops = 4;  // == worker count: all can spin at once
std::atomic<int> rendezvous_started{0};

void sum_wide_rendezvous(const double* x, double* acc) {
  rendezvous_started.fetch_add(1, std::memory_order_acq_rel);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(1);
  while (rendezvous_started.load(std::memory_order_acquire) < kShareLoops &&
         std::chrono::steady_clock::now() < deadline) {
  }
  for (int j = 0; j < kWideDim; ++j) {
    acc[j] += x[0];
  }
}

struct ring_mesh {
  op_set cells;
  op_set edges;
  op_map pedge;
  op_dat p_x;
  op_dat p_y;
  op_dat p_e;
};

ring_mesh make_ring(int n) {
  ring_mesh m;
  m.cells = op_decl_set(n, "cells");
  m.edges = op_decl_set(n, "edges");
  std::vector<int> e2c(static_cast<std::size_t>(n) * 2);
  for (int i = 0; i < n; ++i) {
    e2c[static_cast<std::size_t>(2 * i)] = i;
    e2c[static_cast<std::size_t>(2 * i) + 1] = (i + 1) % n;
  }
  m.pedge = op_decl_map(m.edges, m.cells, 2, std::span<const int>(e2c),
                        "pedge");
  std::vector<double> x(static_cast<std::size_t>(n));
  std::iota(x.begin(), x.end(), 1.0);
  m.p_x = op_decl_dat<double>(m.cells, 1, "double",
                              std::span<const double>(x), "p_x");
  m.p_y = op_decl_dat<double>(m.cells, 1, "double", "p_y");
  m.p_e = op_decl_dat<double>(m.edges, 1, "double", "p_e");
  return m;
}

loop_profile profile_of(const std::string& name) {
  auto snap = profiling::snapshot();
  const auto it = snap.find(name);
  return it == snap.end() ? loop_profile{} : it->second;
}

// ---------------------------------------------------------------------
// Counter-level lifecycle: capture once, replay many.
// ---------------------------------------------------------------------

class PreparedLoopTest : public ::testing::Test {
 protected:
  void SetUp() override {
    op2::init(make_config("seq", 1, 16));
    profiling::reset();
    profiling::enable(true);
  }
  void TearDown() override {
    profiling::enable(false);
    profiling::reset();
    op2::finalize();
  }
};

TEST_F(PreparedLoopTest, CaptureOnceThenReplay) {
  auto m = make_ring(64);
  loop_handle h;
  double acc = 0.0;
  for (int i = 0; i < 5; ++i) {
    op_par_loop(h, scale_add, "pl_basic", m.cells,
                op_arg_dat<double>(m.p_x, -1, OP_ID, 1, OP_READ),
                op_arg_dat<double>(m.p_y, -1, OP_ID, 1, OP_WRITE),
                op_arg_gbl<double>(&acc, 1, OP_INC));
  }
  const auto p = profile_of("pl_basic");
  EXPECT_EQ(p.captures, 1u);
  EXPECT_EQ(p.replays, 4u);
  EXPECT_EQ(p.invocations, 5u);
}

TEST_F(PreparedLoopTest, ResizedDatForcesRecapture) {
  auto m = make_ring(64);
  loop_handle h;
  double acc = 0.0;
  auto run = [&] {
    op_par_loop(h, scale_add, "pl_dat_resize", m.cells,
                op_arg_dat<double>(m.p_x, -1, OP_ID, 1, OP_READ),
                op_arg_dat<double>(m.p_y, -1, OP_ID, 1, OP_WRITE),
                op_arg_gbl<double>(&acc, 1, OP_INC));
  };
  run();
  run();
  EXPECT_EQ(profile_of("pl_dat_resize").captures, 1u);
  // Refit (even to the same size) bumps the dat version: the storage
  // may have moved, so the cached raw views are stale.
  m.p_y.resize();
  run();
  EXPECT_EQ(profile_of("pl_dat_resize").captures, 2u);
  EXPECT_EQ(profile_of("pl_dat_resize").replays, 1u);
}

TEST_F(PreparedLoopTest, ResizedSetForcesRecaptureAndCoversNewElements) {
  auto cells = op_decl_set(32, "cells");
  std::vector<double> x(32, 1.0);
  auto p_x = op_decl_dat<double>(cells, 1, "double",
                                 std::span<const double>(x), "p_x");
  loop_handle h;
  double total = 0.0;
  auto run = [&] {
    op_par_loop(h, sum_to, "pl_set_resize", cells,
                op_arg_dat<double>(p_x, -1, OP_ID, 1, OP_READ),
                op_arg_gbl<double>(&total, 1, OP_INC));
  };
  run();
  EXPECT_EQ(total, 32.0);

  cells.resize(48);
  p_x.resize();  // grown elements zero-initialised
  for (auto& v : p_x.data<double>()) {
    v = 1.0;
  }
  total = 0.0;
  run();
  EXPECT_EQ(total, 48.0);  // replaying the stale 32-element plan would miss 16
  EXPECT_EQ(profile_of("pl_set_resize").captures, 2u);
}

TEST_F(PreparedLoopTest, ChangedBlockSizeForcesRecapture) {
  auto m = make_ring(64);
  loop_handle h;
  double acc = 0.0;
  auto run = [&] {
    op_par_loop(h, scale_add, "pl_blk", m.cells,
                op_arg_dat<double>(m.p_x, -1, OP_ID, 1, OP_READ),
                op_arg_dat<double>(m.p_y, -1, OP_ID, 1, OP_WRITE),
                op_arg_gbl<double>(&acc, 1, OP_INC));
  };
  run();
  run();
  EXPECT_EQ(profile_of("pl_blk").captures, 1u);
  op2::init(make_config("seq", 1, 32));  // block_size 16 -> 32
  run();
  EXPECT_EQ(profile_of("pl_blk").captures, 2u);
}

TEST_F(PreparedLoopTest, ChangedStaticChunkForcesRecapture) {
  auto m = make_ring(64);
  loop_handle h;
  double acc = 0.0;
  auto run = [&] {
    op_par_loop(h, scale_add, "pl_chunk", m.cells,
                op_arg_dat<double>(m.p_x, -1, OP_ID, 1, OP_READ),
                op_arg_dat<double>(m.p_y, -1, OP_ID, 1, OP_WRITE),
                op_arg_gbl<double>(&acc, 1, OP_INC));
  };
  run();
  EXPECT_EQ(profile_of("pl_chunk").captures, 1u);
  op2::init(make_config("seq", 1, 16, /*static_chunk=*/4));
  run();
  EXPECT_EQ(profile_of("pl_chunk").captures, 2u);
}

TEST_F(PreparedLoopTest, HandleInvalidateForcesRecapture) {
  auto m = make_ring(64);
  loop_handle h;
  double acc = 0.0;
  auto run = [&] {
    op_par_loop(h, scale_add, "pl_inval", m.cells,
                op_arg_dat<double>(m.p_x, -1, OP_ID, 1, OP_READ),
                op_arg_dat<double>(m.p_y, -1, OP_ID, 1, OP_WRITE),
                op_arg_gbl<double>(&acc, 1, OP_INC));
  };
  run();
  run();
  h.invalidate();
  run();
  EXPECT_EQ(profile_of("pl_inval").captures, 2u);
  EXPECT_EQ(profile_of("pl_inval").replays, 1u);
}

TEST_F(PreparedLoopTest, PreparedOffConfigForcesOneShotPath) {
  auto cfg = make_config("seq", 1, 16);
  cfg.prepared_loops = false;
  op2::init(cfg);
  profiling::reset();
  profiling::enable(true);

  auto m = make_ring(64);
  loop_handle h;
  double acc = 0.0;
  for (int i = 0; i < 3; ++i) {
    op_par_loop(h, scale_add, "pl_off", m.cells,
                op_arg_dat<double>(m.p_x, -1, OP_ID, 1, OP_READ),
                op_arg_dat<double>(m.p_y, -1, OP_ID, 1, OP_WRITE),
                op_arg_gbl<double>(&acc, 1, OP_INC));
  }
  const auto p = profile_of("pl_off");
  EXPECT_EQ(p.captures, 0u);
  EXPECT_EQ(p.replays, 0u);
  EXPECT_EQ(p.invocations, 3u);
}

TEST_F(PreparedLoopTest, GlobalsAreReboundPerReplay) {
  auto m = make_ring(16);
  loop_handle h;
  double first = 0.0;
  double second = 0.0;
  auto run = [&](double* acc) {
    op_par_loop(h, sum_to, "pl_rebind", m.cells,
                op_arg_dat<double>(m.p_x, -1, OP_ID, 1, OP_READ),
                op_arg_gbl<double>(acc, 1, OP_INC));
  };
  const double expected = 16.0 * 17.0 / 2.0;  // iota 1..16
  run(&first);
  run(&second);  // replay must write through the NEW pointer
  EXPECT_EQ(first, expected);
  EXPECT_EQ(second, expected);
  EXPECT_EQ(profile_of("pl_rebind").replays, 1u);
}

TEST(PreparedLoopEnv, Op2PreparedKnobParses) {
  ::setenv("OP2_PREPARED", "off", 1);
  op2::init(make_config("seq", 1));
  EXPECT_FALSE(current_config().prepared_loops);
  ::setenv("OP2_PREPARED", "on", 1);
  op2::init(make_config("seq", 1));
  EXPECT_TRUE(current_config().prepared_loops);
  ::setenv("OP2_PREPARED", "sometimes", 1);
  EXPECT_THROW(op2::init(make_config("seq", 1)), std::invalid_argument);
  ::unsetenv("OP2_PREPARED");
  op2::finalize();
}

// ---------------------------------------------------------------------
// Backend x loop equivalence matrix: the replayed (prepared) pipeline
// must produce the same results as the one-shot control arm under
// every registered backend, for both the classic and async APIs.
// ---------------------------------------------------------------------

struct run_result {
  std::vector<double> rms;       // per-iteration reduction values
  std::vector<double> y_final;   // final cell state
  std::vector<double> e_final;   // final edge state
};

// A miniature solver iteration: direct loop with a reduction feeding an
// indirect coloured gather — the same loop shapes airfoil uses.
run_result run_mini_solver(bool use_async, int iters) {
  auto m = make_ring(96);
  loop_handle h_direct;
  loop_handle h_edge;
  run_result r;
  for (int it = 0; it < iters; ++it) {
    double rms = 0.0;
    if (use_async) {
      auto f1 = op_par_loop_async(
          h_direct, scale_add, "mini_direct", m.cells,
          op_arg_dat<double>(m.p_x, -1, OP_ID, 1, OP_READ),
          op_arg_dat<double>(m.p_y, -1, OP_ID, 1, OP_WRITE),
          op_arg_gbl<double>(&rms, 1, OP_INC));
      f1.get();
      auto f2 = op_par_loop_async(
          h_edge, edge_gather, "mini_edge", m.edges,
          op_arg_dat<double>(m.p_y, 0, m.pedge, 1, OP_READ),
          op_arg_dat<double>(m.p_y, 1, m.pedge, 1, OP_READ),
          op_arg_dat<double>(m.p_e, -1, OP_ID, 1, OP_INC));
      f2.get();
    } else {
      op_par_loop(h_direct, scale_add, "mini_direct", m.cells,
                  op_arg_dat<double>(m.p_x, -1, OP_ID, 1, OP_READ),
                  op_arg_dat<double>(m.p_y, -1, OP_ID, 1, OP_WRITE),
                  op_arg_gbl<double>(&rms, 1, OP_INC));
      op_par_loop(h_edge, edge_gather, "mini_edge", m.edges,
                  op_arg_dat<double>(m.p_y, 0, m.pedge, 1, OP_READ),
                  op_arg_dat<double>(m.p_y, 1, m.pedge, 1, OP_READ),
                  op_arg_dat<double>(m.p_e, -1, OP_ID, 1, OP_INC));
    }
    r.rms.push_back(rms);
  }
  const auto yv = m.p_y.data<double>();
  r.y_final.assign(yv.begin(), yv.end());
  const auto ev = m.p_e.data<double>();
  r.e_final.assign(ev.begin(), ev.end());
  return r;
}

struct equivalence_param {
  const char* backend_name;
  unsigned threads;
  bool use_async;
};

std::string equivalence_name(
    const ::testing::TestParamInfo<equivalence_param>& info) {
  return std::string(info.param.backend_name) + "_t" +
         std::to_string(info.param.threads) +
         (info.param.use_async ? "_async" : "_classic");
}

class PreparedEquivalenceTest
    : public ::testing::TestWithParam<equivalence_param> {};

TEST_P(PreparedEquivalenceTest, ReplayMatchesOneShot) {
  const auto p = GetParam();
  constexpr int kIters = 4;

  auto cfg = make_config(p.backend_name, p.threads, 16);
  cfg.prepared_loops = true;
  op2::init(cfg);
  const auto prepared = run_mini_solver(p.use_async, kIters);

  cfg.prepared_loops = false;  // control arm: one-shot path every call
  op2::init(cfg);
  const auto oneshot = run_mini_solver(p.use_async, kIters);
  op2::finalize();

  // The dat state is never touched by the reduction machinery: the
  // prepared pipeline must reproduce it bit-for-bit on every backend.
  ASSERT_EQ(prepared.y_final.size(), oneshot.y_final.size());
  for (std::size_t i = 0; i < prepared.y_final.size(); ++i) {
    ASSERT_EQ(prepared.y_final[i], oneshot.y_final[i]) << "y[" << i << "]";
  }
  ASSERT_EQ(prepared.e_final.size(), oneshot.e_final.size());
  for (std::size_t i = 0; i < prepared.e_final.size(); ++i) {
    ASSERT_EQ(prepared.e_final[i], oneshot.e_final[i]) << "e[" << i << "]";
  }

  // Reductions: bit-for-bit where execution is deterministic (one
  // worker); within tight relative tolerance when the block-to-worker
  // assignment (and hence the FP summation order) may vary run to run.
  ASSERT_EQ(prepared.rms.size(), oneshot.rms.size());
  for (std::size_t i = 0; i < prepared.rms.size(); ++i) {
    if (p.threads <= 1) {
      ASSERT_EQ(prepared.rms[i], oneshot.rms[i]) << "rms[" << i << "]";
    } else {
      ASSERT_NEAR(prepared.rms[i], oneshot.rms[i],
                  1e-12 * std::abs(oneshot.rms[i]))
          << "rms[" << i << "]";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, PreparedEquivalenceTest,
    ::testing::Values(
        equivalence_param{"seq", 1, false},
        equivalence_param{"seq", 1, true},
        equivalence_param{"forkjoin", 4, false},
        equivalence_param{"forkjoin", 4, true},
        equivalence_param{"hpx_foreach", 4, false},
        equivalence_param{"hpx_foreach", 4, true},
        equivalence_param{"hpx_async", 4, false},
        equivalence_param{"hpx_async", 4, true},
        equivalence_param{"hpx_dataflow", 4, false},
        equivalence_param{"hpx_dataflow", 4, true}),
    equivalence_name);

// Modified (dataflow) API flavour of the equivalence matrix: the node
// body replays a prepared descriptor at fire time.
TEST(PreparedDataflowEquivalence, ReplayMatchesOneShot) {
  constexpr int kIters = 4;
  auto run_arm = [&](bool prepared_on) {
    auto cfg = make_config("hpx_dataflow", 4, 16);
    cfg.prepared_loops = prepared_on;
    op2::init(cfg);
    auto base = make_ring(96);
    op_dat_df x(base.p_x);
    op_dat_df y(base.p_y);
    std::vector<double> rms(kIters, 0.0);
    for (int it = 0; it < kIters; ++it) {
      op_par_loop(scale_add, "df_direct", base.cells,
                  op_arg_dat1<double>(x, -1, OP_ID, 1, OP_READ),
                  op_arg_dat1<double>(y, -1, OP_ID, 1, OP_WRITE),
                  op_arg_gbl1<double>(&rms[static_cast<std::size_t>(it)], 1,
                                      OP_INC));
    }
    y.wait();
    const auto yv = y.dat().data<double>();
    std::vector<double> y_final(yv.begin(), yv.end());
    op2::finalize();
    return std::make_pair(rms, y_final);
  };
  const auto prepared = run_arm(true);
  const auto oneshot = run_arm(false);
  ASSERT_EQ(prepared.second.size(), oneshot.second.size());
  for (std::size_t i = 0; i < prepared.second.size(); ++i) {
    ASSERT_EQ(prepared.second[i], oneshot.second[i]);
  }
  for (std::size_t i = 0; i < prepared.first.size(); ++i) {
    ASSERT_NEAR(prepared.first[i], oneshot.first[i],
                1e-12 * std::abs(oneshot.first[i]));
  }
}

// ---------------------------------------------------------------------
// Contention regression (satellite of the reduction-lock removal): two
// reduction loops replaying concurrently must not corrupt each other.
// Under the old design both loops serialised on (and raced through)
// one global spinlock-guarded scratch; per-loop per-worker slots make
// the accumulators independent.
// ---------------------------------------------------------------------

TEST(PreparedContention, TwoConcurrentReducingLoopsStayIndependent) {
  op2::init(make_config("hpx_async", 4, 16));
  {
    auto s1 = op_decl_set(4096, "s1");
    auto s2 = op_decl_set(4096, "s2");
    std::vector<double> ones(4096, 1.0);
    std::vector<double> twos(4096, 2.0);
    auto d1 = op_decl_dat<double>(s1, 1, "double",
                                  std::span<const double>(ones), "d1");
    auto d2 = op_decl_dat<double>(s2, 1, "double",
                                  std::span<const double>(twos), "d2");
    loop_handle h1;
    loop_handle h2;
    constexpr int kRounds = 100;
    for (int round = 0; round < kRounds; ++round) {
      double sum = 0.0;
      double sq = 0.0;
      // Launch both, THEN wait: the loops replay concurrently on the
      // shared worker pool.
      auto f1 = op_par_loop_async(
          h1, sum_to, "cont_sum", s1,
          op_arg_dat<double>(d1, -1, OP_ID, 1, OP_READ),
          op_arg_gbl<double>(&sum, 1, OP_INC));
      auto f2 = op_par_loop_async(
          h2, sum_sq, "cont_sq", s2,
          op_arg_dat<double>(d2, -1, OP_ID, 1, OP_READ),
          op_arg_gbl<double>(&sq, 1, OP_INC));
      f1.get();
      f2.get();
      // Integer-valued sums: exact regardless of summation order.
      ASSERT_EQ(sum, 4096.0) << "round " << round;
      ASSERT_EQ(sq, 4.0 * 4096.0) << "round " << round;
    }
  }
  op2::finalize();
}

// Several *different* loops accumulating into ONE shared global: their
// per-worker scratch is independent, but every finalize combines into
// the same caller buffer from whichever worker completes the loop.
// That last read-modify-write must be serialised (global_merge_lock)
// or near-simultaneous completions lose updates.
TEST(PreparedContention, ConcurrentLoopsSharingOneGlobalLoseNoUpdates) {
  op2::init(make_config("hpx_async", kShareLoops, 16));
  {
    constexpr int kRounds = 100;
    std::vector<op_set> sets;
    std::vector<op_dat> dats;
    const std::vector<double> one(1, 1.0);
    for (int i = 0; i < kShareLoops; ++i) {
      // One element per loop: the whole loop is one kernel call, so the
      // rendezvous aligns the loops' completions exactly.
      sets.push_back(op_decl_set(1, "s" + std::to_string(i)));
      dats.push_back(op_decl_dat<double>(sets.back(), 1, "double",
                                         std::span<const double>(one),
                                         "d" + std::to_string(i)));
    }
    std::array<loop_handle, kShareLoops> handles;
    for (int round = 0; round < kRounds; ++round) {
      std::vector<double> total(kWideDim, 0.0);
      rendezvous_started.store(0, std::memory_order_release);
      std::vector<hpxlite::future<void>> fs;
      fs.reserve(kShareLoops);
      for (int i = 0; i < kShareLoops; ++i) {
        fs.push_back(op_par_loop_async(
            handles[static_cast<std::size_t>(i)], sum_wide_rendezvous,
            "shared_gbl", sets[static_cast<std::size_t>(i)],
            op_arg_dat<double>(dats[static_cast<std::size_t>(i)], -1, OP_ID,
                               1, OP_READ),
            op_arg_gbl<double>(total.data(), kWideDim, OP_INC)));
      }
      for (auto& f : fs) {
        f.get();
      }
      // Integer-valued sums: exact regardless of merge order.
      for (int j = 0; j < kWideDim; ++j) {
        ASSERT_EQ(total[static_cast<std::size_t>(j)],
                  static_cast<double>(kShareLoops))
            << "round " << round << " component " << j;
      }
    }
  }
  op2::finalize();
}

// Async overlap of one call site with itself: the first invocation
// replays the prepared entry, the second finds it in flight and runs
// one-shot — two frames, one shared global, concurrent finalise.
TEST(PreparedContention, OverlappingSameSiteInvocationsLoseNoUpdates) {
  op2::init(make_config("hpx_async", 4, 16));
  {
    auto s1 = op_decl_set(4096, "s1");
    std::vector<double> ones(4096, 1.0);
    auto d1 = op_decl_dat<double>(s1, 1, "double",
                                  std::span<const double>(ones), "d1");
    loop_handle h;
    constexpr int kRounds = 100;
    for (int round = 0; round < kRounds; ++round) {
      double total = 0.0;
      auto f1 = op_par_loop_async(
          h, sum_to, "overlap_gbl", s1,
          op_arg_dat<double>(d1, -1, OP_ID, 1, OP_READ),
          op_arg_gbl<double>(&total, 1, OP_INC));
      auto f2 = op_par_loop_async(
          h, sum_to, "overlap_gbl", s1,
          op_arg_dat<double>(d1, -1, OP_ID, 1, OP_READ),
          op_arg_gbl<double>(&total, 1, OP_INC));
      f1.get();
      f2.get();
      ASSERT_EQ(total, 2.0 * 4096.0) << "round " << round;
    }
  }
  op2::finalize();
}

// op_set::resize must force re-capture even when a later resize
// returns the set to its captured size.  A global-only loop isolates
// the check: no dat version changes, the size matches the captured
// plan again, and only the set's resize-version says it went stale.
TEST_F(PreparedLoopTest, SetResizeRoundTripStillForcesRecapture) {
  auto cells = op_decl_set(64, "cells");
  loop_handle h;
  double total = 0.0;
  const auto run = [&] {
    op_par_loop(h, count_one, "pl_roundtrip", cells,
                op_arg_gbl<double>(&total, 1, OP_INC));
  };
  run();
  run();
  EXPECT_EQ(profile_of("pl_roundtrip").captures, 1u);
  // Shrink and grow back to 64: size matches the captured entry again,
  // but the resize-version does not.
  cells.resize(32);
  cells.resize(64);
  run();
  EXPECT_EQ(profile_of("pl_roundtrip").captures, 2u);
  EXPECT_EQ(total, 3.0 * 64.0);
}

}  // namespace
