#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "hpxlite/scheduler.hpp"
#include "op2/dat_stats.hpp"
#include "op2/set.hpp"

namespace {

using op2::dat_summary;
using op2::op_decl_dat;
using op2::op_decl_set;
using op2::summarize_dat;

TEST(DatStats, AllComponentsSerial) {
  auto s = op_decl_set(3, "s");
  const std::vector<double> init{1.0, -2.0, 3.0, 4.0, 0.0, -6.0};
  auto d = op_decl_dat<double>(s, 2, "double",
                               std::span<const double>(init), "d");
  const dat_summary sum = summarize_dat<double>(d);
  EXPECT_EQ(sum.count, 6u);
  EXPECT_DOUBLE_EQ(sum.min, -6.0);
  EXPECT_DOUBLE_EQ(sum.max, 4.0);
  EXPECT_DOUBLE_EQ(sum.sum, 0.0);
  EXPECT_DOUBLE_EQ(sum.l2, std::sqrt(1 + 4 + 9 + 16 + 0 + 36));
}

TEST(DatStats, SingleComponent) {
  auto s = op_decl_set(3, "s");
  const std::vector<double> init{1.0, 10.0, 2.0, 20.0, 3.0, 30.0};
  auto d = op_decl_dat<double>(s, 2, "double",
                               std::span<const double>(init), "d");
  const dat_summary c0 = summarize_dat<double>(d, 0);
  EXPECT_EQ(c0.count, 3u);
  EXPECT_DOUBLE_EQ(c0.min, 1.0);
  EXPECT_DOUBLE_EQ(c0.max, 3.0);
  EXPECT_DOUBLE_EQ(c0.sum, 6.0);
  const dat_summary c1 = summarize_dat<double>(d, 1);
  EXPECT_DOUBLE_EQ(c1.sum, 60.0);
}

TEST(DatStats, ParallelMatchesSerial) {
  auto s = op_decl_set(4096, "s");
  std::vector<double> init(4096 * 2);
  for (std::size_t i = 0; i < init.size(); ++i) {
    init[i] = std::sin(static_cast<double>(i));
  }
  auto d = op_decl_dat<double>(s, 2, "double",
                               std::span<const double>(init), "d");
  const dat_summary serial = summarize_dat<double>(d);
  hpxlite::runtime::reset(3);
  const dat_summary parallel = summarize_dat<double>(d);
  hpxlite::runtime::shutdown();
  EXPECT_EQ(parallel.count, serial.count);
  EXPECT_DOUBLE_EQ(parallel.min, serial.min);
  EXPECT_DOUBLE_EQ(parallel.max, serial.max);
  EXPECT_NEAR(parallel.sum, serial.sum, 1e-9);
  EXPECT_NEAR(parallel.l2, serial.l2, 1e-9);
}

TEST(DatStats, IntDats) {
  auto s = op_decl_set(4, "s");
  const std::vector<int> init{-3, 1, 4, 1};
  auto d = op_decl_dat<int>(s, 1, "int", std::span<const int>(init), "d");
  const dat_summary sum = summarize_dat<int>(d);
  EXPECT_DOUBLE_EQ(sum.min, -3.0);
  EXPECT_DOUBLE_EQ(sum.max, 4.0);
  EXPECT_DOUBLE_EQ(sum.sum, 3.0);
}

TEST(DatStats, EmptySet) {
  auto s = op_decl_set(0, "empty");
  auto d = op_decl_dat<double>(s, 2, "double", "d");
  const dat_summary sum = summarize_dat<double>(d);
  EXPECT_EQ(sum.count, 0u);
  EXPECT_DOUBLE_EQ(sum.min, 0.0);
  EXPECT_DOUBLE_EQ(sum.max, 0.0);
}

TEST(DatStats, Validation) {
  auto s = op_decl_set(2, "s");
  auto d = op_decl_dat<double>(s, 2, "double", "d");
  EXPECT_THROW(summarize_dat<double>(d, 5), std::out_of_range);
  op2::op_dat none;
  EXPECT_THROW(summarize_dat<double>(none), std::invalid_argument);
  EXPECT_THROW(summarize_dat<int>(d), std::invalid_argument);  // wrong T
}

}  // namespace
