// backend_registry contract tests, plus the proof that a sixth backend
// drops in from a single translation unit: `seq_colored` below is
// registered by a namespace-scope registrar in THIS test file, with
// zero edits to op2/codegen/airfoil/simsched core files, and executes
// real op_par_loop work.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "op2/op2.hpp"

namespace {

using op2::backend_registry;
using op2::loop_executor;

// --- the demo sixth backend: one TU, no core-file edits --------------

/// Follows the plan's colour schedule like the parallel backends, but
/// runs the blocks sequentially — a deterministic colour-order oracle.
class seq_colored_executor final : public loop_executor {
 public:
  std::string_view name() const noexcept override { return "seq_colored"; }

  op2::executor_caps capabilities() const noexcept override {
    return op2::executor_caps{};
  }

  void run_direct(const op2::loop_launch& loop) override {
    run_colored(loop);
  }

  void run_indirect(const op2::loop_launch& loop) override {
    run_colored(loop);
  }

 private:
  static void run_colored(const op2::loop_launch& loop) {
    for (const auto& blocks : loop.plan->color_blocks) {
      for (const int b : blocks) {
        loop.run_block(b);
      }
    }
  }
};

backend_registry::registrar seq_colored_reg{
    "seq_colored", [] { return std::make_unique<seq_colored_executor>(); }};

// ---------------------------------------------------------------------

TEST(BackendRegistry, BuiltinsRegisteredInPaperOrder) {
  const auto names = backend_registry::names();
  const std::vector<std::string> builtins = {
      "seq", "forkjoin", "hpx_foreach", "hpx_async", "hpx_dataflow"};
  // All five built-ins present, in relative registration order (other
  // backends — like this file's seq_colored — may interleave).
  std::vector<std::string> found;
  for (const auto& n : names) {
    if (std::find(builtins.begin(), builtins.end(), n) != builtins.end()) {
      found.push_back(n);
    }
  }
  EXPECT_EQ(found, builtins);
}

TEST(BackendRegistry, ContainsAndAliases) {
  EXPECT_TRUE(backend_registry::contains("seq"));
  EXPECT_TRUE(backend_registry::contains("foreach"));
  EXPECT_TRUE(backend_registry::contains("async"));
  EXPECT_TRUE(backend_registry::contains("dataflow"));
  EXPECT_FALSE(backend_registry::contains("cuda"));
  EXPECT_EQ(backend_registry::resolve("foreach"), "hpx_foreach");
  EXPECT_EQ(backend_registry::resolve("async"), "hpx_async");
  EXPECT_EQ(backend_registry::resolve("dataflow"), "hpx_dataflow");
  EXPECT_EQ(backend_registry::resolve("seq"), "seq");
}

TEST(BackendRegistry, UnknownNameThrowsListingAvailable) {
  try {
    backend_registry::resolve("cuda");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown backend 'cuda'"), std::string::npos);
    EXPECT_NE(what.find("available:"), std::string::npos);
    EXPECT_NE(what.find("hpx_dataflow"), std::string::npos);
  }
  EXPECT_THROW(backend_registry::make("nope"), std::invalid_argument);
  EXPECT_THROW(backend_registry::shared("nope"), std::invalid_argument);
  EXPECT_THROW(op2::make_config("nope"), std::invalid_argument);
}

TEST(BackendRegistry, DuplicateRegistrationThrows) {
  EXPECT_THROW(backend_registry::register_backend(
                   "seq", [] { return backend_registry::make("seq"); }),
               std::invalid_argument);
  // Aliases collide with names and other aliases too.
  EXPECT_THROW(backend_registry::register_backend(
                   "fresh_name_alias_clash",
                   [] { return backend_registry::make("seq"); }, {"foreach"}),
               std::invalid_argument);
}

TEST(BackendRegistry, EmptyNameOrNullFactoryThrows) {
  EXPECT_THROW(backend_registry::register_backend(
                   "", [] { return backend_registry::make("seq"); }),
               std::invalid_argument);
  EXPECT_THROW(
      backend_registry::register_backend("null_factory", nullptr),
      std::invalid_argument);
}

TEST(BackendRegistry, MakeReturnsFreshInstancesSharedIsStable) {
  auto a = backend_registry::make("seq");
  auto b = backend_registry::make("seq");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(a->name(), "seq");
  EXPECT_EQ(&backend_registry::shared("seq"), &backend_registry::shared("seq"));
  // Aliases resolve to the same shared instance as the canonical name.
  EXPECT_EQ(&backend_registry::shared("dataflow"),
            &backend_registry::shared("hpx_dataflow"));
}

TEST(BackendRegistry, CapabilitiesMatchTheExecutionModel) {
  EXPECT_FALSE(backend_registry::shared("seq").capabilities().asynchronous);
  EXPECT_TRUE(
      backend_registry::shared("forkjoin").capabilities().needs_forkjoin_team);
  EXPECT_TRUE(
      backend_registry::shared("hpx_foreach").capabilities().needs_hpx_runtime);
  EXPECT_TRUE(
      backend_registry::shared("hpx_async").capabilities().asynchronous);
  const auto df = backend_registry::shared("hpx_dataflow").capabilities();
  EXPECT_TRUE(df.asynchronous);
  EXPECT_TRUE(df.dataflow_api);
  EXPECT_STREQ(df.sim_method, "hpx_dataflow");
}

TEST(BackendRegistry, MakeConfigCanonicalisesAndFillsEnum) {
  const auto cfg = op2::make_config("dataflow", 3, 64, 8);
  EXPECT_EQ(cfg.backend_name, "hpx_dataflow");
  EXPECT_EQ(cfg.bk, op2::backend::hpx_dataflow);
  EXPECT_EQ(cfg.threads, 3u);
  EXPECT_EQ(cfg.block_size, 64);
  EXPECT_EQ(cfg.static_chunk, 8u);
}

TEST(BackendRegistry, DescribeChunkSpecs) {
  EXPECT_EQ(op2::describe(hpxlite::auto_chunk_size{}), "auto");
  EXPECT_EQ(op2::describe(hpxlite::static_chunk_size(16)), "static:16");
  EXPECT_EQ(op2::describe(hpxlite::dynamic_chunk_size(4)), "dynamic:4");
  EXPECT_EQ(op2::describe(hpxlite::guided_chunk_size(2)), "guided:2");
  EXPECT_EQ(op2::describe(hpxlite::adaptive_chunk_size{}), "adaptive");
  auto ctl = hpxlite::grain_controller::converged_at(24);
  EXPECT_EQ(op2::describe(hpxlite::adaptive_chunk_size{ctl}), "adaptive:24");
}

TEST(BackendRegistry, ParseChunkSpecGrammar) {
  EXPECT_TRUE(std::holds_alternative<hpxlite::auto_chunk_size>(
      op2::parse_chunk_spec("auto")));
  EXPECT_TRUE(std::holds_alternative<hpxlite::adaptive_chunk_size>(
      op2::parse_chunk_spec("adaptive")));
  const auto st = op2::parse_chunk_spec("static:16");
  EXPECT_EQ(std::get<hpxlite::static_chunk_size>(st).size, 16u);
  const auto dy = op2::parse_chunk_spec("dynamic:4");
  EXPECT_EQ(std::get<hpxlite::dynamic_chunk_size>(dy).size, 4u);
  const auto gu = op2::parse_chunk_spec("guided:2");
  EXPECT_EQ(std::get<hpxlite::guided_chunk_size>(gu).min_size, 2u);

  for (const char* bad : {"", "bogus", "static", "static:", "static:0",
                          "static:x", "static:4x", "dynamic:-1", "auto:1"}) {
    EXPECT_THROW(op2::parse_chunk_spec(bad), std::invalid_argument) << bad;
  }
}

// The sixth backend actually executes op_par_loop work, selected purely
// by its registry name — proving extension needs no core-file changes.
TEST(BackendRegistry, SixthBackendRunsRealLoops) {
  ASSERT_TRUE(backend_registry::contains("seq_colored"));
  const auto names = backend_registry::names();
  EXPECT_NE(std::find(names.begin(), names.end(), "seq_colored"),
            names.end());

  op2::init(op2::make_config("seq_colored", 1, 8));
  EXPECT_EQ(op2::current_backend_name(), "seq_colored");
  EXPECT_EQ(op2::current_executor().name(), "seq_colored");

  auto cells = op2::op_decl_set(64, "cells");
  std::vector<int> init(64);
  std::iota(init.begin(), init.end(), 0);
  auto p_in = op2::op_decl_dat<int>(cells, 1, "int",
                                    std::span<const int>(init), "in");
  auto p_out = op2::op_decl_dat<int>(cells, 1, "int", "out");
  int total = 0;
  op2::op_par_loop(
      [](const int* in, int* out, int* acc) {
        out[0] = 2 * in[0];
        acc[0] += in[0];
      },
      "double_up", cells,
      op2::op_arg_dat<int>(p_in, -1, op2::OP_ID, 1, op2::OP_READ),
      op2::op_arg_dat<int>(p_out, -1, op2::OP_ID, 1, op2::OP_WRITE),
      op2::op_arg_gbl<int>(&total, 1, op2::OP_INC));

  EXPECT_EQ(total, 64 * 63 / 2);
  EXPECT_EQ(p_out.data<int>()[10], 20);
  op2::finalize();
}

}  // namespace
