#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "op2/mesh_io.hpp"

namespace {

using op2::mesh;
using op2::read_mesh;
using op2::write_mesh;

mesh tiny_mesh() {
  mesh m;
  m.sets.emplace("cells", op2::op_decl_set(2, "cells"));
  m.sets.emplace("nodes", op2::op_decl_set(4, "nodes"));
  const std::vector<int> table{0, 1, 2, 3};
  m.maps.emplace("c2n", op2::op_decl_map(m.sets.at("cells"),
                                         m.sets.at("nodes"), 2, table,
                                         "c2n"));
  const std::vector<double> x{0.5, 1.5, 2.25, 3.125};
  m.dats.emplace("x", op2::op_decl_dat<double>(m.sets.at("nodes"), 1,
                                               "double",
                                               std::span<const double>(x),
                                               "x"));
  const std::vector<int> flag{7, 9};
  m.dats.emplace("flag", op2::op_decl_dat<int>(m.sets.at("cells"), 1, "int",
                                               std::span<const int>(flag),
                                               "flag"));
  return m;
}

TEST(MeshIo, RoundTripPreservesEverything) {
  const mesh original = tiny_mesh();
  std::stringstream buffer;
  write_mesh(buffer, original);
  const mesh loaded = read_mesh(buffer);

  EXPECT_EQ(loaded.set("cells").size(), 2);
  EXPECT_EQ(loaded.set("nodes").size(), 4);
  const auto& m = loaded.map("c2n");
  EXPECT_EQ(m.dim(), 2);
  EXPECT_EQ(m.at(0, 0), 0);
  EXPECT_EQ(m.at(1, 1), 3);
  auto x = loaded.dat("x").data<double>();
  EXPECT_DOUBLE_EQ(x[0], 0.5);
  EXPECT_DOUBLE_EQ(x[3], 3.125);
  auto f = loaded.dat("flag").data<int>();
  EXPECT_EQ(f[0], 7);
  EXPECT_EQ(f[1], 9);
}

TEST(MeshIo, DoubleRoundTripIsExact) {
  // Full-precision doubles survive two write/read cycles bit-exactly.
  const mesh original = tiny_mesh();
  std::stringstream b1;
  write_mesh(b1, original);
  const mesh once = read_mesh(b1);
  std::stringstream b2;
  write_mesh(b2, once);
  const mesh twice = read_mesh(b2);
  auto a = once.dat("x").data<double>();
  auto b = twice.dat("x").data<double>();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
}

TEST(MeshIo, MissingHeaderRejected) {
  std::stringstream in("set cells 4\nend\n");
  EXPECT_THROW(read_mesh(in), std::runtime_error);
}

TEST(MeshIo, WrongVersionRejected) {
  std::stringstream in("op2mesh 99\nend\n");
  EXPECT_THROW(read_mesh(in), std::runtime_error);
}

TEST(MeshIo, MissingEndRejected) {
  std::stringstream in("op2mesh 1\nset cells 4\n");
  EXPECT_THROW(read_mesh(in), std::runtime_error);
}

TEST(MeshIo, UnknownSectionRejected) {
  std::stringstream in("op2mesh 1\nblob x 1\nend\n");
  EXPECT_THROW(read_mesh(in), std::runtime_error);
}

TEST(MeshIo, MapBeforeSetRejected) {
  std::stringstream in("op2mesh 1\nmap m a b 1\n0\nend\n");
  EXPECT_THROW(read_mesh(in), std::runtime_error);
}

TEST(MeshIo, TruncatedMapDataRejected) {
  std::stringstream in(
      "op2mesh 1\nset a 2\nset b 2\nmap m a b 2\n0 1 1\nend\n");
  EXPECT_THROW(read_mesh(in), std::runtime_error);
}

TEST(MeshIo, OutOfRangeMapIndexRejected) {
  std::stringstream in(
      "op2mesh 1\nset a 2\nset b 2\nmap m a b 1\n0 5\nend\n");
  EXPECT_THROW(read_mesh(in), std::out_of_range);
}

TEST(MeshIo, DuplicateSetRejected) {
  std::stringstream in("op2mesh 1\nset a 2\nset a 3\nend\n");
  EXPECT_THROW(read_mesh(in), std::runtime_error);
}

TEST(MeshIo, UnsupportedDatTypeRejected) {
  std::stringstream in(
      "op2mesh 1\nset a 1\ndat d a 1 quaternion\n0\nend\n");
  EXPECT_THROW(read_mesh(in), std::runtime_error);
}

TEST(MeshIo, DatLookupMissingNameThrows) {
  const mesh m = tiny_mesh();
  EXPECT_THROW(m.set("nope"), std::out_of_range);
  EXPECT_THROW(m.map("nope"), std::out_of_range);
  EXPECT_THROW(m.dat("nope"), std::out_of_range);
}

TEST(MeshIo, FloatDatsSupported) {
  std::stringstream in(
      "op2mesh 1\nset s 2\ndat f s 2 float\n1.5 2.5\n3.5 4.5\nend\n");
  const mesh m = read_mesh(in);
  auto f = m.dat("f").data<float>();
  EXPECT_FLOAT_EQ(f[0], 1.5f);
  EXPECT_FLOAT_EQ(f[3], 4.5f);
}

TEST(MeshIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/op2hpx_mesh_test.txt";
  op2::write_mesh_file(path, tiny_mesh());
  const mesh loaded = op2::read_mesh_file(path);
  EXPECT_EQ(loaded.set("cells").size(), 2);
  EXPECT_THROW(op2::read_mesh_file(path + ".missing"), std::runtime_error);
}

}  // namespace
