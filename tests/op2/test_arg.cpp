#include <gtest/gtest.h>

#include <vector>

#include "op2/arg.hpp"

namespace {

using namespace op2;

class ArgTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cells = op_decl_set(4, "cells");
    nodes = op_decl_set(6, "nodes");
    const std::vector<int> table{0, 1, 1, 2, 2, 3, 3, 4};
    c2n = op_decl_map(cells, nodes, 2, table, "c2n");
    q = op_decl_dat<double>(cells, 4, "double", "q");
    x = op_decl_dat<double>(nodes, 2, "double", "x");
    b = op_decl_dat<int>(cells, 1, "int", "b");
  }

  op_set cells, nodes;
  op_map c2n;
  op_dat q, x, b;
};

TEST_F(ArgTest, DirectArg) {
  auto a = op_arg_dat<double>(q, -1, OP_ID, 4, OP_READ);
  EXPECT_TRUE(a.is_direct());
  EXPECT_FALSE(a.is_indirect());
  EXPECT_FALSE(a.is_global());
  EXPECT_EQ(a.dim, 4);
  EXPECT_EQ(a.acc, OP_READ);
}

TEST_F(ArgTest, IndirectArg) {
  auto a = op_arg_dat<double>(x, 1, c2n, 2, OP_READ);
  EXPECT_TRUE(a.is_indirect());
  EXPECT_EQ(a.idx, 1);
  EXPECT_EQ(a.map, c2n);
}

TEST_F(ArgTest, GlobalArg) {
  double rms = 0.0;
  auto a = op_arg_gbl<double>(&rms, 1, OP_INC);
  EXPECT_TRUE(a.is_global());
  EXPECT_EQ(a.gbl, &rms);
}

TEST_F(ArgTest, TypeMismatchRejected) {
  EXPECT_THROW(op_arg_dat<float>(q, -1, OP_ID, 4, OP_READ),
               std::invalid_argument);
  EXPECT_THROW(op_arg_dat<double>(b, -1, OP_ID, 1, OP_READ),
               std::invalid_argument);
}

TEST_F(ArgTest, DimMismatchRejected) {
  EXPECT_THROW(op_arg_dat<double>(q, -1, OP_ID, 3, OP_READ),
               std::invalid_argument);
}

TEST_F(ArgTest, MapIndexOutOfRangeRejected) {
  EXPECT_THROW(op_arg_dat<double>(x, 2, c2n, 2, OP_READ), std::out_of_range);
  EXPECT_THROW(op_arg_dat<double>(x, -1, c2n, 2, OP_READ), std::out_of_range);
}

TEST_F(ArgTest, MapTargetMismatchRejected) {
  // c2n targets nodes; q lives on cells.
  EXPECT_THROW(op_arg_dat<double>(q, 0, c2n, 4, OP_READ),
               std::invalid_argument);
}

TEST_F(ArgTest, DirectWithNonNegativeIdxRejected) {
  EXPECT_THROW(op_arg_dat<double>(q, 0, OP_ID, 4, OP_READ),
               std::invalid_argument);
}

TEST_F(ArgTest, InvalidDatRejected) {
  op_dat none;
  EXPECT_THROW(op_arg_dat<double>(none, -1, OP_ID, 1, OP_READ),
               std::invalid_argument);
}

TEST_F(ArgTest, GlobalValidation) {
  double v = 0.0;
  EXPECT_THROW(op_arg_gbl<double>(nullptr, 1, OP_INC), std::invalid_argument);
  EXPECT_THROW(op_arg_gbl<double>(&v, 0, OP_INC), std::invalid_argument);
  EXPECT_THROW(op_arg_gbl<double>(&v, 1, OP_RW), std::invalid_argument);
  EXPECT_NO_THROW(op_arg_gbl<double>(&v, 1, OP_READ));
}

TEST_F(ArgTest, AccessPredicates) {
  EXPECT_FALSE(writes(OP_READ));
  EXPECT_TRUE(writes(OP_WRITE));
  EXPECT_TRUE(writes(OP_RW));
  EXPECT_TRUE(writes(OP_INC));
  EXPECT_STREQ(to_string(OP_INC), "OP_INC");
  EXPECT_STREQ(to_string(OP_READ), "OP_READ");
}

}  // namespace
