#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "op2/constants.hpp"
#include "op2/op2.hpp"
#include "op2/profiling.hpp"

namespace {

using namespace op2;

// --- profiling --------------------------------------------------------

class ProfilingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    profiling::reset();
    profiling::enable(true);
    op2::init({backend::seq, 1, 16, 0});
  }
  void TearDown() override {
    profiling::enable(false);
    profiling::reset();
    op2::finalize();
  }
};

void noop_kernel(const double* in, double* out) { out[0] = in[0]; }

TEST_F(ProfilingTest, RecordsLoopInvocations) {
  auto s = op_decl_set(64, "s");
  auto a = op_decl_dat<double>(s, 1, "double", "a");
  auto b = op_decl_dat<double>(s, 1, "double", "b");
  for (int i = 0; i < 5; ++i) {
    op_par_loop(noop_kernel, "copy_loop", s,
                op_arg_dat<double>(a, -1, OP_ID, 1, OP_READ),
                op_arg_dat<double>(b, -1, OP_ID, 1, OP_WRITE));
  }
  const auto snap = profiling::snapshot();
  ASSERT_EQ(snap.count("copy_loop"), 1u);
  const auto& p = snap.at("copy_loop");
  EXPECT_EQ(p.invocations, 5u);
  EXPECT_GT(p.total_seconds, 0.0);
  EXPECT_GE(p.max_seconds, p.total_seconds / 5.0);
}

TEST_F(ProfilingTest, DistinguishesLoopNames) {
  auto s = op_decl_set(8, "s");
  auto a = op_decl_dat<double>(s, 1, "double", "a");
  auto b = op_decl_dat<double>(s, 1, "double", "b");
  op_par_loop(noop_kernel, "first", s,
              op_arg_dat<double>(a, -1, OP_ID, 1, OP_READ),
              op_arg_dat<double>(b, -1, OP_ID, 1, OP_WRITE));
  op_par_loop(noop_kernel, "second", s,
              op_arg_dat<double>(a, -1, OP_ID, 1, OP_READ),
              op_arg_dat<double>(b, -1, OP_ID, 1, OP_WRITE));
  const auto snap = profiling::snapshot();
  EXPECT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap.at("first").invocations, 1u);
  EXPECT_EQ(snap.at("second").invocations, 1u);
}

TEST_F(ProfilingTest, DisabledRecordsNothing) {
  profiling::enable(false);
  auto s = op_decl_set(8, "s");
  auto a = op_decl_dat<double>(s, 1, "double", "a");
  auto b = op_decl_dat<double>(s, 1, "double", "b");
  op_par_loop(noop_kernel, "silent", s,
              op_arg_dat<double>(a, -1, OP_ID, 1, OP_READ),
              op_arg_dat<double>(b, -1, OP_ID, 1, OP_WRITE));
  EXPECT_TRUE(profiling::snapshot().empty());
}

TEST_F(ProfilingTest, AsyncLoopsRecordOnCompletion) {
  op2::init({backend::hpx_async, 2, 16, 0});
  auto s = op_decl_set(256, "s");
  auto a = op_decl_dat<double>(s, 1, "double", "a");
  auto b = op_decl_dat<double>(s, 1, "double", "b");
  auto f = op_par_loop_async(noop_kernel, "async_loop", s,
                             op_arg_dat<double>(a, -1, OP_ID, 1, OP_READ),
                             op_arg_dat<double>(b, -1, OP_ID, 1, OP_WRITE));
  f.get();
  const auto snap = profiling::snapshot();
  ASSERT_EQ(snap.count("async_loop"), 1u);
  EXPECT_EQ(snap.at("async_loop").invocations, 1u);
}

TEST_F(ProfilingTest, ReportPrintsTable) {
  auto s = op_decl_set(8, "s");
  auto a = op_decl_dat<double>(s, 1, "double", "a");
  auto b = op_decl_dat<double>(s, 1, "double", "b");
  op_par_loop(noop_kernel, "tabled", s,
              op_arg_dat<double>(a, -1, OP_ID, 1, OP_READ),
              op_arg_dat<double>(b, -1, OP_ID, 1, OP_WRITE));
  std::ostringstream out;
  profiling::report(out);
  EXPECT_NE(out.str().find("op_timing_output"), std::string::npos);
  EXPECT_NE(out.str().find("tabled"), std::string::npos);
}

TEST_F(ProfilingTest, ResilienceCountersAppearInTheTimingTable) {
  profiling::record("healed_loop", 0.001);
  profiling::record_retry("healed_loop");
  profiling::record_retry("healed_loop");
  profiling::record_fallback("healed_loop");
  profiling::record_restart("airfoil");
  const auto snap = profiling::snapshot();
  EXPECT_EQ(snap.at("healed_loop").retries, 2u);
  EXPECT_EQ(snap.at("healed_loop").fallbacks, 1u);
  EXPECT_EQ(snap.at("healed_loop").restarts, 0u);
  EXPECT_EQ(snap.at("airfoil").restarts, 1u);
  std::ostringstream out;
  profiling::report(out);
  for (const char* column : {"retries", "fallbacks", "restarts"}) {
    EXPECT_NE(out.str().find(column), std::string::npos) << column;
  }
}

TEST_F(ProfilingTest, ResilienceHooksAreNoOpsWhenDisabled) {
  profiling::enable(false);
  profiling::record_retry("ghost");
  profiling::record_fallback("ghost");
  profiling::record_restart("ghost");
  EXPECT_TRUE(profiling::snapshot().empty());
}

TEST_F(ProfilingTest, ResetClears) {
  profiling::record("ghost", 0.1);
  EXPECT_FALSE(profiling::snapshot().empty());
  profiling::reset();
  EXPECT_TRUE(profiling::snapshot().empty());
}

// --- op_decl_const ----------------------------------------------------

class ConstTest : public ::testing::Test {
 protected:
  void SetUp() override { op_clear_consts(); }
  void TearDown() override { op_clear_consts(); }
};

TEST_F(ConstTest, DeclareAndLookup) {
  double gam = 1.4;
  op_decl_const(1, "double", &gam, "gam");
  int dim = 0;
  double* p = op_get_const<double>("gam", &dim);
  EXPECT_EQ(p, &gam);
  EXPECT_EQ(dim, 1);
  EXPECT_DOUBLE_EQ(*p, 1.4);
}

TEST_F(ConstTest, ArrayConstant) {
  double qinf[4] = {1, 2, 3, 4};
  op_decl_const(4, "double", qinf, "qinf");
  int dim = 0;
  double* p = op_get_const<double>("qinf", &dim);
  EXPECT_EQ(dim, 4);
  EXPECT_DOUBLE_EQ(p[3], 4.0);
}

TEST_F(ConstTest, RedeclareSameShapeUpdatesLocation) {
  double a = 1.0;
  double b = 2.0;
  op_decl_const(1, "double", &a, "c");
  op_decl_const(1, "double", &b, "c");
  EXPECT_EQ(op_get_const<double>("c"), &b);
}

TEST_F(ConstTest, RedeclareDifferentShapeThrows) {
  double a = 1.0;
  int i = 2;
  op_decl_const(1, "double", &a, "c");
  EXPECT_THROW(op_decl_const(1, "int", &i, "c"), std::invalid_argument);
  double arr[2];
  EXPECT_THROW(op_decl_const(2, "double", arr, "c"), std::invalid_argument);
}

TEST_F(ConstTest, LookupValidation) {
  double a = 1.0;
  op_decl_const(1, "double", &a, "c");
  EXPECT_THROW(op_get_const<double>("missing"), std::out_of_range);
  EXPECT_THROW(op_get_const<int>("c"), std::invalid_argument);
}

TEST_F(ConstTest, DeclValidation) {
  double a = 1.0;
  EXPECT_THROW(op_decl_const<double>(1, "double", nullptr, "x"),
               std::invalid_argument);
  EXPECT_THROW(op_decl_const(0, "double", &a, "x"), std::invalid_argument);
}

TEST_F(ConstTest, SnapshotListsAll) {
  double a = 1.0;
  int b[3] = {1, 2, 3};
  op_decl_const(1, "double", &a, "alpha");
  op_decl_const(3, "int", b, "beta");
  const auto snap = op_const_snapshot();
  EXPECT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap.at("beta").dim, 3);
  EXPECT_EQ(snap.at("alpha").type_name, "double");
}

}  // namespace
