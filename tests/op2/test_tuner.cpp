// The adaptive grain tuner's op2 calibration layer (`ctest -L tuner`):
//   - key derivation (size buckets) and registry identity;
//   - applicability: mode off, a non-chunk-honouring backend, and an
//     explicit static/dynamic/guided chunker all leave loops untuned,
//     while the auto default and an explicit "adaptive" opt in;
//   - OP2_TUNER / OP2_TUNER_CACHE / OP2_CHUNK environment knobs;
//   - freeze mode pins controllers;
//   - the op_timing_output columns (chunk_chosen, tuner_state);
//   - the calibration-cache round trip: a warmed second "process"
//     starts converged and performs ZERO exploration replays.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "op2/op2.hpp"

namespace {

using namespace op2;
using ctl_state = hpxlite::grain_controller::state;

void scale(const double* in, double* out) { out[0] = 2.0 * in[0]; }

struct line_mesh {
  op_set cells;
  op_dat p_x;
  op_dat p_y;
};

line_mesh make_line(int n) {
  line_mesh m;
  m.cells = op_decl_set(n, "cells");
  std::vector<double> x(static_cast<std::size_t>(n));
  std::iota(x.begin(), x.end(), 1.0);
  m.p_x = op_decl_dat<double>(m.cells, 1, "double",
                              std::span<const double>(x), "p_x");
  m.p_y = op_decl_dat<double>(m.cells, 1, "double", "p_y");
  return m;
}

void run_loop(line_mesh& m, loop_handle& h, const char* name, int times) {
  for (int i = 0; i < times; ++i) {
    op_par_loop(h, scale, name, m.cells,
                op_arg_dat<double>(m.p_x, -1, OP_ID, 1, OP_READ),
                op_arg_dat<double>(m.p_y, -1, OP_ID, 1, OP_WRITE));
  }
}

loop_profile profile_of(const std::string& name) {
  auto snap = profiling::snapshot();
  const auto it = snap.find(name);
  return it == snap.end() ? loop_profile{} : it->second;
}

/// The tuner entry for `loop`, or nullopt.
std::optional<tuner::entry_info> entry_of(const std::string& loop) {
  for (const auto& e : tuner::snapshot()) {
    if (e.loop == loop) {
      return e;
    }
  }
  return std::nullopt;
}

class TunerTest : public ::testing::Test {
 protected:
  void SetUp() override { tuner::reset(); }
  void TearDown() override {
    op2::finalize();
    tuner::reset();
  }

  config tuned_config(tuner_mode mode = tuner_mode::on) {
    auto cfg = make_config("hpx_foreach", 2, 16);
    cfg.tuner = mode;
    return cfg;
  }
};

// ---------------------------------------------------------------------
// Keys and registry identity.
// ---------------------------------------------------------------------

TEST(TunerKeys, SizeBucketIsFloorLog2) {
  EXPECT_EQ(tuner::size_bucket(0), 0u);
  EXPECT_EQ(tuner::size_bucket(1), 0u);
  EXPECT_EQ(tuner::size_bucket(2), 1u);
  EXPECT_EQ(tuner::size_bucket(3), 1u);
  EXPECT_EQ(tuner::size_bucket(4), 2u);
  EXPECT_EQ(tuner::size_bucket(1023), 9u);
  EXPECT_EQ(tuner::size_bucket(1024), 10u);
}

TEST_F(TunerTest, AcquireIsKeyedOnLoopAndSizeBucket) {
  op2::init(tuned_config());
  const auto a = tuner::acquire("loop_a", 1000);
  EXPECT_EQ(a.get(), tuner::acquire("loop_a", 1000).get());
  // Same bucket (within 2x): the calibration is shared.
  EXPECT_EQ(a.get(), tuner::acquire("loop_a", 513).get());
  // A refined mesh (different bucket) and a different loop are not.
  EXPECT_NE(a.get(), tuner::acquire("loop_a", 5000).get());
  EXPECT_NE(a.get(), tuner::acquire("loop_b", 1000).get());
}

// ---------------------------------------------------------------------
// Applicability.
// ---------------------------------------------------------------------

TEST_F(TunerTest, AutoChunkedHonoringBackendGetsTuned) {
  op2::init(tuned_config());
  auto m = make_line(64);
  loop_handle h;
  run_loop(m, h, "tuned_loop", 4);
  const auto e = entry_of("tuned_loop");
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->backend, "hpx_foreach");
  EXPECT_EQ(e->threads, 2u);
  EXPECT_GE(e->total_feeds, 4u);
}

TEST_F(TunerTest, TunerOffLeavesLoopsUntuned) {
  op2::init(tuned_config(tuner_mode::off));
  auto m = make_line(64);
  loop_handle h;
  run_loop(m, h, "untuned_off", 4);
  EXPECT_FALSE(entry_of("untuned_off").has_value());
}

TEST_F(TunerTest, SeqBackendNeverTuned) {
  auto cfg = make_config("seq", 1, 16);
  cfg.tuner = tuner_mode::on;
  op2::init(cfg);
  auto m = make_line(64);
  loop_handle h;
  run_loop(m, h, "untuned_seq", 4);
  EXPECT_FALSE(entry_of("untuned_seq").has_value());
}

TEST_F(TunerTest, ExplicitStaticChunkDisablesTuning) {
  auto cfg = make_config("hpx_foreach", 2, 16, /*static_chunk=*/8);
  cfg.tuner = tuner_mode::on;
  op2::init(cfg);
  auto m = make_line(64);
  loop_handle h;
  run_loop(m, h, "untuned_static", 4);
  EXPECT_FALSE(entry_of("untuned_static").has_value());
}

TEST_F(TunerTest, ExplicitChunkerStringsGateTheTuner) {
  for (const char* chunker : {"static:8", "dynamic:4", "guided:2"}) {
    tuner::reset();
    auto cfg = tuned_config();
    cfg.chunker = chunker;
    op2::init(cfg);
    auto m = make_line(64);
    loop_handle h;
    run_loop(m, h, "gated_loop", 2);
    EXPECT_FALSE(entry_of("gated_loop").has_value()) << chunker;
    op2::finalize();
  }
  // "adaptive" is a direct request for the tuner; "auto" is its default
  // replacement target.
  for (const char* chunker : {"adaptive", "auto"}) {
    tuner::reset();
    auto cfg = tuned_config();
    cfg.chunker = chunker;
    op2::init(cfg);
    auto m = make_line(64);
    loop_handle h;
    run_loop(m, h, "opted_in", 2);
    EXPECT_TRUE(entry_of("opted_in").has_value()) << chunker;
    op2::finalize();
  }
}

TEST_F(TunerTest, FreezeModePinsControllers) {
  op2::init(tuned_config(tuner_mode::freeze));
  auto m = make_line(64);
  loop_handle h;
  run_loop(m, h, "frozen_loop", 6);
  const auto e = entry_of("frozen_loop");
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->state, ctl_state::frozen);
  EXPECT_EQ(e->total_probe_feeds, 0u);  // feeds flow, exploration doesn't
  EXPECT_GE(e->total_feeds, 6u);
}

// ---------------------------------------------------------------------
// Environment knobs.
// ---------------------------------------------------------------------

TEST(TunerEnv, Op2TunerKnobParses) {
  ::setenv("OP2_TUNER", "off", 1);
  op2::init(make_config("seq", 1));
  EXPECT_EQ(current_config().tuner, tuner_mode::off);
  ::setenv("OP2_TUNER", "freeze", 1);
  op2::init(make_config("seq", 1));
  EXPECT_EQ(current_config().tuner, tuner_mode::freeze);
  ::setenv("OP2_TUNER", "on", 1);
  op2::init(make_config("seq", 1));
  EXPECT_EQ(current_config().tuner, tuner_mode::on);
  ::setenv("OP2_TUNER", "sometimes", 1);
  EXPECT_THROW(op2::init(make_config("seq", 1)), std::invalid_argument);
  ::unsetenv("OP2_TUNER");
  op2::finalize();
}

TEST(TunerEnv, Op2TunerCacheAndChunkKnobs) {
  ::setenv("OP2_TUNER_CACHE", "/tmp/op2_tuner_env_knob.txt", 1);
  ::setenv("OP2_CHUNK", "static:8", 1);
  op2::init(make_config("seq", 1));
  EXPECT_EQ(current_config().tuner_cache, "/tmp/op2_tuner_env_knob.txt");
  EXPECT_EQ(current_config().chunker, "static:8");
  ::unsetenv("OP2_TUNER_CACHE");
  // An invalid chunk grammar fails at init, not at first launch.
  ::setenv("OP2_CHUNK", "bogus", 1);
  EXPECT_THROW(op2::init(make_config("seq", 1)), std::invalid_argument);
  ::setenv("OP2_CHUNK", "static:x", 1);
  EXPECT_THROW(op2::init(make_config("seq", 1)), std::invalid_argument);
  ::unsetenv("OP2_CHUNK");
  op2::finalize();
  std::remove("/tmp/op2_tuner_env_knob.txt");
}

// ---------------------------------------------------------------------
// op_timing_output integration.
// ---------------------------------------------------------------------

TEST_F(TunerTest, ProfilingRecordsChunkAndTunerState) {
  op2::init(tuned_config());
  profiling::reset();
  profiling::enable(true);
  auto m = make_line(64);
  loop_handle h;
  run_loop(m, h, "profiled_tuned", 4);
  const auto p = profile_of("profiled_tuned");
  EXPECT_GT(p.chunk_chosen, 0u);
  EXPECT_FALSE(p.tuner_state.empty());

  std::ostringstream table;
  profiling::report(table);
  EXPECT_NE(table.str().find("chunk_chosen"), std::string::npos);
  EXPECT_NE(table.str().find("tuner_state"), std::string::npos);
  profiling::enable(false);
  profiling::reset();
}

TEST_F(TunerTest, UntunedLoopShowsDashColumns) {
  op2::init(tuned_config(tuner_mode::off));
  profiling::reset();
  profiling::enable(true);
  auto m = make_line(64);
  loop_handle h;
  run_loop(m, h, "profiled_untuned", 4);
  const auto p = profile_of("profiled_untuned");
  EXPECT_EQ(p.chunk_chosen, 0u);
  EXPECT_TRUE(p.tuner_state.empty());
  profiling::enable(false);
  profiling::reset();
}

// ---------------------------------------------------------------------
// Calibration cache.
// ---------------------------------------------------------------------

TEST(TunerCache, LoadRejectsMissingAndMismatchedFiles) {
  EXPECT_FALSE(tuner::load_cache("/nonexistent/op2_tuner_cache.txt"));
  const std::string path =
      (std::filesystem::temp_directory_path() / "op2_tuner_badmagic.txt")
          .string();
  {
    std::ofstream out(path, std::ios::trunc);
    out << "notop2tuner 1\nl b 2 6 4\n";
  }
  EXPECT_FALSE(tuner::load_cache(path));
  {
    std::ofstream out(path, std::ios::trunc);
    out << "op2tuner 999\nl b 2 6 4\n";
  }
  EXPECT_FALSE(tuner::load_cache(path));
  std::remove(path.c_str());
}

TEST_F(TunerTest, CacheRoundTripWarmRunDoesZeroExploration) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "op2_tuner_roundtrip.txt")
          .string();
  std::remove(path.c_str());

  // --- first "process": explore, converge, persist -------------------
  auto cfg = tuned_config();
  cfg.tuner_cache = path;
  op2::init(cfg);
  {
    auto m = make_line(64);
    loop_handle h;
    run_loop(m, h, "cache_rt", 3);
    // Drive the controller to convergence deterministically: the hard
    // probe bound guarantees it locks within max_probe_feeds feeds.
    auto ctl = tuner::acquire("cache_rt", 64);
    for (int i = 0; i < 64 && ctl->current_state() != ctl_state::converged;
         ++i) {
      ctl->feed(1.0);
    }
    ASSERT_EQ(ctl->current_state(), ctl_state::converged);
    EXPECT_GT(ctl->total_probe_feeds(), 0u);  // this run DID explore
  }
  op2::finalize();  // saves the cache before the epoch-bump reprobe

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "finalize did not write " << path;
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "op2tuner 1");
  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(body.find("cache_rt hpx_foreach 2 6 "), std::string::npos)
      << body;

  // --- second "process": warm start, zero exploration -----------------
  tuner::reset();
  op2::init(cfg);  // loads the cache
  profiling::reset();
  profiling::enable(true);
  {
    auto m = make_line(64);
    loop_handle h;
    run_loop(m, h, "cache_rt", 3);
  }
  const auto e = entry_of("cache_rt");
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(e->cache_seeded);
  EXPECT_EQ(e->state, ctl_state::converged);
  EXPECT_EQ(e->total_probe_feeds, 0u);  // zero probe/exploration replays
  EXPECT_GE(e->total_feeds, 3u);        // drift watch still fed
  // The profiling columns agree: the loop ran converged from replay one.
  const auto p = profile_of("cache_rt");
  EXPECT_EQ(p.tuner_state, "converged");
  EXPECT_GT(p.chunk_chosen, 0u);
  profiling::enable(false);
  profiling::reset();
  std::remove(path.c_str());
}

}  // namespace
