// collect_write_targets builds the rollback snapshot's region list.
// Deduplication must key on (base pointer, extent) keeping the widest
// span — deduplicating on the base pointer alone let a narrow argument
// (e.g. a global reduction aliasing a dat's first element) shadow the
// dat's full storage out of the snapshot, so a rollback after a failed
// attempt restored only the first few bytes.
#include <gtest/gtest.h>

#include "op2/op2.hpp"

namespace {

using op2::OP_ID;
using op2::OP_INC;
using op2::OP_READ;
using op2::OP_WRITE;

TEST(WriteTargets, SameDatViaTwoMapIndicesCollapsesToOne) {
  auto cells = op2::op_decl_set(4, "cells");
  auto edges = op2::op_decl_set(4, "edges");
  const std::vector<int> table{0, 1, 1, 2, 2, 3, 3, 0};
  auto pe = op2::op_decl_map(edges, cells, 2,
                             std::span<const int>(table), "pe");
  auto d = op2::op_decl_dat<double>(cells, 2, "double", "d");

  auto frame = op2::detail::make_frame(
      "two_idx", edges, [](double*, double*) {},
      op2::op_arg_dat<double>(d, 0, pe, 2, OP_INC),
      op2::op_arg_dat<double>(d, 1, pe, 2, OP_INC));
  const auto targets = op2::detail::collect_write_targets(*frame);
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(targets[0].bytes, d.raw_bytes().size());
}

TEST(WriteTargets, NarrowGlobalAliasingDatBaseKeepsWidestSpan) {
  auto cells = op2::op_decl_set(8, "cells");
  auto d = op2::op_decl_dat<double>(cells, 2, "double", "d");
  double* aliased = d.data<double>().data();

  // Narrow argument FIRST: the old base-pointer-only dedup kept the
  // 8-byte global and silently dropped the dat's 128-byte storage.
  auto frame = op2::detail::make_frame(
      "alias_narrow_first", cells, [](double*, double*) {},
      op2::op_arg_gbl<double>(aliased, 1, OP_INC),
      op2::op_arg_dat<double>(d, -1, OP_ID, 2, OP_WRITE));
  const auto targets = op2::detail::collect_write_targets(*frame);
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(targets[0].bytes, d.raw_bytes().size());
  EXPECT_EQ(static_cast<const void*>(targets[0].data),
            static_cast<const void*>(aliased));
}

TEST(WriteTargets, WideFirstIsNotNarrowedByLaterAlias) {
  auto cells = op2::op_decl_set(8, "cells");
  auto d = op2::op_decl_dat<double>(cells, 2, "double", "d");
  double* aliased = d.data<double>().data();

  auto frame = op2::detail::make_frame(
      "alias_wide_first", cells, [](double*, double*) {},
      op2::op_arg_dat<double>(d, -1, OP_ID, 2, OP_WRITE),
      op2::op_arg_gbl<double>(aliased, 1, OP_INC));
  const auto targets = op2::detail::collect_write_targets(*frame);
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(targets[0].bytes, d.raw_bytes().size());
}

TEST(WriteTargets, DistinctRegionsStaySeparateAndReadsAreSkipped) {
  auto cells = op2::op_decl_set(4, "cells");
  auto d1 = op2::op_decl_dat<double>(cells, 1, "double", "d1");
  auto d2 = op2::op_decl_dat<double>(cells, 1, "double", "d2");
  double g = 0.0;

  auto frame = op2::detail::make_frame(
      "distinct", cells, [](double*, double*, double*) {},
      op2::op_arg_dat<double>(d1, -1, OP_ID, 1, OP_READ),
      op2::op_arg_dat<double>(d2, -1, OP_ID, 1, OP_WRITE),
      op2::op_arg_gbl<double>(&g, 1, OP_INC));
  const auto targets = op2::detail::collect_write_targets(*frame);
  ASSERT_EQ(targets.size(), 2u);  // d1 is read-only: not snapshotted
  EXPECT_EQ(targets[0].name, "d2");
  EXPECT_EQ(targets[1].name, "<global>");
  EXPECT_EQ(targets[1].bytes, sizeof(double));
}

}  // namespace
