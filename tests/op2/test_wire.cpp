// The reliable halo-exchange wire (`ctest -L wire`): frame codec and
// CRC integrity (every single-bit flip detected), the OP2_WIRE_FAULT
// chaos grammar and its deterministic injection, the ack/retransmit
// protocol's state machine edges (heal, budget edge, link death with a
// structured exchange_error), and the full stack under the exchanger —
// including the sharded Airfoil bit-exactness matrix under drop / dup
// / reorder / corrupt, and the kill-a-link run that heals via the job
// service's retry while a bystander tenant stays bit-identical.  The
// WireStress suite is additionally run under ThreadSanitizer by
// scripts/check.sh.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "airfoil/airfoil.hpp"
#include "hpxlite/hpxlite.hpp"
#include "op2/exchange.hpp"
#include "op2/op2.hpp"
#include "op2/shard.hpp"
#include "op2/wire.hpp"

namespace {

namespace w = op2::wire;

std::span<const std::byte> as_bytes(const std::vector<double>& v) {
  return {reinterpret_cast<const std::byte*>(v.data()),
          v.size() * sizeof(double)};
}

std::vector<std::byte> make_payload(std::size_t n, unsigned seed) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>((seed + 31 * i) & 0xFF);
  }
  return out;
}

// --- frame codec ------------------------------------------------------

TEST(WireFrame, RoundTripsHeaderAndPayload) {
  const auto payload = make_payload(40, 7);
  const auto frame = w::encode_frame(w::frame_type::data, 3, 17, 42, payload);
  ASSERT_EQ(frame.size(), w::kFrameHeaderBytes + payload.size());
  const auto f = w::decode_frame(frame);
  ASSERT_EQ(f.status, w::decode_status::ok);
  EXPECT_EQ(f.type, w::frame_type::data);
  EXPECT_EQ(f.link, 3u);
  EXPECT_EQ(f.round, 17u);
  EXPECT_EQ(f.seq, 42u);
  ASSERT_EQ(f.payload.size(), payload.size());
  EXPECT_EQ(std::memcmp(f.payload.data(), payload.data(), payload.size()), 0);
}

TEST(WireFrame, EmptyAckRoundTrips) {
  const auto frame = w::encode_frame(w::frame_type::ack, 1, 0, 9, {});
  const auto f = w::decode_frame(frame);
  ASSERT_EQ(f.status, w::decode_status::ok);
  EXPECT_EQ(f.type, w::frame_type::ack);
  EXPECT_EQ(f.seq, 9u);
  EXPECT_TRUE(f.payload.empty());
}

TEST(WireFrame, Crc32cMatchesTheKnownVector) {
  // The classic CRC32C check value for the ASCII digits "123456789".
  const char* digits = "123456789";
  EXPECT_EQ(w::crc32c({reinterpret_cast<const std::byte*>(digits), 9}),
            0xE3069283u);
}

TEST(WireFrame, EverySingleBitFlipIsDetected) {
  const auto payload = make_payload(12, 3);
  auto frame = w::encode_frame(w::frame_type::data, 0, 1, 1, payload);
  ASSERT_EQ(w::decode_frame(frame).status, w::decode_status::ok);
  for (std::size_t bit = 0; bit < frame.size() * 8; ++bit) {
    frame[bit / 8] ^= static_cast<std::byte>(1U << (bit % 8));
    EXPECT_NE(w::decode_frame(frame).status, w::decode_status::ok)
        << "flip of bit " << bit << " went undetected";
    frame[bit / 8] ^= static_cast<std::byte>(1U << (bit % 8));
  }
  EXPECT_EQ(w::decode_frame(frame).status, w::decode_status::ok);
}

TEST(WireFrame, MalformedBuffersAreRejectedWithAReason) {
  const auto frame = w::encode_frame(w::frame_type::data, 0, 1, 1,
                                     make_payload(8, 1));
  // Shorter than the header.
  std::vector<std::byte> runt(frame.begin(),
                              frame.begin() + w::kFrameHeaderBytes - 1);
  EXPECT_EQ(w::decode_frame(runt).status, w::decode_status::truncated);
  // Wrong magic.
  auto foreign = frame;
  foreign[0] = static_cast<std::byte>(0x00);
  EXPECT_EQ(w::decode_frame(foreign).status, w::decode_status::bad_magic);
  // Trailing junk disagrees with payload_len before the CRC is tried.
  auto grown = frame;
  grown.push_back(static_cast<std::byte>(0xAB));
  EXPECT_EQ(w::decode_frame(grown).status, w::decode_status::bad_length);
}

// --- OP2_WIRE_FAULT grammar -------------------------------------------

TEST(WireFaultGrammar, ParsesADirectedLinkWithDefaults) {
  const auto specs = w::parse_wire_fault_specs("link=0->1:drop");
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].from, 0);
  EXPECT_EQ(specs[0].to, 1);
  EXPECT_EQ(specs[0].kind, w::wire_fault_kind::drop);
  EXPECT_EQ(specs[0].at, 1);
  EXPECT_EQ(specs[0].count, 1);
  EXPECT_EQ(specs[0].seed, 12345u);
}

TEST(WireFaultGrammar, ParsesOptionsAndWildcards) {
  const auto specs = w::parse_wire_fault_specs(
      "link=*:corrupt:prob=0.25,seed=7,count=-1");
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].from, -1);
  EXPECT_EQ(specs[0].to, -1);
  EXPECT_EQ(specs[0].kind, w::wire_fault_kind::corrupt);
  EXPECT_EQ(specs[0].at, 0);  // prob mode
  EXPECT_DOUBLE_EQ(specs[0].probability, 0.25);
  EXPECT_EQ(specs[0].seed, 7u);
  EXPECT_EQ(specs[0].count, -1);

  const auto stall = w::parse_wire_fault_specs("link=2->0:stall:stall_ms=5");
  ASSERT_EQ(stall.size(), 1u);
  EXPECT_EQ(stall[0].kind, w::wire_fault_kind::stall);
  EXPECT_EQ(stall[0].stall_ms, 5);
}

TEST(WireFaultGrammar, SplitsOnSemicolonAndOnCommaBeforeLink) {
  // The comma inside "prob=0.05,seed=42" is an option separator; the
  // comma right before "link=" separates whole specs.
  const auto specs = w::parse_wire_fault_specs(
      "link=0->1:drop:prob=0.05,seed=42,link=1->0:dup;link=*:stall");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].kind, w::wire_fault_kind::drop);
  EXPECT_DOUBLE_EQ(specs[0].probability, 0.05);
  EXPECT_EQ(specs[0].seed, 42u);
  EXPECT_EQ(specs[1].from, 1);
  EXPECT_EQ(specs[1].kind, w::wire_fault_kind::duplicate);
  EXPECT_EQ(specs[2].from, -1);
  EXPECT_EQ(specs[2].kind, w::wire_fault_kind::stall);
}

TEST(WireFaultGrammar, RejectsMalformedSpecsWithTheGrammar) {
  for (const char* bad :
       {"drop", "link=0->1", "link=0->1:melt", "link=0:drop",
        "link=0->1:drop:prob=2", "link=0->1:drop:at=0",
        "link=0->1:drop:count=0", "link=0->1:drop:wat=1", ""}) {
    EXPECT_THROW(w::parse_wire_fault_specs(bad), std::invalid_argument)
        << "'" << bad << "' should not parse";
  }
}

// --- shm_wire ---------------------------------------------------------

TEST(ShmWire, DeliversPromptFramesInSendOrder) {
  w::shm_wire wire;
  wire.send(0, make_payload(4, 1), std::chrono::microseconds{0});
  wire.send(0, make_payload(4, 2), std::chrono::microseconds{0});
  std::vector<std::byte> got;
  ASSERT_TRUE(wire.recv(got, std::chrono::milliseconds(100)));
  EXPECT_EQ(got, make_payload(4, 1));
  ASSERT_TRUE(wire.recv(got, std::chrono::milliseconds(100)));
  EXPECT_EQ(got, make_payload(4, 2));
  EXPECT_FALSE(wire.recv(got, std::chrono::milliseconds(5)));
}

TEST(ShmWire, DelayedFrameDoesNotBlockFramesBehindIt) {
  // The delayed frame arrives late — i.e. the wire reorders, exactly
  // what the reliability protocol must absorb.
  w::shm_wire wire;
  wire.send(0, make_payload(4, 1), std::chrono::milliseconds(60));
  wire.send(0, make_payload(4, 2), std::chrono::microseconds{0});
  std::vector<std::byte> got;
  ASSERT_TRUE(wire.recv(got, std::chrono::milliseconds(10)));
  EXPECT_EQ(got, make_payload(4, 2));
  ASSERT_TRUE(wire.recv(got, std::chrono::milliseconds(500)));
  EXPECT_EQ(got, make_payload(4, 1));
}

TEST(ShmWire, CloseWakesABlockedRecv) {
  w::shm_wire wire;
  std::atomic<bool> returned{false};
  std::thread receiver([&] {
    std::vector<std::byte> got;
    EXPECT_FALSE(wire.recv(got, std::chrono::seconds(30)));
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  wire.close();
  receiver.join();
  EXPECT_TRUE(returned.load());
  EXPECT_TRUE(wire.closed());
}

// --- chaos_transport --------------------------------------------------

/// A chaos_transport over a fresh shm_wire with link 0 mapped 0->1.
struct chaos_rig {
  std::shared_ptr<w::shm_wire> inner = std::make_shared<w::shm_wire>();
  std::shared_ptr<w::chaos_state> state;
  std::unique_ptr<w::chaos_transport> chaos;

  explicit chaos_rig(const std::string& spec)
      : state(std::make_shared<w::chaos_state>(
            w::parse_wire_fault_specs(spec))) {
    chaos = std::make_unique<w::chaos_transport>(inner, state);
    chaos->map_link(0, 0, 1);
  }

  void send_data(std::uint64_t seq) {
    const auto frame = w::encode_frame(w::frame_type::data, 0, 1, seq,
                                       make_payload(8, unsigned(seq)));
    chaos->send(0, frame, std::chrono::microseconds{0});
  }

  /// Receives one frame and returns its seq (or -1 on timeout).
  long long recv_seq(int timeout_ms = 100) {
    std::vector<std::byte> buf;
    if (!inner->recv(buf, std::chrono::milliseconds(timeout_ms))) {
      return -1;
    }
    const auto f = w::decode_frame(buf);
    return f.status == w::decode_status::ok
               ? static_cast<long long>(f.seq)
               : -2;  // delivered but mangled
  }
};

TEST(WireChaos, DecisionsAreDeterministicForAFixedSeed) {
  const auto specs =
      w::parse_wire_fault_specs("link=0->1:drop:prob=0.5,seed=99,count=-1");
  w::chaos_state a(specs);
  w::chaos_state b(specs);
  int fired_a = 0;
  for (int i = 0; i < 64; ++i) {
    const auto da = a.decide(0, 1);
    const auto db = b.decide(0, 1);
    EXPECT_EQ(da.kind, db.kind) << "frame " << i;
    fired_a += da.kind != w::wire_fault_kind::none;
  }
  EXPECT_EQ(a.fired(), b.fired());
  EXPECT_EQ(a.fired(), fired_a);
  EXPECT_GT(fired_a, 0);
  EXPECT_LT(fired_a, 64);
}

TEST(WireChaos, DropEatsExactlyTheTargetedFrame) {
  chaos_rig rig("link=0->1:drop:at=1");
  rig.send_data(1);
  EXPECT_EQ(rig.recv_seq(10), -1);  // eaten
  rig.send_data(2);
  EXPECT_EQ(rig.recv_seq(), 2);  // budget spent, passes
  EXPECT_EQ(rig.state->fired(), 1);
}

TEST(WireChaos, DuplicateDeliversTheFrameTwice) {
  chaos_rig rig("link=0->1:dup:at=1");
  rig.send_data(1);
  EXPECT_EQ(rig.recv_seq(), 1);
  EXPECT_EQ(rig.recv_seq(), 1);
  EXPECT_EQ(rig.recv_seq(10), -1);
}

TEST(WireChaos, CorruptFlipsOneBitTheDecoderCatches) {
  chaos_rig rig("link=0->1:corrupt:at=1");
  rig.send_data(1);
  EXPECT_EQ(rig.recv_seq(), -2);  // delivered but fails decode
}

TEST(WireChaos, ReorderSwapsTheFrameWithItsSuccessor) {
  chaos_rig rig("link=0->1:reorder:at=1");
  rig.send_data(1);  // pocketed
  EXPECT_EQ(rig.recv_seq(10), -1);
  rig.send_data(2);  // clean send releases the pocket behind it
  EXPECT_EQ(rig.recv_seq(), 2);
  EXPECT_EQ(rig.recv_seq(), 1);
}

TEST(WireChaos, StallDelaysDeliveryWithoutBlockingTheSender) {
  chaos_rig rig("link=0->1:stall:at=1,stall_ms=60");
  const auto t0 = std::chrono::steady_clock::now();
  rig.send_data(1);
  const auto send_cost = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(send_cost, std::chrono::milliseconds(50));  // sender not stalled
  EXPECT_EQ(rig.recv_seq(5), -1);                       // not yet visible
  EXPECT_EQ(rig.recv_seq(1000), 1);                     // ... then it is
}

TEST(WireChaos, AcksMatchTheReverseDirectionOfTheirLink) {
  // The spec targets 1->0 — the direction acks for link 0 (0->1)
  // travel.  Data frames must pass; the first ack must be eaten.
  chaos_rig rig("link=1->0:drop:at=1");
  rig.send_data(1);
  EXPECT_EQ(rig.recv_seq(), 1);
  const auto ack = w::encode_frame(w::frame_type::ack, 0, 0, 1, {});
  rig.chaos->send(0, ack, std::chrono::microseconds{0});
  EXPECT_EQ(rig.recv_seq(10), -1);
  EXPECT_EQ(rig.state->fired(), 1);
}

TEST(WireChaos, InjectorBudgetIsSharedAcrossTransportInstances) {
  // The process-wide injector publishes ONE chaos_state: a transport
  // built later (a job retry's rebuilt exchanger) finds the `count`
  // budget already spent and runs clean.
  w::wire_fault_injector::configure("link=0->1:drop:at=1");
  auto inner = std::make_shared<w::shm_wire>();
  {
    w::chaos_transport first(inner, w::wire_fault_injector::state());
    first.map_link(0, 0, 1);
    first.send(0, w::encode_frame(w::frame_type::data, 0, 1, 1, {}),
               std::chrono::microseconds{0});
    std::vector<std::byte> buf;
    EXPECT_FALSE(inner->recv(buf, std::chrono::milliseconds(10)));
  }
  {
    w::chaos_transport second(inner, w::wire_fault_injector::state());
    second.map_link(0, 0, 1);
    second.send(0, w::encode_frame(w::frame_type::data, 0, 1, 2, {}),
                std::chrono::microseconds{0});
    std::vector<std::byte> buf;
    EXPECT_TRUE(inner->recv(buf, std::chrono::milliseconds(100)));
  }
  EXPECT_EQ(w::wire_fault_injector::fired_count(), 1);
  w::wire_fault_injector::clear();
  EXPECT_FALSE(w::wire_fault_injector::active());
}

// --- reliable_transport -----------------------------------------------

/// reliable_transport over an optionally-chaotic shm_wire, one link
/// mapped 0->1.  The transport is its own peer: frames published on
/// link 0 loop back through the shared wire into its pump.
struct reliable_rig {
  std::shared_ptr<w::datagram_wire> wire;
  std::unique_ptr<op2::reliable_transport> rel;

  explicit reliable_rig(const std::string& chaos_spec = "",
                        int timeout_ms = 10, int retries = 5) {
    wire = std::make_shared<w::shm_wire>();
    if (!chaos_spec.empty()) {
      auto chaos = std::make_shared<w::chaos_transport>(
          wire, w::parse_wire_fault_specs(chaos_spec));
      chaos->map_link(0, 0, 1);
      wire = chaos;
    }
    op2::reliable_options opts;
    opts.timeout_ms = timeout_ms;
    opts.retries = retries;
    rel = std::make_unique<op2::reliable_transport>(wire, 1, opts);
    rel->map_link(0, 0, 1);
  }

  void publish_round(std::uint64_t round) {
    const std::vector<double> payload = {double(round), -double(round)};
    rel->publish(0, round, as_bytes(payload));
  }

  void expect_round(std::uint64_t round) {
    std::vector<double> got(2, 0.0);
    rel->consume(0, round,
                 {reinterpret_cast<std::byte*>(got.data()),
                  got.size() * sizeof(double)});
    EXPECT_EQ(got[0], double(round));
    EXPECT_EQ(got[1], -double(round));
  }
};

TEST(ReliableTransport, DeliversRoundsInOrderOnACleanWire) {
  reliable_rig rig;
  for (std::uint64_t r = 1; r <= 5; ++r) {
    rig.publish_round(r);
  }
  for (std::uint64_t r = 1; r <= 5; ++r) {
    rig.expect_round(r);
  }
  const auto s = rig.rel->wire_stats();
  EXPECT_EQ(s.frames_sent, 5u);
  EXPECT_EQ(s.frames_received, 5u);
  EXPECT_EQ(s.dup_dropped, 0u);
  EXPECT_EQ(s.corrupt_dropped, 0u);
  EXPECT_EQ(s.dead_links, 0u);
}

TEST(ReliableTransport, HealsADroppedFrameByRetransmitting) {
  reliable_rig rig("link=0->1:drop:at=1");
  rig.publish_round(1);
  rig.expect_round(1);
  const auto s = rig.rel->wire_stats();
  EXPECT_GE(s.retransmits, 1u);
  EXPECT_GE(s.timeouts, 1u);
  EXPECT_FALSE(rig.rel->link_dead(0));
}

TEST(ReliableTransport, SurvivesExactlyTheRetransmitBudgetEdge) {
  // The first three transmissions (original + 2 retransmits) are
  // dropped; the budget allows 1 + retries = 6, so the 4th attempt
  // lands and the link stays alive with exactly 3 retransmits.
  reliable_rig rig("link=0->1:drop:at=1,count=3", /*timeout_ms=*/5,
                   /*retries=*/5);
  rig.publish_round(1);
  rig.expect_round(1);
  const auto s = rig.rel->link_wire_stats(0);
  EXPECT_EQ(s.retransmits, 3u);
  EXPECT_EQ(s.timeouts, 3u);
  EXPECT_EQ(s.dead_links, 0u);
  EXPECT_FALSE(rig.rel->link_dead(0));
}

TEST(ReliableTransport, DropsDuplicatesExactlyOnceDelivery) {
  reliable_rig rig("link=0->1:dup:at=1");
  rig.publish_round(1);
  rig.expect_round(1);
  // Both copies arrive; the second is discarded and re-acked.  consume
  // only needs the first copy, so give the pump a moment to ingest the
  // duplicate before reading the counters.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (rig.rel->wire_stats().frames_received < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto s = rig.rel->wire_stats();
  EXPECT_EQ(s.frames_received, 2u);
  EXPECT_EQ(s.dup_dropped, 1u);
}

TEST(ReliableTransport, RejectsACorruptFrameAndHealsIt) {
  reliable_rig rig("link=0->1:corrupt:at=1");
  rig.publish_round(1);
  rig.expect_round(1);
  const auto s = rig.rel->wire_stats();
  EXPECT_GE(s.corrupt_dropped, 1u);  // the bent copy never delivered
  EXPECT_GE(s.retransmits, 1u);      // the clean copy came from a resend
}

TEST(ReliableTransport, ReassemblesReorderedFramesInOrder) {
  reliable_rig rig("link=0->1:reorder:at=1", /*timeout_ms=*/25);
  rig.publish_round(1);  // pocketed behind round 2
  rig.publish_round(2);
  rig.expect_round(1);
  rig.expect_round(2);
  const auto s = rig.rel->wire_stats();
  EXPECT_EQ(s.frames_sent, 2u);
  EXPECT_EQ(s.dup_dropped, 0u);
}

TEST(ReliableTransport, PermanentLossKillsTheLinkWithAStructuredError) {
  reliable_rig rig("link=0->1:drop:at=1,count=-1", /*timeout_ms=*/2,
                   /*retries=*/2);
  rig.publish_round(1);
  try {
    rig.expect_round(1);
    FAIL() << "consume of a black-holed round must throw";
  } catch (const op2::exchange_error& e) {
    EXPECT_EQ(e.link(), 0u);
    EXPECT_EQ(e.from(), 0);
    EXPECT_EQ(e.to(), 1);
    EXPECT_EQ(e.round(), 1u);
    EXPECT_NE(e.reason().find("dead"), std::string::npos) << e.reason();
  }
  EXPECT_TRUE(rig.rel->link_dead(0));
  const auto s = rig.rel->link_wire_stats(0);
  EXPECT_EQ(s.dead_links, 1u);
  EXPECT_GE(s.wire_errors, 1u);
  EXPECT_EQ(s.timeouts, 3u);  // 1 + retries expiries, then death
  // The dead link fails fast on the publish side too.
  EXPECT_THROW(rig.publish_round(2), op2::exchange_error);
}

TEST(ReliableTransport, ConsumeOfANeverPublishedRoundTimesOut) {
  reliable_rig rig("", /*timeout_ms=*/2, /*retries=*/1);
  std::vector<std::byte> out(8);
  try {
    rig.rel->consume(0, 1, out);
    FAIL() << "consume must throw instead of hanging";
  } catch (const op2::exchange_error& e) {
    EXPECT_EQ(e.round(), 1u);
    EXPECT_NE(e.reason().find("timed out"), std::string::npos) << e.reason();
  }
}

TEST(ReliableTransport, ShutdownReleasesABlockedConsume) {
  reliable_rig rig("", /*timeout_ms=*/1000, /*retries=*/5);
  std::atomic<bool> threw{false};
  std::thread consumer([&] {
    std::vector<std::byte> out(8);
    try {
      rig.rel->consume(0, 1, out);
    } catch (const op2::exchange_error&) {
      threw.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(threw.load());
  rig.rel->shutdown();
  consumer.join();
  EXPECT_TRUE(threw.load());
}

// --- the exchanger over the wire stack --------------------------------

using op2::build_halo_partition;
using op2::halo_exchanger;
using op2::halo_partition;
using op2::op_decl_dat;
using op2::op_decl_map;
using op2::op_decl_set;

/// Three shards over a 12-cell ring (the test_exchange fixture): each
/// shard's q lives on its local [owned | halo] layout with dim 2.
struct ring_fixture {
  std::unique_ptr<halo_partition> hp;
  std::vector<op2::op_set> sets;
  std::vector<op2::op_dat> dats;

  ring_fixture() {
    const auto cells = op_decl_set(12, "cells");
    const auto edges = op_decl_set(12, "edges");
    std::vector<int> table;
    for (int i = 0; i < 12; ++i) {
      table.push_back(i);
      table.push_back((i + 1) % 12);
    }
    const auto adj = op_decl_map(edges, cells, 2, table, "adj");
    op2::partitioning parts;
    parts.nparts = 3;
    parts.part_of = {0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2};
    hp = std::make_unique<halo_partition>(
        build_halo_partition(parts, adj, 1));
    for (int s = 0; s < 3; ++s) {
      const auto& sp = hp->shards[static_cast<std::size_t>(s)];
      sets.push_back(op_decl_set(sp.local_count(), "local_cells"));
      const std::vector<double> zero(
          static_cast<std::size_t>(sp.local_count()) * 2, 0.0);
      dats.push_back(op_decl_dat<double>(
          sets.back(), 2, "double", std::span<const double>(zero), "q"));
    }
  }

  void stamp_owned(int round) {
    for (int s = 0; s < 3; ++s) {
      auto q = dats[static_cast<std::size_t>(s)].data<double>();
      const auto& sp = hp->shards[static_cast<std::size_t>(s)];
      for (int l = 0; l < sp.owned_count(); ++l) {
        const int g = sp.global_of(l);
        q[static_cast<std::size_t>(2 * l)] = round * 100.0 + g;
        q[static_cast<std::size_t>(2 * l + 1)] = -static_cast<double>(g);
      }
    }
  }

  void expect_halos(int round) {
    for (int s = 0; s < 3; ++s) {
      const auto q = dats[static_cast<std::size_t>(s)].data<double>();
      const auto& sp = hp->shards[static_cast<std::size_t>(s)];
      for (int l = sp.owned_count(); l < sp.local_count(); ++l) {
        const int g = sp.global_of(l);
        EXPECT_EQ(q[static_cast<std::size_t>(2 * l)], round * 100.0 + g)
            << "shard " << s << " halo cell " << g;
        EXPECT_EQ(q[static_cast<std::size_t>(2 * l + 1)],
                  -static_cast<double>(g));
      }
    }
  }
};

class WireExchanger : public ::testing::Test {
 protected:
  void TearDown() override {
    w::wire_fault_injector::clear();
    op2::profiling::enable(false);
    op2::profiling::reset();
    op2::finalize();
  }
};

TEST_F(WireExchanger, ReliableStackFillsEveryHaloWithoutChaos) {
  auto cfg = op2::make_config("hpx_async", 2);
  cfg.wire = "reliable";  // opt in without any fault configured
  op2::init(cfg);
  ring_fixture f;
  halo_exchanger x(f.hp.get(), f.dats);
  for (int round = 1; round <= 3; ++round) {
    f.stamp_owned(round);
    x.exchange();
    for (int s = 0; s < 3; ++s) {
      x.fence(s).wait();
    }
    f.expect_halos(round);
  }
  const auto s = x.wire_stats();
  EXPECT_GT(s.frames_sent, 0u);  // the framed path actually ran
  EXPECT_EQ(s.retransmits, 0u);
  EXPECT_EQ(s.dead_links, 0u);
}

TEST_F(WireExchanger, ChaosDropHealsInvisiblyAndShowsInProfiling) {
  auto cfg = op2::make_config("hpx_async", 2);
  cfg.wire_timeout_ms = 5;
  op2::init(cfg);
  // Configuring the injector is enough: the exchanger auto-upgrades
  // its default transport to the reliable wire stack.
  w::wire_fault_injector::configure("link=0->1:drop:at=1,count=2");
  op2::profiling::enable(true);
  op2::profiling::reset();
  {
    ring_fixture f;
    halo_exchanger x(f.hp.get(), f.dats);
    for (int round = 1; round <= 3; ++round) {
      f.stamp_owned(round);
      x.exchange();
      for (int s = 0; s < 3; ++s) {
        x.fence(s).wait();
      }
      f.expect_halos(round);
    }
    EXPECT_GE(x.wire_stats().retransmits, 2u);
    EXPECT_EQ(w::wire_fault_injector::fired_count(), 2);
  }  // destruction flushes the wire columns
  const auto shards = op2::profiling::shard_snapshot();
  std::uint64_t retransmits = 0;
  for (const auto& [sid, sp] : shards) {
    retransmits += sp.retransmits;
    EXPECT_EQ(sp.dead_links, 0u) << "shard " << sid;
  }
  EXPECT_GE(retransmits, 2u);
}

TEST_F(WireExchanger, DeadLinkFailsTheFenceWithAStructuredError) {
  auto cfg = op2::make_config("hpx_async", 2);
  cfg.wire_timeout_ms = 2;
  cfg.wire_retries = 1;
  op2::init(cfg);
  w::wire_fault_injector::configure("link=0->1:drop:at=1,count=-1");
  op2::profiling::enable(true);
  op2::profiling::reset();
  {
    ring_fixture f;
    halo_exchanger x(f.hp.get(), f.dats);
    f.stamp_owned(1);
    x.exchange();
    // Shard 1 imports from shard 0 over the black-holed link: its
    // fence must complete WITH the error, not hang.
    try {
      x.fence(1).wait();
      FAIL() << "the dead link's fence must rethrow";
    } catch (const op2::exchange_error& e) {
      EXPECT_EQ(e.from(), 0);
      EXPECT_EQ(e.to(), 1);
      EXPECT_EQ(e.round(), 1u);
    }
    EXPECT_TRUE(x.fence(1).failed());
    // The bystander shards' fences complete normally.
    x.fence(0).wait();
    x.fence(2).wait();
    // A failed fence rethrows on every wait, not just the first.
    EXPECT_THROW(x.fence(1).wait(), op2::exchange_error);
  }  // destruction after a failed round must not hang
  const auto shards = op2::profiling::shard_snapshot();
  ASSERT_TRUE(shards.count(1));
  EXPECT_EQ(shards.at(1).dead_links, 1u);
  EXPECT_GE(shards.at(1).wire_errors, 1u);
}

// --- sharded Airfoil bit-exactness under wire faults ------------------

using airfoil::generate_mesh;
using airfoil::make_sim;
using airfoil::mesh_params;
using airfoil::run_with_backend;

constexpr int kIters = 6;

mesh_params small_mesh() {
  mesh_params p;
  p.imax = 16;
  p.jmax = 8;
  return p;
}

struct field_result {
  std::vector<double> q;
  std::vector<double> rms;
};

field_result run_under(const op2::config& cfg, const std::string& backend) {
  op2::init(cfg);
  auto s = make_sim(generate_mesh(small_mesh()));
  const auto r = run_with_backend(s, kIters, backend);
  field_result out;
  const auto q = s.p_q.data<double>();
  out.q.assign(q.begin(), q.end());
  out.rms = r.rms_history;
  op2::finalize();
  return out;
}

const field_result& seq_reference() {
  static const field_result ref =
      run_under(op2::make_config("seq", 1, 32), "seq");
  return ref;
}

/// q must agree bit-for-bit; rms is a cross-shard sum (reassociated by
/// construction), so it gets a tight NEAR instead.
void expect_matches_seq(const field_result& got, const std::string& what) {
  const auto& ref = seq_reference();
  ASSERT_EQ(got.q.size(), ref.q.size()) << what;
  for (std::size_t i = 0; i < ref.q.size(); ++i) {
    ASSERT_EQ(got.q[i], ref.q[i]) << what << " q entry " << i;
  }
  ASSERT_EQ(got.rms.size(), ref.rms.size()) << what;
  for (std::size_t i = 0; i < ref.rms.size(); ++i) {
    EXPECT_NEAR(got.rms[i], ref.rms[i],
                1e-12 * std::max(1.0, std::fabs(ref.rms[i])))
        << what << " iteration " << i;
  }
}

op2::config shard_config(int nshards) {
  auto cfg = op2::make_config("hpx_shard", 4, 32);
  cfg.shards = nshards;
  return cfg;
}

/// (shard count, fault kind, per-frame probability in percent).
using wire_matrix_param = std::tuple<int, const char*, int>;

class WireMatrix : public ::testing::TestWithParam<wire_matrix_param> {
 protected:
  void TearDown() override {
    w::wire_fault_injector::clear();
    op2::profiling::enable(false);
    op2::profiling::reset();
    op2::finalize();
  }
};

TEST_P(WireMatrix, BitIdenticalToSeqUnderWireFaults) {
  const auto [nshards, kind, percent] = GetParam();
  // The probabilistic spec soaks every link; the at-spec guarantees at
  // least one deterministic firing so the heal path provably ran.
  w::wire_fault_injector::configure(
      std::string("link=*:") + kind + ":prob=0." +
      (percent < 10 ? "0" : "") + std::to_string(percent) +
      ",seed=1234,count=-1;link=*:" + kind + ":at=3,count=1");
  auto cfg = shard_config(nshards);
  cfg.wire_timeout_ms = 10;
  const auto got = run_under(cfg, "hpx_shard");
  EXPECT_GE(w::wire_fault_injector::fired_count(), 1);
  expect_matches_seq(got, std::string("wire/") + kind + "/shards=" +
                              std::to_string(nshards));
}

std::string wire_matrix_name(
    const ::testing::TestParamInfo<wire_matrix_param>& p) {
  return std::string(std::get<1>(p.param)) + "N" +
         std::to_string(std::get<0>(p.param));
}

INSTANTIATE_TEST_SUITE_P(
    FaultKinds, WireMatrix,
    ::testing::Values(wire_matrix_param{2, "drop", 3},
                      wire_matrix_param{4, "drop", 3},
                      wire_matrix_param{2, "dup", 5},
                      wire_matrix_param{4, "dup", 5},
                      wire_matrix_param{2, "reorder", 5},
                      wire_matrix_param{4, "reorder", 5},
                      wire_matrix_param{2, "corrupt", 2},
                      wire_matrix_param{4, "corrupt", 2}),
    wire_matrix_name);

// --- kill-a-link: healed by the job service's retry -------------------

class WireServiceHeal : public ::testing::Test {
 protected:
  void TearDown() override {
    w::wire_fault_injector::clear();
    op2::profiling::enable(false);
    op2::profiling::reset();
    op2::finalize();
  }
};

TEST_F(WireServiceHeal, DeadLinkHealsViaJobRetryAndSparesTheBystander) {
  namespace svc = op2::service;
  auto cfg = shard_config(2);
  cfg.wire_timeout_ms = 2;
  cfg.wire_retries = 2;
  op2::init(cfg);
  // Black-hole BOTH directions with budget 2 * (1 + retries): round
  // 1's two data frames each burn their full retransmit budget (no
  // frame is ever delivered, so no ack traffic competes for the drop
  // budget) and a link dies deterministically — attempt 1 of the
  // victim's job fails with exchange_error.  The spent (or nearly
  // spent) budget makes attempt 2 — a rebuilt exchanger over the same
  // process-wide chaos_state — succeed: any drops left over after the
  // first death tore the run down are absorbed by retransmits.
  w::wire_fault_injector::configure("link=*:drop:at=1,count=6");
  op2::profiling::enable(true);
  op2::profiling::reset();

  std::vector<double> q_victim, q_bystander;
  {
    svc::service_config scfg;
    scfg.workers = 2;
    svc::job_service s(scfg);
    for (const char* name : {"victim", "bystander"}) {
      svc::tenant_options t;
      t.name = name;
      s.register_tenant(t);
    }
    auto run_sharded_job = [](std::vector<double>& q_out) {
      auto sm = make_sim(generate_mesh(small_mesh()));
      run_with_backend(sm, kIters, "hpx_shard");
      const auto q = sm.p_q.data<double>();
      q_out.assign(q.begin(), q.end());
    };
    svc::job_options opts;
    opts.max_attempts = 2;
    opts.backoff_ms = 1;
    auto hv = s.submit(
        "victim", [&](const svc::job_context&) { run_sharded_job(q_victim); },
        opts);
    const auto rv = hv.get();
    EXPECT_EQ(rv.status, svc::job_status::completed);
    EXPECT_EQ(rv.attempts, 2);
    EXPECT_EQ(s.stats("victim").job_retries, 1u);
    // At least one link died (1 + retries drops of its frame) plus the
    // other link's first transmission; at most the full budget burned.
    EXPECT_GE(w::wire_fault_injector::fired_count(), 4);
    EXPECT_LE(w::wire_fault_injector::fired_count(), 6);

    // The bystander runs after the heal: its wire stack shares the
    // chaos_state, whose budget is spent — a clean reliable path.
    auto hb = s.submit("bystander", [&](const svc::job_context&) {
      run_sharded_job(q_bystander);
    });
    EXPECT_EQ(hb.get().status, svc::job_status::completed);
  }

  const auto& ref = seq_reference();
  ASSERT_EQ(q_victim.size(), ref.q.size());
  ASSERT_EQ(q_bystander.size(), ref.q.size());
  for (std::size_t i = 0; i < ref.q.size(); ++i) {
    ASSERT_EQ(q_victim[i], ref.q[i]) << "victim entry " << i;
    ASSERT_EQ(q_bystander[i], ref.q[i]) << "bystander entry " << i;
  }
}

// --- stress (also run under TSan by scripts/check.sh) ----------------

TEST(WireStress, ConcurrentLinksRaceThePumpUnderChaos) {
  // Two links published/consumed from two threads while the pump
  // retransmits through a lossy wire: the protocol's locking showdown.
  auto inner = std::make_shared<w::shm_wire>();
  auto chaos = std::make_shared<w::chaos_transport>(
      inner,
      w::parse_wire_fault_specs("link=*:drop:prob=0.05,seed=77,count=-1"));
  chaos->map_link(0, 0, 1);
  chaos->map_link(1, 1, 0);
  op2::reliable_options opts;
  opts.timeout_ms = 5;
  opts.retries = 10;
  op2::reliable_transport rel(chaos, 2, opts);
  rel.map_link(0, 0, 1);
  rel.map_link(1, 1, 0);

  constexpr int kRounds = 150;
  auto worker = [&](std::size_t link) {
    for (std::uint64_t round = 1; round <= kRounds; ++round) {
      const std::vector<double> payload = {double(link * 1000 + round),
                                           double(round)};
      rel.publish(link, round, as_bytes(payload));
      std::vector<double> got(2, 0.0);
      rel.consume(link, round,
                  {reinterpret_cast<std::byte*>(got.data()),
                   got.size() * sizeof(double)});
      ASSERT_EQ(got[0], double(link * 1000 + round));
      ASSERT_EQ(got[1], double(round));
    }
  };
  std::thread a(worker, 0);
  std::thread b(worker, 1);
  a.join();
  b.join();
  const auto s = rel.wire_stats();
  EXPECT_EQ(s.frames_sent, 2u * kRounds);
  EXPECT_EQ(s.dead_links, 0u);
}

TEST(WireStress, ExchangerRoundsWithConcurrentWaitersUnderChaos) {
  op2::init([] {
    auto cfg = op2::make_config("hpx_async", 4);
    cfg.wire_timeout_ms = 5;
    return cfg;
  }());
  w::wire_fault_injector::configure(
      "link=*:drop:prob=0.04,seed=5,count=-1;"
      "link=*:dup:prob=0.04,seed=6,count=-1");
  {
    ring_fixture f;
    halo_exchanger x(f.hp.get(), f.dats);
    constexpr int kRounds = 40;
    for (int round = 1; round <= kRounds; ++round) {
      f.stamp_owned(round);
      x.exchange();
      std::vector<hpxlite::future<void>> waiters;
      for (int s = 0; s < 3; ++s) {
        for (int wtr = 0; wtr < 2; ++wtr) {
          waiters.push_back(hpxlite::async([&x, s] { x.fence(s).wait(); }));
        }
      }
      for (auto& wtr : waiters) {
        wtr.get();
      }
      f.expect_halos(round);
    }
    EXPECT_EQ(x.rounds(), static_cast<std::uint64_t>(kRounds));
  }
  w::wire_fault_injector::clear();
  op2::finalize();
}

}  // namespace
