// The pluggable halo-exchange layer: shm_transport mailbox semantics
// (double buffering, backpressure, size checking) and halo_exchanger
// end-to-end rounds (pack -> publish -> progress-thread unpack ->
// fence completion).  The ExchangeStress suite is additionally run
// under ThreadSanitizer by scripts/check.sh — it hammers concurrent
// fence waiters against the progress thread across many rounds.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "hpxlite/hpxlite.hpp"
#include "op2/exchange.hpp"
#include "op2/op2.hpp"
#include "op2/shard.hpp"

namespace {

using op2::build_halo_partition;
using op2::halo_exchanger;
using op2::halo_partition;
using op2::op_decl_dat;
using op2::op_decl_map;
using op2::op_decl_set;
using op2::shm_transport;

std::span<const std::byte> as_bytes(const std::vector<double>& v) {
  return {reinterpret_cast<const std::byte*>(v.data()),
          v.size() * sizeof(double)};
}

// --- transport --------------------------------------------------------

TEST(ShmTransport, RoundTripsOnePayload) {
  shm_transport t(1);
  const std::vector<double> in = {1.5, -2.5, 3.25};
  t.publish(0, 1, as_bytes(in));
  std::vector<double> out(3, 0.0);
  t.consume(0, 1,
            {reinterpret_cast<std::byte*>(out.data()),
             out.size() * sizeof(double)});
  EXPECT_EQ(out, in);
}

TEST(ShmTransport, DoubleBufferingAllowsOneRoundInFlight) {
  // Rounds 1 and 2 occupy the two parity slots without a consumer;
  // publishing round 3 must backpressure until round 1 drains.
  shm_transport t(1);
  const std::vector<double> v1 = {1.0};
  const std::vector<double> v2 = {2.0};
  const std::vector<double> v3 = {3.0};
  t.publish(0, 1, as_bytes(v1));
  t.publish(0, 2, as_bytes(v2));

  std::atomic<bool> third_published{false};
  std::thread producer([&] {
    t.publish(0, 3, as_bytes(v3));
    third_published.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_published.load());

  std::vector<double> out(1, 0.0);
  auto out_bytes = std::span<std::byte>(
      reinterpret_cast<std::byte*>(out.data()), sizeof(double));
  t.consume(0, 1, out_bytes);
  EXPECT_EQ(out[0], 1.0);
  producer.join();
  EXPECT_TRUE(third_published.load());
  t.consume(0, 2, out_bytes);
  EXPECT_EQ(out[0], 2.0);
  t.consume(0, 3, out_bytes);
  EXPECT_EQ(out[0], 3.0);
}

TEST(ShmTransport, SizeMismatchThrows) {
  shm_transport t(1);
  const std::vector<double> in = {1.0, 2.0};
  t.publish(0, 1, as_bytes(in));
  std::vector<double> out(1, 0.0);
  EXPECT_THROW(t.consume(0, 1,
                         {reinterpret_cast<std::byte*>(out.data()),
                          sizeof(double)}),
               std::logic_error);
}

// --- halo_exchanger ---------------------------------------------------

/// Three shards over a 12-cell ring (contiguous blocks of 4): each
/// shard's dat lives on its local [owned | halo] layout with dim 2.
struct exchanger_fixture {
  std::unique_ptr<halo_partition> hp;
  std::vector<op2::op_set> sets;
  std::vector<op2::op_dat> dats;

  exchanger_fixture() {
    const auto cells = op_decl_set(12, "cells");
    const auto edges = op_decl_set(12, "edges");
    std::vector<int> table;
    for (int i = 0; i < 12; ++i) {
      table.push_back(i);
      table.push_back((i + 1) % 12);
    }
    const auto adj = op_decl_map(edges, cells, 2, table, "adj");
    op2::partitioning parts;
    parts.nparts = 3;
    parts.part_of = {0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2};
    hp = std::make_unique<halo_partition>(
        build_halo_partition(parts, adj, 1));
    for (int s = 0; s < 3; ++s) {
      const auto& sp = hp->shards[static_cast<std::size_t>(s)];
      sets.push_back(op_decl_set(sp.local_count(), "local_cells"));
      const std::vector<double> zero(
          static_cast<std::size_t>(sp.local_count()) * 2, 0.0);
      dats.push_back(op_decl_dat<double>(
          sets.back(), 2, "double", std::span<const double>(zero), "q"));
    }
  }

  /// Stamps every OWNED row with (round*100 + global id, -global id).
  void stamp_owned(int round) {
    for (int s = 0; s < 3; ++s) {
      auto q = dats[static_cast<std::size_t>(s)].data<double>();
      const auto& sp = hp->shards[static_cast<std::size_t>(s)];
      for (int l = 0; l < sp.owned_count(); ++l) {
        const int g = sp.global_of(l);
        q[static_cast<std::size_t>(2 * l)] = round * 100.0 + g;
        q[static_cast<std::size_t>(2 * l + 1)] = -static_cast<double>(g);
      }
    }
  }

  void expect_halos(int round) {
    for (int s = 0; s < 3; ++s) {
      const auto q = dats[static_cast<std::size_t>(s)].data<double>();
      const auto& sp = hp->shards[static_cast<std::size_t>(s)];
      for (int l = sp.owned_count(); l < sp.local_count(); ++l) {
        const int g = sp.global_of(l);
        EXPECT_EQ(q[static_cast<std::size_t>(2 * l)], round * 100.0 + g)
            << "shard " << s << " halo cell " << g;
        EXPECT_EQ(q[static_cast<std::size_t>(2 * l + 1)],
                  -static_cast<double>(g));
      }
    }
  }
};

class HaloExchangerTest : public ::testing::Test {
 protected:
  void SetUp() override { op2::init(op2::make_config("hpx_async", 2)); }
  void TearDown() override { op2::finalize(); }
};

TEST_F(HaloExchangerTest, OneRoundFillsEveryHalo) {
  exchanger_fixture f;
  halo_exchanger x(f.hp.get(), f.dats);
  f.stamp_owned(1);
  x.exchange();
  for (int s = 0; s < 3; ++s) {
    x.fence(s).wait();
  }
  f.expect_halos(1);
  EXPECT_EQ(x.rounds(), 1u);
}

TEST_F(HaloExchangerTest, RepeatedRoundsTrackTheOwnerState) {
  exchanger_fixture f;
  halo_exchanger x(f.hp.get(), f.dats);
  for (int round = 1; round <= 5; ++round) {
    f.stamp_owned(round);
    x.exchange();
    for (int s = 0; s < 3; ++s) {
      x.fence(s).wait();
    }
    f.expect_halos(round);
  }
  EXPECT_EQ(x.rounds(), 5u);
}

TEST_F(HaloExchangerTest, FencesReportExchangeStats) {
  exchanger_fixture f;
  halo_exchanger x(f.hp.get(), f.dats);
  f.stamp_owned(1);
  x.exchange();
  for (int s = 0; s < 3; ++s) {
    x.fence(s).wait();
    EXPECT_TRUE(x.fence(s).ready());
    EXPECT_GE(x.fence(s).last_exchange_seconds(), 0.0);
    EXPECT_GE(x.fence(s).last_blocked_seconds(), 0.0);
  }
}

TEST_F(HaloExchangerTest, RejectsMismatchedDatFamilies) {
  exchanger_fixture f;
  auto bad = f.dats;
  bad.pop_back();  // one dat per shard is required
  EXPECT_THROW(halo_exchanger(f.hp.get(), bad), std::invalid_argument);
}

// --- stress (also run under TSan by scripts/check.sh) ----------------

TEST(ExchangeStress, ConcurrentWaitersManyRounds) {
  op2::init(op2::make_config("hpx_async", 4));
  {
    exchanger_fixture f;
    halo_exchanger x(f.hp.get(), f.dats);
    constexpr int kRounds = 200;
    for (int round = 1; round <= kRounds; ++round) {
      f.stamp_owned(round);
      x.exchange();
      // Several concurrent waiters per shard, racing the progress
      // thread's unpack + complete and each other.
      std::vector<hpxlite::future<void>> waiters;
      for (int s = 0; s < 3; ++s) {
        for (int w = 0; w < 3; ++w) {
          waiters.push_back(hpxlite::async([&x, s] { x.fence(s).wait(); }));
        }
      }
      for (auto& w : waiters) {
        w.get();
      }
      f.expect_halos(round);
    }
    EXPECT_EQ(x.rounds(), static_cast<std::uint64_t>(kRounds));
  }
  op2::finalize();
}

/// A transport that never delivers: consume blocks until shutdown()
/// and then fails the round — the worst case a lost peer can present.
struct blackhole_transport final : op2::exchange_transport {
  std::mutex m;
  std::condition_variable cv;
  bool down = false;

  void publish(std::size_t, std::uint64_t,
               std::span<const std::byte>) override {}
  void consume(std::size_t link, std::uint64_t round,
               std::span<std::byte>) override {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return down; });
    throw op2::exchange_error(link, -1, -1, round,
                              "blackhole transport shut down");
  }
  void shutdown() override {
    {
      std::lock_guard<std::mutex> lock(m);
      down = true;
    }
    cv.notify_all();
  }
};

TEST(ExchangeStress, ShutdownReleasesATransportThatNeverDelivers) {
  // Regression: destroying the exchanger while the progress thread is
  // blocked in consume() on a round that will never arrive must shut
  // the transport down, fail the fences and join — not hang.
  op2::init(op2::make_config("hpx_async", 2));
  for (int i = 0; i < 10; ++i) {
    exchanger_fixture f;
    halo_exchanger x(f.hp.get(), f.dats,
                     std::make_shared<blackhole_transport>());
    f.stamp_owned(1);
    x.exchange();
  }
  op2::finalize();
}

TEST(ExchangeStress, DestructionMidRoundIsClean) {
  op2::init(op2::make_config("hpx_async", 2));
  for (int i = 0; i < 20; ++i) {
    exchanger_fixture f;
    halo_exchanger x(f.hp.get(), f.dats);
    f.stamp_owned(i);
    x.exchange();
    // No explicit fence wait: the destructor must drain the in-flight
    // round (waiting the fences) before joining the progress thread.
  }
  op2::finalize();
}

}  // namespace
