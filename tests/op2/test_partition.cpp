#include <gtest/gtest.h>

#include <random>
#include <set>
#include <vector>

#include "airfoil/mesh.hpp"
#include "op2/partition.hpp"
#include "op2/renumber.hpp"

namespace {

using namespace op2;

/// Coordinates of a regular w x h grid of points.
std::vector<double> grid_coords(int w, int h) {
  std::vector<double> xy;
  xy.reserve(static_cast<std::size_t>(w) * static_cast<std::size_t>(h) * 2);
  for (int j = 0; j < h; ++j) {
    for (int i = 0; i < w; ++i) {
      xy.push_back(static_cast<double>(i));
      xy.push_back(static_cast<double>(j));
    }
  }
  return xy;
}

TEST(PartitionRcb, CoversAllElementsWithValidParts) {
  const auto xy = grid_coords(16, 16);
  const auto p = partition_rcb(xy, 7);
  EXPECT_EQ(p.nparts, 7);
  EXPECT_EQ(p.size(), 256);
  std::set<int> used;
  for (const int part : p.part_of) {
    ASSERT_GE(part, 0);
    ASSERT_LT(part, 7);
    used.insert(part);
  }
  EXPECT_EQ(used.size(), 7u);  // every part non-empty
}

TEST(PartitionRcb, BalancedForPowersOfTwo) {
  const auto xy = grid_coords(32, 16);  // 512 elements
  for (const int nparts : {2, 4, 8, 16}) {
    const auto p = partition_rcb(xy, nparts);
    EXPECT_LE(imbalance(p), 1.01) << nparts << " parts";
  }
}

TEST(PartitionRcb, ReasonableBalanceForOddCounts) {
  const auto xy = grid_coords(30, 10);  // 300 elements
  for (const int nparts : {3, 5, 7, 9}) {
    const auto p = partition_rcb(xy, nparts);
    EXPECT_LE(imbalance(p), 1.10) << nparts << " parts";
  }
}

TEST(PartitionRcb, SinglePartTrivial) {
  const auto xy = grid_coords(4, 4);
  const auto p = partition_rcb(xy, 1);
  for (const int part : p.part_of) {
    ASSERT_EQ(part, 0);
  }
}

TEST(PartitionRcb, SpatialCoherence) {
  // RCB parts are spatially compact: for a 2-way split of a wide strip,
  // the x coordinate alone must determine the part.
  const auto xy = grid_coords(64, 4);
  const auto p = partition_rcb(xy, 2);
  // Elements with x < 31 all in one part, x > 32 in the other.
  const int left_part = p.part_of[0];
  for (int j = 0; j < 4; ++j) {
    for (int i = 0; i < 30; ++i) {
      ASSERT_EQ(p.part_of[static_cast<std::size_t>(j * 64 + i)], left_part);
    }
    for (int i = 34; i < 64; ++i) {
      ASSERT_NE(p.part_of[static_cast<std::size_t>(j * 64 + i)], left_part);
    }
  }
}

TEST(PartitionRcb, Validation) {
  const auto xy = grid_coords(4, 4);
  EXPECT_THROW(partition_rcb(xy, 0), std::invalid_argument);
  EXPECT_THROW(partition_rcb(xy, 17), std::invalid_argument);
  const std::vector<double> odd{1.0, 2.0, 3.0};
  EXPECT_THROW(partition_rcb(odd, 2), std::invalid_argument);
}

TEST(PartitionBlock, ContiguousAndBalanced) {
  const auto p = partition_block(10, 3);
  EXPECT_EQ(p.part_of, (std::vector<int>{0, 0, 0, 0, 1, 1, 1, 2, 2, 2}));
  EXPECT_LE(imbalance(p), 1.21);
}

TEST(EdgeCut, RcbBeatsRandomOnAirfoilMesh) {
  const auto mesh = airfoil::generate_mesh({40, 10});
  const auto& pecell = mesh.map("pecell");
  const auto& pcell = mesh.map("pcell");
  const auto x = mesh.dat("p_x").data<double>();
  const int ncell = mesh.set("cells").size();

  // Cell centroids drive the geometric partitioner.
  std::vector<double> centroids(static_cast<std::size_t>(ncell) * 2);
  for (int c = 0; c < ncell; ++c) {
    double cx = 0.0;
    double cy = 0.0;
    for (int k = 0; k < 4; ++k) {
      const auto n = static_cast<std::size_t>(pcell.at(c, k));
      cx += 0.25 * x[2 * n];
      cy += 0.25 * x[2 * n + 1];
    }
    centroids[static_cast<std::size_t>(2 * c)] = cx;
    centroids[static_cast<std::size_t>(2 * c + 1)] = cy;
  }
  const auto rcb = partition_rcb(centroids, 8);

  partitioning random_parts;
  random_parts.nparts = 8;
  random_parts.part_of.resize(static_cast<std::size_t>(ncell));
  std::mt19937 rng(99);
  std::uniform_int_distribution<int> pick(0, 7);
  for (auto& p : random_parts.part_of) {
    p = pick(rng);
  }

  const int rcb_cut = edge_cut(pecell, rcb);
  const int random_cut = edge_cut(pecell, random_parts);
  EXPECT_LT(rcb_cut, random_cut / 4);  // geometric locality pays off
  EXPECT_GT(rcb_cut, 0);               // but some edges must cross
}

TEST(EdgeCut, ZeroWhenOnePart) {
  const auto mesh = airfoil::generate_mesh({8, 4});
  const auto& pecell = mesh.map("pecell");
  partitioning one;
  one.nparts = 1;
  one.part_of.assign(static_cast<std::size_t>(mesh.set("cells").size()), 0);
  EXPECT_EQ(edge_cut(pecell, one), 0);
}

TEST(EdgeCut, SizeMismatchRejected) {
  const auto mesh = airfoil::generate_mesh({8, 4});
  partitioning wrong;
  wrong.nparts = 2;
  wrong.part_of.assign(3, 0);
  EXPECT_THROW(edge_cut(mesh.map("pecell"), wrong), std::invalid_argument);
}

TEST(PartitionOrder, GroupsByPartStably) {
  partitioning p;
  p.nparts = 3;
  p.part_of = {2, 0, 1, 0, 2, 1};
  const auto perm = partition_order(p);
  EXPECT_TRUE(is_permutation(perm));
  // Part 0 elements (1, 3) come first in original order, then part 1
  // (2, 5), then part 2 (0, 4).
  EXPECT_EQ(perm[1], 0);
  EXPECT_EQ(perm[3], 1);
  EXPECT_EQ(perm[2], 2);
  EXPECT_EQ(perm[5], 3);
  EXPECT_EQ(perm[0], 4);
  EXPECT_EQ(perm[4], 5);
}

TEST(Halos, ChainAcrossTwoParts) {
  // Edges 0..9 over nodes 0..10; rows and targets split at the middle:
  // only the boundary-crossing rows need ghosts.
  const int nedge = 10;
  auto edges = op_decl_set(nedge, "edges");
  auto nodes = op_decl_set(nedge + 1, "nodes");
  std::vector<int> table;
  for (int e = 0; e < nedge; ++e) {
    table.push_back(e);
    table.push_back(e + 1);
  }
  auto e2n = op_decl_map(edges, nodes, 2, table, "e2n");

  partitioning rows;
  rows.nparts = 2;
  rows.part_of.assign(static_cast<std::size_t>(nedge), 0);
  for (int e = 5; e < nedge; ++e) {
    rows.part_of[static_cast<std::size_t>(e)] = 1;
  }
  partitioning targets;
  targets.nparts = 2;
  targets.part_of.assign(static_cast<std::size_t>(nedge + 1), 0);
  for (int n = 6; n <= nedge; ++n) {
    targets.part_of[static_cast<std::size_t>(n)] = 1;
  }

  const auto halos = build_halos(e2n, rows, targets);
  ASSERT_EQ(halos.size(), 2u);
  // Part 0 owns edges 0-4 touching nodes 0-5, all owned by part 0:
  // no ghosts.
  EXPECT_TRUE(halos[0].empty());
  // Part 1 owns edges 5-9 touching nodes 5-10; node 5 belongs to part
  // 0 -> exactly one ghost.
  EXPECT_EQ(halos[1], (std::vector<int>{5}));
}

TEST(Halos, NoGhostsWhenAligned) {
  const int n = 8;
  auto from = op_decl_set(n, "from");
  auto to = op_decl_set(n, "to");
  std::vector<int> table(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    table[static_cast<std::size_t>(i)] = i;
  }
  auto m = op_decl_map(from, to, 1, table, "identity");
  const auto rows = partition_block(n, 2);
  const auto halos = build_halos(m, rows, rows);
  for (const auto& h : halos) {
    EXPECT_TRUE(h.empty());
  }
}

}  // namespace
