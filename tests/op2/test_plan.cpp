#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "op2/plan.hpp"

namespace {

using op2::build_plan;
using op2::clear_plan_cache;
using op2::get_plan;
using op2::op_decl_map;
using op2::op_decl_set;
using op2::op_map;
using op2::op_plan;
using op2::op_set;
using op2::plan_indirection;

/// Checks the fundamental plan invariants: blocks tile the set, colours
/// partition the blocks, and no two same-colour blocks touch one target
/// element through any conflict column.
void check_plan_invariants(const op_plan& plan, const op_set& set,
                           const std::vector<plan_indirection>& conflicts) {
  // Blocks tile [0, set.size()) contiguously.
  int covered = 0;
  for (int b = 0; b < plan.nblocks; ++b) {
    EXPECT_EQ(plan.offset[static_cast<std::size_t>(b)], covered);
    EXPECT_GT(plan.nelems[static_cast<std::size_t>(b)], 0);
    EXPECT_LE(plan.nelems[static_cast<std::size_t>(b)], plan.block_size);
    covered += plan.nelems[static_cast<std::size_t>(b)];
  }
  EXPECT_EQ(covered, set.size());

  // Colours partition blocks.
  std::vector<int> seen(static_cast<std::size_t>(plan.nblocks), 0);
  for (int c = 0; c < plan.ncolors; ++c) {
    for (const int b : plan.color_blocks[static_cast<std::size_t>(c)]) {
      EXPECT_EQ(plan.block_color[static_cast<std::size_t>(b)], c);
      seen[static_cast<std::size_t>(b)] += 1;
    }
  }
  for (const int s : seen) {
    EXPECT_EQ(s, 1);
  }

  // Conflict-freedom within each colour: a target element of one
  // written dat may be touched repeatedly by ONE block (sequential
  // inside the block) but never by two different blocks of the same
  // colour — through ANY of that dat's access columns.
  std::set<const void*> targets;
  for (const auto& conf : conflicts) {
    targets.insert(conf.target_id);
  }
  for (const void* target_dat : targets) {
    for (int c = 0; c < plan.ncolors; ++c) {
      std::map<int, int> owner;  // target element -> owning block
      for (const int b : plan.color_blocks[static_cast<std::size_t>(c)]) {
        const int begin = plan.offset[static_cast<std::size_t>(b)];
        const int end = begin + plan.nelems[static_cast<std::size_t>(b)];
        for (const auto& conf : conflicts) {
          if (conf.target_id != target_dat) {
            continue;
          }
          for (int e = begin; e < end; ++e) {
            const int target = conf.map.at(e, conf.idx);
            auto [it, inserted] = owner.emplace(target, b);
            EXPECT_TRUE(inserted || it->second == b)
                << "colour " << c << " touches element " << target
                << " from blocks " << it->second << " and " << b;
          }
        }
      }
    }
  }
}

TEST(Plan, DirectPlanSingleColor) {
  auto s = op_decl_set(1000, "s");
  auto plan = build_plan(s, 128, {});
  EXPECT_EQ(plan.nblocks, 8);
  EXPECT_EQ(plan.ncolors, 1);
  check_plan_invariants(plan, s, {});
}

TEST(Plan, EmptySetZeroBlocks) {
  auto s = op_decl_set(0, "empty");
  auto plan = build_plan(s, 64, {});
  EXPECT_EQ(plan.nblocks, 0);
  EXPECT_EQ(plan.ncolors, 0);
  EXPECT_TRUE(plan.conflict_free());
}

TEST(Plan, LastBlockPartial) {
  auto s = op_decl_set(100, "s");
  auto plan = build_plan(s, 30, {});
  EXPECT_EQ(plan.nblocks, 4);
  EXPECT_EQ(plan.nelems[3], 10);
  check_plan_invariants(plan, s, {});
}

TEST(Plan, InvalidBlockSizeRejected) {
  auto s = op_decl_set(10, "s");
  EXPECT_THROW(build_plan(s, 0, {}), std::invalid_argument);
  EXPECT_THROW(build_plan(s, -5, {}), std::invalid_argument);
}

TEST(Plan, ChainConflictNeedsTwoColors) {
  // Edges of a 1D chain: edge e touches nodes e and e+1.  Adjacent
  // blocks share a node, so at least two colours are required.
  const int nedge = 64;
  auto edges = op_decl_set(nedge, "edges");
  auto nodes = op_decl_set(nedge + 1, "nodes");
  std::vector<int> table;
  for (int e = 0; e < nedge; ++e) {
    table.push_back(e);
    table.push_back(e + 1);
  }
  auto e2n = op_decl_map(edges, nodes, 2, table, "e2n");
  const std::vector<plan_indirection> conflicts{{e2n, 0, nodes.id()},
                                                {e2n, 1, nodes.id()}};
  auto plan = build_plan(edges, 8, conflicts);
  EXPECT_GE(plan.ncolors, 2);
  check_plan_invariants(plan, edges, conflicts);
}

TEST(Plan, AllToOneConflictSerialisesBlocks) {
  // Every element increments one shared target: every block conflicts
  // with every other, so ncolors == nblocks.
  const int n = 40;
  auto from = op_decl_set(n, "from");
  auto to = op_decl_set(1, "to");
  const std::vector<int> table(static_cast<std::size_t>(n), 0);
  auto m = op_decl_map(from, to, 1, table, "all2one");
  const std::vector<plan_indirection> conflicts{{m, 0, to.id()}};
  auto plan = build_plan(from, 10, conflicts);
  EXPECT_EQ(plan.ncolors, plan.nblocks);
  check_plan_invariants(plan, from, conflicts);
}

TEST(Plan, ManyColorsBeyondOnePass) {
  // More than 64 mutually-conflicting blocks exercises the multi-pass
  // (>64 colour) path.
  const int n = 70 * 4;
  auto from = op_decl_set(n, "from");
  auto to = op_decl_set(1, "to");
  const std::vector<int> table(static_cast<std::size_t>(n), 0);
  auto m = op_decl_map(from, to, 1, table, "all2one");
  const std::vector<plan_indirection> conflicts{{m, 0, to.id()}};
  auto plan = build_plan(from, 4, conflicts);
  EXPECT_EQ(plan.nblocks, 70);
  EXPECT_EQ(plan.ncolors, 70);
  check_plan_invariants(plan, from, conflicts);
}

TEST(Plan, DisjointTargetsSingleColor) {
  // Each element touches its own private target: no conflicts at all.
  const int n = 100;
  auto from = op_decl_set(n, "from");
  auto to = op_decl_set(n, "to");
  std::vector<int> table(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    table[static_cast<std::size_t>(i)] = i;
  }
  auto m = op_decl_map(from, to, 1, table, "identity");
  const std::vector<plan_indirection> conflicts{{m, 0, to.id()}};
  auto plan = build_plan(from, 10, conflicts);
  EXPECT_EQ(plan.ncolors, 1);
  check_plan_invariants(plan, from, conflicts);
}

// Property sweep: random-ish meshes across block sizes stay valid.
class PlanPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PlanPropertyTest, InvariantsHoldOnQuadMeshEdges) {
  const int block_size = GetParam();
  // 2D grid edges like the Airfoil mesh: imax*jmax cells.
  const int imax = 17;
  const int jmax = 9;
  auto cells = op_decl_set(imax * jmax, "cells");
  std::vector<int> table;
  std::vector<int> edge_count;
  // vertical interior faces
  for (int j = 0; j < jmax; ++j) {
    for (int i = 1; i < imax; ++i) {
      table.push_back((j * imax) + i - 1);
      table.push_back((j * imax) + i);
    }
  }
  // horizontal interior faces
  for (int j = 1; j < jmax; ++j) {
    for (int i = 0; i < imax; ++i) {
      table.push_back(((j - 1) * imax) + i);
      table.push_back((j * imax) + i);
    }
  }
  const int nedge = static_cast<int>(table.size() / 2);
  auto edges = op_decl_set(nedge, "edges");
  auto e2c = op_decl_map(edges, cells, 2, table, "e2c");
  const std::vector<plan_indirection> conflicts{{e2c, 0, cells.id()},
                                                {e2c, 1, cells.id()}};
  auto plan = build_plan(edges, block_size, conflicts);
  check_plan_invariants(plan, edges, conflicts);
  if (plan.nblocks > 1) {
    // Adjacent blocks share cells, so more than one colour is needed —
    // except in the degenerate single-block case.
    EXPECT_GE(plan.ncolors, 2);
  } else {
    EXPECT_EQ(plan.ncolors, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, PlanPropertyTest,
                         ::testing::Values(1, 2, 3, 7, 16, 64, 256, 10000));

TEST(PlanCache, ReturnsSameInstanceForSameKey) {
  clear_plan_cache();
  auto s = op_decl_set(100, "s");
  auto p1 = get_plan(s, 16, {});
  auto p2 = get_plan(s, 16, {});
  EXPECT_EQ(p1.get(), p2.get());
  EXPECT_EQ(op2::plan_cache_size(), 1u);
}

TEST(PlanCache, DifferentBlockSizeDifferentPlan) {
  clear_plan_cache();
  auto s = op_decl_set(100, "s");
  auto p1 = get_plan(s, 16, {});
  auto p2 = get_plan(s, 32, {});
  EXPECT_NE(p1.get(), p2.get());
  EXPECT_EQ(op2::plan_cache_size(), 2u);
}

TEST(PlanCache, ConflictSignatureDistinguishes) {
  clear_plan_cache();
  const int n = 10;
  auto from = op_decl_set(n, "from");
  auto to = op_decl_set(n, "to");
  std::vector<int> table(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    table[static_cast<std::size_t>(i)] = i;
  }
  auto m = op_decl_map(from, to, 1, table, "m");
  std::vector<plan_indirection> conflicts{{m, 0, to.id()}};
  auto p1 = get_plan(from, 4, {});
  auto p2 = get_plan(from, 4, conflicts);
  EXPECT_NE(p1.get(), p2.get());
}

TEST(PlanCache, ClearEmptiesCache) {
  clear_plan_cache();
  auto s = op_decl_set(10, "s");
  (void)get_plan(s, 4, {});
  EXPECT_GT(op2::plan_cache_size(), 0u);
  clear_plan_cache();
  EXPECT_EQ(op2::plan_cache_size(), 0u);
}

}  // namespace
