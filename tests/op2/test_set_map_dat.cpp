#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "op2/dat.hpp"
#include "op2/map.hpp"
#include "op2/set.hpp"

namespace {

using op2::op_dat;
using op2::op_decl_dat;
using op2::op_decl_map;
using op2::op_decl_set;
using op2::op_map;
using op2::op_set;

TEST(OpSet, DeclStoresNameAndSize) {
  auto s = op_decl_set(42, "cells");
  EXPECT_TRUE(s.valid());
  EXPECT_EQ(s.size(), 42);
  EXPECT_EQ(s.name(), "cells");
}

TEST(OpSet, NegativeSizeRejected) {
  EXPECT_THROW(op_decl_set(-1, "bad"), std::invalid_argument);
}

TEST(OpSet, ZeroSizeAllowed) {
  auto s = op_decl_set(0, "empty");
  EXPECT_EQ(s.size(), 0);
}

TEST(OpSet, HandleIdentity) {
  auto a = op_decl_set(5, "a");
  auto b = a;  // same set
  auto c = op_decl_set(5, "a");  // different declaration, same shape
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.id(), b.id());
  EXPECT_NE(a.id(), c.id());
}

TEST(OpMap, DeclValidatesAndIndexes) {
  auto from = op_decl_set(3, "edges");
  auto to = op_decl_set(4, "nodes");
  const std::vector<int> table{0, 1, 1, 2, 2, 3};
  auto m = op_decl_map(from, to, 2, table, "e2n");
  EXPECT_EQ(m.dim(), 2);
  EXPECT_EQ(m.at(0, 0), 0);
  EXPECT_EQ(m.at(0, 1), 1);
  EXPECT_EQ(m.at(2, 1), 3);
  EXPECT_EQ(m.from(), from);
  EXPECT_EQ(m.to(), to);
}

TEST(OpMap, RejectsOutOfRangeTarget) {
  auto from = op_decl_set(2, "edges");
  auto to = op_decl_set(2, "nodes");
  const std::vector<int> bad{0, 1, 1, 2};  // 2 is out of range
  EXPECT_THROW(op_decl_map(from, to, 2, bad, "bad"), std::out_of_range);
  const std::vector<int> neg{0, 1, -1, 0};
  EXPECT_THROW(op_decl_map(from, to, 2, neg, "neg"), std::out_of_range);
}

TEST(OpMap, RejectsWrongTableSize) {
  auto from = op_decl_set(2, "edges");
  auto to = op_decl_set(2, "nodes");
  const std::vector<int> short_table{0, 1, 1};
  EXPECT_THROW(op_decl_map(from, to, 2, short_table, "short"),
               std::invalid_argument);
}

TEST(OpMap, RejectsNonPositiveDim) {
  auto from = op_decl_set(2, "edges");
  auto to = op_decl_set(2, "nodes");
  const std::vector<int> empty;
  EXPECT_THROW(op_decl_map(from, to, 0, empty, "dim0"),
               std::invalid_argument);
}

TEST(OpDat, ZeroInitialisedByDefault) {
  auto s = op_decl_set(4, "s");
  auto d = op_decl_dat<double>(s, 3, "double", "d");
  auto view = d.data<double>();
  ASSERT_EQ(view.size(), 12u);
  for (const double v : view) {
    ASSERT_EQ(v, 0.0);
  }
}

TEST(OpDat, InitialisedFromSpan) {
  auto s = op_decl_set(2, "s");
  const std::vector<int> init{1, 2, 3, 4};
  auto d = op_decl_dat<int>(s, 2, "int", std::span<const int>(init), "d");
  auto view = d.data<int>();
  EXPECT_EQ(view[0], 1);
  EXPECT_EQ(view[3], 4);
}

TEST(OpDat, ElementPointerAddressesRow) {
  auto s = op_decl_set(3, "s");
  std::vector<double> init{0, 1, 10, 11, 20, 21};
  auto d = op_decl_dat<double>(s, 2, "double",
                               std::span<const double>(init), "d");
  EXPECT_EQ(d.element<double>(1)[0], 10.0);
  EXPECT_EQ(d.element<double>(2)[1], 21.0);
}

TEST(OpDat, TypeMismatchThrows) {
  auto s = op_decl_set(2, "s");
  auto d = op_decl_dat<double>(s, 1, "double", "d");
  EXPECT_TRUE(d.holds<double>());
  EXPECT_FALSE(d.holds<float>());
  EXPECT_THROW(d.data<float>(), std::invalid_argument);
  EXPECT_THROW(d.element<int>(0), std::invalid_argument);
}

TEST(OpDat, WrongInitSizeThrows) {
  auto s = op_decl_set(2, "s");
  const std::vector<double> wrong{1.0, 2.0, 3.0};
  EXPECT_THROW(op_decl_dat<double>(s, 2, "double",
                                   std::span<const double>(wrong), "d"),
               std::invalid_argument);
}

TEST(OpDat, SharedHandleAliasesStorage) {
  auto s = op_decl_set(2, "s");
  auto d = op_decl_dat<double>(s, 1, "double", "d");
  op_dat alias = d;
  alias.data<double>()[0] = 3.5;
  EXPECT_EQ(d.data<double>()[0], 3.5);
  EXPECT_EQ(d, alias);
}

TEST(OpDat, MetadataAccessors) {
  auto s = op_decl_set(5, "cells");
  auto d = op_decl_dat<double>(s, 4, "double", "p_q");
  EXPECT_EQ(d.name(), "p_q");
  EXPECT_EQ(d.dim(), 4);
  EXPECT_EQ(d.type_name(), "double");
  EXPECT_EQ(d.element_size(), sizeof(double));
  EXPECT_EQ(d.entries(), 20u);
  EXPECT_EQ(d.set(), s);
}

}  // namespace
