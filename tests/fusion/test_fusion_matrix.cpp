// The fusion acceptance matrix: on every driver — classic, async,
// dataflow and hpx_shard at 1/2/4 shards — Airfoil with OP2_FUSE=on
// must reproduce that SAME driver's OP2_FUSE=off q field bit-for-bit
// (fusion is a schedule change; a single flipped bit fails the
// matrix), and every arm must track the unfused seq oracle's rms
// history to the repo's standard 1e-12 relative tolerance.  seq and
// hpx_shard are additionally held bit-identical to the seq oracle,
// matching the guarantees test_backend_equivalence / test_shard
// already pin for the unfused drivers.
//
// Plus FusedStress: concurrent fused replays hammering one shared
// fused_handle (the site cache's find/CAS/rebind path) and concurrent
// fused dataflow nodes — also the TSan target scripts/check.sh runs.
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "airfoil/airfoil.hpp"
#include "op2/op2.hpp"

namespace {

using airfoil::generate_mesh;
using airfoil::make_sim;
using airfoil::mesh_params;
using airfoil::run_with_backend;

constexpr int kIters = 6;

mesh_params small_mesh() {
  mesh_params p;
  p.imax = 16;
  p.jmax = 8;
  return p;
}

struct field_result {
  std::vector<double> q;
  std::vector<double> rms;
};

field_result run_under(const op2::config& cfg, const std::string& backend) {
  op2::init(cfg);
  auto s = make_sim(generate_mesh(small_mesh()));
  const auto r = run_with_backend(s, kIters, backend);
  field_result out;
  const auto q = s.p_q.data<double>();
  out.q.assign(q.begin(), q.end());
  out.rms = r.rms_history;
  op2::finalize();
  return out;
}

/// The oracle: sequential with fusion DISABLED — the pre-PR-9 program.
const field_result& unfused_seq_reference() {
  static const field_result ref = [] {
    auto cfg = op2::make_config("seq", 1, 32);
    cfg.fuse = false;
    return run_under(cfg, "seq");
  }();
  return ref;
}

/// Fused vs unfused of the SAME driver: bit-for-bit on every q entry.
/// rms gets the repo's standard 1e-12 relative tolerance instead: it
/// is a global +-reduction, and a fused launch may partition blocks
/// differently than the unfused loop, reassociating the partial sums
/// (q is per-element arithmetic and has no such freedom).
void expect_same_bits(const field_result& fused, const field_result& unfused,
                      const std::string& what) {
  ASSERT_EQ(fused.q.size(), unfused.q.size()) << what;
  for (std::size_t i = 0; i < unfused.q.size(); ++i) {
    ASSERT_EQ(fused.q[i], unfused.q[i]) << what << " q entry " << i;
  }
  ASSERT_EQ(fused.rms.size(), unfused.rms.size()) << what;
  for (std::size_t i = 0; i < unfused.rms.size(); ++i) {
    EXPECT_NEAR(fused.rms[i], unfused.rms[i],
                1e-12 * std::max(1.0, std::fabs(unfused.rms[i])))
        << what << " rms entry " << i;
  }
}

/// Any arm vs the seq oracle: rms to the standard relative tolerance.
void expect_tracks_oracle_rms(const field_result& got,
                              const std::string& what) {
  const auto& ref = unfused_seq_reference();
  ASSERT_EQ(got.rms.size(), ref.rms.size()) << what;
  for (std::size_t i = 0; i < ref.rms.size(); ++i) {
    EXPECT_NEAR(got.rms[i], ref.rms[i],
                1e-12 * std::max(1.0, std::fabs(ref.rms[i])))
        << what << " iteration " << i;
  }
}

void expect_matches_oracle(const field_result& got, const std::string& what) {
  const auto& ref = unfused_seq_reference();
  ASSERT_EQ(got.q.size(), ref.q.size()) << what;
  for (std::size_t i = 0; i < ref.q.size(); ++i) {
    ASSERT_EQ(got.q[i], ref.q[i]) << what << " q entry " << i;
  }
  expect_tracks_oracle_rms(got, what);
}

class FusionMatrix : public ::testing::TestWithParam<std::string> {
 protected:
  void TearDown() override { op2::finalize(); }
};

TEST_P(FusionMatrix, FusedRunIsBitIdenticalToTheUnfusedDriver) {
  const auto& backend = GetParam();
  auto fused_cfg = op2::make_config(backend, 4, 32);
  ASSERT_TRUE(fused_cfg.fuse);  // fusion defaults ON — this run fuses
  auto unfused_cfg = fused_cfg;
  unfused_cfg.fuse = false;
  const auto fused = run_under(fused_cfg, backend);
  const auto unfused = run_under(unfused_cfg, backend);
  expect_same_bits(fused, unfused, backend + "/fused-vs-unfused");
  expect_tracks_oracle_rms(fused, backend + "/fused-vs-seq-oracle");
  if (backend == "seq") {
    // The seq driver fused must still BE the oracle, bit-for-bit.
    expect_matches_oracle(fused, "seq/fused-vs-seq-oracle");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Backends, FusionMatrix,
    ::testing::Values("seq", "hpx_foreach", "hpx_async", "hpx_dataflow"),
    [](const ::testing::TestParamInfo<std::string>& p) { return p.param; });

class FusionShardMatrix : public ::testing::TestWithParam<int> {
 protected:
  void TearDown() override { op2::finalize(); }
};

TEST_P(FusionShardMatrix, FusedShardedRunIsBitIdenticalToUnfusedSeq) {
  // hpx_shard guarantees bit-identity to seq at every shard count (the
  // test_shard acceptance matrix); fusion must preserve that.
  auto cfg = op2::make_config("hpx_shard", 4, 32);
  cfg.shards = GetParam();
  ASSERT_TRUE(cfg.fuse);
  const auto got = run_under(cfg, "hpx_shard");
  expect_matches_oracle(got,
                        "hpx_shard/fused/N" + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, FusionShardMatrix,
                         ::testing::Values(1, 2, 4),
                         [](const ::testing::TestParamInfo<int>& p) {
                           return "N" + std::to_string(p.param);
                         });

// --- stress ------------------------------------------------------------

void ks_scale(const double* a, double* b) { b[0] = 0.5 * a[0] + 0.5 * b[0]; }
void ks_shift(double* b) { b[0] += 1.0; }

struct pair_sim {
  op2::op_set elems;
  op2::op_dat d_a, d_b;
};

pair_sim make_pair_sim(int n, const std::string& tag) {
  pair_sim s;
  s.elems = op2::op_decl_set(n, "elems_" + tag);
  std::vector<double> a(static_cast<std::size_t>(n), 2.0);
  std::vector<double> b(static_cast<std::size_t>(n), 0.0);
  s.d_a = op2::op_decl_dat<double>(s.elems, 1, "double",
                                   std::span<const double>(a), "a_" + tag);
  s.d_b = op2::op_decl_dat<double>(s.elems, 1, "double",
                                   std::span<const double>(b), "b_" + tag);
  return s;
}

void run_fused_pair(op2::fused_handle& h, pair_sim& s) {
  op2::op_par_loop_fused(h, s.elems,
      op2::fuse_loop(ks_scale, "ks_scale",
          op2::op_arg_dat<double>(s.d_a, -1, op2::OP_ID, 1, op2::OP_READ),
          op2::op_arg_dat<double>(s.d_b, -1, op2::OP_ID, 1, op2::OP_RW)),
      op2::fuse_loop(ks_shift, "ks_shift",
          op2::op_arg_dat<double>(s.d_b, -1, op2::OP_ID, 1, op2::OP_RW)));
}

class FusedStress : public ::testing::Test {
 protected:
  void TearDown() override { op2::finalize(); }
};

TEST_F(FusedStress, ConcurrentReplaysThroughOneSharedHandle) {
  // Four threads, each with its own mesh, all funnelled through ONE
  // fused_handle: distinct site-cache entries replay concurrently
  // while the find/CAS/busy paths contend.  Every thread's result must
  // equal the serial reference exactly.
  op2::init(op2::make_config("seq", 1, 64));
  constexpr int kThreads = 4;
  constexpr int kRounds = 100;
  constexpr int kElems = 256;

  auto ref = make_pair_sim(kElems, "ref");
  static op2::fused_handle h;
  for (int i = 0; i < kRounds; ++i) {
    run_fused_pair(h, ref);
  }
  const std::vector<double> want(ref.d_b.data<double>().begin(),
                                 ref.d_b.data<double>().end());

  std::vector<pair_sim> sims;
  sims.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    sims.push_back(make_pair_sim(kElems, "t" + std::to_string(t)));
  }
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRounds; ++i) {
        run_fused_pair(h, sims[static_cast<std::size_t>(t)]);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    const auto got = sims[static_cast<std::size_t>(t)].d_b.data<double>();
    for (int i = 0; i < kElems; ++i) {
      ASSERT_EQ(got[i], want[static_cast<std::size_t>(i)])
          << "thread " << t << " element " << i;
    }
  }
}

TEST_F(FusedStress, ConcurrentFusedDataflowNodes) {
  // Independent fused nodes racing on the worker pool: each pair of
  // dats gets its own node per round, every future must resolve and
  // the results must be exact.
  op2::init(op2::make_config("hpx_dataflow", 4, 64));
  constexpr int kPairs = 4;
  constexpr int kRounds = 50;
  constexpr int kElems = 128;
  {
    std::vector<op2::op_dat_df> as;
    std::vector<op2::op_dat_df> bs;
    std::vector<op2::op_set> sets;
    for (int p = 0; p < kPairs; ++p) {
      const auto tag = std::to_string(p);
      sets.push_back(op2::op_decl_set(kElems, "df_elems_" + tag));
      std::vector<double> a(kElems, 2.0);
      std::vector<double> b(kElems, 0.0);
      as.emplace_back(op2::op_decl_dat<double>(
          sets.back(), 1, "double", std::span<const double>(a),
          "df_a_" + tag));
      bs.emplace_back(op2::op_decl_dat<double>(
          sets.back(), 1, "double", std::span<const double>(b),
          "df_b_" + tag));
    }
    static op2::fused_handle h;
    std::vector<hpxlite::shared_future<void>> last(kPairs);
    for (int round = 0; round < kRounds; ++round) {
      for (int p = 0; p < kPairs; ++p) {
        const auto i = static_cast<std::size_t>(p);
        last[i] = op2::op_par_loop_fused(h, sets[i],
            op2::fuse_loop(ks_scale, "ks_scale",
                op2::op_arg_dat1<double>(as[i], -1, op2::OP_ID, 1,
                                         op2::OP_READ),
                op2::op_arg_dat1<double>(bs[i], -1, op2::OP_ID, 1,
                                         op2::OP_RW)),
            op2::fuse_loop(ks_shift, "ks_shift",
                op2::op_arg_dat1<double>(bs[i], -1, op2::OP_ID, 1,
                                         op2::OP_RW)));
      }
    }
    for (auto& f : last) {
      f.get();
    }
    // Serial reference of the same recurrence.
    double want = 0.0;
    for (int round = 0; round < kRounds; ++round) {
      want = 0.5 * 2.0 + 0.5 * want + 1.0;
    }
    for (int p = 0; p < kPairs; ++p) {
      const auto got = bs[static_cast<std::size_t>(p)].dat().data<double>();
      for (int i = 0; i < kElems; ++i) {
        ASSERT_EQ(got[i], want) << "pair " << p << " element " << i;
      }
    }
  }
}

}  // namespace
