// The fused prepared-loop runtime: bit-exactness of the per-element
// interleave against separate member loops, reduction merge order,
// time-step tiling against the step-major reference, legality throws,
// the OP2_FUSE=off control arm, replay/rebind behaviour and fusion
// under a manually clamped shard window.
#include <gtest/gtest.h>

#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "op2/op2.hpp"
#include "op2/shard.hpp"

namespace {

constexpr int kN = 512;

void k_scale(const double* a, double* b) { b[0] = 0.25 * a[0] + 0.75 * b[0]; }
void k_accum(const double* b, double* c) { c[0] = c[0] + 0.5 * b[0]; }
void k_close(const double* c, double* b) { b[0] = b[0] + 0.125 * c[0]; }
void k_sum(const double* b, double* acc) { acc[0] += b[0]; }

struct chain {
  op2::op_set elems;
  op2::op_dat d_a, d_b, d_c;
};

chain make_chain(int n = kN) {
  chain s;
  s.elems = op2::op_decl_set(n, "elems");
  std::vector<double> a(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    a[static_cast<std::size_t>(i)] = 1.0 + 1e-3 * (i % 97);
  }
  std::vector<double> b(static_cast<std::size_t>(n), 0.5);
  std::vector<double> c(static_cast<std::size_t>(n), 0.0);
  s.d_a = op2::op_decl_dat<double>(s.elems, 1, "double",
                                   std::span<const double>(a), "a");
  s.d_b = op2::op_decl_dat<double>(s.elems, 1, "double",
                                   std::span<const double>(b), "b");
  s.d_c = op2::op_decl_dat<double>(s.elems, 1, "double",
                                   std::span<const double>(c), "c");
  return s;
}

/// The step-major reference: the member loops issued separately,
/// `steps` times over.
void run_reference(chain& s, int steps) {
  for (int step = 0; step < steps; ++step) {
    op2::op_par_loop(k_scale, "k_scale", s.elems,
        op2::op_arg_dat<double>(s.d_a, -1, op2::OP_ID, 1, op2::OP_READ),
        op2::op_arg_dat<double>(s.d_b, -1, op2::OP_ID, 1, op2::OP_RW));
    op2::op_par_loop(k_accum, "k_accum", s.elems,
        op2::op_arg_dat<double>(s.d_b, -1, op2::OP_ID, 1, op2::OP_READ),
        op2::op_arg_dat<double>(s.d_c, -1, op2::OP_ID, 1, op2::OP_RW));
    op2::op_par_loop(k_close, "k_close", s.elems,
        op2::op_arg_dat<double>(s.d_c, -1, op2::OP_ID, 1, op2::OP_READ),
        op2::op_arg_dat<double>(s.d_b, -1, op2::OP_ID, 1, op2::OP_RW));
  }
}

void run_fused_chain(chain& s, op2::fused_handle& h, int steps) {
  op2::op_par_loop_fused_steps(h, s.elems, steps,
      op2::fuse_loop(k_scale, "k_scale",
          op2::op_arg_dat<double>(s.d_a, -1, op2::OP_ID, 1, op2::OP_READ),
          op2::op_arg_dat<double>(s.d_b, -1, op2::OP_ID, 1, op2::OP_RW)),
      op2::fuse_loop(k_accum, "k_accum",
          op2::op_arg_dat<double>(s.d_b, -1, op2::OP_ID, 1, op2::OP_READ),
          op2::op_arg_dat<double>(s.d_c, -1, op2::OP_ID, 1, op2::OP_RW)),
      op2::fuse_loop(k_close, "k_close",
          op2::op_arg_dat<double>(s.d_c, -1, op2::OP_ID, 1, op2::OP_READ),
          op2::op_arg_dat<double>(s.d_b, -1, op2::OP_ID, 1, op2::OP_RW)));
}

void expect_same_bits(chain& got, chain& want, const std::string& what) {
  const auto gb = got.d_b.data<double>();
  const auto wb = want.d_b.data<double>();
  const auto gc = got.d_c.data<double>();
  const auto wc = want.d_c.data<double>();
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(gb[i], wb[i]) << what << " b[" << i << "]";
    ASSERT_EQ(gc[i], wc[i]) << what << " c[" << i << "]";
  }
}

class FusedLoop : public ::testing::Test {
 protected:
  void TearDown() override { op2::finalize(); }
};

TEST_F(FusedLoop, InterleaveMatchesSeparateLoopsBitwise) {
  op2::init(op2::make_config("seq", 1, 64));
  auto ref = make_chain();
  run_reference(ref, 1);
  auto got = make_chain();
  static op2::fused_handle h;
  run_fused_chain(got, h, 1);
  expect_same_bits(got, ref, "fused vs separate");
}

TEST_F(FusedLoop, MultiStepTiledMatchesStepMajorReference) {
  op2::init(op2::make_config("seq", 1, 64));
  auto ref = make_chain();
  run_reference(ref, 5);
  auto cfg = op2::make_config("seq", 1, 64);
  cfg.tile = "64";  // 8 tiles over 512 elements
  op2::finalize();
  op2::init(cfg);
  auto got = make_chain();
  static op2::fused_handle h;
  run_fused_chain(got, h, 5);
  expect_same_bits(got, ref, "tiled(64) x5 vs step-major");
}

TEST_F(FusedLoop, FusedReplayStaysBitExact) {
  // Second and later invocations take the prepared replay path
  // (rebind + dispatch); the bits must not move.
  op2::init(op2::make_config("seq", 1, 64));
  auto ref = make_chain();
  run_reference(ref, 3);
  auto got = make_chain();
  static op2::fused_handle h;
  for (int i = 0; i < 3; ++i) {
    run_fused_chain(got, h, 1);  // same dats: replay after the first
  }
  expect_same_bits(got, ref, "replayed fused");
}

TEST_F(FusedLoop, ReductionMergesInMemberOrder) {
  op2::init(op2::make_config("seq", 1, 64));
  auto s = make_chain();
  double fused_sum = 0.0;
  static op2::fused_handle h;
  op2::op_par_loop_fused(h, s.elems,
      op2::fuse_loop(k_scale, "k_scale",
          op2::op_arg_dat<double>(s.d_a, -1, op2::OP_ID, 1, op2::OP_READ),
          op2::op_arg_dat<double>(s.d_b, -1, op2::OP_ID, 1, op2::OP_RW)),
      op2::fuse_loop(k_sum, "k_sum",
          op2::op_arg_dat<double>(s.d_b, -1, op2::OP_ID, 1, op2::OP_READ),
          op2::op_arg_gbl<double>(&fused_sum, 1, op2::OP_INC)));

  auto r = make_chain();
  double ref_sum = 0.0;
  op2::op_par_loop(k_scale, "k_scale", r.elems,
      op2::op_arg_dat<double>(r.d_a, -1, op2::OP_ID, 1, op2::OP_READ),
      op2::op_arg_dat<double>(r.d_b, -1, op2::OP_ID, 1, op2::OP_RW));
  op2::op_par_loop(k_sum, "k_sum", r.elems,
      op2::op_arg_dat<double>(r.d_b, -1, op2::OP_ID, 1, op2::OP_READ),
      op2::op_arg_gbl<double>(&ref_sum, 1, op2::OP_INC));
  EXPECT_EQ(fused_sum, ref_sum);  // bitwise, not NEAR
}

TEST_F(FusedLoop, FuseOffRunsMembersBitIdentically) {
  auto cfg = op2::make_config("seq", 1, 64);
  cfg.fuse = false;  // OP2_FUSE=off: the control arm
  op2::init(cfg);
  auto ref = make_chain();
  run_reference(ref, 2);
  auto got = make_chain();
  static op2::fused_handle h;
  run_fused_chain(got, h, 2);
  expect_same_bits(got, ref, "OP2_FUSE=off");
}

TEST_F(FusedLoop, IndirectMemberThrows) {
  op2::init(op2::make_config("seq", 1, 64));
  auto s = make_chain();
  std::vector<int> idx(static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    idx[static_cast<std::size_t>(i)] = (i + 1) % kN;
  }
  auto map = op2::op_decl_map(s.elems, s.elems, 1,
                              std::span<const int>(idx), "next");
  static op2::fused_handle h;
  EXPECT_THROW(
      op2::op_par_loop_fused(h, s.elems,
          op2::fuse_loop(k_scale, "k_scale",
              op2::op_arg_dat<double>(s.d_a, 0, map, 1, op2::OP_READ),
              op2::op_arg_dat<double>(s.d_b, -1, op2::OP_ID, 1,
                                      op2::OP_RW))),
      std::invalid_argument);
}

TEST_F(FusedLoop, HazardousMemberListThrowsWithThePlan) {
  // k_sum reduces into `total`; a second member reading it mid-group
  // is the planner's reduced-global hazard, surfaced at capture.
  op2::init(op2::make_config("seq", 1, 64));
  auto s = make_chain();
  double total = 0.0;
  static op2::fused_handle h;
  try {
    op2::op_par_loop_fused(h, s.elems,
        op2::fuse_loop(k_sum, "k_sum",
            op2::op_arg_dat<double>(s.d_b, -1, op2::OP_ID, 1, op2::OP_READ),
            op2::op_arg_gbl<double>(&total, 1, op2::OP_INC)),
        op2::fuse_loop(k_sum, "k_sum2",
            op2::op_arg_dat<double>(s.d_b, -1, op2::OP_ID, 1, op2::OP_READ),
            op2::op_arg_gbl<double>(&total, 1, op2::OP_INC)));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("fusion plan"), std::string::npos)
        << e.what();
  }
}

TEST_F(FusedLoop, TilingAReductionChainThrows) {
  op2::init(op2::make_config("seq", 1, 64));
  auto s = make_chain();
  double total = 0.0;
  static op2::fused_handle h;
  EXPECT_THROW(
      op2::op_par_loop_fused_steps(h, s.elems, 2,
          op2::fuse_loop(k_scale, "k_scale",
              op2::op_arg_dat<double>(s.d_a, -1, op2::OP_ID, 1,
                                      op2::OP_READ),
              op2::op_arg_dat<double>(s.d_b, -1, op2::OP_ID, 1,
                                      op2::OP_RW)),
          op2::fuse_loop(k_sum, "k_sum",
              op2::op_arg_dat<double>(s.d_b, -1, op2::OP_ID, 1,
                                      op2::OP_READ),
              op2::op_arg_gbl<double>(&total, 1, op2::OP_INC))),
      std::invalid_argument);
}

TEST_F(FusedLoop, TileSpecGrammar) {
  EXPECT_EQ(op2::parse_tile_spec(""), 0);
  EXPECT_EQ(op2::parse_tile_spec("off"), 0);
  EXPECT_EQ(op2::parse_tile_spec("auto"), -1);
  EXPECT_EQ(op2::parse_tile_spec("4096"), 4096);
  EXPECT_THROW(op2::parse_tile_spec("0"), std::invalid_argument);
  EXPECT_THROW(op2::parse_tile_spec("-3"), std::invalid_argument);
  EXPECT_THROW(op2::parse_tile_spec("huge"), std::invalid_argument);
}

TEST_F(FusedLoop, InvalidateForcesRecapture) {
  op2::init(op2::make_config("seq", 1, 64));
  op2::profiling::enable(true);
  op2::profiling::reset();
  auto s = make_chain();
  static op2::fused_handle h;
  run_fused_chain(s, h, 1);
  h.invalidate();
  run_fused_chain(s, h, 1);  // re-captures, must not crash or drift
  const auto loops = op2::profiling::snapshot();
  const auto it = loops.find("k_scale+k_accum+k_close");
  ASSERT_NE(it, loops.end());
  EXPECT_EQ(it->second.invocations, 2u);
  EXPECT_EQ(it->second.replays, 0u);  // both invocations were captures
  EXPECT_EQ(it->second.fused_loops, 3u);
  op2::profiling::enable(false);
  op2::profiling::reset();
}

TEST_F(FusedLoop, FusedUnderAClampedShardWindowMatchesManualSpans) {
  // A fused launch issued inside an active shard_scope must clamp to
  // the window (iterate_end), exactly like unfused loops do.
  op2::init(op2::make_config("seq", 1, 64));
  auto ref = make_chain();
  {  // reference: members run separately under the same clamp
    static op2::shard_fence fence_ref;
    fence_ref.arm();
    fence_ref.complete();
    op2::shard_context ctx;
    ctx.active = true;
    ctx.shard = 0;
    ctx.interior_end = kN / 2;
    ctx.iterate_end = kN / 2;
    ctx.fence = &fence_ref;
    op2::shard_scope scope(ctx);
    run_reference(ref, 1);
  }
  auto got = make_chain();
  {
    static op2::shard_fence fence_got;
    fence_got.arm();
    fence_got.complete();
    op2::shard_context ctx;
    ctx.active = true;
    ctx.shard = 0;
    ctx.interior_end = kN / 2;
    ctx.iterate_end = kN / 2;
    ctx.fence = &fence_got;
    op2::shard_scope scope(ctx);
    static op2::fused_handle h;
    run_fused_chain(got, h, 1);
  }
  // Clamped half updated identically; the other half untouched (and
  // equal because both arms left it at its initial value).
  expect_same_bits(got, ref, "clamped window");
}

}  // namespace
