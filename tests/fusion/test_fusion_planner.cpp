// The fusion planner's legality edges, one by one: each rule from
// op2/fusion.hpp gets a sequence that trips exactly it, and the
// recorded note is asserted so `describe()` stays honest.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "op2/fusion.hpp"

namespace {

using op2::fusion::arg_desc;
using op2::fusion::loop_desc;
using op2::fusion::options;
using op2::fusion::plan_fusion;

arg_desc dat(const std::string& id, op2::access acc) {
  arg_desc a;
  a.dat = id;
  a.acc = acc;
  return a;
}

arg_desc via_map(const std::string& id, const std::string& map,
                 op2::access acc) {
  arg_desc a;
  a.dat = id;
  a.map = map;
  a.acc = acc;
  return a;
}

arg_desc gbl(const std::string& id, op2::access acc) {
  arg_desc a;
  a.gbl = id;
  a.acc = acc;
  return a;
}

loop_desc loop(const std::string& name, const std::string& set,
               std::vector<arg_desc> args, bool fence = false) {
  loop_desc l;
  l.name = name;
  l.set = set;
  l.args = std::move(args);
  l.fence_before = fence;
  return l;
}

TEST(FusionPlanner, AdjacentDirectSameSetLoopsFuse) {
  const auto plan = plan_fusion({
      loop("update", "cells", {dat("q", op2::OP_WRITE)}),
      loop("save_soln", "cells",
           {dat("q", op2::OP_READ), dat("qold", op2::OP_WRITE)}),
  });
  ASSERT_EQ(plan.launches(), 1u);
  EXPECT_EQ(plan.fused_groups(), 1u);
  EXPECT_EQ(plan.groups[0].label, "update+save_soln");
  EXPECT_TRUE(plan.groups[0].fused());
  EXPECT_NE(plan.describe().find("update+save_soln"), std::string::npos)
      << plan.describe();
}

TEST(FusionPlanner, IndirectLoopBreaksTheWindow) {
  // direct, indirect, direct: three launches, none fused — the
  // indirect loop is a singleton AND closes the window behind it.
  const auto plan = plan_fusion({
      loop("adt", "cells", {dat("q", op2::OP_RW)}),
      loop("res", "edges", {via_map("q", "pecell", op2::OP_INC)}),
      loop("update", "cells", {dat("q", op2::OP_RW)}),
  });
  ASSERT_EQ(plan.launches(), 3u);
  EXPECT_EQ(plan.fused_groups(), 0u);
  EXPECT_NE(plan.notes[1].find("indirect"), std::string::npos);
}

TEST(FusionPlanner, MismatchedSetsDoNotFuse) {
  const auto plan = plan_fusion({
      loop("a", "cells", {dat("q", op2::OP_RW)}),
      loop("b", "nodes", {dat("x", op2::OP_RW)}),
  });
  ASSERT_EQ(plan.launches(), 2u);
  EXPECT_NE(plan.notes[1].find("different set"), std::string::npos);
}

TEST(FusionPlanner, TouchingAReducedGlobalClosesTheWindow) {
  // update reduces into rms; a later reader of rms must not join the
  // same window (the merge happens at finalize), but it opens a fresh
  // window that c then joins.
  const auto plan = plan_fusion({
      loop("update", "cells",
           {dat("q", op2::OP_RW), gbl("rms", op2::OP_INC)}),
      loop("report", "cells",
           {dat("q", op2::OP_READ), gbl("rms", op2::OP_READ)}),
      loop("c", "cells", {dat("q", op2::OP_RW)}),
  });
  ASSERT_EQ(plan.launches(), 2u);
  EXPECT_EQ(plan.groups[0].label, "update");
  EXPECT_EQ(plan.groups[1].label, "report+c");
  EXPECT_NE(plan.notes[1].find("reduced earlier"), std::string::npos);
}

TEST(FusionPlanner, ReductionFusesWhenNothingTouchesItLater) {
  // The reducing loop joins anywhere; read-then-reduce is also legal
  // (the reader sees the pre-reduction value in both schedules).
  const auto plan = plan_fusion({
      loop("report", "cells",
           {dat("q", op2::OP_READ), gbl("rms", op2::OP_READ)}),
      loop("update", "cells",
           {dat("q", op2::OP_RW), gbl("rms", op2::OP_INC)}),
  });
  ASSERT_EQ(plan.launches(), 1u);
  EXPECT_EQ(plan.groups[0].label, "report+update");
}

TEST(FusionPlanner, ReReducingTheSameGlobalAlsoCloses) {
  // "touch" includes a second reduction: two INC members into the same
  // global would merge their scratch in an order the unfused program
  // never had.
  const auto plan = plan_fusion({
      loop("a", "cells", {gbl("rms", op2::OP_INC)}),
      loop("b", "cells", {gbl("rms", op2::OP_INC)}),
  });
  ASSERT_EQ(plan.launches(), 2u);
  EXPECT_NE(plan.notes[1].find("reduced earlier"), std::string::npos);
}

TEST(FusionPlanner, ShardFenceNeverFusesAcross) {
  const auto plan = plan_fusion({
      loop("interior", "cells", {dat("q", op2::OP_RW)}),
      loop("boundary", "cells", {dat("q", op2::OP_RW)}, /*fence=*/true),
  });
  ASSERT_EQ(plan.launches(), 2u);
  EXPECT_NE(plan.notes[1].find("fence"), std::string::npos);
}

TEST(FusionPlanner, DisabledPlansAllSingletons) {
  options off;
  off.enabled = false;
  const auto plan = plan_fusion(
      {
          loop("update", "cells", {dat("q", op2::OP_WRITE)}),
          loop("save_soln", "cells", {dat("q", op2::OP_READ)}),
      },
      off);
  ASSERT_EQ(plan.launches(), 2u);
  EXPECT_EQ(plan.fused_groups(), 0u);
  EXPECT_NE(plan.notes[1].find("OP2_FUSE=off"), std::string::npos);
}

TEST(FusionPlanner, IncrementalPlannerMatchesBatch) {
  op2::fusion::fusion_planner planner;
  planner.add(loop("update", "cells", {dat("q", op2::OP_WRITE)}));
  planner.add(loop("save_soln", "cells", {dat("q", op2::OP_READ)}));
  EXPECT_EQ(planner.size(), 2u);
  const auto plan = planner.finish();
  ASSERT_EQ(plan.launches(), 1u);
  EXPECT_EQ(plan.groups[0].label, "update+save_soln");
}

TEST(FusionPlanner, GroupIdsAreMonotonic) {
  const auto a = op2::fusion::next_fused_group_id();
  const auto b = op2::fusion::next_fused_group_id();
  EXPECT_GT(b, a);
}

}  // namespace
