// backend_smoke: runs EVERY backend registered in op2::backend_registry
// on a 120-cell Airfoil mesh for 5 iterations and cross-checks the
// results.  Registered under the `backend_smoke` ctest label, so
//
//   ctest -L backend_smoke
//
// exercises each executor end-to-end (including ones added after this
// file was written — the list comes from the registry, not from code).
// Also the natural target for CMake's OP2_SANITIZE=thread|address.
#include <cmath>
#include <cstdio>
#include <string>

#include "airfoil/airfoil.hpp"

int main() {
  const airfoil::mesh_params mp{15, 8};  // 15*8 = 120 cells
  constexpr int iters = 5;
  constexpr unsigned threads = 4;

  int failures = 0;
  double ref_checksum = 0.0;
  bool have_ref = false;
  for (const auto& name : op2::backend_registry::names()) {
    op2::init(op2::make_config(name, threads, 32));
    auto s = airfoil::make_sim(airfoil::generate_mesh(mp));
    const auto result = airfoil::run_with_backend(s, iters, name);
    const double checksum = airfoil::solution_checksum(s);
    op2::finalize();

    bool ok = result.rms_history.size() == static_cast<std::size_t>(iters);
    for (const double rms : result.rms_history) {
      ok = ok && std::isfinite(rms) && rms > 0.0;
    }
    if (!have_ref) {
      ref_checksum = checksum;
      have_ref = true;
    }
    // All backends compute the same flow; allow rounding-level drift
    // between the sequential and coloured summation orders.
    ok = ok && std::fabs(checksum - ref_checksum) <=
                   1e-9 * std::fabs(ref_checksum);
    std::printf("%-14s %s  final_rms=%.6e  checksum=%.12e\n", name.c_str(),
                ok ? "ok  " : "FAIL",
                result.rms_history.empty() ? 0.0
                                           : result.rms_history.back(),
                checksum);
    failures += ok ? 0 : 1;
  }
  if (failures != 0) {
    std::fprintf(stderr, "backend_smoke: %d backend(s) failed\n", failures);
    return 1;
  }
  return 0;
}
