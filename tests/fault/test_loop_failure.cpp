// Failure-policy behaviour of op_par_loop across every registered
// backend: write-set rollback, retry, seq fallback, structured
// loop_error, error surfacing through the async and dataflow futures,
// and the scheduler-hardening guarantees (throwing tasks surface via
// .get(); abandoned exceptional futures are counted).
#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "hpxlite/hpxlite.hpp"
#include "op2/op2.hpp"

namespace {

using namespace op2;

/// b[0] += a[0] — detects missing rollback: after a failed attempt is
/// rolled back and retried, each element must be incremented exactly
/// once.
void inc_kernel(const double* a, double* b) { b[0] += a[0]; }

class LoopFailureTest : public ::testing::TestWithParam<std::string> {
 protected:
  void TearDown() override {
    fault_injector::clear();
    op2::finalize();
  }

  void start(int max_retries, bool fallback) {
    auto cfg = make_config(GetParam(), 2, 16);
    cfg.on_failure.max_retries = max_retries;
    cfg.on_failure.fallback_to_seq = fallback;
    op2::init(cfg);
  }

  /// One guarded accumulation loop over 96 elements.
  struct fixture {
    op_set s;
    op_dat a, b;
  };

  fixture make_fixture() {
    fixture f;
    f.s = op_decl_set(96, "s");
    std::vector<double> init(96);
    std::iota(init.begin(), init.end(), 1.0);
    f.a = op_decl_dat<double>(f.s, 1, "double",
                              std::span<const double>(init), "a");
    f.b = op_decl_dat<double>(f.s, 1, "double", "b");
    return f;
  }

  void run_guarded(fixture& f) {
    op_par_loop(inc_kernel, "guarded", f.s,
                op_arg_dat<double>(f.a, -1, OP_ID, 1, OP_READ),
                op_arg_dat<double>(f.b, -1, OP_ID, 1, OP_INC));
  }

  static void expect_incremented_once(fixture& f) {
    const auto a = f.a.data<double>();
    const auto b = f.b.data<double>();
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(b[i], a[i]) << "element " << i;
    }
  }
};

TEST_P(LoopFailureTest, RollbackAndRetryRecoverFromAnInjectedThrow) {
  start(/*max_retries=*/1, /*fallback=*/false);
  auto f = make_fixture();
  fault_injector::configure("guarded:throw:at=1");
  run_guarded(f);  // attempt 1 faults, rollback, attempt 2 succeeds
  expect_incremented_once(f);
  EXPECT_EQ(fault_injector::fired_count(), 1);
}

TEST_P(LoopFailureTest, ExhaustedRetriesDegradeToSeq) {
  start(/*max_retries=*/1, /*fallback=*/true);
  auto f = make_fixture();
  // Budget of 2 fires: the initial attempt and the single retry both
  // fail; the seq fallback runs clean.
  fault_injector::configure("guarded:throw:at=1,count=2");
  if (GetParam() == "seq") {
    // Already on seq: the fallback is skipped and the loop fails for
    // good, with the write set rolled back.
    EXPECT_THROW(run_guarded(f), loop_error);
    for (const double v : f.b.data<double>()) {
      ASSERT_EQ(v, 0.0);
    }
  } else {
    run_guarded(f);
    expect_incremented_once(f);
  }
  EXPECT_EQ(fault_injector::fired_count(), 2);
}

TEST_P(LoopFailureTest, LoopErrorCarriesStructuredContext) {
  start(/*max_retries=*/1, /*fallback=*/false);
  auto f = make_fixture();
  fault_injector::configure("guarded:throw:at=1,count=-1");  // never stops
  try {
    run_guarded(f);
    FAIL() << "expected op2::loop_error";
  } catch (const loop_error& e) {
    EXPECT_EQ(e.loop(), "guarded");
    EXPECT_EQ(e.backend(), backend_registry::resolve(GetParam()));
    EXPECT_EQ(e.attempts(), 2);  // initial + one retry
    ASSERT_NE(e.cause(), nullptr);
    EXPECT_THROW(std::rethrow_exception(e.cause()), fault_injected_error);
    EXPECT_NE(std::string(e.what()).find("guarded"), std::string::npos);
  }
  // The final rollback leaves the write set untouched.
  for (const double v : f.b.data<double>()) {
    ASSERT_EQ(v, 0.0);
  }
}

TEST_P(LoopFailureTest, AsyncFutureCarriesTheFailure) {
  start(/*max_retries=*/0, /*fallback=*/false);
  auto f = make_fixture();
  fault_injector::configure("guarded:throw:at=1");
  auto done = op_par_loop_async(
      inc_kernel, "guarded", f.s,
      op_arg_dat<double>(f.a, -1, OP_ID, 1, OP_READ),
      op_arg_dat<double>(f.b, -1, OP_ID, 1, OP_INC));
  EXPECT_THROW(done.get(), fault_injected_error);
}

TEST_P(LoopFailureTest, UserKernelExceptionSurfacesViaAsyncGet) {
  start(/*max_retries=*/0, /*fallback=*/false);
  auto f = make_fixture();
  auto done = op_par_loop_async(
      [](const double* a, double* b) {
        if (a[0] == 3.0) {
          throw std::runtime_error("kernel blew up");
        }
        b[0] += a[0];
      },
      "explosive", f.s, op_arg_dat<double>(f.a, -1, OP_ID, 1, OP_READ),
      op_arg_dat<double>(f.b, -1, OP_ID, 1, OP_INC));
  EXPECT_THROW(done.get(), std::runtime_error);
}

TEST_P(LoopFailureTest, ThrowingTaskOnThePoolSurfacesViaGet) {
  start(/*max_retries=*/0, /*fallback=*/false);
  if (!backend_registry::shared(GetParam()).capabilities()
           .needs_hpx_runtime) {
    GTEST_SKIP() << GetParam() << " runs no hpxlite worker pool";
  }
  auto f = hpxlite::async(hpxlite::launch::async,
                          [] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, LoopFailureTest,
    ::testing::ValuesIn(op2::backend_registry::names()),
    [](const ::testing::TestParamInfo<std::string>& pinfo) {
      return pinfo.param;
    });

// --- dataflow dependency-failure propagation --------------------------

class DataflowFailureTest : public ::testing::Test {
 protected:
  void TearDown() override {
    fault_injector::clear();
    op2::finalize();
  }
};

TEST_F(DataflowFailureTest, FailedLoopSurfacesAtDatGet) {
  auto cfg = make_config("hpx_dataflow", 2, 16);
  op2::init(cfg);  // no failure policy: the fault is fatal
  auto s = op_decl_set(64, "s");
  auto a = op_decl_dat<double>(s, 1, "double", "a");
  op_dat_df da(a);
  fault_injector::configure("writer:throw:at=1");
  op_par_loop([](double* x) { x[0] = 1.0; }, "writer", s,
              op_arg_dat1<double>(da, -1, OP_ID, 1, OP_WRITE));
  // A dependent reader parks behind the failed writer; its node
  // re-observes the dependency and propagates the same error.
  op_par_loop([](const double* x) { (void)x; }, "reader", s,
              op_arg_dat1<double>(da, -1, OP_ID, 1, OP_READ));
  EXPECT_THROW(da.get(), fault_injected_error);
}

TEST_F(DataflowFailureTest, PolicyRecoversInsideTheNode) {
  auto cfg = make_config("hpx_dataflow", 2, 16);
  cfg.on_failure.max_retries = 1;
  op2::init(cfg);
  auto s = op_decl_set(64, "s");
  auto a = op_decl_dat<double>(s, 1, "double", "a");
  op_dat_df da(a);
  fault_injector::configure("writer:throw:at=1");
  op_par_loop([](double* x) { x[0] += 1.0; }, "writer", s,
              op_arg_dat1<double>(da, -1, OP_ID, 1, OP_WRITE));
  da.get();  // no error: the node rolled back and retried
  for (const double v : a.data<double>()) {
    ASSERT_EQ(v, 1.0);
  }
  EXPECT_EQ(fault_injector::fired_count(), 1);
}

// --- abandoned-future accounting --------------------------------------

TEST(AbandonedFutures, UnobservedExceptionsAreCounted) {
  const auto before = hpxlite::abandoned_exception_count();
  {
    auto dropped = hpxlite::make_exceptional_future<void>(
        std::make_exception_ptr(std::runtime_error("dropped silently")));
  }
  EXPECT_EQ(hpxlite::abandoned_exception_count(), before + 1);
  {
    auto observed = hpxlite::make_exceptional_future<void>(
        std::make_exception_ptr(std::runtime_error("observed")));
    EXPECT_THROW(observed.get(), std::runtime_error);
  }
  // get() marked the exception observed: no new abandonment.
  EXPECT_EQ(hpxlite::abandoned_exception_count(), before + 1);
}

}  // namespace
