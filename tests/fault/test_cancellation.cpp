// Cancellation, deadlines and the degradation ladder, across backends
// and API flavours: a deadline-missed (or watchdog-cancelled) attempt
// is rolled back and re-run one rung down the ladder until the
// uncancellable seq floor, with the cancels/ddl_miss/degrade profiling
// counters recording what happened.  Also covers the policy grammar,
// the OP2_DATAFLOW_WINDOW bounded admission window, and a TSan-friendly
// cancel-vs-complete stress race.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "hpxlite/hpxlite.hpp"
#include "op2/backpressure.hpp"
#include "op2/op2.hpp"

namespace {

using namespace op2;

void inc_kernel(const double* a, double* b) { b[0] += a[0]; }

class CancellationTest : public ::testing::TestWithParam<std::string> {
 protected:
  void TearDown() override {
    fault_injector::clear();
    hpxlite::watchdog::stop();
    profiling::enable(false);
    profiling::reset();
    op2::finalize();
  }

  void start(int deadline_ms, bool ladder) {
    auto cfg = make_config(GetParam(), 2, 16);
    cfg.on_failure.deadline_ms = deadline_ms;
    cfg.on_failure.ladder = ladder;
    op2::init(cfg);
  }

  struct fixture {
    op_set s;
    op_dat a, b;
  };

  fixture make_fixture() {
    fixture f;
    f.s = op_decl_set(96, "s");
    std::vector<double> init(96);
    std::iota(init.begin(), init.end(), 1.0);
    f.a = op_decl_dat<double>(f.s, 1, "double",
                              std::span<const double>(init), "a");
    f.b = op_decl_dat<double>(f.s, 1, "double", "b");
    return f;
  }

  void run_guarded(fixture& f) {
    op_par_loop(inc_kernel, "guarded", f.s,
                op_arg_dat<double>(f.a, -1, OP_ID, 1, OP_READ),
                op_arg_dat<double>(f.b, -1, OP_ID, 1, OP_INC));
  }

  static void expect_incremented_once(fixture& f) {
    const auto a = f.a.data<double>();
    const auto b = f.b.data<double>();
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(b[i], a[i]) << "element " << i;
    }
  }
};

// --- deadline miss -> ladder, sync API, every backend -----------------

TEST_P(CancellationTest, DeadlineMissDegradesDownTheLadderAndCompletes) {
  if (GetParam() == "seq") {
    // seq is the uncancellable floor even as the configured backend:
    // the deadline policy must leave a clean run untouched.
    start(/*deadline_ms=*/100, /*ladder=*/true);
    auto f = make_fixture();
    run_guarded(f);
    expect_incremented_once(f);
    return;
  }
  start(/*deadline_ms=*/150, /*ladder=*/true);
  profiling::enable(true);
  auto f = make_fixture();
  // One chunk of the first attempt stalls far beyond the deadline; the
  // deadline service stops the attempt's token, the stalled chunk wakes
  // cancelled, and the ladder re-runs the loop a rung down (the fault's
  // fire budget is spent, so the re-run is clean).
  fault_injector::configure("guarded:stall:at=1,stall_ms=60000");
  run_guarded(f);
  expect_incremented_once(f);
  EXPECT_EQ(fault_injector::fired_count(), 1);
  const auto prof = profiling::snapshot().at("guarded");
  EXPECT_GE(prof.deadline_misses, 1u);
  EXPECT_GE(prof.cancellations, 1u);
  EXPECT_GE(prof.degradations, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, CancellationTest,
    ::testing::ValuesIn(op2::backend_registry::names()),
    [](const ::testing::TestParamInfo<std::string>& pinfo) {
      return pinfo.param;
    });

// --- the other API flavours -------------------------------------------

class CancellationApiTest : public ::testing::Test {
 protected:
  void TearDown() override {
    fault_injector::clear();
    hpxlite::watchdog::stop();
    profiling::enable(false);
    profiling::reset();
    op2::finalize();
  }
};

TEST_F(CancellationApiTest, AsyncLaunchDeadlineMissRecoversViaLadder) {
  auto cfg = make_config("hpx_async", 2, 16);
  cfg.on_failure.deadline_ms = 150;
  cfg.on_failure.ladder = true;
  op2::init(cfg);
  auto s = op_decl_set(96, "s");
  std::vector<double> init(96);
  std::iota(init.begin(), init.end(), 1.0);
  auto a = op_decl_dat<double>(s, 1, "double",
                               std::span<const double>(init), "a");
  auto b = op_decl_dat<double>(s, 1, "double", "b");
  fault_injector::configure("guarded:stall:at=1,stall_ms=60000");
  auto done = op_par_loop_async(
      inc_kernel, "guarded", s, op_arg_dat<double>(a, -1, OP_ID, 1, OP_READ),
      op_arg_dat<double>(b, -1, OP_ID, 1, OP_INC));
  done.get();  // recovery happens inside the completion continuation
  const auto av = a.data<double>();
  const auto bv = b.data<double>();
  for (std::size_t i = 0; i < av.size(); ++i) {
    ASSERT_EQ(bv[i], av[i]) << "element " << i;
  }
  EXPECT_EQ(fault_injector::fired_count(), 1);
}

TEST_F(CancellationApiTest, DataflowApiDeadlineMissRecoversViaLadder) {
  auto cfg = make_config("hpx_dataflow", 2, 16);
  cfg.on_failure.deadline_ms = 150;
  cfg.on_failure.ladder = true;
  op2::init(cfg);
  auto s = op_decl_set(96, "s");
  auto a = op_decl_dat<double>(s, 1, "double", "a");
  op_dat_df da(a);
  fault_injector::configure("writer:stall:at=1,stall_ms=60000");
  op_par_loop([](double* x) { x[0] += 1.0; }, "writer", s,
              op_arg_dat1<double>(da, -1, OP_ID, 1, OP_WRITE));
  da.get();  // the node degraded internally; no error escapes
  for (const double v : a.data<double>()) {
    ASSERT_EQ(v, 1.0);
  }
  EXPECT_EQ(fault_injector::fired_count(), 1);
}

TEST_F(CancellationApiTest, PreparedReplayHonoursTheDeadlineLadder) {
  auto cfg = make_config("hpx_foreach", 2, 4);
  cfg.on_failure.deadline_ms = 100;
  cfg.on_failure.ladder = true;
  cfg.prepared_loops = true;
  // Dynamic chunking: workers poll the cancel token on every claim, so
  // the cancelled attempt abandons within one block per worker.
  cfg.chunker = "dynamic:1";
  op2::init(cfg);
  profiling::enable(true);
  auto s = op_decl_set(256, "s");
  auto x = op_decl_dat<double>(s, 1, "double", "x");
  // The kernel dawdles only when asked: the first invocation captures
  // the prepared descriptor at full speed, then the replayed second
  // invocation blows the deadline and must ride the ladder down to a
  // backend that completes (the seq floor runs deadline-free).
  static std::atomic<bool> dawdle{false};
  dawdle = false;
  const auto slow_inc = [](double* v) {
    if (dawdle.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    v[0] += 1.0;
  };
  const auto run_once = [&] {
    op_par_loop(slow_inc, "dawdler", s,
                op_arg_dat<double>(x, -1, OP_ID, 1, OP_RW));
  };
  run_once();  // capture, fast
  dawdle = true;
  run_once();  // replay, slow: deadline miss -> ladder -> completes
  dawdle = false;
  for (const double v : x.data<double>()) {
    ASSERT_EQ(v, 2.0);
  }
  const auto prof = profiling::snapshot().at("dawdler");
  EXPECT_GE(prof.deadline_misses, 1u);
  EXPECT_GE(prof.degradations, 1u);
}

// --- watchdog supervise mode ------------------------------------------

TEST_F(CancellationApiTest, WatchdogCancelsAStalledLoopInsteadOfAborting) {
  // No deadline: the watchdog's stall verdict is the only supervisor.
  // OP2_WATCHDOG_MS with a ladder policy installs the supervise handler
  // (cancel stalled activities; never abort).
  setenv("OP2_WATCHDOG_MS", "150", 1);
  setenv("OP2_FAILURE_POLICY", "ladder=on", 1);
  auto cfg = make_config("hpx_foreach", 2, 16);
  op2::init(cfg);
  unsetenv("OP2_WATCHDOG_MS");
  unsetenv("OP2_FAILURE_POLICY");
  profiling::enable(true);
  auto s = op_decl_set(96, "s");
  std::vector<double> init(96);
  std::iota(init.begin(), init.end(), 1.0);
  auto a = op_decl_dat<double>(s, 1, "double",
                               std::span<const double>(init), "a");
  auto b = op_decl_dat<double>(s, 1, "double", "b");
  fault_injector::configure("guarded:stall:at=1,stall_ms=60000");
  op_par_loop(inc_kernel, "guarded", s,
              op_arg_dat<double>(a, -1, OP_ID, 1, OP_READ),
              op_arg_dat<double>(b, -1, OP_ID, 1, OP_INC));
  const auto av = a.data<double>();
  const auto bv = b.data<double>();
  for (std::size_t i = 0; i < av.size(); ++i) {
    ASSERT_EQ(bv[i], av[i]) << "element " << i;
  }
  EXPECT_GE(hpxlite::watchdog::cancellations(), 1u);
  const auto prof = profiling::snapshot().at("guarded");
  EXPECT_GE(prof.cancellations, 1u);
  EXPECT_GE(prof.degradations, 1u);
}

// --- policy grammar ----------------------------------------------------

TEST(FailurePolicyGrammar, DeadlineAndLadderParse) {
  auto p = parse_failure_policy("retries=1,deadline=250");
  EXPECT_EQ(p.max_retries, 1);
  EXPECT_EQ(p.deadline_ms, 250);
  EXPECT_TRUE(p.ladder);  // a deadline implies the ladder by default
  EXPECT_TRUE(p.enabled());

  p = parse_failure_policy("deadline=100,ladder=off");
  EXPECT_EQ(p.deadline_ms, 100);
  EXPECT_FALSE(p.ladder);

  p = parse_failure_policy("ladder=on");
  EXPECT_TRUE(p.ladder);
  EXPECT_EQ(p.deadline_ms, 0);
  EXPECT_TRUE(p.enabled());

  EXPECT_THROW(parse_failure_policy("deadline=-5"), std::invalid_argument);
  EXPECT_THROW(parse_failure_policy("deadline=abc"), std::invalid_argument);
  EXPECT_THROW(parse_failure_policy("ladder=maybe"), std::invalid_argument);
}

TEST(DataflowWindowEnv, RejectsMalformedValues) {
  setenv("OP2_DATAFLOW_WINDOW", "not-a-number", 1);
  EXPECT_THROW(op2::init(make_config("seq", 1, 16)), std::invalid_argument);
  setenv("OP2_DATAFLOW_WINDOW", "-3", 1);
  EXPECT_THROW(op2::init(make_config("seq", 1, 16)), std::invalid_argument);
  unsetenv("OP2_DATAFLOW_WINDOW");
  op2::finalize();
}

// --- bounded dataflow window ------------------------------------------

TEST_F(CancellationApiTest, DataflowWindowBoundsOutstandingNodes) {
  constexpr std::size_t window = 3;
  auto cfg = make_config("hpx_dataflow", 2, 16);
  cfg.dataflow_window = window;
  op2::init(cfg);
  reset_dataflow_window_peak();
  auto s = op_decl_set(64, "s");
  auto a = op_decl_dat<double>(s, 1, "double", "a");
  op_dat_df da(a);
  // A 24-deep RAW chain: every node depends on the previous one, so an
  // unbounded submission would put all 24 in flight at once.  Admission
  // must block the driver at `window` outstanding nodes.
  for (int i = 0; i < 24; ++i) {
    op_par_loop([](double* x) { x[0] += 1.0; }, "chain", s,
                op_arg_dat1<double>(da, -1, OP_ID, 1, OP_RW));
  }
  da.get();
  const auto stats = get_dataflow_window_stats();
  EXPECT_EQ(stats.cap, window);
  EXPECT_GE(stats.peak, 1u);
  EXPECT_LE(stats.peak, window);
  EXPECT_EQ(stats.in_flight, 0u);
  for (const double v : a.data<double>()) {
    ASSERT_EQ(v, 24.0);
  }
}

TEST_F(CancellationApiTest, UnboundedWindowStillTracksThePeak) {
  auto cfg = make_config("hpx_dataflow", 2, 16);
  op2::init(cfg);  // dataflow_window = 0: unbounded
  reset_dataflow_window_peak();
  auto s = op_decl_set(64, "s");
  auto a = op_decl_dat<double>(s, 1, "double", "a");
  op_dat_df da(a);
  for (int i = 0; i < 8; ++i) {
    op_par_loop([](double* x) { x[0] += 1.0; }, "chain", s,
                op_arg_dat1<double>(da, -1, OP_ID, 1, OP_RW));
  }
  da.get();
  const auto stats = get_dataflow_window_stats();
  EXPECT_EQ(stats.cap, 0u);
  EXPECT_GE(stats.peak, 1u);
  EXPECT_EQ(stats.in_flight, 0u);
}

// --- cancel-vs-complete stress (run under TSan in scripts/check.sh) ---

TEST(CancelStress, RacingCancellationAgainstCompletionIsClean) {
  hpxlite::runtime::reset(4);
  for (int round = 0; round < 60; ++round) {
    hpxlite::stop_source src;
    std::vector<int> items(2048);
    std::atomic<int> executed{0};
    auto work = hpxlite::parallel::for_each(
        hpxlite::par(hpxlite::task)
            .with(hpxlite::dynamic_chunk_size(16))
            .with(src.get_token()),
        items.begin(), items.end(), [&executed](int&) {
          executed.fetch_add(1, std::memory_order_relaxed);
        });
    if (round % 2 == 0) {
      std::this_thread::yield();
    }
    src.request_stop();  // races the loop's natural completion
    try {
      work.get();
      EXPECT_EQ(executed.load(), 2048);  // completion won the race
    } catch (const hpxlite::operation_cancelled&) {
      EXPECT_LE(executed.load(), 2048);  // cancellation won
    }
  }
  hpxlite::runtime::shutdown();
}

}  // namespace
