// Fault-injection matrix over the Airfoil solver: every registered
// backend × {res_calc, update} × {throw, stall, corrupt}.  Each faulted
// run must converge to the same RMS history as the fault-free run on
// the same backend — recovery is only recovery if the physics agrees.
//
// Also hosts the acceptance scenarios of the resilience work:
//   - OP2_FAULT-driven throw into res_calc under hpx_dataflow recovers
//     via rollback/retry with RMS matching the fault-free run to 1e-12
//   - the same spec with retries exhausted degrades to seq, completes,
//     and shows up in the op_timing_output counters
//   - a stall fault trips the watchdog, which names the stuck loop and
//     backend and releases the stall instead of hanging the suite
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "airfoil/airfoil.hpp"
#include "hpxlite/watchdog.hpp"

namespace {

using namespace std::chrono_literals;
using airfoil::generate_mesh;
using airfoil::make_sim;
using airfoil::mesh_params;
using airfoil::run_result;
using airfoil::run_with_backend;
using op2::fault_injector;

constexpr int kIters = 6;
constexpr unsigned kThreads = 2;

mesh_params tiny() {
  mesh_params p;
  p.imax = 16;
  p.jmax = 6;
  return p;
}

run_result run_clean(const std::string& backend) {
  op2::init(op2::make_config(backend, kThreads, 32));
  auto s = make_sim(generate_mesh(tiny()));
  auto r = run_with_backend(s, kIters, backend);
  op2::finalize();
  return r;
}

/// Fault-free reference per backend, computed once.
const run_result& reference(const std::string& backend) {
  static std::mutex mutex;
  static std::map<std::string, run_result> refs;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = refs.find(backend);
  if (it == refs.end()) {
    it = refs.emplace(backend, run_clean(backend)).first;
  }
  return it->second;
}

void expect_rms_matches(const run_result& got, const run_result& want,
                        const std::string& context) {
  ASSERT_EQ(got.rms_history.size(), want.rms_history.size()) << context;
  for (std::size_t i = 0; i < want.rms_history.size(); ++i) {
    const double ref = want.rms_history[i];
    EXPECT_NEAR(got.rms_history[i], ref,
                1e-12 * std::max(1.0, std::fabs(ref)))
        << context << " iteration " << i;
  }
}

struct matrix_case {
  std::string backend;
  std::string loop;  // res_calc or update
};

std::vector<matrix_case> all_cases() {
  std::vector<matrix_case> cases;
  for (const auto& backend : op2::backend_registry::names()) {
    for (const char* loop : {"res_calc", "update"}) {
      cases.push_back({backend, loop});
    }
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<matrix_case>& info) {
  return info.param.backend + "_" + info.param.loop;
}

class FaultMatrix : public ::testing::TestWithParam<matrix_case> {
 protected:
  void TearDown() override {
    fault_injector::clear();
    hpxlite::watchdog::stop();
    op2::finalize();
  }
};

TEST_P(FaultMatrix, ThrowRecoversViaRollbackAndRetry) {
  const auto& [backend, loop] = GetParam();
  const auto& ref = reference(backend);  // before arming the fault
  auto cfg = op2::make_config(backend, kThreads, 32);
  cfg.on_failure.max_retries = 2;
  cfg.on_failure.fallback_to_seq = true;
  op2::init(cfg);
  fault_injector::configure(loop + ":throw:at=3");
  auto s = make_sim(generate_mesh(tiny()));
  const auto r = run_with_backend(s, kIters, backend);
  EXPECT_EQ(fault_injector::fired_count(), 1);
  expect_rms_matches(r, ref, backend + "/" + loop + "/throw");
}

TEST_P(FaultMatrix, StallTripsTheWatchdogWhichNamesAndReleasesIt) {
  const auto& [backend, loop] = GetParam();
  const auto& ref = reference(backend);  // before arming the fault
  op2::init(op2::make_config(backend, kThreads, 32));
  // Stall one chunk of the target loop hard (5 s cap as a safety net);
  // the watchdog must notice the silence, report the stuck loop, and
  // the handler frees it — the suite never hangs.
  fault_injector::configure(loop + ":stall:at=3,stall_ms=5000");
  std::mutex mutex;
  std::vector<std::string> seen;
  hpxlite::watchdog::start(100ms, [&](const hpxlite::watchdog_report& r) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      seen.insert(seen.end(), r.activities.begin(), r.activities.end());
    }
    fault_injector::release_stalls();
  });
  auto s = make_sim(generate_mesh(tiny()));
  const auto r = run_with_backend(s, kIters, backend);
  EXPECT_EQ(fault_injector::fired_count(), 1);
  EXPECT_GE(hpxlite::watchdog::stalls_detected(), 1u);
  // The diagnostic names the stuck loop and the backend executing it
  // (dataflow nodes run their colour sweep on the hpx_foreach executor).
  const std::string executing =
      backend == "hpx_dataflow" ? "hpx_foreach" : backend;
  bool named = false;
  {
    std::lock_guard<std::mutex> lock(mutex);
    for (const auto& activity : seen) {
      // The sharded driver runs per-shard instances ("res_calc@s1");
      // the diagnostic must still name the stuck kernel.
      if ((activity.find("'" + loop + "'") != std::string::npos ||
           activity.find("'" + loop + "@s") != std::string::npos) &&
          activity.find(executing) != std::string::npos) {
        named = true;
      }
    }
  }
  EXPECT_TRUE(named) << backend << "/" << loop;
  // A released stall runs the chunk normally afterwards: same physics.
  expect_rms_matches(r, ref, backend + "/" + loop + "/stall");
}

TEST_P(FaultMatrix, CorruptHealsThroughCheckpointRestart) {
  const auto& [backend, loop] = GetParam();
  const auto& ref = reference(backend);  // before arming the fault
  op2::init(op2::make_config(backend, kThreads, 32));
  // Loop invocation 5 = iteration 3 (two RK stages per iteration), in
  // the second 2-iteration checkpoint segment.  The poisoned output is
  // caught by the segment health check; the replay runs clean because
  // the single-fire budget is spent.
  fault_injector::configure(loop + ":corrupt:at=5");
  auto s = make_sim(generate_mesh(tiny()));
  airfoil::resilience_options opts;
  opts.checkpoint_path =
      ::testing::TempDir() + "matrix_" + backend + "_" + loop + ".chk";
  opts.checkpoint_every = 2;
  const auto r = airfoil::run_resilient(s, kIters, opts);
  EXPECT_EQ(fault_injector::fired_count(), 1);
  EXPECT_GE(r.restarts, 1);
  EXPECT_GE(r.iterations_replayed, 1);
  EXPECT_TRUE(std::isfinite(airfoil::solution_checksum(s)));
  expect_rms_matches(r.run, ref, backend + "/" + loop + "/corrupt");
}

INSTANTIATE_TEST_SUITE_P(Registry, FaultMatrix,
                         ::testing::ValuesIn(all_cases()), case_name);

// --- ISSUE acceptance scenarios ---------------------------------------

class AcceptanceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ::unsetenv("OP2_FAULT");
    ::unsetenv("OP2_FAILURE_POLICY");
    fault_injector::clear();
    op2::profiling::enable(false);
    op2::profiling::reset();
    op2::finalize();
  }
};

TEST_F(AcceptanceTest, EnvDrivenThrowIntoResCalcRecoversOnDataflow) {
  // Reference first: run_clean re-enters op2::init, which would re-arm
  // the fault from OP2_FAULT if the variable were already exported.
  const auto& ref = reference("hpx_dataflow");
  ::setenv("OP2_FAULT", "res_calc:throw:at=10", 1);
  ::setenv("OP2_FAILURE_POLICY", "retries=2,fallback=on", 1);
  op2::init(op2::make_config("hpx_dataflow", kThreads, 32));
  auto s = make_sim(generate_mesh(tiny()));
  const auto r = run_with_backend(s, kIters, "hpx_dataflow");
  EXPECT_EQ(fault_injector::fired_count(), 1);
  expect_rms_matches(r, ref, "acceptance/env-throw");
}

TEST_F(AcceptanceTest, ExhaustedRetriesDegradeToSeqAndStillComplete) {
  const auto& ref = reference("hpx_foreach");
  auto cfg = op2::make_config("hpx_foreach", kThreads, 32);
  cfg.on_failure.max_retries = 2;
  cfg.on_failure.fallback_to_seq = true;
  op2::init(cfg);
  op2::profiling::enable(true);
  op2::profiling::reset();
  // Budget of 3: the initial attempt and both retries fail; the seq
  // fallback executes the loop cleanly and the solve completes.
  fault_injector::configure("res_calc:throw:at=3,count=3");
  auto s = make_sim(generate_mesh(tiny()));
  const auto r = run_with_backend(s, kIters, "hpx_foreach");
  EXPECT_EQ(fault_injector::fired_count(), 3);
  expect_rms_matches(r, ref, "acceptance/degrade");
  const auto profiles = op2::profiling::snapshot();
  const auto it = profiles.find("res_calc");
  ASSERT_NE(it, profiles.end());
  EXPECT_EQ(it->second.retries, 2u);
  EXPECT_EQ(it->second.fallbacks, 1u);
}

}  // namespace
