// Solver-level self-healing: run_resilient's checkpoint/restart loop in
// isolation (the cross-backend behaviour is covered by the matrix).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "airfoil/airfoil.hpp"

namespace {

using airfoil::generate_mesh;
using airfoil::make_sim;
using airfoil::mesh_params;
using airfoil::resilience_options;
using airfoil::run_resilient;
using airfoil::run_with_backend;
using op2::fault_injector;

mesh_params tiny() {
  mesh_params p;
  p.imax = 16;
  p.jmax = 6;
  return p;
}

resilience_options options(const std::string& tag) {
  resilience_options opts;
  opts.checkpoint_path = ::testing::TempDir() + "resilience_" + tag + ".chk";
  opts.checkpoint_every = 2;
  return opts;
}

class ResilienceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    fault_injector::clear();
    op2::finalize();
  }
};

TEST_F(ResilienceTest, HealthyRunMatchesThePlainDriver) {
  op2::init(op2::make_config("seq", 1, 32));
  auto plain = make_sim(generate_mesh(tiny()));
  const auto want = run_with_backend(plain, 6, "seq");

  auto s = make_sim(generate_mesh(tiny()));
  const auto got = run_resilient(s, 6, options("healthy"));
  EXPECT_EQ(got.restarts, 0);
  EXPECT_EQ(got.iterations_replayed, 0);
  ASSERT_EQ(got.run.rms_history.size(), want.rms_history.size());
  for (std::size_t i = 0; i < want.rms_history.size(); ++i) {
    EXPECT_EQ(got.run.rms_history[i], want.rms_history[i]) << i;
  }
  EXPECT_EQ(airfoil::solution_checksum(s),
            airfoil::solution_checksum(plain));
}

TEST_F(ResilienceTest, NiterNotAMultipleOfSegmentLengthStillCompletes) {
  op2::init(op2::make_config("seq", 1, 32));
  auto s = make_sim(generate_mesh(tiny()));
  const auto got = run_resilient(s, 5, options("ragged"));
  EXPECT_EQ(got.run.rms_history.size(), 5u);
}

TEST_F(ResilienceTest, CorruptionIsRolledBackToTheLastCheckpoint) {
  op2::init(op2::make_config("seq", 1, 32));
  fault_injector::configure("update:corrupt:at=6");  // iteration 3
  auto s = make_sim(generate_mesh(tiny()));
  const auto got = run_resilient(s, 6, options("corrupt"));
  EXPECT_EQ(got.restarts, 1);
  EXPECT_EQ(got.iterations_replayed, 2);  // segment [3, 4] replayed
  EXPECT_TRUE(std::isfinite(airfoil::solution_checksum(s)));
  for (const double rms : got.run.rms_history) {
    EXPECT_TRUE(std::isfinite(rms));
  }
}

TEST_F(ResilienceTest, GivesUpAfterMaxRestarts) {
  op2::init(op2::make_config("seq", 1, 32));
  // Unlimited budget: every replay re-poisons the segment.
  fault_injector::configure("update:corrupt:at=2,count=-1");
  auto s = make_sim(generate_mesh(tiny()));
  auto opts = options("give_up");
  opts.max_restarts = 2;
  try {
    run_resilient(s, 6, opts);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("restart"), std::string::npos);
  }
}

TEST_F(ResilienceTest, RejectsInvalidOptions) {
  op2::init(op2::make_config("seq", 1, 32));
  auto s = make_sim(generate_mesh(tiny()));
  resilience_options no_path;
  EXPECT_THROW(run_resilient(s, 2, no_path), std::invalid_argument);
  auto bad_every = options("bad_every");
  bad_every.checkpoint_every = 0;
  EXPECT_THROW(run_resilient(s, 2, bad_every), std::invalid_argument);
}

}  // namespace
