// Unit tests for the deterministic fault injector: spec grammar,
// arming/claim semantics, fire budgets, stall release, corruption.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "op2/fault.hpp"

namespace {

using op2::fault_injector;
using op2::fault_kind;
using op2::fault_spec;
using op2::parse_fault_spec;

class FaultInjectorTest : public ::testing::Test {
 protected:
  void TearDown() override { fault_injector::clear(); }
};

TEST_F(FaultInjectorTest, ParsesMinimalSpec) {
  const fault_spec s = parse_fault_spec("res_calc:throw");
  EXPECT_EQ(s.loop, "res_calc");
  EXPECT_EQ(s.kind, fault_kind::throw_);
  EXPECT_EQ(s.at, 1);  // defaults to the first invocation
  EXPECT_EQ(s.count, 1);
}

TEST_F(FaultInjectorTest, ParsesEveryOption) {
  const fault_spec s =
      parse_fault_spec("update:stall:at=7,seed=99,count=3,stall_ms=250");
  EXPECT_EQ(s.loop, "update");
  EXPECT_EQ(s.kind, fault_kind::stall);
  EXPECT_EQ(s.at, 7);
  EXPECT_EQ(s.seed, 99u);
  EXPECT_EQ(s.count, 3);
  EXPECT_EQ(s.stall_ms, 250);

  const fault_spec p = parse_fault_spec("adt_calc:corrupt:prob=0.25");
  EXPECT_EQ(p.kind, fault_kind::corrupt);
  EXPECT_EQ(p.at, 0);  // prob mode
  EXPECT_DOUBLE_EQ(p.probability, 0.25);
}

TEST_F(FaultInjectorTest, RejectsMalformedSpecs) {
  for (const char* bad :
       {"", "res_calc", ":throw", "res_calc:explode", "a:throw:b:c",
        "res_calc:throw:at=0", "res_calc:throw:prob=1.5",
        "res_calc:throw:count=0", "res_calc:throw:stall_ms=-1",
        "res_calc:throw:bogus=1", "res_calc:throw:at"}) {
    EXPECT_THROW(parse_fault_spec(bad), std::invalid_argument) << bad;
  }
}

TEST_F(FaultInjectorTest, ErrorMessageTeachesTheGrammar) {
  try {
    parse_fault_spec("res_calc:explode");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("<loop>:<kind>"), std::string::npos);
  }
}

TEST_F(FaultInjectorTest, ArmsTheTargetLoopAtTheConfiguredInvocation) {
  fault_injector::configure("res_calc:throw:at=2");
  EXPECT_TRUE(fault_injector::active());
  EXPECT_EQ(fault_injector::arm("update"), nullptr);   // wrong loop
  EXPECT_EQ(fault_injector::arm("res_calc"), nullptr); // invocation 1
  auto arming = fault_injector::arm("res_calc");       // invocation 2
  ASSERT_NE(arming, nullptr);
  EXPECT_THROW(op2::detail::fire_fault_pre(*arming),
               op2::fault_injected_error);
  EXPECT_EQ(fault_injector::fired_count(), 1);
  // Budget (count=1) spent: the fault has disarmed.
  EXPECT_EQ(fault_injector::arm("res_calc"), nullptr);
}

TEST_F(FaultInjectorTest, OneFirePerAttemptAndBudgetSpansAttempts) {
  fault_injector::configure("x:throw:at=1,count=2");
  auto arming = fault_injector::arm("x");
  ASSERT_NE(arming, nullptr);
  EXPECT_TRUE(arming->claim());
  EXPECT_FALSE(arming->claim());  // same attempt: already fired
  arming->begin_attempt();        // the retry machinery re-arms
  EXPECT_TRUE(arming->claim());
  arming->begin_attempt();
  EXPECT_FALSE(arming->claim());  // budget of 2 exhausted
}

TEST_F(FaultInjectorTest, CorruptOverwritesAnOutputWithNaN) {
  fault_injector::configure("x:corrupt:at=1");
  auto arming = fault_injector::arm("x");
  ASSERT_NE(arming, nullptr);
  double buf[2] = {1.0, 2.0};
  op2::detail::fire_fault_post(*arming,
                               reinterpret_cast<std::byte*>(buf),
                               sizeof(buf));
  EXPECT_TRUE(std::isnan(buf[0]));
  EXPECT_EQ(buf[1], 2.0);
  EXPECT_EQ(fault_injector::fired_count(), 1);
}

TEST_F(FaultInjectorTest, ProbabilisticFiringIsDeterministicForASeed) {
  const auto pattern = [] {
    std::vector<bool> fired;
    fault_injector::configure("x:throw:prob=0.5,seed=42,count=-1");
    for (int i = 0; i < 32; ++i) {
      fired.push_back(fault_injector::arm("x") != nullptr);
    }
    return fired;
  };
  const auto first = pattern();
  const auto second = pattern();
  EXPECT_EQ(first, second);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
}

TEST_F(FaultInjectorTest, StallBlocksUntilReleased) {
  fault_injector::configure("x:stall:at=1,stall_ms=30000");
  auto arming = fault_injector::arm("x");
  ASSERT_NE(arming, nullptr);
  std::thread stuck([arming] { op2::detail::fire_fault_pre(*arming); });
  while (fault_injector::stalls_in_progress() == 0) {
    std::this_thread::yield();
  }
  fault_injector::release_stalls();
  stuck.join();
  EXPECT_EQ(fault_injector::stalls_in_progress(), 0);
  EXPECT_EQ(fault_injector::fired_count(), 1);
}

TEST_F(FaultInjectorTest, ConfiguresFromEnvironment) {
  ::setenv("OP2_FAULT", "update:corrupt:at=4,count=2", 1);
  EXPECT_TRUE(fault_injector::configure_from_env());
  const fault_spec s = fault_injector::current();
  EXPECT_EQ(s.loop, "update");
  EXPECT_EQ(s.kind, fault_kind::corrupt);
  EXPECT_EQ(s.at, 4);
  EXPECT_EQ(s.count, 2);
  ::unsetenv("OP2_FAULT");
  EXPECT_FALSE(fault_injector::configure_from_env());
}

TEST_F(FaultInjectorTest, ClearDisarms) {
  fault_injector::configure("x:throw:at=1");
  fault_injector::clear();
  EXPECT_FALSE(fault_injector::active());
  EXPECT_EQ(fault_injector::arm("x"), nullptr);
  EXPECT_EQ(fault_injector::current().kind, fault_kind::none);
}

}  // namespace
