// hpxlite watchdog: stall detection on heartbeat silence, diagnostic
// reports, recovery handlers, and the cheap-when-stopped hooks.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "hpxlite/watchdog.hpp"

namespace {

using hpxlite::watchdog;
using hpxlite::watchdog_report;
using namespace std::chrono_literals;

/// Collects the first stall report and signals the test thread.
struct report_sink {
  std::mutex mutex;
  std::condition_variable cv;
  bool fired = false;
  watchdog_report report;

  watchdog::stall_handler handler() {
    return [this](const watchdog_report& r) {
      std::lock_guard<std::mutex> lock(mutex);
      if (!fired) {
        report = r;
        fired = true;
      }
      cv.notify_all();
    };
  }

  bool wait(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex);
    return cv.wait_for(lock, timeout, [this] { return fired; });
  }
};

class WatchdogTest : public ::testing::Test {
 protected:
  void TearDown() override { watchdog::stop(); }
};

TEST_F(WatchdogTest, DetectsASilentActivityAndNamesIt) {
  report_sink sink;
  watchdog::start(50ms, sink.handler());
  EXPECT_TRUE(watchdog::running());
  const auto token =
      watchdog::begin_activity("op_par_loop 'stuck_loop' on test_backend");
  ASSERT_TRUE(sink.wait(5s)) << "watchdog never fired";
  ASSERT_EQ(sink.report.activities.size(), 1u);
  EXPECT_NE(sink.report.activities[0].find("stuck_loop"), std::string::npos);
  EXPECT_NE(sink.report.activities[0].find("test_backend"),
            std::string::npos);
  EXPECT_GE(sink.report.stalled_for, 50ms);
  EXPECT_GE(watchdog::stalls_detected(), 1u);
  watchdog::end_activity(token);
}

TEST_F(WatchdogTest, StaysQuietWithNoActivities) {
  report_sink sink;
  watchdog::start(30ms, sink.handler());
  std::this_thread::sleep_for(200ms);
  EXPECT_FALSE(sink.fired);
  EXPECT_EQ(watchdog::stalls_detected(), 0u);
}

TEST_F(WatchdogTest, HeartbeatsSuppressDetection) {
  report_sink sink;
  watchdog::start(250ms, sink.handler());
  const auto token = watchdog::begin_activity("pulsing work");
  for (int i = 0; i < 8; ++i) {
    std::this_thread::sleep_for(40ms);
    watchdog::pulse();
  }
  watchdog::end_activity(token);
  EXPECT_FALSE(sink.fired);
  EXPECT_EQ(watchdog::stalls_detected(), 0u);
}

TEST_F(WatchdogTest, DescribeRendersTheDiagnostic) {
  watchdog_report report;
  report.activities = {"op_par_loop 'res_calc' on hpx_dataflow"};
  report.pulses = 17;
  report.pending_tasks = 3;
  report.stalled_for = 120ms;
  const std::string text = describe(report);
  EXPECT_NE(text.find("no progress for 120 ms"), std::string::npos);
  EXPECT_NE(text.find("res_calc"), std::string::npos);
  EXPECT_NE(text.find("3 pending tasks"), std::string::npos);
}

TEST_F(WatchdogTest, HooksAreSafeWhenStopped) {
  watchdog::stop();  // idempotent
  EXPECT_FALSE(watchdog::running());
  watchdog::pulse();  // one relaxed load, no crash
  const auto token = watchdog::begin_activity("unsupervised");
  watchdog::end_activity(token);
  watchdog::end_activity(9999);  // unknown token ignored
}

}  // namespace
