// Stress/regression scenarios for the runtime: heavy contention,
// many-producer submission, deep dataflow graphs, and repeated pool
// reconfiguration — the situations where scheduler races surface.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "hpxlite/hpxlite.hpp"

namespace {

using hpxlite::runtime;

TEST(Stress, ManyExternalProducers) {
  runtime::reset(3);
  std::atomic<long> count{0};
  constexpr int producers = 6;
  constexpr int per = 2000;
  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&] {
      for (int i = 0; i < per; ++i) {
        runtime::get().submit([&count] { count.fetch_add(1); });
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  runtime::get().wait_idle();
  EXPECT_EQ(count.load(), static_cast<long>(producers) * per);
  runtime::shutdown();
}

TEST(Stress, DeepDataflowFanInFanOut) {
  runtime::reset(2);
  // Layered graph: each layer's nodes consume two nodes of the layer
  // below, 12 layers deep.
  std::vector<hpxlite::future<long>> layer;
  for (int i = 0; i < 64; ++i) {
    layer.push_back(hpxlite::make_ready_future<long>(1));
  }
  while (layer.size() > 1) {
    std::vector<hpxlite::future<long>> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(hpxlite::dataflow(
          hpxlite::unwrapping([](long a, long b) { return a + b; }),
          std::move(layer[i]), std::move(layer[i + 1])));
    }
    layer = std::move(next);
  }
  EXPECT_EQ(layer[0].get(), 64);
  runtime::shutdown();
}

TEST(Stress, RepeatedPoolReset) {
  for (int round = 0; round < 10; ++round) {
    runtime::reset(1 + round % 4);
    std::atomic<int> hits{0};
    for (int i = 0; i < 100; ++i) {
      runtime::get().submit([&hits] { hits.fetch_add(1); });
    }
    runtime::get().wait_idle();
    EXPECT_EQ(hits.load(), 100) << "round " << round;
  }
  runtime::shutdown();
}

TEST(Stress, NestedParallelLoopsSingleWorker) {
  // Pathological nesting on one worker: outer par loop bodies run
  // inner par loops; helping waits must keep everything moving.
  runtime::reset(1);
  std::atomic<long> total{0};
  auto outer = hpxlite::irange(0, 8);
  hpxlite::parallel::for_each(hpxlite::par, outer.begin(), outer.end(),
                              [&](int) {
                                auto inner = hpxlite::irange(0, 50);
                                hpxlite::parallel::for_each(
                                    hpxlite::par, inner.begin(), inner.end(),
                                    [&](int) { total.fetch_add(1); });
                              });
  EXPECT_EQ(total.load(), 400);
  runtime::shutdown();
}

TEST(Stress, ChannelManyProducersManyConsumers) {
  runtime::reset(3);
  hpxlite::channel<int> ch;
  constexpr int items = 3000;
  std::vector<hpxlite::future<void>> producers;
  for (int p = 0; p < 3; ++p) {
    producers.push_back(hpxlite::async([ch, p]() mutable {
      for (int i = p; i < items; i += 3) {
        ch.set(i);
      }
    }));
  }
  std::atomic<long> sum{0};
  std::vector<hpxlite::future<void>> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.push_back(hpxlite::async([ch, &sum]() mutable {
      for (int i = 0; i < items / 2; ++i) {
        sum.fetch_add(ch.get().get());
      }
    }));
  }
  for (auto& f : producers) {
    f.get();
  }
  for (auto& f : consumers) {
    f.get();
  }
  EXPECT_EQ(sum.load(), static_cast<long>(items) * (items - 1) / 2);
  runtime::shutdown();
}

}  // namespace
