#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "hpxlite/async.hpp"
#include "hpxlite/future.hpp"

namespace {

using namespace std::chrono_literals;
using hpxlite::future_status;
using hpxlite::promise;
using hpxlite::runtime;

class TimedWaitTest : public ::testing::Test {
 protected:
  void SetUp() override { runtime::reset(2); }
  void TearDown() override { runtime::shutdown(); }
};

TEST_F(TimedWaitTest, ReadyFutureReturnsImmediately) {
  auto f = hpxlite::make_ready_future(1);
  EXPECT_EQ(f.wait_for(0ms), future_status::ready);
  EXPECT_EQ(f.wait_for(1h), future_status::ready);  // no actual wait
}

TEST_F(TimedWaitTest, TimesOutOnPendingPromise) {
  promise<int> p;
  auto f = p.get_future();
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(f.wait_for(20ms), future_status::timeout);
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(waited, 15ms);
  EXPECT_LT(waited, 2s);
  p.set_value(1);
  EXPECT_EQ(f.wait_for(0ms), future_status::ready);
  EXPECT_EQ(f.get(), 1);
}

TEST_F(TimedWaitTest, BecomesReadyDuringWait) {
  promise<int> p;
  auto f = p.get_future();
  std::thread producer([&p] {
    std::this_thread::sleep_for(10ms);
    p.set_value(9);
  });
  EXPECT_EQ(f.wait_for(5s), future_status::ready);
  EXPECT_EQ(f.get(), 9);
  producer.join();
}

TEST_F(TimedWaitTest, DeferredRunsOnTimedWait) {
  bool ran = false;
  auto f = hpxlite::async(hpxlite::launch::deferred, [&ran] {
    ran = true;
    return 3;
  });
  EXPECT_EQ(f.wait_for(1ms), future_status::ready);
  EXPECT_TRUE(ran);
  EXPECT_EQ(f.get(), 3);
}

TEST_F(TimedWaitTest, SharedFutureTimedWait) {
  promise<void> p;
  auto s = p.get_future().share();
  EXPECT_EQ(s.wait_for(5ms), future_status::timeout);
  p.set_value();
  EXPECT_EQ(s.wait_for(0ms), future_status::ready);
}

TEST_F(TimedWaitTest, WorkerThreadHelpsDuringTimedWait) {
  // A worker doing a timed wait must still execute queued tasks.
  runtime::reset(1);
  promise<int> inner_p;
  auto inner = inner_p.get_future();
  std::atomic<bool> helped{false};
  std::atomic<int> got{-1};
  runtime::get().submit([&] {
    runtime::get().submit([&] {
      helped = true;
      inner_p.set_value(77);
    });
    // The nested task can only run if this wait helps.
    if (inner.wait_for(std::chrono::seconds(30)) == future_status::ready) {
      got = inner.get();
    }
  });
  runtime::get().wait_idle();
  EXPECT_TRUE(helped.load());
  EXPECT_EQ(got.load(), 77);
}

TEST_F(TimedWaitTest, InvalidFutureThrows) {
  hpxlite::future<int> f;
  EXPECT_THROW((void)f.wait_for(1ms), hpxlite::no_state);
}

}  // namespace
