#include "hpxlite/sync.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "hpxlite/scheduler.hpp"

namespace {

using hpxlite::barrier;
using hpxlite::latch;
using hpxlite::runtime;

TEST(Latch, ZeroCountImmediatelyReleased) {
  latch l(0);
  EXPECT_TRUE(l.try_wait());
  l.wait();  // returns immediately
}

TEST(Latch, ReleasesAtZero) {
  latch l(3);
  EXPECT_FALSE(l.try_wait());
  l.count_down();
  l.count_down(2);
  EXPECT_TRUE(l.try_wait());
  l.wait();
}

TEST(Latch, WaitBlocksUntilCountedDown) {
  latch l(1);
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    l.wait();
    released = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(released.load());
  l.count_down();
  waiter.join();
  EXPECT_TRUE(released.load());
}

TEST(Latch, TasksCountDownWorkerWaits) {
  runtime::reset(2);
  latch l(10);
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) {
    runtime::get().submit([&] {
      done.fetch_add(1);
      l.count_down();
    });
  }
  l.wait();  // non-worker wait
  EXPECT_EQ(done.load(), 10);
  runtime::shutdown();
}

TEST(Latch, HelpingWaitOnSingleWorker) {
  // One worker submits subtasks and waits on the latch; without
  // helping the pool would deadlock.
  runtime::reset(1);
  std::atomic<int> total{0};
  latch outer(1);
  runtime::get().submit([&] {
    latch inner(5);
    for (int i = 0; i < 5; ++i) {
      runtime::get().submit([&] {
        total.fetch_add(1);
        inner.count_down();
      });
    }
    inner.wait();  // executes the 5 subtasks itself
    outer.count_down();
  });
  outer.wait();
  EXPECT_EQ(total.load(), 5);
  runtime::shutdown();
}

TEST(Latch, ArriveAndWait) {
  latch l(2);
  std::thread other([&] { l.arrive_and_wait(); });
  l.arrive_and_wait();
  other.join();
  EXPECT_TRUE(l.try_wait());
}

TEST(Barrier, SingleParty) {
  barrier b(1);
  b.arrive_and_wait();  // trivially passes
  b.arrive_and_wait();
}

TEST(Barrier, SynchronisesGenerations) {
  constexpr int parties = 4;
  constexpr int rounds = 50;
  barrier b(parties);
  std::atomic<int> counter{0};
  std::vector<int> observed(parties, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < parties; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < rounds; ++r) {
        counter.fetch_add(1);
        b.arrive_and_wait();
        // Between barriers every thread must observe the full round.
        const int c = counter.load();
        EXPECT_EQ(c % parties, 0) << "thread " << t << " round " << r;
        b.arrive_and_wait();
      }
      observed[static_cast<std::size_t>(t)] = counter.load();
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter.load(), parties * rounds);
}

TEST(Barrier, ReusableAcrossManyRounds) {
  barrier b(2);
  std::atomic<int> step{0};
  std::thread partner([&] {
    for (int i = 0; i < 100; ++i) {
      b.arrive_and_wait();
    }
    step.fetch_add(1);
  });
  for (int i = 0; i < 100; ++i) {
    b.arrive_and_wait();
  }
  partner.join();
  EXPECT_EQ(step.load(), 1);
}

}  // namespace
