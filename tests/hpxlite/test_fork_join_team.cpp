#include "hpxlite/fork_join_team.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace {

using hpxlite::fork_join_team;

TEST(ForkJoinTeam, SingleThreadRunsWholeRange) {
  fork_join_team team(1);
  std::vector<int> hits(100, 0);
  team.parallel_for(hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i != e; ++i) {
      hits[i] += 1;
    }
  });
  for (const int h : hits) {
    ASSERT_EQ(h, 1);
  }
}

TEST(ForkJoinTeam, CoversRangeExactlyOnceMultiThread) {
  fork_join_team team(4);
  constexpr std::size_t n = 10001;
  std::vector<std::atomic<int>> hits(n);
  team.parallel_for(n, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i != e; ++i) {
      hits[i].fetch_add(1);
    }
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ForkJoinTeam, EmptyRange) {
  fork_join_team team(3);
  int hits = 0;
  team.parallel_for(0, [&](std::size_t, std::size_t) { ++hits; });
  EXPECT_EQ(hits, 0);
}

TEST(ForkJoinTeam, RangeSmallerThanTeam) {
  fork_join_team team(8);
  std::vector<std::atomic<int>> hits(3);
  team.parallel_for(3, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i != e; ++i) {
      hits[i].fetch_add(1);
    }
  });
  for (auto& h : hits) {
    ASSERT_EQ(h.load(), 1);
  }
}

TEST(ForkJoinTeam, ImplicitBarrierOrdersEpisodes) {
  // Episode 2 reads what episode 1 wrote: only correct if parallel_for
  // returns strictly after all members finished (the implicit barrier).
  fork_join_team team(4);
  constexpr std::size_t n = 4096;
  std::vector<int> a(n, 1);
  std::vector<int> b(n, 0);
  team.parallel_for(n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i != hi; ++i) {
      a[i] = static_cast<int>(i);
    }
  });
  team.parallel_for(n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i != hi; ++i) {
      // Reads a[n-1-i], very likely another member's write.
      b[i] = a[n - 1 - i];
    }
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(b[i], static_cast<int>(n - 1 - i));
  }
}

TEST(ForkJoinTeam, ChunkedScheduleCoversRange) {
  fork_join_team team(3);
  constexpr std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  team.parallel_for_chunked(n, 7, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i != e; ++i) {
      hits[i].fetch_add(1);
    }
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1);
  }
}

TEST(ForkJoinTeam, BarrierCountIncrements) {
  fork_join_team team(2);
  const auto before = team.barrier_count();
  team.parallel_for(10, [](std::size_t, std::size_t) {});
  team.parallel_for(10, [](std::size_t, std::size_t) {});
  EXPECT_EQ(team.barrier_count(), before + 2);
}

TEST(ForkJoinTeam, ManySequentialEpisodes) {
  fork_join_team team(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 200; ++round) {
    team.parallel_for(64, [&](std::size_t b, std::size_t e) {
      total.fetch_add(static_cast<long>(e - b));
    });
  }
  EXPECT_EQ(total.load(), 200L * 64);
}

TEST(ForkJoinTeam, SizeReportsThreads) {
  fork_join_team team(5);
  EXPECT_EQ(team.size(), 5u);
  fork_join_team one(0);
  EXPECT_EQ(one.size(), 1u);
}

}  // namespace
