#include "hpxlite/parallel_scan.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <numeric>
#include <vector>

#include "hpxlite/scheduler.hpp"

namespace {

using hpxlite::par;
using hpxlite::runtime;
using hpxlite::seq;
using hpxlite::static_chunk_size;

class ScanTest : public ::testing::Test {
 protected:
  void SetUp() override { runtime::reset(3); }
  void TearDown() override { runtime::shutdown(); }
};

TEST_F(ScanTest, SequencedInclusiveMatchesStd) {
  std::vector<int> v{1, 2, 3, 4, 5};
  std::vector<int> got(v.size());
  hpxlite::parallel::inclusive_scan(seq, v.begin(), v.end(), got.begin(), 0,
                                    std::plus<>{});
  EXPECT_EQ(got, (std::vector<int>{1, 3, 6, 10, 15}));
}

TEST_F(ScanTest, SequencedExclusiveMatchesStd) {
  std::vector<int> v{1, 2, 3, 4, 5};
  std::vector<int> got(v.size());
  hpxlite::parallel::exclusive_scan(seq, v.begin(), v.end(), got.begin(), 100,
                                    std::plus<>{});
  EXPECT_EQ(got, (std::vector<int>{100, 101, 103, 106, 110}));
}

TEST_F(ScanTest, ParallelInclusiveMatchesSequential) {
  std::vector<long> v(10007);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<long>(i % 17) - 8;
  }
  std::vector<long> expect(v.size());
  hpxlite::parallel::inclusive_scan(seq, v.begin(), v.end(), expect.begin(),
                                    0L, std::plus<>{});
  std::vector<long> got(v.size());
  hpxlite::parallel::inclusive_scan(par, v.begin(), v.end(), got.begin(), 0L,
                                    std::plus<>{});
  EXPECT_EQ(got, expect);
}

TEST_F(ScanTest, ParallelExclusiveMatchesSequential) {
  std::vector<long> v(4099);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<long>(3 * i + 1);
  }
  std::vector<long> expect(v.size());
  hpxlite::parallel::exclusive_scan(seq, v.begin(), v.end(), expect.begin(),
                                    7L, std::plus<>{});
  std::vector<long> got(v.size());
  hpxlite::parallel::exclusive_scan(par, v.begin(), v.end(), got.begin(), 7L,
                                    std::plus<>{});
  EXPECT_EQ(got, expect);
}

TEST_F(ScanTest, ExplicitChunkSizes) {
  std::vector<int> v(1000, 1);
  for (const std::size_t chunk : {1ul, 3ul, 64ul, 10000ul}) {
    std::vector<int> got(v.size());
    hpxlite::parallel::inclusive_scan(par.with(static_chunk_size(chunk)),
                                      v.begin(), v.end(), got.begin(), 0,
                                      std::plus<>{});
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], static_cast<int>(i + 1)) << "chunk " << chunk;
    }
  }
}

TEST_F(ScanTest, EmptyRange) {
  std::vector<int> v;
  std::vector<int> got;
  auto end = hpxlite::parallel::inclusive_scan(par, v.begin(), v.end(),
                                               got.begin(), 0, std::plus<>{});
  EXPECT_EQ(end, got.begin());
}

TEST_F(ScanTest, SingleElement) {
  std::vector<int> v{42};
  std::vector<int> got(1);
  hpxlite::parallel::inclusive_scan(par, v.begin(), v.end(), got.begin(), 1,
                                    std::plus<>{});
  EXPECT_EQ(got[0], 43);
  hpxlite::parallel::exclusive_scan(par, v.begin(), v.end(), got.begin(), 1,
                                    std::plus<>{});
  EXPECT_EQ(got[0], 1);
}

TEST_F(ScanTest, NonCommutativeAssociativeOpPreservesOrder) {
  // String concatenation is associative but not commutative: a correct
  // parallel scan must keep element order across chunk boundaries.
  std::vector<std::string> v{"a", "b", "c", "d", "e", "f", "g", "h"};
  const auto op = [](std::string a, const std::string& b) { return a + b; };
  std::vector<std::string> expect(v.size());
  hpxlite::parallel::inclusive_scan(seq, v.begin(), v.end(), expect.begin(),
                                    std::string(), op);
  std::vector<std::string> got(v.size());
  hpxlite::parallel::inclusive_scan(par.with(static_chunk_size(3)), v.begin(),
                                    v.end(), got.begin(), std::string(), op);
  EXPECT_EQ(got, expect);
  EXPECT_EQ(got.back(), "abcdefgh");
}

TEST_F(ScanTest, OffsetsFromCounts) {
  // The mesh-tooling use case: CSR offsets from per-row counts.
  std::vector<int> counts{3, 0, 5, 2, 1};
  std::vector<int> offsets(counts.size());
  hpxlite::parallel::exclusive_scan(par, counts.begin(), counts.end(),
                                    offsets.begin(), 0, std::plus<>{});
  EXPECT_EQ(offsets, (std::vector<int>{0, 3, 3, 8, 10}));
}

}  // namespace
