#include "hpxlite/irange.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <numeric>
#include <vector>

namespace {

using hpxlite::irange;

TEST(IRange, IteratesHalfOpenInterval) {
  std::vector<int> seen;
  for (const int v : irange(2, 6)) {
    seen.push_back(v);
  }
  EXPECT_EQ(seen, (std::vector<int>{2, 3, 4, 5}));
}

TEST(IRange, EmptyWhenLastNotGreater) {
  EXPECT_TRUE(irange(5, 5).empty());
  EXPECT_TRUE(irange(7, 3).empty());
  EXPECT_EQ(irange(7, 3).size(), 0u);
}

TEST(IRange, SizeMatchesDistance) {
  auto r = irange(0, 100);
  EXPECT_EQ(r.size(), 100u);
  EXPECT_EQ(std::distance(r.begin(), r.end()), 100);
}

TEST(IRange, RandomAccessArithmetic) {
  auto r = irange(10, 20);
  auto it = r.begin();
  EXPECT_EQ(*(it + 5), 15);
  EXPECT_EQ(*(5 + it), 15);
  EXPECT_EQ(it[7], 17);
  auto jt = it + 8;
  EXPECT_EQ(jt - it, 8);
  EXPECT_EQ(*(jt - 3), 15);
}

TEST(IRange, ComparisonsOrderIterators) {
  auto r = irange(0, 10);
  auto a = r.begin();
  auto b = a + 4;
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(a <= a);
  EXPECT_TRUE(a == r.begin());
  EXPECT_TRUE(a != b);
}

TEST(IRange, IncrementDecrement) {
  auto it = irange(0, 10).begin();
  ++it;
  EXPECT_EQ(*it, 1);
  it++;
  EXPECT_EQ(*it, 2);
  --it;
  EXPECT_EQ(*it, 1);
  it--;
  EXPECT_EQ(*it, 0);
}

TEST(IRange, WorksWithStdAlgorithms) {
  auto r = irange(1, 11);
  const long sum = std::accumulate(r.begin(), r.end(), 0L);
  EXPECT_EQ(sum, 55);
  EXPECT_TRUE(std::is_sorted(r.begin(), r.end()));
  EXPECT_EQ(*std::lower_bound(r.begin(), r.end(), 7), 7);
}

TEST(IRange, SupportsLongValues) {
  auto r = irange<long>(1000000000L, 1000000005L);
  EXPECT_EQ(r.size(), 5u);
  EXPECT_EQ(*r.begin(), 1000000000L);
}

}  // namespace
