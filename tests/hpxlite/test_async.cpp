#include "hpxlite/async.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace {

using hpxlite::async;
using hpxlite::launch;
using hpxlite::runtime;

class AsyncTest : public ::testing::Test {
 protected:
  void SetUp() override { runtime::reset(2); }
  void TearDown() override { runtime::shutdown(); }
};

TEST_F(AsyncTest, AsyncReturnsValue) {
  auto f = async(launch::async, [] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST_F(AsyncTest, DefaultPolicyIsAsync) {
  auto f = async([] { return std::string("hello"); });
  EXPECT_EQ(f.get(), "hello");
}

TEST_F(AsyncTest, AsyncForwardsArguments) {
  auto f = async(launch::async, [](int a, int b) { return a - b; }, 10, 4);
  EXPECT_EQ(f.get(), 6);
}

TEST_F(AsyncTest, AsyncVoidResult) {
  std::atomic<bool> ran{false};
  auto f = async(launch::async, [&ran] { ran = true; });
  f.get();
  EXPECT_TRUE(ran);
}

TEST_F(AsyncTest, SyncPolicyRunsInline) {
  std::atomic<bool> ran{false};
  auto f = async(launch::sync, [&ran] { ran = true; return 1; });
  // With launch::sync the work completed before async returned.
  EXPECT_TRUE(ran);
  EXPECT_TRUE(f.is_ready());
  EXPECT_EQ(f.get(), 1);
}

TEST_F(AsyncTest, DeferredRunsOnlyOnGet) {
  std::atomic<bool> ran{false};
  auto f = async(launch::deferred, [&ran] { ran = true; return 2; });
  EXPECT_FALSE(ran);
  EXPECT_FALSE(f.is_ready());
  EXPECT_EQ(f.get(), 2);
  EXPECT_TRUE(ran);
}

TEST_F(AsyncTest, DeferredRunsOnWait) {
  std::atomic<bool> ran{false};
  auto f = async(launch::deferred, [&ran] { ran = true; });
  f.wait();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(f.is_ready());
}

TEST_F(AsyncTest, ExceptionPropagates) {
  auto f = async(launch::async, []() -> int {
    throw std::runtime_error("async failure");
  });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST_F(AsyncTest, SyncExceptionPropagates) {
  auto f = async(launch::sync, []() -> int {
    throw std::logic_error("sync failure");
  });
  EXPECT_THROW(f.get(), std::logic_error);
}

TEST_F(AsyncTest, DeferredExceptionPropagates) {
  auto f = async(launch::deferred, []() -> int {
    throw std::runtime_error("deferred failure");
  });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST_F(AsyncTest, NestedAsync) {
  auto f = async(launch::async, [] {
    auto inner = async(launch::async, [] { return 20; });
    return inner.get() + 1;
  });
  EXPECT_EQ(f.get(), 21);
}

TEST_F(AsyncTest, ManyConcurrentAsyncs) {
  std::atomic<long> sum{0};
  std::vector<hpxlite::future<void>> fs;
  fs.reserve(200);
  for (int i = 0; i < 200; ++i) {
    fs.push_back(async(launch::async, [&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& f : fs) {
    f.get();
  }
  EXPECT_EQ(sum.load(), 199L * 200 / 2);
}

TEST_F(AsyncTest, PostFireAndForget) {
  std::atomic<bool> ran{false};
  hpxlite::post([&ran] { ran = true; });
  runtime::get().wait_idle();
  EXPECT_TRUE(ran);
}

TEST_F(AsyncTest, AsyncWithMoveOnlyResult) {
  auto f = async(launch::async, [] { return std::make_unique<int>(9); });
  auto p = f.get();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 9);
}

}  // namespace
