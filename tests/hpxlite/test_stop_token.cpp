// Cooperative cancellation: stop_source/stop_token/stop_callback
// semantics, token-aware async/dataflow launches, chunked parallel
// algorithms polling between chunks, timed get_for, and the
// closure-release regression (a cancelled chain must not retain its
// continuation closures).
#include "hpxlite/stop_token.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <vector>

#include "hpxlite/async.hpp"
#include "hpxlite/dataflow.hpp"
#include "hpxlite/future.hpp"
#include "hpxlite/parallel_algorithm.hpp"
#include "hpxlite/scheduler.hpp"

namespace {

using hpxlite::launch;
using hpxlite::operation_cancelled;
using hpxlite::runtime;
using hpxlite::stop_callback;
using hpxlite::stop_source;
using hpxlite::stop_token;

// --- token semantics --------------------------------------------------

TEST(StopToken, DefaultTokenIsDetached) {
  stop_token tok;
  EXPECT_FALSE(tok.stop_possible());
  EXPECT_FALSE(tok.stop_requested());
  EXPECT_NO_THROW(tok.throw_if_stopped());
}

TEST(StopToken, RequestStopIsVisibleToEveryTokenExactlyOnce) {
  stop_source src;
  stop_token a = src.get_token();
  stop_token b = a;  // copies observe the same state
  EXPECT_TRUE(a.stop_possible());
  EXPECT_FALSE(a.stop_requested());
  EXPECT_TRUE(src.request_stop());   // this call transitions
  EXPECT_FALSE(src.request_stop());  // idempotent afterwards
  EXPECT_TRUE(a.stop_requested());
  EXPECT_TRUE(b.stop_requested());
  EXPECT_THROW(a.throw_if_stopped(), operation_cancelled);
}

TEST(StopToken, CallbackRunsOnRequestThenIsDropped) {
  stop_source src;
  int runs = 0;
  stop_callback cb(src.get_token(), [&runs] { ++runs; });
  EXPECT_EQ(runs, 0);
  src.request_stop();
  EXPECT_EQ(runs, 1);
  src.request_stop();  // callbacks were dropped after the first request
  EXPECT_EQ(runs, 1);
}

TEST(StopToken, CallbackRegisteredAfterStopRunsImmediately) {
  stop_source src;
  src.request_stop();
  int runs = 0;
  stop_callback cb(src.get_token(), [&runs] { ++runs; });
  EXPECT_EQ(runs, 1);
}

TEST(StopToken, DestroyedCallbackNeverRuns) {
  stop_source src;
  int runs = 0;
  {
    stop_callback cb(src.get_token(), [&runs] { ++runs; });
  }
  src.request_stop();
  EXPECT_EQ(runs, 0);
}

// --- cancellation through the launch layer ----------------------------

class StopTokenRuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override { runtime::reset(2); }
  void TearDown() override { runtime::shutdown(); }
};

TEST_F(StopTokenRuntimeTest, CancelledAsyncResolvesWithoutRunningBody) {
  stop_source src;
  src.request_stop();
  std::atomic<bool> ran{false};
  auto f = hpxlite::async(launch::async, src.get_token(),
                          [&ran] { ran = true; });
  EXPECT_THROW(f.get(), operation_cancelled);
  EXPECT_FALSE(ran);
}

TEST_F(StopTokenRuntimeTest, UnstoppedTokenRunsNormally) {
  stop_source src;
  auto f = hpxlite::async(launch::async, src.get_token(),
                          [] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST_F(StopTokenRuntimeTest, CancelledDataflowNodeResolvesWithoutRunning) {
  stop_source src;
  hpxlite::promise<void> gate;
  std::atomic<bool> ran{false};
  auto node = hpxlite::dataflow(
      launch::async, src.get_token(),
      [&ran](hpxlite::future<void> dep) {
        dep.get();
        ran = true;
      },
      gate.get_future());
  src.request_stop();       // cancel while the node is parked
  gate.set_value();         // dependency becomes ready; node fires
  EXPECT_THROW(node.get(), operation_cancelled);
  EXPECT_FALSE(ran);
}

TEST_F(StopTokenRuntimeTest, CancelledUpstreamPropagatesToDependents) {
  stop_source src;
  src.request_stop();
  auto head = hpxlite::async(launch::async, src.get_token(), [] {});
  // An unguarded dependent observes the upstream cancellation through
  // prev.get() without running its own work either.
  std::atomic<bool> ran{false};
  auto tail = hpxlite::dataflow(
      launch::async,
      [&ran](hpxlite::future<void> prev) {
        prev.get();
        ran = true;
      },
      std::move(head));
  EXPECT_THROW(tail.get(), operation_cancelled);
  EXPECT_FALSE(ran);
}

// --- chunked parallel algorithms --------------------------------------

TEST_F(StopTokenRuntimeTest, PreStoppedForEachThrowsWithoutRunning) {
  stop_source src;
  src.request_stop();
  std::vector<int> items(256);
  std::atomic<int> executed{0};
  EXPECT_THROW(
      hpxlite::parallel::for_each(
          hpxlite::par.with(src.get_token()), items.begin(), items.end(),
          [&executed](int&) { executed.fetch_add(1); }),
      operation_cancelled);
  EXPECT_EQ(executed.load(), 0);
}

TEST_F(StopTokenRuntimeTest, ForEachAbandonsPromptlyWhenCancelledMidRun) {
  stop_source src;
  constexpr int n = 100000;
  std::vector<int> items(n);
  std::atomic<int> executed{0};
  // The dynamic chunker polls the token on every claim: cancelling from
  // inside the first element leaves almost the whole range unexecuted.
  const auto policy =
      hpxlite::par.with(hpxlite::dynamic_chunk_size(1)).with(src.get_token());
  EXPECT_THROW(hpxlite::parallel::for_each(
                   policy, items.begin(), items.end(),
                   [&](int&) {
                     executed.fetch_add(1);
                     src.request_stop();
                   }),
               operation_cancelled);
  EXPECT_LT(executed.load(), n / 2);
}

TEST_F(StopTokenRuntimeTest, PreStoppedReduceThrows) {
  stop_source src;
  src.request_stop();
  std::vector<int> items(512, 1);
  EXPECT_THROW(hpxlite::parallel::reduce(
                   hpxlite::par.with(src.get_token()), items.begin(),
                   items.end(), 0, std::plus<int>()),
               operation_cancelled);
}

TEST_F(StopTokenRuntimeTest, PolicyWithPreservesChunkAndToken) {
  stop_source src;
  // .with(chunk) then .with(token) (and vice versa) must compose.
  const auto p1 = hpxlite::par.with(hpxlite::static_chunk_size(8))
                      .with(src.get_token());
  EXPECT_TRUE(p1.stop() == src.get_token());
  const auto p2 = hpxlite::par.with(src.get_token())
                      .with(hpxlite::static_chunk_size(8));
  EXPECT_TRUE(p2.stop() == src.get_token());
  ASSERT_TRUE(std::holds_alternative<hpxlite::static_chunk_size>(p2.chunk()));
}

// --- timed waits ------------------------------------------------------

TEST_F(StopTokenRuntimeTest, GetForTimesOutAndLeavesTheFutureValid) {
  hpxlite::promise<int> p;
  auto f = p.get_future();
  EXPECT_THROW(f.get_for(std::chrono::milliseconds(20)),
               hpxlite::wait_timeout);
  EXPECT_TRUE(f.valid());  // expiry does not consume the state
  p.set_value(99);
  EXPECT_EQ(f.get_for(std::chrono::seconds(5)), 99);
}

TEST_F(StopTokenRuntimeTest, SharedGetForNeverConsumes) {
  hpxlite::promise<int> p;
  auto sf = p.get_future().share();
  EXPECT_THROW(sf.get_for(std::chrono::milliseconds(10)),
               hpxlite::wait_timeout);
  p.set_value(7);
  EXPECT_EQ(sf.get_for(std::chrono::seconds(5)), 7);
  EXPECT_EQ(sf.get(), 7);  // still observable afterwards
}

// --- stop_fan_in ------------------------------------------------------

TEST(StopFanIn, AnyUpstreamTripsTheDownstreamToken) {
  stop_source a;
  stop_source b;
  hpxlite::stop_fan_in fan{a.get_token(), b.get_token()};
  EXPECT_FALSE(fan.stop_requested());
  b.request_stop();
  EXPECT_TRUE(fan.stop_requested());
  EXPECT_TRUE(fan.get_token().stop_requested());
  // The untripped upstream is unaffected: fan-in is one-directional.
  EXPECT_FALSE(a.get_token().stop_requested());
}

TEST(StopFanIn, AlreadyStoppedUpstreamTripsAtConstruction) {
  stop_source a;
  a.request_stop();
  hpxlite::stop_fan_in fan{a.get_token()};
  EXPECT_TRUE(fan.stop_requested());
}

TEST(StopFanIn, DetachedUpstreamIsIgnored) {
  hpxlite::stop_fan_in fan;
  fan.add(stop_token{});  // stop_possible() == false: no link created
  EXPECT_FALSE(fan.stop_requested());
  stop_source live;
  fan.add(live.get_token());
  live.request_stop();
  EXPECT_TRUE(fan.stop_requested());
}

TEST(StopFanIn, DirectRequestStopWorksWithoutUpstreams) {
  hpxlite::stop_fan_in fan;
  auto tok = fan.get_token();
  EXPECT_FALSE(tok.stop_requested());
  fan.request_stop();
  EXPECT_TRUE(tok.stop_requested());
}

TEST(StopFanIn, DestructionUnlinksFromUpstreams) {
  stop_source a;
  stop_token downstream;
  {
    hpxlite::stop_fan_in fan{a.get_token()};
    downstream = fan.get_token();
  }
  // The fan-in is gone; a late upstream stop must not touch freed
  // callbacks (ASan/TSan would flag it) — and the downstream token it
  // handed out stays quiescent.
  a.request_stop();
  EXPECT_FALSE(downstream.stop_requested());
}

// --- closure-release regression ---------------------------------------

TEST_F(StopTokenRuntimeTest, CancelledDataflowChainReleasesClosures) {
  const std::uint64_t baseline = hpxlite::pending_continuation_count();
  auto sentinel = std::make_shared<int>(42);
  stop_source src;
  {
    hpxlite::promise<void> gate;
    auto head = hpxlite::dataflow(
        launch::async, src.get_token(),
        [sentinel](hpxlite::future<void> dep) { dep.get(); },
        gate.get_future());
    auto tail = hpxlite::dataflow(
        launch::async, src.get_token(),
        [sentinel](hpxlite::future<void> prev) { prev.get(); },
        std::move(head));
    // The chain is parked: its continuations (holding the sentinel)
    // are alive and counted.
    EXPECT_GT(hpxlite::pending_continuation_count(), baseline);
    EXPECT_GT(sentinel.use_count(), 1);
    src.request_stop();
    gate.set_value();  // fire the chain: every node resolves cancelled
    EXPECT_THROW(tail.get(), operation_cancelled);
  }
  // Resolution released the parked continuations and their captures.
  EXPECT_EQ(hpxlite::pending_continuation_count(), baseline);
  EXPECT_EQ(sentinel.use_count(), 1);
}

}  // namespace
