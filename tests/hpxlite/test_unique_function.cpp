#include "hpxlite/unique_function.hpp"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>

namespace {

using hpxlite::unique_function;

TEST(UniqueFunction, DefaultConstructedIsEmpty) {
  unique_function<void()> f;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(UniqueFunction, InvokesLambda) {
  int hits = 0;
  unique_function<void()> f([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(f));
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(UniqueFunction, ReturnsValue) {
  unique_function<int(int)> f([](int x) { return x * 3; });
  EXPECT_EQ(f(7), 21);
}

TEST(UniqueFunction, HoldsMoveOnlyCapture) {
  auto p = std::make_unique<int>(42);
  unique_function<int()> f([q = std::move(p)] { return *q; });
  EXPECT_EQ(f(), 42);
}

TEST(UniqueFunction, MoveTransfersOwnership) {
  int hits = 0;
  unique_function<void()> f([&hits] { ++hits; });
  unique_function<void()> g(std::move(f));
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(g));
  g();
  EXPECT_EQ(hits, 1);
}

TEST(UniqueFunction, MoveAssignReplacesTarget) {
  int a = 0;
  int b = 0;
  unique_function<void()> f([&a] { ++a; });
  unique_function<void()> g([&b] { ++b; });
  f = std::move(g);
  f();
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
}

TEST(UniqueFunction, LargeCaptureHeapAllocates) {
  // A capture well beyond the SBO buffer still works.
  std::array<double, 64> big{};
  big[0] = 1.5;
  big[63] = 2.5;
  unique_function<double()> f([big] { return big[0] + big[63]; });
  EXPECT_DOUBLE_EQ(f(), 4.0);
  unique_function<double()> g(std::move(f));
  EXPECT_DOUBLE_EQ(g(), 4.0);
}

TEST(UniqueFunction, ResetDestroysCallable) {
  auto counter = std::make_shared<int>(0);
  std::weak_ptr<int> weak = counter;
  unique_function<void()> f([counter] { (void)counter; });
  counter.reset();
  EXPECT_FALSE(weak.expired());
  f.reset();
  EXPECT_TRUE(weak.expired());
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(UniqueFunction, DestructorReleasesCapture) {
  auto counter = std::make_shared<int>(0);
  std::weak_ptr<int> weak = counter;
  {
    unique_function<void()> f([counter] { (void)counter; });
    counter.reset();
    EXPECT_FALSE(weak.expired());
  }
  EXPECT_TRUE(weak.expired());
}

TEST(UniqueFunction, ForwardsArguments) {
  unique_function<std::string(const std::string&, int)> f(
      [](const std::string& s, int n) {
        std::string out;
        for (int i = 0; i < n; ++i) {
          out += s;
        }
        return out;
      });
  EXPECT_EQ(f("ab", 3), "ababab");
}

}  // namespace
