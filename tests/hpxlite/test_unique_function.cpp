#include "hpxlite/unique_function.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>

namespace {

using hpxlite::unique_function;

// Process-wide allocation counter (interposed operator new) so the
// inline-storage tests can assert "no heap allocation" directly rather
// than inferring it from uses_inline_storage() alone.
std::atomic<std::uint64_t> g_news{0};

std::uint64_t news() { return g_news.load(std::memory_order_relaxed); }

}  // namespace

void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

TEST(UniqueFunction, DefaultConstructedIsEmpty) {
  unique_function<void()> f;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(UniqueFunction, InvokesLambda) {
  int hits = 0;
  unique_function<void()> f([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(f));
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(UniqueFunction, ReturnsValue) {
  unique_function<int(int)> f([](int x) { return x * 3; });
  EXPECT_EQ(f(7), 21);
}

TEST(UniqueFunction, HoldsMoveOnlyCapture) {
  auto p = std::make_unique<int>(42);
  unique_function<int()> f([q = std::move(p)] { return *q; });
  EXPECT_EQ(f(), 42);
}

TEST(UniqueFunction, MoveTransfersOwnership) {
  int hits = 0;
  unique_function<void()> f([&hits] { ++hits; });
  unique_function<void()> g(std::move(f));
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(g));
  g();
  EXPECT_EQ(hits, 1);
}

TEST(UniqueFunction, MoveAssignReplacesTarget) {
  int a = 0;
  int b = 0;
  unique_function<void()> f([&a] { ++a; });
  unique_function<void()> g([&b] { ++b; });
  f = std::move(g);
  f();
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
}

// --- small-buffer inline-storage guarantees ---------------------------
// The operation-state continuation core parks dispatch thunks (one or
// two pointers) inside task_functions on its zero-allocation build
// path; these tests pin the contract down.

// Compile-time guard: the buffer must hold a two-shared_ptr capture.
static_assert(unique_function<void()>::inline_capacity >=
              4 * sizeof(void*));
static_assert(unique_function<void()>::stores_inline<void (*)()>);

TEST(UniqueFunction, OnePointerCaptureStoresInline) {
  int target = 0;
  auto lam = [&target] { ++target; };
  static_assert(unique_function<void()>::stores_inline<decltype(lam)>);
  const std::uint64_t before = news();
  unique_function<void()> f(lam);
  f();
  EXPECT_EQ(news() - before, 0u);
  EXPECT_TRUE(f.uses_inline_storage());
  EXPECT_EQ(target, 1);
}

TEST(UniqueFunction, TwoPointerCaptureStoresInline) {
  int a = 0;
  int b = 0;
  auto lam = [pa = &a, pb = &b] { ++*pa, ++*pb; };
  static_assert(sizeof(lam) == 2 * sizeof(void*));
  static_assert(unique_function<void()>::stores_inline<decltype(lam)>);
  const std::uint64_t before = news();
  unique_function<void()> f(lam);
  f();
  EXPECT_EQ(news() - before, 0u);
  EXPECT_TRUE(f.uses_inline_storage());
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

TEST(UniqueFunction, SharedPtrPairCaptureStoresInline) {
  // The shape of the continuation-core keepalive captures: a pair of
  // shared_ptrs (4 pointers) must still ride inline.
  auto x = std::make_shared<int>(1);
  auto y = std::make_shared<int>(2);
  auto lam = [x, y] { return *x + *y; };
  static_assert(unique_function<int()>::stores_inline<decltype(lam)>);
  const std::uint64_t before = news();
  unique_function<int()> f(std::move(lam));
  EXPECT_EQ(f(), 3);
  EXPECT_EQ(news() - before, 0u);
  EXPECT_TRUE(f.uses_inline_storage());
}

TEST(UniqueFunction, MovePreservesInlineStorageWithoutAllocating) {
  int hits = 0;
  unique_function<void()> f([&hits] { ++hits; });
  ASSERT_TRUE(f.uses_inline_storage());
  const std::uint64_t before = news();
  unique_function<void()> g(std::move(f));
  unique_function<void()> h;
  h = std::move(g);
  EXPECT_EQ(news() - before, 0u);
  ASSERT_TRUE(h.uses_inline_storage());
  h();
  EXPECT_EQ(hits, 1);
}

TEST(UniqueFunction, OversizeCaptureReportsHeapStorage) {
  std::array<double, 64> big{};
  auto lam = [big] { return big[0]; };
  static_assert(!unique_function<double()>::stores_inline<decltype(lam)>);
  const std::uint64_t before = news();
  unique_function<double()> f(lam);
  EXPECT_GE(news() - before, 1u);
  EXPECT_FALSE(f.uses_inline_storage());
}

TEST(UniqueFunction, EmptyFunctionReportsNoInlineStorage) {
  unique_function<void()> f;
  EXPECT_FALSE(f.uses_inline_storage());
}

TEST(UniqueFunction, LargeCaptureHeapAllocates) {
  // A capture well beyond the SBO buffer still works.
  std::array<double, 64> big{};
  big[0] = 1.5;
  big[63] = 2.5;
  unique_function<double()> f([big] { return big[0] + big[63]; });
  EXPECT_DOUBLE_EQ(f(), 4.0);
  unique_function<double()> g(std::move(f));
  EXPECT_DOUBLE_EQ(g(), 4.0);
}

TEST(UniqueFunction, ResetDestroysCallable) {
  auto counter = std::make_shared<int>(0);
  std::weak_ptr<int> weak = counter;
  unique_function<void()> f([counter] { (void)counter; });
  counter.reset();
  EXPECT_FALSE(weak.expired());
  f.reset();
  EXPECT_TRUE(weak.expired());
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(UniqueFunction, DestructorReleasesCapture) {
  auto counter = std::make_shared<int>(0);
  std::weak_ptr<int> weak = counter;
  {
    unique_function<void()> f([counter] { (void)counter; });
    counter.reset();
    EXPECT_FALSE(weak.expired());
  }
  EXPECT_TRUE(weak.expired());
}

TEST(UniqueFunction, ForwardsArguments) {
  unique_function<std::string(const std::string&, int)> f(
      [](const std::string& s, int n) {
        std::string out;
        for (int i = 0; i < n; ++i) {
          out += s;
        }
        return out;
      });
  EXPECT_EQ(f("ab", 3), "ababab");
}

}  // namespace
