#include "hpxlite/dataflow.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>

namespace {

using hpxlite::dataflow;
using hpxlite::future;
using hpxlite::launch;
using hpxlite::make_ready_future;
using hpxlite::promise;
using hpxlite::runtime;
using hpxlite::shared_future;
using hpxlite::unwrapping;

class DataflowTest : public ::testing::Test {
 protected:
  void SetUp() override { runtime::reset(2); }
  void TearDown() override { runtime::shutdown(); }
};

TEST_F(DataflowTest, RunsImmediatelyWithoutFutureArgs) {
  auto f = dataflow(launch::async, [](int a, int b) { return a + b; }, 2, 3);
  EXPECT_EQ(f.get(), 5);
}

TEST_F(DataflowTest, DelaysUntilFutureReady) {
  promise<int> p;
  std::atomic<bool> invoked{false};
  auto f = dataflow(
      launch::async,
      [&invoked](future<int> x) {
        invoked = true;
        return x.get() * 2;
      },
      p.get_future());
  EXPECT_FALSE(invoked);
  EXPECT_FALSE(f.is_ready());
  p.set_value(8);
  EXPECT_EQ(f.get(), 16);
  EXPECT_TRUE(invoked);
}

TEST_F(DataflowTest, WaitsForAllFutureArguments) {
  promise<int> p1;
  promise<int> p2;
  auto f = dataflow(
      launch::async,
      [](future<int> a, future<int> b) { return a.get() + b.get(); },
      p1.get_future(), p2.get_future());
  p1.set_value(1);
  EXPECT_FALSE(f.is_ready());
  p2.set_value(2);
  EXPECT_EQ(f.get(), 3);
}

TEST_F(DataflowTest, MixedFutureAndPlainArguments) {
  promise<int> p;
  auto f = dataflow(
      launch::async,
      [](future<int> a, int b, const std::string& s) {
        return a.get() + b + static_cast<int>(s.size());
      },
      p.get_future(), 10, std::string("abc"));
  p.set_value(1);
  EXPECT_EQ(f.get(), 14);
}

TEST_F(DataflowTest, UnwrappingPassesValues) {
  promise<int> p;
  auto f = dataflow(unwrapping([](int v, int c) { return v + c; }),
                    p.get_future(), 5);
  p.set_value(37);
  EXPECT_EQ(f.get(), 42);
}

TEST_F(DataflowTest, UnwrappingDropsVoidFutures) {
  promise<void> gate;
  promise<int> p;
  // The void future is awaited but contributes no parameter.
  auto f = dataflow(unwrapping([](int v) { return v + 1; }),
                    gate.get_future(), p.get_future());
  p.set_value(10);
  EXPECT_FALSE(f.is_ready());
  gate.set_value();
  EXPECT_EQ(f.get(), 11);
}

TEST_F(DataflowTest, UnwrappedAliasWorks) {
  auto f = dataflow(hpxlite::unwrapped([](int v) { return v * 3; }),
                    make_ready_future(4));
  EXPECT_EQ(f.get(), 12);
}

TEST_F(DataflowTest, SharedFutureArgumentsAreCopied) {
  promise<int> p;
  shared_future<int> s = p.get_future().share();
  auto a = dataflow(unwrapping([](int v) { return v + 1; }), s);
  auto b = dataflow(unwrapping([](int v) { return v + 2; }), s);
  p.set_value(100);
  EXPECT_EQ(a.get(), 101);
  EXPECT_EQ(b.get(), 102);
  EXPECT_EQ(s.get(), 100);  // still usable
}

TEST_F(DataflowTest, ReturnedFutureIsUnwrapped) {
  // A dataflow callable returning future<int> yields future<int>, not
  // future<future<int>>.
  promise<int> p;
  future<int> f = dataflow(
      launch::async,
      [](future<int> v) {
        const int x = v.get();
        return hpxlite::async([x] { return x * 2; });
      },
      p.get_future());
  p.set_value(50);
  EXPECT_EQ(f.get(), 100);
}

TEST_F(DataflowTest, VoidResult) {
  promise<int> p;
  std::atomic<int> seen{0};
  future<void> f = dataflow(unwrapping([&seen](int v) { seen = v; }),
                            p.get_future());
  p.set_value(33);
  f.get();
  EXPECT_EQ(seen.load(), 33);
}

TEST_F(DataflowTest, ExceptionInCallablePropagates) {
  auto f = dataflow(
      launch::async, [](future<int>) -> int { throw std::runtime_error("x"); },
      make_ready_future(1));
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST_F(DataflowTest, ExceptionInInputPropagatesThroughUnwrapping) {
  promise<int> p;
  auto f = dataflow(unwrapping([](int v) { return v; }), p.get_future());
  p.set_exception(std::make_exception_ptr(std::logic_error("input dead")));
  EXPECT_THROW(f.get(), std::logic_error);
}

TEST_F(DataflowTest, ChainBuildsExecutionTree) {
  // The paper's data[t] pattern: each step consumes the previous future.
  future<int> v = make_ready_future(1);
  for (int i = 0; i < 10; ++i) {
    v = dataflow(unwrapping([](int x) { return x * 2; }), std::move(v));
  }
  EXPECT_EQ(v.get(), 1024);
}

TEST_F(DataflowTest, DiamondDependency) {
  promise<int> root;
  shared_future<int> r = root.get_future().share();
  auto left = dataflow(unwrapping([](int x) { return x + 1; }), r);
  auto right = dataflow(unwrapping([](int x) { return x + 2; }), r);
  auto join = dataflow(unwrapping([](int a, int b) { return a * b; }),
                       std::move(left), std::move(right));
  root.set_value(10);
  EXPECT_EQ(join.get(), 11 * 12);
}

TEST_F(DataflowTest, DefaultPolicyOverload) {
  auto f = dataflow(unwrapping([](int a) { return a + 1; }),
                    make_ready_future(41));
  EXPECT_EQ(f.get(), 42);
}

}  // namespace
