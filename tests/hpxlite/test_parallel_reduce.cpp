#include <gtest/gtest.h>

#include <functional>
#include <numeric>
#include <vector>

#include "hpxlite/hpxlite.hpp"

namespace {

using hpxlite::par;
using hpxlite::runtime;
using hpxlite::seq;
using hpxlite::static_chunk_size;
using hpxlite::task;

class ReduceTest : public ::testing::Test {
 protected:
  void SetUp() override { runtime::reset(3); }
  void TearDown() override { runtime::shutdown(); }
};

TEST_F(ReduceTest, SequencedMatchesAccumulate) {
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 1);
  const int got = hpxlite::parallel::reduce(seq, v.begin(), v.end(), 0,
                                            std::plus<int>{});
  EXPECT_EQ(got, std::accumulate(v.begin(), v.end(), 0));
}

TEST_F(ReduceTest, ParallelSumMatchesSequential) {
  std::vector<long> v(10007);
  std::iota(v.begin(), v.end(), 0L);
  const long got =
      hpxlite::parallel::reduce(par, v.begin(), v.end(), 0L, std::plus<>{});
  EXPECT_EQ(got, 10006L * 10007 / 2);
}

TEST_F(ReduceTest, ParallelSumWithInitialValue) {
  std::vector<int> v(10, 1);
  const int got =
      hpxlite::parallel::reduce(par, v.begin(), v.end(), 100, std::plus<>{});
  EXPECT_EQ(got, 110);
}

TEST_F(ReduceTest, EmptyRangeYieldsInit) {
  std::vector<int> v;
  const int got =
      hpxlite::parallel::reduce(par, v.begin(), v.end(), 42, std::plus<>{});
  EXPECT_EQ(got, 42);
}

TEST_F(ReduceTest, MaxReduction) {
  std::vector<int> v{3, 9, 1, 45, 7, 45, 2};
  const int got = hpxlite::parallel::reduce(
      par, v.begin(), v.end(), 0, [](int a, int b) { return a > b ? a : b; });
  EXPECT_EQ(got, 45);
}

TEST_F(ReduceTest, TaskPolicyReturnsFuture) {
  std::vector<int> v(5000, 2);
  auto f = hpxlite::parallel::reduce(par(task), v.begin(), v.end(), 0,
                                     std::plus<>{});
  EXPECT_EQ(f.get(), 10000);
}

TEST_F(ReduceTest, StaticChunkDeterministicFloatingPoint) {
  // With a fixed chunking, the combination order is fixed, so two runs
  // produce bit-identical floating-point results.
  std::vector<double> v(4097);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = 1.0 / static_cast<double>(i + 1);
  }
  const auto policy = par.with(static_chunk_size(64));
  const double a = hpxlite::parallel::reduce(policy, v.begin(), v.end(), 0.0,
                                             std::plus<>{});
  const double b = hpxlite::parallel::reduce(policy, v.begin(), v.end(), 0.0,
                                             std::plus<>{});
  EXPECT_EQ(a, b);
}

TEST_F(ReduceTest, TransformReduceSequenced) {
  std::vector<int> v{1, 2, 3, 4};
  const int got = hpxlite::parallel::transform_reduce(
      seq, v.begin(), v.end(), 0, std::plus<>{}, [](int x) { return x * x; });
  EXPECT_EQ(got, 30);
}

TEST_F(ReduceTest, TransformReduceParallel) {
  std::vector<int> v(3000);
  std::iota(v.begin(), v.end(), 1);
  const long got = hpxlite::parallel::transform_reduce(
      par, v.begin(), v.end(), 0L, std::plus<>{},
      [](int x) { return static_cast<long>(x) * 2; });
  EXPECT_EQ(got, 2L * 3000 * 3001 / 2);
}

TEST_F(ReduceTest, TransformReduceTaskPolicy) {
  std::vector<int> v(128, 3);
  auto f = hpxlite::parallel::transform_reduce(
      par(task), v.begin(), v.end(), 0, std::plus<>{},
      [](int x) { return x - 1; });
  EXPECT_EQ(f.get(), 256);
}

TEST_F(ReduceTest, ExceptionPropagates) {
  std::vector<int> v(100, 1);
  EXPECT_THROW(hpxlite::parallel::transform_reduce(
                   par, v.begin(), v.end(), 0, std::plus<>{},
                   [](int) -> int { throw std::runtime_error("conv"); }),
               std::runtime_error);
}

}  // namespace
