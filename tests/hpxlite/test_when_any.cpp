#include "hpxlite/when_any.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hpxlite/async.hpp"

namespace {

using hpxlite::future;
using hpxlite::promise;
using hpxlite::runtime;
using hpxlite::when_any;
using hpxlite::when_some;

class WhenAnyTest : public ::testing::Test {
 protected:
  void SetUp() override { runtime::reset(2); }
  void TearDown() override { runtime::shutdown(); }
};

TEST_F(WhenAnyTest, FiresOnFirstCompletion) {
  std::vector<promise<int>> ps(3);
  std::vector<future<int>> fs;
  for (auto& p : ps) {
    fs.push_back(p.get_future());
  }
  auto any = when_any(std::move(fs));
  EXPECT_FALSE(any.is_ready());
  ps[1].set_value(11);
  auto r = any.get();
  EXPECT_EQ(r.index, 1u);
  ASSERT_EQ(r.futures.size(), 3u);
  EXPECT_TRUE(r.futures[1].is_ready());
  EXPECT_EQ(r.futures[1].get(), 11);
  // The others are returned un-consumed and still pending.
  EXPECT_FALSE(r.futures[0].is_ready());
  ps[0].set_value(0);
  EXPECT_EQ(r.futures[0].get(), 0);
  ps[2].set_value(2);
}

TEST_F(WhenAnyTest, AlreadyReadyInput) {
  std::vector<future<int>> fs;
  fs.push_back(hpxlite::make_ready_future(5));
  promise<int> p;
  fs.push_back(p.get_future());
  auto r = when_any(std::move(fs)).get();
  EXPECT_EQ(r.index, 0u);
  p.set_value(1);
}

TEST_F(WhenAnyTest, WhenSomeWaitsForK) {
  std::vector<promise<int>> ps(4);
  std::vector<future<int>> fs;
  for (auto& p : ps) {
    fs.push_back(p.get_future());
  }
  auto some = when_some(2, std::move(fs));
  ps[3].set_value(3);
  EXPECT_FALSE(some.is_ready());
  ps[0].set_value(0);
  auto r = some.get();
  ASSERT_EQ(r.indices.size(), 2u);
  EXPECT_EQ(r.indices[0], 3u);
  EXPECT_EQ(r.indices[1], 0u);
  ps[1].set_value(1);
  ps[2].set_value(2);
}

TEST_F(WhenAnyTest, WhenSomeZeroIsImmediatelyReady) {
  std::vector<promise<int>> ps(2);
  std::vector<future<int>> fs;
  for (auto& p : ps) {
    fs.push_back(p.get_future());
  }
  auto some = when_some(0, std::move(fs));
  EXPECT_TRUE(some.is_ready());
  ps[0].set_value(0);
  ps[1].set_value(1);
}

TEST_F(WhenAnyTest, WhenSomeClampsAboveSize) {
  std::vector<promise<int>> ps(2);
  std::vector<future<int>> fs;
  for (auto& p : ps) {
    fs.push_back(p.get_future());
  }
  auto some = when_some(10, std::move(fs));
  ps[0].set_value(0);
  EXPECT_FALSE(some.is_ready());
  ps[1].set_value(1);
  auto r = some.get();
  EXPECT_EQ(r.indices.size(), 2u);
}

TEST_F(WhenAnyTest, RacesAgainstAsyncTasks) {
  // Several async producers; when_any must fire exactly once and pick
  // a valid index.
  std::vector<future<int>> fs;
  for (int i = 0; i < 8; ++i) {
    fs.push_back(hpxlite::async([i] { return i; }));
  }
  auto r = when_any(std::move(fs)).get();
  EXPECT_LT(r.index, 8u);
  for (auto& f : r.futures) {
    f.get();  // all eventually complete
  }
}

}  // namespace
