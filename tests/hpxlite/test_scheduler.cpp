#include "hpxlite/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>

namespace {

using hpxlite::runtime;

TEST(Scheduler, ExecutesSubmittedTask) {
  runtime rt(2);
  std::atomic<bool> ran{false};
  rt.submit([&] { ran = true; });
  rt.wait_idle();
  EXPECT_TRUE(ran);
}

TEST(Scheduler, ExecutesManyTasks) {
  runtime rt(4);
  std::atomic<int> count{0};
  constexpr int n = 5000;
  for (int i = 0; i < n; ++i) {
    rt.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  rt.wait_idle();
  EXPECT_EQ(count.load(), n);
}

TEST(Scheduler, TasksCanSubmitTasks) {
  runtime rt(2);
  std::atomic<int> count{0};
  rt.submit([&] {
    for (int i = 0; i < 100; ++i) {
      rt.submit([&] { count.fetch_add(1); });
    }
  });
  rt.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(Scheduler, DeepRecursiveSubmission) {
  runtime rt(2);
  std::atomic<int> count{0};
  // Each task spawns the next: exercises local queues and stealing.
  std::function<void(int)> chain = [&](int depth) {
    count.fetch_add(1);
    if (depth > 0) {
      rt.submit([&chain, depth] { chain(depth - 1); });
    }
  };
  rt.submit([&] { chain(999); });
  rt.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(Scheduler, ConcurrencyReportsWorkerCount) {
  runtime rt(3);
  EXPECT_EQ(rt.concurrency(), 3u);
}

TEST(Scheduler, ZeroWorkersClampedToOne) {
  runtime rt(0);
  EXPECT_EQ(rt.concurrency(), 1u);
  std::atomic<bool> ran{false};
  rt.submit([&] { ran = true; });
  rt.wait_idle();
  EXPECT_TRUE(ran);
}

TEST(Scheduler, OnWorkerThreadDetection) {
  runtime rt(1);
  EXPECT_FALSE(runtime::on_worker_thread());
  std::atomic<bool> inside{false};
  rt.submit([&] { inside = runtime::on_worker_thread(); });
  rt.wait_idle();
  EXPECT_TRUE(inside);
}

TEST(Scheduler, WorkerIndexValidInsideTask) {
  runtime rt(2);
  std::atomic<int> seen_index{-1};
  rt.submit([&] { seen_index = static_cast<int>(runtime::worker_index()); });
  rt.wait_idle();
  EXPECT_GE(seen_index.load(), 0);
  EXPECT_LT(seen_index.load(), 2);
  EXPECT_EQ(runtime::worker_index(), static_cast<unsigned>(-1));
}

TEST(Scheduler, TryExecuteOneFromExternalThread) {
  runtime rt(1);
  // Saturate the single worker with a long task, then help from here.
  // Wait until the worker has actually started the blocker, so this
  // thread cannot pop it itself (and then spin on a flag it controls).
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::atomic<int> count{0};
  rt.submit([&] {
    started = true;
    while (!release.load()) {
      std::this_thread::yield();
    }
  });
  while (!started.load()) {
    std::this_thread::yield();
  }
  for (int i = 0; i < 10; ++i) {
    rt.submit([&] { count.fetch_add(1); });
  }
  // The worker is busy; this thread executes the queued tasks.
  int helped = 0;
  while (rt.try_execute_one()) {
    ++helped;
  }
  EXPECT_EQ(helped, 10);
  EXPECT_EQ(count.load(), 10);
  release = true;
  rt.wait_idle();
}

TEST(Scheduler, StatsCountExecutions) {
  runtime rt(2);
  for (int i = 0; i < 50; ++i) {
    rt.submit([] {});
  }
  rt.wait_idle();
  EXPECT_EQ(rt.stats().tasks_executed, 50u);
}

TEST(Scheduler, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    runtime rt(2);
    for (int i = 0; i < 500; ++i) {
      rt.submit([&] { count.fetch_add(1); });
    }
    // No wait_idle: the destructor must finish the queue.
  }
  EXPECT_EQ(count.load(), 500);
}

TEST(Scheduler, DefaultInstanceResetAndShutdown) {
  runtime::reset(2);
  EXPECT_TRUE(runtime::exists());
  EXPECT_EQ(runtime::get().concurrency(), 2u);
  runtime::reset(3);
  EXPECT_EQ(runtime::get().concurrency(), 3u);
  runtime::shutdown();
  EXPECT_FALSE(runtime::exists());
}

// Regression: shutdown()/reset() must not hold the default-instance
// mutex while ~runtime drains.  A task finishing during the drain may
// call exists()/get() (continuation dispatch does exactly that), which
// deadlocked against wait_idle() when the drain ran under the mutex.
// The exists() probe inside a still-running task recreates the race;
// repetition gives the interleaving a chance to bite.
TEST(Scheduler, ShutdownWhileTasksQueryTheDefaultInstance) {
  for (int round = 0; round < 50; ++round) {
    runtime::reset(2);
    std::atomic<bool> observed{false};
    runtime::get().submit([&] {
      // Mimic shared_state::dispatch deciding where a continuation
      // runs; under the old locking this blocked forever once
      // shutdown() had taken the instance mutex.
      observed.store(runtime::exists(), std::memory_order_release);
    });
    runtime::shutdown();  // drains: the task must complete, not deadlock
    EXPECT_FALSE(runtime::exists());
  }
}

TEST(Scheduler, WaitIdleReturnsImmediatelyWhenEmpty) {
  runtime rt(2);
  const auto t0 = std::chrono::steady_clock::now();
  rt.wait_idle();
  const auto dt = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(dt).count(),
            500);
}

}  // namespace
