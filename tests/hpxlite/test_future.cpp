#include "hpxlite/future.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace {

using hpxlite::future;
using hpxlite::make_exceptional_future;
using hpxlite::make_ready_future;
using hpxlite::promise;
using hpxlite::runtime;
using hpxlite::shared_future;
using hpxlite::when_all;

class FutureTest : public ::testing::Test {
 protected:
  void SetUp() override { runtime::reset(2); }
  void TearDown() override { runtime::shutdown(); }
};

TEST_F(FutureTest, DefaultFutureIsInvalid) {
  future<int> f;
  EXPECT_FALSE(f.valid());
  EXPECT_THROW(f.get(), hpxlite::no_state);
}

TEST_F(FutureTest, PromiseDeliversValue) {
  promise<int> p;
  future<int> f = p.get_future();
  EXPECT_TRUE(f.valid());
  EXPECT_FALSE(f.is_ready());
  p.set_value(17);
  EXPECT_TRUE(f.is_ready());
  EXPECT_EQ(f.get(), 17);
  EXPECT_FALSE(f.valid());  // get() consumes the state
}

TEST_F(FutureTest, PromiseDeliversVoid) {
  promise<void> p;
  future<void> f = p.get_future();
  p.set_value();
  EXPECT_TRUE(f.is_ready());
  EXPECT_NO_THROW(f.get());
}

TEST_F(FutureTest, PromiseDeliversMoveOnlyValue) {
  promise<std::unique_ptr<int>> p;
  auto f = p.get_future();
  p.set_value(std::make_unique<int>(99));
  auto v = f.get();
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 99);
}

TEST_F(FutureTest, GetRethrowsException) {
  promise<int> p;
  auto f = p.get_future();
  p.set_exception(std::make_exception_ptr(std::runtime_error("boom")));
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST_F(FutureTest, BrokenPromiseSignalled) {
  future<int> f;
  {
    promise<int> p;
    f = p.get_future();
  }  // destroyed without a value
  ASSERT_TRUE(f.is_ready());
  EXPECT_THROW(f.get(), hpxlite::broken_promise);
}

TEST_F(FutureTest, MakeReadyFuture) {
  auto f = make_ready_future(std::string("hi"));
  EXPECT_TRUE(f.is_ready());
  EXPECT_EQ(f.get(), "hi");
  auto v = make_ready_future();
  EXPECT_TRUE(v.is_ready());
}

TEST_F(FutureTest, MakeExceptionalFuture) {
  auto f = make_exceptional_future<int>(
      std::make_exception_ptr(std::logic_error("x")));
  EXPECT_TRUE(f.is_ready());
  EXPECT_THROW(f.get(), std::logic_error);
}

TEST_F(FutureTest, WaitBlocksUntilValueFromAnotherThread) {
  promise<int> p;
  auto f = p.get_future();
  std::thread producer([&p] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    p.set_value(5);
  });
  EXPECT_EQ(f.get(), 5);
  producer.join();
}

TEST_F(FutureTest, ThenRunsContinuationWithReadyFuture) {
  promise<int> p;
  auto f = p.get_future();
  auto g = f.then([](future<int>&& ready) { return ready.get() * 2; });
  EXPECT_FALSE(g.is_ready());
  p.set_value(21);
  EXPECT_EQ(g.get(), 42);
}

TEST_F(FutureTest, ThenOnReadyFutureRunsImmediately) {
  auto g = make_ready_future(10).then(
      [](future<int>&& ready) { return ready.get() + 1; });
  EXPECT_EQ(g.get(), 11);
}

TEST_F(FutureTest, ThenChains) {
  promise<int> p;
  auto f = p.get_future()
               .then([](future<int>&& r) { return r.get() + 1; })
               .then([](future<int>&& r) { return r.get() * 10; });
  p.set_value(4);
  EXPECT_EQ(f.get(), 50);
}

TEST_F(FutureTest, ThenPropagatesException) {
  promise<int> p;
  auto g = p.get_future().then([](future<int>&& r) { return r.get(); });
  p.set_exception(std::make_exception_ptr(std::runtime_error("dead")));
  EXPECT_THROW(g.get(), std::runtime_error);
}

TEST_F(FutureTest, ThenReturningVoid) {
  std::atomic<int> hits{0};
  promise<int> p;
  auto g = p.get_future().then([&hits](future<int>&& r) {
    r.get();
    hits.fetch_add(1);
  });
  p.set_value(1);
  g.get();
  EXPECT_EQ(hits.load(), 1);
}

TEST_F(FutureTest, SharedFutureMultipleGets) {
  promise<int> p;
  shared_future<int> s = p.get_future().share();
  shared_future<int> s2 = s;  // copyable
  p.set_value(7);
  EXPECT_EQ(s.get(), 7);
  EXPECT_EQ(s.get(), 7);
  EXPECT_EQ(s2.get(), 7);
}

TEST_F(FutureTest, SharedFutureThen) {
  promise<int> p;
  auto s = p.get_future().share();
  auto a = s.then([](shared_future<int> r) { return r.get() + 1; });
  auto b = s.then([](shared_future<int> r) { return r.get() + 2; });
  p.set_value(10);
  EXPECT_EQ(a.get(), 11);
  EXPECT_EQ(b.get(), 12);
}

TEST_F(FutureTest, WhenAllVector) {
  std::vector<promise<int>> ps(3);
  std::vector<future<int>> fs;
  fs.reserve(3);
  for (auto& p : ps) {
    fs.push_back(p.get_future());
  }
  auto all = when_all(std::move(fs));
  EXPECT_FALSE(all.is_ready());
  ps[1].set_value(1);
  ps[0].set_value(0);
  EXPECT_FALSE(all.is_ready());
  ps[2].set_value(2);
  auto ready = all.get();
  ASSERT_EQ(ready.size(), 3u);
  EXPECT_EQ(ready[0].get(), 0);
  EXPECT_EQ(ready[1].get(), 1);
  EXPECT_EQ(ready[2].get(), 2);
}

TEST_F(FutureTest, WhenAllEmptyVectorIsReady) {
  auto all = when_all(std::vector<future<int>>{});
  EXPECT_TRUE(all.is_ready());
  EXPECT_TRUE(all.get().empty());
}

TEST_F(FutureTest, WhenAllVariadicTuple) {
  promise<int> pi;
  promise<std::string> ps;
  auto all = when_all(pi.get_future(), ps.get_future());
  pi.set_value(3);
  ps.set_value(std::string("x"));
  auto [fi, fs2] = all.get();
  EXPECT_EQ(fi.get(), 3);
  EXPECT_EQ(fs2.get(), "x");
}

TEST_F(FutureTest, WhenAllSharedVector) {
  std::vector<promise<void>> ps(4);
  std::vector<shared_future<void>> fs;
  for (auto& p : ps) {
    fs.push_back(p.get_future().share());
  }
  auto all = when_all(fs);
  EXPECT_FALSE(all.is_ready());
  for (auto& p : ps) {
    p.set_value();
  }
  EXPECT_NO_THROW(all.get());
  // Inputs remain usable.
  for (auto& f : fs) {
    EXPECT_TRUE(f.is_ready());
  }
}

TEST_F(FutureTest, WaitInsideWorkerHelpsInsteadOfDeadlocking) {
  // One worker only: the outer task waits on a future produced by a
  // second task that sits in the queue.  Without helping this deadlocks.
  runtime::reset(1);
  promise<int> p;
  auto inner = p.get_future();
  std::atomic<int> result{0};
  runtime::get().submit([&] {
    runtime::get().submit([&p] { p.set_value(123); });
    result = inner.get();  // must execute the queued task itself
  });
  runtime::get().wait_idle();
  EXPECT_EQ(result.load(), 123);
}

}  // namespace
