// grain_controller state machine, driven with synthetic timings so
// every path is deterministic: seeding, the geometric hill-climb (up,
// down, reversal), the hard convergence bound, drift re-probing,
// freeze/reprobe/reset, the cache warm start, and the n-drift re-seed.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>

#include "hpxlite/grain_controller.hpp"

namespace {

using hpxlite::grain_controller;
using state = hpxlite::grain_controller::state;

/// Drives the controller until it converges (or the feed budget runs
/// out) against a synthetic cost model `seconds(chunk)`.
template <typename Cost>
std::size_t drive_to_convergence(grain_controller& c, std::size_t n,
                                 unsigned workers, Cost cost,
                                 int max_feeds = 64) {
  for (int i = 0; i < max_feeds; ++i) {
    if (c.current_state() == state::converged) {
      break;
    }
    const std::size_t chunk = c.chunk(n, workers);
    c.feed(cost(chunk));
  }
  return c.current_chunk();
}

TEST(GrainController, SeedsFromWorkersLikeReduceNormalisation) {
  grain_controller c;
  // n / (4 * workers) = 1024 / 16 = 64.
  EXPECT_EQ(c.chunk(1024, 4), 64u);
  EXPECT_EQ(c.current_state(), state::probing);
}

TEST(GrainController, ExplicitSeedChunkWins) {
  grain_controller::options opt;
  opt.seed_chunk = 10;
  grain_controller c(opt);
  EXPECT_EQ(c.chunk(1024, 4), 10u);
}

TEST(GrainController, ChunkAlwaysInRangeEvenForTinySets) {
  grain_controller c;
  EXPECT_EQ(c.chunk(0, 4), 1u);   // empty set: still a sane value
  grain_controller c2;
  EXPECT_EQ(c2.chunk(5, 4), 1u);  // 5/16 rounds to 0 -> clamped to 1
  grain_controller c3;
  EXPECT_EQ(c3.chunk(1, 8), 1u);
}

TEST(GrainController, ClimbsUpWhenLargerChunksAreFaster) {
  grain_controller c;
  const auto chunk = drive_to_convergence(
      c, 1024, 4, [](std::size_t k) { return 1.0 / static_cast<double>(k); });
  EXPECT_EQ(c.current_state(), state::converged);
  EXPECT_EQ(chunk, 1024u);  // monotone cost: the ladder top wins
  EXPECT_LE(c.probe_feeds(), 32u);
}

TEST(GrainController, ClimbsDownWhenSmallerChunksAreFaster) {
  grain_controller c;
  const auto chunk = drive_to_convergence(
      c, 1024, 4, [](std::size_t k) { return static_cast<double>(k); });
  EXPECT_EQ(c.current_state(), state::converged);
  EXPECT_EQ(chunk, 1u);
  EXPECT_LE(c.probe_feeds(), 32u);
}

TEST(GrainController, FindsAnInteriorOptimumOnTheLadder) {
  grain_controller c;
  // V-shaped in log2-space with the optimum at 16; the seed is 64, so
  // the climb must go up once (worse), reverse, and walk down to 16.
  const auto cost = [](std::size_t k) {
    return 1.0 + std::fabs(std::log2(static_cast<double>(k)) - 4.0);
  };
  const auto chunk = drive_to_convergence(c, 1024, 4, cost);
  EXPECT_EQ(c.current_state(), state::converged);
  EXPECT_EQ(chunk, 16u);
}

TEST(GrainController, HardBoundConvergesEvenWhenSamplesNeverComplete) {
  grain_controller::options opt;
  opt.samples_per_candidate = 1000;  // the climb can never advance
  grain_controller c(opt);
  for (int i = 0; i < opt.max_probe_feeds; ++i) {
    EXPECT_EQ(c.current_state(), state::probing) << "feed " << i;
    c.chunk(1024, 4);
    c.feed(1.0);
  }
  EXPECT_EQ(c.current_state(), state::converged);
  EXPECT_EQ(c.probe_feeds(), 32u);
}

TEST(GrainController, DriftNeedsConsecutiveStrikesToReprobe) {
  grain_controller c;
  drive_to_convergence(c, 1024, 4,
                       [](std::size_t) { return 1.0; });
  ASSERT_EQ(c.current_state(), state::converged);
  // Two regressed feeds with a good one in between: strikes reset.
  c.feed(2.0);
  c.feed(1.0);
  c.feed(2.0);
  c.feed(2.0);
  EXPECT_EQ(c.current_state(), state::converged);
  // Third consecutive regression: back to probing from the best chunk.
  c.feed(2.0);
  EXPECT_EQ(c.current_state(), state::probing);
  EXPECT_EQ(c.probe_feeds(), 0u);  // fresh probing episode
}

TEST(GrainController, ConvergedBaselineRatchetsDown) {
  grain_controller c;
  drive_to_convergence(c, 1024, 4, [](std::size_t) { return 1.0; });
  ASSERT_EQ(c.current_state(), state::converged);
  // A faster run lowers the baseline: 1.1s regresses >15% vs 0.5s ...
  c.feed(0.5);
  c.feed(1.1);
  c.feed(1.1);
  c.feed(1.1);
  EXPECT_EQ(c.current_state(), state::probing);
}

TEST(GrainController, FrozenIgnoresFeedAndReprobe) {
  grain_controller c;
  c.chunk(1024, 4);
  c.freeze();
  const auto chunk = c.current_chunk();
  for (int i = 0; i < 40; ++i) {
    c.feed(static_cast<double>(i));
  }
  c.reprobe();
  EXPECT_EQ(c.current_state(), state::frozen);
  EXPECT_EQ(c.current_chunk(), chunk);
  EXPECT_EQ(c.total_probe_feeds(), 0u);
  EXPECT_EQ(c.total_feeds(), 40u);  // feeds are counted, just unused
}

TEST(GrainController, ReprobeRestartsFromTheConvergedBest) {
  grain_controller c;
  drive_to_convergence(c, 1024, 4, [](std::size_t k) {
    return 1.0 + std::fabs(std::log2(static_cast<double>(k)) - 4.0);
  });
  ASSERT_EQ(c.current_state(), state::converged);
  ASSERT_EQ(c.current_chunk(), 16u);
  c.reprobe();
  EXPECT_EQ(c.current_state(), state::probing);
  EXPECT_EQ(c.current_chunk(), 16u);  // probe resumes at the best
  EXPECT_EQ(c.probe_feeds(), 0u);
  // Same cost model: it re-converges to the same optimum.
  drive_to_convergence(c, 1024, 4, [](std::size_t k) {
    return 1.0 + std::fabs(std::log2(static_cast<double>(k)) - 4.0);
  });
  EXPECT_EQ(c.current_chunk(), 16u);
}

TEST(GrainController, ResetForgetsEverything) {
  grain_controller c;
  drive_to_convergence(c, 1024, 4, [](std::size_t) { return 1.0; });
  c.reset();
  EXPECT_EQ(c.current_state(), state::probing);
  EXPECT_EQ(c.current_chunk(), 0u);
  EXPECT_EQ(c.chunk(64, 4), 4u);  // re-seeds for the new shape
}

TEST(GrainController, ConvergedAtWarmStartDoesZeroExploration) {
  auto c = grain_controller::converged_at(24);
  EXPECT_EQ(c->current_state(), state::converged);
  EXPECT_EQ(c->current_chunk(), 24u);
  EXPECT_EQ(c->chunk(1024, 4), 24u);  // first meeting keeps the chunk
  // Feeds establish a baseline and keep it converged — no probing.
  for (int i = 0; i < 20; ++i) {
    c->feed(1.0);
  }
  EXPECT_EQ(c->current_state(), state::converged);
  EXPECT_EQ(c->total_probe_feeds(), 0u);
}

TEST(GrainController, NDriftBeyondHalfReseeds) {
  grain_controller c;
  ASSERT_EQ(c.chunk(1024, 4), 64u);
  c.feed(1.0);
  // Within +-50%: the ladder stands, the chunk only gets clamped.
  EXPECT_EQ(c.chunk(900, 4), 64u);
  // The set doubled: the learned grain partitions a different space.
  EXPECT_EQ(c.chunk(2048, 4), 128u);  // fresh seed: 2048 / 16
  EXPECT_EQ(c.current_state(), state::probing);
  EXPECT_EQ(c.probe_feeds(), 0u);
}

TEST(GrainController, ToStringNamesEveryState) {
  EXPECT_STREQ(hpxlite::to_string(state::probing), "probing");
  EXPECT_STREQ(hpxlite::to_string(state::converged), "converged");
  EXPECT_STREQ(hpxlite::to_string(state::frozen), "frozen");
}

}  // namespace
