#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "hpxlite/hpxlite.hpp"

namespace {

using hpxlite::adaptive_chunk_size;
using hpxlite::auto_chunk_size;
using hpxlite::chunk_spec;
using hpxlite::dynamic_chunk_size;
using hpxlite::grain_controller;
using hpxlite::guided_chunk_size;
using hpxlite::irange;
using hpxlite::par;
using hpxlite::runtime;
using hpxlite::seq;
using hpxlite::static_chunk_size;
using hpxlite::task;

class ForEachTest : public ::testing::Test {
 protected:
  void SetUp() override { runtime::reset(3); }
  void TearDown() override { runtime::shutdown(); }
};

TEST_F(ForEachTest, SequencedVisitsEverythingInOrder) {
  std::vector<int> seen;
  auto r = irange(0, 10);
  hpxlite::parallel::for_each(seq, r.begin(), r.end(),
                              [&](int i) { seen.push_back(i); });
  std::vector<int> expect(10);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(seen, expect);
}

TEST_F(ForEachTest, ParallelVisitsEveryElementExactlyOnce) {
  constexpr int n = 10000;
  std::vector<std::atomic<int>> counts(n);
  auto r = irange(0, n);
  hpxlite::parallel::for_each(par, r.begin(), r.end(),
                              [&](int i) { counts[i].fetch_add(1); });
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "element " << i;
  }
}

TEST_F(ForEachTest, ParallelOverVectorIterators) {
  std::vector<double> v(5000, 1.0);
  hpxlite::parallel::for_each(par, v.begin(), v.end(),
                              [](double& x) { x *= 2.0; });
  for (const double x : v) {
    ASSERT_DOUBLE_EQ(x, 2.0);
  }
}

TEST_F(ForEachTest, EmptyRangeIsNoop) {
  auto r = irange(5, 5);
  int hits = 0;
  hpxlite::parallel::for_each(par, r.begin(), r.end(), [&](int) { ++hits; });
  EXPECT_EQ(hits, 0);
}

TEST_F(ForEachTest, SingleElementRange) {
  auto r = irange(7, 8);
  std::atomic<int> sum{0};
  hpxlite::parallel::for_each(par, r.begin(), r.end(),
                              [&](int i) { sum += i; });
  EXPECT_EQ(sum.load(), 7);
}

TEST_F(ForEachTest, TaskPolicyReturnsFuture) {
  constexpr int n = 2000;
  std::vector<std::atomic<int>> counts(n);
  auto r = irange(0, n);
  auto f = hpxlite::parallel::for_each(par(task), r.begin(), r.end(),
                                       [&](int i) { counts[i].fetch_add(1); });
  f.get();
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(counts[i].load(), 1);
  }
}

TEST_F(ForEachTest, TaskPolicyEmptyRangeReadyImmediately) {
  auto r = irange(0, 0);
  auto f = hpxlite::parallel::for_each(par(task), r.begin(), r.end(),
                                       [](int) {});
  EXPECT_TRUE(f.is_ready());
}

TEST_F(ForEachTest, ExceptionPropagatesFromBody) {
  auto r = irange(0, 100);
  EXPECT_THROW(hpxlite::parallel::for_each(par, r.begin(), r.end(),
                                           [](int i) {
                                             if (i == 50) {
                                               throw std::runtime_error("i50");
                                             }
                                           }),
               std::runtime_error);
}

TEST_F(ForEachTest, ExceptionPropagatesThroughTaskFuture) {
  auto r = irange(0, 100);
  auto f = hpxlite::parallel::for_each(par(task), r.begin(), r.end(),
                                       [](int i) {
                                         if (i == 3) {
                                           throw std::logic_error("i3");
                                         }
                                       });
  EXPECT_THROW(f.get(), std::logic_error);
}

TEST_F(ForEachTest, ForLoopIndexVariant) {
  std::vector<std::atomic<int>> counts(500);
  hpxlite::parallel::for_loop(par, 0, 500,
                              [&](int i) { counts[i].fetch_add(1); });
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(counts[i].load(), 1);
  }
}

TEST_F(ForEachTest, ForLoopEmptyAndReversedBounds) {
  int hits = 0;
  hpxlite::parallel::for_loop(par, 5, 5, [&](int) { ++hits; });
  hpxlite::parallel::for_loop(par, 9, 2, [&](int) { ++hits; });
  EXPECT_EQ(hits, 0);
  auto f = hpxlite::parallel::for_loop(par(task), 3, 3, [&](int) { ++hits; });
  f.get();
  EXPECT_EQ(hits, 0);
}

TEST_F(ForEachTest, TransformParallel) {
  std::vector<int> in(1000);
  std::iota(in.begin(), in.end(), 0);
  std::vector<int> out(in.size(), -1);
  hpxlite::parallel::transform(par, in.begin(), in.end(), out.begin(),
                               [](int x) { return x * x; });
  for (std::size_t i = 0; i < in.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST_F(ForEachTest, TransformTaskPolicy) {
  std::vector<int> in(256, 2);
  std::vector<int> out(in.size(), 0);
  auto f = hpxlite::parallel::transform(par(task), in.begin(), in.end(),
                                        out.begin(), [](int x) { return x + 1; });
  f.get();
  for (const int v : out) {
    ASSERT_EQ(v, 3);
  }
}

// --- auto-partitioner probe skip on empty/tiny sets -------------------
//
// The serial probe samples n * measure_fraction iterations; when that
// rounds to zero (empty or tiny set) a timed sample would be all
// overhead and no signal, so pick_static_chunk must skip the probe
// entirely and run the whole range as one chunk.

std::pair<std::size_t, std::size_t> pick_counting(std::size_t n,
                                                  unsigned workers,
                                                  int& prefix_calls) {
  return hpxlite::parallel::detail::pick_static_chunk(
      chunk_spec(auto_chunk_size{}), n, workers,
      [&](std::size_t) { ++prefix_calls; });
}

TEST(AutoProbeSkip, EmptySetNeverProbes) {
  int calls = 0;
  const auto [chunk, prefix] = pick_counting(0, 3, calls);
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(prefix, 0u);
  EXPECT_GE(chunk, 1u);  // a sane chunk even with nothing to do
}

TEST(AutoProbeSkip, SingleElementNeverProbes) {
  int calls = 0;
  const auto [chunk, prefix] = pick_counting(1, 3, calls);
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(prefix, 0u);
  EXPECT_EQ(chunk, 1u);
}

TEST(AutoProbeSkip, FewerElementsThanWorkersNeverProbes) {
  int calls = 0;
  const auto [chunk, prefix] = pick_counting(2, 3, calls);  // workers - 1
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(prefix, 0u);
  EXPECT_EQ(chunk, 2u);  // the whole range is one chunk
}

TEST(AutoProbeSkip, LargestProbeFreeSizeRunsAsOneChunk) {
  // 99 * 0.01 rounds to zero: still probe-free.
  int calls = 0;
  const auto [chunk, prefix] = pick_counting(99, 3, calls);
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(chunk, 99u);
  // 100 * 0.01 == 1: the probe engages (and consumes its prefix).
  const auto [chunk2, prefix2] = pick_counting(100, 3, calls);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(prefix2, 1u);
  EXPECT_GE(chunk2, 1u);
}

TEST_F(ForEachTest, AutoChunkerTinyRangesStillVisitEverything) {
  // End-to-end flavour of the probe-skip sizes: n = 0, 1, workers - 1.
  for (const int n : {0, 1, 2}) {
    std::vector<std::atomic<int>> counts(static_cast<std::size_t>(n) + 1);
    auto r = irange(0, n);
    hpxlite::parallel::for_each(par.with(auto_chunk_size{}), r.begin(),
                                r.end(),
                                [&](int i) { counts[static_cast<std::size_t>(i)].fetch_add(1); });
    for (int i = 0; i < n; ++i) {
      ASSERT_EQ(counts[static_cast<std::size_t>(i)].load(), 1)
          << "n=" << n << " element " << i;
    }
  }
}

// --- chunker behaviour, parameterised over every chunk_spec -----------

class ChunkerTest : public ::testing::TestWithParam<chunk_spec> {
 protected:
  void SetUp() override { runtime::reset(3); }
  void TearDown() override { runtime::shutdown(); }
};

TEST_P(ChunkerTest, EveryElementVisitedExactlyOnce) {
  constexpr int n = 4321;  // deliberately not a multiple of anything
  std::vector<std::atomic<int>> counts(n);
  auto r = irange(0, n);
  hpxlite::parallel::for_each(par.with(GetParam()), r.begin(), r.end(),
                              [&](int i) { counts[i].fetch_add(1); });
  long total = 0;
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "element " << i;
    total += counts[i].load();
  }
  EXPECT_EQ(total, n);
}

TEST_P(ChunkerTest, TaskVariantVisitsEverything) {
  constexpr int n = 1234;
  std::vector<std::atomic<int>> counts(n);
  auto r = irange(0, n);
  auto f = hpxlite::parallel::for_each(par(task).with(GetParam()), r.begin(),
                                       r.end(),
                                       [&](int i) { counts[i].fetch_add(1); });
  f.get();
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(counts[i].load(), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllChunkers, ChunkerTest,
    ::testing::Values(
        chunk_spec(auto_chunk_size{}),
        chunk_spec(static_chunk_size(1)),
        chunk_spec(static_chunk_size(7)),
        chunk_spec(static_chunk_size(100000)),   // chunk > range
        chunk_spec(dynamic_chunk_size(13)),
        chunk_spec(dynamic_chunk_size(100000)),  // chunk > range
        chunk_spec(guided_chunk_size(4)),
        chunk_spec(guided_chunk_size(100000)),   // min clamp > range
        chunk_spec(adaptive_chunk_size{}),       // null controller fallback
        chunk_spec(adaptive_chunk_size{std::make_shared<grain_controller>()})),
    [](const ::testing::TestParamInfo<chunk_spec>& pinfo) {
      switch (pinfo.param.index()) {
        case 0:
          return std::string("auto");
        case 1: {
          const auto s = std::get<hpxlite::static_chunk_size>(pinfo.param).size;
          return "static" + std::to_string(s);
        }
        case 2: {
          const auto s =
              std::get<hpxlite::dynamic_chunk_size>(pinfo.param).size;
          return "dynamic" + std::to_string(s);
        }
        case 3: {
          const auto s =
              std::get<hpxlite::guided_chunk_size>(pinfo.param).min_size;
          return "guided" + std::to_string(s);
        }
        default:
          return std::get<adaptive_chunk_size>(pinfo.param).controller
                     ? std::string("adaptive")
                     : std::string("adaptiveNull");
      }
    });

// --- dynamic / guided boundary behaviour ------------------------------

TEST_F(ForEachTest, DynamicChunkLargerThanRangeIsOneGrab) {
  // One worker's first fetch_add covers the whole range; the rest find
  // the cursor past the end and exit.  Everything still runs once.
  constexpr int n = 50;
  std::vector<std::atomic<int>> counts(n);
  auto r = irange(0, n);
  hpxlite::parallel::for_each(par.with(dynamic_chunk_size(100000)),
                              r.begin(), r.end(),
                              [&](int i) { counts[static_cast<std::size_t>(i)].fetch_add(1); });
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(counts[static_cast<std::size_t>(i)].load(), 1);
  }
}

TEST_F(ForEachTest, GuidedMinChunkClampsTheShrinkingGrabs) {
  // remaining/(2*workers) would shrink below min_size quickly; the
  // clamp keeps every grab at >= min_size and the tail grab must not
  // overrun the range.
  constexpr int n = 100;
  std::vector<std::atomic<int>> counts(n);
  auto r = irange(0, n);
  hpxlite::parallel::for_each(par.with(guided_chunk_size(32)), r.begin(),
                              r.end(),
                              [&](int i) { counts[static_cast<std::size_t>(i)].fetch_add(1); });
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(counts[static_cast<std::size_t>(i)].load(), 1);
  }
}

TEST_F(ForEachTest, AdaptiveChunkerFollowsItsController) {
  // The controller converges on some chunk from fed times; for_each
  // must keep visiting every element exactly once while it explores.
  auto ctl = std::make_shared<grain_controller>();
  constexpr int n = 2048;
  for (int round = 0; round < 6; ++round) {
    std::vector<std::atomic<int>> counts(n);
    auto r = irange(0, n);
    hpxlite::parallel::for_each(par.with(adaptive_chunk_size{ctl}),
                                r.begin(), r.end(),
                                [&](int i) { counts[static_cast<std::size_t>(i)].fetch_add(1); });
    for (int i = 0; i < n; ++i) {
      ASSERT_EQ(counts[static_cast<std::size_t>(i)].load(), 1)
          << "round " << round;
    }
    ctl->feed(0.001 * (round + 1));  // owner-side feedback between runs
  }
  EXPECT_GE(ctl->total_feeds(), 6u);
}

}  // namespace
