// The operation-state continuation core: pooled single-allocation
// chain building, receiver-triple delivery, combinator allocation
// bounds, and prompt release of continuation storage on cancellation.
#include "hpxlite/op_state.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "hpxlite/async.hpp"
#include "hpxlite/dataflow.hpp"
#include "hpxlite/future.hpp"
#include "hpxlite/stop_token.hpp"
#include "hpxlite/when_any.hpp"

namespace {

using hpxlite::launch;
using hpxlite::operation_cancelled;
using hpxlite::stop_source;

// Pool activity (pooled acquires + oversize fallbacks) across a code
// region — the unit the zero-allocation gates are expressed in.
struct pool_delta {
  hpxlite::op_pool_counters before = hpxlite::op_pool_stats();

  std::uint64_t news_served() const {
    const auto now = hpxlite::op_pool_stats();
    return (now.fresh_blocks - before.fresh_blocks) +
           (now.oversize_allocs - before.oversize_allocs);
  }
  std::uint64_t requests() const {
    const auto now = hpxlite::op_pool_stats();
    return (now.acquires - before.acquires) +
           (now.oversize_allocs - before.oversize_allocs);
  }
  std::int64_t outstanding() const {
    return hpxlite::op_pool_stats().outstanding - before.outstanding;
  }
};

// --- chain building ---------------------------------------------------

constexpr int kChain = 128;

void run_then_chain() {
  hpxlite::promise<int> p;
  hpxlite::future<int> f = p.get_future();
  for (int i = 0; i < kChain; ++i) {
    f = f.then([](hpxlite::future<int>&& in) { return in.get() + 1; });
  }
  p.set_value(0);
  ASSERT_EQ(f.get(), kChain);
}

TEST(OpState, ThenChainBuildsFromRecycledBlocksAfterWarmup) {
  run_then_chain();  // warm-up: primes the thread's block cache
  pool_delta d;
  run_then_chain();
  // Every node was served from the pool: zero fresh blocks, zero
  // oversize fallbacks — i.e. zero calls to operator new per node.
  EXPECT_EQ(d.news_served(), 0u);
  EXPECT_EQ(d.outstanding(), 0);  // all op-states released again
}

void run_dataflow_chain() {
  hpxlite::promise<int> p;
  hpxlite::future<int> f = p.get_future();
  for (int i = 0; i < kChain; ++i) {
    f = hpxlite::dataflow(launch::async,
                          hpxlite::unwrapping([](int v) { return v + 1; }),
                          std::move(f));
  }
  p.set_value(0);
  ASSERT_EQ(f.get(), kChain);
}

TEST(OpState, DataflowChainBuildsFromRecycledBlocksAfterWarmup) {
  run_dataflow_chain();
  pool_delta d;
  run_dataflow_chain();
  EXPECT_EQ(d.news_served(), 0u);
  EXPECT_EQ(d.outstanding(), 0);
}

TEST(OpState, AsyncLaunchIsASinglePooledAllocation) {
  { auto warm = hpxlite::async(launch::sync, [] { return 1; }); }
  pool_delta d;
  auto f = hpxlite::async(launch::sync, [] { return 41; });
  EXPECT_EQ(d.requests(), 1u);  // op (state + bound fn) in ONE block
  EXPECT_EQ(f.get(), 41);
}

// --- receiver triple --------------------------------------------------

TEST(OpState, ContinuationThrowingCancellationPreservesItsMessage) {
  // fulfil routes operation_cancelled through set_stopped with the
  // original exception, so the reason survives to the consumer.
  auto f = hpxlite::make_ready_future().then(
      [](hpxlite::future<void>&&) -> int {
        throw operation_cancelled("deadline budget exhausted");
      });
  try {
    (void)f.get();
    FAIL() << "expected operation_cancelled";
  } catch (const operation_cancelled& e) {
    EXPECT_STREQ(e.what(), "deadline budget exhausted");
  }
}

TEST(OpState, ParkedContinuationsFireInRegistrationOrder) {
  hpxlite::promise<void> p;
  auto sf = p.get_future().share();
  std::vector<int> order;
  auto a = sf.then([&order](hpxlite::shared_future<void>) { order.push_back(1); },
                   hpxlite::detail::continuation_mode::inline_);
  auto b = sf.then([&order](hpxlite::shared_future<void>) { order.push_back(2); },
                   hpxlite::detail::continuation_mode::inline_);
  auto c = sf.then([&order](hpxlite::shared_future<void>) { order.push_back(3); },
                   hpxlite::detail::continuation_mode::inline_);
  p.set_value();
  a.wait();
  b.wait();
  c.wait();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// --- combinator allocation bounds (when_all / when_some audit) --------

TEST(OpState, WhenAllOverManyInputsIsAllocationBounded) {
  constexpr std::size_t n = 64;
  std::vector<hpxlite::promise<int>> ps(n);
  std::vector<hpxlite::future<int>> fs;
  fs.reserve(n);
  for (auto& p : ps) {
    fs.push_back(p.get_future());
  }
  pool_delta d;
  auto joined = hpxlite::when_all(std::move(fs));
  // One op + one arm array — NOT one closure per input.
  EXPECT_LE(d.requests(), 3u);
  for (std::size_t i = 0; i < n; ++i) {
    ps[i].set_value(static_cast<int>(i));
  }
  auto ready = joined.get();
  ASSERT_EQ(ready.size(), n);
  EXPECT_EQ(ready[5].get(), 5);
}

TEST(OpState, WhenSomeOverManyInputsIsAllocationBounded) {
  constexpr std::size_t n = 64;
  std::vector<hpxlite::promise<int>> ps(n);
  std::vector<hpxlite::future<int>> fs;
  fs.reserve(n);
  for (auto& p : ps) {
    fs.push_back(p.get_future());
  }
  pool_delta d;
  auto some = hpxlite::when_some(2, std::move(fs));
  EXPECT_LE(d.requests(), 3u);
  ps[7].set_value(70);
  ps[3].set_value(30);
  auto r = some.get();
  ASSERT_EQ(r.indices.size(), 2u);
  EXPECT_EQ(r.indices[0], 7u);
  EXPECT_EQ(r.indices[1], 3u);
  EXPECT_EQ(r.futures[7].get(), 70);
  // Resolve the rest so their parked arms release.
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 7 && i != 3) {
      ps[i].set_value(0);
    }
  }
}

TEST(OpState, WhenSomeReleasesCombinatorAfterStragglersResolve) {
  const std::uint64_t pending0 = hpxlite::pending_continuation_count();
  pool_delta d;
  {
    std::vector<hpxlite::promise<int>> ps(4);
    std::vector<hpxlite::future<int>> fs;
    for (auto& p : ps) {
      fs.push_back(p.get_future());
    }
    ps[0].set_value(1);
    auto any = hpxlite::when_any(std::move(fs));
    auto r = any.get();
    EXPECT_EQ(r.index, 0u);
    // The consumer drops the three still-pending inputs it got back;
    // their promises then resolve as broken, firing the parked arms.
    r.futures.clear();
  }
  EXPECT_EQ(hpxlite::pending_continuation_count(), pending0);
  EXPECT_EQ(d.outstanding(), 0);  // combinator op-state fully released
}

// --- cancellation: prompt release of continuation storage -------------

TEST(OpState, CancelMidThenChainReleasesOpStatesPromptly) {
  const std::uint64_t pending0 = hpxlite::pending_continuation_count();
  auto sentinel = std::make_shared<int>(7);
  pool_delta d;
  stop_source src;
  {
    hpxlite::promise<void> gate;
    hpxlite::future<void> f = gate.get_future();
    for (int i = 0; i < 8; ++i) {
      f = f.then([sentinel, tok = src.get_token()](hpxlite::future<void>&& in) {
        in.get();
        tok.throw_if_stopped();
      });
    }
    // The chain is parked: each node's op-state (holding the sentinel)
    // is counted as a live continuation, one per link.
    EXPECT_EQ(hpxlite::pending_continuation_count(), pending0 + 8);
    EXPECT_GT(sentinel.use_count(), 1);
    src.request_stop();
    gate.set_value();  // fire: every node resolves operation_cancelled
    EXPECT_THROW(f.get(), operation_cancelled);
  }
  // Resolution released every op-state and its captures promptly.
  EXPECT_EQ(hpxlite::pending_continuation_count(), pending0);
  EXPECT_EQ(sentinel.use_count(), 1);
  EXPECT_EQ(d.outstanding(), 0);
}

TEST(OpState, CancelledAsyncChainReleasesBoundClosures) {
  const std::uint64_t pending0 = hpxlite::pending_continuation_count();
  auto sentinel = std::make_shared<int>(1);
  pool_delta d;
  stop_source src;
  src.request_stop();
  {
    // The token gate trips at invocation, before the sentinel-holding
    // body runs; the downstream then sees the cancellation.
    auto f = hpxlite::async(launch::sync, src.get_token(),
                            [sentinel] { return *sentinel; });
    auto g = f.then([sentinel](hpxlite::future<int>&& in) {
      return in.get() + *sentinel;
    });
    EXPECT_THROW(g.get(), operation_cancelled);
  }
  EXPECT_EQ(hpxlite::pending_continuation_count(), pending0);
  EXPECT_EQ(sentinel.use_count(), 1);
  EXPECT_EQ(d.outstanding(), 0);
}

}  // namespace
