#include "hpxlite/channel.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "hpxlite/async.hpp"

namespace {

using hpxlite::channel;
using hpxlite::channel_closed;
using hpxlite::runtime;

class ChannelTest : public ::testing::Test {
 protected:
  void SetUp() override { runtime::reset(2); }
  void TearDown() override { runtime::shutdown(); }
};

TEST_F(ChannelTest, SetThenGet) {
  channel<int> ch;
  ch.set(7);
  EXPECT_EQ(ch.queued(), 1u);
  EXPECT_EQ(ch.get().get(), 7);
  EXPECT_EQ(ch.queued(), 0u);
}

TEST_F(ChannelTest, GetThenSet) {
  channel<int> ch;
  auto f = ch.get();
  EXPECT_FALSE(f.is_ready());
  ch.set(11);
  EXPECT_TRUE(f.is_ready());
  EXPECT_EQ(f.get(), 11);
}

TEST_F(ChannelTest, FifoOrder) {
  channel<int> ch;
  ch.set(1);
  ch.set(2);
  ch.set(3);
  EXPECT_EQ(ch.get().get(), 1);
  EXPECT_EQ(ch.get().get(), 2);
  EXPECT_EQ(ch.get().get(), 3);
}

TEST_F(ChannelTest, PendingReceiversServedInOrder) {
  channel<int> ch;
  auto a = ch.get();
  auto b = ch.get();
  ch.set(10);
  ch.set(20);
  EXPECT_EQ(a.get(), 10);
  EXPECT_EQ(b.get(), 20);
}

TEST_F(ChannelTest, MoveOnlyValues) {
  channel<std::unique_ptr<int>> ch;
  ch.set(std::make_unique<int>(5));
  auto p = ch.get().get();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 5);
}

TEST_F(ChannelTest, CloseFailsPendingReceives) {
  channel<int> ch;
  auto f = ch.get();
  ch.close();
  EXPECT_THROW(f.get(), channel_closed);
  EXPECT_TRUE(ch.closed());
}

TEST_F(ChannelTest, CloseKeepsQueuedValuesReceivable) {
  channel<int> ch;
  ch.set(1);
  ch.set(2);
  ch.close();
  EXPECT_EQ(ch.get().get(), 1);
  EXPECT_EQ(ch.get().get(), 2);
  EXPECT_THROW(ch.get().get(), channel_closed);
}

TEST_F(ChannelTest, SetAfterCloseThrows) {
  channel<int> ch;
  ch.close();
  EXPECT_THROW(ch.set(1), channel_closed);
  ch.close();  // idempotent
}

TEST_F(ChannelTest, HandleSharesState) {
  channel<int> a;
  channel<int> b = a;
  a.set(99);
  EXPECT_EQ(b.get().get(), 99);
}

TEST_F(ChannelTest, ProducerConsumerAcrossTasks) {
  channel<int> ch;
  constexpr int n = 200;
  auto producer = hpxlite::async([ch]() mutable {
    for (int i = 0; i < n; ++i) {
      ch.set(i);
    }
    ch.close();
  });
  long sum = 0;
  int received = 0;
  for (;;) {
    auto f = ch.get();
    try {
      sum += f.get();
      ++received;
    } catch (const channel_closed&) {
      break;
    }
  }
  producer.get();
  EXPECT_EQ(received, n);
  EXPECT_EQ(sum, static_cast<long>(n) * (n - 1) / 2);
}

TEST_F(ChannelTest, PipelineStagesThroughChannels) {
  // stage1 -> ch1 -> stage2 -> ch2, the HPX channel pipeline idiom.
  channel<int> ch1;
  channel<int> ch2;
  auto stage1 = hpxlite::async([ch1]() mutable {
    for (int i = 1; i <= 10; ++i) {
      ch1.set(i);
    }
    ch1.close();
  });
  auto stage2 = hpxlite::async([ch1, ch2]() mutable {
    for (;;) {
      auto f = ch1.get();
      try {
        const int v = f.get();
        ch2.set(v * v);
      } catch (const channel_closed&) {
        ch2.close();
        return;
      }
    }
  });
  std::vector<int> out;
  for (;;) {
    auto f = ch2.get();
    try {
      out.push_back(f.get());
    } catch (const channel_closed&) {
      break;
    }
  }
  stage1.get();
  stage2.get();
  ASSERT_EQ(out.size(), 10u);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[9], 100);
}

}  // namespace
