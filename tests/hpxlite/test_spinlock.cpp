#include "hpxlite/spinlock.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace {

TEST(Spinlock, LockUnlockSingleThread) {
  hpxlite::spinlock lock;
  lock.lock();
  lock.unlock();
  lock.lock();
  lock.unlock();
}

TEST(Spinlock, TryLockSucceedsWhenFree) {
  hpxlite::spinlock lock;
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(Spinlock, TryLockFailsWhenHeld) {
  hpxlite::spinlock lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(Spinlock, WorksWithLockGuard) {
  hpxlite::spinlock lock;
  {
    std::lock_guard<hpxlite::spinlock> guard(lock);
    EXPECT_FALSE(lock.try_lock());
  }
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(Spinlock, MutualExclusionUnderContention) {
  hpxlite::spinlock lock;
  long counter = 0;
  constexpr int threads = 4;
  constexpr int per_thread = 20000;
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < per_thread; ++i) {
        std::lock_guard<hpxlite::spinlock> guard(lock);
        ++counter;  // data race unless the lock is correct
      }
    });
  }
  for (auto& th : pool) {
    th.join();
  }
  EXPECT_EQ(counter, static_cast<long>(threads) * per_thread);
}

}  // namespace
