#include <gtest/gtest.h>

#include "simsched/machine.hpp"

namespace {

using simsched::machine_model;

TEST(MachineModel, FullSpeedUpToPhysicalCores) {
  machine_model m;
  m.physical_cores = 16;
  for (unsigned t = 1; t <= 16; ++t) {
    EXPECT_DOUBLE_EQ(m.per_thread_speed(t), 1.0) << t;
    EXPECT_DOUBLE_EQ(m.total_throughput(t), static_cast<double>(t));
  }
}

TEST(MachineModel, HyperThreadingDegradesPerThreadSpeed) {
  machine_model m;
  m.physical_cores = 16;
  m.ht_throughput = 0.3;
  EXPECT_LT(m.per_thread_speed(17), 1.0);
  EXPECT_LT(m.per_thread_speed(32), m.per_thread_speed(17));
  // 32 threads: (16 + 0.3*16)/32 = 0.65.
  EXPECT_DOUBLE_EQ(m.per_thread_speed(32), 0.65);
}

TEST(MachineModel, TotalThroughputKeepsGrowingWithHT) {
  machine_model m;
  m.physical_cores = 16;
  m.ht_throughput = 0.3;
  // More HT threads give more aggregate throughput, just sub-linearly.
  EXPECT_GT(m.total_throughput(20), m.total_throughput(16));
  EXPECT_GT(m.total_throughput(32), m.total_throughput(20));
  EXPECT_LT(m.total_throughput(32), 32.0);
  EXPECT_DOUBLE_EQ(m.total_throughput(32), 16.0 + 0.3 * 16.0);
}

TEST(MachineModel, ZeroHtThroughputCapsAtPhysical) {
  machine_model m;
  m.physical_cores = 8;
  m.ht_throughput = 0.0;
  EXPECT_DOUBLE_EQ(m.total_throughput(16), 8.0);
}

TEST(MachineModel, ZeroThreadsRejected) {
  machine_model m;
  EXPECT_THROW(m.per_thread_speed(0), std::invalid_argument);
}

}  // namespace
