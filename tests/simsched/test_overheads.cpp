// Mechanism-level checks of the overhead model: each calibrated
// constant must move the simulated results in its documented direction
// (DESIGN.md §6), so a future retune cannot silently invert a
// mechanism.
#include <gtest/gtest.h>

#include "airfoil/model_adapter.hpp"
#include "simsched/engine.hpp"

namespace {

using simsched::machine_model;
using simsched::method;
using simsched::overhead_model;
using simsched::simulate_airfoil;

const simsched::airfoil_shape& shape() {
  static simsched::airfoil_shape s = [] {
    op2::init({op2::backend::seq, 1, 128, 0});
    auto sim = airfoil::make_sim(airfoil::generate_mesh({200, 50}));
    auto sh = airfoil::extract_shape(sim, airfoil::nominal_kernel_costs(),
                                     128, 2);
    op2::finalize();
    return sh;
  }();
  return s;
}

const machine_model kMachine{};

TEST(OverheadModel, WakeupCostSlowsForkJoinNotDataflow) {
  overhead_model cheap;
  cheap.driver_wakeup_us = 0.0;
  overhead_model costly;
  costly.driver_wakeup_us = 40.0;
  const double omp_cheap =
      simulate_airfoil(shape(), method::omp_forkjoin, 16, kMachine, cheap);
  const double omp_costly =
      simulate_airfoil(shape(), method::omp_forkjoin, 16, kMachine, costly);
  EXPECT_GT(omp_costly, omp_cheap * 1.05);  // omp pays per region
  const double df_cheap =
      simulate_airfoil(shape(), method::hpx_dataflow, 16, kMachine, cheap);
  const double df_costly =
      simulate_airfoil(shape(), method::hpx_dataflow, 16, kMachine, costly);
  EXPECT_NEAR(df_costly, df_cheap, df_cheap * 0.01);  // dataflow pays none
}

TEST(OverheadModel, LaunchCostSparesOnlyDataflow) {
  overhead_model cheap;
  cheap.loop_launch_us = 0.0;
  overhead_model costly;
  costly.loop_launch_us = 60.0;
  for (const auto m : {method::omp_forkjoin, method::hpx_async}) {
    const double a = simulate_airfoil(shape(), m, 16, kMachine, cheap);
    const double b = simulate_airfoil(shape(), m, 16, kMachine, costly);
    EXPECT_GT(b, a * 1.02) << to_string(m);
  }
  const double a =
      simulate_airfoil(shape(), method::hpx_dataflow, 16, kMachine, cheap);
  const double b =
      simulate_airfoil(shape(), method::hpx_dataflow, 16, kMachine, costly);
  EXPECT_NEAR(b, a, a * 0.01);
}

TEST(OverheadModel, SpawnCostHitsTaskMethodsOnly) {
  overhead_model cheap;
  cheap.hpx_spawn_us = 0.0;
  overhead_model costly;
  costly.hpx_spawn_us = 10.0;
  const double fe_cheap = simulate_airfoil(
      shape(), method::hpx_foreach_static, 16, kMachine, cheap);
  const double fe_costly = simulate_airfoil(
      shape(), method::hpx_foreach_static, 16, kMachine, costly);
  EXPECT_GT(fe_costly, fe_cheap * 1.05);
  const double omp_cheap =
      simulate_airfoil(shape(), method::omp_forkjoin, 16, kMachine, cheap);
  const double omp_costly =
      simulate_airfoil(shape(), method::omp_forkjoin, 16, kMachine, costly);
  EXPECT_NEAR(omp_costly, omp_cheap, omp_cheap * 0.01);
}

TEST(OverheadModel, ProbeFractionHurtsOnlyAutoChunking) {
  overhead_model none;
  none.auto_probe_fraction = 0.0;
  overhead_model heavy;
  heavy.auto_probe_fraction = 0.05;
  const double auto_none = simulate_airfoil(
      shape(), method::hpx_foreach_auto, 32, kMachine, none);
  const double auto_heavy = simulate_airfoil(
      shape(), method::hpx_foreach_auto, 32, kMachine, heavy);
  EXPECT_GT(auto_heavy, auto_none * 1.10);
  const double static_none = simulate_airfoil(
      shape(), method::hpx_foreach_static, 32, kMachine, none);
  const double static_heavy = simulate_airfoil(
      shape(), method::hpx_foreach_static, 32, kMachine, heavy);
  EXPECT_NEAR(static_heavy, static_none, static_none * 0.01);
}

TEST(OverheadModel, ZeroOverheadsNearPerfectScaling) {
  overhead_model free_of_cost;
  free_of_cost.omp_fork_us = 0.0;
  free_of_cost.omp_barrier_us = 0.0;
  free_of_cost.hpx_spawn_us = 0.0;
  free_of_cost.hpx_join_us = 0.0;
  free_of_cost.driver_wakeup_us = 0.0;
  free_of_cost.dataflow_node_us = 0.0;
  free_of_cost.loop_launch_us = 0.0;
  const double t1 = simulate_airfoil(shape(), method::hpx_dataflow, 1,
                                     kMachine, free_of_cost);
  const double t16 = simulate_airfoil(shape(), method::hpx_dataflow, 16,
                                      kMachine, free_of_cost);
  // Only block-cost noise (cv 0.2) and ~21 colour-boundary joins per
  // iteration remain; they cost ~30% at 16 threads on this mesh.
  EXPECT_GT(t1 / t16, 10.0);
}

TEST(OverheadModel, NoiseDrivesTheForkJoinPenalty) {
  // With zero noise (identical block costs) fork-join and dataflow
  // should nearly tie; the paper's gap needs the imbalance.
  op2::init({op2::backend::seq, 1, 128, 0});
  auto sim = airfoil::make_sim(airfoil::generate_mesh({200, 50}));

  const auto make = [&](double cv) {
    const auto costs = airfoil::nominal_kernel_costs();
    simsched::airfoil_shape sh;
    sh.niter = 2;
    const auto dplan = op2::build_plan(sim.cells, 128, {});
    std::vector<op2::plan_indirection> conf{{sim.pecell, 0, sim.p_res.id()},
                                            {sim.pecell, 1, sim.p_res.id()}};
    const auto rplan = op2::build_plan(sim.edges, 128, conf);
    std::vector<op2::plan_indirection> bconf{{sim.pbecell, 0,
                                              sim.p_res.id()}};
    const auto bplan = op2::build_plan(sim.bedges, 128, bconf);
    using simsched::airfoil_dat;
    sh.save = simsched::make_loop_shape("save_soln", dplan, costs.save, true,
                                        {airfoil_dat::dat_q},
                                        {airfoil_dat::dat_qold}, cv);
    sh.adt = simsched::make_loop_shape(
        "adt_calc", dplan, costs.adt, false,
        {airfoil_dat::dat_x, airfoil_dat::dat_q}, {airfoil_dat::dat_adt},
        cv);
    sh.res = simsched::make_loop_shape(
        "res_calc", rplan, costs.res, false,
        {airfoil_dat::dat_x, airfoil_dat::dat_q, airfoil_dat::dat_adt},
        {airfoil_dat::dat_res}, cv);
    sh.bres = simsched::make_loop_shape(
        "bres_calc", bplan, costs.bres, false,
        {airfoil_dat::dat_x, airfoil_dat::dat_q, airfoil_dat::dat_adt,
         airfoil_dat::dat_bound},
        {airfoil_dat::dat_res}, cv);
    sh.update = simsched::make_loop_shape(
        "update", dplan, costs.update, true,
        {airfoil_dat::dat_qold, airfoil_dat::dat_adt, airfoil_dat::dat_res},
        {airfoil_dat::dat_q, airfoil_dat::dat_res}, cv);
    return sh;
  };

  const overhead_model ov{};
  const auto quiet = make(0.0);
  const auto noisy = make(0.25);
  const double gap_quiet =
      simulate_airfoil(quiet, method::omp_forkjoin, 32, kMachine, ov) /
      simulate_airfoil(quiet, method::hpx_dataflow, 32, kMachine, ov);
  const double gap_noisy =
      simulate_airfoil(noisy, method::omp_forkjoin, 32, kMachine, ov) /
      simulate_airfoil(noisy, method::hpx_dataflow, 32, kMachine, ov);
  op2::finalize();
  EXPECT_GT(gap_noisy, gap_quiet + 0.03);  // noise widens the gap
}

}  // namespace
