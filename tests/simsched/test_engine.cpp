#include <gtest/gtest.h>

#include "simsched/engine.hpp"

namespace {

using simsched::machine_model;
using simsched::simulate;
using simsched::task_graph;
using simsched::task_id;

machine_model flat_machine(unsigned cores = 64) {
  machine_model m;
  m.physical_cores = cores;  // no HT effects unless asked
  return m;
}

TEST(Engine, SingleTaskMakespanEqualsCost) {
  task_graph g;
  g.add_task(100.0);
  const auto st = simulate(g, 1, flat_machine());
  EXPECT_DOUBLE_EQ(st.makespan_us, 100.0);
  EXPECT_DOUBLE_EQ(st.total_work_us, 100.0);
}

TEST(Engine, IndependentTasksRunInParallel) {
  task_graph g;
  for (int i = 0; i < 4; ++i) {
    g.add_task(50.0);
  }
  EXPECT_DOUBLE_EQ(simulate(g, 4, flat_machine()).makespan_us, 50.0);
  EXPECT_DOUBLE_EQ(simulate(g, 1, flat_machine()).makespan_us, 200.0);
  EXPECT_DOUBLE_EQ(simulate(g, 2, flat_machine()).makespan_us, 100.0);
}

TEST(Engine, ChainSerialisesRegardlessOfThreads) {
  task_graph g;
  task_id prev = g.add_task(10.0);
  for (int i = 0; i < 9; ++i) {
    prev = g.add_task(10.0, {prev});
  }
  EXPECT_DOUBLE_EQ(simulate(g, 8, flat_machine()).makespan_us, 100.0);
}

TEST(Engine, DiamondCriticalPath) {
  task_graph g;
  const auto a = g.add_task(10.0);
  const auto b = g.add_task(30.0, {a});
  const auto c = g.add_task(5.0, {a});
  g.add_task(10.0, {b, c});
  // Critical path: a -> b -> join = 10 + 30 + 10.
  EXPECT_DOUBLE_EQ(simulate(g, 2, flat_machine()).makespan_us, 50.0);
}

TEST(Engine, BarrierWaitsForSlowestChunk) {
  task_graph g;
  const auto fork = g.add_task(0.0);
  std::vector<task_id> chunks;
  chunks.push_back(g.add_task(10.0, {fork}));
  chunks.push_back(g.add_task(40.0, {fork}));  // the straggler
  chunks.push_back(g.add_task(10.0, {fork}));
  const auto barrier = g.add_task(0.0, chunks);
  g.add_task(10.0, {barrier});
  EXPECT_DOUBLE_EQ(simulate(g, 4, flat_machine()).makespan_us, 50.0);
}

TEST(Engine, HyperThreadingSlowsParallelTasks) {
  machine_model m;
  m.physical_cores = 2;
  m.ht_throughput = 0.5;
  task_graph g;
  for (int i = 0; i < 4; ++i) {
    g.add_task(30.0);
  }
  // 4 threads on 2 physical cores: speed (2+0.5*2)/4 = 0.75 each.
  const auto st = simulate(g, 4, m);
  EXPECT_DOUBLE_EQ(st.makespan_us, 40.0);
}

TEST(Engine, SerialTasksPinnedToMasterAtFullSpeed) {
  machine_model m;
  m.physical_cores = 1;
  m.ht_throughput = 0.5;  // 4 threads on 1 core: parallel speed 0.625
  task_graph g;
  g.add_task(10.0, {}, /*serial=*/true);
  g.add_task(10.0, {}, /*serial=*/true);
  // Serial tasks run at full speed, one after another on worker 0.
  EXPECT_DOUBLE_EQ(simulate(g, 4, m).makespan_us, 20.0);
}

TEST(Engine, EfficiencyPerfectForEmbarrassinglyParallel) {
  task_graph g;
  for (int i = 0; i < 64; ++i) {
    g.add_task(10.0);
  }
  const auto st = simulate(g, 8, flat_machine(8));
  EXPECT_NEAR(st.efficiency, 1.0, 1e-9);
  EXPECT_EQ(st.peak_parallelism, 8u);
}

TEST(Engine, EfficiencyLowForChain) {
  task_graph g;
  task_id prev = g.add_task(10.0);
  for (int i = 0; i < 7; ++i) {
    prev = g.add_task(10.0, {prev});
  }
  const auto st = simulate(g, 8, flat_machine(8));
  EXPECT_NEAR(st.efficiency, 1.0 / 8.0, 1e-9);
}

TEST(Engine, EmptyGraph) {
  task_graph g;
  const auto st = simulate(g, 4, flat_machine());
  EXPECT_DOUBLE_EQ(st.makespan_us, 0.0);
}

TEST(Engine, ZeroThreadsRejected) {
  task_graph g;
  g.add_task(1.0);
  EXPECT_THROW(simulate(g, 0, flat_machine()), std::invalid_argument);
}

TEST(TaskGraph, EdgeValidation) {
  task_graph g;
  const auto a = g.add_task(1.0);
  EXPECT_THROW(g.add_edge(a, a), std::invalid_argument);
  EXPECT_THROW(g.add_edge(a, 99), std::out_of_range);
  EXPECT_THROW(g.add_task(1.0, {42}), std::out_of_range);
}

TEST(TaskGraph, TotalWorkSums) {
  task_graph g;
  g.add_task(1.5);
  g.add_task(2.5);
  EXPECT_DOUBLE_EQ(g.total_work_us(), 4.0);
}

TEST(Engine, FifoKeepsWorkConserving) {
  // Many small tasks + one long task: list scheduling should finish in
  // close to total/threads when the long task starts early.
  task_graph g;
  g.add_task(100.0);
  for (int i = 0; i < 100; ++i) {
    g.add_task(1.0);
  }
  const auto st = simulate(g, 2, flat_machine(2));
  EXPECT_DOUBLE_EQ(st.makespan_us, 100.0);  // 100 || (100 x 1.0)
}

}  // namespace
