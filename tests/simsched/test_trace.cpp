// Schedule-trace validity: the engine's Gantt output must be a legal
// schedule — workers never overlap themselves, dependencies are
// respected, every task appears exactly once — across random DAGs.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <vector>

#include "simsched/engine.hpp"

namespace {

using simsched::machine_model;
using simsched::simulate;
using simsched::task_graph;
using simsched::task_id;
using simsched::task_interval;

machine_model flat() {
  machine_model m;
  m.physical_cores = 64;
  return m;
}

/// A random DAG: each task depends on a random subset of earlier tasks.
task_graph random_dag(unsigned seed, int n) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> cost(0.5, 20.0);
  std::uniform_int_distribution<int> fanin(0, 3);
  std::bernoulli_distribution serial(0.1);
  task_graph g;
  for (int i = 0; i < n; ++i) {
    std::vector<task_id> deps;
    if (i > 0) {
      const int k = fanin(rng);
      std::uniform_int_distribution<int> pick(0, i - 1);
      for (int j = 0; j < k; ++j) {
        deps.push_back(static_cast<task_id>(pick(rng)));
      }
    }
    g.add_task(cost(rng), deps, serial(rng));
  }
  return g;
}

void check_trace_validity(const task_graph& g,
                          const std::vector<task_interval>& trace,
                          unsigned threads) {
  ASSERT_EQ(trace.size(), g.size());

  // Every task exactly once; record its interval.
  std::vector<const task_interval*> by_task(g.size(), nullptr);
  for (const auto& iv : trace) {
    ASSERT_LT(iv.task, g.size());
    ASSERT_LT(iv.worker, threads);
    ASSERT_LE(iv.start_us, iv.end_us);
    ASSERT_EQ(by_task[iv.task], nullptr) << "task scheduled twice";
    by_task[iv.task] = &iv;
  }

  // Workers never run two tasks at once.
  std::map<unsigned, std::vector<const task_interval*>> per_worker;
  for (const auto& iv : trace) {
    per_worker[iv.worker].push_back(&iv);
  }
  for (auto& [worker, ivs] : per_worker) {
    std::sort(ivs.begin(), ivs.end(),
              [](const auto* a, const auto* b) {
                return a->start_us < b->start_us;
              });
    for (std::size_t i = 1; i < ivs.size(); ++i) {
      ASSERT_GE(ivs[i]->start_us, ivs[i - 1]->end_us - 1e-9)
          << "worker " << worker << " overlaps itself";
    }
  }

  // Dependencies respected: a dependent starts no earlier than every
  // predecessor's end.
  for (task_id t = 0; t < g.size(); ++t) {
    for (const task_id d : g.node(t).dependents) {
      ASSERT_GE(by_task[d]->start_us, by_task[t]->end_us - 1e-9)
          << "task " << d << " started before its dependency " << t;
    }
  }

  // Serial tasks pinned to worker 0.
  for (task_id t = 0; t < g.size(); ++t) {
    if (g.node(t).serial) {
      ASSERT_EQ(by_task[t]->worker, 0u);
    }
  }
}

class TraceTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(TraceTest, RandomDagsProduceLegalSchedules) {
  const unsigned seed = GetParam();
  const task_graph g = random_dag(seed, 300);
  for (const unsigned threads : {1u, 2u, 5u, 16u}) {
    std::vector<task_interval> trace;
    const auto stats = simulate(g, threads, flat(), &trace);
    check_trace_validity(g, trace, threads);
    // Makespan equals the last interval's end.
    double last = 0.0;
    for (const auto& iv : trace) {
      last = std::max(last, iv.end_us);
    }
    EXPECT_DOUBLE_EQ(stats.makespan_us, last);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceTest,
                         ::testing::Values(11u, 23u, 37u, 59u, 71u));

TEST(TraceTest2, TraceMatchesKnownSchedule) {
  task_graph g;
  const auto a = g.add_task(10.0);
  const auto b = g.add_task(5.0, {a});
  g.add_task(5.0, {a});
  std::vector<task_interval> trace;
  simulate(g, 2, flat(), &trace);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].task, a);
  EXPECT_DOUBLE_EQ(trace[0].start_us, 0.0);
  EXPECT_DOUBLE_EQ(trace[0].end_us, 10.0);
  // b and c start together after a.
  EXPECT_DOUBLE_EQ(trace[1].start_us, 10.0);
  EXPECT_DOUBLE_EQ(trace[2].start_us, 10.0);
  EXPECT_NE(trace[1].worker, trace[2].worker);
  (void)b;
}

TEST(TraceTest2, NullTraceStillWorks) {
  task_graph g;
  g.add_task(1.0);
  EXPECT_NO_THROW(simulate(g, 2, flat(), nullptr));
}

}  // namespace
