// Properties of the Airfoil scheduling model — including the headline
// shape checks of the paper's figures (who wins, roughly by how much).
#include <gtest/gtest.h>

#include "airfoil/model_adapter.hpp"
#include "simsched/engine.hpp"

namespace {

using simsched::airfoil_shape;
using simsched::build_airfoil_graph;
using simsched::machine_model;
using simsched::method;
using simsched::overhead_model;
using simsched::simulate_airfoil;

/// One shared shape at the benchmark scale (real plans + nominal
/// costs).  The figure shapes are properties of a reasonably large
/// problem — at toy sizes everything is overhead-dominated and the
/// paper's comparison does not apply.
const airfoil_shape& shape() {
  static airfoil_shape s = [] {
    op2::init({op2::backend::seq, 1, 128, 0});
    airfoil::mesh_params mp;
    mp.imax = 400;
    mp.jmax = 100;
    auto sim = airfoil::make_sim(airfoil::generate_mesh(mp));
    auto sh = airfoil::extract_shape(sim, airfoil::nominal_kernel_costs(),
                                     128, 3);
    op2::finalize();
    return sh;
  }();
  return s;
}

const machine_model kMachine{};   // 16 cores + HT, like the paper's node
const overhead_model kOverheads{};

TEST(AirfoilModel, ShapeHasFiveLoopsWithWork) {
  const auto& s = shape();
  EXPECT_GT(s.save.total_cost_us(), 0.0);
  EXPECT_GT(s.adt.total_cost_us(), 0.0);
  EXPECT_GT(s.res.total_cost_us(), 0.0);
  EXPECT_GT(s.bres.total_cost_us(), 0.0);
  EXPECT_GT(s.update.total_cost_us(), 0.0);
  // res_calc needs colouring (multiple colours); direct loops do not.
  EXPECT_GE(s.res.color_block_costs.size(), 2u);
  EXPECT_EQ(s.save.color_block_costs.size(), 1u);
  EXPECT_EQ(s.adt.color_block_costs.size(), 1u);
}

TEST(AirfoilModel, GraphsAcyclicAndComplete) {
  for (const auto m :
       {method::omp_forkjoin, method::hpx_foreach_auto,
        method::hpx_foreach_static, method::hpx_async,
        method::hpx_dataflow}) {
    const auto g = build_airfoil_graph(shape(), m, 8, kOverheads);
    EXPECT_GT(g.size(), 0u) << to_string(m);
    // simulate() throws on cycles; completing is the acyclicity check.
    EXPECT_NO_THROW(simulate(g, 8, kMachine)) << to_string(m);
  }
}

TEST(AirfoilModel, WorkContentComparableAcrossMethods) {
  // All methods execute the same kernels; only overhead nodes differ.
  // Kernel work per iteration is fixed, so every method's total work
  // must sit a bounded margin above it (the task methods pay the
  // calibrated per-chunk spawn cost — up to ~15% at 16 threads where
  // res_calc colours chunk down to single blocks).
  const auto& s = shape();
  const double kernel_work =
      (s.save.total_cost_us() + 2.0 * (s.adt.total_cost_us() +
                                       s.res.total_cost_us() +
                                       s.bres.total_cost_us() +
                                       s.update.total_cost_us())) *
      s.niter;
  for (const auto m : {method::omp_forkjoin, method::hpx_foreach_static,
                       method::hpx_async, method::hpx_dataflow}) {
    const double w =
        build_airfoil_graph(shape(), m, 16, kOverheads).total_work_us();
    EXPECT_GT(w, kernel_work) << to_string(m);
    EXPECT_LT(w, kernel_work * 1.25) << to_string(m);
  }
}

TEST(AirfoilModel, OneThreadParity) {
  // Fig 15: "HPX and OpenMP has by an average the same performance on
  // 1 thread."
  const double omp =
      simulate_airfoil(shape(), method::omp_forkjoin, 1, kMachine, kOverheads);
  for (const auto m : {method::hpx_foreach_auto, method::hpx_foreach_static,
                       method::hpx_async, method::hpx_dataflow}) {
    const double t = simulate_airfoil(shape(), m, 1, kMachine, kOverheads);
    EXPECT_NEAR(t / omp, 1.0, 0.05) << to_string(m);
  }
}

TEST(AirfoilModel, EveryMethodSpeedsUpWithThreads) {
  for (const auto m :
       {method::omp_forkjoin, method::hpx_foreach_static, method::hpx_async,
        method::hpx_dataflow}) {
    const double t1 = simulate_airfoil(shape(), m, 1, kMachine, kOverheads);
    const double t8 = simulate_airfoil(shape(), m, 8, kMachine, kOverheads);
    const double t16 = simulate_airfoil(shape(), m, 16, kMachine, kOverheads);
    EXPECT_LT(t8, t1 / 3.0) << to_string(m);
    EXPECT_LT(t16, t8) << to_string(m);
  }
}

TEST(AirfoilModel, Fig16Shape_ForEachTrailsOpenMPAndStaticBeatsAuto) {
  // "for_each(par) with the static chunk_size for the large loops has
  // better performance than automatically determining chunk_size ...
  // OpenMP still performs better than HPX in this example."
  const double omp = simulate_airfoil(shape(), method::omp_forkjoin, 32,
                                      kMachine, kOverheads);
  const double fa = simulate_airfoil(shape(), method::hpx_foreach_auto, 32,
                                     kMachine, kOverheads);
  const double fs = simulate_airfoil(shape(), method::hpx_foreach_static, 32,
                                     kMachine, kOverheads);
  EXPECT_LT(fs, fa);   // static chunk beats auto chunk
  EXPECT_LE(omp, fs);  // OpenMP still ahead of for_each(par)
}

TEST(AirfoilModel, Fig17Shape_AsyncBeatsOpenMPAt32Threads) {
  const double omp = simulate_airfoil(shape(), method::omp_forkjoin, 32,
                                      kMachine, kOverheads);
  const double as = simulate_airfoil(shape(), method::hpx_async, 32,
                                     kMachine, kOverheads);
  EXPECT_LT(as, omp);
  // Paper: ~5% scalability improvement; accept 2%-20%.
  EXPECT_GT(omp / as, 1.02);
  EXPECT_LT(omp / as, 1.20);
}

TEST(AirfoilModel, Fig18Shape_DataflowBeatsOpenMPByRoughly21Percent) {
  const double omp = simulate_airfoil(shape(), method::omp_forkjoin, 32,
                                      kMachine, kOverheads);
  const double df = simulate_airfoil(shape(), method::hpx_dataflow, 32,
                                     kMachine, kOverheads);
  EXPECT_LT(df, omp);
  // Paper: ~21%; accept 10%-35%.
  EXPECT_GT(omp / df, 1.10);
  EXPECT_LT(omp / df, 1.35);
}

TEST(AirfoilModel, DataflowBeatsAsync) {
  const double as = simulate_airfoil(shape(), method::hpx_async, 32,
                                     kMachine, kOverheads);
  const double df = simulate_airfoil(shape(), method::hpx_dataflow, 32,
                                     kMachine, kOverheads);
  EXPECT_LT(df, as);
}

TEST(AirfoilModel, HyperThreadingKneeAt16) {
  // Gains from 16 -> 32 threads are much smaller than from 8 -> 16.
  for (const auto m : {method::omp_forkjoin, method::hpx_dataflow}) {
    const double t8 = simulate_airfoil(shape(), m, 8, kMachine, kOverheads);
    const double t16 = simulate_airfoil(shape(), m, 16, kMachine, kOverheads);
    const double t32 = simulate_airfoil(shape(), m, 32, kMachine, kOverheads);
    const double gain_8_16 = t8 / t16;
    const double gain_16_32 = t16 / t32;
    EXPECT_GT(gain_8_16, 1.5) << to_string(m);
    EXPECT_LT(gain_16_32, 1.25) << to_string(m);
  }
}

TEST(AirfoilModel, NoiseSeedIsDeterministic) {
  op2::init({op2::backend::seq, 1, 128, 0});
  airfoil::mesh_params mp;
  mp.imax = 40;
  mp.jmax = 10;
  auto sim = airfoil::make_sim(airfoil::generate_mesh(mp));
  const auto s1 = airfoil::extract_shape(
      sim, airfoil::nominal_kernel_costs(), 64, 1);
  const auto s2 = airfoil::extract_shape(
      sim, airfoil::nominal_kernel_costs(), 64, 1);
  op2::finalize();
  ASSERT_EQ(s1.res.color_block_costs.size(), s2.res.color_block_costs.size());
  for (std::size_t c = 0; c < s1.res.color_block_costs.size(); ++c) {
    ASSERT_EQ(s1.res.color_block_costs[c], s2.res.color_block_costs[c]);
  }
}

TEST(AirfoilModel, StaticChunkParameterChangesGranularity) {
  const auto g1 =
      build_airfoil_graph(shape(), method::hpx_foreach_static, 8, kOverheads,
                          1);
  const auto g64 =
      build_airfoil_graph(shape(), method::hpx_foreach_static, 8, kOverheads,
                          64);
  EXPECT_GT(g1.size(), g64.size());  // finer chunks = more tasks
}

TEST(AirfoilModel, MethodNames) {
  EXPECT_STREQ(to_string(method::omp_forkjoin), "omp_forkjoin");
  EXPECT_STREQ(to_string(method::hpx_dataflow), "hpx_dataflow");
}

}  // namespace
