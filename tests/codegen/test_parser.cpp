#include <gtest/gtest.h>

#include "codegen/translator.hpp"

namespace {

using codegen::parse_loops;

TEST(Parser, ParsesClassicCallSite) {
  const std::string src = R"(
    op_par_loop(save_soln, "save_soln", cells,
        op_arg_dat(p_q, -1, OP_ID, 4, "double", OP_READ),
        op_arg_dat(p_qold, -1, OP_ID, 4, "double", OP_WRITE));
  )";
  const auto loops = parse_loops(src);
  ASSERT_EQ(loops.size(), 1u);
  const auto& l = loops[0];
  EXPECT_EQ(l.kernel, "save_soln");
  EXPECT_EQ(l.name, "save_soln");
  EXPECT_EQ(l.set, "cells");
  ASSERT_EQ(l.args.size(), 2u);
  EXPECT_EQ(l.args[0].dat, "p_q");
  EXPECT_EQ(l.args[0].idx, -1);
  EXPECT_TRUE(l.args[0].is_direct());
  EXPECT_EQ(l.args[0].type, "double");
  EXPECT_EQ(l.args[0].access, "OP_READ");
  EXPECT_EQ(l.args[1].access, "OP_WRITE");
  EXPECT_TRUE(l.is_direct());
  EXPECT_FALSE(l.needs_coloring());
}

TEST(Parser, ParsesPerLoopFormFromThePaper) {
  // The exact shape of the paper's Fig 2.
  const std::string src = R"(
    op_par_loop_adt_calc("adt_calc",cells,
        op_arg_dat(p_x,0,pcell,2,"double",OP_READ),
        op_arg_dat(p_x,1,pcell,2,"double",OP_READ),
        op_arg_dat(p_x,2,pcell,2,"double",OP_READ),
        op_arg_dat(p_x,3,pcell,2,"double",OP_READ),
        op_arg_dat(p_q,-1,OP_ID,4,"double",OP_READ),
        op_arg_dat(p_adt,-1,OP_ID,1,"double",OP_WRITE));
  )";
  const auto loops = parse_loops(src);
  ASSERT_EQ(loops.size(), 1u);
  const auto& l = loops[0];
  EXPECT_EQ(l.kernel, "adt_calc");
  EXPECT_EQ(l.set, "cells");
  ASSERT_EQ(l.args.size(), 6u);
  EXPECT_TRUE(l.args[0].is_indirect());
  EXPECT_EQ(l.args[0].map, "pcell");
  EXPECT_EQ(l.args[3].idx, 3);
  EXPECT_FALSE(l.is_direct());
  EXPECT_FALSE(l.needs_coloring());  // indirect reads only
}

TEST(Parser, DetectsColoringNeedForIncrementLoops) {
  const std::string src = R"(
    op_par_loop(res_calc, "res_calc", edges,
        op_arg_dat(p_x, 0, pedge, 2, "double", OP_READ),
        op_arg_dat(p_res, 0, pecell, 4, "double", OP_INC),
        op_arg_dat(p_res, 1, pecell, 4, "double", OP_INC));
  )";
  const auto loops = parse_loops(src);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_TRUE(loops[0].needs_coloring());
}

TEST(Parser, ParsesGlobalArgument) {
  const std::string src = R"(
    op_par_loop(update, "update", cells,
        op_arg_dat(p_res, -1, OP_ID, 4, "double", OP_RW),
        op_arg_gbl(&rms, 1, "double", OP_INC));
  )";
  const auto loops = parse_loops(src);
  ASSERT_EQ(loops.size(), 1u);
  const auto& g = loops[0].args[1];
  EXPECT_TRUE(g.is_global);
  EXPECT_EQ(g.dat, "&rms");
  EXPECT_EQ(g.dim, 1);
  EXPECT_EQ(g.access, "OP_INC");
}

TEST(Parser, ParsesTypedTemplateForm) {
  const std::string src = R"(
    op_par_loop(update, "update", cells,
        op_arg_dat<double>(p_q, -1, OP_ID, 4, OP_WRITE),
        op_arg_gbl<double>(&rms, 1, OP_INC));
  )";
  const auto loops = parse_loops(src);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0].args[0].type, "double");
  EXPECT_EQ(loops[0].args[1].type, "double");
  EXPECT_TRUE(loops[0].args[1].is_global);
}

TEST(Parser, ParsesMultipleLoops) {
  const std::string src = R"(
    op_par_loop(a, "a", s, op_arg_dat(d, -1, OP_ID, 1, "double", OP_READ));
    some_other_code();
    op_par_loop(b, "b", s, op_arg_dat(d, -1, OP_ID, 1, "double", OP_WRITE));
  )";
  const auto loops = parse_loops(src);
  ASSERT_EQ(loops.size(), 2u);
  EXPECT_EQ(loops[0].kernel, "a");
  EXPECT_EQ(loops[1].kernel, "b");
}

TEST(Parser, IgnoresMentionsWithoutCall) {
  const std::string src = "// the op_par_loop API is nice\nint x = 0;";
  EXPECT_TRUE(parse_loops(src).empty());
  const std::string src2 = "int my_op_par_loop_count = 3;";
  EXPECT_TRUE(parse_loops(src2).empty());
}

TEST(Parser, HandlesNewlinesAndSpacesInsideCall) {
  const std::string src =
      "op_par_loop ( k , \"n\" ,\n  s ,\n"
      "  op_arg_dat( d , -1 , OP_ID , 2 , \"double\" , OP_READ ) );";
  const auto loops = parse_loops(src);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0].kernel, "k");
  EXPECT_EQ(loops[0].args[0].dim, 2);
}

TEST(Parser, AsyncSuffixTreatedAsGenericForm) {
  const std::string src = R"(
    op_par_loop_async(save, "save", cells,
        op_arg_dat(p_q, -1, OP_ID, 4, "double", OP_READ));
  )";
  const auto loops = parse_loops(src);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0].kernel, "save");
}

TEST(Parser, MalformedArgThrows) {
  EXPECT_THROW(
      parse_loops("op_par_loop(k, \"n\", s, op_arg_dat(p, -1, OP_ID));"),
      std::runtime_error);
  EXPECT_THROW(parse_loops("op_par_loop(k, \"n\", s, not_an_arg(p));"),
               std::runtime_error);
  EXPECT_THROW(parse_loops("op_par_loop(k);"), std::runtime_error);
}

TEST(Parser, UnbalancedParensThrow) {
  EXPECT_THROW(parse_loops("op_par_loop(k, \"n\", s,"), std::runtime_error);
}

TEST(Parser, FullAirfoilProgram) {
  // All five loops of the paper's Fig 4 in one source.
  const std::string src = R"(
    op_par_loop_save_soln("save_soln", cells,
        op_arg_dat(p_q,-1,OP_ID,4,"double",OP_READ),
        op_arg_dat(p_qold,-1,OP_ID,4,"double",OP_WRITE));
    op_par_loop_adt_calc("adt_calc",cells,
        op_arg_dat(p_x,0,pcell,2,"double",OP_READ),
        op_arg_dat(p_q,-1,OP_ID,4,"double",OP_READ),
        op_arg_dat(p_adt,-1,OP_ID,1,"double",OP_WRITE));
    op_par_loop_res_calc("res_calc",edges,
        op_arg_dat(p_x,0,pedge,2,"double",OP_READ),
        op_arg_dat(p_res,0,pecell,4,"double",OP_INC),
        op_arg_dat(p_res,1,pecell,4,"double",OP_INC));
    op_par_loop_bres_calc("bres_calc",bedges,
        op_arg_dat(p_q,0,pbecell,4,"double",OP_READ),
        op_arg_dat(p_res,0,pbecell,4,"double",OP_INC),
        op_arg_dat(p_bound,-1,OP_ID,1,"int",OP_READ));
    op_par_loop_update("update",cells,
        op_arg_dat(p_qold,-1,OP_ID,4,"double",OP_READ),
        op_arg_dat(p_q,-1,OP_ID,4,"double",OP_WRITE),
        op_arg_gbl(&rms,1,"double",OP_INC));
  )";
  const auto loops = parse_loops(src);
  ASSERT_EQ(loops.size(), 5u);
  EXPECT_EQ(loops[0].kernel, "save_soln");
  EXPECT_EQ(loops[2].kernel, "res_calc");
  EXPECT_TRUE(loops[2].needs_coloring());
  EXPECT_TRUE(loops[3].needs_coloring());
  EXPECT_TRUE(loops[4].is_direct());
  EXPECT_EQ(loops[4].args[2].dat, "&rms");
}

}  // namespace

namespace namespaced_form {

TEST(Parser, ParsesNamespaceQualifiedForm) {
  // This repository's own spelling (op2::...), as in examples/.
  const auto loops = codegen::parse_loops(R"(
    op2::op_par_loop(double_it, "double_it", edges,
        op2::op_arg_dat<double>(length, -1, op2::OP_ID, 1, op2::OP_READ),
        op2::op_arg_dat<double>(doubled, 0, e2n, 1, op2::OP_INC),
        op2::op_arg_gbl<double>(&total, 1, op2::OP_INC));
  )");
  ASSERT_EQ(loops.size(), 1u);
  const auto& l = loops[0];
  EXPECT_EQ(l.kernel, "double_it");
  ASSERT_EQ(l.args.size(), 3u);
  EXPECT_TRUE(l.args[0].is_direct());
  EXPECT_EQ(l.args[0].access, "OP_READ");
  EXPECT_FALSE(l.args[0].writes());
  EXPECT_TRUE(l.args[1].is_indirect());
  EXPECT_EQ(l.args[1].map, "e2n");
  EXPECT_TRUE(l.needs_coloring());
  EXPECT_TRUE(l.args[2].is_global);
}

}  // namespace namespaced_form
