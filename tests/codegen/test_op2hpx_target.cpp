// The op2hpx codegen target emits call sites against THIS repository's
// typed API.  The golden string below is kept in lockstep with a
// compiled-and-executed copy, proving the emitted code is valid C++
// for the library (if the emitter drifts, the golden comparison fails;
// if the API drifts, the executed copy stops compiling).
#include <gtest/gtest.h>

#include <vector>

#include "codegen/translator.hpp"
#include "op2/op2.hpp"

namespace {

const char* kClassicSource = R"(
  op_par_loop(scale_kernel, "scale", cells,
      op_arg_dat(p_in, -1, OP_ID, 1, "double", OP_READ),
      op_arg_dat(p_out, -1, OP_ID, 1, "double", OP_WRITE),
      op_arg_gbl(&total, 1, "double", OP_INC));
)";

const char* kGoldenBody =
    "  static op2::loop_handle op2_handle_scale_kernel;\n"
    "  op2::op_par_loop(op2_handle_scale_kernel, scale_kernel, \"scale\", "
    "cells,\n"
    "      op2::op_arg_dat<double>(p_in, -1, op2::OP_ID, 1, op2::OP_READ),\n"
    "      op2::op_arg_dat<double>(p_out, -1, op2::OP_ID, 1, "
    "op2::OP_WRITE),\n"
    "      op2::op_arg_gbl<double>(&total, 1, op2::OP_INC));\n";

TEST(Op2hpxTarget, EmitsGoldenCallSite) {
  const auto loops = codegen::parse_loops(kClassicSource);
  ASSERT_EQ(loops.size(), 1u);
  const auto code = codegen::emit_loop(loops[0], codegen::target::op2hpx);
  EXPECT_NE(code.find(kGoldenBody), std::string::npos)
      << "emitted:\n"
      << code;
}

// The kernel the generated call site names.
void scale_kernel(const double* in, double* out, double* acc) {
  out[0] = 2.0 * in[0];
  acc[0] += in[0];
}

TEST(Op2hpxTarget, GoldenCallSiteExecutes) {
  op2::init({op2::backend::hpx_foreach, 2, 16, 0});
  auto cells = op2::op_decl_set(100, "cells");
  std::vector<double> init(100, 3.0);
  auto p_in = op2::op_decl_dat<double>(cells, 1, "double",
                                       std::span<const double>(init), "in");
  auto p_out = op2::op_decl_dat<double>(cells, 1, "double", "out");
  double total = 0.0;

  // --- exactly the golden body, verbatim ---
  static op2::loop_handle op2_handle_scale_kernel;
  op2::op_par_loop(op2_handle_scale_kernel, scale_kernel, "scale", cells,
      op2::op_arg_dat<double>(p_in, -1, op2::OP_ID, 1, op2::OP_READ),
      op2::op_arg_dat<double>(p_out, -1, op2::OP_ID, 1, op2::OP_WRITE),
      op2::op_arg_gbl<double>(&total, 1, op2::OP_INC));
  // -----------------------------------------

  EXPECT_DOUBLE_EQ(total, 300.0);
  EXPECT_DOUBLE_EQ(p_out.data<double>()[7], 6.0);
  op2::finalize();
}

TEST(Op2hpxTarget, IndirectArgumentsKeepMapNames) {
  const auto loops = codegen::parse_loops(R"(
    op_par_loop(res_calc, "res_calc", edges,
        op_arg_dat(p_res, 0, pecell, 4, "double", OP_INC));
  )");
  const auto code = codegen::emit_loop(loops.at(0), codegen::target::op2hpx);
  EXPECT_NE(
      code.find("op2::op_arg_dat<double>(p_res, 0, pecell, 4, op2::OP_INC)"),
      std::string::npos)
      << code;
}

// The --backend passthrough: the op2hpx target emits a bootstrap that
// selects the runtime backend by registry name.
const char* kGoldenBootstrap =
    "static void op2_select_backend(unsigned threads) {\n"
    "  op2::init(op2::make_config(\"hpx_foreach\", threads));\n"
    "}\n";

TEST(Op2hpxTarget, BackendOptionEmitsGoldenBootstrap) {
  const auto loops = codegen::parse_loops(kClassicSource);
  codegen::emit_options opts;
  opts.backend = "hpx_foreach";
  const auto tu = codegen::emit_translation_unit(
      loops, codegen::target::op2hpx, opts);
  EXPECT_NE(tu.find(kGoldenBootstrap), std::string::npos) << tu;
  EXPECT_NE(tu.find("// Backend: hpx_foreach."), std::string::npos);
  // Without a backend option nothing backend-specific is emitted.
  const auto plain = codegen::emit_translation_unit(
      loops, codegen::target::op2hpx);
  EXPECT_EQ(plain.find("op2_select_backend"), std::string::npos);
}

TEST(Op2hpxTarget, GoldenBootstrapExecutes) {
  // Exactly the emitted bootstrap body, verbatim: selection by registry
  // name must configure the runtime like the enum spelling does.
  op2::init(op2::make_config("hpx_foreach", 2));
  EXPECT_EQ(op2::current_backend_name(), "hpx_foreach");
  EXPECT_EQ(op2::current_config().bk, op2::backend::hpx_foreach);
  EXPECT_EQ(op2::current_config().threads, 2u);
  op2::finalize();
}

TEST(Op2hpxTarget, SummaryListsLoops) {
  const auto loops = codegen::parse_loops(R"(
    op_par_loop(a, "first", s,
        op_arg_dat(d, 0, m, 2, "double", OP_INC));
    op_par_loop(b, "second", s,
        op_arg_dat(d2, -1, OP_ID, 1, "int", OP_READ),
        op_arg_gbl(&acc, 1, "double", OP_INC));
  )");
  const auto summary = codegen::summarize_loops(loops);
  EXPECT_NE(summary.find("loops: 2"), std::string::npos);
  EXPECT_NE(summary.find("first over s [indirect, coloured]"),
            std::string::npos);
  EXPECT_NE(summary.find("second over s [direct]"), std::string::npos);
  EXPECT_NE(summary.find("via m[0]"), std::string::npos);
  EXPECT_NE(summary.find("gbl &acc"), std::string::npos);
}

}  // namespace
