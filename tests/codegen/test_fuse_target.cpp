// The translator's --fuse mode: adjacent direct loops over the same
// set are grouped by the string-level mirror of the runtime fusion
// planner and emitted as ONE op2::op_par_loop_fused call site.  As
// with the op2hpx target, the golden string is kept in lockstep with a
// compiled-and-executed copy, proving the emitted fused code is valid
// C++ for the library AND produces the same bits as the unfused loops.
#include <gtest/gtest.h>

#include <vector>

#include "codegen/translator.hpp"
#include "op2/op2.hpp"

namespace {

const char* kFusableSource = R"(
  op_par_loop(scale_kernel, "scale", cells,
      op_arg_dat(p_a, -1, OP_ID, 1, "double", OP_READ),
      op_arg_dat(p_b, -1, OP_ID, 1, "double", OP_WRITE),
      op_arg_gbl(&total, 1, "double", OP_INC));
  op_par_loop(shift_kernel, "shift", cells,
      op_arg_dat(p_b, -1, OP_ID, 1, "double", OP_RW));
)";

const char* kGoldenFusedBody =
    "  static op2::fused_handle op2_fused_scale_kernel_shift_kernel;\n"
    "  op2::op_par_loop_fused(op2_fused_scale_kernel_shift_kernel, cells,\n"
    "      op2::fuse_loop(scale_kernel, \"scale\",\n"
    "          op2::op_arg_dat<double>(p_a, -1, op2::OP_ID, 1, "
    "op2::OP_READ),\n"
    "          op2::op_arg_dat<double>(p_b, -1, op2::OP_ID, 1, "
    "op2::OP_WRITE),\n"
    "          op2::op_arg_gbl<double>(&total, 1, op2::OP_INC)),\n"
    "      op2::fuse_loop(shift_kernel, \"shift\",\n"
    "          op2::op_arg_dat<double>(p_b, -1, op2::OP_ID, 1, "
    "op2::OP_RW)));\n";

TEST(FuseTarget, AdjacentDirectSameSetLoopsFormOneGroup) {
  const auto loops = codegen::parse_loops(kFusableSource);
  ASSERT_EQ(loops.size(), 2u);
  const auto groups = codegen::fuse_groups(loops);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{0, 1}));
}

TEST(FuseTarget, IndirectLoopIsSingletonAndBreaksTheWindow) {
  const auto loops = codegen::parse_loops(R"(
    op_par_loop(a, "a", cells,
        op_arg_dat(d1, -1, OP_ID, 1, "double", OP_RW));
    op_par_loop(r, "r", edges,
        op_arg_dat(d1, 0, pecell, 1, "double", OP_INC));
    op_par_loop(b, "b", cells,
        op_arg_dat(d1, -1, OP_ID, 1, "double", OP_RW));
  )");
  const auto groups = codegen::fuse_groups(loops);
  ASSERT_EQ(groups.size(), 3u);
  for (const auto& g : groups) {
    EXPECT_EQ(g.size(), 1u);
  }
}

TEST(FuseTarget, MismatchedSetsDoNotFuse) {
  const auto loops = codegen::parse_loops(R"(
    op_par_loop(a, "a", cells,
        op_arg_dat(d1, -1, OP_ID, 1, "double", OP_RW));
    op_par_loop(b, "b", nodes,
        op_arg_dat(d2, -1, OP_ID, 1, "double", OP_RW));
  )");
  const auto groups = codegen::fuse_groups(loops);
  ASSERT_EQ(groups.size(), 2u);
}

TEST(FuseTarget, TouchingAReducedGlobalBreaksTheGroup) {
  // a reduces into &g; b reads the same global mid-window, so it must
  // not join (the fused merge happens at finalize, after b would have
  // read a stale value).  c starts a fresh window and fuses with b.
  const auto loops = codegen::parse_loops(R"(
    op_par_loop(a, "a", cells,
        op_arg_dat(d1, -1, OP_ID, 1, "double", OP_READ),
        op_arg_gbl(&g, 1, "double", OP_INC));
    op_par_loop(b, "b", cells,
        op_arg_dat(d1, -1, OP_ID, 1, "double", OP_RW),
        op_arg_gbl(&g, 1, "double", OP_READ));
    op_par_loop(c, "c", cells,
        op_arg_dat(d1, -1, OP_ID, 1, "double", OP_RW));
  )");
  const auto groups = codegen::fuse_groups(loops);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{0}));
  EXPECT_EQ(groups[1], (std::vector<std::size_t>{1, 2}));
}

TEST(FuseTarget, ReductionInTheLastMemberFusesFine) {
  // The reducing loop itself fuses anywhere — only a LATER touch of
  // its target global is a hazard.
  const auto loops = codegen::parse_loops(R"(
    op_par_loop(a, "a", cells,
        op_arg_dat(d1, -1, OP_ID, 1, "double", OP_RW));
    op_par_loop(b, "b", cells,
        op_arg_dat(d1, -1, OP_ID, 1, "double", OP_READ),
        op_arg_gbl(&g, 1, "double", OP_INC));
  )");
  const auto groups = codegen::fuse_groups(loops);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 2u);
}

TEST(FuseTarget, EmitsGoldenFusedCallSite) {
  const auto loops = codegen::parse_loops(kFusableSource);
  const auto code = codegen::emit_fused_loop(loops);
  EXPECT_NE(code.find(kGoldenFusedBody), std::string::npos)
      << "emitted:\n"
      << code;
  EXPECT_NE(code.find("fused group 'scale+shift'"), std::string::npos);
  EXPECT_NE(code.find("void op_par_loop_scale_kernel_shift_kernel("),
            std::string::npos);
}

// The kernels the generated fused call site names.
void scale_kernel(const double* a, double* b, double* total) {
  b[0] = 2.0 * a[0];
  total[0] += a[0];
}
void shift_kernel(double* b) { b[0] += 1.0; }

TEST(FuseTarget, GoldenFusedCallSiteExecutes) {
  op2::init(op2::make_config("hpx_foreach", 2));
  auto cells = op2::op_decl_set(100, "cells");
  std::vector<double> init(100, 3.0);
  auto p_a = op2::op_decl_dat<double>(cells, 1, "double",
                                      std::span<const double>(init), "a");
  auto p_b = op2::op_decl_dat<double>(cells, 1, "double", "b");
  double total = 0.0;

  // --- exactly the golden body, verbatim ---
  static op2::fused_handle op2_fused_scale_kernel_shift_kernel;
  op2::op_par_loop_fused(op2_fused_scale_kernel_shift_kernel, cells,
      op2::fuse_loop(scale_kernel, "scale",
          op2::op_arg_dat<double>(p_a, -1, op2::OP_ID, 1, op2::OP_READ),
          op2::op_arg_dat<double>(p_b, -1, op2::OP_ID, 1, op2::OP_WRITE),
          op2::op_arg_gbl<double>(&total, 1, op2::OP_INC)),
      op2::fuse_loop(shift_kernel, "shift",
          op2::op_arg_dat<double>(p_b, -1, op2::OP_ID, 1, op2::OP_RW)));
  // -----------------------------------------

  EXPECT_DOUBLE_EQ(total, 300.0);
  EXPECT_DOUBLE_EQ(p_b.data<double>()[7], 7.0);  // 2*3 then +1
  op2::finalize();
}

TEST(FuseTarget, TranslationUnitFusesOnlyWithTheFlag) {
  const auto loops = codegen::parse_loops(kFusableSource);
  codegen::emit_options opts;
  opts.fuse = true;
  const auto fused = codegen::emit_translation_unit(
      loops, codegen::target::op2hpx, opts);
  EXPECT_NE(fused.find(kGoldenFusedBody), std::string::npos) << fused;
  EXPECT_NE(fused.find("// Fusion: on (2 loops -> 1 launches, 1 fused)."),
            std::string::npos)
      << fused;
  // Without --fuse the op2hpx target emits one prepared loop per call
  // site, bit-identical to what it emitted before the flag existed.
  const auto plain = codegen::emit_translation_unit(
      loops, codegen::target::op2hpx);
  EXPECT_EQ(plain.find("op_par_loop_fused"), std::string::npos);
  EXPECT_EQ(plain.find("// Fusion"), std::string::npos);
  // Non-op2hpx targets ignore the flag entirely.
  const auto omp = codegen::emit_translation_unit(
      loops, codegen::target::openmp, opts);
  EXPECT_EQ(omp.find("op_par_loop_fused"), std::string::npos);
}

TEST(FuseTarget, SingletonGroupsStillEmitPreparedLoops) {
  // A fused TU with an indirect loop in the middle: the indirect loop
  // emits as a plain prepared op_par_loop between two fused launches.
  const auto loops = codegen::parse_loops(R"(
    op_par_loop(a, "a", cells,
        op_arg_dat(d1, -1, OP_ID, 1, "double", OP_RW));
    op_par_loop(b, "b", cells,
        op_arg_dat(d1, -1, OP_ID, 1, "double", OP_READ),
        op_arg_dat(d2, -1, OP_ID, 1, "double", OP_WRITE));
    op_par_loop(r, "r", edges,
        op_arg_dat(d1, 0, pecell, 1, "double", OP_INC));
  )");
  codegen::emit_options opts;
  opts.fuse = true;
  const auto tu = codegen::emit_translation_unit(
      loops, codegen::target::op2hpx, opts);
  EXPECT_NE(tu.find("op2_fused_a_b"), std::string::npos) << tu;
  EXPECT_NE(tu.find("static op2::loop_handle op2_handle_r;"),
            std::string::npos)
      << tu;
  EXPECT_NE(tu.find("// Fusion: on (3 loops -> 2 launches, 1 fused)."),
            std::string::npos)
      << tu;
}

}  // namespace
