#include <gtest/gtest.h>

#include "codegen/translator.hpp"

namespace {

using codegen::emit_loop;
using codegen::emit_translation_unit;
using codegen::parse_loops;
using codegen::target;

codegen::parsed_loop direct_loop() {
  const auto loops = parse_loops(R"(
    op_par_loop(save_soln, "save_soln", cells,
        op_arg_dat(p_q, -1, OP_ID, 4, "double", OP_READ),
        op_arg_dat(p_qold, -1, OP_ID, 4, "double", OP_WRITE));
  )");
  return loops.at(0);
}

codegen::parsed_loop indirect_loop() {
  const auto loops = parse_loops(R"(
    op_par_loop(adt_calc, "adt_calc", cells,
        op_arg_dat(p_x, 0, pcell, 2, "double", OP_READ),
        op_arg_dat(p_adt, -1, OP_ID, 1, "double", OP_WRITE));
  )");
  return loops.at(0);
}

TEST(Emitter, OpenMPTargetUsesPragma) {
  const auto code = emit_loop(indirect_loop(), target::openmp);
  EXPECT_NE(code.find("#pragma omp parallel for"), std::string::npos);
  EXPECT_NE(code.find("for (int blockIdx = 0"), std::string::npos);
  EXPECT_NE(code.find("adt_calc("), std::string::npos);
  EXPECT_EQ(code.find("hpx::"), std::string::npos);
}

TEST(Emitter, ForEachTargetMatchesFig6) {
  const auto code = emit_loop(indirect_loop(), target::hpx_foreach);
  EXPECT_NE(code.find("boost::irange(0, nblocks)"), std::string::npos);
  EXPECT_NE(code.find("hpx::parallel::for_each(par,"), std::string::npos);
  EXPECT_EQ(code.find("#pragma"), std::string::npos);
}

TEST(Emitter, ChunkedTargetMatchesFig7) {
  const auto code = emit_loop(indirect_loop(), target::hpx_foreach_chunked);
  EXPECT_NE(code.find("static_chunk_size scs"), std::string::npos);
  EXPECT_NE(code.find("par.with(scs)"), std::string::npos);
}

TEST(Emitter, AsyncDirectLoopMatchesFig8) {
  const auto code = emit_loop(direct_loop(), target::hpx_async);
  EXPECT_NE(code.find("async(hpx::launch::async"), std::string::npos);
  EXPECT_NE(code.find("return async"), std::string::npos);
  EXPECT_NE(code.find("save_soln("), std::string::npos);
}

TEST(Emitter, AsyncIndirectLoopMatchesFig9) {
  const auto code = emit_loop(indirect_loop(), target::hpx_async);
  EXPECT_NE(code.find("par(task)"), std::string::npos);
  EXPECT_NE(code.find("return new_data"), std::string::npos);
}

TEST(Emitter, DataflowTargetMatchesFig13) {
  const auto code = emit_loop(indirect_loop(), target::hpx_dataflow);
  EXPECT_NE(code.find("hpx::lcos::local::dataflow"), std::string::npos);
  EXPECT_NE(code.find("unwrapped"), std::string::npos);
  EXPECT_NE(code.find("hpx::parallel::for_each(par,"), std::string::npos);
}

TEST(Emitter, IndirectArgumentsIndexThroughMap) {
  const auto code = emit_loop(indirect_loop(), target::openmp);
  // p_x is reached through pcell with index 0.
  EXPECT_NE(code.find("pcell->map[pcell->dim * n + 0]"), std::string::npos);
  // p_adt is direct.
  EXPECT_NE(code.find("p_adt->data)[1 * n]"), std::string::npos);
}

TEST(Emitter, HeaderIdentifiesLoopKind) {
  EXPECT_NE(emit_loop(direct_loop(), target::openmp).find("(direct)"),
            std::string::npos);
  const auto loops = parse_loops(R"(
    op_par_loop(res_calc, "res_calc", edges,
        op_arg_dat(p_res, 0, pecell, 4, "double", OP_INC));
  )");
  EXPECT_NE(emit_loop(loops.at(0), target::openmp).find("coloured"),
            std::string::npos);
}

TEST(Emitter, TranslationUnitContainsAllLoops) {
  const auto loops = parse_loops(R"(
    op_par_loop(a, "a", s, op_arg_dat(d, -1, OP_ID, 1, "double", OP_READ));
    op_par_loop(b, "b", s, op_arg_dat(d, -1, OP_ID, 1, "double", OP_WRITE));
  )");
  const auto tu = emit_translation_unit(loops, target::hpx_foreach);
  EXPECT_NE(tu.find("op_par_loop_a"), std::string::npos);
  EXPECT_NE(tu.find("op_par_loop_b"), std::string::npos);
  EXPECT_NE(tu.find("Auto-generated"), std::string::npos);
  EXPECT_NE(tu.find("hpx_foreach"), std::string::npos);
}

TEST(Emitter, AllTargetsProduceNonEmptyCode) {
  for (const auto t : {target::openmp, target::hpx_foreach,
                       target::hpx_foreach_chunked, target::hpx_async,
                       target::hpx_dataflow}) {
    EXPECT_GT(emit_loop(direct_loop(), t).size(), 100u) << to_string(t);
    EXPECT_GT(emit_loop(indirect_loop(), t).size(), 100u) << to_string(t);
  }
}

TEST(Emitter, TargetNames) {
  EXPECT_STREQ(to_string(target::openmp), "openmp");
  EXPECT_STREQ(to_string(target::hpx_dataflow), "hpx_dataflow");
}

}  // namespace
