// Chaos suite: real Airfoil jobs under injected faults, through the
// multi-tenant job service.  The contract under test — a faulted
// tenant either heals (loop-level QoS ladder or job-level retry) or is
// shed/failed with a structured reason, and every OTHER tenant's
// result is bit-identical to a run without the victim, because
// tenant-scoped faults (OP2_FAULT=tenant=<id>:...) fire only on the
// faulted tenant's threads.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "airfoil/job.hpp"
#include "hpxlite/hpxlite.hpp"
#include "op2/op2.hpp"

namespace {

namespace svc = op2::service;

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto cfg = op2::make_config("hpx_foreach", 2);
    op2::init(cfg);
  }

  void TearDown() override {
    op2::fault_injector::clear();
    op2::profiling::enable(false);
    op2::profiling::reset();
    op2::finalize();
  }

  static airfoil::job_params params() {
    airfoil::job_params p;
    p.imax = 12;
    p.jmax = 6;
    p.niter = 4;
    p.keep_solution = true;
    return p;
  }

  static svc::service_config two_workers() {
    svc::service_config cfg;
    cfg.workers = 2;
    return cfg;
  }

  /// Runs one Airfoil job for `name` through a service and returns its
  /// output.  The fault configuration active at call time applies —
  /// the baseline for bit-exactness runs the *same* code path with the
  /// same (tenant-scoped) fault installed, just without the victim
  /// tenant submitting.
  static airfoil::job_output run_solo(const std::string& name) {
    svc::job_service s(two_workers());
    svc::tenant_options t;
    t.name = name;
    s.register_tenant(t);
    airfoil::job_workspace ws;
    airfoil::job_output out;
    auto h = s.submit(name, [&](const svc::job_context& ctx) {
      out = airfoil::run_job(params(), ws, ctx.stop);
    });
    EXPECT_EQ(h.get().status, svc::job_status::completed);
    return out;
  }
};

// --- heal paths -------------------------------------------------------

TEST_F(ChaosTest, ThrowFaultHealsViaJobLevelRetry) {
  // No loop-level policy: the injected throw escapes the loop, fails
  // attempt 1, and the service's exponential-backoff retry re-runs the
  // job from the pristine initial condition (the fault budget is
  // spent, so attempt 2 is clean).
  op2::fault_injector::configure("tenant=victim:res_calc:throw:at=2");
  svc::job_service s(two_workers());
  svc::tenant_options t;
  t.name = "victim";
  s.register_tenant(t);
  svc::job_options opts;
  opts.max_attempts = 2;
  opts.backoff_ms = 1;
  airfoil::job_workspace ws;
  airfoil::job_output out;
  auto h = s.submit(
      "victim",
      [&](const svc::job_context& ctx) {
        out = airfoil::run_job(params(), ws, ctx.stop);
      },
      opts);
  const auto r = h.get();
  EXPECT_EQ(r.status, svc::job_status::completed);
  EXPECT_EQ(r.attempts, 2);
  EXPECT_EQ(op2::fault_injector::fired_count(), 1);
  EXPECT_TRUE(std::isfinite(out.checksum));
  EXPECT_EQ(s.stats("victim").job_retries, 1u);
}

TEST_F(ChaosTest, ThrowFaultHealsInsideTheJobViaLoopQos) {
  // Loop-level policy: rollback + retry absorbs the injected throw
  // inside the loop, so the job completes on its first attempt.
  op2::fault_injector::configure("tenant=victim:res_calc:throw:at=2");
  svc::job_service s(two_workers());
  svc::tenant_options t;
  t.name = "victim";
  s.register_tenant(t);
  svc::job_options opts;
  opts.qos.max_retries = 2;
  airfoil::job_workspace ws;
  auto h = s.submit(
      "victim",
      [&](const svc::job_context& ctx) {
        airfoil::run_job(params(), ws, ctx.stop);
      },
      opts);
  const auto r = h.get();
  EXPECT_EQ(r.status, svc::job_status::completed);
  EXPECT_EQ(r.attempts, 1);  // healed below the job layer
  EXPECT_EQ(op2::fault_injector::fired_count(), 1);
}

TEST_F(ChaosTest, StallFaultHealsViaDeadlineAndLadder) {
  op2::profiling::enable(true);
  op2::fault_injector::configure(
      "tenant=victim:adt_calc:stall:at=2,stall_ms=60000");
  svc::job_service s(two_workers());
  svc::tenant_options t;
  t.name = "victim";
  s.register_tenant(t);
  svc::job_options opts;
  opts.qos.deadline_ms = 150;
  opts.qos.ladder = true;
  airfoil::job_workspace ws;
  auto h = s.submit(
      "victim",
      [&](const svc::job_context& ctx) {
        airfoil::run_job(params(), ws, ctx.stop);
      },
      opts);
  const auto r = h.get();
  EXPECT_EQ(r.status, svc::job_status::completed) << r.error;
  EXPECT_EQ(r.attempts, 1);  // the ladder healed the stalled attempt
  const auto tenants = op2::profiling::tenant_snapshot();
  ASSERT_TRUE(tenants.count("victim"));
  EXPECT_GE(tenants.at("victim").deadline_misses, 1u);
  EXPECT_GE(tenants.at("victim").degradations, 1u);
  EXPECT_GE(tenants.at("victim").max_degrade_depth, 1u);
}

TEST_F(ChaosTest, CorruptFaultHealsViaJobLevelRetry) {
  // The corrupt fault NaNs one output value after `update` completes;
  // run_job's finite-check turns that into a failed attempt, and the
  // retry re-runs from the pristine free-stream state.
  op2::fault_injector::configure("tenant=victim:update:corrupt:at=3");
  svc::job_service s(two_workers());
  svc::tenant_options t;
  t.name = "victim";
  s.register_tenant(t);
  svc::job_options opts;
  opts.max_attempts = 2;
  opts.backoff_ms = 1;
  airfoil::job_workspace ws;
  airfoil::job_output out;
  auto h = s.submit(
      "victim",
      [&](const svc::job_context& ctx) {
        out = airfoil::run_job(params(), ws, ctx.stop);
      },
      opts);
  const auto r = h.get();
  EXPECT_EQ(r.status, svc::job_status::completed);
  EXPECT_EQ(r.attempts, 2);
  EXPECT_TRUE(std::isfinite(out.checksum));
}

TEST_F(ChaosTest, UnhealableFaultFailsWithAStructuredReasonNotAHang) {
  // count=-1: the throw fires on every res_calc invocation, so no
  // amount of retrying heals it — the job must fail with the injected
  // error's message, promptly.
  op2::fault_injector::configure(
      "tenant=victim:res_calc:throw:at=1,count=-1");
  svc::job_service s(two_workers());
  svc::tenant_options t;
  t.name = "victim";
  s.register_tenant(t);
  svc::job_options opts;
  opts.max_attempts = 2;
  opts.backoff_ms = 1;
  airfoil::job_workspace ws;
  auto h = s.submit(
      "victim",
      [&](const svc::job_context& ctx) {
        airfoil::run_job(params(), ws, ctx.stop);
      },
      opts);
  const auto r = h.get();
  EXPECT_EQ(r.status, svc::job_status::failed);
  EXPECT_EQ(r.attempts, 2);
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(s.stats("victim").failed, 1u);
}

// --- isolation matrix: faulted tenant A, bystander tenant B -----------

class ChaosIsolationTest : public ChaosTest,
                           public ::testing::WithParamInterface<std::string> {
};

TEST_P(ChaosIsolationTest, BystanderTenantIsBitIdenticalUnderTheFault) {
  const std::string spec = GetParam();
  op2::fault_injector::configure(spec);

  // Baseline: the bystander alone, same service machinery, same
  // (tenant=victim) fault installed — identical code path, fault never
  // eligible to fire.
  const auto baseline = run_solo("bystander");
  ASSERT_FALSE(baseline.solution.empty());
  EXPECT_EQ(op2::fault_injector::fired_count(), 0);

  // Now both tenants concurrently; the victim absorbs its fault.
  op2::fault_injector::configure(spec);  // reset counters
  svc::job_service s(two_workers());
  for (const char* name : {"victim", "bystander"}) {
    svc::tenant_options t;
    t.name = name;
    s.register_tenant(t);
  }
  svc::job_options victim_opts;
  victim_opts.max_attempts = 2;
  victim_opts.backoff_ms = 1;
  victim_opts.qos.deadline_ms = 150;
  victim_opts.qos.ladder = true;
  airfoil::job_workspace victim_ws;
  airfoil::job_workspace bystander_ws;
  airfoil::job_output bystander_out;
  auto victim = s.submit(
      "victim",
      [&](const svc::job_context& ctx) {
        airfoil::run_job(params(), victim_ws, ctx.stop);
      },
      victim_opts);
  auto bystander = s.submit("bystander", [&](const svc::job_context& ctx) {
    bystander_out = airfoil::run_job(params(), bystander_ws, ctx.stop);
  });
  EXPECT_EQ(bystander.get().status, svc::job_status::completed);
  EXPECT_EQ(victim.get().status, svc::job_status::completed);
  EXPECT_GE(op2::fault_injector::fired_count(), 1);

  // Bit-exact: the victim's fault, retries and degradations leaked
  // nothing into the bystander's arithmetic.
  ASSERT_EQ(bystander_out.solution.size(), baseline.solution.size());
  for (std::size_t i = 0; i < baseline.solution.size(); ++i) {
    ASSERT_EQ(bystander_out.solution[i], baseline.solution[i])
        << "solution diverged at " << i << " under " << spec;
  }
  EXPECT_EQ(bystander_out.checksum, baseline.checksum);
}

INSTANTIATE_TEST_SUITE_P(
    FaultKinds, ChaosIsolationTest,
    ::testing::Values("tenant=victim:res_calc:throw:at=2",
                      "tenant=victim:adt_calc:stall:at=2,stall_ms=60000",
                      "tenant=victim:update:corrupt:at=3"),
    [](const ::testing::TestParamInfo<std::string>& pinfo) {
      if (pinfo.param.find(":throw") != std::string::npos) {
        return std::string("Throw");
      }
      if (pinfo.param.find(":stall") != std::string::npos) {
        return std::string("Stall");
      }
      return std::string("Corrupt");
    });

// --- legacy global faults still fire for everyone ---------------------

TEST_F(ChaosTest, LegacyGlobalFaultFormStillAppliesToAnyTenant) {
  op2::fault_injector::configure("res_calc:throw:at=2");
  svc::job_service s(two_workers());
  svc::tenant_options t;
  t.name = "anyone";
  s.register_tenant(t);
  svc::job_options opts;
  opts.max_attempts = 2;
  opts.backoff_ms = 1;
  airfoil::job_workspace ws;
  auto h = s.submit(
      "anyone",
      [&](const svc::job_context& ctx) {
        airfoil::run_job(params(), ws, ctx.stop);
      },
      opts);
  EXPECT_EQ(h.get().status, svc::job_status::completed);
  EXPECT_EQ(op2::fault_injector::fired_count(), 1);
}

// --- per-tenant profiling columns -------------------------------------

TEST_F(ChaosTest, TimingOutputGrowsPerTenantColumns) {
  op2::profiling::enable(true);
  op2::fault_injector::configure("tenant=victim:res_calc:throw:at=2");
  svc::job_service s(two_workers());
  for (const char* name : {"victim", "bystander"}) {
    svc::tenant_options t;
    t.name = name;
    s.register_tenant(t);
  }
  svc::job_options opts;
  opts.max_attempts = 2;
  opts.backoff_ms = 1;
  airfoil::job_workspace vws;
  airfoil::job_workspace bws;
  s.submit(
       "victim",
       [&](const svc::job_context& ctx) {
         airfoil::run_job(params(), vws, ctx.stop);
       },
       opts)
      .get();
  s.submit("bystander", [&](const svc::job_context& ctx) {
     airfoil::run_job(params(), bws, ctx.stop);
   }).get();

  const auto tenants = op2::profiling::tenant_snapshot();
  ASSERT_TRUE(tenants.count("victim"));
  ASSERT_TRUE(tenants.count("bystander"));
  EXPECT_EQ(tenants.at("victim").jobs_admitted, 1u);
  EXPECT_EQ(tenants.at("victim").jobs_completed, 1u);
  EXPECT_EQ(tenants.at("victim").job_retries, 1u);
  EXPECT_EQ(tenants.at("bystander").job_retries, 0u);

  std::ostringstream out;
  op2::profiling::report(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("tenants"), std::string::npos);
  EXPECT_NE(text.find("victim"), std::string::npos);
  EXPECT_NE(text.find("bystander"), std::string::npos);
}

// --- stress (runs under TSan in scripts/check.sh) ---------------------

TEST(ChaosServiceStress, FaultedAndCleanTenantsChurnConcurrently) {
  op2::init(op2::make_config("hpx_foreach", 2));
  op2::fault_injector::configure(
      "tenant=victim:res_calc:throw:at=1,count=4");
  {
    svc::service_config cfg;
    cfg.workers = 3;
    svc::job_service s(cfg);
    for (const char* name : {"victim", "clean0", "clean1"}) {
      svc::tenant_options t;
      t.name = name;
      s.register_tenant(t);
    }
    airfoil::job_params p;
    p.imax = 10;
    p.jmax = 5;
    p.niter = 2;
    std::vector<std::unique_ptr<airfoil::job_workspace>> spaces;
    std::vector<svc::job_handle> handles;
    svc::job_options opts;
    opts.max_attempts = 3;
    opts.backoff_ms = 1;
    int w = 0;
    for (const char* name : {"victim", "clean0", "clean1"}) {
      spaces.push_back(std::make_unique<airfoil::job_workspace>());
      auto* ws = spaces.back().get();
      for (int i = 0; i < 3; ++i) {
        handles.push_back(s.submit(
            name,
            [&p, ws](const svc::job_context& ctx) {
              airfoil::run_job(p, *ws, ctx.stop);
            },
            opts));
      }
      ++w;
    }
    for (auto& h : handles) {
      const auto r = h.get();
      EXPECT_TRUE(r.status == svc::job_status::completed ||
                  r.status == svc::job_status::failed)
          << r.error;
    }
  }
  op2::fault_injector::clear();
  op2::finalize();
}

}  // namespace
