// op2::service admission-controller semantics: per-tenant quotas and
// bounded queues (shed with structured reasons, never unbounded
// memory), deterministic weighted-fair dispatch, mid-flight quota
// changes, prompt resource release when queued work is cancelled,
// whole-job deadlines and exponential-backoff retries, and cross-tenant
// tuner sharing.
#include "op2/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "hpxlite/hpxlite.hpp"
#include "op2/op2.hpp"

namespace {

using namespace std::chrono_literals;
namespace svc = op2::service;

svc::service_config config(unsigned workers, std::size_t depth = 16) {
  svc::service_config cfg;
  cfg.workers = workers;
  cfg.default_queue_depth = depth;
  return cfg;
}

svc::tenant_options tenant(const std::string& name, double weight = 1.0,
                           std::size_t quota = 1, std::size_t depth = 0) {
  svc::tenant_options t;
  t.name = name;
  t.weight = weight;
  t.quota = quota;
  t.queue_depth = depth;
  return t;
}

/// A job body that parks until release() — the unit tests' stand-in for
/// a long-running simulation.  Stop-aware, like a real job body: it
/// polls its token while parked.
struct gate {
  std::promise<void> barrier;
  std::shared_future<void> opened{barrier.get_future().share()};
  void release() { barrier.set_value(); }
  svc::job_fn job() {
    return [f = opened](const svc::job_context& ctx) {
      while (f.wait_for(1ms) != std::future_status::ready) {
        if (ctx.stop.stop_requested()) {
          throw hpxlite::operation_cancelled("gate cancelled");
        }
      }
    };
  }
};

// --- registration / validation ----------------------------------------

TEST(Service, RejectsBadRegistrationsAndSubmissions) {
  svc::job_service s(config(1));
  EXPECT_THROW(s.register_tenant(tenant("")), std::invalid_argument);
  EXPECT_THROW(s.register_tenant(tenant("a", 0.0)), std::invalid_argument);
  s.register_tenant(tenant("a"));
  EXPECT_THROW(s.register_tenant(tenant("a")), std::invalid_argument);
  EXPECT_THROW(s.submit("nobody", [](const svc::job_context&) {}),
               std::invalid_argument);
  EXPECT_THROW(s.submit("a", svc::job_fn{}), std::invalid_argument);
  svc::job_options bad;
  bad.max_attempts = 0;
  EXPECT_THROW(s.submit("a", [](const svc::job_context&) {}, bad),
               std::invalid_argument);
}

TEST(Service, EnvConfigRejectsMalformedValues) {
  setenv("OP2_SERVICE_WORKERS", "three", 1);
  EXPECT_THROW(svc::service_config::from_env(), std::invalid_argument);
  setenv("OP2_SERVICE_WORKERS", "0", 1);
  EXPECT_THROW(svc::service_config::from_env(), std::invalid_argument);
  setenv("OP2_SERVICE_WORKERS", "6", 1);
  setenv("OP2_SERVICE_QUEUE_DEPTH", "9", 1);
  const auto cfg = svc::service_config::from_env();
  EXPECT_EQ(cfg.workers, 6u);
  EXPECT_EQ(cfg.default_queue_depth, 9u);
  unsetenv("OP2_SERVICE_WORKERS");
  unsetenv("OP2_SERVICE_QUEUE_DEPTH");
}

// --- shedding ---------------------------------------------------------

TEST(Service, ZeroQuotaTenantShedsEverySubmission) {
  svc::job_service s(config(1));
  s.register_tenant(tenant("idle", 1.0, /*quota=*/0));
  auto h = s.submit("idle", [](const svc::job_context&) { FAIL(); });
  const auto r = h.get();  // already resolved: shed at submit
  EXPECT_EQ(r.status, svc::job_status::shed);
  EXPECT_EQ(r.shed, svc::shed_reason::zero_quota);
  EXPECT_STREQ(svc::to_string(r.shed), "zero_quota");
  const auto st = s.stats("idle");
  EXPECT_EQ(st.submitted, 1u);
  EXPECT_EQ(st.shed_zero_quota, 1u);
  EXPECT_EQ(st.admitted, 0u);
}

TEST(Service, FullQueueShedsWithReasonAndBoundedMemory) {
  svc::job_service s(config(1));
  s.register_tenant(tenant("t", 1.0, 1, /*depth=*/3));
  gate g;
  auto running = s.submit("t", g.job());
  // Wait until the gate job occupies the single worker.
  while (s.stats("t").running == 0) {
    std::this_thread::sleep_for(1ms);
  }
  std::vector<svc::job_handle> queued;
  for (int i = 0; i < 3; ++i) {
    queued.push_back(s.submit("t", g.job()));
  }
  // Depth 3 reached: the 4th queued submission is shed, not buffered.
  auto overflow = s.submit("t", g.job());
  EXPECT_EQ(overflow.status(), svc::job_status::shed);
  EXPECT_EQ(overflow.get().shed, svc::shed_reason::queue_full);
  EXPECT_EQ(s.stats("t").queued, 3u);
  EXPECT_EQ(s.stats("t").peak_queued, 3u);
  g.release();
  for (auto& h : queued) {
    EXPECT_EQ(h.get().status, svc::job_status::completed);
  }
  EXPECT_EQ(running.get().status, svc::job_status::completed);
}

// --- weighted fairness ------------------------------------------------

TEST(Service, WeightedFairDispatchIsDeterministicAndStarvationFree) {
  svc::job_service s(config(/*workers=*/1, /*depth=*/64));
  s.register_tenant(tenant("a", /*weight=*/3.0, /*quota=*/1));
  s.register_tenant(tenant("b", /*weight=*/1.0, /*quota=*/1));
  s.register_tenant(tenant("z", 1.0, 1));

  // Park the single worker so every job below is tagged while the
  // virtual clock is frozen — the dispatch order is then a pure
  // function of the admission tags.
  gate g;
  auto parked = s.submit("z", g.job());
  while (s.stats("z").running == 0) {
    std::this_thread::sleep_for(1ms);
  }

  std::mutex m;
  std::vector<std::string> order;
  auto record = [&](const std::string& who) {
    return [&, who](const svc::job_context&) {
      std::lock_guard<std::mutex> lock(m);
      order.push_back(who);
    };
  };
  std::vector<svc::job_handle> handles;
  for (int i = 0; i < 12; ++i) {
    handles.push_back(s.submit("a", record("a")));
  }
  for (int i = 0; i < 4; ++i) {
    handles.push_back(s.submit("b", record("b")));
  }
  g.release();
  parked.get();
  for (auto& h : handles) {
    EXPECT_EQ(h.get().status, svc::job_status::completed);
  }
  // Start-time fair queueing with weights 3:1 — tags a: k/3, b: k — and
  // name-order tie-break gives exactly three a-dispatches per b.
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], (i % 4 == 3) ? "b" : "a") << "position " << i;
  }
}

TEST(Service, BurstyTenantCannotStarveASteadyOne) {
  svc::job_service s(config(/*workers=*/2, /*depth=*/64));
  s.register_tenant(tenant("flood", 1.0, /*quota=*/1));
  s.register_tenant(tenant("steady", 1.0, /*quota=*/1));
  std::vector<svc::job_handle> flood;
  for (int i = 0; i < 40; ++i) {
    flood.push_back(s.submit(
        "flood", [](const svc::job_context&) {
          std::this_thread::sleep_for(1ms);
        }));
  }
  auto h = s.submit("steady", [](const svc::job_context&) {});
  // The steady tenant's first tag beats the flood's 40-deep backlog, so
  // it must not wait for the flood to drain.
  EXPECT_TRUE(h.wait_for(2s));
  EXPECT_EQ(h.get().status, svc::job_status::completed);
  for (auto& f : flood) {
    f.get();
  }
}

// --- quotas mid-flight ------------------------------------------------

TEST(Service, RaisingAQuotaDispatchesQueuedJobsImmediately) {
  svc::job_service s(config(/*workers=*/2));
  s.register_tenant(tenant("t", 1.0, /*quota=*/1));
  gate g;
  auto a = s.submit("t", g.job());
  auto b = s.submit("t", g.job());
  while (s.stats("t").running == 0) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(s.stats("t").queued, 1u);  // quota 1: b waits
  s.set_quota("t", 2);
  while (s.stats("t").running < 2) {
    std::this_thread::sleep_for(1ms);
  }
  g.release();
  EXPECT_EQ(a.get().status, svc::job_status::completed);
  EXPECT_EQ(b.get().status, svc::job_status::completed);
}

TEST(Service, LoweringAQuotaNeverPreemptsButGatesNewDispatches) {
  svc::job_service s(config(/*workers=*/3));
  s.register_tenant(tenant("t", 1.0, /*quota=*/2));
  gate g1;
  gate g2;
  auto a = s.submit("t", g1.job());
  auto b = s.submit("t", g2.job());
  while (s.stats("t").running < 2) {
    std::this_thread::sleep_for(1ms);
  }
  s.set_quota("t", 1);
  EXPECT_EQ(s.stats("t").running, 2u);  // no preemption
  auto c = s.submit("t", [](const svc::job_context&) {});
  EXPECT_FALSE(c.wait_for(50ms));  // still over the new quota
  g1.release();
  a.get();
  // One job finished, but running (1) still meets the lowered quota.
  EXPECT_FALSE(c.wait_for(50ms));
  g2.release();
  b.get();
  EXPECT_EQ(c.get().status, svc::job_status::completed);
}

// --- cancellation and prompt release ----------------------------------

TEST(Service, CancellingAQueuedJobReleasesItsClosureImmediately) {
  const std::uint64_t continuations = hpxlite::pending_continuation_count();
  svc::job_service s(config(1));
  s.register_tenant(tenant("t"));
  gate g;
  auto running = s.submit("t", g.job());
  while (s.stats("t").running == 0) {
    std::this_thread::sleep_for(1ms);
  }
  auto sentinel = std::make_shared<int>(7);
  std::weak_ptr<int> watch = sentinel;
  auto queued = s.submit("t", [keep = std::move(sentinel)](
                                  const svc::job_context&) { (void)keep; });
  EXPECT_EQ(queued.status(), svc::job_status::queued);
  queued.cancel();
  // Eager removal: the job resolves now — not when the worker frees up —
  // and the closure (sole owner of the sentinel) is destroyed with it.
  EXPECT_EQ(queued.get().status, svc::job_status::cancelled);
  EXPECT_TRUE(watch.expired());
  EXPECT_EQ(s.stats("t").cancelled, 1u);
  EXPECT_EQ(s.stats("t").queued, 0u);
  g.release();
  running.get();
  // Nothing the cancelled job touched is parked in the runtime.
  EXPECT_EQ(hpxlite::pending_continuation_count(), continuations);
}

TEST(Service, CancellingARunningJobStopsItCooperatively) {
  svc::job_service s(config(1));
  s.register_tenant(tenant("t"));
  auto h = s.submit("t", [](const svc::job_context& ctx) {
    while (!ctx.stop.stop_requested()) {
      std::this_thread::sleep_for(1ms);
    }
    throw hpxlite::operation_cancelled("observed stop");
  });
  while (s.stats("t").running == 0) {
    std::this_thread::sleep_for(1ms);
  }
  h.cancel();
  const auto r = h.get();
  EXPECT_EQ(r.status, svc::job_status::cancelled);
  EXPECT_EQ(s.stats("t").cancelled, 1u);
}

TEST(Service, CancelTenantDropsItsQueueAndStopsItsRunningJobs) {
  svc::job_service s(config(1));
  s.register_tenant(tenant("t"));
  s.register_tenant(tenant("bystander"));
  auto running = s.submit("t", [](const svc::job_context& ctx) {
    while (!ctx.stop.stop_requested()) {
      std::this_thread::sleep_for(1ms);
    }
    throw hpxlite::operation_cancelled("tenant cancelled");
  });
  auto queued = s.submit("t", [](const svc::job_context&) { FAIL(); });
  auto other = s.submit("bystander", [](const svc::job_context&) {});
  while (s.stats("t").running == 0) {
    std::this_thread::sleep_for(1ms);
  }
  s.cancel_tenant("t");
  EXPECT_EQ(running.get().status, svc::job_status::cancelled);
  EXPECT_EQ(queued.get().status, svc::job_status::cancelled);
  // The bystander is untouched by another tenant's cancellation.
  EXPECT_EQ(other.get().status, svc::job_status::completed);
}

TEST(Service, ShutdownShedsQueuedJobsAndCancelsRunningOnes) {
  svc::job_handle running;
  svc::job_handle queued;
  gate g;  // never released: only the service stop can end the job
  {
    svc::job_service s(config(1));
    s.register_tenant(tenant("t"));
    running = s.submit("t", g.job());
    while (s.stats("t").running == 0) {
      std::this_thread::sleep_for(1ms);
    }
    queued = s.submit("t", [](const svc::job_context&) {
      FAIL() << "shed work must never run";
    });
    // Destructor: queued work sheds with `shutdown`, the running job's
    // fanned-in token trips, and the worker threads join.
  }
  const auto r = queued.get();
  EXPECT_EQ(r.status, svc::job_status::shed);
  EXPECT_EQ(r.shed, svc::shed_reason::shutdown);
  EXPECT_EQ(running.get().status, svc::job_status::cancelled);
}

// --- QoS: job deadlines and retries -----------------------------------

TEST(Service, JobDeadlineFailsTheJobWithAStructuredError) {
  svc::job_service s(config(1));
  s.register_tenant(tenant("t"));
  svc::job_options opts;
  opts.job_deadline_ms = 50;
  auto h = s.submit(
      "t",
      [](const svc::job_context& ctx) {
        for (int i = 0; i < 10000 && !ctx.stop.stop_requested(); ++i) {
          std::this_thread::sleep_for(1ms);
        }
        if (ctx.stop.stop_requested()) {
          throw hpxlite::operation_cancelled("deadline observed");
        }
      },
      opts);
  const auto r = h.get();
  EXPECT_EQ(r.status, svc::job_status::failed);
  EXPECT_NE(r.error.find("deadline"), std::string::npos) << r.error;
}

TEST(Service, TransientFailuresRetryWithBackoffUntilSuccess) {
  svc::job_service s(config(1));
  s.register_tenant(tenant("t"));
  svc::job_options opts;
  opts.max_attempts = 3;
  opts.backoff_ms = 1;
  auto flaky = std::make_shared<std::atomic<int>>(0);
  auto h = s.submit(
      "t",
      [flaky](const svc::job_context& ctx) {
        EXPECT_EQ(ctx.attempt, flaky->load() + 1);
        if (flaky->fetch_add(1) < 2) {
          throw std::runtime_error("transient");
        }
      },
      opts);
  const auto r = h.get();
  EXPECT_EQ(r.status, svc::job_status::completed);
  EXPECT_EQ(r.attempts, 3);
  EXPECT_EQ(s.stats("t").job_retries, 2u);
}

TEST(Service, ExhaustedRetriesReportTheLastError) {
  svc::job_service s(config(1));
  s.register_tenant(tenant("t"));
  svc::job_options opts;
  opts.max_attempts = 2;
  auto h = s.submit(
      "t",
      [](const svc::job_context&) { throw std::runtime_error("permanent"); },
      opts);
  const auto r = h.get();
  EXPECT_EQ(r.status, svc::job_status::failed);
  EXPECT_EQ(r.attempts, 2);
  EXPECT_NE(r.error.find("permanent"), std::string::npos);
}

// --- overload ---------------------------------------------------------

TEST(Service, OverloadIsShedNotBufferedAndEveryHandleResolves) {
  svc::job_service s(config(/*workers=*/2));
  s.register_tenant(tenant("hot", 1.0, /*quota=*/2, /*depth=*/4));
  std::vector<svc::job_handle> handles;
  for (int i = 0; i < 200; ++i) {
    handles.push_back(
        s.submit("hot", [](const svc::job_context&) {
          std::this_thread::sleep_for(100us);
        }));
  }
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  for (auto& h : handles) {
    const auto r = h.get();  // load ≫ quota must never hang
    if (r.status == svc::job_status::completed) {
      completed += 1;
    } else {
      ASSERT_EQ(r.status, svc::job_status::shed);
      ASSERT_EQ(r.shed, svc::shed_reason::queue_full);
      shed += 1;
    }
  }
  const auto st = s.stats("hot");
  EXPECT_EQ(completed + shed, 200u);
  EXPECT_GT(shed, 0u);           // the flood was shed, not buffered
  EXPECT_GT(completed, 0u);      // but the service kept serving
  EXPECT_LE(st.peak_queued, 4u); // memory stayed within the depth bound
  EXPECT_EQ(st.submitted, 200u);
  EXPECT_EQ(st.admitted, completed);
}

// --- drain and aggregate stats ----------------------------------------

TEST(Service, DrainWaitsForAllQueuedAndRunningWork) {
  svc::job_service s(config(2));
  s.register_tenant(tenant("t", 1.0, 2));
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) {
    s.submit("t", [&](const svc::job_context&) {
      std::this_thread::sleep_for(2ms);
      done += 1;
    });
  }
  s.drain();
  EXPECT_EQ(done.load(), 10);
  const auto total = s.stats();
  EXPECT_EQ(total.completed, 10u);
  EXPECT_GE(total.peak_running, 1u);
}

// --- cross-tenant tuner sharing ---------------------------------------

void scale_kernel(const double* a, double* b) { b[0] = 2.0 * a[0]; }

TEST(Service, TenantsShareTunerCalibrationForIdenticalLoopShapes) {
  auto cfg = op2::make_config("hpx_foreach", 2);
  cfg.tuner = op2::tuner_mode::on;
  op2::init(cfg);
  svc::job_service s(config(1));
  s.register_tenant(tenant("first"));
  s.register_tenant(tenant("second"));
  auto set = op2::op_decl_set(4096, "cells");
  auto a = op2::op_decl_dat<double>(set, 1, "double", "a");
  auto b = op2::op_decl_dat<double>(set, 1, "double", "b");
  auto body = [&](const svc::job_context&) {
    for (int i = 0; i < 4; ++i) {
      op2::op_par_loop(scale_kernel, "shared_shape", set,
                       op2::op_arg_dat<double>(a, -1, op2::OP_ID, 1,
                                               op2::OP_READ),
                       op2::op_arg_dat<double>(b, -1, op2::OP_ID, 1,
                                               op2::OP_WRITE));
    }
  };
  s.submit("first", body).get();
  s.submit("second", body).get();
  // Controllers key on loop shape, not tenant: both tenants fed one
  // controller rather than calibrating separately.
  int entries = 0;
  for (const auto& e : op2::tuner::snapshot()) {
    if (e.loop == "shared_shape") {
      entries += 1;
    }
  }
  EXPECT_EQ(entries, 1);
  op2::finalize();
}

// --- stress (runs under TSan in scripts/check.sh) ---------------------

TEST(ServiceStress, ConcurrentSubmitCancelQuotaChurnIsClean) {
  svc::job_service s(config(4));
  for (int t = 0; t < 4; ++t) {
    s.register_tenant(tenant("t" + std::to_string(t), 1.0 + t, 2, 8));
  }
  std::atomic<bool> go{true};
  std::vector<std::thread> drivers;
  for (int t = 0; t < 4; ++t) {
    drivers.emplace_back([&, t] {
      const std::string name = "t" + std::to_string(t);
      std::vector<svc::job_handle> mine;
      for (int i = 0; i < 50; ++i) {
        mine.push_back(s.submit(name, [](const svc::job_context& ctx) {
          for (int k = 0; k < 10 && !ctx.stop.stop_requested(); ++k) {
            std::this_thread::sleep_for(100us);
          }
        }));
        if (i % 7 == 0) {
          mine.back().cancel();
        }
        if (i % 13 == 0) {
          s.set_quota(name, 1 + static_cast<std::size_t>(i % 3));
        }
      }
      for (auto& h : mine) {
        h.get();
      }
    });
  }
  go = false;
  for (auto& d : drivers) {
    d.join();
  }
  const auto total = s.stats();
  EXPECT_EQ(total.submitted, 200u);
  EXPECT_EQ(total.completed + total.shed + total.cancelled + total.failed,
            200u);
}

}  // namespace
