// The shared timer service (op2/timer_service.hpp): one dedicated OS
// thread arms every job and attempt deadline in the process.  Covers
// arm/fire/disarm semantics, the single-thread regression (the old
// design spawned one deadline thread per guarded attempt), and — the
// semantics that must not have changed when the per-attempt deadline
// timer moved onto this service — the deadline → degradation-ladder
// path, including the "a stalled attempt may own every pool worker"
// guarantee that forces the timer off the pool.
#include "op2/timer_service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <vector>

#include "hpxlite/hpxlite.hpp"
#include "op2/op2.hpp"

namespace {

using namespace std::chrono_literals;

TEST(TimerService, ArmFiresAfterTheDelay) {
  std::mutex m;
  std::condition_variable cv;
  bool fired = false;
  const auto id = op2::timer_service::arm(20ms, [&] {
    std::lock_guard<std::mutex> lock(m);
    fired = true;
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(m);
  ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return fired; }));
  EXPECT_TRUE(op2::timer_service::disarm(id));  // true: already fired
}

TEST(TimerService, DisarmBeforeExpiryPreventsTheFire) {
  std::atomic<bool> fired{false};
  const auto id = op2::timer_service::arm(250ms, [&] { fired = true; });
  EXPECT_FALSE(op2::timer_service::disarm(id));  // false: never fired
  std::this_thread::sleep_for(400ms);
  EXPECT_FALSE(fired.load());
}

TEST(TimerService, DisarmedTimersLeaveNoResidue) {
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(op2::timer_service::arm(10min, [] {}));
  }
  EXPECT_GE(op2::timer_service::armed_count(), 64u);
  for (const auto id : ids) {
    EXPECT_FALSE(op2::timer_service::disarm(id));
  }
  // Disarm drops the map entry immediately; the heap entries are reaped
  // lazily, but armed_count reflects live timers only.
  EXPECT_LT(op2::timer_service::armed_count(), 64u);
}

TEST(TimerService, TimersFireInDeadlineOrderNotArmOrder) {
  std::mutex m;
  std::condition_variable cv;
  std::vector<int> order;
  auto push = [&](int tag) {
    std::lock_guard<std::mutex> lock(m);
    order.push_back(tag);
    cv.notify_all();
  };
  const auto slow = op2::timer_service::arm(120ms, [&] { push(2); });
  const auto fast = op2::timer_service::arm(20ms, [&] { push(1); });
  std::unique_lock<std::mutex> lock(m);
  ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return order.size() == 2; }));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  lock.unlock();
  EXPECT_TRUE(op2::timer_service::disarm(slow));
  EXPECT_TRUE(op2::timer_service::disarm(fast));
}

TEST(TimerService, OneThreadServicesEveryDeadline) {
  // Arm a burst of concurrent timers — under the old per-attempt design
  // each would have spawned its own thread.
  std::atomic<int> fired{0};
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 32; ++i) {
    ids.push_back(op2::timer_service::arm(
        std::chrono::milliseconds(5 + i % 7), [&] { fired += 1; }));
  }
  while (fired.load() < 32) {
    std::this_thread::sleep_for(5ms);
  }
  for (const auto id : ids) {
    EXPECT_TRUE(op2::timer_service::disarm(id));
  }
  EXPECT_EQ(op2::timer_service::threads_started(), 1u);
}

// --- ladder semantics must be unchanged on the shared timer -----------

void inc_kernel(const double* a, double* b) { b[0] += a[0]; }

class SharedTimerLadderTest : public ::testing::Test {
 protected:
  void TearDown() override {
    op2::fault_injector::clear();
    op2::profiling::enable(false);
    op2::profiling::reset();
    op2::finalize();
  }
};

TEST_F(SharedTimerLadderTest, DeadlineMissStillRidesTheLadder) {
  auto cfg = op2::make_config("hpx_foreach", 2, 16);
  cfg.on_failure.deadline_ms = 150;
  cfg.on_failure.ladder = true;
  op2::init(cfg);
  op2::profiling::enable(true);

  auto s = op2::op_decl_set(96, "s");
  std::vector<double> init(96);
  std::iota(init.begin(), init.end(), 1.0);
  auto a = op2::op_decl_dat<double>(s, 1, "double",
                                    std::span<const double>(init), "a");
  auto b = op2::op_decl_dat<double>(s, 1, "double", "b");

  op2::fault_injector::configure("timed:stall:at=1,stall_ms=60000");
  op2::op_par_loop(inc_kernel, "timed", s,
                   op2::op_arg_dat<double>(a, -1, op2::OP_ID, 1, op2::OP_READ),
                   op2::op_arg_dat<double>(b, -1, op2::OP_ID, 1, op2::OP_INC));

  const auto av = a.data<double>();
  const auto bv = b.data<double>();
  for (std::size_t i = 0; i < av.size(); ++i) {
    ASSERT_EQ(bv[i], av[i]) << "element " << i;
  }
  const auto prof = op2::profiling::snapshot().at("timed");
  EXPECT_GE(prof.deadline_misses, 1u);
  EXPECT_GE(prof.degradations, 1u);
  // Every deadline in the run was serviced by the one shared thread.
  EXPECT_EQ(op2::timer_service::threads_started(), 1u);
}

TEST_F(SharedTimerLadderTest, FiresWhileTheWholePoolIsStalled) {
  // The regression the dedicated thread exists for: a stalled attempt
  // may own every pool worker, so a pool-hosted timer could never fire.
  // With a ONE-worker pool, a single stalled chunk owns the entire
  // pool — the deadline must still fire (from the dedicated timer
  // thread) and the ladder must still heal the loop.
  auto cfg = op2::make_config("hpx_foreach", 1, 16);
  cfg.on_failure.deadline_ms = 100;
  cfg.on_failure.ladder = true;
  op2::init(cfg);
  op2::profiling::enable(true);

  auto s = op2::op_decl_set(256, "s");
  std::vector<double> init(256, 1.0);
  auto a = op2::op_decl_dat<double>(s, 1, "double",
                                    std::span<const double>(init), "a");
  auto b = op2::op_decl_dat<double>(s, 1, "double", "b");

  op2::fault_injector::configure("swamped:stall:at=1,stall_ms=60000");
  op2::op_par_loop(inc_kernel, "swamped", s,
                   op2::op_arg_dat<double>(a, -1, op2::OP_ID, 1, op2::OP_READ),
                   op2::op_arg_dat<double>(b, -1, op2::OP_ID, 1, op2::OP_INC));

  const auto av = a.data<double>();
  const auto bv = b.data<double>();
  for (std::size_t i = 0; i < av.size(); ++i) {
    ASSERT_EQ(bv[i], av[i]) << "element " << i;
  }
  EXPECT_GE(op2::profiling::snapshot().at("swamped").deadline_misses, 1u);
}

}  // namespace
