#include "airfoil/model_adapter.hpp"

#include <chrono>

#include "airfoil/kernels.hpp"

namespace airfoil {

namespace {

using clock = std::chrono::steady_clock;

double us_between(clock::time_point a, clock::time_point b, long n) {
  return std::chrono::duration<double, std::micro>(b - a).count() /
         static_cast<double>(n);
}

}  // namespace

kernel_costs measure_kernel_costs(sim& s, int repeats) {
  kernel_costs out;
  const int ncell = s.cells.size();
  const int nedge = s.edges.size();
  const int nbedge = s.bedges.size();

  auto x = s.p_x.data<double>();
  auto q = s.p_q.data<double>();
  auto qold = s.p_qold.data<double>();
  auto adt = s.p_adt.data<double>();
  auto res = s.p_res.data<double>();
  auto bound = s.p_bound.data<int>();
  const auto pcell = s.pcell.table();
  const auto pedge = s.pedge.table();
  const auto pecell = s.pecell.table();
  const auto pbedge = s.pbedge.table();
  const auto pbecell = s.pbecell.table();

  auto t0 = clock::now();
  for (int r = 0; r < repeats; ++r) {
    for (int c = 0; c < ncell; ++c) {
      save_soln(&q[4 * static_cast<std::size_t>(c)],
                &qold[4 * static_cast<std::size_t>(c)]);
    }
  }
  auto t1 = clock::now();
  out.save = us_between(t0, t1, static_cast<long>(ncell) * repeats);

  t0 = clock::now();
  for (int r = 0; r < repeats; ++r) {
    for (int c = 0; c < ncell; ++c) {
      const auto ci = static_cast<std::size_t>(c);
      adt_calc(&x[2 * static_cast<std::size_t>(pcell[4 * ci + 0])],
               &x[2 * static_cast<std::size_t>(pcell[4 * ci + 1])],
               &x[2 * static_cast<std::size_t>(pcell[4 * ci + 2])],
               &x[2 * static_cast<std::size_t>(pcell[4 * ci + 3])],
               &q[4 * ci], &adt[ci]);
    }
  }
  t1 = clock::now();
  out.adt = us_between(t0, t1, static_cast<long>(ncell) * repeats);

  t0 = clock::now();
  for (int r = 0; r < repeats; ++r) {
    for (int e = 0; e < nedge; ++e) {
      const auto ei = static_cast<std::size_t>(e);
      res_calc(&x[2 * static_cast<std::size_t>(pedge[2 * ei + 0])],
               &x[2 * static_cast<std::size_t>(pedge[2 * ei + 1])],
               &q[4 * static_cast<std::size_t>(pecell[2 * ei + 0])],
               &q[4 * static_cast<std::size_t>(pecell[2 * ei + 1])],
               &adt[static_cast<std::size_t>(pecell[2 * ei + 0])],
               &adt[static_cast<std::size_t>(pecell[2 * ei + 1])],
               &res[4 * static_cast<std::size_t>(pecell[2 * ei + 0])],
               &res[4 * static_cast<std::size_t>(pecell[2 * ei + 1])]);
    }
  }
  t1 = clock::now();
  out.res = us_between(t0, t1, static_cast<long>(nedge) * repeats);

  t0 = clock::now();
  for (int r = 0; r < repeats; ++r) {
    for (int e = 0; e < nbedge; ++e) {
      const auto ei = static_cast<std::size_t>(e);
      bres_calc(&x[2 * static_cast<std::size_t>(pbedge[2 * ei + 0])],
                &x[2 * static_cast<std::size_t>(pbedge[2 * ei + 1])],
                &q[4 * static_cast<std::size_t>(pbecell[ei])],
                &adt[static_cast<std::size_t>(pbecell[ei])],
                &res[4 * static_cast<std::size_t>(pbecell[ei])],
                &bound[ei]);
    }
  }
  t1 = clock::now();
  out.bres = us_between(t0, t1, static_cast<long>(nbedge) * repeats);

  double rms = 0.0;
  t0 = clock::now();
  for (int r = 0; r < repeats; ++r) {
    for (int c = 0; c < ncell; ++c) {
      const auto ci = static_cast<std::size_t>(c);
      update(&qold[4 * ci], &q[4 * ci], &res[4 * ci], &adt[ci], &rms);
    }
  }
  t1 = clock::now();
  out.update = us_between(t0, t1, static_cast<long>(ncell) * repeats);
  return out;
}

kernel_costs nominal_kernel_costs() {
  return kernel_costs{0.02, 0.08, 0.12, 0.10, 0.04};
}

kernel_costs measure_loop_costs(sim& s, int iters) {
  const bool was_enabled = op2::profiling::enabled();
  // Warm the prepared-loop caches first: the measured window should see
  // only steady-state replays, not the one-time capture (validation,
  // plan build, scratch allocation) of each loop's first invocation.
  run_classic(s, 1);
  reset_solution(s);
  op2::profiling::reset();
  op2::profiling::enable(true);
  run_classic(s, iters);
  const auto snap = op2::profiling::snapshot();
  op2::profiling::enable(was_enabled);
  op2::profiling::reset();
  reset_solution(s);

  const auto per_element = [&](const char* name, int set_size) {
    const auto it = snap.find(name);
    if (it == snap.end() || it->second.invocations == 0 || set_size == 0) {
      return 0.0;
    }
    return 1e6 * it->second.total_seconds /
           static_cast<double>(it->second.invocations) /
           static_cast<double>(set_size);
  };
  kernel_costs out;
  out.save = per_element("save_soln", s.cells.size());
  out.adt = per_element("adt_calc", s.cells.size());
  out.res = per_element("res_calc", s.edges.size());
  out.bres = per_element("bres_calc", s.bedges.size());
  out.update = per_element("update", s.cells.size());
  return out;
}

simsched::airfoil_shape extract_shape(const sim& s, const kernel_costs& costs,
                                      int block_size, int niter) {
  using simsched::airfoil_dat;

  // Real plans, identical to what op_par_loop would build.
  const auto direct_plan = [&](const op2::op_set& set) {
    return op2::build_plan(set, block_size, {});
  };
  const op2::op_plan save_plan = direct_plan(s.cells);
  const op2::op_plan adt_plan = direct_plan(s.cells);
  std::vector<op2::plan_indirection> res_conf = {
      {s.pecell, 0, s.p_res.id()}, {s.pecell, 1, s.p_res.id()}};
  const op2::op_plan res_plan = op2::build_plan(s.edges, block_size, res_conf);
  std::vector<op2::plan_indirection> bres_conf = {
      {s.pbecell, 0, s.p_res.id()}};
  const op2::op_plan bres_plan =
      op2::build_plan(s.bedges, block_size, bres_conf);
  const op2::op_plan update_plan = direct_plan(s.cells);

  simsched::airfoil_shape shape;
  shape.niter = niter;
  shape.save = simsched::make_loop_shape(
      "save_soln", save_plan, costs.save, /*direct=*/true,
      {airfoil_dat::dat_q}, {airfoil_dat::dat_qold});
  shape.adt = simsched::make_loop_shape(
      "adt_calc", adt_plan, costs.adt, /*direct=*/false,
      {airfoil_dat::dat_x, airfoil_dat::dat_q}, {airfoil_dat::dat_adt});
  shape.res = simsched::make_loop_shape(
      "res_calc", res_plan, costs.res, /*direct=*/false,
      {airfoil_dat::dat_x, airfoil_dat::dat_q, airfoil_dat::dat_adt},
      {airfoil_dat::dat_res});
  shape.bres = simsched::make_loop_shape(
      "bres_calc", bres_plan, costs.bres, /*direct=*/false,
      {airfoil_dat::dat_x, airfoil_dat::dat_q, airfoil_dat::dat_adt,
       airfoil_dat::dat_bound},
      {airfoil_dat::dat_res});
  shape.update = simsched::make_loop_shape(
      "update", update_plan, costs.update, /*direct=*/true,
      {airfoil_dat::dat_qold, airfoil_dat::dat_adt, airfoil_dat::dat_res},
      {airfoil_dat::dat_q, airfoil_dat::dat_res});
  return shape;
}

}  // namespace airfoil
