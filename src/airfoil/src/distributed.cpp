#include "airfoil/distributed.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "airfoil/kernels.hpp"

namespace airfoil {

namespace {

/// Exchange q: every ghost cell's state is overwritten by its owner's
/// current value (the MPI halo-exchange message, as a memcpy).
void exchange_q(dist_sim& d) {
  for (auto& rank : d.ranks) {
    auto q = rank.local.p_q.data<double>();
    for (const auto& g : rank.ghosts) {
      const auto src =
          d.ranks[static_cast<std::size_t>(g.owner_rank)].local.p_q
              .data<double>();
      for (int n = 0; n < 4; ++n) {
        q[static_cast<std::size_t>(4 * g.local_cell + n)] =
            src[static_cast<std::size_t>(4 * g.owner_local_cell + n)];
      }
    }
  }
}

/// Halo reduction: ghost residual contributions are added into the
/// owner's residual, then cleared locally (the MPI reduce message).
void reduce_res(dist_sim& d) {
  for (auto& rank : d.ranks) {
    auto res = rank.local.p_res.data<double>();
    for (const auto& g : rank.ghosts) {
      auto owner_res =
          d.ranks[static_cast<std::size_t>(g.owner_rank)].local.p_res
              .data<double>();
      for (int n = 0; n < 4; ++n) {
        owner_res[static_cast<std::size_t>(4 * g.owner_local_cell + n)] +=
            res[static_cast<std::size_t>(4 * g.local_cell + n)];
        res[static_cast<std::size_t>(4 * g.local_cell + n)] = 0.0;
      }
    }
  }
}

}  // namespace

dist_sim make_dist_sim(const op2::mesh& m, int nranks) {
  if (nranks <= 0) {
    throw std::invalid_argument("make_dist_sim: nranks must be >= 1");
  }
  const auto& cells = m.set("cells");
  const auto& pcell = m.map("pcell");
  const auto& pedge = m.map("pedge");
  const auto& pecell = m.map("pecell");
  const auto& pbedge = m.map("pbedge");
  const auto& pbecell = m.map("pbecell");
  const auto x = m.dat("p_x").data<double>();
  const auto bound = m.dat("p_bound").data<int>();
  const int ncell = cells.size();
  const int nedge = m.set("edges").size();
  const int nbedge = m.set("bedges").size();

  // RCB over cell centroids.
  std::vector<double> centroids(static_cast<std::size_t>(ncell) * 2, 0.0);
  for (int c = 0; c < ncell; ++c) {
    for (int k = 0; k < 4; ++k) {
      const auto node = static_cast<std::size_t>(pcell.at(c, k));
      centroids[static_cast<std::size_t>(2 * c)] += 0.25 * x[2 * node];
      centroids[static_cast<std::size_t>(2 * c + 1)] +=
          0.25 * x[2 * node + 1];
    }
  }
  const auto parts = op2::partition_rcb(centroids, nranks);

  dist_sim d;
  d.global_cells = ncell;
  d.ranks.resize(static_cast<std::size_t>(nranks));

  // Owned cell lists (global order) and global -> owner-local index.
  std::vector<std::vector<int>> owned(static_cast<std::size_t>(nranks));
  std::vector<int> owner_local_of(static_cast<std::size_t>(ncell));
  for (int c = 0; c < ncell; ++c) {
    auto& list = owned[static_cast<std::size_t>(parts.part_of[
        static_cast<std::size_t>(c)])];
    owner_local_of[static_cast<std::size_t>(c)] =
        static_cast<int>(list.size());
    list.push_back(c);
  }

  for (int r = 0; r < nranks; ++r) {
    auto& rank = d.ranks[static_cast<std::size_t>(r)];

    // Owned edges and the ghost cells they reach.
    std::vector<int> my_edges;
    std::vector<int> ghost_cells;
    for (int e = 0; e < nedge; ++e) {
      if (parts.part_of[static_cast<std::size_t>(pecell.at(e, 0))] != r) {
        continue;
      }
      my_edges.push_back(e);
      const int other = pecell.at(e, 1);
      if (parts.part_of[static_cast<std::size_t>(other)] != r) {
        ghost_cells.push_back(other);
      }
    }
    std::sort(ghost_cells.begin(), ghost_cells.end());
    ghost_cells.erase(std::unique(ghost_cells.begin(), ghost_cells.end()),
                      ghost_cells.end());

    std::vector<int> my_bedges;
    for (int e = 0; e < nbedge; ++e) {
      if (parts.part_of[static_cast<std::size_t>(pbecell.at(e, 0))] == r) {
        my_bedges.push_back(e);
      }
    }

    // Local cell numbering: owned first, then ghosts.
    rank.global_cell = owned[static_cast<std::size_t>(r)];
    rank.nowned = static_cast<int>(rank.global_cell.size());
    rank.global_cell.insert(rank.global_cell.end(), ghost_cells.begin(),
                            ghost_cells.end());
    std::unordered_map<int, int> local_of_cell;
    local_of_cell.reserve(rank.global_cell.size());
    for (std::size_t i = 0; i < rank.global_cell.size(); ++i) {
      local_of_cell.emplace(rank.global_cell[i], static_cast<int>(i));
    }
    for (const int g : ghost_cells) {
      rank.ghosts.push_back(
          {local_of_cell.at(g),
           parts.part_of[static_cast<std::size_t>(g)],
           owner_local_of[static_cast<std::size_t>(g)]});
    }

    // Local nodes: the corners of every local cell.
    std::vector<int> my_nodes;
    for (const int c : rank.global_cell) {
      for (int k = 0; k < 4; ++k) {
        my_nodes.push_back(pcell.at(c, k));
      }
    }
    std::sort(my_nodes.begin(), my_nodes.end());
    my_nodes.erase(std::unique(my_nodes.begin(), my_nodes.end()),
                   my_nodes.end());
    std::unordered_map<int, int> local_of_node;
    local_of_node.reserve(my_nodes.size());
    for (std::size_t i = 0; i < my_nodes.size(); ++i) {
      local_of_node.emplace(my_nodes[i], static_cast<int>(i));
    }

    // Assemble the local op2 mesh.
    op2::mesh lm;
    lm.sets.emplace("nodes", op2::op_decl_set(
                                 static_cast<int>(my_nodes.size()), "nodes"));
    lm.sets.emplace("cells",
                    op2::op_decl_set(
                        static_cast<int>(rank.global_cell.size()), "cells"));
    lm.sets.emplace("edges", op2::op_decl_set(
                                 static_cast<int>(my_edges.size()), "edges"));
    lm.sets.emplace("bedges",
                    op2::op_decl_set(static_cast<int>(my_bedges.size()),
                                     "bedges"));

    std::vector<int> lp;
    lp.reserve(rank.global_cell.size() * 4);
    for (const int c : rank.global_cell) {
      for (int k = 0; k < 4; ++k) {
        lp.push_back(local_of_node.at(pcell.at(c, k)));
      }
    }
    lm.maps.emplace("pcell",
                    op2::op_decl_map(lm.sets.at("cells"), lm.sets.at("nodes"),
                                     4, lp, "pcell"));
    lp.clear();
    for (const int e : my_edges) {
      lp.push_back(local_of_node.at(pedge.at(e, 0)));
      lp.push_back(local_of_node.at(pedge.at(e, 1)));
    }
    lm.maps.emplace("pedge",
                    op2::op_decl_map(lm.sets.at("edges"), lm.sets.at("nodes"),
                                     2, lp, "pedge"));
    lp.clear();
    for (const int e : my_edges) {
      lp.push_back(local_of_cell.at(pecell.at(e, 0)));
      lp.push_back(local_of_cell.at(pecell.at(e, 1)));
    }
    lm.maps.emplace("pecell",
                    op2::op_decl_map(lm.sets.at("edges"), lm.sets.at("cells"),
                                     2, lp, "pecell"));
    lp.clear();
    for (const int e : my_bedges) {
      lp.push_back(local_of_node.at(pbedge.at(e, 0)));
      lp.push_back(local_of_node.at(pbedge.at(e, 1)));
    }
    lm.maps.emplace("pbedge",
                    op2::op_decl_map(lm.sets.at("bedges"),
                                     lm.sets.at("nodes"), 2, lp, "pbedge"));
    lp.clear();
    for (const int e : my_bedges) {
      lp.push_back(local_of_cell.at(pbecell.at(e, 0)));
    }
    lm.maps.emplace("pbecell",
                    op2::op_decl_map(lm.sets.at("bedges"),
                                     lm.sets.at("cells"), 1, lp, "pbecell"));

    std::vector<double> lx;
    lx.reserve(my_nodes.size() * 2);
    for (const int n : my_nodes) {
      lx.push_back(x[static_cast<std::size_t>(2 * n)]);
      lx.push_back(x[static_cast<std::size_t>(2 * n + 1)]);
    }
    lm.dats.emplace("p_x", op2::op_decl_dat<double>(
                               lm.sets.at("nodes"), 2, "double",
                               std::span<const double>(lx), "p_x"));
    std::vector<int> lbound;
    lbound.reserve(my_bedges.size());
    for (const int e : my_bedges) {
      lbound.push_back(bound[static_cast<std::size_t>(e)]);
    }
    lm.dats.emplace("p_bound", op2::op_decl_dat<int>(
                                   lm.sets.at("bedges"), 1, "int",
                                   std::span<const int>(lbound), "p_bound"));

    rank.local = make_sim(std::move(lm));
  }
  return d;
}

run_result run_distributed(dist_sim& d, int niter) {
  using op2::op_arg_dat;
  using op2::op_arg_gbl;
  using op2::OP_ID;
  using op2::OP_INC;
  using op2::OP_READ;
  using op2::OP_RW;
  using op2::OP_WRITE;

  run_result out;
  out.rms_history.reserve(static_cast<std::size_t>(niter));
  const auto t0 = std::chrono::steady_clock::now();

  for (int iter = 0; iter < niter; ++iter) {
    exchange_q(d);
    for (auto& rank : d.ranks) {
      auto& s = rank.local;
      op2::op_par_loop(save_soln, "save_soln", s.cells,
                       op_arg_dat<double>(s.p_q, -1, OP_ID, 4, OP_READ),
                       op_arg_dat<double>(s.p_qold, -1, OP_ID, 4, OP_WRITE));
    }

    double rms = 0.0;
    for (int k = 0; k < 2; ++k) {
      if (k == 1) {
        exchange_q(d);
      }
      for (auto& rank : d.ranks) {
        auto& s = rank.local;
        op2::op_par_loop(adt_calc, "adt_calc", s.cells,
                         op_arg_dat<double>(s.p_x, 0, s.pcell, 2, OP_READ),
                         op_arg_dat<double>(s.p_x, 1, s.pcell, 2, OP_READ),
                         op_arg_dat<double>(s.p_x, 2, s.pcell, 2, OP_READ),
                         op_arg_dat<double>(s.p_x, 3, s.pcell, 2, OP_READ),
                         op_arg_dat<double>(s.p_q, -1, OP_ID, 4, OP_READ),
                         op_arg_dat<double>(s.p_adt, -1, OP_ID, 1, OP_WRITE));
        op2::op_par_loop(res_calc, "res_calc", s.edges,
                         op_arg_dat<double>(s.p_x, 0, s.pedge, 2, OP_READ),
                         op_arg_dat<double>(s.p_x, 1, s.pedge, 2, OP_READ),
                         op_arg_dat<double>(s.p_q, 0, s.pecell, 4, OP_READ),
                         op_arg_dat<double>(s.p_q, 1, s.pecell, 4, OP_READ),
                         op_arg_dat<double>(s.p_adt, 0, s.pecell, 1, OP_READ),
                         op_arg_dat<double>(s.p_adt, 1, s.pecell, 1, OP_READ),
                         op_arg_dat<double>(s.p_res, 0, s.pecell, 4, OP_INC),
                         op_arg_dat<double>(s.p_res, 1, s.pecell, 4, OP_INC));
        op2::op_par_loop(bres_calc, "bres_calc", s.bedges,
                         op_arg_dat<double>(s.p_x, 0, s.pbedge, 2, OP_READ),
                         op_arg_dat<double>(s.p_x, 1, s.pbedge, 2, OP_READ),
                         op_arg_dat<double>(s.p_q, 0, s.pbecell, 4, OP_READ),
                         op_arg_dat<double>(s.p_adt, 0, s.pbecell, 1,
                                            OP_READ),
                         op_arg_dat<double>(s.p_res, 0, s.pbecell, 4, OP_INC),
                         op_arg_dat<int>(s.p_bound, -1, OP_ID, 1, OP_READ));
      }
      reduce_res(d);
      rms = 0.0;
      for (auto& rank : d.ranks) {
        auto& s = rank.local;
        // Ghost cells see zero residual after the reduction, so they
        // contribute nothing to rms and their q is refreshed by the
        // next exchange.
        op2::op_par_loop(update, "update", s.cells,
                         op_arg_dat<double>(s.p_qold, -1, OP_ID, 4, OP_READ),
                         op_arg_dat<double>(s.p_q, -1, OP_ID, 4, OP_WRITE),
                         op_arg_dat<double>(s.p_res, -1, OP_ID, 4, OP_RW),
                         op_arg_dat<double>(s.p_adt, -1, OP_ID, 1, OP_READ),
                         op_arg_gbl<double>(&rms, 1, OP_INC));
      }
    }
    out.rms_history.push_back(
        std::sqrt(rms / static_cast<double>(d.global_cells)));
  }

  out.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  return out;
}

std::vector<double> gather_q(const dist_sim& d) {
  std::vector<double> q(static_cast<std::size_t>(d.global_cells) * 4, 0.0);
  for (const auto& rank : d.ranks) {
    const auto lq = rank.local.p_q.data<double>();
    for (int c = 0; c < rank.nowned; ++c) {
      const auto g = static_cast<std::size_t>(
          rank.global_cell[static_cast<std::size_t>(c)]);
      for (int n = 0; n < 4; ++n) {
        q[4 * g + static_cast<std::size_t>(n)] =
            lq[static_cast<std::size_t>(4 * c + n)];
      }
    }
  }
  return q;
}

}  // namespace airfoil
