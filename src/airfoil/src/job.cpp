#include "airfoil/job.hpp"

#include <cmath>
#include <stdexcept>

#include "airfoil/kernels.hpp"

namespace airfoil {

using op2::op_arg_dat;
using op2::op_arg_gbl;
using op2::OP_ID;
using op2::OP_INC;
using op2::OP_READ;
using op2::OP_RW;
using op2::OP_WRITE;

namespace {

void check_stop(const hpxlite::stop_token& stop) {
  if (stop.stop_requested()) {
    throw hpxlite::operation_cancelled("airfoil job cancelled");
  }
}

}  // namespace

job_output run_job(const job_params& params, job_workspace& workspace,
                   const hpxlite::stop_token& stop) {
  std::lock_guard<hpxlite::spinlock> serialise(workspace.lock);

  if (!workspace.state) {
    mesh_params mp;
    mp.imax = params.imax;
    mp.jmax = params.jmax;
    workspace.state = workspace.session.adopt(
        std::make_shared<sim>(make_sim(generate_mesh(mp))));
  }
  sim& s = *workspace.state;
  if (s.cells.size() != params.imax * params.jmax) {
    throw std::invalid_argument(
        "airfoil::run_job: workspace was built for a different mesh size");
  }

  // Every attempt starts from the pristine free-stream state, so a
  // retry after a corrupt-fault failure cannot inherit poisoned cells.
  reset_solution(s);

  job_output out;
  double rms = 0.0;
  for (int iter = 0; iter < params.niter; ++iter) {
    check_stop(stop);

    op2::op_par_loop(workspace.session.handle("save_soln"), save_soln,
                     "save_soln", s.cells,
                     op_arg_dat<double>(s.p_q, -1, OP_ID, 4, OP_READ),
                     op_arg_dat<double>(s.p_qold, -1, OP_ID, 4, OP_WRITE));
    out.loops += 1;

    for (int k = 0; k < 2; ++k) {
      check_stop(stop);
      rms = 0.0;
      op2::op_par_loop(workspace.session.handle("adt_calc"), adt_calc,
                       "adt_calc", s.cells,
                       op_arg_dat<double>(s.p_x, 0, s.pcell, 2, OP_READ),
                       op_arg_dat<double>(s.p_x, 1, s.pcell, 2, OP_READ),
                       op_arg_dat<double>(s.p_x, 2, s.pcell, 2, OP_READ),
                       op_arg_dat<double>(s.p_x, 3, s.pcell, 2, OP_READ),
                       op_arg_dat<double>(s.p_q, -1, OP_ID, 4, OP_READ),
                       op_arg_dat<double>(s.p_adt, -1, OP_ID, 1, OP_WRITE));

      op2::op_par_loop(workspace.session.handle("res_calc"), res_calc,
                       "res_calc", s.edges,
                       op_arg_dat<double>(s.p_x, 0, s.pedge, 2, OP_READ),
                       op_arg_dat<double>(s.p_x, 1, s.pedge, 2, OP_READ),
                       op_arg_dat<double>(s.p_q, 0, s.pecell, 4, OP_READ),
                       op_arg_dat<double>(s.p_q, 1, s.pecell, 4, OP_READ),
                       op_arg_dat<double>(s.p_adt, 0, s.pecell, 1, OP_READ),
                       op_arg_dat<double>(s.p_adt, 1, s.pecell, 1, OP_READ),
                       op_arg_dat<double>(s.p_res, 0, s.pecell, 4, OP_INC),
                       op_arg_dat<double>(s.p_res, 1, s.pecell, 4, OP_INC));

      op2::op_par_loop(workspace.session.handle("bres_calc"), bres_calc,
                       "bres_calc", s.bedges,
                       op_arg_dat<double>(s.p_x, 0, s.pbedge, 2, OP_READ),
                       op_arg_dat<double>(s.p_x, 1, s.pbedge, 2, OP_READ),
                       op_arg_dat<double>(s.p_q, 0, s.pbecell, 4, OP_READ),
                       op_arg_dat<double>(s.p_adt, 0, s.pbecell, 1, OP_READ),
                       op_arg_dat<double>(s.p_res, 0, s.pbecell, 4, OP_INC),
                       op_arg_dat<int>(s.p_bound, -1, OP_ID, 1, OP_READ));

      op2::op_par_loop(workspace.session.handle("update"), update, "update",
                       s.cells,
                       op_arg_dat<double>(s.p_qold, -1, OP_ID, 4, OP_READ),
                       op_arg_dat<double>(s.p_q, -1, OP_ID, 4, OP_WRITE),
                       op_arg_dat<double>(s.p_res, -1, OP_ID, 4, OP_RW),
                       op_arg_dat<double>(s.p_adt, -1, OP_ID, 1, OP_READ),
                       op_arg_gbl<double>(&rms, 1, OP_INC));
      out.loops += 4;
    }
    out.iterations = iter + 1;
  }

  out.final_rms = std::sqrt(rms / static_cast<double>(s.cells.size()));
  out.checksum = solution_checksum(s);
  if (!std::isfinite(out.final_rms) || !std::isfinite(out.checksum)) {
    throw std::runtime_error(
        "airfoil::run_job: non-finite solution (unhealed corruption)");
  }
  if (params.keep_solution) {
    auto q = s.p_q.data<double>();
    out.solution.assign(q.begin(), q.end());
  }
  return out;
}

}  // namespace airfoil
