#include "airfoil/solver.hpp"

#include <chrono>
#include <cmath>

#include "airfoil/kernels.hpp"
#include "airfoil/sharded.hpp"

namespace airfoil {

using op2::op_arg_dat;
using op2::op_arg_dat1;
using op2::op_arg_gbl;
using op2::op_arg_gbl1;
using op2::OP_ID;
using op2::OP_INC;
using op2::OP_READ;
using op2::OP_RW;
using op2::OP_WRITE;

sim make_sim(op2::mesh m) {
  sim s;
  s.nodes = m.set("nodes");
  s.cells = m.set("cells");
  s.edges = m.set("edges");
  s.bedges = m.set("bedges");
  s.pcell = m.map("pcell");
  s.pedge = m.map("pedge");
  s.pecell = m.map("pecell");
  s.pbedge = m.map("pbedge");
  s.pbecell = m.map("pbecell");
  s.p_x = m.dat("p_x");
  s.p_bound = m.dat("p_bound");
  s.mesh = std::move(m);

  s.p_q = op2::op_decl_dat<double>(s.cells, 4, "double", "p_q");
  s.p_qold = op2::op_decl_dat<double>(s.cells, 4, "double", "p_qold");
  s.p_adt = op2::op_decl_dat<double>(s.cells, 1, "double", "p_adt");
  s.p_res = op2::op_decl_dat<double>(s.cells, 4, "double", "p_res");
  reset_solution(s);
  return s;
}

void reset_solution(sim& s) {
  const auto& qinf = constants().qinf;
  auto q = s.p_q.data<double>();
  for (int c = 0; c < s.cells.size(); ++c) {
    for (int n = 0; n < 4; ++n) {
      q[static_cast<std::size_t>(4 * c + n)] = qinf[static_cast<std::size_t>(n)];
    }
  }
  auto qold = s.p_qold.data<double>();
  std::fill(qold.begin(), qold.end(), 0.0);
  auto adt = s.p_adt.data<double>();
  std::fill(adt.begin(), adt.end(), 0.0);
  auto res = s.p_res.data<double>();
  std::fill(res.begin(), res.end(), 0.0);
}

namespace {

double finish_rms(double rms, int ncell) {
  return std::sqrt(rms / static_cast<double>(ncell));
}

}  // namespace

// ---------------------------------------------------------------------
// Classic API (unchanged Airfoil.cpp, Fig 4): synchronous loops.  Each
// call site carries a static op2::loop_handle, so iteration 1 captures
// the five launch descriptors and iterations 2..N replay them
// allocation-free (the prepared-loop pipeline).
//
// Cross-loop fusion: the stage-1 `update` and the NEXT iteration's
// `save_soln` are adjacent direct loops over cells (nothing runs
// between them), so they fuse into one element-contiguous launch —
// q and qold are touched once per element instead of twice per
// iteration.  The standalone save_soln survives only for iteration 0
// (no preceding update) and the standalone update for the final
// iteration (no following save).  OP2_FUSE=off runs the members
// unfused and bit-identically.

run_result run_classic(sim& s, int niter) {
  run_result out;
  out.rms_history.reserve(static_cast<std::size_t>(niter));
  const auto t0 = std::chrono::steady_clock::now();

  for (int iter = 0; iter < niter; ++iter) {
    if (iter == 0) {
      static op2::loop_handle h_save;
      op2::op_par_loop(h_save, save_soln, "save_soln", s.cells,
                       op_arg_dat<double>(s.p_q, -1, OP_ID, 4, OP_READ),
                       op_arg_dat<double>(s.p_qold, -1, OP_ID, 4, OP_WRITE));
    }

    double rms = 0.0;
    for (int k = 0; k < 2; ++k) {
      rms = 0.0;
      static op2::loop_handle h_adt;
      op2::op_par_loop(h_adt, adt_calc, "adt_calc", s.cells,
                       op_arg_dat<double>(s.p_x, 0, s.pcell, 2, OP_READ),
                       op_arg_dat<double>(s.p_x, 1, s.pcell, 2, OP_READ),
                       op_arg_dat<double>(s.p_x, 2, s.pcell, 2, OP_READ),
                       op_arg_dat<double>(s.p_x, 3, s.pcell, 2, OP_READ),
                       op_arg_dat<double>(s.p_q, -1, OP_ID, 4, OP_READ),
                       op_arg_dat<double>(s.p_adt, -1, OP_ID, 1, OP_WRITE));

      static op2::loop_handle h_res;
      op2::op_par_loop(h_res, res_calc, "res_calc", s.edges,
                       op_arg_dat<double>(s.p_x, 0, s.pedge, 2, OP_READ),
                       op_arg_dat<double>(s.p_x, 1, s.pedge, 2, OP_READ),
                       op_arg_dat<double>(s.p_q, 0, s.pecell, 4, OP_READ),
                       op_arg_dat<double>(s.p_q, 1, s.pecell, 4, OP_READ),
                       op_arg_dat<double>(s.p_adt, 0, s.pecell, 1, OP_READ),
                       op_arg_dat<double>(s.p_adt, 1, s.pecell, 1, OP_READ),
                       op_arg_dat<double>(s.p_res, 0, s.pecell, 4, OP_INC),
                       op_arg_dat<double>(s.p_res, 1, s.pecell, 4, OP_INC));

      static op2::loop_handle h_bres;
      op2::op_par_loop(h_bres, bres_calc, "bres_calc", s.bedges,
                       op_arg_dat<double>(s.p_x, 0, s.pbedge, 2, OP_READ),
                       op_arg_dat<double>(s.p_x, 1, s.pbedge, 2, OP_READ),
                       op_arg_dat<double>(s.p_q, 0, s.pbecell, 4, OP_READ),
                       op_arg_dat<double>(s.p_adt, 0, s.pbecell, 1, OP_READ),
                       op_arg_dat<double>(s.p_res, 0, s.pbecell, 4, OP_INC),
                       op_arg_dat<int>(s.p_bound, -1, OP_ID, 1, OP_READ));

      if (k == 1 && iter + 1 < niter) {
        // update + next iteration's save_soln, one traversal of cells.
        static op2::fused_handle h_fused;
        op2::op_par_loop_fused(
            h_fused, s.cells,
            op2::fuse_loop(
                update, "update",
                op_arg_dat<double>(s.p_qold, -1, OP_ID, 4, OP_READ),
                op_arg_dat<double>(s.p_q, -1, OP_ID, 4, OP_WRITE),
                op_arg_dat<double>(s.p_res, -1, OP_ID, 4, OP_RW),
                op_arg_dat<double>(s.p_adt, -1, OP_ID, 1, OP_READ),
                op_arg_gbl<double>(&rms, 1, OP_INC)),
            op2::fuse_loop(
                save_soln, "save_soln",
                op_arg_dat<double>(s.p_q, -1, OP_ID, 4, OP_READ),
                op_arg_dat<double>(s.p_qold, -1, OP_ID, 4, OP_WRITE)));
      } else {
        static op2::loop_handle h_update;
        op2::op_par_loop(h_update, update, "update", s.cells,
                         op_arg_dat<double>(s.p_qold, -1, OP_ID, 4, OP_READ),
                         op_arg_dat<double>(s.p_q, -1, OP_ID, 4, OP_WRITE),
                         op_arg_dat<double>(s.p_res, -1, OP_ID, 4, OP_RW),
                         op_arg_dat<double>(s.p_adt, -1, OP_ID, 1, OP_READ),
                         op_arg_gbl<double>(&rms, 1, OP_INC));
      }
    }
    out.rms_history.push_back(finish_rms(rms, s.cells.size()));
  }

  out.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  return out;
}

// ---------------------------------------------------------------------
// §III-A2 (Fig 10): loops return futures; the driver places the .get()
// calls required by the data dependencies.  save_soln overlaps with the
// first adt_calc; res/bres serialise on their shared OP_INC target.

run_result run_async(sim& s, int niter) {
  run_result out;
  out.rms_history.reserve(static_cast<std::size_t>(niter));
  const auto t0 = std::chrono::steady_clock::now();

  // Iteration 0's save_soln is the only standalone one (see
  // run_classic): later saves run fused with the previous iteration's
  // stage-1 update, whose future the driver had to .get() immediately
  // anyway (rms feeds the residual history), so the fused synchronous
  // call costs no overlap.
  hpxlite::future<void> f_save;

  for (int iter = 0; iter < niter; ++iter) {
    if (iter == 0) {
      // new_data1: save_soln — direct loop wrapped in async (Fig 8);
      // nothing in stage k=0 before update needs qold, so it overlaps
      // with adt_calc and the flux loops.
      static op2::loop_handle h_save;
      f_save = op2::op_par_loop_async(
          h_save, save_soln, "save_soln", s.cells,
          op_arg_dat<double>(s.p_q, -1, OP_ID, 4, OP_READ),
          op_arg_dat<double>(s.p_qold, -1, OP_ID, 4, OP_WRITE));
    }

    double rms = 0.0;
    for (int k = 0; k < 2; ++k) {
      rms = 0.0;
      // new_data2: adt_calc — indirect loop via for_each(par(task)).
      static op2::loop_handle h_adt;
      auto f_adt = op2::op_par_loop_async(
          h_adt, adt_calc, "adt_calc", s.cells,
          op_arg_dat<double>(s.p_x, 0, s.pcell, 2, OP_READ),
          op_arg_dat<double>(s.p_x, 1, s.pcell, 2, OP_READ),
          op_arg_dat<double>(s.p_x, 2, s.pcell, 2, OP_READ),
          op_arg_dat<double>(s.p_x, 3, s.pcell, 2, OP_READ),
          op_arg_dat<double>(s.p_q, -1, OP_ID, 4, OP_READ),
          op_arg_dat<double>(s.p_adt, -1, OP_ID, 1, OP_WRITE));
      f_adt.get();  // res_calc reads p_adt (Fig 10's new_data2.get())

      static op2::loop_handle h_res;
      auto f_res = op2::op_par_loop_async(
          h_res, res_calc, "res_calc", s.edges,
          op_arg_dat<double>(s.p_x, 0, s.pedge, 2, OP_READ),
          op_arg_dat<double>(s.p_x, 1, s.pedge, 2, OP_READ),
          op_arg_dat<double>(s.p_q, 0, s.pecell, 4, OP_READ),
          op_arg_dat<double>(s.p_q, 1, s.pecell, 4, OP_READ),
          op_arg_dat<double>(s.p_adt, 0, s.pecell, 1, OP_READ),
          op_arg_dat<double>(s.p_adt, 1, s.pecell, 1, OP_READ),
          op_arg_dat<double>(s.p_res, 0, s.pecell, 4, OP_INC),
          op_arg_dat<double>(s.p_res, 1, s.pecell, 4, OP_INC));
      // bres_calc also increments p_res: unlike the paper's Fig 10 we
      // serialise the two flux loops (launching both concurrently races
      // on the boundary cells' residuals).
      f_res.get();

      static op2::loop_handle h_bres;
      auto f_bres = op2::op_par_loop_async(
          h_bres, bres_calc, "bres_calc", s.bedges,
          op_arg_dat<double>(s.p_x, 0, s.pbedge, 2, OP_READ),
          op_arg_dat<double>(s.p_x, 1, s.pbedge, 2, OP_READ),
          op_arg_dat<double>(s.p_q, 0, s.pbecell, 4, OP_READ),
          op_arg_dat<double>(s.p_adt, 0, s.pbecell, 1, OP_READ),
          op_arg_dat<double>(s.p_res, 0, s.pbecell, 4, OP_INC),
          op_arg_dat<int>(s.p_bound, -1, OP_ID, 1, OP_READ));
      f_bres.get();
      if (k == 0 && iter == 0) {
        f_save.get();  // update reads p_qold (Fig 10's new_data1.get())
      }

      if (k == 1 && iter + 1 < niter) {
        // Fused update + next iteration's save_soln, synchronous: the
        // unfused variant's f_update.get() was immediate anyway.
        static op2::fused_handle h_fused;
        op2::op_par_loop_fused(
            h_fused, s.cells,
            op2::fuse_loop(
                update, "update",
                op_arg_dat<double>(s.p_qold, -1, OP_ID, 4, OP_READ),
                op_arg_dat<double>(s.p_q, -1, OP_ID, 4, OP_WRITE),
                op_arg_dat<double>(s.p_res, -1, OP_ID, 4, OP_RW),
                op_arg_dat<double>(s.p_adt, -1, OP_ID, 1, OP_READ),
                op_arg_gbl<double>(&rms, 1, OP_INC)),
            op2::fuse_loop(
                save_soln, "save_soln",
                op_arg_dat<double>(s.p_q, -1, OP_ID, 4, OP_READ),
                op_arg_dat<double>(s.p_qold, -1, OP_ID, 4, OP_WRITE)));
      } else {
        static op2::loop_handle h_update;
        auto f_update = op2::op_par_loop_async(
            h_update, update, "update", s.cells,
            op_arg_dat<double>(s.p_qold, -1, OP_ID, 4, OP_READ),
            op_arg_dat<double>(s.p_q, -1, OP_ID, 4, OP_WRITE),
            op_arg_dat<double>(s.p_res, -1, OP_ID, 4, OP_RW),
            op_arg_dat<double>(s.p_adt, -1, OP_ID, 1, OP_READ),
            op_arg_gbl<double>(&rms, 1, OP_INC));
        f_update.get();  // next adt_calc reads p_q; rms needed below
      }
    }
    out.rms_history.push_back(finish_rms(rms, s.cells.size()));
  }

  out.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  return out;
}

// ---------------------------------------------------------------------
// §III-B (Fig 14): modified API.  The driver launches every loop of
// every iteration without blocking; dependencies (including the
// res/bres write-after-write on p_res) are derived automatically from
// the argument futures.  rms gets one slot per stage so the driver
// never has to wait just to reset an accumulator.

run_result run_dataflow(sim& s, int niter) {
  run_result out;
  out.rms_history.reserve(static_cast<std::size_t>(niter));
  const auto t0 = std::chrono::steady_clock::now();

  op2::op_dat_df q(s.p_q), qold(s.p_qold), adt(s.p_adt), res(s.p_res);
  op2::op_dat_df x(s.p_x), bound(s.p_bound);

  // One rms accumulator per (iteration, stage): the paper's data[t]
  // pattern applied to the reduction target.
  std::vector<double> rms(static_cast<std::size_t>(niter) * 2, 0.0);
  std::vector<hpxlite::shared_future<void>> stage_done(
      static_cast<std::size_t>(niter) * 2);

  for (int iter = 0; iter < niter; ++iter) {
    // Iteration 0 only: later saves fuse into the previous iteration's
    // stage-1 update node (one dataflow node, one op-state, one fire
    // for both loops — see the fused submission below).
    if (iter == 0) {
      op2::op_par_loop(save_soln, "save_soln", s.cells,
                       op_arg_dat1<double>(q, -1, OP_ID, 4, OP_READ),
                       op_arg_dat1<double>(qold, -1, OP_ID, 4, OP_WRITE));
    }

    for (int k = 0; k < 2; ++k) {
      op2::op_par_loop(adt_calc, "adt_calc", s.cells,
                       op_arg_dat1<double>(x, 0, s.pcell, 2, OP_READ),
                       op_arg_dat1<double>(x, 1, s.pcell, 2, OP_READ),
                       op_arg_dat1<double>(x, 2, s.pcell, 2, OP_READ),
                       op_arg_dat1<double>(x, 3, s.pcell, 2, OP_READ),
                       op_arg_dat1<double>(q, -1, OP_ID, 4, OP_READ),
                       op_arg_dat1<double>(adt, -1, OP_ID, 1, OP_WRITE));

      op2::op_par_loop(res_calc, "res_calc", s.edges,
                       op_arg_dat1<double>(x, 0, s.pedge, 2, OP_READ),
                       op_arg_dat1<double>(x, 1, s.pedge, 2, OP_READ),
                       op_arg_dat1<double>(q, 0, s.pecell, 4, OP_READ),
                       op_arg_dat1<double>(q, 1, s.pecell, 4, OP_READ),
                       op_arg_dat1<double>(adt, 0, s.pecell, 1, OP_READ),
                       op_arg_dat1<double>(adt, 1, s.pecell, 1, OP_READ),
                       op_arg_dat1<double>(res, 0, s.pecell, 4, OP_INC),
                       op_arg_dat1<double>(res, 1, s.pecell, 4, OP_INC));

      op2::op_par_loop(bres_calc, "bres_calc", s.bedges,
                       op_arg_dat1<double>(x, 0, s.pbedge, 2, OP_READ),
                       op_arg_dat1<double>(x, 1, s.pbedge, 2, OP_READ),
                       op_arg_dat1<double>(q, 0, s.pbecell, 4, OP_READ),
                       op_arg_dat1<double>(adt, 0, s.pbecell, 1, OP_READ),
                       op_arg_dat1<double>(res, 0, s.pbecell, 4, OP_INC),
                       op_arg_dat1<int>(bound, -1, OP_ID, 1, OP_READ));

      const auto slot = static_cast<std::size_t>(2 * iter + k);
      if (k == 1 && iter + 1 < niter) {
        static op2::fused_handle h_fused;
        stage_done[slot] = op2::op_par_loop_fused(
            h_fused, s.cells,
            op2::fuse_loop(
                update, "update",
                op_arg_dat1<double>(qold, -1, OP_ID, 4, OP_READ),
                op_arg_dat1<double>(q, -1, OP_ID, 4, OP_WRITE),
                op_arg_dat1<double>(res, -1, OP_ID, 4, OP_RW),
                op_arg_dat1<double>(adt, -1, OP_ID, 1, OP_READ),
                op_arg_gbl1<double>(&rms[slot], 1, OP_INC)),
            op2::fuse_loop(
                save_soln, "save_soln",
                op_arg_dat1<double>(q, -1, OP_ID, 4, OP_READ),
                op_arg_dat1<double>(qold, -1, OP_ID, 4, OP_WRITE)));
      } else {
        stage_done[slot] = op2::op_par_loop(
            update, "update", s.cells,
            op_arg_dat1<double>(qold, -1, OP_ID, 4, OP_READ),
            op_arg_dat1<double>(q, -1, OP_ID, 4, OP_WRITE),
            op_arg_dat1<double>(res, -1, OP_ID, 4, OP_RW),
            op_arg_dat1<double>(adt, -1, OP_ID, 1, OP_READ),
            op_arg_gbl1<double>(&rms[slot], 1, OP_INC));
      }
    }
  }

  // Drain the tree: the final get()s of the application driver.  get()
  // (not wait()) so a loop that exhausted its failure_policy surfaces
  // its op2::loop_error here instead of vanishing into an abandoned
  // future.
  q.get();
  qold.get();
  adt.get();
  res.get();
  for (int iter = 0; iter < niter; ++iter) {
    const auto slot = static_cast<std::size_t>(2 * iter + 1);
    stage_done[slot].get();
    out.rms_history.push_back(
        finish_rms(rms[slot], s.cells.size()));
  }

  out.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  return out;
}

run_result run_with_backend(sim& s, int niter,
                            const std::string& backend_name) {
  const auto caps =
      op2::backend_registry::shared(backend_name).capabilities();
  if (caps.sharded) {
    return run_sharded(s, niter);
  }
  if (caps.dataflow_api) {
    return run_dataflow(s, niter);
  }
  if (caps.asynchronous) {
    return run_async(s, niter);
  }
  return run_classic(s, niter);
}

run_result run_with_backend(sim& s, int niter) {
  return run_with_backend(s, niter, op2::current_backend_name());
}

double solution_checksum(const sim& s) {
  double sum = 0.0;
  for (const double v : s.p_q.data<double>()) {
    sum += v;
  }
  return sum;
}

}  // namespace airfoil
