#include "airfoil/sharded.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "airfoil/kernels.hpp"
#include "hpxlite/async.hpp"
#include "op2/runtime.hpp"

namespace airfoil {

namespace {

/// Adds the staged edge fluxes into the residual in ascending GLOBAL
/// edge order, skipping halo-cell targets (their owner computes the
/// same flux from the same bits).  Per owned cell this replays exactly
/// the sequential accumulation sequence: every incident edge is local
/// (edges follow any owned cell), the global order is preserved by
/// edge_apply, and within one edge cell1 is bumped before cell2, as
/// res_calc does.
void apply_res_stage(shard_domain& sh) {
  auto res = sh.local.p_res.data<double>();
  const auto stage = sh.p_res_stage.data<double>();
  const auto& pecell = sh.local.pecell;
  for (const int l : sh.edge_apply) {
    const int c1 = pecell.at(l, 0);
    const int c2 = pecell.at(l, 1);
    if (c1 < sh.nowned) {
      for (int n = 0; n < 4; ++n) {
        res[static_cast<std::size_t>(4 * c1 + n)] +=
            stage[static_cast<std::size_t>(8 * l + n)];
      }
    }
    if (c2 < sh.nowned) {
      for (int n = 0; n < 4; ++n) {
        res[static_cast<std::size_t>(4 * c2 + n)] +=
            stage[static_cast<std::size_t>(8 * l + 4 + n)];
      }
    }
  }
}

/// Boundary-edge flavour: local bedges are already in ascending global
/// order and their cell is always owned.  Wall edges staged +0.0 for
/// components 0/3, a bitwise no-op on a residual (see bres_calc_stage).
void apply_bres_stage(shard_domain& sh) {
  auto res = sh.local.p_res.data<double>();
  const auto stage = sh.p_bres_stage.data<double>();
  const auto& pbecell = sh.local.pbecell;
  const int nbedge = sh.local.bedges.size();
  for (int e = 0; e < nbedge; ++e) {
    const int c = pbecell.at(e, 0);
    for (int n = 0; n < 4; ++n) {
      res[static_cast<std::size_t>(4 * c + n)] +=
          stage[static_cast<std::size_t>(4 * e + n)];
    }
  }
}

/// One shard's share of one RK stage (optionally preceded by
/// save_soln).  Runs on a worker task; the shard_scopes install the
/// iterate windows and the halo fence the erased loop closures clamp
/// and gate on — under hpx_shard the interior spans run while the
/// exchange is still in flight.
///
/// With fuse_next_save, the closing update additionally absorbs the
/// NEXT iteration's save_soln as a fused launch within the owned span.
/// Hoisting the save ahead of the intervening halo exchange is legal:
/// save_soln touches only owned q (read) and owned qold (write), while
/// the exchange reads owned q and writes halo q — disjoint from qold
/// and read-read on q.  Fusion never crosses the fence itself: both
/// members run under the same fence-free owned_ctx, and the prepared
/// entry re-validates the shard window on every replay.
void run_stage(shard_sim& d, shard_domain& sh, bool with_save,
               bool fuse_next_save) {
  using op2::op_arg_dat;
  using op2::op_arg_gbl;
  using op2::OP_ID;
  using op2::OP_INC;
  using op2::OP_READ;
  using op2::OP_RW;
  using op2::OP_WRITE;

  auto& s = sh.local;
  const int nlocal_cells = s.cells.size();
  const int nlocal_edges = s.edges.size();
  const int nlocal_bedges = s.bedges.size();
  op2::shard_fence& fence = d.xq->fence(sh.shard);

  // Owned-only window for the direct loops; no fence (they never read
  // the halo, so they overlap the in-flight exchange).
  const op2::shard_context owned_ctx{true, sh.shard, sh.nowned, sh.nowned,
                                     nullptr};
  // All local cells, gate when crossing into the halo suffix.
  const op2::shard_context cells_ctx{true, sh.shard, sh.nowned, nlocal_cells,
                                     &fence};
  // All local edges, gate when crossing into the boundary suffix.
  const op2::shard_context edges_ctx{true, sh.shard, sh.interior_edges,
                                     nlocal_edges, &fence};
  // bedges never touch the halo: full window, no fence.
  const op2::shard_context bedges_ctx{true, sh.shard, nlocal_bedges,
                                      nlocal_bedges, nullptr};

  if (with_save) {
    op2::shard_scope scope(owned_ctx);
    op2::op_par_loop(save_soln, sh.n_save.c_str(), s.cells,
                     op_arg_dat<double>(s.p_q, -1, OP_ID, 4, OP_READ),
                     op_arg_dat<double>(s.p_qold, -1, OP_ID, 4, OP_WRITE));
  }
  {
    // Redundant adt compute on halo cells (the suffix) replaces an adt
    // exchange — adt is a pure function of x and the freshly-exchanged
    // q, so the replica is bit-identical to the owner's.
    op2::shard_scope scope(cells_ctx);
    op2::op_par_loop(adt_calc, sh.n_adt.c_str(), s.cells,
                     op_arg_dat<double>(s.p_x, 0, s.pcell, 2, OP_READ),
                     op_arg_dat<double>(s.p_x, 1, s.pcell, 2, OP_READ),
                     op_arg_dat<double>(s.p_x, 2, s.pcell, 2, OP_READ),
                     op_arg_dat<double>(s.p_x, 3, s.pcell, 2, OP_READ),
                     op_arg_dat<double>(s.p_q, -1, OP_ID, 4, OP_READ),
                     op_arg_dat<double>(s.p_adt, -1, OP_ID, 1, OP_WRITE));
  }
  {
    // Direct OP_WRITE into the per-edge stage slots: conflict-free, so
    // hpx_shard splits it interior/boundary around the fence.
    op2::shard_scope scope(edges_ctx);
    op2::op_par_loop(res_calc_stage, sh.n_res.c_str(), s.edges,
                     op_arg_dat<double>(s.p_x, 0, s.pedge, 2, OP_READ),
                     op_arg_dat<double>(s.p_x, 1, s.pedge, 2, OP_READ),
                     op_arg_dat<double>(s.p_q, 0, s.pecell, 4, OP_READ),
                     op_arg_dat<double>(s.p_q, 1, s.pecell, 4, OP_READ),
                     op_arg_dat<double>(s.p_adt, 0, s.pecell, 1, OP_READ),
                     op_arg_dat<double>(s.p_adt, 1, s.pecell, 1, OP_READ),
                     op_arg_dat<double>(sh.p_res_stage, -1, OP_ID, 8,
                                        OP_WRITE));
  }
  {
    op2::shard_scope scope(bedges_ctx);
    op2::op_par_loop(bres_calc_stage, sh.n_bres.c_str(), s.bedges,
                     op_arg_dat<double>(s.p_x, 0, s.pbedge, 2, OP_READ),
                     op_arg_dat<double>(s.p_x, 1, s.pbedge, 2, OP_READ),
                     op_arg_dat<double>(s.p_q, 0, s.pbecell, 4, OP_READ),
                     op_arg_dat<double>(s.p_adt, 0, s.pbecell, 1, OP_READ),
                     op_arg_dat<double>(sh.p_bres_stage, -1, OP_ID, 4,
                                        OP_WRITE),
                     op_arg_dat<int>(s.p_bound, -1, OP_ID, 1, OP_READ));
  }
  apply_res_stage(sh);
  apply_bres_stage(sh);

  sh.rms = 0.0;
  {
    op2::shard_scope scope(owned_ctx);
    if (fuse_next_save) {
      // One handle serves every shard: the per-shard loop names and
      // owned sets make per-shard entries in the fused cache (capacity
      // 8; more shards than that recapture — correct, just colder).
      static op2::fused_handle h_fused;
      op2::op_par_loop_fused(
          h_fused, s.cells,
          op2::fuse_loop(
              update, sh.n_update.c_str(),
              op_arg_dat<double>(s.p_qold, -1, OP_ID, 4, OP_READ),
              op_arg_dat<double>(s.p_q, -1, OP_ID, 4, OP_WRITE),
              op_arg_dat<double>(s.p_res, -1, OP_ID, 4, OP_RW),
              op_arg_dat<double>(s.p_adt, -1, OP_ID, 1, OP_READ),
              op_arg_gbl<double>(&sh.rms, 1, OP_INC)),
          op2::fuse_loop(
              save_soln, sh.n_save.c_str(),
              op_arg_dat<double>(s.p_q, -1, OP_ID, 4, OP_READ),
              op_arg_dat<double>(s.p_qold, -1, OP_ID, 4, OP_WRITE)));
    } else {
      op2::op_par_loop(update, sh.n_update.c_str(), s.cells,
                       op_arg_dat<double>(s.p_qold, -1, OP_ID, 4, OP_READ),
                       op_arg_dat<double>(s.p_q, -1, OP_ID, 4, OP_WRITE),
                       op_arg_dat<double>(s.p_res, -1, OP_ID, 4, OP_RW),
                       op_arg_dat<double>(s.p_adt, -1, OP_ID, 1, OP_READ),
                       op_arg_gbl<double>(&sh.rms, 1, OP_INC));
    }
  }
}

/// Launches one task per shard and joins (the main thread blocks, the
/// workers run the shard loops; a worker blocked in a fence helps).
void run_stage_all(shard_sim& d, bool with_save, bool fuse_next_save) {
  std::vector<hpxlite::future<void>> tasks;
  tasks.reserve(d.shards.size());
  for (auto& sh : d.shards) {
    tasks.push_back(hpxlite::async([&d, &sh, with_save, fuse_next_save] {
      run_stage(d, sh, with_save, fuse_next_save);
    }));
  }
  for (auto& t : tasks) {
    t.get();
  }
}

}  // namespace

shard_sim make_shard_sim(const op2::mesh& m, int nshards, int halo_depth) {
  if (nshards <= 0) {
    throw std::invalid_argument("make_shard_sim: nshards must be >= 1");
  }
  const auto& pcell = m.map("pcell");
  const auto& pedge = m.map("pedge");
  const auto& pecell = m.map("pecell");
  const auto& pbedge = m.map("pbedge");
  const auto& pbecell = m.map("pbecell");
  const auto x = m.dat("p_x").data<double>();
  const auto bound = m.dat("p_bound").data<int>();
  const int ncell = m.set("cells").size();
  const int nedge = m.set("edges").size();
  const int nbedge = m.set("bedges").size();

  // RCB over cell centroids — identical to make_dist_sim, and
  // deterministic across platforms (id tie-break, op2/partition.hpp).
  std::vector<double> centroids(static_cast<std::size_t>(ncell) * 2, 0.0);
  for (int c = 0; c < ncell; ++c) {
    for (int k = 0; k < 4; ++k) {
      const auto node = static_cast<std::size_t>(pcell.at(c, k));
      centroids[static_cast<std::size_t>(2 * c)] += 0.25 * x[2 * node];
      centroids[static_cast<std::size_t>(2 * c + 1)] +=
          0.25 * x[2 * node + 1];
    }
  }
  const auto parts = op2::partition_rcb(centroids, nshards);

  shard_sim d;
  d.global_cells = ncell;
  d.hp = std::make_unique<op2::halo_partition>(
      op2::build_halo_partition(parts, pecell, halo_depth));
  d.shards.resize(static_cast<std::size_t>(nshards));

  for (int r = 0; r < nshards; ++r) {
    auto& sh = d.shards[static_cast<std::size_t>(r)];
    const auto& part = d.hp->shards[static_cast<std::size_t>(r)];
    sh.shard = r;
    sh.nowned = part.owned_count();
    sh.global_cell = part.owned;
    sh.global_cell.insert(sh.global_cell.end(), part.halo.begin(),
                          part.halo.end());

    // Every edge incident to >= 1 owned cell is local: interior edges
    // (both cells owned) first, boundary edges after, each ascending by
    // global id.  The non-owned cell of a boundary edge is adjacent to
    // an owned one via this very pecell row, so it is in the depth-1
    // halo — the layout invariant the fence windows rest on.
    std::vector<int> boundary;
    for (int e = 0; e < nedge; ++e) {
      const bool o0 =
          parts.part_of[static_cast<std::size_t>(pecell.at(e, 0))] == r;
      const bool o1 =
          parts.part_of[static_cast<std::size_t>(pecell.at(e, 1))] == r;
      if (!o0 && !o1) {
        continue;
      }
      if (o0 && o1) {
        sh.global_edge.push_back(e);
      } else {
        boundary.push_back(e);
      }
    }
    sh.interior_edges = static_cast<int>(sh.global_edge.size());
    sh.global_edge.insert(sh.global_edge.end(), boundary.begin(),
                          boundary.end());
    const int nledge = static_cast<int>(sh.global_edge.size());
    // The apply permutation: local edge ids in ascending global order
    // (a merge of the two sorted runs).
    sh.edge_apply.resize(static_cast<std::size_t>(nledge));
    std::iota(sh.edge_apply.begin(), sh.edge_apply.end(), 0);
    std::sort(sh.edge_apply.begin(), sh.edge_apply.end(), [&](int a, int b) {
      return sh.global_edge[static_cast<std::size_t>(a)] <
             sh.global_edge[static_cast<std::size_t>(b)];
    });

    for (int e = 0; e < nbedge; ++e) {
      if (parts.part_of[static_cast<std::size_t>(pbecell.at(e, 0))] == r) {
        sh.global_bedge.push_back(e);
      }
    }

    // Local nodes: the corners of every local cell (x is static, so
    // replicas never need exchanging).
    std::vector<int> my_nodes;
    for (const int c : sh.global_cell) {
      for (int k = 0; k < 4; ++k) {
        my_nodes.push_back(pcell.at(c, k));
      }
    }
    std::sort(my_nodes.begin(), my_nodes.end());
    my_nodes.erase(std::unique(my_nodes.begin(), my_nodes.end()),
                   my_nodes.end());
    std::unordered_map<int, int> local_of_node;
    local_of_node.reserve(my_nodes.size());
    for (std::size_t i = 0; i < my_nodes.size(); ++i) {
      local_of_node.emplace(my_nodes[i], static_cast<int>(i));
    }
    const auto local_cell = [&](int c) {
      return part.local_of[static_cast<std::size_t>(c)];
    };

    // Assemble the local op2 mesh (the distributed.cpp idiom).
    op2::mesh lm;
    lm.sets.emplace("nodes", op2::op_decl_set(
                                 static_cast<int>(my_nodes.size()), "nodes"));
    lm.sets.emplace("cells",
                    op2::op_decl_set(
                        static_cast<int>(sh.global_cell.size()), "cells"));
    lm.sets.emplace("edges", op2::op_decl_set(nledge, "edges"));
    lm.sets.emplace("bedges",
                    op2::op_decl_set(
                        static_cast<int>(sh.global_bedge.size()), "bedges"));

    std::vector<int> lp;
    lp.reserve(sh.global_cell.size() * 4);
    for (const int c : sh.global_cell) {
      for (int k = 0; k < 4; ++k) {
        lp.push_back(local_of_node.at(pcell.at(c, k)));
      }
    }
    lm.maps.emplace("pcell",
                    op2::op_decl_map(lm.sets.at("cells"), lm.sets.at("nodes"),
                                     4, lp, "pcell"));
    lp.clear();
    for (const int e : sh.global_edge) {
      lp.push_back(local_of_node.at(pedge.at(e, 0)));
      lp.push_back(local_of_node.at(pedge.at(e, 1)));
    }
    lm.maps.emplace("pedge",
                    op2::op_decl_map(lm.sets.at("edges"), lm.sets.at("nodes"),
                                     2, lp, "pedge"));
    lp.clear();
    for (const int e : sh.global_edge) {
      lp.push_back(local_cell(pecell.at(e, 0)));
      lp.push_back(local_cell(pecell.at(e, 1)));
    }
    lm.maps.emplace("pecell",
                    op2::op_decl_map(lm.sets.at("edges"), lm.sets.at("cells"),
                                     2, lp, "pecell"));
    lp.clear();
    for (const int e : sh.global_bedge) {
      lp.push_back(local_of_node.at(pbedge.at(e, 0)));
      lp.push_back(local_of_node.at(pbedge.at(e, 1)));
    }
    lm.maps.emplace("pbedge",
                    op2::op_decl_map(lm.sets.at("bedges"),
                                     lm.sets.at("nodes"), 2, lp, "pbedge"));
    lp.clear();
    for (const int e : sh.global_bedge) {
      lp.push_back(local_cell(pbecell.at(e, 0)));
    }
    lm.maps.emplace("pbecell",
                    op2::op_decl_map(lm.sets.at("bedges"),
                                     lm.sets.at("cells"), 1, lp, "pbecell"));

    std::vector<double> lx;
    lx.reserve(my_nodes.size() * 2);
    for (const int n : my_nodes) {
      lx.push_back(x[static_cast<std::size_t>(2 * n)]);
      lx.push_back(x[static_cast<std::size_t>(2 * n + 1)]);
    }
    lm.dats.emplace("p_x", op2::op_decl_dat<double>(
                               lm.sets.at("nodes"), 2, "double",
                               std::span<const double>(lx), "p_x"));
    std::vector<int> lbound;
    lbound.reserve(sh.global_bedge.size());
    for (const int e : sh.global_bedge) {
      lbound.push_back(bound[static_cast<std::size_t>(e)]);
    }
    lm.dats.emplace("p_bound", op2::op_decl_dat<int>(
                                   lm.sets.at("bedges"), 1, "int",
                                   std::span<const int>(lbound), "p_bound"));

    sh.local = make_sim(std::move(lm));

    const std::vector<double> zero_edges(
        static_cast<std::size_t>(nledge) * 8, 0.0);
    sh.p_res_stage = op2::op_decl_dat<double>(
        sh.local.edges, 8, "double", std::span<const double>(zero_edges),
        "p_res_stage");
    const std::vector<double> zero_bedges(sh.global_bedge.size() * 4, 0.0);
    sh.p_bres_stage = op2::op_decl_dat<double>(
        sh.local.bedges, 4, "double", std::span<const double>(zero_bedges),
        "p_bres_stage");

    const std::string tag = "@s" + std::to_string(r);
    sh.n_save = "save_soln" + tag;
    sh.n_adt = "adt_calc" + tag;
    sh.n_res = "res_calc" + tag;
    sh.n_bres = "bres_calc" + tag;
    sh.n_update = "update" + tag;
  }

  std::vector<op2::op_dat> qs;
  qs.reserve(d.shards.size());
  for (const auto& sh : d.shards) {
    qs.push_back(sh.local.p_q);
  }
  d.xq = std::make_unique<op2::halo_exchanger>(d.hp.get(), std::move(qs));
  return d;
}

run_result run_sharded(shard_sim& d, int niter) {
  run_result out;
  out.rms_history.reserve(static_cast<std::size_t>(niter));
  const auto t0 = std::chrono::steady_clock::now();

  // Iteration 0 saves standalone; every later save runs fused with the
  // previous iteration's k=1 update (see run_stage), so the k=0 stages
  // after that skip their save.
  bool need_save = true;
  for (int iter = 0; iter < niter; ++iter) {
    for (int k = 0; k < 2; ++k) {
      // Owner q -> halo replicas; the fences re-arm here and complete
      // on the progress thread while the shard tasks run.
      d.xq->exchange();
      const bool fuse_save = k == 1 && iter + 1 < niter;
      run_stage_all(d, /*with_save=*/k == 0 && need_save, fuse_save);
      if (fuse_save) {
        need_save = false;
      }
    }
    // Deterministic rms reduction: shard partials in shard order.
    double rms = 0.0;
    for (const auto& sh : d.shards) {
      rms += sh.rms;
    }
    out.rms_history.push_back(
        std::sqrt(rms / static_cast<double>(d.global_cells)));
  }

  out.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  return out;
}

std::vector<double> gather_q(const shard_sim& d) {
  std::vector<double> q(static_cast<std::size_t>(d.global_cells) * 4, 0.0);
  for (const auto& sh : d.shards) {
    const auto lq = sh.local.p_q.data<double>();
    for (int c = 0; c < sh.nowned; ++c) {
      const auto g = static_cast<std::size_t>(
          sh.global_cell[static_cast<std::size_t>(c)]);
      for (int n = 0; n < 4; ++n) {
        q[4 * g + static_cast<std::size_t>(n)] =
            lq[static_cast<std::size_t>(4 * c + n)];
      }
    }
  }
  return q;
}

void scatter_q(shard_sim& d, std::span<const double> q) {
  if (q.size() != static_cast<std::size_t>(d.global_cells) * 4) {
    throw std::invalid_argument("scatter_q: field size mismatch");
  }
  for (auto& sh : d.shards) {
    auto lq = sh.local.p_q.data<double>();
    for (std::size_t l = 0; l < sh.global_cell.size(); ++l) {
      const auto g = static_cast<std::size_t>(sh.global_cell[l]);
      for (int n = 0; n < 4; ++n) {
        lq[4 * l + static_cast<std::size_t>(n)] =
            q[4 * g + static_cast<std::size_t>(n)];
      }
    }
  }
}

run_result run_sharded(sim& s, int niter) {
  const auto& cfg = op2::current_config();
  auto d = make_shard_sim(s.mesh, op2::effective_shards(cfg),
                          cfg.halo_depth);
  // Seed from the caller's current field so warm starts behave like the
  // other drivers (which evolve s in place).
  scatter_q(d, s.p_q.data<double>());
  auto out = run_sharded(d, niter);
  const auto q = gather_q(d);
  auto sq = s.p_q.data<double>();
  std::copy(q.begin(), q.end(), sq.begin());
  return out;
}

}  // namespace airfoil
