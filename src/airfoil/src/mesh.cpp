#include "airfoil/mesh.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "airfoil/constants.hpp"

namespace airfoil {

namespace {

/// Smooth sin^2 bump between [begin, end], zero elsewhere.
double bump(double x, const mesh_params& p) {
  if (x <= p.bump_begin || x >= p.bump_end) {
    return 0.0;
  }
  const double t = (x - p.bump_begin) / (p.bump_end - p.bump_begin);
  const double s = std::sin(M_PI * t);
  return p.bump_height * s * s;
}

}  // namespace

op2::mesh generate_mesh(const mesh_params& p) {
  if (p.imax < 2 || p.jmax < 2) {
    throw std::invalid_argument("generate_mesh: need imax, jmax >= 2");
  }
  const int imax = p.imax;
  const int jmax = p.jmax;
  const int nnode = (imax + 1) * (jmax + 1);
  const int ncell = imax * jmax;
  const int nedge = (imax - 1) * jmax + imax * (jmax - 1);
  const int nbedge = 2 * imax + 2 * jmax;

  const auto node = [imax](int i, int j) { return j * (imax + 1) + i; };
  const auto cell = [imax](int i, int j) { return j * imax + i; };

  // Node coordinates: x uniform, y graded between the bumped lower wall
  // and the flat upper wall.
  std::vector<double> x(static_cast<std::size_t>(nnode) * 2);
  for (int j = 0; j <= jmax; ++j) {
    for (int i = 0; i <= imax; ++i) {
      const double xc = p.length * static_cast<double>(i) /
                        static_cast<double>(imax);
      const double yb = bump(xc, p);
      const double frac = static_cast<double>(j) / static_cast<double>(jmax);
      const auto n = static_cast<std::size_t>(node(i, j));
      x[2 * n + 0] = xc;
      x[2 * n + 1] = yb + (p.height - yb) * frac;
    }
  }

  // Cell corner nodes, counter-clockwise (adt_calc walks them in order).
  std::vector<int> pcell(static_cast<std::size_t>(ncell) * 4);
  for (int j = 0; j < jmax; ++j) {
    for (int i = 0; i < imax; ++i) {
      const auto c = static_cast<std::size_t>(cell(i, j));
      pcell[4 * c + 0] = node(i, j);
      pcell[4 * c + 1] = node(i + 1, j);
      pcell[4 * c + 2] = node(i + 1, j + 1);
      pcell[4 * c + 3] = node(i, j + 1);
    }
  }

  // Interior edges.  Normal (dy,-dx) with d = x1-x2 points cell1→cell2.
  std::vector<int> pedge;
  std::vector<int> pecell;
  pedge.reserve(static_cast<std::size_t>(nedge) * 2);
  pecell.reserve(static_cast<std::size_t>(nedge) * 2);
  // Vertical faces between c(i-1,j) and c(i,j).
  for (int j = 0; j < jmax; ++j) {
    for (int i = 1; i < imax; ++i) {
      pedge.push_back(node(i, j + 1));
      pedge.push_back(node(i, j));
      pecell.push_back(cell(i - 1, j));
      pecell.push_back(cell(i, j));
    }
  }
  // Horizontal faces between c(i,j-1) and c(i,j).
  for (int j = 1; j < jmax; ++j) {
    for (int i = 0; i < imax; ++i) {
      pedge.push_back(node(i, j));
      pedge.push_back(node(i + 1, j));
      pecell.push_back(cell(i, j - 1));
      pecell.push_back(cell(i, j));
    }
  }

  // Boundary edges, outward normals; lower wall is the "airfoil".
  std::vector<int> pbedge;
  std::vector<int> pbecell;
  std::vector<int> bound;
  pbedge.reserve(static_cast<std::size_t>(nbedge) * 2);
  pbecell.reserve(static_cast<std::size_t>(nbedge));
  bound.reserve(static_cast<std::size_t>(nbedge));
  for (int i = 0; i < imax; ++i) {  // bottom (wall)
    pbedge.push_back(node(i + 1, 0));
    pbedge.push_back(node(i, 0));
    pbecell.push_back(cell(i, 0));
    bound.push_back(bound_wall);
  }
  for (int i = 0; i < imax; ++i) {  // top (far field)
    pbedge.push_back(node(i, jmax));
    pbedge.push_back(node(i + 1, jmax));
    pbecell.push_back(cell(i, jmax - 1));
    bound.push_back(bound_farfield);
  }
  for (int j = 0; j < jmax; ++j) {  // left (far field)
    pbedge.push_back(node(0, j));
    pbedge.push_back(node(0, j + 1));
    pbecell.push_back(cell(0, j));
    bound.push_back(bound_farfield);
  }
  for (int j = 0; j < jmax; ++j) {  // right (far field)
    pbedge.push_back(node(imax, j + 1));
    pbedge.push_back(node(imax, j));
    pbecell.push_back(cell(imax - 1, j));
    bound.push_back(bound_farfield);
  }

  op2::mesh m;
  m.sets.emplace("nodes", op2::op_decl_set(nnode, "nodes"));
  m.sets.emplace("cells", op2::op_decl_set(ncell, "cells"));
  m.sets.emplace("edges", op2::op_decl_set(nedge, "edges"));
  m.sets.emplace("bedges", op2::op_decl_set(nbedge, "bedges"));

  const auto& nodes_s = m.sets.at("nodes");
  const auto& cells_s = m.sets.at("cells");
  const auto& edges_s = m.sets.at("edges");
  const auto& bedges_s = m.sets.at("bedges");

  m.maps.emplace("pcell",
                 op2::op_decl_map(cells_s, nodes_s, 4, pcell, "pcell"));
  m.maps.emplace("pedge",
                 op2::op_decl_map(edges_s, nodes_s, 2, pedge, "pedge"));
  m.maps.emplace("pecell",
                 op2::op_decl_map(edges_s, cells_s, 2, pecell, "pecell"));
  m.maps.emplace("pbedge",
                 op2::op_decl_map(bedges_s, nodes_s, 2, pbedge, "pbedge"));
  m.maps.emplace("pbecell",
                 op2::op_decl_map(bedges_s, cells_s, 1, pbecell, "pbecell"));

  m.dats.emplace("p_x", op2::op_decl_dat<double>(
                            nodes_s, 2, "double",
                            std::span<const double>(x), "p_x"));
  m.dats.emplace("p_bound", op2::op_decl_dat<int>(
                                bedges_s, 1, "int",
                                std::span<const int>(bound), "p_bound"));
  return m;
}

op2::mesh generate_mesh_with_cells(int target_cells) {
  if (target_cells < 16) {
    throw std::invalid_argument("generate_mesh_with_cells: too few cells");
  }
  mesh_params p;
  // Keep the default 4:1 aspect: imax = 4*jmax, so cells = 4*jmax^2.
  int jmax = static_cast<int>(
      std::lround(std::sqrt(static_cast<double>(target_cells) / 4.0)));
  if (jmax < 2) {
    jmax = 2;
  }
  p.jmax = jmax;
  p.imax = 4 * jmax;
  return generate_mesh(p);
}

}  // namespace airfoil
