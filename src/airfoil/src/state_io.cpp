#include "airfoil/state_io.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "op2/mesh_io.hpp"

namespace airfoil {

namespace {

constexpr const char* kMagic = "airfoil-state";
constexpr int kVersion = 2;

/// FNV-1a over the serialised mesh payload — cheap, dependency-free,
/// and plenty to catch truncation and bit corruption of a checkpoint.
std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

[[noreturn]] void bad_checkpoint(const std::string& path,
                                 const std::string& why) {
  throw std::runtime_error("load_state: checkpoint '" + path + "' " + why);
}

sim sim_from_snapshot(op2::mesh snapshot, const std::string& path) {
  // make_sim zero-initialises the solution dats; restore them from the
  // checkpoint afterwards.
  const op2::op_dat q = snapshot.dat("p_q");
  const op2::op_dat qold = snapshot.dat("p_qold");
  const op2::op_dat adt = snapshot.dat("p_adt");
  const op2::op_dat res = snapshot.dat("p_res");
  snapshot.dats.erase("p_q");
  snapshot.dats.erase("p_qold");
  snapshot.dats.erase("p_adt");
  snapshot.dats.erase("p_res");

  sim s = make_sim(std::move(snapshot));
  const auto restore = [&path](op2::op_dat& dst, const op2::op_dat& src) {
    auto d = dst.data<double>();
    const auto v = src.data<double>();
    if (d.size() != v.size()) {
      bad_checkpoint(path, "dat '" + src.name() + "' has wrong size");
    }
    std::copy(v.begin(), v.end(), d.begin());
  };
  restore(s.p_q, q);
  restore(s.p_qold, qold);
  restore(s.p_adt, adt);
  restore(s.p_res, res);
  return s;
}

}  // namespace

void save_state(const sim& s, const std::string& path) {
  op2::mesh snapshot = s.mesh;  // sets/maps/geometry dats (shared handles)
  snapshot.dats.insert_or_assign("p_q", s.p_q);
  snapshot.dats.insert_or_assign("p_qold", s.p_qold);
  snapshot.dats.insert_or_assign("p_adt", s.p_adt);
  snapshot.dats.insert_or_assign("p_res", s.p_res);

  std::ostringstream payload;
  op2::write_mesh(payload, snapshot);
  const std::string body = payload.str();

  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("save_state: cannot open '" + path +
                             "' for writing");
  }
  out << kMagic << ' ' << kVersion << '\n'
      << "bytes " << body.size() << '\n'
      << "fnv1a " << std::hex << fnv1a(body) << std::dec << '\n'
      << body;
  out.flush();
  if (!out) {
    throw std::runtime_error("save_state: write failed for '" + path + "'");
  }
}

sim load_state(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    bad_checkpoint(path, "cannot be opened");
  }

  std::string magic;
  in >> magic;
  if (magic != kMagic) {
    // Legacy v1 checkpoints are bare op2 mesh files; accept them
    // (unverified) so pre-header snapshots keep loading.
    in.clear();
    in.seekg(0);
    return sim_from_snapshot(op2::read_mesh(in), path);
  }

  int version = 0;
  std::string key;
  std::size_t expected_bytes = 0;
  std::uint64_t expected_sum = 0;
  in >> version;
  if (!in || version != kVersion) {
    bad_checkpoint(path, "has unsupported version " + std::to_string(version));
  }
  in >> key >> expected_bytes;
  if (!in || key != "bytes") {
    bad_checkpoint(path, "is missing the payload size header");
  }
  in >> key >> std::hex >> expected_sum >> std::dec;
  if (!in || key != "fnv1a") {
    bad_checkpoint(path, "is missing the checksum header");
  }
  in.ignore(1);  // the newline terminating the header

  std::string body(expected_bytes, '\0');
  in.read(body.data(), static_cast<std::streamsize>(expected_bytes));
  const auto got = static_cast<std::size_t>(in.gcount());
  if (got != expected_bytes) {
    bad_checkpoint(path, "is truncated (expected " +
                             std::to_string(expected_bytes) +
                             " payload bytes, got " + std::to_string(got) +
                             ")");
  }
  if (fnv1a(body) != expected_sum) {
    bad_checkpoint(path, "failed checksum verification (corrupted)");
  }

  std::istringstream payload(body);
  return sim_from_snapshot(op2::read_mesh(payload), path);
}

}  // namespace airfoil
