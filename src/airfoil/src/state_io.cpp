#include "airfoil/state_io.hpp"

#include <algorithm>
#include <stdexcept>

#include "op2/mesh_io.hpp"

namespace airfoil {

void save_state(const sim& s, const std::string& path) {
  op2::mesh snapshot = s.mesh;  // sets/maps/geometry dats (shared handles)
  snapshot.dats.insert_or_assign("p_q", s.p_q);
  snapshot.dats.insert_or_assign("p_qold", s.p_qold);
  snapshot.dats.insert_or_assign("p_adt", s.p_adt);
  snapshot.dats.insert_or_assign("p_res", s.p_res);
  op2::write_mesh_file(path, snapshot);
}

sim load_state(const std::string& path) {
  op2::mesh snapshot = op2::read_mesh_file(path);
  // make_sim zero-initialises the solution dats; restore them from the
  // checkpoint afterwards.
  const op2::op_dat q = snapshot.dat("p_q");
  const op2::op_dat qold = snapshot.dat("p_qold");
  const op2::op_dat adt = snapshot.dat("p_adt");
  const op2::op_dat res = snapshot.dat("p_res");
  snapshot.dats.erase("p_q");
  snapshot.dats.erase("p_qold");
  snapshot.dats.erase("p_adt");
  snapshot.dats.erase("p_res");

  sim s = make_sim(std::move(snapshot));
  const auto restore = [](op2::op_dat& dst, const op2::op_dat& src) {
    auto d = dst.data<double>();
    const auto v = src.data<double>();
    if (d.size() != v.size()) {
      throw std::runtime_error("load_state: checkpoint dat '" + src.name() +
                               "' has wrong size");
    }
    std::copy(v.begin(), v.end(), d.begin());
  };
  restore(s.p_q, q);
  restore(s.p_qold, qold);
  restore(s.p_adt, adt);
  restore(s.p_res, res);
  return s;
}

}  // namespace airfoil
