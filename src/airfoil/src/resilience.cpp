#include "airfoil/resilience.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "airfoil/state_io.hpp"
#include "op2/profiling.hpp"

namespace airfoil {

namespace {

/// A segment is healthy when every RMS sample and the solution itself
/// are finite, and the residual has not blown up relative to the last
/// accepted segment.
bool segment_healthy(const run_result& segment, const sim& s,
                     double last_rms, double divergence_factor) {
  for (const double r : segment.rms_history) {
    if (!std::isfinite(r)) {
      return false;
    }
  }
  if (!std::isfinite(solution_checksum(s))) {
    return false;
  }
  if (last_rms > 0.0 && !segment.rms_history.empty() &&
      segment.rms_history.back() > divergence_factor * last_rms) {
    return false;
  }
  return true;
}

}  // namespace

resilient_result run_resilient(sim& s, int niter,
                               const resilience_options& opts) {
  if (opts.checkpoint_path.empty()) {
    throw std::invalid_argument(
        "airfoil: run_resilient needs a checkpoint_path");
  }
  if (opts.checkpoint_every < 1) {
    throw std::invalid_argument(
        "airfoil: run_resilient needs checkpoint_every >= 1");
  }

  resilient_result out;
  const auto t0 = std::chrono::steady_clock::now();

  // The initial checkpoint is the restart point for the first segment.
  save_state(s, opts.checkpoint_path);

  double last_rms = 0.0;
  int completed = 0;
  while (completed < niter) {
    const int segment = std::min(opts.checkpoint_every, niter - completed);
    run_result r = run_with_backend(s, segment);

    if (segment_healthy(r, s, last_rms, opts.divergence_factor)) {
      out.run.rms_history.insert(out.run.rms_history.end(),
                                 r.rms_history.begin(),
                                 r.rms_history.end());
      completed += segment;
      if (!r.rms_history.empty()) {
        last_rms = r.rms_history.back();
      }
      save_state(s, opts.checkpoint_path);
      continue;
    }

    if (out.restarts >= opts.max_restarts) {
      throw std::runtime_error(
          "airfoil: run_resilient gave up after " +
          std::to_string(out.restarts) +
          " restart(s): solution still non-finite or divergent at iteration " +
          std::to_string(completed + segment));
    }
    // Unhealthy segment: discard it, reload the last good checkpoint,
    // and replay.
    s = load_state(opts.checkpoint_path);
    op2::profiling::record_restart("airfoil");
    out.restarts += 1;
    out.iterations_replayed += segment;
  }

  out.run.seconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  return out;
}

}  // namespace airfoil
