// Distributed-memory Airfoil — OP2's MPI execution mode, simulated in
// one process ("on distributed nodes, [OpenMP] is used in conjunction
// with MPI", §I).  Each simulated rank owns a private sub-mesh with
// its own storage; communication is explicit:
//
//   per iteration:  exchange q (owner -> ghost copies)
//                   save_soln / adt_calc / res_calc / bres_calc locally
//                   halo-reduce res (ghost contributions -> owner += )
//                   update
//
// Scheme: cells are partitioned (RCB); each rank holds its owned cells
// plus one layer of ghost cells (redundant adt compute on ghosts avoids
// an adt exchange).  Edges belong to the owner of their first adjacent
// cell; boundary edges to their cell's owner.  Ghost residuals are
// reduced to the owner before update, and ghost updates see zero
// residual, so owned state evolves exactly like the single-domain run
// (up to floating-point reassociation of the halo additions).
#pragma once

#include <vector>

#include "airfoil/mesh.hpp"
#include "airfoil/solver.hpp"
#include "op2/partition.hpp"

namespace airfoil {

/// One simulated rank: a self-contained sim over its sub-mesh plus the
/// bookkeeping to exchange with neighbours.
struct rank_domain {
  sim local;                       // private sub-mesh + solution state
  int nowned = 0;                  // local cells [0, nowned) are owned
  std::vector<int> global_cell;    // local cell -> global cell id

  /// Ghost pulls: ghost local id + owning rank + owner-local id.
  struct ghost_link {
    int local_cell;
    int owner_rank;
    int owner_local_cell;
  };
  std::vector<ghost_link> ghosts;
};

/// A distributed simulation: `nranks` private domains over one mesh.
struct dist_sim {
  std::vector<rank_domain> ranks;
  int global_cells = 0;
};

/// Decomposes `m` (a mesh from generate_mesh) into `nranks` domains
/// using RCB over cell centroids.
dist_sim make_dist_sim(const op2::mesh& m, int nranks);

/// Runs `niter` iterations across all ranks with explicit halo
/// exchanges; rms is reduced across ranks each iteration (owned cells
/// only).  Loops execute with the currently configured op2 backend.
run_result run_distributed(dist_sim& d, int niter);

/// Gathers the owned q values back into a global field (4 values per
/// global cell) for comparison against a single-domain run.
std::vector<double> gather_q(const dist_sim& d);

}  // namespace airfoil
