// Bridges the real Airfoil application to the scheduling simulator:
// measures per-element kernel costs on this machine, extracts the real
// OP2 execution plans (block structure + colouring), and assembles the
// simsched::airfoil_shape the figure harnesses simulate.
#pragma once

#include "airfoil/solver.hpp"
#include "simsched/airfoil_model.hpp"

namespace airfoil {

/// Measured sequential cost of one kernel application, in µs/element.
struct kernel_costs {
  double save = 0.0;
  double adt = 0.0;
  double res = 0.0;
  double bres = 0.0;
  double update = 0.0;
};

/// Times each of the five kernels over the whole mesh (sequentially,
/// `repeats` sweeps) and returns per-element costs.  Mutates the
/// solution state; call reset_solution() afterwards if it matters.
kernel_costs measure_kernel_costs(sim& s, int repeats = 3);

/// Nominal costs for deterministic tests (µs/element, Xeon-like
/// magnitudes: save 0.02, adt 0.08, res 0.12, bres 0.10, update 0.04).
kernel_costs nominal_kernel_costs();

/// Times each loop THROUGH op_par_loop (the engine's real per-element
/// speed, including block dispatch and argument indirection) using the
/// profiling facility, under the currently configured backend —
/// configure seq/1-thread for calibration.  Runs `iters` iterations of
/// the full solver.  Mutates the solution; resets it afterwards.
kernel_costs measure_loop_costs(sim& s, int iters = 3);

/// Builds the simulator shape for `s`: real plans for all five loops at
/// `block_size`, scaled by `costs`, over `niter` iterations.
simsched::airfoil_shape extract_shape(const sim& s, const kernel_costs& costs,
                                      int block_size, int niter);

}  // namespace airfoil
