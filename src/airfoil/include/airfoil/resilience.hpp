// Solver-level self-healing: the last layer of the resilience stack.
//
// The op2 layers below handle failures a loop can recover from by
// re-execution (run_loop_protected's rollback/retry/seq-fallback).
// What they cannot catch is silent data corruption — a kernel that
// completes but leaves NaN or garbage in the flow field.  run_resilient
// closes that gap the way long-running CFD codes do in practice:
//
//   - checkpoint the simulation every `checkpoint_every` iterations
//     (through state_io's verified save/load),
//   - after each segment, check the health of the solution (finite RMS
//     history, finite solution checksum, no divergence blow-up),
//   - on a failed check, reload the last good checkpoint and replay the
//     segment, up to `max_restarts` times.
//
// Restarts are recorded under the "airfoil" row of op_timing_output
// (the restarts column), next to the loop-level retries/fallbacks.
#pragma once

#include <string>

#include "airfoil/solver.hpp"

namespace airfoil {

struct resilience_options {
  /// Checkpoint file the driver writes and restarts from (required).
  std::string checkpoint_path;
  /// Iterations per checkpointed segment.
  int checkpoint_every = 10;
  /// Segment replays before the driver gives up and throws.
  int max_restarts = 3;
  /// A segment is declared divergent when its final RMS exceeds the
  /// previous healthy segment's by this factor.
  double divergence_factor = 1e6;
};

struct resilient_result {
  /// Accepted iterations only (replayed segments appear once).
  run_result run;
  /// Checkpoint restarts performed.
  int restarts = 0;
  /// Iterations that were rolled back and replayed.
  int iterations_replayed = 0;
};

/// Runs `niter` iterations under the currently-configured backend with
/// checkpoint/restart self-healing.  Throws std::runtime_error when the
/// solution still fails its health check after `max_restarts` replays.
resilient_result run_resilient(sim& s, int niter,
                               const resilience_options& opts);

}  // namespace airfoil
