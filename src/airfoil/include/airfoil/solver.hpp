// Airfoil solver drivers — one per programming model compared in the
// paper:
//
//   run_classic   the unchanged Airfoil.cpp (Fig 4): five op_par_loop
//                 calls per stage, synchronous under whatever backend
//                 op2::init selected (forkjoin baseline or
//                 hpx_foreach, §III-A1)
//   run_async     §III-A2 (Fig 10): op_par_loop_async everywhere, the
//                 driver hand-places the .get() calls the data
//                 dependencies demand
//   run_dataflow  §III-B (Fig 14): the modified API; the dependency
//                 tree is derived automatically and the driver never
//                 blocks inside the iteration loop
//
// Each iteration performs save_soln then two RK-like stages of
// adt_calc / res_calc / bres_calc / update, exactly as the original
// benchmark does; `rms` is the convergence monitor.
#pragma once

#include <string>
#include <vector>

#include "airfoil/mesh.hpp"
#include "op2/op2.hpp"

namespace airfoil {

/// One simulation instance: mesh plus solution dats.
struct sim {
  op2::mesh mesh;
  op2::op_set nodes, cells, edges, bedges;
  op2::op_map pcell, pedge, pecell, pbedge, pbecell;
  op2::op_dat p_x, p_bound;        // geometry (from the mesh)
  op2::op_dat p_q, p_qold, p_adt, p_res;  // solution state
};

/// Builds a simulation over `m`, with q initialised to the free stream
/// and res/adt zeroed.
sim make_sim(op2::mesh m);

/// Resets the solution state to the free-stream initial condition.
void reset_solution(sim& s);

struct run_result {
  /// RMS residual after each iteration (sqrt(sum(del^2)/ncell), as the
  /// benchmark prints every 100 iterations).
  std::vector<double> rms_history;
  double seconds = 0.0;
};

run_result run_classic(sim& s, int niter);
run_result run_async(sim& s, int niter);
run_result run_dataflow(sim& s, int niter);

/// Runs the driver matching `backend_name`'s executor capabilities:
/// dataflow_api -> run_dataflow, asynchronous -> run_async, else
/// run_classic.  `backend_name` may be a canonical registry name or an
/// alias; throws the registry's "unknown backend ... available: ..."
/// error for mistyped names.  The caller must already have configured
/// the runtime for this backend (op2::init).
run_result run_with_backend(sim& s, int niter,
                            const std::string& backend_name);

/// Same, for the currently-configured backend.
run_result run_with_backend(sim& s, int niter);

/// Sum over all conservative variables — a cheap fingerprint used by
/// tests to confirm every backend computes the same flow field.
double solution_checksum(const sim& s);

}  // namespace airfoil
