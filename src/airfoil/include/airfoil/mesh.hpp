// Structured-quad channel mesh generator for the Airfoil benchmark.
//
// The original benchmark reads `new_grid.dat`, a quadrilateral mesh
// around a NACA airfoil produced by a MATLAB generator we do not have.
// This generator builds the closest synthetic equivalent: an imax×jmax
// quad channel whose lower wall carries a smooth bump (the "airfoil"),
// expressed through exactly the same unstructured representation —
// four sets (nodes/cells/edges/bedges), the four maps the five loops
// indirect through (pcell/pedge/pecell/pbedge+pbecell) and the bound
// markers.  The runtime comparison only depends on that representation,
// not on the geometry being a licensed NACA profile.
//
// Orientation conventions (required by res_calc's sign structure): for
// an edge with nodes (x1, x2) and cells (cell1, cell2), the face normal
// (dy, -dx) with d = x1 - x2 points from cell1 toward cell2; boundary
// edges orient the normal outward.
#pragma once

#include "op2/mesh_io.hpp"

namespace airfoil {

struct mesh_params {
  int imax = 200;   // cells in x
  int jmax = 50;    // cells in y
  double length = 4.0;
  double height = 2.0;
  double bump_height = 0.08;   // lower-wall "airfoil" bump
  double bump_begin = 1.5;     // bump extent in x
  double bump_end = 2.5;
};

/// Generates the mesh: sets "nodes"/"cells"/"edges"/"bedges", maps
/// "pcell" (cells→nodes, 4), "pedge" (edges→nodes, 2), "pecell"
/// (edges→cells, 2), "pbedge" (bedges→nodes, 2), "pbecell"
/// (bedges→cells, 1); dats "p_x" (nodes, 2, double) and "p_bound"
/// (bedges, 1, int).
op2::mesh generate_mesh(const mesh_params& params);

/// Convenience: a mesh with ~`target_cells` cells at the default 4:1
/// aspect ratio — used by the weak-scaling harness, which grows the
/// problem with the thread count.
op2::mesh generate_mesh_with_cells(int target_cells);

}  // namespace airfoil
