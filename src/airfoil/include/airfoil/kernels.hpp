// The five user kernels of the Airfoil application — "save_soln.h,
// adt_calc.h, res_calc.h, bres_calc.h and update.h" in the original
// OP2 distribution.  Signatures match what op_par_loop passes: one
// pointer per op_arg, const for OP_READ arguments.
//
//   save_soln  (direct,   cells)  q -> qold
//   adt_calc   (indirect, cells)  x(4 corners), q -> adt  (local dt)
//   res_calc   (indirect, edges)  interior fluxes, res += / -=
//   bres_calc  (indirect, bedges) boundary fluxes (wall / far field)
//   update     (direct,   cells)  q = qold - dt*res; rms += del^2
#pragma once

#include <cmath>

#include "airfoil/constants.hpp"

namespace airfoil {

/// Copies the conservative state to the old-solution buffer.
inline void save_soln(const double* q, double* qold) {
  for (int n = 0; n < 4; ++n) {
    qold[n] = q[n];
  }
}

/// Computes the local area/timestep measure for one quadrilateral cell
/// from its four corner coordinates and its state.
inline void adt_calc(const double* x1, const double* x2, const double* x3,
                     const double* x4, const double* q, double* adt) {
  const auto& c = constants();
  const double ri = 1.0 / q[0];
  const double u = ri * q[1];
  const double v = ri * q[2];
  const double sound =
      std::sqrt(c.gam * c.gm1 * (ri * q[3] - 0.5 * (u * u + v * v)));

  const auto face = [&](const double* a, const double* b) {
    const double dx = b[0] - a[0];
    const double dy = b[1] - a[1];
    return std::fabs(u * dy - v * dx) + sound * std::sqrt(dx * dx + dy * dy);
  };

  double sum = face(x1, x2) + face(x2, x3) + face(x3, x4) + face(x4, x1);
  *adt = sum / c.cfl;
}

/// Accumulates the interior-edge flux: adds to the left cell's residual
/// and subtracts from the right cell's (conservation).
inline void res_calc(const double* x1, const double* x2, const double* q1,
                     const double* q2, const double* adt1, const double* adt2,
                     double* res1, double* res2) {
  const auto& c = constants();
  const double dx = x1[0] - x2[0];
  const double dy = x1[1] - x2[1];

  double ri = 1.0 / q1[0];
  const double p1 =
      c.gm1 * (q1[3] - 0.5 * ri * (q1[1] * q1[1] + q1[2] * q1[2]));
  const double vol1 = ri * (q1[1] * dy - q1[2] * dx);

  ri = 1.0 / q2[0];
  const double p2 =
      c.gm1 * (q2[3] - 0.5 * ri * (q2[1] * q2[1] + q2[2] * q2[2]));
  const double vol2 = ri * (q2[1] * dy - q2[2] * dx);

  const double mu = 0.5 * ((*adt1) + (*adt2)) * c.eps;

  double f = 0.5 * (vol1 * q1[0] + vol2 * q2[0]) + mu * (q1[0] - q2[0]);
  res1[0] += f;
  res2[0] -= f;
  f = 0.5 * (vol1 * q1[1] + p1 * dy + vol2 * q2[1] + p2 * dy) +
      mu * (q1[1] - q2[1]);
  res1[1] += f;
  res2[1] -= f;
  f = 0.5 * (vol1 * q1[2] - p1 * dx + vol2 * q2[2] - p2 * dx) +
      mu * (q1[2] - q2[2]);
  res1[2] += f;
  res2[2] -= f;
  f = 0.5 * (vol1 * (q1[3] + p1) + vol2 * (q2[3] + p2)) +
      mu * (q1[3] - q2[3]);
  res1[3] += f;
  res2[3] -= f;
}

/// Boundary-edge flux: an inviscid wall contributes only pressure; a
/// far-field edge fluxes against the free-stream state qinf.
inline void bres_calc(const double* x1, const double* x2, const double* q1,
                      const double* adt1, double* res1, const int* bound) {
  const auto& c = constants();
  const double dx = x1[0] - x2[0];
  const double dy = x1[1] - x2[1];

  double ri = 1.0 / q1[0];
  const double p1 =
      c.gm1 * (q1[3] - 0.5 * ri * (q1[1] * q1[1] + q1[2] * q1[2]));

  if (*bound == bound_wall) {
    res1[1] += +p1 * dy;
    res1[2] += -p1 * dx;
    return;
  }

  const double vol1 = ri * (q1[1] * dy - q1[2] * dx);

  ri = 1.0 / c.qinf[0];
  const double p2 =
      c.gm1 *
      (c.qinf[3] - 0.5 * ri * (c.qinf[1] * c.qinf[1] + c.qinf[2] * c.qinf[2]));
  const double vol2 = ri * (c.qinf[1] * dy - c.qinf[2] * dx);

  const double mu = (*adt1) * c.eps;

  double f = 0.5 * (vol1 * q1[0] + vol2 * c.qinf[0]) + mu * (q1[0] - c.qinf[0]);
  res1[0] += f;
  f = 0.5 * (vol1 * q1[1] + p1 * dy + vol2 * c.qinf[1] + p2 * dy) +
      mu * (q1[1] - c.qinf[1]);
  res1[1] += f;
  f = 0.5 * (vol1 * q1[2] - p1 * dx + vol2 * c.qinf[2] - p2 * dx) +
      mu * (q1[2] - c.qinf[2]);
  res1[2] += f;
  f = 0.5 * (vol1 * (q1[3] + p1) + vol2 * (c.qinf[3] + p2)) +
      mu * (q1[3] - c.qinf[3]);
  res1[3] += f;
}

/// Staged flavour of res_calc for shard execution: computes the SAME
/// four flux components f, but writes them into a per-edge stage slot
/// (stage[n] = +f for cell1, stage[4+n] = -f for cell2) instead of
/// accumulating through the map.  Writing the edge's own slot makes the
/// loop conflict-free (direct OP_WRITE), so shards can run it split
/// interior/boundary around the halo fence; a deterministic apply pass
/// then adds the staged values in ascending global-edge order, which
/// reproduces the sequential accumulation order bit for bit
/// (a -= f  ≡  a += (-f) in IEEE arithmetic).
///
/// The arithmetic below is textually identical to res_calc — that
/// identity is what the bit-exactness tests pin, so do not "simplify"
/// shared subexpressions here without changing res_calc in lockstep.
inline void res_calc_stage(const double* x1, const double* x2,
                           const double* q1, const double* q2,
                           const double* adt1, const double* adt2,
                           double* stage) {
  const auto& c = constants();
  const double dx = x1[0] - x2[0];
  const double dy = x1[1] - x2[1];

  double ri = 1.0 / q1[0];
  const double p1 =
      c.gm1 * (q1[3] - 0.5 * ri * (q1[1] * q1[1] + q1[2] * q1[2]));
  const double vol1 = ri * (q1[1] * dy - q1[2] * dx);

  ri = 1.0 / q2[0];
  const double p2 =
      c.gm1 * (q2[3] - 0.5 * ri * (q2[1] * q2[1] + q2[2] * q2[2]));
  const double vol2 = ri * (q2[1] * dy - q2[2] * dx);

  const double mu = 0.5 * ((*adt1) + (*adt2)) * c.eps;

  double f = 0.5 * (vol1 * q1[0] + vol2 * q2[0]) + mu * (q1[0] - q2[0]);
  stage[0] = f;
  stage[4] = -f;
  f = 0.5 * (vol1 * q1[1] + p1 * dy + vol2 * q2[1] + p2 * dy) +
      mu * (q1[1] - q2[1]);
  stage[1] = f;
  stage[5] = -f;
  f = 0.5 * (vol1 * q1[2] - p1 * dx + vol2 * q2[2] - p2 * dx) +
      mu * (q1[2] - q2[2]);
  stage[2] = f;
  stage[6] = -f;
  f = 0.5 * (vol1 * (q1[3] + p1) + vol2 * (q2[3] + p2)) +
      mu * (q1[3] - q2[3]);
  stage[3] = f;
  stage[7] = -f;
}

/// Staged flavour of bres_calc (see res_calc_stage).  A wall edge
/// contributes only to components 1 and 2; the stage slots for 0 and 3
/// are written as +0.0, which the apply pass may add unconditionally:
/// residuals are zeroed to +0.0 each stage and x + (-x) rounds to +0.0
/// under round-to-nearest, so a residual component is never -0.0 and
/// adding +0.0 to it is a bitwise no-op.
inline void bres_calc_stage(const double* x1, const double* x2,
                            const double* q1, const double* adt1,
                            double* stage, const int* bound) {
  const auto& c = constants();
  const double dx = x1[0] - x2[0];
  const double dy = x1[1] - x2[1];

  double ri = 1.0 / q1[0];
  const double p1 =
      c.gm1 * (q1[3] - 0.5 * ri * (q1[1] * q1[1] + q1[2] * q1[2]));

  if (*bound == bound_wall) {
    stage[0] = 0.0;
    stage[1] = +p1 * dy;
    stage[2] = -p1 * dx;
    stage[3] = 0.0;
    return;
  }

  const double vol1 = ri * (q1[1] * dy - q1[2] * dx);

  ri = 1.0 / c.qinf[0];
  const double p2 =
      c.gm1 *
      (c.qinf[3] - 0.5 * ri * (c.qinf[1] * c.qinf[1] + c.qinf[2] * c.qinf[2]));
  const double vol2 = ri * (c.qinf[1] * dy - c.qinf[2] * dx);

  const double mu = (*adt1) * c.eps;

  double f = 0.5 * (vol1 * q1[0] + vol2 * c.qinf[0]) + mu * (q1[0] - c.qinf[0]);
  stage[0] = f;
  f = 0.5 * (vol1 * q1[1] + p1 * dy + vol2 * c.qinf[1] + p2 * dy) +
      mu * (q1[1] - c.qinf[1]);
  stage[1] = f;
  f = 0.5 * (vol1 * q1[2] - p1 * dx + vol2 * c.qinf[2] - p2 * dx) +
      mu * (q1[2] - c.qinf[2]);
  stage[2] = f;
  f = 0.5 * (vol1 * (q1[3] + p1) + vol2 * (c.qinf[3] + p2)) +
      mu * (q1[3] - c.qinf[3]);
  stage[3] = f;
}

/// Explicit pseudo-timestep update; accumulates the RMS residual used
/// as the convergence monitor.
inline void update(const double* qold, double* q, double* res,
                   const double* adt, double* rms) {
  const double adti = 1.0 / (*adt);
  for (int n = 0; n < 4; ++n) {
    const double del = adti * res[n];
    q[n] = qold[n] - del;
    res[n] = 0.0;
    *rms += del * del;
  }
}

}  // namespace airfoil
