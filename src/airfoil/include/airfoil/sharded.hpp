// Shard-aware Airfoil — the op2 shard core (op2/shard.hpp +
// op2/exchange.hpp) driven end to end: N runtime shards in ONE
// process, each owning an RCB slice of the cells plus a read-only halo,
// with q exchanged through the pluggable transport as an hpxlite future
// that overlaps interior computation.  This is the single-process
// rehearsal of the paper's full-scale MPI+HPX execution shape.
//
// Scheme (vs. airfoil/distributed.hpp, the memcpy-MPI model):
//
//   cells   partitioned by RCB over centroids; local order is
//           [owned, ascending global id | halo, ascending], so the
//           owned prefix doubles as the iterate window for direct
//           loops (save_soln / update touch owned cells only).
//   edges   EVERY edge incident to >= 1 owned cell is replicated
//           locally — the flux of a cut edge is computed redundantly
//           on both sides, which eliminates the residual reduction
//           (there is ONE exchanged field: q).  Local order is
//           interior edges (both cells owned) first, boundary edges
//           (one cell in the halo) after, each ascending by global id,
//           so [0, interior_edges) is the exchange-independent span.
//   bedges  owned by their cell's owner; never touch the halo.
//
// Bit-exactness: res_calc/bres_calc are replaced by their *_stage
// flavours (airfoil/kernels.hpp), which write per-edge flux slots
// instead of accumulating through the map.  A serial apply pass per
// shard then adds the slots in ascending GLOBAL edge id — skipping
// halo-cell targets, whose owners compute the same flux from the same
// bits — so every owned cell sees exactly the sequential accumulation
// order and hpx_shard(N) reproduces the seq flow field bit for bit.
// The rms monitor is reduced per shard and summed in shard order; it
// is deterministic but associates differently from seq, so tests
// compare it with a tolerance (two-tier contract).
//
// Per iteration:  exchange q -> fences armed
//                 per shard, concurrently:
//                   save_soln (owned)           | overlaps exchange
//                   adt_calc  interior | gate | halo
//                   res_calc_stage  interior | gate | boundary
//                   bres_calc_stage (all local, no fence)
//                   apply res stage, apply bres stage (serial, gid order)
//                   update (owned, rms partial)
//                 join; second exchange before the second RK stage.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "airfoil/mesh.hpp"
#include "airfoil/solver.hpp"
#include "op2/exchange.hpp"
#include "op2/shard.hpp"

namespace airfoil {

/// One shard's private universe: a self-contained sim over its local
/// sub-mesh plus the staging state the deterministic apply needs.
struct shard_domain {
  sim local;                      // private sub-mesh + solution state
  int shard = 0;
  int nowned = 0;                 // local cells [0, nowned) are owned
  int interior_edges = 0;         // local edges [0, interior_edges)
                                  // touch owned cells only
  std::vector<int> global_cell;   // local cell  -> global cell id
  std::vector<int> global_edge;   // local edge  -> global edge id
  std::vector<int> global_bedge;  // local bedge -> global bedge id
  /// Local edge ids in ascending global-edge order — the apply
  /// permutation that reproduces the sequential accumulation order.
  std::vector<int> edge_apply;
  op2::op_dat p_res_stage;        // edges,  dim 8: +f for cell1, -f for cell2
  op2::op_dat p_bres_stage;       // bedges, dim 4
  double rms = 0.0;               // this shard's update() partial
  /// Per-shard loop names ("adt_calc@s3"): stable storage for the
  /// const char* op_par_loop keeps, and the handle OP2_FAULT targets a
  /// single shard's loop by ("bres_calc@s1:throw").
  std::string n_save, n_adt, n_res, n_bres, n_update;
};

/// A sharded simulation: the cell decomposition, one domain per shard,
/// and the halo exchanger for q.  hp/xq live behind unique_ptr so the
/// addresses the exchanger and the fences hand out stay stable when a
/// shard_sim is moved.
struct shard_sim {
  std::unique_ptr<op2::halo_partition> hp;
  std::vector<shard_domain> shards;
  std::unique_ptr<op2::halo_exchanger> xq;
  int global_cells = 0;
};

/// Decomposes `m` (a mesh from generate_mesh) into `nshards` owner/halo
/// domains (RCB over cell centroids, halo via pecell adjacency).
/// Deterministic: same mesh + same arguments -> same layout, on any
/// platform (see op2/partition.hpp).
shard_sim make_shard_sim(const op2::mesh& m, int nshards, int halo_depth = 1);

/// Runs `niter` iterations across all shards, two halo exchanges per
/// iteration, loops under the currently configured op2 backend (the
/// overlap schedule needs hpx_shard; any backend is correct).
run_result run_sharded(shard_sim& d, int niter);

/// Gathers the owned q values back into a global field (4 per cell).
std::vector<double> gather_q(const shard_sim& d);

/// Seeds every shard's local q (owned and halo) from a global field.
void scatter_q(shard_sim& d, std::span<const double> q);

/// Convenience driver used by run_with_backend when the executor
/// advertises `sharded` capabilities: decomposes s.mesh per the current
/// config (shards / halo_depth), seeds from s.p_q, runs, and scatters
/// the owned q back into s.  Only p_q is written back; qold/adt/res
/// are per-shard scratch.
run_result run_sharded(sim& s, int niter);

}  // namespace airfoil
