// Checkpointing for the Airfoil solver: saves/restores the full
// simulation (mesh + solution dats) through the op2 mesh container, so
// long runs can resume and cross-backend bit-comparisons can be made
// from identical snapshots.
//
// Checkpoint files carry an integrity envelope around the mesh payload:
//
//   airfoil-state 2
//   bytes <payload size>
//   fnv1a <hex checksum of the payload>
//   <op2 mesh payload>
//
// load_state verifies the size and checksum before parsing, so a
// truncated or bit-corrupted checkpoint fails with a clear error
// instead of a confusing parse failure (or, worse, silently loading a
// wrong flow field).  Bare op2 mesh files (the pre-envelope v1 format)
// are still accepted, unverified.
#pragma once

#include <string>

#include "airfoil/solver.hpp"

namespace airfoil {

/// Writes mesh and solution state (q, qold, adt, res) to `path`,
/// wrapped in the version + checksum envelope above.
void save_state(const sim& s, const std::string& path);

/// Reads a checkpoint written by save_state and reconstructs the
/// simulation.  Throws std::runtime_error naming the file and the
/// defect on truncated, corrupted, or malformed checkpoints.
sim load_state(const std::string& path);

}  // namespace airfoil
