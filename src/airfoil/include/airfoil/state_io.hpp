// Checkpointing for the Airfoil solver: saves/restores the full
// simulation (mesh + solution dats) through the op2 mesh container, so
// long runs can resume and cross-backend bit-comparisons can be made
// from identical snapshots.
#pragma once

#include <string>

#include "airfoil/solver.hpp"

namespace airfoil {

/// Writes mesh and solution state (q, qold, adt, res) to `path`.
void save_state(const sim& s, const std::string& path);

/// Reads a checkpoint written by save_state and reconstructs the
/// simulation.  Throws std::runtime_error on malformed files.
sim load_state(const std::string& path);

}  // namespace airfoil
