// Physical and scheme constants of the Airfoil benchmark (Giles et
// al., "Using automatic differentiation for adjoint CFD code
// development" — the nonlinear airfoil code distributed with OP2).
//
// Free-stream state qinf derives from the Mach number and angle of
// attack; gam/gm1/cfl/eps parameterise the finite-volume scheme.  They
// are global constants exactly as in the original code (OP2 propagates
// them with op_decl_const; in a shared-memory build plain globals are
// equivalent).
#pragma once

#include <array>
#include <cmath>

namespace airfoil {

struct flow_constants {
  double gam = 1.4;
  double gm1 = 0.4;               // gam - 1
  double cfl = 0.9;
  double eps = 0.05;
  double mach = 0.4;
  double alpha = 3.0 * std::atan(1.0) / 45.0;  // 3 degrees
  std::array<double, 4> qinf{};   // free-stream conservative state

  /// Recomputes the derived members from gam/mach/alpha.
  void finalise() {
    gm1 = gam - 1.0;
    const double p = 1.0;
    const double r = 1.0;
    const double u = std::sqrt(gam * p / r) * mach;
    const double e = p / (r * gm1) + 0.5 * u * u;
    qinf[0] = r;
    qinf[1] = r * u * std::cos(alpha);
    qinf[2] = r * u * std::sin(alpha);
    qinf[3] = r * e;
  }
};

/// The process-wide constants (mutable only before a run starts).
inline flow_constants& constants() {
  static flow_constants c = [] {
    flow_constants init;
    init.finalise();
    return init;
  }();
  return c;
}

/// Boundary-condition markers carried by the p_bound dat.
inline constexpr int bound_wall = 1;      // inviscid wall (the airfoil)
inline constexpr int bound_farfield = 2;  // free-stream far field

}  // namespace airfoil
