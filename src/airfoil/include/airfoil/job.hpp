// Job-able Airfoil driver for op2::service: run_job packages the
// classic five-loop iteration as a cancellable, retryable unit of work
// whose mesh, sim state and prepared-loop handles live in a
// tenant-owned workspace instead of function-local statics, so N
// Airfoil jobs from N tenants coexist in one process without sharing
// replay state.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hpxlite/spinlock.hpp"
#include "hpxlite/stop_token.hpp"
#include "op2/service.hpp"

#include "airfoil/mesh.hpp"
#include "airfoil/solver.hpp"

namespace airfoil {

struct job_params {
  /// Mesh size; service jobs default small so many fit in one process.
  int imax = 30;
  int jmax = 15;
  int niter = 10;
  /// Copies the final p_q field into job_output::solution — the chaos
  /// suite's bit-exactness evidence.
  bool keep_solution = false;
};

struct job_output {
  double final_rms = 0.0;
  double checksum = 0.0;
  int iterations = 0;
  /// op_par_loop launches this run issued (9 per iteration).
  std::uint64_t loops = 0;
  std::vector<double> solution;  // p_q when keep_solution was set
};

/// One tenant's Airfoil state: the session keeps the mesh alive and
/// owns the named prepared-loop handles, so repeat jobs replay captured
/// descriptors instead of re-capturing; the sim is built lazily on the
/// first run_job against this workspace (later runs must pass the same
/// mesh size).  Jobs against one workspace serialise on its lock — run
/// concurrent jobs against separate workspaces (one per tenant).
struct job_workspace {
  op2::service::session session;
  std::shared_ptr<sim> state;
  hpxlite::spinlock lock;
};

/// Runs one Airfoil job: resets the workspace solution to the free
/// stream, then runs `params.niter` classic iterations, polling `stop`
/// between loops (throws hpxlite::operation_cancelled when requested —
/// job cancel, tenant cancel, service shutdown or job deadline).  A
/// non-finite residual or checksum (an unhealed corrupt fault) throws
/// std::runtime_error so the service's job-level retry re-runs from the
/// pristine initial condition.
job_output run_job(const job_params& params, job_workspace& workspace,
                   const hpxlite::stop_token& stop);

}  // namespace airfoil
