// Umbrella header for the Airfoil benchmark application.
#pragma once

#include "airfoil/constants.hpp"
#include "airfoil/distributed.hpp"
#include "airfoil/kernels.hpp"
#include "airfoil/mesh.hpp"
#include "airfoil/resilience.hpp"
#include "airfoil/solver.hpp"
#include "airfoil/state_io.hpp"
