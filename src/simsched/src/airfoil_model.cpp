#include "simsched/airfoil_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "simsched/engine.hpp"

namespace simsched {

double loop_shape::total_cost_us() const {
  double sum = 0.0;
  for (const auto& color : color_block_costs) {
    for (const double c : color) {
      sum += c;
    }
  }
  return sum;
}

namespace {

/// splitmix64: deterministic per-block hash for the cost noise.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Multiplicative noise factor with unit mean and standard deviation
/// `cv` (uniform over [1 - cv√3, 1 + cv√3]).
double noise_factor(std::uint64_t seed, std::uint64_t index, double cv) {
  if (cv <= 0.0) {
    return 1.0;
  }
  const double u = static_cast<double>(splitmix64(seed ^ index) >> 11) /
                   static_cast<double>(1ULL << 53);
  constexpr double sqrt3 = 1.7320508075688772;
  return 1.0 + cv * sqrt3 * (2.0 * u - 1.0);
}

}  // namespace

loop_shape make_loop_shape(std::string name, const op2::op_plan& plan,
                           double us_per_element, bool direct,
                           std::vector<int> reads, std::vector<int> writes,
                           double noise_cv, std::uint64_t noise_seed) {
  loop_shape shape;
  // Mix the loop name into the seed so different loops see different
  // (but reproducible) noise streams.
  for (const char c : name) {
    noise_seed = splitmix64(noise_seed ^ static_cast<std::uint64_t>(c));
  }
  shape.name = std::move(name);
  shape.direct = direct;
  shape.reads = std::move(reads);
  shape.writes = std::move(writes);
  shape.color_block_costs.reserve(plan.color_blocks.size());
  for (const auto& blocks : plan.color_blocks) {
    std::vector<double> costs;
    costs.reserve(blocks.size());
    for (const int b : blocks) {
      const double base =
          us_per_element *
          static_cast<double>(plan.nelems[static_cast<std::size_t>(b)]);
      costs.push_back(base * noise_factor(noise_seed,
                                          static_cast<std::uint64_t>(b),
                                          noise_cv));
    }
    shape.color_block_costs.push_back(std::move(costs));
  }
  return shape;
}

const char* to_string(method m) {
  switch (m) {
    case method::omp_forkjoin:
      return "omp_forkjoin";
    case method::hpx_foreach_auto:
      return "hpx_foreach_auto";
    case method::hpx_foreach_static:
      return "hpx_foreach_static";
    case method::hpx_async:
      return "hpx_async";
    case method::hpx_dataflow:
      return "hpx_dataflow";
  }
  return "?";
}

std::vector<method> all_methods() {
  return {method::omp_forkjoin, method::hpx_foreach_auto,
          method::hpx_foreach_static, method::hpx_async,
          method::hpx_dataflow};
}

method method_from_name(const std::string& name) {
  for (const method m : all_methods()) {
    if (name == to_string(m)) {
      return m;
    }
  }
  std::string msg = "simsched: unknown method '" + name + "'; available:";
  for (const method m : all_methods()) {
    msg += ' ';
    msg += to_string(m);
  }
  throw std::invalid_argument(msg);
}

namespace {

double log2_threads(unsigned threads) {
  return std::log2(static_cast<double>(threads) + 1.0);
}

/// Groups per-block costs into chunk costs of `blocks_per_chunk`.
std::vector<double> chunk_up(const std::vector<double>& blocks,
                             std::size_t blocks_per_chunk) {
  if (blocks_per_chunk == 0) {
    blocks_per_chunk = 1;
  }
  std::vector<double> chunks;
  for (std::size_t i = 0; i < blocks.size(); i += blocks_per_chunk) {
    double c = 0.0;
    const std::size_t end = std::min(i + blocks_per_chunk, blocks.size());
    for (std::size_t k = i; k < end; ++k) {
      c += blocks[k];
    }
    chunks.push_back(c);
  }
  return chunks;
}

/// OpenMP static schedule: one contiguous chunk per thread.
std::vector<double> omp_split(const std::vector<double>& blocks,
                              unsigned threads) {
  const std::size_t per =
      (blocks.size() + threads - 1) / static_cast<std::size_t>(threads);
  return chunk_up(blocks, per == 0 ? 1 : per);
}

/// Default chunk size for the task-based methods: ~4 chunks per thread
/// per colour, so stealing has something to balance with.
std::size_t default_task_chunk(std::size_t nblocks, unsigned threads) {
  const std::size_t chunk =
      nblocks / (4 * static_cast<std::size_t>(threads));
  return chunk == 0 ? 1 : chunk;
}

/// Chunk size the auto-partitioner would pick: enough blocks to reach
/// the target task time, capped so each worker still gets work.
std::size_t auto_chunk(const std::vector<double>& blocks, unsigned threads,
                       const overhead_model& ov) {
  if (blocks.empty()) {
    return 1;
  }
  double total = 0.0;
  for (const double b : blocks) {
    total += b;
  }
  const double avg = total / static_cast<double>(blocks.size());
  std::size_t chunk =
      avg > 0.0
          ? static_cast<std::size_t>(ov.auto_chunk_target_us / avg)
          : blocks.size();
  if (chunk == 0) {
    chunk = 1;
  }
  std::size_t per_worker =
      blocks.size() / static_cast<std::size_t>(threads);
  if (per_worker == 0) {
    per_worker = 1;
  }
  if (chunk > per_worker) {
    chunk = per_worker;
  }
  return chunk;
}

struct emitted {
  task_id entry;  // first node of the loop (deps attach here)
  task_id exit;   // completion join (dependents attach here)
};

/// Emits one loop in fork-join style (OpenMP or for_each(par)): per
/// colour a serial fork, the chunk tasks, and a barrier join; colours
/// chain through the barriers.
emitted emit_forkjoin(task_graph& g, const loop_shape& L, unsigned threads,
                      const overhead_model& ov,
                      const std::vector<task_id>& deps, bool omp_style,
                      bool auto_probe, std::size_t static_chunk) {
  std::vector<task_id> prev = deps;
  task_id entry = 0;
  bool first = true;
  // With more than one thread the master sleeps at each region's
  // implicit barrier and must wake (condition-variable latency + next
  // region launch) before anything further runs — the per-region serial
  // round trip that the future-based methods avoid.
  const double wake = threads > 1 ? ov.driver_wakeup_us : 0.0;
  for (const auto& color : L.color_block_costs) {
    // Fork: the master's serial cost to start the region.
    const double fork_cost =
        wake + (omp_style ? ov.omp_fork_us : ov.hpx_spawn_us);
    const task_id fork = g.add_task(fork_cost, prev, /*serial=*/true);
    if (first) {
      entry = fork;
      first = false;
    }
    std::vector<task_id> pieces;
    task_id after_fork = fork;
    std::vector<double> chunks;
    if (omp_style) {
      chunks = omp_split(color, threads);
    } else if (auto_probe) {
      // The auto-partitioner's serial probe: ~1% of the colour runs on
      // the master before anything parallel starts.
      double total = 0.0;
      for (const double b : color) {
        total += b;
      }
      const task_id probe = g.add_task(total * ov.auto_probe_fraction,
                                       {fork}, /*serial=*/true);
      after_fork = probe;
      chunks = chunk_up(color, auto_chunk(color, threads, ov));
      // The probed fraction is already executed.
      for (double& c : chunks) {
        c *= (1.0 - ov.auto_probe_fraction);
      }
    } else {
      chunks = chunk_up(color, static_chunk != 0
                                   ? static_chunk
                                   : default_task_chunk(color.size(),
                                                        threads));
    }
    pieces.reserve(chunks.size());
    for (const double c : chunks) {
      const double spawn = omp_style ? 0.0 : ov.hpx_spawn_us;
      pieces.push_back(g.add_task(c + spawn, {after_fork}));
    }
    // Barrier: every worker synchronises before the next region.
    const double barrier_cost =
        (omp_style ? ov.omp_barrier_us : ov.hpx_join_us) *
        log2_threads(threads);
    const task_id barrier = g.add_task(barrier_cost, pieces);
    prev = {barrier};
  }
  if (first) {
    // Empty loop: a zero-cost pass-through.
    const task_id nop = g.add_task(0.0, deps);
    return {nop, nop};
  }
  return {entry, prev.front()};
}

/// Emits one loop in task style (async / dataflow): a cheap activation
/// node, chunk tasks per colour, colours chained through lightweight
/// joins (continuations, not barriers).
emitted emit_tasked(task_graph& g, const loop_shape& L, unsigned threads,
                    const overhead_model& ov, const std::vector<task_id>& deps,
                    std::size_t static_chunk) {
  const task_id entry = g.add_task(ov.dataflow_node_us, deps);
  std::vector<task_id> prev = {entry};
  for (const auto& color : L.color_block_costs) {
    const std::size_t chunk =
        static_chunk != 0 ? static_chunk
                          : default_task_chunk(color.size(), threads);
    auto chunks = chunk_up(color, chunk);
    std::vector<task_id> pieces;
    pieces.reserve(chunks.size());
    for (const double c : chunks) {
      pieces.push_back(g.add_task(c + ov.hpx_spawn_us, prev));
    }
    // Colour boundary: a continuation, not a full barrier.
    prev = {g.add_task(ov.dataflow_node_us, pieces)};
  }
  return {entry, prev.front()};
}

/// Read/write future chaining, mirroring op2::op_dat_df bookkeeping.
struct df_tracker {
  std::vector<task_id> last_write;
  std::vector<bool> has_write;
  std::vector<std::vector<task_id>> readers;

  explicit df_tracker(int ndats)
      : last_write(static_cast<std::size_t>(ndats), 0),
        has_write(static_cast<std::size_t>(ndats), false),
        readers(static_cast<std::size_t>(ndats)) {}

  std::vector<task_id> deps_for(const loop_shape& L) const {
    std::vector<task_id> deps;
    const auto add_write_dep = [&](int dat) {
      const auto d = static_cast<std::size_t>(dat);
      if (has_write[d]) {
        deps.push_back(last_write[d]);
      }
    };
    for (const int dat : L.reads) {
      add_write_dep(dat);
    }
    for (const int dat : L.writes) {
      add_write_dep(dat);
      const auto d = static_cast<std::size_t>(dat);
      deps.insert(deps.end(), readers[d].begin(), readers[d].end());
    }
    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
    return deps;
  }

  void record(const loop_shape& L, task_id exit) {
    for (const int dat : L.writes) {
      const auto d = static_cast<std::size_t>(dat);
      last_write[d] = exit;
      has_write[d] = true;
      readers[d].clear();
    }
    for (const int dat : L.reads) {
      readers[static_cast<std::size_t>(dat)].push_back(exit);
    }
  }
};

}  // namespace

task_graph build_airfoil_graph(const airfoil_shape& shape, method m,
                               unsigned threads, const overhead_model& ov,
                               std::size_t static_chunk_blocks) {
  if (threads == 0) {
    throw std::invalid_argument("build_airfoil_graph: zero threads");
  }
  task_graph g;

  const bool fork_join = m == method::omp_forkjoin ||
                         m == method::hpx_foreach_auto ||
                         m == method::hpx_foreach_static;

  if (fork_join) {
    // Strict program order: each loop starts after the previous loop's
    // final barrier.
    const bool omp = m == method::omp_forkjoin;
    const bool probe = m == method::hpx_foreach_auto;
    std::vector<task_id> prev;
    const auto run = [&](const loop_shape& L) {
      // The driver marshals arguments and looks up the plan before the
      // region can fork.
      prev = {g.add_task(ov.loop_launch_us, prev, /*serial=*/true)};
      const emitted e = emit_forkjoin(g, L, threads, ov, prev, omp, probe,
                                      static_chunk_blocks);
      prev = {e.exit};
    };
    for (int iter = 0; iter < shape.niter; ++iter) {
      run(shape.save);
      for (int k = 0; k < 2; ++k) {
        run(shape.adt);
        run(shape.res);
        run(shape.bres);
        run(shape.update);
      }
    }
    return g;
  }

  if (m == method::hpx_async) {
    // §III-A2 driver: after every .get() the master wakes up (serial
    // cost) and launches the next loop; save_soln is launched together
    // with the first adt_calc and only joins before update.
    const double wake = threads > 1 ? ov.driver_wakeup_us : 0.0;
    std::vector<task_id> iter_start;  // empty on the first iteration
    for (int iter = 0; iter < shape.niter; ++iter) {
      const task_id launch_save =
          g.add_task(ov.loop_launch_us, iter_start, /*serial=*/true);
      const emitted save = emit_tasked(g, shape.save, threads, ov,
                                       {launch_save}, static_chunk_blocks);
      std::vector<task_id> stage_start = iter_start;
      task_id last_update = 0;
      for (int k = 0; k < 2; ++k) {
        const task_id launch_adt =
            g.add_task(ov.loop_launch_us, stage_start, /*serial=*/true);
        const emitted adt = emit_tasked(g, shape.adt, threads, ov,
                                        {launch_adt}, static_chunk_blocks);
        const task_id wake_adt =
            g.add_task(wake, {adt.exit}, /*serial=*/true);
        const task_id launch_res =
            g.add_task(ov.loop_launch_us, {wake_adt}, /*serial=*/true);
        const emitted res = emit_tasked(g, shape.res, threads, ov,
                                        {launch_res}, static_chunk_blocks);
        const task_id wake_res =
            g.add_task(wake, {res.exit}, /*serial=*/true);
        const task_id launch_bres =
            g.add_task(ov.loop_launch_us, {wake_res}, /*serial=*/true);
        const emitted bres = emit_tasked(g, shape.bres, threads, ov,
                                         {launch_bres}, static_chunk_blocks);
        const task_id wake_bres =
            g.add_task(wake, {bres.exit}, /*serial=*/true);
        std::vector<task_id> update_deps = {wake_bres};
        if (k == 0) {
          // The driver also blocks in f_save.get() before launching
          // update — one more master round trip.
          update_deps.push_back(
              g.add_task(wake, {save.exit, wake_bres}, /*serial=*/true));
        }
        update_deps = {g.add_task(ov.loop_launch_us, update_deps,
                                  /*serial=*/true)};
        const emitted upd = emit_tasked(g, shape.update, threads, ov,
                                        update_deps, static_chunk_blocks);
        const task_id wake_upd =
            g.add_task(wake, {upd.exit}, /*serial=*/true);
        stage_start = {wake_upd};
        last_update = wake_upd;
      }
      iter_start = {last_update};
    }
    return g;
  }

  // hpx_dataflow: everything launched up front; dependencies are the
  // per-dat read/write chaining of the modified API.
  df_tracker tracker(dat_count);
  const auto run_df = [&](const loop_shape& L) {
    const auto deps = tracker.deps_for(L);
    const emitted e =
        emit_tasked(g, L, threads, ov, deps, static_chunk_blocks);
    tracker.record(L, e.exit);
  };
  for (int iter = 0; iter < shape.niter; ++iter) {
    run_df(shape.save);
    for (int k = 0; k < 2; ++k) {
      run_df(shape.adt);
      run_df(shape.res);
      run_df(shape.bres);
      run_df(shape.update);
    }
  }
  return g;
}

double simulate_airfoil(const airfoil_shape& shape, method m,
                        unsigned threads, const machine_model& machine,
                        const overhead_model& ov,
                        std::size_t static_chunk_blocks) {
  const task_graph g =
      build_airfoil_graph(shape, m, threads, ov, static_chunk_blocks);
  return simulate(g, threads, machine).makespan_us;
}

}  // namespace simsched
