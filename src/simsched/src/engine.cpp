#include "simsched/engine.hpp"

#include <algorithm>
#include <deque>
#include <queue>
#include <stdexcept>
#include <vector>

namespace simsched {

namespace {

struct completion {
  double time;
  unsigned worker;
  task_id task;
  bool operator>(const completion& o) const { return time > o.time; }
};

}  // namespace

schedule_stats simulate(const task_graph& graph, unsigned threads,
                        const machine_model& machine,
                        std::vector<task_interval>* trace) {
  if (trace != nullptr) {
    trace->clear();
    trace->reserve(graph.size());
  }
  if (threads == 0) {
    throw std::invalid_argument("simulate: zero threads");
  }
  const double speed = machine.per_thread_speed(threads);
  const auto n = graph.size();

  std::vector<std::uint32_t> unmet(n);
  std::deque<task_id> ready_any;     // runnable on any worker
  std::deque<task_id> ready_serial;  // pinned to worker 0
  for (task_id t = 0; t < n; ++t) {
    unmet[t] = graph.node(t).unmet_deps;
    if (unmet[t] == 0) {
      (graph.node(t).serial ? ready_serial : ready_any).push_back(t);
    }
  }

  std::vector<bool> busy(threads, false);
  std::priority_queue<completion, std::vector<completion>,
                      std::greater<completion>>
      running;
  double now = 0.0;
  std::size_t completed = 0;
  schedule_stats stats;
  stats.total_work_us = graph.total_work_us();

  const auto dispatch = [&] {
    // Worker 0 prefers serial tasks; other workers take general ones.
    // Serial (master-lane) tasks run at full core speed: a thread
    // executing alone is not sharing its core with a hyper-thread.
    while (!ready_serial.empty() && !busy[0]) {
      const task_id t = ready_serial.front();
      ready_serial.pop_front();
      busy[0] = true;
      const double end = now + graph.node(t).cost_us;
      if (trace != nullptr) {
        trace->push_back({t, 0, now, end});
      }
      running.push({end, 0, t});
    }
    for (unsigned w = 0; w < threads && !ready_any.empty(); ++w) {
      if (busy[w]) {
        continue;
      }
      const task_id t = ready_any.front();
      ready_any.pop_front();
      busy[w] = true;
      const double end = now + graph.node(t).cost_us / speed;
      if (trace != nullptr) {
        trace->push_back({t, w, now, end});
      }
      running.push({end, w, t});
    }
    stats.peak_parallelism = std::max(
        stats.peak_parallelism,
        static_cast<unsigned>(std::count(busy.begin(), busy.end(), true)));
  };

  dispatch();
  while (!running.empty()) {
    // Complete every task finishing at the next event time before
    // re-dispatching, so simultaneous completions release work together.
    now = running.top().time;
    while (!running.empty() && running.top().time <= now) {
      const completion c = running.top();
      running.pop();
      busy[c.worker] = false;
      ++completed;
      for (const task_id d : graph.node(c.task).dependents) {
        if (--unmet[d] == 0) {
          (graph.node(d).serial ? ready_serial : ready_any).push_back(d);
        }
      }
    }
    dispatch();
  }

  if (completed != n) {
    throw std::logic_error("simulate: dependency cycle (" +
                           std::to_string(n - completed) +
                           " tasks never became ready)");
  }
  stats.makespan_us = now;
  const double capacity = now * machine.total_throughput(threads);
  stats.efficiency = capacity > 0.0 ? stats.total_work_us / capacity : 1.0;
  return stats;
}

}  // namespace simsched
