// Discrete-event list scheduler: executes a task_graph on a virtual
// machine of N workers and reports the makespan.
//
// Scheduling discipline: greedy work-conserving list scheduling — when
// a worker is free and ready tasks exist, it takes the oldest one
// (FIFO).  Tasks marked `serial` are pinned to worker 0 (the
// driver/master lane), modelling sequential segments such as the
// auto-chunker's timing probe and driver wakeups after a future.get().
#pragma once

#include <vector>

#include "simsched/machine.hpp"
#include "simsched/task_graph.hpp"

namespace simsched {

struct schedule_stats {
  double makespan_us = 0.0;
  double total_work_us = 0.0;
  /// Fraction of worker-time spent executing tasks (1 = perfect).
  double efficiency = 0.0;
  /// Peak number of simultaneously-busy workers observed.
  unsigned peak_parallelism = 0;
};

/// One executed task in the schedule trace.
struct task_interval {
  task_id task = 0;
  unsigned worker = 0;
  double start_us = 0.0;
  double end_us = 0.0;
};

/// Simulates `graph` on `threads` workers of `machine`.  Throws if the
/// graph has a dependency cycle (tasks never become ready).  When
/// `trace` is non-null it receives one interval per task, in start
/// order — the full Gantt chart of the schedule.
schedule_stats simulate(const task_graph& graph, unsigned threads,
                        const machine_model& machine,
                        std::vector<task_interval>* trace = nullptr);

}  // namespace simsched
