// Task DAG for the scheduling simulator: nodes carry a cost in
// microseconds of single-core work; edges are completion dependencies.
//
// The Airfoil model (airfoil_model.hpp) builds one graph per
// parallelisation method — the graphs differ exactly where the methods
// differ (barrier nodes, driver round-trips, loop-level dependency
// precision) — and the engine (engine.hpp) list-schedules them onto a
// virtual machine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace simsched {

using task_id = std::uint32_t;

struct task_node {
  double cost_us = 0.0;
  std::uint32_t unmet_deps = 0;
  /// True for tasks that must run on the dedicated driver/master lane
  /// (sequential segments: auto-chunker probes, driver wakeups).
  bool serial = false;
  std::vector<task_id> dependents;
};

class task_graph {
 public:
  /// Adds a task; `deps` must all be previously-added ids.
  task_id add_task(double cost_us, const std::vector<task_id>& deps = {},
                   bool serial = false) {
    const auto id = static_cast<task_id>(nodes_.size());
    nodes_.push_back(task_node{cost_us, 0, serial, {}});
    for (const task_id d : deps) {
      add_edge(d, id);
    }
    return id;
  }

  /// Adds an edge d -> t (t waits for d).
  void add_edge(task_id d, task_id t) {
    if (d >= nodes_.size() || t >= nodes_.size()) {
      throw std::out_of_range("task_graph: edge endpoint out of range");
    }
    if (d == t) {
      throw std::invalid_argument("task_graph: self edge");
    }
    nodes_[d].dependents.push_back(t);
    nodes_[t].unmet_deps += 1;
  }

  std::size_t size() const { return nodes_.size(); }
  const task_node& node(task_id id) const { return nodes_[id]; }
  const std::vector<task_node>& nodes() const { return nodes_; }

  /// Sum of all task costs — the sequential work content.
  double total_work_us() const {
    double sum = 0.0;
    for (const auto& n : nodes_) {
      sum += n.cost_us;
    }
    return sum;
  }

 private:
  std::vector<task_node> nodes_;
};

}  // namespace simsched
