// Virtual machine model for the scheduling simulator.
//
// The paper's testbed is a 2-socket Xeon E5 node: 16 physical cores,
// hyper-threading enabled, measurements up to 32 threads ("Hyper-
// threading is enabled after 16 threads").  This machine model
// reproduces that envelope: up to `physical_cores` threads each run at
// full speed; beyond that, the extra hardware threads add only
// `ht_throughput` of a core each, so per-thread speed degrades —
// producing the knee at 16 threads visible in every figure.
#pragma once

#include <stdexcept>

namespace simsched {

struct machine_model {
  unsigned physical_cores = 16;
  /// Extra throughput contributed by each hyper-thread beyond the
  /// physical core count, as a fraction of one core (typical SMT gain
  /// for bandwidth-light FP codes is 0.2–0.4).
  double ht_throughput = 0.30;

  /// Execution speed of each of `threads` equally-loaded workers,
  /// relative to one core.
  double per_thread_speed(unsigned threads) const {
    if (threads == 0) {
      throw std::invalid_argument("machine_model: zero threads");
    }
    if (threads <= physical_cores) {
      return 1.0;
    }
    const double total =
        static_cast<double>(physical_cores) +
        ht_throughput * static_cast<double>(threads - physical_cores);
    return total / static_cast<double>(threads);
  }

  /// Aggregate throughput of `threads` workers, in core-equivalents.
  double total_throughput(unsigned threads) const {
    return per_thread_speed(threads) * static_cast<double>(threads);
  }
};

}  // namespace simsched
