// Builds the Airfoil task graphs — one per parallelisation method —
// for the scheduling simulator.
//
// This module encodes *why* the methods differ, as the paper describes:
//
//   omp_forkjoin       one fork (serial master cost) + one barrier
//                      (cost grows with log2 threads) per parallel
//                      region, one region per colour; loops strictly
//                      sequential
//   hpx_foreach_auto   same fork-join shape, but chunked by the
//                      auto-partitioner — which executes ~1% of every
//                      loop SERIALLY to size the chunks (the paper's
//                      explanation for why auto chunking hurts large
//                      loops)
//   hpx_foreach_static same without the probe, chunk size given
//   hpx_async          no barriers; loop-to-loop ordering follows the
//                      §III-A2 driver's .get() placement, each get
//                      costing one driver wake-up on the master lane;
//                      save_soln overlaps the flux computation
//   hpx_dataflow       no barriers, no driver wake-ups (every loop of
//                      every iteration is launched up front); loop
//                      dependencies are the precise per-dat
//                      read/write-chaining of the modified API, so
//                      independent loops from different stages and
//                      iterations interleave freely
//
// Block structure and per-block costs come from the *real* OP2 plans
// and measured kernel timings, so the simulated machine executes the
// actual schedule shape of the application.
#pragma once

#include <string>
#include <vector>

#include "op2/plan.hpp"
#include "simsched/machine.hpp"
#include "simsched/task_graph.hpp"

namespace simsched {

/// Overhead constants, in microseconds of single-core work.  Defaults
/// are calibrated to commodity-Xeon magnitudes (OpenMP fork+barrier a
/// few µs, HPX task spawn sub-µs — cf. Bull's OpenMP overhead
/// measurements and the HPX task-size study the paper cites).
struct overhead_model {
  double omp_fork_us = 4.0;         // serial master cost per region
  double omp_barrier_us = 1.5;      // × log2(threads) per region
  double hpx_spawn_us = 3.5;        // per chunk task (calibrated)
  double hpx_join_us = 0.8;         // × log2(threads) per for_each join
  double auto_probe_fraction = 0.01;  // serial fraction for auto chunks
  double auto_chunk_target_us = 200.0;
  double driver_wakeup_us = 10.0;   // master wake-up per .get()/join
  double dataflow_node_us = 0.6;    // dataflow-node activation
  /// Serial cost of launching one op_par_loop from the driver (argument
  /// marshalling, plan-cache lookup, frame setup).  Paid inline between
  /// loops by the synchronous and async drivers; the dataflow driver
  /// launches every loop up front, overlapping this cost with execution.
  double loop_launch_us = 20.0;
};

/// One parallel loop: blocks grouped by colour with per-block costs,
/// plus its dat-access signature for dependency derivation.
struct loop_shape {
  std::string name;
  /// color_block_costs[c][k]: cost (µs) of the k-th block of colour c.
  std::vector<std::vector<double>> color_block_costs;
  std::vector<int> reads;   // dat ids read
  std::vector<int> writes;  // dat ids written (INC/WRITE/RW)
  bool direct = false;

  double total_cost_us() const;
};

/// Derives a loop_shape from a real OP2 execution plan and a measured
/// per-element kernel cost.  `noise_cv` adds deterministic (hash-
/// seeded) per-block cost variation with the given coefficient of
/// variation, modelling the cache-miss / OS-jitter imbalance that makes
/// real fork-join barriers wait on stragglers — with cv = 0 every block
/// is identical and barriers are artificially free.
loop_shape make_loop_shape(std::string name, const op2::op_plan& plan,
                           double us_per_element, bool direct,
                           std::vector<int> reads, std::vector<int> writes,
                           double noise_cv = 0.20,
                           std::uint64_t noise_seed = 0x9e3779b97f4a7c15ULL);

/// Dat ids used in the Airfoil access signatures.
enum airfoil_dat : int {
  dat_x = 0,
  dat_q,
  dat_qold,
  dat_adt,
  dat_res,
  dat_bound,
  dat_count,
};

/// The Airfoil program: five loops, executed as
///   per iteration: save_soln; 2 × (adt_calc; res_calc; bres_calc;
///   update)
struct airfoil_shape {
  loop_shape save, adt, res, bres, update;
  int niter = 1;
};

enum class method {
  omp_forkjoin,
  hpx_foreach_auto,
  hpx_foreach_static,
  hpx_async,
  hpx_dataflow,
};

const char* to_string(method m);

/// Every simulated method, in enum order.  With method_from_name this
/// lets harnesses bridge from op2::executor_caps::sim_method strings
/// (the registry's view) to graph builders without a hard-coded table.
std::vector<method> all_methods();

/// Inverse of to_string; throws std::invalid_argument listing the
/// available methods for an unknown name.
method method_from_name(const std::string& name);

/// Builds the full task graph for `m` on `threads` workers.
/// `static_chunk_blocks` sizes the chunks for the static-chunk and
/// async/dataflow methods (blocks per chunk; 0 = one chunk per ~4
/// blocks per thread).
task_graph build_airfoil_graph(const airfoil_shape& shape, method m,
                               unsigned threads, const overhead_model& ov,
                               std::size_t static_chunk_blocks = 0);

/// Convenience: build + simulate, returning the makespan in µs.
double simulate_airfoil(const airfoil_shape& shape, method m,
                        unsigned threads, const machine_model& machine,
                        const overhead_model& ov,
                        std::size_t static_chunk_blocks = 0);

}  // namespace simsched
