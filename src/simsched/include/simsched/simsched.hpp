// Umbrella header for simsched — the virtual-multicore scheduling
// simulator used to reproduce the paper's 32-thread scaling figures on
// hardware that lacks 32 threads (see DESIGN.md, substitution table).
#pragma once

#include "simsched/airfoil_model.hpp"
#include "simsched/engine.hpp"
#include "simsched/machine.hpp"
#include "simsched/task_graph.hpp"
