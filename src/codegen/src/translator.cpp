#include "codegen/translator.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

namespace codegen {

const char* to_string(target t) {
  switch (t) {
    case target::openmp:
      return "openmp";
    case target::hpx_foreach:
      return "hpx_foreach";
    case target::hpx_foreach_chunked:
      return "hpx_foreach_chunked";
    case target::hpx_async:
      return "hpx_async";
    case target::hpx_dataflow:
      return "hpx_dataflow";
    case target::op2hpx:
      return "op2hpx";
  }
  return "?";
}

bool parsed_loop::is_direct() const {
  return std::none_of(args.begin(), args.end(),
                      [](const loop_arg& a) { return a.is_indirect(); });
}

bool parsed_loop::needs_coloring() const {
  return std::any_of(args.begin(), args.end(), [](const loop_arg& a) {
    return a.is_indirect() && a.writes();
  });
}

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("codegen: " + what);
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) {
    --e;
  }
  return s.substr(b, e - b);
}

/// Finds the matching ')' for the '(' at `open`, respecting nesting,
/// string literals and angle brackets in template arguments.
std::size_t match_paren(const std::string& s, std::size_t open) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = open; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '(') {
      ++depth;
    } else if (c == ')') {
      if (--depth == 0) {
        return i;
      }
    }
  }
  fail("unbalanced parentheses in op_par_loop call");
}

/// Splits `s` at top-level commas (not inside parens/strings/<>).
std::vector<std::string> split_args(const std::string& s) {
  std::vector<std::string> out;
  int paren = 0;
  int angle = 0;
  bool in_string = false;
  std::string cur;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      cur += c;
      if (c == '\\' && i + 1 < s.size()) {
        cur += s[++i];
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '(':
        ++paren;
        break;
      case ')':
        --paren;
        break;
      case '<':
        ++angle;
        break;
      case '>':
        if (angle > 0) {
          --angle;
        }
        break;
      case ',':
        if (paren == 0 && angle == 0) {
          out.push_back(trim(cur));
          cur.clear();
          continue;
        }
        break;
      default:
        break;
    }
    cur += c;
  }
  if (!trim(cur).empty()) {
    out.push_back(trim(cur));
  }
  return out;
}

/// Drops a leading "op2::" qualifier so both the classic C spelling
/// and this library's namespaced spelling parse identically.
std::string strip_ns(const std::string& s) {
  constexpr const char* ns = "op2::";
  if (s.rfind(ns, 0) == 0) {
    return s.substr(5);
  }
  return s;
}

std::string strip_quotes(const std::string& s) {
  if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
    return s.substr(1, s.size() - 2);
  }
  return s;
}

int parse_int(const std::string& s, const std::string& context) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(s, &pos);
    if (pos != s.size()) {
      fail("trailing characters in integer '" + s + "' in " + context);
    }
    return v;
  } catch (const std::invalid_argument&) {
    fail("expected integer, got '" + s + "' in " + context);
  } catch (const std::out_of_range&) {
    fail("integer out of range: '" + s + "' in " + context);
  }
}

/// Parses one op_arg_dat / op_arg_dat1 / op_arg_gbl expression.
loop_arg parse_arg(const std::string& expr) {
  const auto open = expr.find('(');
  if (open == std::string::npos) {
    fail("malformed op_arg expression: " + expr);
  }
  std::string fn = strip_ns(trim(expr.substr(0, open)));
  // Drop an explicit template argument list: op_arg_dat<double>.
  const auto lt = fn.find('<');
  std::string template_type;
  if (lt != std::string::npos) {
    const auto gt = fn.rfind('>');
    if (gt == std::string::npos || gt < lt) {
      fail("malformed template argument in: " + expr);
    }
    template_type = trim(fn.substr(lt + 1, gt - lt - 1));
    fn = trim(fn.substr(0, lt));
  }
  const auto close = match_paren(expr, open);
  const auto parts = split_args(expr.substr(open + 1, close - open - 1));

  loop_arg arg;
  if (fn == "op_arg_gbl" || fn == "op_arg_gbl1") {
    // op_arg_gbl(&rms, 1, "double", OP_INC)  (classic)
    // op_arg_gbl<double>(&rms, 1, OP_INC)    (typed)
    arg.is_global = true;
    if (parts.size() == 4) {
      arg.dat = parts[0];
      arg.dim = parse_int(parts[1], expr);
      arg.type = strip_quotes(parts[2]);
      arg.access = strip_ns(parts[3]);
    } else if (parts.size() == 3 && !template_type.empty()) {
      arg.dat = parts[0];
      arg.dim = parse_int(parts[1], expr);
      arg.type = template_type;
      arg.access = strip_ns(parts[2]);
    } else {
      fail("op_arg_gbl expects 3 or 4 arguments: " + expr);
    }
    return arg;
  }
  if (fn != "op_arg_dat" && fn != "op_arg_dat1") {
    fail("expected op_arg_dat/op_arg_gbl, got '" + fn + "'");
  }
  // op_arg_dat(p_x, 0, pcell, 2, "double", OP_READ)  (classic)
  // op_arg_dat<double>(p_x, 0, pcell, 2, OP_READ)    (typed)
  if (parts.size() == 6) {
    arg.dat = parts[0];
    arg.idx = parse_int(parts[1], expr);
    arg.map = strip_ns(parts[2]);
    arg.dim = parse_int(parts[3], expr);
    arg.type = strip_quotes(parts[4]);
    arg.access = strip_ns(parts[5]);
  } else if (parts.size() == 5 && !template_type.empty()) {
    arg.dat = parts[0];
    arg.idx = parse_int(parts[1], expr);
    arg.map = strip_ns(parts[2]);
    arg.dim = parse_int(parts[3], expr);
    arg.type = template_type;
    arg.access = strip_ns(parts[4]);
  } else {
    fail("op_arg_dat expects 5 or 6 arguments: " + expr);
  }
  if (arg.idx < 0) {
    arg.map = "OP_ID";
  }
  return arg;
}

}  // namespace

std::vector<parsed_loop> parse_loops(const std::string& source) {
  std::vector<parsed_loop> loops;
  std::size_t pos = 0;
  while ((pos = source.find("op_par_loop", pos)) != std::string::npos) {
    // Skip identifiers that merely contain the prefix, e.g. a comment
    // word boundary check on the left.
    if (pos > 0 &&
        (std::isalnum(static_cast<unsigned char>(source[pos - 1])) != 0 ||
         source[pos - 1] == '_')) {
      pos += 11;
      continue;
    }
    std::size_t cursor = pos + 11;  // after "op_par_loop"
    // Optional suffix: op_par_loop_save_soln / op_par_loop_async.
    std::string suffix;
    while (cursor < source.size() &&
           (std::isalnum(static_cast<unsigned char>(source[cursor])) != 0 ||
            source[cursor] == '_')) {
      suffix += source[cursor];
      ++cursor;
    }
    while (cursor < source.size() &&
           std::isspace(static_cast<unsigned char>(source[cursor])) != 0) {
      ++cursor;
    }
    if (cursor >= source.size() || source[cursor] != '(') {
      pos = cursor;
      continue;  // a mention, not a call
    }
    const std::size_t close = match_paren(source, cursor);
    auto parts = split_args(source.substr(cursor + 1, close - cursor - 1));
    pos = close;

    parsed_loop loop;
    std::size_t arg_begin = 0;
    if (!suffix.empty() && suffix != "_async") {
      // op_par_loop_adt_calc("adt_calc", cells, args...)
      loop.kernel = suffix.substr(suffix.front() == '_' ? 1 : 0);
      if (parts.size() < 2) {
        fail("op_par_loop" + suffix + " needs name and set");
      }
      loop.name = strip_quotes(parts[0]);
      loop.set = parts[1];
      arg_begin = 2;
    } else {
      // op_par_loop(kernel, "name", set, args...)
      if (parts.size() < 3) {
        fail("op_par_loop needs kernel, name and set");
      }
      loop.kernel = parts[0];
      loop.name = strip_quotes(parts[1]);
      loop.set = parts[2];
      arg_begin = 3;
    }
    for (std::size_t i = arg_begin; i < parts.size(); ++i) {
      loop.args.push_back(parse_arg(parts[i]));
    }
    if (loop.args.empty()) {
      fail("op_par_loop '" + loop.name + "' has no arguments");
    }
    loops.push_back(std::move(loop));
  }
  return loops;
}

namespace {

/// The expression the kernel receives for argument `a` at element `n`.
std::string arg_expr(const loop_arg& a, std::size_t i) {
  std::ostringstream os;
  if (a.is_global) {
    return a.dat;
  }
  if (a.is_direct()) {
    os << "&((" << a.type << "*)" << a.dat << "->data)[" << a.dim << " * n]";
  } else {
    os << "&((" << a.type << "*)" << a.dat << "->data)[" << a.dim << " * "
       << a.map << "->map[" << a.map << "->dim * n + " << a.idx << "]]";
  }
  (void)i;
  return os.str();
}

std::string kernel_call(const parsed_loop& loop, int indent) {
  std::ostringstream os;
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  os << pad << loop.kernel << "(";
  for (std::size_t i = 0; i < loop.args.size(); ++i) {
    if (i != 0) {
      os << ",\n" << pad << std::string(loop.kernel.size() + 1, ' ');
    }
    os << arg_expr(loop.args[i], i);
  }
  os << ");\n";
  return os.str();
}

/// The shared inner block body: resolve block extents, loop elements.
std::string block_body(const parsed_loop& loop, int indent) {
  std::ostringstream os;
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  os << pad << "int blockId = plan->blkmap[blockIdx + block_offset];\n"
     << pad << "int nelem = plan->nelems[blockId];\n"
     << pad << "int offset_b = plan->offset[blockId];\n"
     << pad << "for (int n = offset_b; n < offset_b + nelem; n++) {\n"
     << kernel_call(loop, indent + 2) << pad << "}\n";
  return os.str();
}

std::string color_prologue(const parsed_loop& loop) {
  std::ostringstream os;
  os << "  op_plan* plan = op_plan_get(\"" << loop.name
     << "\", set, part_size, nargs, args, ninds, inds);\n"
     << "  int block_offset = 0;\n"
     << "  for (int col = 0; col < plan->ncolors; col++) {\n"
     << "    int nblocks = plan->ncolblk[col];\n";
  return os.str();
}

/// One argument rendered against this repository's typed API.
std::string op2hpx_arg(const loop_arg& a) {
  std::ostringstream os;
  if (a.is_global) {
    os << "op2::op_arg_gbl<" << a.type << ">(" << a.dat << ", " << a.dim
       << ", op2::" << a.access << ")";
  } else {
    os << "op2::op_arg_dat<" << a.type << ">(" << a.dat << ", " << a.idx
       << ", " << (a.is_direct() ? std::string("op2::OP_ID") : a.map)
       << ", " << a.dim << ", op2::" << a.access << ")";
  }
  return os.str();
}

std::string join_kernels(const std::vector<parsed_loop>& group,
                         const char* sep) {
  std::ostringstream os;
  for (std::size_t i = 0; i < group.size(); ++i) {
    os << (i != 0 ? sep : "") << group[i].kernel;
  }
  return os.str();
}

}  // namespace

std::string emit_loop(const parsed_loop& loop, target t) {
  std::ostringstream os;
  os << "// generated by op2hpx codegen: loop '" << loop.name << "' ("
     << (loop.is_direct() ? "direct" : "indirect")
     << (loop.needs_coloring() ? ", coloured" : "") << ") -> "
     << to_string(t) << "\n";
  os << "void op_par_loop_" << loop.kernel
     << "(const char* name, op_set set, ...) {\n";

  switch (t) {
    case target::openmp:
      // Fig 5: #pragma omp parallel for over the plan's blocks.
      os << color_prologue(loop)
         << "    #pragma omp parallel for\n"
         << "    for (int blockIdx = 0; blockIdx < nblocks; blockIdx++) {\n"
         << block_body(loop, 6) << "    }\n"
         << "    block_offset += nblocks;\n"
         << "  }\n";
      break;

    case target::hpx_foreach:
      // Fig 6: for_each(par, ...) — fork-join, auto grain size.
      os << color_prologue(loop)
         << "    auto r = boost::irange(0, nblocks);\n"
         << "    hpx::parallel::for_each(par, r.begin(), r.end(),\n"
         << "        [&](std::size_t blockIdx) {\n"
         << block_body(loop, 6) << "    });\n"
         << "    block_offset += nblocks;\n"
         << "  }\n";
      break;

    case target::hpx_foreach_chunked:
      // Fig 7: static chunk size for large loops.
      os << color_prologue(loop)
         << "    static_chunk_size scs(chunk_size);\n"
         << "    auto r = boost::irange(0, nblocks);\n"
         << "    hpx::parallel::for_each(par.with(scs), r.begin(), "
            "r.end(),\n"
         << "        [&](std::size_t blockIdx) {\n"
         << block_body(loop, 6) << "    });\n"
         << "    block_offset += nblocks;\n"
         << "  }\n";
      break;

    case target::hpx_async:
      if (loop.is_direct()) {
        // Fig 8: direct loops wrapped in async, returning a future.
        os << "  return async(hpx::launch::async, [=]() {\n"
           << "    auto r = boost::irange(0, nthreads);\n"
           << "    hpx::parallel::for_each(par, r.begin(), r.end(),\n"
           << "        [&](std::size_t thr) {\n"
           << "      int start = (set->size * thr) / nthreads;\n"
           << "      int finish = (set->size * (thr + 1)) / nthreads;\n"
           << "      for (int n = start; n < finish; n++) {\n"
           << kernel_call(loop, 8) << "      }\n"
           << "    });\n"
           << "  });\n";
      } else {
        // Fig 9: indirect loops via for_each(par(task)) -> future.
        os << color_prologue(loop)
           << "    auto r = boost::irange(0, nblocks);\n"
           << "    new_data = hpx::parallel::for_each(par(task), "
              "r.begin(), r.end(),\n"
           << "        [&](std::size_t blockIdx) {\n"
           << block_body(loop, 6) << "    });\n"
           << "    block_offset += nblocks;\n"
           << "  }\n"
           << "  return new_data;\n";
      }
      break;

    case target::op2hpx: {
      // This repository's typed API: a ready-to-compile call site.  The
      // static loop_handle makes it a prepared loop — the first call
      // captures the launch descriptor, repeat calls replay it
      // allocation-free (see op2/prepared_loop.hpp).
      os << "  static op2::loop_handle op2_handle_" << loop.kernel << ";\n"
         << "  op2::op_par_loop(op2_handle_" << loop.kernel << ", "
         << loop.kernel << ", \"" << loop.name << "\", " << loop.set;
      for (const auto& a : loop.args) {
        os << ",\n      " << op2hpx_arg(a);
      }
      os << ");\n";
      break;
    }

    case target::hpx_dataflow:
      // Fig 13: dataflow over future arguments, for_each(par) inside.
      os << "  using hpx::lcos::local::dataflow;\n"
         << "  using hpx::util::unwrapped;\n"
         << "  return dataflow(unwrapped([=](op_set set, op_args args) {\n"
         << color_prologue(loop)
         << "    auto r = boost::irange(0, nblocks);\n"
         << "    hpx::parallel::for_each(par, r.begin(), r.end(),\n"
         << "        [&](std::size_t blockIdx) {\n"
         << block_body(loop, 6) << "    });\n"
         << "    block_offset += nblocks;\n"
         << "  }\n"
         << "    return arg" << loop.args.size() - 1 << ".dat;\n"
         << "  }), args...);\n";
      break;
  }
  os << "}\n";
  return os.str();
}

std::vector<std::vector<std::size_t>> fuse_groups(
    const std::vector<parsed_loop>& loops) {
  std::vector<std::vector<std::size_t>> groups;
  // Globals the open trailing group reduces into (their dat
  // expressions, e.g. "&rms"): any later touch breaks the window —
  // the fused launch merges reductions at finalize, so a member
  // reading (or re-reducing) one mid-group would observe a stale
  // value relative to the unfused program.
  std::vector<std::string> reduced_globals;
  bool open = false;  // trailing group still accepts members
  for (std::size_t i = 0; i < loops.size(); ++i) {
    const auto& loop = loops[i];
    if (!loop.is_direct()) {
      // Indirect loops never fuse (gather/scatter needs its own
      // schedule) and fence the window, exactly like the runtime
      // planner.
      groups.push_back({i});
      open = false;
      continue;
    }
    bool join = open && loops[groups.back().front()].set == loop.set;
    if (join) {
      for (const auto& a : loop.args) {
        if (a.is_global &&
            std::find(reduced_globals.begin(), reduced_globals.end(),
                      a.dat) != reduced_globals.end()) {
          join = false;
          break;
        }
      }
    }
    if (join) {
      groups.back().push_back(i);
    } else {
      groups.push_back({i});
      reduced_globals.clear();
      open = true;
    }
    for (const auto& a : loop.args) {
      if (a.is_global && a.access != "OP_READ") {
        reduced_globals.push_back(a.dat);
      }
    }
  }
  return groups;
}

std::string emit_fused_loop(const std::vector<parsed_loop>& group) {
  if (group.size() < 2) {
    fail("emit_fused_loop needs at least two loops");
  }
  std::ostringstream label;
  for (std::size_t i = 0; i < group.size(); ++i) {
    label << (i != 0 ? "+" : "") << group[i].name;
  }
  const std::string ident = join_kernels(group, "_");
  std::ostringstream os;
  os << "// generated by op2hpx codegen: fused group '" << label.str()
     << "' (" << group.size() << " direct loops over " << group.front().set
     << ") -> op2hpx\n";
  os << "void op_par_loop_" << ident
     << "(const char* name, op_set set, ...) {\n";
  // One handle per fused call site: the first call captures the fused
  // launch (one traversal running every member kernel per element),
  // repeat calls replay it allocation-free (see op2/fused_loop.hpp).
  os << "  static op2::fused_handle op2_fused_" << ident << ";\n"
     << "  op2::op_par_loop_fused(op2_fused_" << ident << ", "
     << group.front().set;
  for (const auto& loop : group) {
    os << ",\n      op2::fuse_loop(" << loop.kernel << ", \"" << loop.name
       << "\"";
    for (const auto& a : loop.args) {
      os << ",\n          " << op2hpx_arg(a);
    }
    os << ")";
  }
  os << ");\n}\n";
  return os.str();
}

std::string summarize_loops(const std::vector<parsed_loop>& loops) {
  std::ostringstream os;
  os << "loops: " << loops.size() << "\n";
  for (const auto& loop : loops) {
    os << "  " << loop.name << " over " << loop.set << " ["
       << (loop.is_direct() ? "direct" : "indirect")
       << (loop.needs_coloring() ? ", coloured" : "") << "] kernel="
       << loop.kernel << "\n";
    for (const auto& a : loop.args) {
      os << "    " << (a.is_global ? "gbl " : "dat ") << a.dat << " dim="
         << a.dim << " " << a.type << " " << a.access;
      if (a.is_indirect()) {
        os << " via " << a.map << "[" << a.idx << "]";
      }
      os << "\n";
    }
  }
  return os.str();
}

std::string emit_translation_unit(const std::vector<parsed_loop>& loops,
                                  target t) {
  return emit_translation_unit(loops, t, emit_options{});
}

std::string emit_translation_unit(const std::vector<parsed_loop>& loops,
                                  target t, const emit_options& opts) {
  std::ostringstream os;
  os << "// Auto-generated by the op2hpx source-to-source translator.\n"
     << "// Target: " << to_string(t) << ". Do not edit.\n";
  if (!opts.backend.empty()) {
    os << "// Backend: " << opts.backend << ".\n";
  }
  // Fusion is an op2hpx-only transformation: the other targets emit
  // the paper's per-loop schedules verbatim.
  const bool fusing = opts.fuse && t == target::op2hpx;
  std::vector<std::vector<std::size_t>> groups;
  if (fusing) {
    groups = fuse_groups(loops);
    std::size_t nfused = 0;
    for (const auto& g : groups) {
      nfused += static_cast<std::size_t>(g.size() >= 2);
    }
    os << "// Fusion: on (" << loops.size() << " loops -> "
       << groups.size() << " launches, " << nfused << " fused).\n";
  }
  os << "\n";
  if (t == target::op2hpx && !opts.backend.empty()) {
    // Runtime bootstrap for the generated call sites: selection is by
    // registry name, so --backend works for any registered executor.
    os << "// Selects the runtime backend the generated loops run "
          "under.\n"
       << "static void op2_select_backend(unsigned threads) {\n"
       << "  op2::init(op2::make_config(\"" << opts.backend
       << "\", threads));\n"
       << "}\n\n";
  }
  if (fusing) {
    for (const auto& g : groups) {
      if (g.size() >= 2) {
        std::vector<parsed_loop> members;
        members.reserve(g.size());
        for (const std::size_t i : g) {
          members.push_back(loops[i]);
        }
        os << emit_fused_loop(members) << "\n";
      } else {
        os << emit_loop(loops[g.front()], t) << "\n";
      }
    }
    return os.str();
  }
  for (const auto& loop : loops) {
    os << emit_loop(loop, t) << "\n";
  }
  return os.str();
}

}  // namespace codegen
