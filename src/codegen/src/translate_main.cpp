// op2hpx-translate: command-line front end of the source-to-source
// translator.  Usage:
//
//   op2hpx-translate --target=hpx_dataflow Airfoil.cpp > kernels.cpp
//   op2hpx-translate --target=op2hpx --backend=hpx_async Airfoil.cpp
//
// Mirrors invoking OP2's Python translator on an application source.
// --backend names any executor registered in op2::backend_registry and
// is threaded into the generated translation unit.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "codegen/translator.hpp"
#include "op2/loop_executor.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: op2hpx-translate [--list] [--fuse] --target=<t> "
         "[--backend=<b>] <source.cpp>\n"
         "  targets: openmp, hpx_foreach, hpx_foreach_chunked, hpx_async,\n"
         "           hpx_dataflow, op2hpx\n"
         "  backends:";
  for (const auto& name : op2::backend_registry::names()) {
    std::cerr << " " << name;
  }
  std::cerr
      << "\n  --backend: runtime backend the generated code selects\n"
         "  --fuse: fuse adjacent direct same-set loops into one launch\n"
         "          (op2hpx target only)\n"
         "  --list: print a summary of the op_par_loop call sites instead\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string target_name;
  std::string path;
  codegen::emit_options opts;
  bool list_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--target=", 0) == 0) {
      target_name = arg.substr(9);
    } else if (arg.rfind("--backend=", 0) == 0) {
      opts.backend = arg.substr(10);
    } else if (arg == "--fuse") {
      opts.fuse = true;
    } else if (arg == "--list") {
      list_only = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      path = arg;
    }
  }
  if (path.empty() || (target_name.empty() && !list_only)) {
    return usage();
  }

  codegen::target t = codegen::target::openmp;
  if (list_only) {
    // target unused in list mode
  } else if (target_name == "openmp") {
    t = codegen::target::openmp;
  } else if (target_name == "hpx_foreach") {
    t = codegen::target::hpx_foreach;
  } else if (target_name == "hpx_foreach_chunked") {
    t = codegen::target::hpx_foreach_chunked;
  } else if (target_name == "hpx_async") {
    t = codegen::target::hpx_async;
  } else if (target_name == "hpx_dataflow") {
    t = codegen::target::hpx_dataflow;
  } else if (target_name == "op2hpx") {
    t = codegen::target::op2hpx;
  } else {
    std::cerr << "unknown target '" << target_name << "'\n";
    return usage();
  }

  if (!opts.backend.empty()) {
    try {
      // Canonicalise ("dataflow" -> "hpx_dataflow"); throws with the
      // registered-backend list on a mistyped name.
      opts.backend = op2::backend_registry::resolve(opts.backend);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return usage();
    }
  }

  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open '" << path << "'\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  try {
    const auto loops = codegen::parse_loops(buffer.str());
    if (loops.empty()) {
      std::cerr << "warning: no op_par_loop call sites found in " << path
                << "\n";
    }
    if (list_only) {
      std::cout << codegen::summarize_loops(loops);
    } else {
      std::cout << codegen::emit_translation_unit(loops, t, opts);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
