// Synchronisation primitives over the hpxlite runtime: a count-down
// latch and a cyclic barrier whose waits HELP (execute queued tasks)
// when called from a worker thread, like future::wait — so user code
// can coordinate tasks without risking pool deadlock.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>

#include "hpxlite/assert.hpp"
#include "hpxlite/scheduler.hpp"

namespace hpxlite {

/// Single-use count-down latch (std::latch semantics + helping wait).
class latch {
 public:
  explicit latch(std::ptrdiff_t count) : count_(count) {
    HPXLITE_ASSERT(count >= 0, "latch: negative count");
  }

  latch(const latch&) = delete;
  latch& operator=(const latch&) = delete;

  /// Decrements by n; the latch releases at zero.
  void count_down(std::ptrdiff_t n = 1) {
    std::ptrdiff_t left;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      HPXLITE_ASSERT(count_ >= n, "latch: count_down below zero");
      count_ -= n;
      left = count_;
    }
    if (left == 0) {
      cv_.notify_all();
    }
  }

  bool try_wait() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return count_ == 0;
  }

  /// Blocks until the count reaches zero; worker threads execute queued
  /// tasks while waiting.
  void wait() const {
    if (runtime* rt = runtime::current()) {
      // Help on the caller's own pool (TLS, registry-independent — see
      // shared_state::wait for why this matters during teardown).
      while (!try_wait()) {
        if (!rt->try_execute_one()) {
          std::this_thread::yield();
        }
      }
      return;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return count_ == 0; });
  }

  void arrive_and_wait(std::ptrdiff_t n = 1) {
    count_down(n);
    wait();
  }

 private:
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  std::ptrdiff_t count_;
};

/// Reusable barrier for a fixed party count (std::barrier semantics
/// without completion functions), with helping waits.
class barrier {
 public:
  explicit barrier(std::ptrdiff_t parties) : parties_(parties) {
    HPXLITE_ASSERT(parties > 0, "barrier: needs at least one party");
  }

  barrier(const barrier&) = delete;
  barrier& operator=(const barrier&) = delete;

  /// Arrives and waits for the rest of the current generation.
  void arrive_and_wait() {
    std::uint64_t my_generation;
    bool last;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      my_generation = generation_;
      last = ++arrived_ == parties_;
      if (last) {
        arrived_ = 0;
        ++generation_;
      }
    }
    if (last) {
      cv_.notify_all();
      return;
    }
    const auto passed = [&] {
      std::lock_guard<std::mutex> lock(mutex_);
      return generation_ != my_generation;
    };
    if (runtime* rt = runtime::current()) {
      while (!passed()) {
        if (!rt->try_execute_one()) {
          std::this_thread::yield();
        }
      }
      return;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return generation_ != my_generation; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::ptrdiff_t parties_;
  std::ptrdiff_t arrived_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace hpxlite
