// Test-and-test-and-set spinlock with exponential backoff.
//
// Used to protect the very short critical sections inside shared future
// state and the per-worker task queues, where a std::mutex would cost a
// syscall on contention.  Satisfies the C++ Lockable requirements so it
// composes with std::lock_guard / std::unique_lock.
#pragma once

#include <atomic>
#include <thread>

namespace hpxlite {

class spinlock {
 public:
  spinlock() = default;
  spinlock(const spinlock&) = delete;
  spinlock& operator=(const spinlock&) = delete;

  void lock() noexcept {
    int spins = 0;
    for (;;) {
      // First try the cheap exchange; on failure spin on a plain load so
      // the cache line stays shared until it is released.
      if (!flag_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      while (flag_.load(std::memory_order_relaxed)) {
        if (++spins > spin_limit) {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
  }

  bool try_lock() noexcept {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  static constexpr int spin_limit = 64;
  std::atomic<bool> flag_{false};
};

}  // namespace hpxlite
