// when_any / when_some — readiness composition beyond when_all,
// completing the future-combinator surface of the HPX model.
//
//   when_any(futures)  -> future<any_result<T>>: ready as soon as ONE
//                         input is ready; yields all inputs back plus
//                         the index of the first-ready one
//   when_some(k, fs)   -> ready once k inputs are ready
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "hpxlite/future.hpp"

namespace hpxlite {

/// Result of when_any: the (possibly still-pending) inputs and the
/// index of the input whose completion fired the combinator.
template <typename T>
struct any_result {
  std::size_t index = 0;
  std::vector<future<T>> futures;
};

/// Result of when_some: the inputs plus the indices of the first `k`
/// completions, in completion order.
template <typename T>
struct some_result {
  std::vector<std::size_t> indices;
  std::vector<future<T>> futures;
};

/// Ready once at least `count` of `futures` are ready.  count == 0 is
/// immediately ready; count > size is clamped.
template <typename T>
future<some_result<T>> when_some(std::size_t count,
                                 std::vector<future<T>> futures) {
  using result_t = some_result<T>;
  auto next = std::make_shared<detail::shared_state<result_t>>();
  if (count > futures.size()) {
    count = futures.size();
  }
  if (count == 0) {
    result_t r;
    r.futures = std::move(futures);
    next->set_value(std::move(r));
    return future<result_t>(std::move(next));
  }

  struct wait_block {
    std::atomic<std::size_t> ready{0};
    std::atomic<bool> fired{false};
    spinlock index_lock;
    std::vector<std::size_t> indices;
    std::vector<future<T>> held;
    std::size_t threshold = 0;
    std::shared_ptr<detail::shared_state<result_t>> next;
  };
  auto block = std::make_shared<wait_block>();
  block->threshold = count;
  block->held = std::move(futures);
  block->next = next;

  for (std::size_t i = 0; i < block->held.size(); ++i) {
    HPXLITE_ASSERT(block->held[i].valid(),
                   "when_some over an invalid future");
    block->held[i].state()->add_continuation(
        [block, i] {
          {
            std::lock_guard<spinlock> lock(block->index_lock);
            if (block->indices.size() < block->threshold) {
              block->indices.push_back(i);
            }
          }
          if (block->ready.fetch_add(1, std::memory_order_acq_rel) + 1 ==
                  block->threshold &&
              !block->fired.exchange(true)) {
            result_t r;
            r.indices = std::move(block->indices);
            r.futures = std::move(block->held);
            block->next->set_value(std::move(r));
          }
        },
        detail::continuation_mode::inline_);
  }
  return future<result_t>(std::move(next));
}

/// Ready as soon as any one input is ready.
template <typename T>
future<any_result<T>> when_any(std::vector<future<T>> futures) {
  auto some = when_some(1, std::move(futures));
  return some.then(
      [](future<some_result<T>>&& r) {
        some_result<T> s = r.get();
        any_result<T> a;
        a.index = s.indices.empty() ? 0 : s.indices.front();
        a.futures = std::move(s.futures);
        return a;
      },
      detail::continuation_mode::inline_);
}

}  // namespace hpxlite
