// when_any / when_some — readiness composition beyond when_all,
// completing the future-combinator surface of the HPX model.
//
//   when_any(futures)  -> future<any_result<T>>: ready as soon as ONE
//                         input is ready; yields all inputs back plus
//                         the index of the first-ready one
//   when_some(k, fs)   -> ready once k inputs are ready
//
// Like when_all, the combinator is ONE pooled operation state with an
// intrusive arm per input — no per-input closure allocation, no
// per-input shared_state_ptr copies on the dispatch path.  The op does
// NOT pin its inputs: after the threshold fires the inputs are handed
// back to the consumer, who may drop still-pending ones; their states
// then abandon the parked arms, which releases the op promptly.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "hpxlite/future.hpp"

namespace hpxlite {

/// Result of when_any: the (possibly still-pending) inputs and the
/// index of the input whose completion fired the combinator.
template <typename T>
struct any_result {
  std::size_t index = 0;
  std::vector<future<T>> futures;
};

/// Result of when_some: the inputs plus the indices of the first `k`
/// completions, in completion order.
template <typename T>
struct some_result {
  std::vector<std::size_t> indices;
  std::vector<future<T>> futures;
};

namespace detail {

template <typename T>
struct when_some_op final {
  using result_t = some_result<T>;

  struct arm final : continuation_node {
    when_some_op* owner = nullptr;
    std::size_t index = 0;
    arm() {
      fire = &when_some_op::arm_fire;
      abandon = &when_some_op::arm_abandon;
      mode = continuation_mode::inline_;
    }
  };

  shared_state<result_t> result;
  std::atomic<std::size_t> ready{0};
  std::atomic<std::size_t> live_arms{0};  // arms not yet fired/abandoned
  std::atomic<bool> fired{false};
  spinlock index_lock;
  std::vector<std::size_t> indices;
  std::vector<future<T>> held;
  std::size_t threshold = 0;
  pooled_arm_array<arm> arms;
  std::shared_ptr<void> self;

  explicit when_some_op(std::size_t n) : arms(n) {
    for (std::size_t i = 0; i < n; ++i) {
      arms[i].owner = this;
      arms[i].index = i;
    }
  }

  static void arm_fire(continuation_node* node) {
    auto* a = static_cast<arm*>(node);
    when_some_op* op = a->owner;
    {
      std::lock_guard<spinlock> lock(op->index_lock);
      if (op->indices.size() < op->threshold) {
        op->indices.push_back(a->index);
      }
    }
    if (op->ready.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            op->threshold &&
        !op->fired.exchange(true)) {
      result_t r;
      {
        // A slower arm may still be pushing its index; synchronise the
        // handover instead of racing the vector move against it.
        std::lock_guard<spinlock> lock(op->index_lock);
        r.indices = std::move(op->indices);
      }
      r.futures = std::move(op->held);
      op->result.set_value(std::move(r));
    }
    release_arm(op);
  }

  static void arm_abandon(continuation_node* node) noexcept {
    // Post-threshold only: the consumer dropped a still-pending input
    // it got back from the combinator (pre-threshold, `held` keeps
    // every input state alive).
    release_arm(static_cast<arm*>(node)->owner);
  }

  /// The op's keepalive is released by the LAST arm event, fired or
  /// abandoned — not at threshold, because later-completing inputs
  /// still hold parked arms pointing into this object.
  static void release_arm(when_some_op* op) noexcept {
    if (op->live_arms.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      auto keep = std::move(op->self);
    }
  }
};

}  // namespace detail

/// Ready once at least `count` of `futures` are ready.  count == 0 is
/// immediately ready; count > size is clamped.
template <typename T>
future<some_result<T>> when_some(std::size_t count,
                                 std::vector<future<T>> futures) {
  using op_t = detail::when_some_op<T>;
  using result_t = some_result<T>;
  if (count > futures.size()) {
    count = futures.size();
  }
  const std::size_t n = futures.size();
  auto op = detail::make_pooled<op_t>(count == 0 ? 0 : n);
  detail::shared_state_ptr<result_t> next(op, &op->result);
  if (count == 0) {
    result_t r;
    r.futures = std::move(futures);
    op->result.set_value(std::move(r));
    return future<result_t>(std::move(next));
  }

  op->threshold = count;
  op->held = std::move(futures);
  op->ready.store(0, std::memory_order_relaxed);
  op->live_arms.store(n, std::memory_order_relaxed);
  op->self = op;

  {
    // Arming can fire the threshold inline, which moves `held` out to
    // the consumer — so the input states are snapshotted (and pinned)
    // up front, and registration never touches `held` again.  The pins
    // are scoped to the arming window only: keeping them in the op
    // would cycle (state holds arm, arm's op holds state) and leak
    // cancelled inputs.
    std::vector<detail::shared_state_ptr<T>> pins(n);
    for (std::size_t i = 0; i < n; ++i) {
      HPXLITE_ASSERT(op->held[i].valid(), "when_some over an invalid future");
      pins[i] = op->held[i].state();
    }
    for (std::size_t i = 0; i < n; ++i) {
      pins[i]->add_continuation(&op->arms[i]);
    }
  }
  return future<result_t>(std::move(next));
}

/// Ready as soon as any one input is ready.
template <typename T>
future<any_result<T>> when_any(std::vector<future<T>> futures) {
  auto some = when_some(1, std::move(futures));
  return some.then(
      [](future<some_result<T>>&& r) {
        some_result<T> s = r.get();
        any_result<T> a;
        a.index = s.indices.empty() ? 0 : s.indices.front();
        a.futures = std::move(s.futures);
        return a;
      },
      detail::continuation_mode::inline_);
}

}  // namespace hpxlite
