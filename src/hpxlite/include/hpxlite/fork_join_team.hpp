// fork_join_team — a faithful stand-in for OpenMP's
// `#pragma omp parallel for` on platforms where OpenMP is unavailable,
// and the *baseline* of every experiment in the paper.
//
// Semantics reproduced deliberately:
//   - a persistent team of N threads (like an OpenMP thread pool)
//   - parallel_for statically splits [0, n) into N contiguous ranges
//     (OpenMP's default static schedule)
//   - an IMPLICIT GLOBAL BARRIER at the end of every loop: the calling
//     thread does not return until every team member has finished its
//     range — precisely the fork-join property the paper identifies as
//     the scalability limiter ("#pragma omp parallel for has an
//     implicit global barrier that avoids extracting optimal
//     parallelism").
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hpxlite {

class fork_join_team {
 public:
  /// Spawns `num_threads - 1` team members; the calling thread acts as
  /// team member 0 during parallel_for (as OpenMP's master thread does).
  explicit fork_join_team(unsigned num_threads);
  ~fork_join_team();

  fork_join_team(const fork_join_team&) = delete;
  fork_join_team& operator=(const fork_join_team&) = delete;

  unsigned size() const noexcept { return num_threads_; }

  /// Rank of the calling thread within the team region it is currently
  /// executing (master = 0, members 1..N-1), or unsigned(-1) on any
  /// thread that is not running team work right now.  This is the hook
  /// op2's per-worker reduction slots use to index scratch without a
  /// lock; the master's rank is only published while it executes its
  /// own share of a parallel_for.
  static unsigned this_worker_index() noexcept;

  /// Executes body(begin, end) across the team with a static schedule
  /// and joins at an implicit barrier before returning.
  /// `body` must be callable as body(std::size_t begin, std::size_t end).
  /// If any member's body throws, the first exception is rethrown on
  /// the calling thread after the barrier.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// Static-schedule variant with an explicit chunk size: ranges are
  /// dealt round-robin in `chunk`-sized pieces (OpenMP schedule(static,
  /// chunk)).
  void parallel_for_chunked(
      std::size_t n, std::size_t chunk,
      const std::function<void(std::size_t, std::size_t)>& body);

  /// Number of fork-join episodes executed (each one = one implicit
  /// global barrier) — used by the benchmarks to report barrier counts.
  std::uint64_t barrier_count() const noexcept {
    return barriers_.load(std::memory_order_relaxed);
  }

 private:
  struct work_item {
    std::size_t n = 0;
    std::size_t chunk = 0;  // 0 = plain static split
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  };

  void member_loop(unsigned rank);
  void run_range(unsigned rank, const work_item& item) noexcept;

  unsigned num_threads_;
  std::vector<std::thread> members_;

  // Epoch-based dissemination: master publishes a work item and bumps
  // epoch_; members run their share and count into done_; master waits
  // for done_ == num_threads_ - 1 (it runs its own share meanwhile).
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  work_item current_;
  std::uint64_t epoch_ = 0;
  unsigned done_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;  // guarded by mutex_

  std::atomic<std::uint64_t> barriers_{0};
};

}  // namespace hpxlite
