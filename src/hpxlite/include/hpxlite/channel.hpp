// hpxlite::channel<T> — HPX's local channel LCO: an unbounded FIFO of
// values where receives are futures.  The producer/consumer sides are
// fully asynchronous: get() before set() yields a pending future that
// the matching set() fulfils; set() before get() queues the value.
//
// close() drains nothing: queued values can still be received, but
// pending and future receives beyond the queue fail with
// channel_closed, and further set() calls throw.
#pragma once

#include <deque>
#include <memory>
#include <stdexcept>
#include <utility>

#include "hpxlite/future.hpp"
#include "hpxlite/spinlock.hpp"

namespace hpxlite {

class channel_closed : public std::runtime_error {
 public:
  channel_closed() : std::runtime_error("hpxlite: channel closed") {}
};

template <typename T>
class channel {
 public:
  channel() : state_(std::make_shared<state>()) {}

  // Copyable handle: both ends may be shared across tasks.
  channel(const channel&) = default;
  channel& operator=(const channel&) = default;
  channel(channel&&) noexcept = default;
  channel& operator=(channel&&) noexcept = default;

  /// Sends a value; fulfils the oldest pending receive if any.
  void set(T value) {
    shared_state_ptr waiter;
    {
      std::lock_guard<spinlock> lock(state_->mutex);
      if (state_->closed) {
        throw channel_closed();
      }
      if (!state_->receivers.empty()) {
        waiter = std::move(state_->receivers.front());
        state_->receivers.pop_front();
      } else {
        state_->values.push_back(std::move(value));
        return;
      }
    }
    waiter->set_value(std::move(value));
  }

  /// A future for the next value, in FIFO order across both queued
  /// values and pending receives.
  future<T> get() {
    std::lock_guard<spinlock> lock(state_->mutex);
    auto fstate = detail::make_pooled_state<T>();
    if (!state_->values.empty()) {
      fstate->set_value(std::move(state_->values.front()));
      state_->values.pop_front();
    } else if (state_->closed) {
      fstate->set_exception(std::make_exception_ptr(channel_closed()));
    } else {
      state_->receivers.push_back(fstate);
    }
    return future<T>(std::move(fstate));
  }

  /// Closes the channel: pending receives fail, queued values remain
  /// receivable, further set() throws.
  void close() {
    std::deque<shared_state_ptr> pending;
    {
      std::lock_guard<spinlock> lock(state_->mutex);
      if (state_->closed) {
        return;
      }
      state_->closed = true;
      pending.swap(state_->receivers);
    }
    for (auto& r : pending) {
      r->set_exception(std::make_exception_ptr(channel_closed()));
    }
  }

  bool closed() const {
    std::lock_guard<spinlock> lock(state_->mutex);
    return state_->closed;
  }

  /// Number of values queued and not yet received.
  std::size_t queued() const {
    std::lock_guard<spinlock> lock(state_->mutex);
    return state_->values.size();
  }

 private:
  using shared_state_ptr = std::shared_ptr<detail::shared_state<T>>;

  struct state {
    mutable spinlock mutex;
    std::deque<T> values;
    std::deque<shared_state_ptr> receivers;
    bool closed = false;
  };

  std::shared_ptr<state> state_;
};

}  // namespace hpxlite
