// Parallel prefix sums: inclusive_scan / exclusive_scan with the
// standard two-pass algorithm (per-chunk partial reduction, sequential
// combine of chunk offsets, parallel rescan).  Used by mesh tooling
// (offset-array construction from counts) and part of the parallel-
// algorithm surface a runtime of this kind is expected to provide.
#pragma once

#include <iterator>
#include <vector>

#include "hpxlite/execution.hpp"
#include "hpxlite/future.hpp"
#include "hpxlite/parallel_algorithm.hpp"
#include "hpxlite/scheduler.hpp"

namespace hpxlite::parallel {

template <typename It, typename Out, typename T, typename Op>
Out inclusive_scan(sequenced_policy, It first, It last, Out out, T init,
                   Op op) {
  T acc = init;
  for (; first != last; ++first, ++out) {
    acc = op(std::move(acc), *first);
    *out = acc;
  }
  return out;
}

template <typename It, typename Out, typename T, typename Op>
Out exclusive_scan(sequenced_policy, It first, It last, Out out, T init,
                   Op op) {
  T acc = init;
  for (; first != last; ++first, ++out) {
    *out = acc;
    acc = op(std::move(acc), *first);
  }
  return out;
}

namespace detail {

using hpxlite::parallel::detail::run_chunked;

/// Two-pass scan engine.  inclusive selects the variant.
template <typename It, typename Out, typename T, typename Op>
Out scan_impl(const chunk_spec& spec, It first, It last, Out out, T init,
              Op op, bool inclusive) {
  const auto n = static_cast<std::size_t>(std::distance(first, last));
  if (n == 0) {
    return out;
  }
  runtime& rt = ambient_runtime();
  const unsigned workers = rt.concurrency();

  // Fixed chunking (scan needs chunk boundaries known up front).
  std::size_t chunk;
  if (const auto* st = std::get_if<static_chunk_size>(&spec)) {
    chunk = st->size;
  } else {
    chunk = n / (4 * static_cast<std::size_t>(workers));
    if (chunk == 0) {
      chunk = 1;
    }
  }
  const std::size_t nchunks = (n + chunk - 1) / chunk;

  // Pass 1: per-chunk reductions (parallel).
  std::vector<T> partials(nchunks, init);
  run_chunked(static_chunk_size(chunk), n,
              [&](std::size_t b, std::size_t e) {
                const std::size_t c = b / chunk;
                T acc = first[static_cast<std::ptrdiff_t>(b)];
                for (std::size_t i = b + 1; i != e; ++i) {
                  acc = op(std::move(acc),
                           first[static_cast<std::ptrdiff_t>(i)]);
                }
                partials[c] = std::move(acc);
              })
      .get();

  // Sequential combine: offsets[c] = init op partials[0..c).
  std::vector<T> offsets(nchunks, init);
  T running = init;
  for (std::size_t c = 0; c < nchunks; ++c) {
    offsets[c] = running;
    running = op(std::move(running), partials[c]);
  }

  // Pass 2: rescan each chunk from its offset (parallel).
  run_chunked(static_chunk_size(chunk), n,
              [&](std::size_t b, std::size_t e) {
                const std::size_t c = b / chunk;
                T acc = offsets[c];
                for (std::size_t i = b; i != e; ++i) {
                  const auto d = static_cast<std::ptrdiff_t>(i);
                  if (inclusive) {
                    acc = op(std::move(acc), first[d]);
                    out[d] = acc;
                  } else {
                    out[d] = acc;
                    acc = op(std::move(acc), first[d]);
                  }
                }
              })
      .get();
  return out + static_cast<std::ptrdiff_t>(n);
}

}  // namespace detail

template <typename It, typename Out, typename T, typename Op>
Out inclusive_scan(const parallel_policy& policy, It first, It last, Out out,
                   T init, Op op) {
  return detail::scan_impl(policy.chunk(), first, last, out, std::move(init),
                           op, /*inclusive=*/true);
}

template <typename It, typename Out, typename T, typename Op>
Out exclusive_scan(const parallel_policy& policy, It first, It last, Out out,
                   T init, Op op) {
  return detail::scan_impl(policy.chunk(), first, last, out, std::move(init),
                           op, /*inclusive=*/false);
}

}  // namespace hpxlite::parallel
