// Integer range, mirroring boost::irange which the paper's listings use
// to drive hpx::parallel::for_each over block indices:
//
//   auto r = boost::irange(0, nblocks);
//   hpx::parallel::for_each(par, r.begin(), r.end(), ...);
//
// The iterator is a random-access iterator over a value sequence
// [first, last), so the parallel algorithms can split it into chunks.
#pragma once

#include <cstddef>
#include <iterator>
#include <type_traits>

namespace hpxlite {

template <typename Int>
class integer_iterator {
 public:
  static_assert(std::is_integral_v<Int>);
  using iterator_category = std::random_access_iterator_tag;
  using value_type = Int;
  using difference_type = std::ptrdiff_t;
  using pointer = const Int*;
  using reference = Int;

  integer_iterator() = default;
  explicit integer_iterator(Int value) : value_(value) {}

  reference operator*() const { return value_; }
  reference operator[](difference_type n) const {
    return static_cast<Int>(value_ + n);
  }

  integer_iterator& operator++() { ++value_; return *this; }
  integer_iterator operator++(int) { auto t = *this; ++value_; return t; }
  integer_iterator& operator--() { --value_; return *this; }
  integer_iterator operator--(int) { auto t = *this; --value_; return t; }

  integer_iterator& operator+=(difference_type n) {
    value_ = static_cast<Int>(value_ + n);
    return *this;
  }
  integer_iterator& operator-=(difference_type n) {
    value_ = static_cast<Int>(value_ - n);
    return *this;
  }

  friend integer_iterator operator+(integer_iterator it, difference_type n) {
    it += n;
    return it;
  }
  friend integer_iterator operator+(difference_type n, integer_iterator it) {
    it += n;
    return it;
  }
  friend integer_iterator operator-(integer_iterator it, difference_type n) {
    it -= n;
    return it;
  }
  friend difference_type operator-(integer_iterator a, integer_iterator b) {
    return static_cast<difference_type>(a.value_) -
           static_cast<difference_type>(b.value_);
  }

  friend bool operator==(integer_iterator a, integer_iterator b) {
    return a.value_ == b.value_;
  }
  friend auto operator<=>(integer_iterator a, integer_iterator b) {
    return a.value_ <=> b.value_;
  }

 private:
  Int value_{};
};

/// Half-open integer range [first, last); empty when last <= first.
template <typename Int>
class integer_range {
 public:
  using iterator = integer_iterator<Int>;
  using const_iterator = iterator;

  integer_range(Int first, Int last)
      : first_(first), last_(last < first ? first : last) {}

  iterator begin() const { return iterator(first_); }
  iterator end() const { return iterator(last_); }
  std::size_t size() const { return static_cast<std::size_t>(last_ - first_); }
  bool empty() const { return first_ == last_; }

 private:
  Int first_;
  Int last_;
};

/// Factory matching boost::irange(first, last).
template <typename Int>
integer_range<Int> irange(Int first, Int last) {
  return integer_range<Int>(first, last);
}

}  // namespace hpxlite
