// Move-only type-erased callable with small-buffer optimisation.
//
// std::function requires copyability, which forces tasks that capture
// promises or other move-only state through shared_ptr indirections.
// unique_function is the standard remedy (HPX carries its own, as does
// every task runtime); ours stores callables up to sbo_size inline and
// heap-allocates larger ones.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "hpxlite/assert.hpp"
#include "hpxlite/config.hpp"

namespace hpxlite {

template <typename Signature>
class unique_function;

template <typename R, typename... Args>
class unique_function<R(Args...)> {
 public:
  /// Capacity of the inline small-buffer, in bytes.
  static constexpr std::size_t inline_capacity = sbo_size;

  /// True when a callable of type F rides in the inline buffer — no
  /// heap allocation at construction, move, or destruction.  The
  /// operation-state continuation core static_asserts this for its
  /// dispatch thunks, so a buffer shrink that would silently reintroduce
  /// per-dispatch allocations fails to compile instead.
  template <typename F>
  static constexpr bool stores_inline =
      sizeof(std::decay_t<F>) <= sbo_size &&
      alignof(std::decay_t<F>) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<std::decay_t<F>>;

  // Compile-time size/alignment guard: the continuation core parks
  // dispatch thunks (a raw pointer or two plus nothing else) and join
  // closures (a couple of shared_ptrs) inside task_functions, and the
  // zero-allocation build path only holds if those always fit inline.
  static_assert(sbo_size >= 4 * sizeof(void*),
                "unique_function small buffer must hold at least a "
                "two-shared_ptr capture (4 pointers)");
  static_assert(sbo_size % sizeof(void*) == 0,
                "small buffer should be pointer-granular");

  unique_function() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, unique_function> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  unique_function(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  unique_function(unique_function&& other) noexcept { move_from(other); }

  unique_function& operator=(unique_function&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  unique_function(const unique_function&) = delete;
  unique_function& operator=(const unique_function&) = delete;

  ~unique_function() { reset(); }

  /// Destroys the held callable, leaving the function empty.
  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage());
      vtable_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return vtable_ != nullptr; }

  /// Whether the currently-held callable lives in the inline buffer
  /// (false when empty or heap-stored).
  bool uses_inline_storage() const noexcept {
    return vtable_ != nullptr && vtable_->inline_stored;
  }

  R operator()(Args... args) {
    HPXLITE_ASSERT(vtable_ != nullptr, "calling an empty unique_function");
    return vtable_->invoke(storage(), std::forward<Args>(args)...);
  }

 private:
  struct vtable {
    R (*invoke)(void*, Args&&...);
    void (*destroy)(void*) noexcept;
    void (*move)(void* dst, void* src) noexcept;
    bool inline_stored;
  };

  template <typename F, bool Inline>
  static const vtable* vtable_for() {
    static constexpr vtable table{
        // invoke
        [](void* p, Args&&... args) -> R {
          F& f = Inline ? *static_cast<F*>(p) : **static_cast<F**>(p);
          return f(std::forward<Args>(args)...);
        },
        // destroy
        [](void* p) noexcept {
          if constexpr (Inline) {
            static_cast<F*>(p)->~F();
          } else {
            delete *static_cast<F**>(p);
          }
        },
        // move (src storage -> dst storage; src left destroyed/empty)
        [](void* dst, void* src) noexcept {
          if constexpr (Inline) {
            F* s = static_cast<F*>(src);
            ::new (dst) F(std::move(*s));
            s->~F();
          } else {
            *static_cast<F**>(dst) = *static_cast<F**>(src);
            *static_cast<F**>(src) = nullptr;
          }
        },
        Inline};
    return &table;
  }

  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (stores_inline<D>) {
      ::new (storage()) D(std::forward<F>(f));
      vtable_ = vtable_for<D, true>();
    } else {
      *static_cast<D**>(storage()) = new D(std::forward<F>(f));
      vtable_ = vtable_for<D, false>();
    }
  }

  void move_from(unique_function& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      vtable_->move(storage(), other.storage());
      other.vtable_ = nullptr;
    }
  }

  void* storage() noexcept { return &buffer_; }

  alignas(std::max_align_t) std::byte buffer_[sbo_size];
  const vtable* vtable_ = nullptr;
};

/// The task type circulated through the scheduler.
using task_function = unique_function<void()>;

}  // namespace hpxlite
