// Lightweight assertion macro that stays active in release builds for
// cheap checks guarding runtime invariants (task-queue integrity,
// future state transitions).  Unlike <cassert> it is not compiled out
// by NDEBUG, because scheduler bugs are timing-dependent and release
// builds are where they surface.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace hpxlite::detail {

[[noreturn]] inline void assertion_failure(const char* expr, const char* file,
                                           int line, const char* msg) {
  std::fprintf(stderr, "hpxlite assertion failed: %s (%s:%d): %s\n", expr,
               file, line, msg);
  std::abort();
}

}  // namespace hpxlite::detail

#define HPXLITE_ASSERT(expr, msg)                                       \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::hpxlite::detail::assertion_failure(#expr, __FILE__, __LINE__,   \
                                           msg);                        \
    }                                                                   \
  } while (false)
