// Runtime watchdog: a monitor thread that detects when in-flight work
// stops making progress.
//
// The paper's dataflow execution (§III-B) removes the global barriers
// at which a wedged kernel would otherwise fail loudly: a stalled chunk
// just leaves a future unfulfilled and every dependent loop parks
// behind it.  The watchdog closes that observability gap.  Work that
// wants supervision brackets itself with begin_activity/end_activity
// (op2's run_loop does this with "loop [backend, chunk]" descriptions)
// and emits cheap pulse() heartbeats from inside the parallel region;
// the monitor thread fires the stall handler when activities are in
// flight but no heartbeat has arrived for the configured timeout.
//
// The default handler prints the diagnostic (stuck activities, pulse
// count, scheduler queue depth) to stderr and aborts — a crash with a
// name beats a silent hang.  Tests and supervisors install their own
// handler to recover instead (e.g. releasing an injected stall).
//
// All hooks are safe to call whether or not the watchdog is running;
// when stopped, pulse() is a single relaxed atomic load.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace hpxlite {

/// Diagnostic snapshot handed to the stall handler.
struct watchdog_report {
  /// Descriptions of every in-flight activity, registration order.
  std::vector<std::string> activities;
  /// Total heartbeats observed since start().
  std::uint64_t pulses = 0;
  /// Scheduler queue depth (queued + running tasks) at detection time,
  /// 0 when no runtime exists.
  std::uint64_t pending_tasks = 0;
  /// How long progress has been absent.
  std::chrono::milliseconds stalled_for{0};
};

/// Renders the report as the multi-line diagnostic the default handler
/// prints ("hpxlite watchdog: no progress for ...").
std::string describe(const watchdog_report& report);

class watchdog {
 public:
  using stall_handler = std::function<void(const watchdog_report&)>;

  /// Starts the monitor thread.  `on_stall` runs (on the monitor
  /// thread) each time a stall is detected; when empty, the default
  /// handler prints describe(report) to stderr and calls std::abort().
  /// Calling start() again re-configures timeout and handler in place.
  static void start(std::chrono::milliseconds timeout,
                    stall_handler on_stall = {});

  /// Stops and joins the monitor thread.  Idempotent.
  static void stop();

  /// True between start() and stop().
  static bool running();

  /// Registers an in-flight activity; returns the token for
  /// end_activity.  Counts as progress.  `on_cancel`, when set, makes
  /// the activity *supervisable*: cancel_stalled() invokes it (typically
  /// to request_stop() the activity's stop_source) so a stall handler
  /// can unwedge the work instead of aborting the process.
  static std::uint64_t begin_activity(std::string description,
                                      std::function<void()> on_cancel = {});

  /// Unregisters an activity.  Counts as progress.  Unknown tokens are
  /// ignored (the activity may have been registered before a restart).
  static void end_activity(std::uint64_t token);

  /// Fires the on_cancel hook of every in-flight supervisable activity
  /// (at most once per activity) and returns how many were cancelled.
  /// The degradation-ladder stall handler calls this instead of
  /// aborting; activities without a hook are left untouched.
  static std::size_t cancel_stalled();

  /// Total activities cancelled via cancel_stalled() since the last
  /// start().
  static std::uint64_t cancellations();

  /// Heartbeat from inside a parallel region — one relaxed atomic
  /// increment when running, one relaxed load when not.
  static void pulse();

  /// Number of stalls detected since the last start().
  static std::uint64_t stalls_detected();
};

}  // namespace hpxlite
