// Operation-state substrate for the zero-allocation continuation core.
//
// Production HPX moved its futures onto sender/receiver-style inline
// continuations (connect/start operation-states, P0783's "futures with
// continuations" shape) because at millions of chain launches per
// second the *construction* of a continuation chain — one heap shared
// state plus one heap closure per node — dominates the launch path.
// hpxlite adopts the same internal shape here:
//
//   - a continuation is an intrusive `continuation_node` linked
//     directly into the predecessor's shared state: registering it
//     allocates nothing,
//   - a `.then`/`dataflow`/`async` node is ONE object (an operation
//     state) carrying the result's shared state, the continuation body
//     and the link node side by side: one combined allocation instead
//     of shared-state + closure + vector slot,
//   - that one allocation is served from a recycling block pool, so a
//     steady-state chain build performs ZERO calls to operator new.
//
// The pool is a global freelist of fixed-size blocks with a per-thread
// cache in front (the common build→fire→release cycle never touches
// the global lock).  Blocks larger than `op_state_block_size` fall back
// to operator new — still a single allocation per node, which is the
// hard gate bench/micro/launch_overhead enforces.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>

#include "hpxlite/assert.hpp"
#include "hpxlite/config.hpp"
#include "hpxlite/spinlock.hpp"
#include "hpxlite/unique_function.hpp"

namespace hpxlite {

/// Observable pool behaviour, for tests and the launch-overhead bench.
/// Monotonic counters except `outstanding` (a gauge: acquires minus
/// releases, i.e. blocks currently owned by live operation states).
struct op_pool_counters {
  std::uint64_t acquires = 0;        // pooled-size requests served
  std::uint64_t pool_hits = 0;       // ... served from a cached block
  std::uint64_t fresh_blocks = 0;    // ... served by a new allocation
  std::uint64_t oversize_allocs = 0; // requests larger than a block
  std::int64_t outstanding = 0;      // blocks held by live op-states
};

namespace detail {

/// How a continuation attached to a shared state should run once the
/// state becomes ready.
enum class continuation_mode {
  scheduled,  // submit to the runtime (default for .then/dataflow)
  inline_,    // run in the completing thread (cheap adapters only)
};

/// Intrusive continuation link: the "receiver hook" a shared state
/// fires at completion.  Operation states embed one (or several, for
/// multi-input nodes) of these; registering a node into a state links
/// it into the state's list without allocating.
///
/// `fire` runs the continuation exactly once (and is responsible for
/// releasing whatever keeps the operation state alive).  `abandon` is
/// the never-ran path: the owning state is being destroyed with the
/// node still parked, and the node must release its storage without
/// invoking the body.
struct continuation_node {
  continuation_node* next = nullptr;
  void (*fire)(continuation_node*) = nullptr;
  void (*abandon)(continuation_node*) noexcept = nullptr;
  continuation_mode mode = continuation_mode::scheduled;
};

// --- recycling block pool ---------------------------------------------

struct op_pool_counter_cells {
  std::atomic<std::uint64_t> acquires{0};
  std::atomic<std::uint64_t> pool_hits{0};
  std::atomic<std::uint64_t> fresh_blocks{0};
  std::atomic<std::uint64_t> oversize_allocs{0};
  std::atomic<std::int64_t> outstanding{0};
};

inline op_pool_counter_cells& op_pool_cells() {
  static op_pool_counter_cells cells;
  return cells;
}

struct op_free_node {
  op_free_node* next;
};

/// Global overflow freelist.  Deliberately leaked (never destroyed):
/// worker threads flush their caches into it from thread-exit
/// destructors, which on some platforms run after static destructors
/// would have torn a non-leaky singleton down.
class op_block_pool {
 public:
  static op_block_pool& instance() {
    static op_block_pool* pool = new op_block_pool();  // intentionally leaked
    return *pool;
  }

  /// Pops up to `want` blocks into `out` (singly linked); returns how
  /// many were popped.
  std::size_t pop_some(op_free_node*& out, std::size_t want) noexcept {
    std::lock_guard<spinlock> lock(lock_);
    std::size_t got = 0;
    while (head_ != nullptr && got < want) {
      op_free_node* n = head_;
      head_ = n->next;
      n->next = out;
      out = n;
      ++got;
    }
    count_ -= got;
    return got;
  }

  /// Pushes `n` blocks (singly linked from `list`).  Blocks past the
  /// cache cap are freed outright so an unusually deep chain cannot pin
  /// memory forever.
  void push_some(op_free_node* list, std::size_t n) noexcept {
    op_free_node* overflow = nullptr;
    {
      std::lock_guard<spinlock> lock(lock_);
      while (list != nullptr && count_ < op_state_global_cache_cap) {
        op_free_node* next = list->next;
        list->next = head_;
        head_ = list;
        list = next;
        ++count_;
        --n;
      }
      overflow = list;
    }
    while (overflow != nullptr) {
      op_free_node* next = overflow->next;
      ::operator delete(static_cast<void*>(overflow));
      overflow = next;
    }
  }

 private:
  op_block_pool() = default;
  spinlock lock_;
  op_free_node* head_ = nullptr;
  std::size_t count_ = 0;
};

/// Per-thread block cache: the fast path for the build→fire→release
/// cycle.  Refills from / spills to the global pool in batches.
struct op_tls_cache {
  op_free_node* head = nullptr;
  std::size_t count = 0;

  ~op_tls_cache() {
    if (head != nullptr) {
      op_block_pool::instance().push_some(head, count);
      head = nullptr;
      count = 0;
    }
  }
};

inline op_tls_cache& op_tls() {
  thread_local op_tls_cache cache;
  return cache;
}

inline void* op_pool_acquire(std::size_t size) {
  auto& cells = op_pool_cells();
  if (size > op_state_block_size) {
    cells.oversize_allocs.fetch_add(1, std::memory_order_relaxed);
    cells.outstanding.fetch_add(1, std::memory_order_relaxed);
    return ::operator new(size);
  }
  cells.acquires.fetch_add(1, std::memory_order_relaxed);
  cells.outstanding.fetch_add(1, std::memory_order_relaxed);
  op_tls_cache& tls = op_tls();
  if (tls.head == nullptr) {
    op_free_node* batch = nullptr;
    const std::size_t got = op_block_pool::instance().pop_some(
        batch, op_state_tls_refill_batch);
    tls.head = batch;
    tls.count = got;
  }
  if (tls.head != nullptr) {
    op_free_node* n = tls.head;
    tls.head = n->next;
    --tls.count;
    cells.pool_hits.fetch_add(1, std::memory_order_relaxed);
    return static_cast<void*>(n);
  }
  cells.fresh_blocks.fetch_add(1, std::memory_order_relaxed);
  return ::operator new(op_state_block_size);
}

inline void op_pool_release(void* p, std::size_t size) noexcept {
  auto& cells = op_pool_cells();
  cells.outstanding.fetch_sub(1, std::memory_order_relaxed);
  if (size > op_state_block_size) {
    ::operator delete(p);
    return;
  }
  op_tls_cache& tls = op_tls();
  auto* n = static_cast<op_free_node*>(p);
  n->next = tls.head;
  tls.head = n;
  ++tls.count;
  if (tls.count > op_state_tls_cache_cap) {
    // Spill half the cache so producer-only / consumer-only threads
    // keep exchanging blocks through the global pool.
    op_free_node* spill = nullptr;
    std::size_t spilled = 0;
    while (tls.count > op_state_tls_cache_cap / 2) {
      op_free_node* s = tls.head;
      tls.head = s->next;
      --tls.count;
      s->next = spill;
      spill = s;
      ++spilled;
    }
    op_block_pool::instance().push_some(spill, spilled);
  }
}

/// Allocator adapter so std::allocate_shared carves operation states
/// (object + shared_ptr control block, one allocation) out of the pool.
template <typename T>
struct pooled_allocator {
  using value_type = T;

  pooled_allocator() noexcept = default;
  template <typename U>
  pooled_allocator(const pooled_allocator<U>&) noexcept {}  // NOLINT

  T* allocate(std::size_t n) {
    return static_cast<T*>(op_pool_acquire(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    op_pool_release(static_cast<void*>(p), n * sizeof(T));
  }

  template <typename U>
  bool operator==(const pooled_allocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const pooled_allocator<U>&) const noexcept {
    return false;
  }
};

/// One combined allocation (pool-served when it fits a block) for an
/// operation state plus its shared_ptr control block.
template <typename T, typename... Args>
std::shared_ptr<T> make_pooled(Args&&... args) {
  static_assert(alignof(T) <= alignof(std::max_align_t),
                "operation states must not be over-aligned: pool blocks "
                "carry default (max_align_t) alignment only");
  return std::allocate_shared<T>(pooled_allocator<T>{},
                                 std::forward<Args>(args)...);
}

/// Type-erased continuation for callers that attach an arbitrary
/// closure to a shared state (when_all joins, nested-future unwrapping,
/// external composition code).  Pool-backed: one recycled block, not a
/// heap closure in a heap vector slot.
struct closure_node final : continuation_node {
  task_function fn;

  closure_node(task_function f, continuation_mode m) : fn(std::move(f)) {
    fire = &closure_node::do_fire;
    abandon = &closure_node::do_abandon;
    mode = m;
  }

  static closure_node* create(task_function f, continuation_mode m) {
    void* mem = op_pool_acquire(sizeof(closure_node));
    return ::new (mem) closure_node(std::move(f), m);
  }

  static void do_fire(continuation_node* node) {
    auto* self = static_cast<closure_node*>(node);
    task_function body = std::move(self->fn);
    destroy(self);
    body();
  }

  static void do_abandon(continuation_node* node) noexcept {
    destroy(static_cast<closure_node*>(node));
  }

 private:
  static void destroy(closure_node* self) noexcept {
    self->~closure_node();
    op_pool_release(static_cast<void*>(self), sizeof(closure_node));
  }
};

/// Fixed-size array of POD-ish arm nodes carved from the pool in one
/// allocation — when_all/when_some attach one arm per input, and a
/// per-input heap allocation is exactly what the audit removed.
template <typename Arm>
class pooled_arm_array {
 public:
  pooled_arm_array() = default;

  explicit pooled_arm_array(std::size_t n) : size_(n) {
    if (n != 0) {
      arms_ = static_cast<Arm*>(op_pool_acquire(n * sizeof(Arm)));
      for (std::size_t i = 0; i < n; ++i) {
        ::new (static_cast<void*>(arms_ + i)) Arm();
      }
    }
  }

  pooled_arm_array(const pooled_arm_array&) = delete;
  pooled_arm_array& operator=(const pooled_arm_array&) = delete;

  ~pooled_arm_array() {
    if (arms_ != nullptr) {
      for (std::size_t i = size_; i > 0; --i) {
        arms_[i - 1].~Arm();
      }
      op_pool_release(static_cast<void*>(arms_), size_ * sizeof(Arm));
    }
  }

  Arm& operator[](std::size_t i) noexcept { return arms_[i]; }
  std::size_t size() const noexcept { return size_; }

 private:
  Arm* arms_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace detail

/// Snapshot of the operation-state block pool's counters.
inline op_pool_counters op_pool_stats() noexcept {
  auto& cells = detail::op_pool_cells();
  op_pool_counters s;
  s.acquires = cells.acquires.load(std::memory_order_relaxed);
  s.pool_hits = cells.pool_hits.load(std::memory_order_relaxed);
  s.fresh_blocks = cells.fresh_blocks.load(std::memory_order_relaxed);
  s.oversize_allocs = cells.oversize_allocs.load(std::memory_order_relaxed);
  s.outstanding = cells.outstanding.load(std::memory_order_relaxed);
  return s;
}

}  // namespace hpxlite
