// hpxlite: a compact, from-scratch reproduction of the HPX programming
// model used in Khatami/Kaiser/Ramanujam (ICPP 2016): futures with
// continuations, async task execution, dataflow with future-unwrapping,
// and parallel algorithms with pluggable execution policies and grain
// size (chunk size) control.
//
// This header centralises build-time configuration knobs.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hpxlite {

/// Library version, kept in sync with the top-level CMake project().
inline constexpr int version_major = 1;
inline constexpr int version_minor = 0;
inline constexpr int version_patch = 0;

/// Assumed cache line size used to pad per-worker state against false
/// sharing.  64 bytes covers x86-64 and most AArch64 parts.
inline constexpr std::size_t cache_line_size = 64;

/// Default small-buffer size for unique_function: enough for a lambda
/// capturing a few pointers/references without a heap allocation.
inline constexpr std::size_t sbo_size = 6 * sizeof(void*);

/// Environment variable consulted by the default runtime for its worker
/// count (mirrors HPX's --hpx:threads).
inline constexpr const char* threads_env_var = "HPXLITE_THREADS";

/// Operation-state block pool (the zero-allocation continuation core).
/// A `.then`/`dataflow`/`async` node — result shared state, continuation
/// body and intrusive link in one object — is carved from a recycled
/// block of this size when it fits; larger nodes fall back to a single
/// operator new.  Sized so a shared state plus a continuation capturing
/// several pointers (and the shared_ptr control block allocate_shared
/// prepends) rides in one block.
inline constexpr std::size_t op_state_block_size = 448;

/// Per-thread block cache bound: above this the thread spills half its
/// cache to the global pool, so producer-only threads keep feeding
/// consumer-only threads.
inline constexpr std::size_t op_state_tls_cache_cap = 128;

/// How many blocks a thread pulls from the global pool per refill.
inline constexpr std::size_t op_state_tls_refill_batch = 32;

/// Global freelist cap; blocks beyond it are returned to the OS so one
/// pathologically deep chain cannot pin memory for the process lifetime.
inline constexpr std::size_t op_state_global_cache_cap = 8192;

}  // namespace hpxlite
