// hpxlite: a compact, from-scratch reproduction of the HPX programming
// model used in Khatami/Kaiser/Ramanujam (ICPP 2016): futures with
// continuations, async task execution, dataflow with future-unwrapping,
// and parallel algorithms with pluggable execution policies and grain
// size (chunk size) control.
//
// This header centralises build-time configuration knobs.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hpxlite {

/// Library version, kept in sync with the top-level CMake project().
inline constexpr int version_major = 1;
inline constexpr int version_minor = 0;
inline constexpr int version_patch = 0;

/// Assumed cache line size used to pad per-worker state against false
/// sharing.  64 bytes covers x86-64 and most AArch64 parts.
inline constexpr std::size_t cache_line_size = 64;

/// Default small-buffer size for unique_function: enough for a lambda
/// capturing a few pointers/references without a heap allocation.
inline constexpr std::size_t sbo_size = 6 * sizeof(void*);

/// Environment variable consulted by the default runtime for its worker
/// count (mirrors HPX's --hpx:threads).
inline constexpr const char* threads_env_var = "HPXLITE_THREADS";

}  // namespace hpxlite
