// Parallel algorithms: for_each, for_loop, transform, reduce,
// transform_reduce — over random-access iterators, driven by the
// execution policies in execution.hpp.
//
// All algorithms share one partitioning engine:
//   1. the chunker turns the iteration count into work chunks,
//   2. each chunk becomes one runtime task,
//   3. a join block counts chunks down and fulfils a future<void> (task
//      policies return it; synchronous policies wait on it, helping).
//
// This file is the hpxlite side of the paper's Section III-A: the OP2
// code generator emits calls to these algorithms instead of
// `#pragma omp parallel for`.
#pragma once

#include <atomic>
#include <chrono>
#include <exception>
#include <iterator>
#include <memory>
#include <numeric>
#include <type_traits>
#include <utility>
#include <vector>

#include "hpxlite/execution.hpp"
#include "hpxlite/future.hpp"
#include "hpxlite/grain_controller.hpp"
#include "hpxlite/scheduler.hpp"

namespace hpxlite::parallel {

namespace detail {

using hpxlite::detail::shared_state;
using hpxlite::detail::unit;

/// Join block shared by all chunk tasks of one algorithm invocation.
struct join_block {
  explicit join_block(std::size_t chunks) : remaining(chunks) {}

  void chunk_done() {
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      finish();
    }
  }

  void chunk_failed(std::exception_ptr ep) {
    {
      std::lock_guard<spinlock> lock(error_lock);
      if (!error) {
        error = std::move(ep);
      }
    }
    chunk_done();
  }

  void finish() {
    if (error) {
      state->set_exception(std::move(error));
    } else {
      state->set_value(unit{});
    }
  }

  std::atomic<std::size_t> remaining;
  spinlock error_lock;
  std::exception_ptr error;
  std::shared_ptr<shared_state<void>> state =
      hpxlite::detail::make_pooled_state<void>();
};

/// Decides the static chunk size for `n` iterations under `spec`,
/// executing (and timing) a sequential prefix for auto_chunk_size.
/// `run_prefix(count)` must execute the first `count` iterations and is
/// only called for the auto chunker.  Returns {chunk, prefix_done}.
template <typename RunPrefix>
std::pair<std::size_t, std::size_t> pick_static_chunk(
    const chunk_spec& spec, std::size_t n, unsigned workers,
    RunPrefix&& run_prefix) {
  if (const auto* st = std::get_if<static_chunk_size>(&spec)) {
    return {st->size, 0};
  }
  if (const auto* ad = std::get_if<adaptive_chunk_size>(&spec)) {
    if (ad->controller) {
      return {ad->controller->chunk(n, workers), 0};
    }
    // No controller attached: behave like reduce's normalisation.
    const std::size_t fallback =
        n / (4 * static_cast<std::size_t>(workers));
    return {fallback == 0 ? 1 : fallback, 0};
  }
  const auto& ac = std::get<auto_chunk_size>(spec);
  // The paper: "the auto-partitioner algorithm ... estimates the chunk
  // size by sequentially executing 1% of the loop".
  std::size_t probe = static_cast<std::size_t>(
      static_cast<double>(n) * ac.measure_fraction);
  if (probe == 0 || probe > n) {
    // The set is too small for the probe fraction to cover even one
    // iteration — a timed sample would be all overhead and no signal.
    // Skip the probe entirely and run the whole range as one chunk.
    return {n == 0 ? 1 : n, 0};
  }
  const auto t0 = std::chrono::steady_clock::now();
  run_prefix(probe);
  const auto dt = std::chrono::steady_clock::now() - t0;
  const double per_iter_ns =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()) /
      static_cast<double>(probe);
  const double target_ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              ac.target_task_time)
                              .count());
  std::size_t chunk =
      per_iter_ns <= 0.0
          ? n
          : static_cast<std::size_t>(target_ns / per_iter_ns);
  if (chunk == 0) {
    chunk = 1;
  }
  // Keep at least one chunk per worker when the loop is big enough.
  const std::size_t rest = n - probe;
  if (rest > workers) {
    const std::size_t per_worker = rest / workers;
    if (chunk > per_worker && per_worker > 0) {
      chunk = per_worker;
    }
  }
  return {chunk, probe};
}

/// Core engine: run body(i_begin, i_end) over [begin, n) as tasks.
/// Returns the join future.  When `stop` is attached, workers poll it
/// before every chunk (and between pull-model claims); a requested stop
/// resolves the join future to operation_cancelled without running the
/// remaining chunks.  Chunks already executing run to completion —
/// cancellation is cooperative, never preemptive.
template <typename ChunkBody>
future<void> run_chunked(const chunk_spec& spec, std::size_t n,
                         ChunkBody body, stop_token stop = {}) {
  if (n == 0) {
    return make_ready_future();
  }
  if (stop.stop_requested()) {
    return make_exceptional_future<void>(
        std::make_exception_ptr(operation_cancelled()));
  }
  runtime& rt = ambient_runtime();
  const unsigned workers = rt.concurrency();

  // Dynamic and guided chunkers share a pull model: `workers` tasks
  // repeatedly claim ranges off an atomic cursor.
  const bool dynamic = std::holds_alternative<dynamic_chunk_size>(spec);
  const bool guided = std::holds_alternative<guided_chunk_size>(spec);
  if (dynamic || guided) {
    struct cursor_block {
      std::atomic<std::size_t> next{0};
    };
    auto cursor = std::make_shared<cursor_block>();
    const std::size_t fixed =
        dynamic ? std::get<dynamic_chunk_size>(spec).size : 0;
    const std::size_t guided_min =
        guided ? std::get<guided_chunk_size>(spec).min_size : 1;
    auto join = std::make_shared<join_block>(workers);
    for (unsigned w = 0; w < workers; ++w) {
      rt.submit([join, cursor, body, n, fixed, guided_min, workers, stop] {
        try {
          for (;;) {
            stop.throw_if_stopped();
            std::size_t want = fixed;
            if (want == 0) {  // guided: proportional to what remains
              const std::size_t done =
                  cursor->next.load(std::memory_order_relaxed);
              const std::size_t rest = done < n ? n - done : 0;
              want = rest / (2 * workers);
              if (want < guided_min) {
                want = guided_min;
              }
            }
            const std::size_t begin =
                cursor->next.fetch_add(want, std::memory_order_relaxed);
            if (begin >= n) {
              break;
            }
            const std::size_t end = begin + want < n ? begin + want : n;
            body(begin, end);
          }
          join->chunk_done();
        } catch (...) {
          join->chunk_failed(std::current_exception());
        }
      });
    }
    return future<void>(join->state);
  }

  // Static / auto chunkers: fixed partition up front.
  auto [chunk, prefix] = pick_static_chunk(
      spec, n, workers, [&](std::size_t count) { body(0, count); });
  const std::size_t rest = n - prefix;
  if (rest == 0) {
    return make_ready_future();
  }
  const std::size_t nchunks = (rest + chunk - 1) / chunk;
  auto join = std::make_shared<join_block>(nchunks);
  for (std::size_t c = 0; c < nchunks; ++c) {
    const std::size_t begin = prefix + c * chunk;
    const std::size_t end = begin + chunk < n ? begin + chunk : n;
    rt.submit([join, body, begin, end, stop] {
      try {
        stop.throw_if_stopped();
        body(begin, end);
        join->chunk_done();
      } catch (...) {
        join->chunk_failed(std::current_exception());
      }
    });
  }
  return future<void>(join->state);
}

template <typename Policy>
const chunk_spec& chunk_of(const Policy& p) {
  return p.chunk();
}

}  // namespace detail

// ---------------------------------------------------------------------
// for_each

/// Sequential for_each (sequenced_policy).
template <typename It, typename F>
void for_each(sequenced_policy, It first, It last, F f) {
  for (; first != last; ++first) {
    f(*first);
  }
}

/// Parallel for_each: blocks until all iterations complete (helping run
/// other tasks while it waits).  Fork-join shaped, like the paper's
/// Section III-A1.
template <typename It, typename F>
void for_each(const parallel_policy& policy, It first, It last, F f) {
  const auto n = static_cast<std::size_t>(std::distance(first, last));
  detail::run_chunked(
      policy.chunk(), n,
      [first, f](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i != e; ++i) {
          f(first[static_cast<std::ptrdiff_t>(i)]);
        }
      },
      policy.stop())
      .get();
}

/// Asynchronous for_each: returns a future<void> that becomes ready when
/// the loop has fully executed (par(task), Section III-A2).
template <typename It, typename F>
future<void> for_each(const parallel_task_policy& policy, It first, It last,
                      F f) {
  const auto n = static_cast<std::size_t>(std::distance(first, last));
  return detail::run_chunked(
      policy.chunk(), n,
      [first, f](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i != e; ++i) {
          f(first[static_cast<std::ptrdiff_t>(i)]);
        }
      },
      policy.stop());
}

// ---------------------------------------------------------------------
// for_loop (index-based convenience, mirrors hpx::for_loop)

template <typename Int, typename F>
void for_loop(sequenced_policy, Int first, Int last, F f) {
  for (Int i = first; i < last; ++i) {
    f(i);
  }
}

template <typename Int, typename F>
void for_loop(const parallel_policy& policy, Int first, Int last, F f) {
  if (last <= first) {
    return;
  }
  const auto n = static_cast<std::size_t>(last - first);
  detail::run_chunked(
      policy.chunk(), n,
      [first, f](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i != e; ++i) {
          f(static_cast<Int>(first + static_cast<Int>(i)));
        }
      },
      policy.stop())
      .get();
}

template <typename Int, typename F>
future<void> for_loop(const parallel_task_policy& policy, Int first, Int last,
                      F f) {
  if (last <= first) {
    return make_ready_future();
  }
  const auto n = static_cast<std::size_t>(last - first);
  return detail::run_chunked(
      policy.chunk(), n,
      [first, f](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i != e; ++i) {
          f(static_cast<Int>(first + static_cast<Int>(i)));
        }
      },
      policy.stop());
}

// ---------------------------------------------------------------------
// transform

template <typename It, typename Out, typename F>
Out transform(sequenced_policy, It first, It last, Out out, F f) {
  for (; first != last; ++first, ++out) {
    *out = f(*first);
  }
  return out;
}

template <typename It, typename Out, typename F>
Out transform(const parallel_policy& policy, It first, It last, Out out,
              F f) {
  const auto n = static_cast<std::size_t>(std::distance(first, last));
  detail::run_chunked(
      policy.chunk(), n,
      [first, out, f](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i != e; ++i) {
          const auto d = static_cast<std::ptrdiff_t>(i);
          out[d] = f(first[d]);
        }
      },
      policy.stop())
      .get();
  return out + static_cast<std::ptrdiff_t>(n);
}

template <typename It, typename Out, typename F>
future<void> transform(const parallel_task_policy& policy, It first, It last,
                       Out out, F f) {
  const auto n = static_cast<std::size_t>(std::distance(first, last));
  return detail::run_chunked(
      policy.chunk(), n,
      [first, out, f](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i != e; ++i) {
          const auto d = static_cast<std::ptrdiff_t>(i);
          out[d] = f(first[d]);
        }
      },
      policy.stop());
}

// ---------------------------------------------------------------------
// reduce / transform_reduce

template <typename It, typename T, typename Op>
T reduce(sequenced_policy, It first, It last, T init, Op op) {
  for (; first != last; ++first) {
    init = op(std::move(init), *first);
  }
  return init;
}

namespace detail {

/// Shared partial-result engine for reduce/transform_reduce.  `leaf`
/// maps one iteration to a value of T; partials combine with `op`.
/// Combination order is deterministic (by chunk index), so the result
/// is reproducible run-to-run for a fixed worker count and chunking.
template <typename T, typename Op, typename Leaf>
future<T> reduce_chunked(const chunk_spec& spec, std::size_t n, T init, Op op,
                         Leaf leaf, stop_token stop = {}) {
  if (n == 0) {
    return make_ready_future(std::move(init));
  }
  if (stop.stop_requested()) {
    return make_exceptional_future<T>(
        std::make_exception_ptr(operation_cancelled()));
  }
  // Partials indexed by chunk are written without synchronisation: each
  // chunk owns its slot.  We need the chunk count up front, so reduce
  // always uses an up-front static partition (auto/dynamic chunkers are
  // normalised to a static one sized for the worker count).
  runtime& rt = ambient_runtime();
  const unsigned workers = rt.concurrency();
  std::size_t chunk;
  if (const auto* st = std::get_if<static_chunk_size>(&spec)) {
    chunk = st->size;
  } else if (const auto* ad = std::get_if<adaptive_chunk_size>(&spec);
             ad && ad->controller) {
    chunk = ad->controller->chunk(n, workers);
  } else {
    chunk = n / (4 * static_cast<std::size_t>(workers));
    if (chunk == 0) {
      chunk = 1;
    }
  }
  const std::size_t nchunks = (n + chunk - 1) / chunk;

  struct reduce_block {
    explicit reduce_block(std::size_t k) : partials(k), remaining(k) {}
    std::vector<std::optional<T>> partials;
    std::atomic<std::size_t> remaining;
    spinlock error_lock;
    std::exception_ptr error;
    std::shared_ptr<shared_state<T>> state =
        hpxlite::detail::make_pooled_state<T>();
  };
  auto block = std::make_shared<reduce_block>(nchunks);
  for (std::size_t c = 0; c < nchunks; ++c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = begin + chunk < n ? begin + chunk : n;
    rt.submit([block, leaf, op, begin, end, c, init, stop] {
      try {
        stop.throw_if_stopped();
        // Seed each chunk from its first element (std::reduce
        // semantics: `init` participates exactly once, at the final
        // combine), so the result does not depend on the chunk count.
        T acc(leaf(begin));
        for (std::size_t i = begin + 1; i != end; ++i) {
          acc = op(std::move(acc), leaf(i));
        }
        block->partials[c].emplace(std::move(acc));
      } catch (...) {
        std::lock_guard<spinlock> lock(block->error_lock);
        if (!block->error) {
          block->error = std::current_exception();
        }
      }
      if (block->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        if (block->error) {
          block->state->set_exception(std::move(block->error));
          return;
        }
        T total = init;
        for (auto& partial : block->partials) {
          total = op(std::move(total), std::move(*partial));
        }
        block->state->set_value(std::move(total));
      }
    });
  }
  return future<T>(block->state);
}

}  // namespace detail

template <typename It, typename T, typename Op>
T reduce(const parallel_policy& policy, It first, It last, T init, Op op) {
  const auto n = static_cast<std::size_t>(std::distance(first, last));
  return detail::reduce_chunked(
             policy.chunk(), n, std::move(init), op,
             [first](std::size_t i) -> decltype(auto) {
               return first[static_cast<std::ptrdiff_t>(i)];
             },
             policy.stop())
      .get();
}

template <typename It, typename T, typename Op>
future<T> reduce(const parallel_task_policy& policy, It first, It last,
                 T init, Op op) {
  const auto n = static_cast<std::size_t>(std::distance(first, last));
  return detail::reduce_chunked(
      policy.chunk(), n, std::move(init), op,
      [first](std::size_t i) -> decltype(auto) {
        return first[static_cast<std::ptrdiff_t>(i)];
      },
      policy.stop());
}

template <typename It, typename T, typename Reduce, typename Convert>
T transform_reduce(sequenced_policy, It first, It last, T init, Reduce red,
                   Convert conv) {
  for (; first != last; ++first) {
    init = red(std::move(init), conv(*first));
  }
  return init;
}

template <typename It, typename T, typename Reduce, typename Convert>
T transform_reduce(const parallel_policy& policy, It first, It last, T init,
                   Reduce red, Convert conv) {
  const auto n = static_cast<std::size_t>(std::distance(first, last));
  return detail::reduce_chunked(
             policy.chunk(), n, std::move(init), red,
             [first, conv](std::size_t i) {
               return conv(first[static_cast<std::ptrdiff_t>(i)]);
             },
             policy.stop())
      .get();
}

template <typename It, typename T, typename Reduce, typename Convert>
future<T> transform_reduce(const parallel_task_policy& policy, It first,
                           It last, T init, Reduce red, Convert conv) {
  const auto n = static_cast<std::size_t>(std::distance(first, last));
  return detail::reduce_chunked(
      policy.chunk(), n, std::move(init), red,
      [first, conv](std::size_t i) {
        return conv(first[static_cast<std::ptrdiff_t>(i)]);
      },
      policy.stop());
}

}  // namespace hpxlite::parallel
