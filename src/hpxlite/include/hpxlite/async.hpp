// hpxlite::async — asynchronous function invocation returning a future,
// matching the paper's usage:
//
//   return async(hpx::launch::async, [...]{ ... });
//
// Launch policies:
//   launch::async     schedule on the runtime's worker pool
//   launch::sync      invoke immediately in the calling thread
//   launch::deferred  invoke lazily on the first wait()/get()
//
// Internally each async is ONE pooled operation state carrying the
// result's shared state and the bound callable side by side; the
// submit thunk is a single shared_ptr and rides in the task_function
// small buffer, so the launch path performs one (recycled) allocation.
#pragma once

#include <memory>
#include <tuple>
#include <type_traits>
#include <utility>

#include "hpxlite/future.hpp"
#include "hpxlite/scheduler.hpp"
#include "hpxlite/stop_token.hpp"

namespace hpxlite {

enum class launch {
  async,
  sync,
  deferred,
};

namespace detail {

template <typename F, typename... Args>
using async_result_t =
    std::invoke_result_t<std::decay_t<F>, std::decay_t<Args>&...>;

/// Operation state for async: result state + bound callable in one
/// pooled object.  The returned future aliases the embedded state, so
/// the op lives exactly as long as something can still observe it.
template <typename R, typename Bound>
struct async_op {
  shared_state<R> result;
  Bound fn;

  explicit async_op(Bound b) : fn(std::move(b)) {}
};

}  // namespace detail

/// Invokes f(args...) under `policy`, returning a future for the result.
template <typename F, typename... Args>
auto async(launch policy, F&& f, Args&&... args)
    -> future<detail::async_result_t<F, Args...>> {
  using R = detail::async_result_t<F, Args...>;

  auto bound = [fn = std::decay_t<F>(std::forward<F>(f)),
                tup = std::tuple<std::decay_t<Args>...>(
                    std::forward<Args>(args)...)]() mutable -> R {
    return std::apply(fn, tup);
  };

  using op_t = detail::async_op<R, decltype(bound)>;
  auto op = detail::make_pooled<op_t>(std::move(bound));
  detail::shared_state_ptr<R> state(op, &op->result);  // aliasing: no alloc

  switch (policy) {
    case launch::sync: {
      detail::fulfil_from_invoke(&op->result, std::move(op->fn));
      break;
    }
    case launch::deferred: {
      // Captures a raw pointer: the deferred closure is stored inside
      // the op's own shared state, which strictly outlives it (a
      // shared_ptr capture would create a reference cycle).
      op->result.set_deferred([o = op.get()]() mutable {
        detail::fulfil_from_invoke(&o->result, std::move(o->fn));
      });
      break;
    }
    case launch::async: {
      auto thunk = [op]() mutable {
        detail::fulfil_from_invoke(&op->result, std::move(op->fn));
        op.reset();
      };
      static_assert(task_function::stores_inline<decltype(thunk)>,
                    "async submit thunk must ride in the task_function "
                    "small buffer");
      ambient_runtime().submit(std::move(thunk));
      break;
    }
  }
  return future<R>(std::move(state));
}

/// Convenience overload defaulting to launch::async.
template <typename F, typename... Args,
          typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, launch>>>
auto async(F&& f, Args&&... args) {
  return async(launch::async, std::forward<F>(f), std::forward<Args>(args)...);
}

/// Cancellable async: the token is polled at invocation time, so a stop
/// requested while the task is still queued resolves the future to
/// operation_cancelled without ever running `f` (and releases the bound
/// closure immediately afterwards).  Cooperative bodies can poll the
/// token themselves for mid-flight cancellation.
template <typename F, typename... Args>
auto async(launch policy, stop_token stop, F&& f, Args&&... args)
    -> future<detail::async_result_t<F, Args...>> {
  auto guarded = [stop = std::move(stop),
                  fn = std::decay_t<F>(std::forward<F>(f))](
                     std::decay_t<Args>&... as) mutable
      -> detail::async_result_t<F, Args...> {
    stop.throw_if_stopped();
    return fn(as...);
  };
  return async(policy, std::move(guarded), std::forward<Args>(args)...);
}

/// Runs f(args...) on the pool without producing a future ("apply" in
/// HPX terminology) — fire-and-forget.
template <typename F, typename... Args>
void post(F&& f, Args&&... args) {
  ambient_runtime().submit(
      [fn = std::decay_t<F>(std::forward<F>(f)),
       tup = std::tuple<std::decay_t<Args>...>(
           std::forward<Args>(args)...)]() mutable {
        std::apply(fn, tup);
      });
}

}  // namespace hpxlite
