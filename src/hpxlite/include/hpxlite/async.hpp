// hpxlite::async — asynchronous function invocation returning a future,
// matching the paper's usage:
//
//   return async(hpx::launch::async, [...]{ ... });
//
// Launch policies:
//   launch::async     schedule on the runtime's worker pool
//   launch::sync      invoke immediately in the calling thread
//   launch::deferred  invoke lazily on the first wait()/get()
#pragma once

#include <memory>
#include <tuple>
#include <type_traits>
#include <utility>

#include "hpxlite/future.hpp"
#include "hpxlite/scheduler.hpp"
#include "hpxlite/stop_token.hpp"

namespace hpxlite {

enum class launch {
  async,
  sync,
  deferred,
};

namespace detail {

template <typename F, typename... Args>
using async_result_t =
    std::invoke_result_t<std::decay_t<F>, std::decay_t<Args>&...>;

}  // namespace detail

/// Invokes f(args...) under `policy`, returning a future for the result.
template <typename F, typename... Args>
auto async(launch policy, F&& f, Args&&... args)
    -> future<detail::async_result_t<F, Args...>> {
  using R = detail::async_result_t<F, Args...>;
  auto state = std::make_shared<detail::shared_state<R>>();

  auto bound = [fn = std::decay_t<F>(std::forward<F>(f)),
                tup = std::tuple<std::decay_t<Args>...>(
                    std::forward<Args>(args)...)]() mutable -> R {
    return std::apply(fn, tup);
  };

  switch (policy) {
    case launch::sync: {
      detail::fulfil_from_invoke(state, std::move(bound));
      break;
    }
    case launch::deferred: {
      // Captures a raw pointer: the closure is stored inside the state
      // itself, so the state strictly outlives it (and a shared_ptr
      // capture would create a reference cycle).
      state->set_deferred([s = state.get(), work = std::move(bound)]() mutable {
        detail::fulfil_from_invoke(s, std::move(work));
      });
      break;
    }
    case launch::async: {
      ambient_runtime().submit(
          [state, work = std::move(bound)]() mutable {
            detail::fulfil_from_invoke(state, std::move(work));
          });
      break;
    }
  }
  return future<R>(std::move(state));
}

/// Convenience overload defaulting to launch::async.
template <typename F, typename... Args,
          typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, launch>>>
auto async(F&& f, Args&&... args) {
  return async(launch::async, std::forward<F>(f), std::forward<Args>(args)...);
}

/// Cancellable async: the token is polled at invocation time, so a stop
/// requested while the task is still queued resolves the future to
/// operation_cancelled without ever running `f` (and releases the bound
/// closure immediately afterwards).  Cooperative bodies can poll the
/// token themselves for mid-flight cancellation.
template <typename F, typename... Args>
auto async(launch policy, stop_token stop, F&& f, Args&&... args)
    -> future<detail::async_result_t<F, Args...>> {
  auto guarded = [stop = std::move(stop),
                  fn = std::decay_t<F>(std::forward<F>(f))](
                     std::decay_t<Args>&... as) mutable
      -> detail::async_result_t<F, Args...> {
    stop.throw_if_stopped();
    return fn(as...);
  };
  return async(policy, std::move(guarded), std::forward<Args>(args)...);
}

/// Runs f(args...) on the pool without producing a future ("apply" in
/// HPX terminology) — fire-and-forget.
template <typename F, typename... Args>
void post(F&& f, Args&&... args) {
  ambient_runtime().submit(
      [fn = std::decay_t<F>(std::forward<F>(f)),
       tup = std::tuple<std::decay_t<Args>...>(
           std::forward<Args>(args)...)]() mutable {
        std::apply(fn, tup);
      });
}

}  // namespace hpxlite
