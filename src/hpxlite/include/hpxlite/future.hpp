// future/promise with continuations — the mechanism the paper credits
// for removing global barriers: "a future is a computational result
// that is initially unknown but becomes available at a later time", and
// only consumers of that value ever suspend.
//
// Semantics follow HPX/std::experimental::future:
//   - future<T> is move-only; shared_future<T> is copyable
//   - future<T>::then(f) attaches a continuation receiving the ready
//     future; it runs as a scheduled task by default (launch::sync runs
//     it inline in the completing thread)
//   - wait() on a runtime worker thread *helps*: it executes queued
//     tasks while the value is pending, so nested waits cannot deadlock
//     the pool (Section III-A2's async-wrapped direct loops rely on it)
//   - when_all composes readiness without blocking
//
// Internally the continuation machinery follows the operation-state
// (connect/start, sender/receiver) shape production HPX adopted: a
// `.then` node is ONE pooled object — result shared state, continuation
// body and intrusive link side by side (see op_state.hpp) — and results
// are delivered through the receiver triple set_value / set_error /
// set_stopped.  The public future/promise API is unchanged.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "hpxlite/assert.hpp"
#include "hpxlite/op_state.hpp"
#include "hpxlite/scheduler.hpp"
#include "hpxlite/spinlock.hpp"
#include "hpxlite/stop_token.hpp"
#include "hpxlite/unique_function.hpp"

namespace hpxlite {

template <typename T>
class future;
template <typename T>
class shared_future;
template <typename T>
class promise;

/// Result of a timed wait (std::future_status without `deferred`:
/// hpxlite executes deferred work on the first timed wait).
enum class future_status {
  ready,
  timeout,
};

/// Thrown when a promise is destroyed without supplying a value.
class broken_promise : public std::runtime_error {
 public:
  broken_promise() : std::runtime_error("hpxlite: broken promise") {}
};

/// Thrown when get()/then() is called on an invalid (moved-from) future.
class no_state : public std::runtime_error {
 public:
  no_state() : std::runtime_error("hpxlite: future has no shared state") {}
};

/// Thrown by get_for() when the timeout elapses before the producer
/// fulfils the future.  The future remains valid; the caller may retry,
/// cancel the producer, or fall back.
class wait_timeout : public std::runtime_error {
 public:
  wait_timeout() : std::runtime_error("hpxlite: timed wait expired") {}
};

namespace detail {

/// Maps void to an empty tag so the shared-state storage stays uniform.
struct unit {};
template <typename T>
struct payload_of {
  using type = T;
};
template <>
struct payload_of<void> {
  using type = unit;
};
template <typename T>
using payload_t = typename payload_of<T>::type;

/// Abandoned-exception accounting: a task whose exception is never
/// observed (the future is dropped without get()) would otherwise
/// vanish silently — exactly the failure mode a barrier-free dataflow
/// runtime cannot afford.  Every such state bumps this counter at
/// destruction, and debug builds print the exception's message.
inline std::atomic<std::uint64_t>& abandoned_exception_counter() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

inline void note_abandoned_exception(
    [[maybe_unused]] const std::exception_ptr& ex) {
  abandoned_exception_counter().fetch_add(1, std::memory_order_relaxed);
#ifndef NDEBUG
  try {
    std::rethrow_exception(ex);
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "hpxlite: future destroyed with unobserved exception: %s\n",
                 e.what());
  } catch (...) {
    std::fprintf(
        stderr,
        "hpxlite: future destroyed with unobserved exception (non-std)\n");
  }
#endif
}

/// Count of continuations currently parked inside not-yet-ready shared
/// states (operation-state nodes and type-erased closure nodes alike).
/// Cancellation must drive this back down promptly: a cancelled chain
/// resolves (running and releasing its continuations) instead of
/// retaining them until runtime teardown.  Tests assert the counter
/// returns to its baseline after a cancelled dataflow chain.
inline std::atomic<std::uint64_t>& live_continuation_counter() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

template <typename T>
class shared_state {
 public:
  using payload = payload_t<T>;

  shared_state() = default;
  shared_state(const shared_state&) = delete;
  shared_state& operator=(const shared_state&) = delete;

  ~shared_state() {
    if (exception_ && !exception_observed_.load(std::memory_order_relaxed)) {
      note_abandoned_exception(exception_);
    }
    // Abandon still-parked continuation nodes without running them: each
    // node releases its own storage (and, for operation states, the
    // keepalive reference that pins it).
    continuation_node* node = cont_head_;
    std::size_t abandoned = 0;
    while (node != nullptr) {
      continuation_node* next = node->next;
      node->abandon(node);
      node = next;
      ++abandoned;
    }
    if (abandoned != 0) {
      live_continuation_counter().fetch_sub(abandoned,
                                            std::memory_order_relaxed);
    }
  }

  bool is_ready() const noexcept {
    return ready_.load(std::memory_order_acquire);
  }

  // --- receiver completion channels -----------------------------------
  // Operation states deliver results through this triple; set_exception
  // is kept as the historical spelling of set_error for external code.

  template <typename... Args>
  void set_value(Args&&... args) {
    continuation_node* conts = nullptr;
    {
      std::lock_guard<spinlock> lock(mutex_);
      HPXLITE_ASSERT(!ready_.load(std::memory_order_relaxed),
                     "value set twice on shared state");
      value_.emplace(std::forward<Args>(args)...);
      ready_.store(true, std::memory_order_release);
      conts = take_continuations_locked();
    }
    finish(conts);
  }

  void set_error(std::exception_ptr ex) {
    continuation_node* conts = nullptr;
    {
      std::lock_guard<spinlock> lock(mutex_);
      HPXLITE_ASSERT(!ready_.load(std::memory_order_relaxed),
                     "value set twice on shared state");
      exception_ = std::move(ex);
      ready_.store(true, std::memory_order_release);
      conts = take_continuations_locked();
    }
    finish(conts);
  }

  void set_exception(std::exception_ptr ex) { set_error(std::move(ex)); }

  /// Receiver-style stopped channel: resolves the state with
  /// operation_cancelled, preserving the cancellation contract that
  /// cancelled chains *resolve* (running and releasing downstream
  /// continuations) rather than park forever.
  void set_stopped() {
    set_error(std::make_exception_ptr(operation_cancelled()));
  }

  /// set_stopped with the original cancellation exception (keeps the
  /// producer's message intact for diagnostics).
  void set_stopped(std::exception_ptr reason) { set_error(std::move(reason)); }

  // --- continuation registration --------------------------------------

  /// Links an operation-state node into this state's continuation list;
  /// fires it immediately (per its mode) if the state is already ready.
  /// Registration itself never allocates.
  void add_continuation(continuation_node* node) {
    {
      std::lock_guard<spinlock> lock(mutex_);
      if (!ready_.load(std::memory_order_relaxed)) {
        node->next = nullptr;
        if (cont_tail_ != nullptr) {
          cont_tail_->next = node;
        } else {
          cont_head_ = node;
        }
        cont_tail_ = node;
        live_continuation_counter().fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    dispatch_node(node);
  }

  /// Type-erased registration for arbitrary closures (join logic,
  /// nested-future unwrapping, external composition code).  The closure
  /// is wrapped in a pool-backed node — one recycled block, not a heap
  /// closure in a heap vector slot.
  void add_continuation(task_function cont, continuation_mode mode) {
    add_continuation(closure_node::create(std::move(cont), mode));
  }

  /// Installs work to be executed lazily by the first wait()/get()
  /// (launch::deferred).  Must be called before any wait.
  void set_deferred(task_function work) {
    std::lock_guard<spinlock> lock(mutex_);
    deferred_work_ = std::move(work);
  }

  /// Blocks until ready.  A runtime worker thread executes queued tasks
  /// while waiting instead of sleeping.
  void wait() {
    if (is_ready()) {
      return;
    }
    // Deferred state: the first waiter runs the work inline.
    {
      task_function work;
      {
        std::lock_guard<spinlock> lock(mutex_);
        work = std::move(deferred_work_);
        deferred_work_.reset();
      }
      if (work) {
        work();  // fulfils this state via promise/fulfil_from_invoke
        HPXLITE_ASSERT(is_ready(), "deferred work did not fulfil its state");
        return;
      }
    }
    if (runtime* rt = runtime::current()) {
      // Help on the calling worker's own pool — resolved via TLS, not
      // the default-instance registry, so the no-deadlock invariant
      // holds for tasks still executing while their pool drains for
      // teardown (and for workers of non-default runtimes).
      while (!is_ready()) {
        if (!rt->try_execute_one()) {
          std::this_thread::yield();
        }
      }
      return;
    }
    std::unique_lock<std::mutex> lock(waiter_mutex());
    waiters_ += 1;
    waiter_cv().wait(lock, [this] { return is_ready(); });
    waiters_ -= 1;
  }

  /// Timed wait: like wait(), but gives up after `timeout`.  Returns
  /// whether the state became ready.  Worker threads help while
  /// waiting; deferred work is executed as in wait().
  bool wait_for(std::chrono::nanoseconds timeout) {
    if (is_ready()) {
      return true;
    }
    {
      task_function work;
      {
        std::lock_guard<spinlock> lock(mutex_);
        work = std::move(deferred_work_);
        deferred_work_.reset();
      }
      if (work) {
        work();
        return true;
      }
    }
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    if (runtime* rt = runtime::current()) {
      while (!is_ready()) {
        if (std::chrono::steady_clock::now() >= deadline) {
          return is_ready();
        }
        if (!rt->try_execute_one()) {
          std::this_thread::yield();
        }
      }
      return true;
    }
    std::unique_lock<std::mutex> lock(waiter_mutex());
    waiters_ += 1;
    const bool ready =
        waiter_cv().wait_until(lock, deadline, [this] { return is_ready(); });
    waiters_ -= 1;
    return ready;
  }

  /// Pre: is_ready().  Throws the stored exception, if any, marking it
  /// observed (get()/then() chains count as observation; a state that
  /// dies with an unobserved exception is an abandoned failure).
  void throw_if_exceptional() {
    if (exception_) {
      exception_observed_.store(true, std::memory_order_relaxed);
      std::rethrow_exception(exception_);
    }
  }

  /// Pre: is_ready() and no exception.  Moves the payload out.
  payload take_value() {
    throw_if_exceptional();
    HPXLITE_ASSERT(value_.has_value(), "shared state ready without value");
    payload v = std::move(*value_);
    value_.reset();
    return v;
  }

  /// Pre: is_ready() and no exception.  Const access (shared_future).
  const payload& peek_value() {
    throw_if_exceptional();
    HPXLITE_ASSERT(value_.has_value(), "shared state ready without value");
    return *value_;
  }

  bool has_exception() const noexcept {
    return is_ready() && exception_ != nullptr;
  }

  /// Runs `node` now: scheduled nodes go to the runtime's worker pool
  /// (preferring the completing worker's own pool, which stays valid
  /// during a teardown drain), inline nodes run in the calling thread.
  /// The dispatch thunk is a single pointer, so parking it in a
  /// task_function is statically allocation-free.
  static void dispatch_node(continuation_node* node) {
    if (node->mode == continuation_mode::scheduled) {
      auto thunk = [node] { node->fire(node); };
      static_assert(task_function::stores_inline<decltype(thunk)>,
                    "continuation dispatch thunk must ride in the "
                    "task_function small buffer");
      if (runtime* rt = runtime::current()) {
        rt->submit(std::move(thunk));
        return;
      }
      if (runtime::exists()) {
        runtime::get().submit(std::move(thunk));
        return;
      }
    }
    node->fire(node);
  }

 private:
  /// Pre: mutex_ held.  Detaches and returns the parked list.
  continuation_node* take_continuations_locked() {
    continuation_node* head = cont_head_;
    cont_head_ = nullptr;
    cont_tail_ = nullptr;
    return head;
  }

  /// Post-completion epilogue: releases the parked-continuation count,
  /// wakes blocked waiters, and fires the list in FIFO order.  A node's
  /// fire may destroy the node, so `next` is read first.
  void finish(continuation_node* conts) {
    std::size_t released = 0;
    for (continuation_node* n = conts; n != nullptr; n = n->next) {
      ++released;
    }
    if (released != 0) {
      live_continuation_counter().fetch_sub(released,
                                            std::memory_order_relaxed);
    }
    wake_waiters();
    while (conts != nullptr) {
      continuation_node* next = conts->next;
      dispatch_node(conts);
      conts = next;
    }
  }

  void wake_waiters() {
    // The waiter mutex/cv pair is shared process-wide (keyed by state
    // address) to keep shared_state small; waits are rare because
    // worker threads help instead.
    std::unique_lock<std::mutex> lock(waiter_mutex());
    const bool any = waiters_ > 0;
    lock.unlock();
    if (any) {
      waiter_cv().notify_all();
    }
  }

  static std::mutex& waiter_mutex() {
    static std::mutex m;
    return m;
  }
  static std::condition_variable& waiter_cv() {
    static std::condition_variable cv;
    return cv;
  }

  spinlock mutex_;
  std::atomic<bool> ready_{false};
  std::atomic<bool> exception_observed_{false};
  std::optional<payload> value_;
  std::exception_ptr exception_;
  continuation_node* cont_head_ = nullptr;  // FIFO list of parked nodes
  continuation_node* cont_tail_ = nullptr;
  task_function deferred_work_;
  int waiters_ = 0;  // guarded by waiter_mutex()
};

template <typename T>
using shared_state_ptr = std::shared_ptr<shared_state<T>>;

/// One pooled allocation for a bare shared state (promise,
/// make_ready_future, the chunked algorithms' join states).
template <typename T>
shared_state_ptr<T> make_pooled_state() {
  return make_pooled<shared_state<T>>();
}

/// Trait: is X a (possibly cv/ref-qualified) hpxlite future?
template <typename X>
struct is_future : std::false_type {};
template <typename T>
struct is_future<future<T>> : std::true_type {};
template <typename T>
struct is_future<shared_future<T>> : std::true_type {};
template <typename X>
inline constexpr bool is_future_v = is_future<std::decay_t<X>>::value;

template <typename X>
struct future_value {
  using type = void;
};
template <typename T>
struct future_value<future<T>> {
  using type = T;
};
template <typename T>
struct future_value<shared_future<T>> {
  using type = T;
};
template <typename X>
using future_value_t = typename future_value<std::decay_t<X>>::type;

}  // namespace detail

/// Number of shared states destroyed with an exception nobody observed
/// (no get() anywhere downstream).  Monotonic; tests assert deltas.
inline std::uint64_t abandoned_exception_count() {
  return detail::abandoned_exception_counter().load(std::memory_order_relaxed);
}

/// Number of continuations currently parked inside pending shared
/// states (operation-state nodes and closure nodes alike).  Returns to
/// baseline once every chain — including cancelled ones — has resolved;
/// the closure-retention regression tests assert this.
inline std::uint64_t pending_continuation_count() {
  return detail::live_continuation_counter().load(std::memory_order_relaxed);
}

template <typename T>
class future {
 public:
  using value_type = T;

  future() noexcept = default;
  explicit future(detail::shared_state_ptr<T> state)
      : state_(std::move(state)) {}

  future(future&&) noexcept = default;
  future& operator=(future&&) noexcept = default;
  future(const future&) = delete;
  future& operator=(const future&) = delete;

  /// True if this future refers to a shared state (not moved-from).
  bool valid() const noexcept { return state_ != nullptr; }

  /// True if the value or exception is already available.
  bool is_ready() const {
    return state_ != nullptr && state_->is_ready();
  }

  /// Blocks (helping, on worker threads) until ready.
  void wait() const {
    ensure_valid();
    state_->wait();
  }

  /// Timed wait; never consumes the state.
  template <typename Rep, typename Period>
  future_status wait_for(std::chrono::duration<Rep, Period> timeout) const {
    ensure_valid();
    return state_->wait_for(
               std::chrono::duration_cast<std::chrono::nanoseconds>(timeout))
               ? future_status::ready
               : future_status::timeout;
  }

  /// Waits, then returns the value (moving it out) or rethrows the
  /// stored exception.  Consumes the future's state.
  T get() {
    ensure_valid();
    state_->wait();
    auto state = std::move(state_);
    if constexpr (std::is_void_v<T>) {
      state->take_value();
      return;
    } else {
      return state->take_value();
    }
  }

  /// get() bounded by a timeout: waits up to `timeout`, then either
  /// consumes the state like get() or throws wait_timeout, leaving the
  /// future valid for a later retry/cancel decision.
  template <typename Rep, typename Period>
  T get_for(std::chrono::duration<Rep, Period> timeout) {
    if (wait_for(timeout) == future_status::timeout) {
      throw wait_timeout();
    }
    return get();
  }

  /// Attaches a continuation `f(future<T>&&)`; returns a future for its
  /// result.  `mode` selects scheduled (default) or inline execution.
  /// Internally this is a connect/start: one pooled operation state
  /// carries the result state and the continuation body, linked into
  /// the predecessor without any further allocation.
  template <typename F>
  auto then(F&& f, detail::continuation_mode mode =
                       detail::continuation_mode::scheduled)
      -> future<std::invoke_result_t<std::decay_t<F>, future<T>&&>>;

  /// Converts to a copyable shared_future, consuming this future.
  shared_future<T> share();

  /// Internal: access to the shared state (used by when_all/dataflow).
  const detail::shared_state_ptr<T>& state() const { return state_; }
  detail::shared_state_ptr<T> release_state() { return std::move(state_); }

 private:
  void ensure_valid() const {
    if (!state_) {
      throw no_state();
    }
  }

  detail::shared_state_ptr<T> state_;
};

template <typename T>
class shared_future {
 public:
  using value_type = T;

  shared_future() noexcept = default;
  explicit shared_future(detail::shared_state_ptr<T> state)
      : state_(std::move(state)) {}
  shared_future(future<T>&& f) : state_(f.release_state()) {}  // NOLINT

  shared_future(const shared_future&) = default;
  shared_future& operator=(const shared_future&) = default;
  shared_future(shared_future&&) noexcept = default;
  shared_future& operator=(shared_future&&) noexcept = default;

  bool valid() const noexcept { return state_ != nullptr; }
  bool is_ready() const { return state_ != nullptr && state_->is_ready(); }

  void wait() const {
    ensure_valid();
    state_->wait();
  }

  /// Timed wait.
  template <typename Rep, typename Period>
  future_status wait_for(std::chrono::duration<Rep, Period> timeout) const {
    ensure_valid();
    return state_->wait_for(
               std::chrono::duration_cast<std::chrono::nanoseconds>(timeout))
               ? future_status::ready
               : future_status::timeout;
  }

  /// Waits, then returns a const reference to the value (void: returns
  /// nothing).  Does not consume the state; get() may be called again.
  decltype(auto) get() const {
    ensure_valid();
    state_->wait();
    if constexpr (std::is_void_v<T>) {
      state_->peek_value();
      return;
    } else {
      return static_cast<const T&>(state_->peek_value());
    }
  }

  /// get() bounded by a timeout; throws wait_timeout on expiry.  The
  /// shared state is never consumed, so expiry leaves the future as-is.
  template <typename Rep, typename Period>
  decltype(auto) get_for(std::chrono::duration<Rep, Period> timeout) const {
    if (wait_for(timeout) == future_status::timeout) {
      throw wait_timeout();
    }
    return get();
  }

  template <typename F>
  auto then(F&& f, detail::continuation_mode mode =
                       detail::continuation_mode::scheduled)
      -> future<std::invoke_result_t<std::decay_t<F>, shared_future<T>>>;

  const detail::shared_state_ptr<T>& state() const { return state_; }

 private:
  void ensure_valid() const {
    if (!state_) {
      throw no_state();
    }
  }

  detail::shared_state_ptr<T> state_;
};

template <typename T>
class promise {
 public:
  promise() : state_(detail::make_pooled_state<T>()) {}
  promise(promise&&) noexcept = default;
  promise& operator=(promise&&) noexcept = default;
  promise(const promise&) = delete;
  promise& operator=(const promise&) = delete;

  ~promise() {
    if (state_ && !retrieved_future_ready_checked() && !state_->is_ready()) {
      state_->set_exception(std::make_exception_ptr(broken_promise()));
    }
  }

  future<T> get_future() {
    HPXLITE_ASSERT(state_ != nullptr, "promise has no state");
    HPXLITE_ASSERT(!future_retrieved_, "future retrieved twice");
    future_retrieved_ = true;
    return future<T>(state_);
  }

  template <typename... Args>
  void set_value(Args&&... args) {
    HPXLITE_ASSERT(state_ != nullptr, "promise has no state");
    if constexpr (std::is_void_v<T>) {
      static_assert(sizeof...(Args) == 0,
                    "promise<void>::set_value takes no arguments");
      state_->set_value(detail::unit{});
    } else {
      state_->set_value(std::forward<Args>(args)...);
    }
  }

  void set_exception(std::exception_ptr ex) {
    HPXLITE_ASSERT(state_ != nullptr, "promise has no state");
    state_->set_exception(std::move(ex));
  }

 private:
  bool retrieved_future_ready_checked() const { return false; }

  detail::shared_state_ptr<T> state_;
  bool future_retrieved_ = false;
};

/// A future that is already ready, holding `value`.
template <typename T>
future<std::decay_t<T>> make_ready_future(T&& value) {
  auto state = detail::make_pooled_state<std::decay_t<T>>();
  state->set_value(std::forward<T>(value));
  return future<std::decay_t<T>>(std::move(state));
}

/// A ready future<void>.
inline future<void> make_ready_future() {
  auto state = detail::make_pooled_state<void>();
  state->set_value(detail::unit{});
  return future<void>(std::move(state));
}

/// A ready future carrying an exception.
template <typename T>
future<T> make_exceptional_future(std::exception_ptr ex) {
  auto state = detail::make_pooled_state<T>();
  state->set_exception(std::move(ex));
  return future<T>(std::move(state));
}

namespace detail {

/// Invokes `f(arg)` and delivers the result through the receiver
/// triple: set_value on success, set_stopped for cancellation, and
/// set_error for every other exception.  Handles void results
/// uniformly.  `State` may be a raw pointer or any smart pointer.
template <typename State, typename F, typename... Arg>
void fulfil_from_invoke(State&& state, F&& f, Arg&&... arg) {
  try {
    if constexpr (std::is_void_v<
                      std::invoke_result_t<F&&, Arg&&...>>) {
      std::forward<F>(f)(std::forward<Arg>(arg)...);
      state->set_value(unit{});
    } else {
      state->set_value(std::forward<F>(f)(std::forward<Arg>(arg)...));
    }
  } catch (const operation_cancelled&) {
    state->set_stopped(std::current_exception());
  } catch (...) {
    state->set_error(std::current_exception());
  }
}

/// The operation state behind future::then / shared_future::then: the
/// result's shared state, the predecessor reference and the
/// continuation body in ONE pooled object.  `connect` is the
/// make_pooled call; `start` is the add_continuation registration; the
/// node fires at most once and releases its keepalive there.
template <typename R, typename FutureT, typename T, typename F>
struct then_op final : continuation_node {
  shared_state<R> result;
  shared_state_ptr<T> pred;
  F fn;
  std::shared_ptr<void> self;  // keepalive from start() to fire

  then_op(shared_state_ptr<T> p, F f)
      : pred(std::move(p)), fn(std::move(f)) {
    fire = &then_op::do_fire;
    abandon = &then_op::do_abandon;
  }

  static void do_fire(continuation_node* node) {
    auto* op = static_cast<then_op*>(node);
    auto keep = std::move(op->self);
    // Re-wrap the (now ready) predecessor for the callback, matching
    // HPX's then() signature; the callback consumes the predecessor
    // reference, releasing it as soon as the body returns.
    fulfil_from_invoke(&op->result, std::move(op->fn),
                       FutureT(std::move(op->pred)));
  }

  static void do_abandon(continuation_node* node) noexcept {
    // Never ran: the predecessor state died unresolved.  Unreachable in
    // practice (this op holds the predecessor alive), kept defensive.
    auto* op = static_cast<then_op*>(node);
    auto keep = std::move(op->self);
  }
};

/// Builds, registers and returns the future for a then-continuation.
template <typename R, typename FutureT, typename T, typename F>
future<R> start_then_op(shared_state_ptr<T> pred_state, F&& f,
                        continuation_mode mode) {
  using op_t = then_op<R, FutureT, T, std::decay_t<F>>;
  auto op = make_pooled<op_t>(std::move(pred_state),
                              std::decay_t<F>(std::forward<F>(f)));
  op->mode = mode;
  shared_state<T>* pred = op->pred.get();
  shared_state_ptr<R> result(op, &op->result);  // aliasing: no allocation
  op->self = op;
  pred->add_continuation(static_cast<continuation_node*>(op.get()));
  return future<R>(std::move(result));
}

}  // namespace detail

template <typename T>
template <typename F>
auto future<T>::then(F&& f, detail::continuation_mode mode)
    -> future<std::invoke_result_t<std::decay_t<F>, future<T>&&>> {
  using R = std::invoke_result_t<std::decay_t<F>, future<T>&&>;
  ensure_valid();
  return detail::start_then_op<R, future<T>>(std::move(state_),
                                             std::forward<F>(f), mode);
}

template <typename T>
shared_future<T> future<T>::share() {
  ensure_valid();
  return shared_future<T>(std::move(state_));
}

template <typename T>
template <typename F>
auto shared_future<T>::then(F&& f, detail::continuation_mode mode)
    -> future<std::invoke_result_t<std::decay_t<F>, shared_future<T>>> {
  using R = std::invoke_result_t<std::decay_t<F>, shared_future<T>>;
  ensure_valid();
  // Copies the state (a shared_future stays usable after then()).
  return detail::start_then_op<R, shared_future<T>>(state_,
                                                    std::forward<F>(f), mode);
}

// ---------------------------------------------------------------------
// when_all

namespace detail {

/// Join operation state for when_all over a vector: ONE pooled object
/// holds the result state, the countdown and the held inputs, plus one
/// intrusive arm per input (a single pooled array, not a closure per
/// input).  Arms carry a raw owner pointer — the keepalive reference
/// makes per-arm shared_state_ptr copies unnecessary on the dispatch
/// hot path.
template <typename T>
struct when_all_vec_op final {
  using result_t = std::vector<future<T>>;

  struct arm final : continuation_node {
    when_all_vec_op* owner = nullptr;
    arm() {
      fire = &when_all_vec_op::arm_fire;
      abandon = &when_all_vec_op::arm_abandon;
      mode = continuation_mode::inline_;
    }
  };

  shared_state<result_t> result;
  std::atomic<std::size_t> remaining{0};
  result_t held;
  pooled_arm_array<arm> arms;
  std::shared_ptr<void> self;

  explicit when_all_vec_op(std::size_t n) : arms(n) {
    for (std::size_t i = 0; i < n; ++i) {
      arms[i].owner = this;
    }
  }

  static void arm_fire(continuation_node* node) {
    auto* owner = static_cast<arm*>(node)->owner;
    if (owner->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      auto keep = std::move(owner->self);
      owner->result.set_value(std::move(owner->held));
    }
  }

  static void arm_abandon(continuation_node* node) noexcept {
    // Unreachable in practice: `held` keeps every input state alive
    // until the join completes.  Kept defensive.
    auto* owner = static_cast<arm*>(node)->owner;
    if (owner->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      auto keep = std::move(owner->self);
      owner->result.set_error(std::make_exception_ptr(broken_promise()));
    }
  }
};

/// Join op for when_all over shared futures: completion only, the
/// inputs stay with the caller (and are NOT retained here, matching the
/// historical semantics).  An input state dying unresolved abandons its
/// arm, which counts as arrival so the join still completes.
struct when_all_shared_op final {
  struct arm final : continuation_node {
    when_all_shared_op* owner = nullptr;
    arm() {
      fire = &when_all_shared_op::arm_fire;
      abandon = &when_all_shared_op::arm_fire_noexcept;
      mode = continuation_mode::inline_;
    }
  };

  shared_state<void> result;
  std::atomic<std::size_t> remaining{0};
  pooled_arm_array<arm> arms;
  std::shared_ptr<void> self;

  explicit when_all_shared_op(std::size_t n) : arms(n) {
    for (std::size_t i = 0; i < n; ++i) {
      arms[i].owner = this;
    }
  }

  static void arm_fire(continuation_node* node) {
    auto* owner = static_cast<arm*>(node)->owner;
    if (owner->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      auto keep = std::move(owner->self);
      owner->result.set_value(unit{});
    }
  }

  static void arm_fire_noexcept(continuation_node* node) noexcept {
    arm_fire(node);
  }
};

/// Join op for variadic when_all: the arm count is a compile-time
/// constant, so the arms ride inline — one pooled allocation total.
template <typename Tuple, std::size_t N>
struct when_all_tuple_op final {
  struct arm final : continuation_node {
    when_all_tuple_op* owner = nullptr;
    arm() {
      fire = &when_all_tuple_op::arm_fire;
      abandon = &when_all_tuple_op::arm_abandon;
      mode = continuation_mode::inline_;
    }
  };

  shared_state<Tuple> result;
  std::atomic<std::size_t> remaining{0};
  std::optional<Tuple> held;
  std::array<arm, N> arms;
  std::shared_ptr<void> self;

  when_all_tuple_op() {
    for (auto& a : arms) {
      a.owner = this;
    }
  }

  static void arm_fire(continuation_node* node) {
    auto* owner = static_cast<arm*>(node)->owner;
    if (owner->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      auto keep = std::move(owner->self);
      owner->result.set_value(std::move(*owner->held));
    }
  }

  static void arm_abandon(continuation_node* node) noexcept {
    auto* owner = static_cast<arm*>(node)->owner;
    if (owner->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      auto keep = std::move(owner->self);
      owner->result.set_error(std::make_exception_ptr(broken_promise()));
    }
  }
};

}  // namespace detail

/// when_all over a vector: the result future becomes ready when every
/// input is ready and yields the (now-ready) inputs back.
template <typename T>
future<std::vector<future<T>>> when_all(std::vector<future<T>> futures) {
  using op_t = detail::when_all_vec_op<T>;
  using result_t = typename op_t::result_t;
  const std::size_t n = futures.size();
  auto op = detail::make_pooled<op_t>(n);
  detail::shared_state_ptr<result_t> next(op, &op->result);
  if (n == 0) {
    op->result.set_value(result_t{});
    return future<result_t>(std::move(next));
  }
  op->remaining.store(n, std::memory_order_relaxed);
  op->held = std::move(futures);
  op->self = op;
  for (std::size_t i = 0; i < n; ++i) {
    HPXLITE_ASSERT(op->held[i].valid(), "when_all over an invalid future");
    op->held[i].state()->add_continuation(&op->arms[i]);
  }
  return future<result_t>(std::move(next));
}

/// when_all over shared futures: the result becomes ready when every
/// input is ready; the inputs themselves remain usable by the caller.
template <typename T>
future<void> when_all(const std::vector<shared_future<T>>& futures) {
  using op_t = detail::when_all_shared_op;
  const std::size_t n = futures.size();
  auto op = detail::make_pooled<op_t>(n);
  detail::shared_state_ptr<void> next(op, &op->result);
  if (n == 0) {
    op->result.set_value(detail::unit{});
    return future<void>(std::move(next));
  }
  op->remaining.store(n, std::memory_order_relaxed);
  op->self = op;
  for (std::size_t i = 0; i < n; ++i) {
    HPXLITE_ASSERT(futures[i].valid(),
                   "when_all over an invalid shared_future");
    futures[i].state()->add_continuation(&op->arms[i]);
  }
  return future<void>(std::move(next));
}

/// Variadic when_all: yields a tuple of the ready inputs.
template <typename... Ts,
          typename = std::enable_if_t<(detail::is_future_v<Ts> && ...)>>
future<std::tuple<std::decay_t<Ts>...>> when_all(Ts&&... futures) {
  using tuple_t = std::tuple<std::decay_t<Ts>...>;
  using op_t = detail::when_all_tuple_op<tuple_t, sizeof...(Ts)>;
  auto op = detail::make_pooled<op_t>();
  detail::shared_state_ptr<tuple_t> next(op, &op->result);
  op->remaining.store(sizeof...(Ts), std::memory_order_relaxed);
  op->held.emplace(std::forward<Ts>(futures)...);
  op->self = op;
  std::size_t idx = 0;
  const auto arm_one = [&](auto& f) {
    HPXLITE_ASSERT(f.valid(), "when_all over an invalid future");
    f.state()->add_continuation(&op->arms[idx++]);
  };
  std::apply([&](auto&... fs) { (arm_one(fs), ...); }, *op->held);
  return future<tuple_t>(std::move(next));
}

}  // namespace hpxlite
