// Feedback-driven grain-size controller behind adaptive_chunk_size.
//
// The paper's auto-partitioner (execution.hpp's auto_chunk_size) sizes
// chunks by serially executing ~1% of the loop *on every invocation*
// and throwing the measurement away.  For a solver that replays the
// same handful of loops thousands of times that probe is pure,
// repeated overhead.  This controller inverts the flow: the caller
// reports each complete run's wall time (`feed`), and the controller
// hill-climbs over a geometric ladder of candidate chunk sizes
// (×2 / ÷2 around a workers-derived seed), converges on the fastest,
// and locks — after which `chunk()` is a single locked read, with no
// probe and no timing machinery on the execution path itself.
//
// Lifecycle:
//   probing   — the next few runs are experiments: each candidate is
//               sampled `samples_per_candidate` times (min-of-samples,
//               robust to scheduling noise), then the climb moves up,
//               moves down, or stops.  Bounded by `max_probe_feeds`:
//               convergence is guaranteed within that many feeds.
//   converged — the best candidate is locked in.  Feeds keep flowing
//               (they are cheap) purely for drift detection: a run
//               slower than the converged baseline by more than
//               `regression_threshold` for `regression_strikes`
//               consecutive feeds re-enters probing from the current
//               best.  reprobe() forces the same re-entry (the op2
//               runtime calls it on a validity-epoch bump).
//   frozen    — chunk is pinned; feed/reprobe are ignored.  Used by
//               OP2_TUNER=freeze and for calibration-cache replay
//               experiments.
//
// A controller also watches the iteration count it is asked about: if
// `n` drifts by more than half from the value it tuned for (the mesh
// was resized, the plan's block count changed), the learned chunk no
// longer means the same thing and the controller re-seeds.
//
// Thread safety: all methods take an internal spinlock.  The expected
// calling pattern (one prepared-loop replay in flight per entry) is
// effectively serial; the lock makes the controller safe to share
// between call sites anyway.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "hpxlite/spinlock.hpp"

namespace hpxlite {

class grain_controller {
 public:
  enum class state { probing, converged, frozen };

  struct options {
    /// Starting candidate; 0 derives max(1, n / (4 * workers)) on the
    /// first chunk() call (at least four chunks per worker, the same
    /// normalisation parallel reduce uses).
    std::size_t seed_chunk = 0;
    /// Timed runs per candidate before the climb judges it (min of the
    /// samples is compared, so one descheduled run cannot mislead).
    int samples_per_candidate = 2;
    /// Relative improvement required to move to a neighbouring
    /// candidate (guards against chasing timer noise).
    double improve_margin = 0.05;
    /// Converged runs slower than baseline by more than this re-enter
    /// probing ...
    double regression_threshold = 0.15;
    /// ... once this many consecutive feeds regress.
    int regression_strikes = 3;
    /// Hard convergence bound: after this many probing feeds the best
    /// candidate seen so far is locked unconditionally.
    int max_probe_feeds = 32;
  };

  grain_controller() = default;
  explicit grain_controller(options opt) : opt_(opt) {}

  /// A controller born converged at `chunk` — the calibration-cache
  /// warm start: it performs zero exploration unless drift or an
  /// explicit reprobe() sends it back to probing.
  static std::shared_ptr<grain_controller> converged_at(std::size_t chunk,
                                                        options opt);
  static std::shared_ptr<grain_controller> converged_at(std::size_t chunk) {
    return converged_at(chunk, options{});
  }

  /// The chunk size to use for the next run of `n` iterations on
  /// `workers` workers.  Seeds on first use; re-seeds if `n` drifted
  /// by more than half from the tuned-for value; always in [1, n]
  /// (for n == 0 returns 1).
  std::size_t chunk(std::size_t n, unsigned workers);

  /// Reports the wall time of the run that used the last chunk().
  void feed(double seconds);

  /// Pins the current chunk; feed/reprobe become no-ops.
  void freeze();

  /// Forces a converged controller back to probing, seeded at its
  /// current best (no-op while frozen or already probing).
  void reprobe();

  /// Drops everything: next chunk() re-seeds and probing restarts.
  void reset();

  state current_state() const;
  std::size_t current_chunk() const;

  /// Feeds consumed while probing since the last convergence — the
  /// "convergence iteration" the ablation reports.
  std::uint64_t probe_feeds() const;
  /// Probing feeds over the controller's whole life (zero for an
  /// undisturbed cache-seeded controller).
  std::uint64_t total_probe_feeds() const;
  std::uint64_t total_feeds() const;

 private:
  void seed_locked(std::size_t n, unsigned workers);
  void converge_locked();
  void advance_locked(double candidate_time);

  mutable spinlock lock_;
  options opt_;

  state state_ = state::probing;
  std::size_t chunk_ = 0;      // current candidate (0 = unseeded)
  std::size_t n_ref_ = 0;      // iteration count the ladder was built for
  unsigned workers_ref_ = 1;

  // Climb state.
  std::size_t best_chunk_ = 0;
  double best_time_ = -1.0;    // < 0: no candidate fully sampled yet
  int direction_ = +1;         // ladder direction: ×2 (+1) or ÷2 (-1)
  bool reversed_ = false;      // already tried the other direction
  int sample_count_ = 0;
  double sample_min_ = 0.0;

  // Converged state.
  double converged_time_ = 0.0;
  int strikes_ = 0;

  std::uint64_t probe_feeds_ = 0;        // since last convergence
  std::uint64_t total_probe_feeds_ = 0;
  std::uint64_t total_feeds_ = 0;
};

const char* to_string(grain_controller::state s);

}  // namespace hpxlite
