// Cooperative cancellation, modelled on std::stop_token / HPX's
// hpx::stop_token (arXiv:2401.03353 §5): a stop_source owns a shared
// stop state, hands out copyable stop_tokens, and request_stop() makes
// every token observe stop_requested() == true exactly once.
//
// Registered callbacks run on the thread calling request_stop() and the
// stop state drops them immediately afterwards, so closures captured by
// a callback are released promptly — cancelled work must not retain its
// continuation environment until runtime teardown.
//
// Cancellation is *cooperative*: nothing preempts running code.  The
// chunked parallel algorithms poll the token between chunks, async /
// dataflow check it before invoking their callable, and blocking waits
// (e.g. an injected stall) can register a stop_callback to be woken.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "hpxlite/spinlock.hpp"

namespace hpxlite {

/// Thrown out of cancelled work: a chunk that observed its token, an
/// async/dataflow node resolved without running, or get() on a future
/// whose producer was cancelled.
class operation_cancelled : public std::runtime_error {
 public:
  operation_cancelled() : std::runtime_error("hpxlite: operation cancelled") {}
  explicit operation_cancelled(const std::string& what)
      : std::runtime_error(what) {}
};

namespace detail {

struct stop_state {
  std::atomic<bool> requested{false};
  spinlock lock;
  std::uint64_t next_id = 1;
  std::vector<std::pair<std::uint64_t, std::function<void()>>> callbacks;

  /// Flips the flag and runs (then drops) every registered callback.
  /// Returns false if stop had already been requested.
  bool request() {
    if (requested.exchange(true, std::memory_order_acq_rel)) {
      return false;
    }
    std::vector<std::pair<std::uint64_t, std::function<void()>>> run;
    {
      std::lock_guard<spinlock> g(lock);
      run.swap(callbacks);
    }
    for (auto& cb : run) {
      cb.second();
    }
    return true;
  }

  /// Registers a callback; runs it immediately (returning 0) when stop
  /// was already requested.  Returns a nonzero id otherwise.
  std::uint64_t add_callback(std::function<void()> cb) {
    {
      std::lock_guard<spinlock> g(lock);
      if (!requested.load(std::memory_order_acquire)) {
        std::uint64_t id = next_id++;
        callbacks.emplace_back(id, std::move(cb));
        return id;
      }
    }
    cb();
    return 0;
  }

  void remove_callback(std::uint64_t id) {
    if (id == 0) {
      return;
    }
    std::lock_guard<spinlock> g(lock);
    for (auto it = callbacks.begin(); it != callbacks.end(); ++it) {
      if (it->first == id) {
        callbacks.erase(it);
        return;
      }
    }
  }
};

}  // namespace detail

class stop_source;

/// Copyable observer handle onto a stop state.  A default-constructed
/// token is detached: stop_possible() == false and it never reports a
/// stop request.
class stop_token {
 public:
  stop_token() = default;

  bool stop_possible() const noexcept { return state_ != nullptr; }

  bool stop_requested() const noexcept {
    return state_ && state_->requested.load(std::memory_order_acquire);
  }

  /// Throws operation_cancelled if stop has been requested.  The
  /// polling idiom used between chunks.
  void throw_if_stopped() const {
    if (stop_requested()) {
      throw operation_cancelled();
    }
  }

  friend bool operator==(const stop_token& a, const stop_token& b) noexcept {
    return a.state_ == b.state_;
  }

 private:
  friend class stop_source;
  friend class stop_callback;
  explicit stop_token(std::shared_ptr<detail::stop_state> s)
      : state_(std::move(s)) {}
  std::shared_ptr<detail::stop_state> state_;
};

/// Owns the stop state; request_stop() is idempotent and thread-safe.
class stop_source {
 public:
  stop_source() : state_(std::make_shared<detail::stop_state>()) {}

  stop_token get_token() const { return stop_token(state_); }

  /// Returns true if this call transitioned the state to "stopped".
  bool request_stop() noexcept {
    try {
      return state_->request();
    } catch (...) {
      // A throwing stop callback must not take down the canceller.
      return true;
    }
  }

  bool stop_requested() const noexcept {
    return state_->requested.load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<detail::stop_state> state_;
};

/// RAII callback registration: runs `cb` when stop is requested (on the
/// requesting thread), or immediately on construction if it already
/// was.  Deregisters on destruction.
class stop_callback {
 public:
  stop_callback(const stop_token& tok, std::function<void()> cb)
      : state_(tok.state_) {
    if (state_) {
      id_ = state_->add_callback(std::move(cb));
    } else {
      // Detached token: stop can never be requested; nothing to do.
    }
  }

  ~stop_callback() {
    if (state_) {
      state_->remove_callback(id_);
    }
  }

  stop_callback(const stop_callback&) = delete;
  stop_callback& operator=(const stop_callback&) = delete;

 private:
  std::shared_ptr<detail::stop_state> state_;
  std::uint64_t id_ = 0;
};

/// Fans several upstream stop tokens into one downstream stop state:
/// the fan-in's token observes a stop once ANY upstream source requests
/// one (or request_stop() is called on the fan-in directly).  The job
/// service composes a job's effective token this way — service-wide
/// shutdown, tenant-wide cancel and the job's own cancel all funnel
/// into the single token the job polls.  Detached upstream tokens
/// (stop_possible() == false) are ignored; an upstream that already
/// stopped trips the fan-in during construction.  Destroying the
/// fan-in unlinks every upstream callback.
class stop_fan_in {
 public:
  stop_fan_in() = default;

  stop_fan_in(std::initializer_list<stop_token> upstreams) {
    for (const auto& up : upstreams) {
      add(up);
    }
  }

  stop_fan_in(const stop_fan_in&) = delete;
  stop_fan_in& operator=(const stop_fan_in&) = delete;

  /// Links one more upstream token (no-op for detached tokens).
  void add(const stop_token& upstream) {
    if (!upstream.stop_possible()) {
      return;
    }
    links_.push_back(std::make_unique<stop_callback>(
        upstream, [src = source_]() mutable { src.request_stop(); }));
  }

  stop_token get_token() const { return source_.get_token(); }

  bool request_stop() noexcept { return source_.request_stop(); }

  bool stop_requested() const noexcept { return source_.stop_requested(); }

 private:
  stop_source source_;
  std::vector<std::unique_ptr<stop_callback>> links_;
};

}  // namespace hpxlite
