// hpxlite::dataflow — delayed function invocation gated on future
// arguments, the mechanism behind the paper's Section III-B (modified
// OP2 API):
//
//   return dataflow(unwrapping([&](op_dat dat){ ... }), dat_future);
//
// Semantics (matching hpx::dataflow / hpx::lcos::local::dataflow):
//   - any argument that is a future/shared_future delays the call until
//     it is ready; non-future arguments pass straight through
//   - the callable receives the *futures themselves*; wrap it in
//     unwrapping(f) to receive the contained values instead
//   - the call is scheduled as a runtime task once the last input
//     arrives ("As soon as the last input argument has been received,
//     the function F is scheduled for execution", Fig 11)
//   - if the callable itself returns a future, the result is unwrapped
//     one level, so chains of dataflow nodes compose without nesting
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <tuple>
#include <type_traits>
#include <utility>

#include "hpxlite/async.hpp"
#include "hpxlite/future.hpp"

namespace hpxlite {

namespace detail {

/// unwrapping(f) adaptor: replaces future arguments by their values at
/// invocation time.  shared_future yields a copy of the value, future
/// is consumed via get().
template <typename F>
struct unwrapping_adaptor {
  F fn;

  template <typename Arg>
  static decltype(auto) unwrap_one(Arg&& arg) {
    if constexpr (is_future_v<Arg>) {
      if constexpr (std::is_void_v<future_value_t<Arg>>) {
        // Void futures contribute no argument; callers use a tag.
        std::forward<Arg>(arg).get();
        return unit{};
      } else {
        return std::forward<Arg>(arg).get();
      }
    } else {
      return std::forward<Arg>(arg);
    }
  }

  template <typename... Args>
  decltype(auto) operator()(Args&&... args) {
    return invoke_filtered(std::forward_as_tuple(std::forward<Args>(args)...),
                           std::index_sequence_for<Args...>{});
  }

 private:
  // Void-future arguments are awaited but dropped from the call, so an
  // unwrapped callable never has to accept placeholder parameters.
  template <typename Tuple, std::size_t... Is>
  decltype(auto) invoke_filtered(Tuple&& tup, std::index_sequence<Is...>) {
    return invoke_drop_units(
        std::tuple_cat(keep_or_drop<Is>(std::forward<Tuple>(tup))...));
  }

  template <std::size_t I, typename Tuple>
  auto keep_or_drop(Tuple&& tup) {
    using elem_t = std::tuple_element_t<I, std::decay_t<Tuple>>;
    if constexpr (is_future_v<elem_t> &&
                  std::is_void_v<future_value_t<elem_t>>) {
      std::get<I>(std::forward<Tuple>(tup)).get();
      return std::tuple<>{};
    } else if constexpr (is_future_v<elem_t>) {
      return std::make_tuple(std::get<I>(std::forward<Tuple>(tup)).get());
    } else {
      return std::forward_as_tuple(std::get<I>(std::forward<Tuple>(tup)));
    }
  }

  template <typename Tuple>
  decltype(auto) invoke_drop_units(Tuple&& tup) {
    return std::apply(fn, std::forward<Tuple>(tup));
  }
};

/// Result type of invoking F on the decayed dataflow arguments.  The
/// stored arguments are MOVED into the call (futures are move-only), so
/// invocability is checked against rvalues.
template <typename F, typename... Ts>
using dataflow_result_t = std::invoke_result_t<F&, std::decay_t<Ts>&&...>;

/// future<future<U>> collapses to future<U>; everything else maps to
/// future<R> (R possibly void).
template <typename R>
struct unwrap_result {
  using type = future<R>;
  template <typename State, typename F, typename Tuple>
  static void fulfil(State& state, F& fn, Tuple& tup) {
    fulfil_from_invoke(state, [&] { return std::apply(fn, std::move(tup)); });
  }
};

template <typename U>
struct unwrap_result<future<U>> {
  using type = future<U>;
  template <typename State, typename F, typename Tuple>
  static void fulfil(State& state, F& fn, Tuple& tup) {
    try {
      future<U> inner = std::apply(fn, std::move(tup));
      if (!inner.valid()) {
        throw no_state();
      }
      auto inner_state = inner.release_state();
      inner_state->add_continuation(
          [state, inner_state] {
            try {
              if constexpr (std::is_void_v<U>) {
                inner_state->throw_if_exceptional();
                state->set_value(unit{});
              } else {
                state->set_value(inner_state->take_value());
              }
            } catch (...) {
              state->set_exception(std::current_exception());
            }
          },
          continuation_mode::inline_);
    } catch (...) {
      state->set_exception(std::current_exception());
    }
  }
};

template <typename R>
struct dataflow_value {
  using type = R;
};
template <typename U>
struct dataflow_value<future<U>> {
  using type = U;
};

/// Counts the future-typed arguments in Ts.
template <typename... Ts>
inline constexpr std::size_t future_arg_count_v =
    (0 + ... + (is_future_v<Ts> ? 1 : 0));

}  // namespace detail

/// Wraps `f` so that future arguments are passed as their values.
template <typename F>
auto unwrapping(F&& f) {
  return detail::unwrapping_adaptor<std::decay_t<F>>{std::forward<F>(f)};
}

/// Alias matching hpx::util::unwrapped from the paper's listings.
template <typename F>
auto unwrapped(F&& f) {
  return unwrapping(std::forward<F>(f));
}

/// Schedules f(args...) to run once every future among args is ready.
template <typename F, typename... Ts>
auto dataflow(launch policy, F&& f, Ts&&... args) ->
    typename detail::unwrap_result<detail::dataflow_result_t<F, Ts...>>::type {
  using R = detail::dataflow_result_t<F, Ts...>;
  using unwrapper = detail::unwrap_result<R>;
  using V = typename detail::dataflow_value<R>::type;

  auto state = std::make_shared<detail::shared_state<V>>();

  struct frame {
    std::decay_t<F> fn;
    std::tuple<std::decay_t<Ts>...> args;
    std::atomic<std::size_t> remaining;
    std::shared_ptr<detail::shared_state<V>> state;
    launch policy;

    frame(F&& f_, Ts&&... args_,
          std::shared_ptr<detail::shared_state<V>> state_, launch policy_)
        : fn(std::forward<F>(f_)),
          args(std::forward<Ts>(args_)...),
          remaining(0),
          state(std::move(state_)),
          policy(policy_) {}

    void run() {
      if (policy == launch::async) {
        auto self = this->shared_from_this_hack;
        // Prefer the arming worker's own pool (stays valid during a
        // teardown drain); fall back to the default instance, or run
        // inline when no runtime is up.
        if (runtime* rt = runtime::current()) {
          rt->submit(
              [self] { unwrapper::fulfil(self->state, self->fn, self->args); });
          return;
        }
        if (runtime::exists()) {
          runtime::get().submit(
              [self] { unwrapper::fulfil(self->state, self->fn, self->args); });
          return;
        }
      }
      unwrapper::fulfil(state, fn, args);
    }

    std::shared_ptr<frame> shared_from_this_hack;
  };

  auto fr = std::make_shared<frame>(std::forward<F>(f),
                                    std::forward<Ts>(args)..., state, policy);
  fr->shared_from_this_hack = fr;

  constexpr std::size_t nfutures = detail::future_arg_count_v<Ts...>;
  if constexpr (nfutures == 0) {
    fr->run();
    fr->shared_from_this_hack.reset();
    return typename unwrapper::type(std::move(state));
  } else {
    fr->remaining.store(nfutures, std::memory_order_relaxed);
    const auto arm = [&fr](auto& arg) {
      if constexpr (detail::is_future_v<decltype(arg)>) {
        HPXLITE_ASSERT(arg.valid(), "dataflow over an invalid future");
        auto keep = fr;
        arg.state()->add_continuation(
            [keep] {
              if (keep->remaining.fetch_sub(1, std::memory_order_acq_rel) ==
                  1) {
                keep->run();
                keep->shared_from_this_hack.reset();
              }
            },
            detail::continuation_mode::inline_);
      }
    };
    std::apply([&](auto&... as) { (arm(as), ...); }, fr->args);
    return typename unwrapper::type(std::move(state));
  }
}

/// Default policy: async (scheduled on the pool once inputs are ready).
template <typename F, typename... Ts,
          typename = std::enable_if_t<
              !std::is_same_v<std::decay_t<F>, launch> &&
              !std::is_same_v<std::decay_t<F>, stop_token>>>
auto dataflow(F&& f, Ts&&... args) {
  return dataflow(launch::async, std::forward<F>(f), std::forward<Ts>(args)...);
}

namespace detail {

/// Fire-time cancellation guard for dataflow nodes: polls the token
/// when the last input arrives, before the wrapped callable runs.  A
/// requested stop resolves the node's future to operation_cancelled
/// without invoking the callable (its kernel never runs) and the frame
/// — closure, argument futures and all — is released right after.
template <typename F>
struct stop_guarded {
  stop_token stop;
  F fn;

  template <typename... As>
  decltype(auto) operator()(As&&... as) {
    stop.throw_if_stopped();
    return fn(std::forward<As>(as)...);
  }
};

}  // namespace detail

/// Cancellable dataflow: like dataflow(policy, f, args...) but gated on
/// `stop`.  Cancelling after the node has been armed (even before its
/// inputs are ready) prevents the callable from ever running; the
/// returned future resolves to operation_cancelled instead.
template <typename F, typename... Ts>
auto dataflow(launch policy, stop_token stop, F&& f, Ts&&... args) {
  return dataflow(
      policy,
      detail::stop_guarded<std::decay_t<F>>{std::move(stop),
                                            std::decay_t<F>(std::forward<F>(f))},
      std::forward<Ts>(args)...);
}

}  // namespace hpxlite
