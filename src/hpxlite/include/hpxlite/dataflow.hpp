// hpxlite::dataflow — delayed function invocation gated on future
// arguments, the mechanism behind the paper's Section III-B (modified
// OP2 API):
//
//   return dataflow(unwrapping([&](op_dat dat){ ... }), dat_future);
//
// Semantics (matching hpx::dataflow / hpx::lcos::local::dataflow):
//   - any argument that is a future/shared_future delays the call until
//     it is ready; non-future arguments pass straight through
//   - the callable receives the *futures themselves*; wrap it in
//     unwrapping(f) to receive the contained values instead
//   - the call is scheduled as a runtime task once the last input
//     arrives ("As soon as the last input argument has been received,
//     the function F is scheduled for execution", Fig 11)
//   - if the callable itself returns a future, the result is unwrapped
//     one level, so chains of dataflow nodes compose without nesting
//
// A dataflow node is ONE pooled operation state: the result's shared
// state, the callable, the argument tuple and one intrusive arm per
// future input (the arm count is a compile-time constant, so the arms
// ride inline) — versus the historical shared-state + frame + one heap
// closure per input.  Arming allocates nothing.
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <optional>
#include <tuple>
#include <type_traits>
#include <utility>

#include "hpxlite/async.hpp"
#include "hpxlite/future.hpp"

namespace hpxlite {

namespace detail {

/// unwrapping(f) adaptor: replaces future arguments by their values at
/// invocation time.  shared_future yields a copy of the value, future
/// is consumed via get().
template <typename F>
struct unwrapping_adaptor {
  F fn;

  template <typename Arg>
  static decltype(auto) unwrap_one(Arg&& arg) {
    if constexpr (is_future_v<Arg>) {
      if constexpr (std::is_void_v<future_value_t<Arg>>) {
        // Void futures contribute no argument; callers use a tag.
        std::forward<Arg>(arg).get();
        return unit{};
      } else {
        return std::forward<Arg>(arg).get();
      }
    } else {
      return std::forward<Arg>(arg);
    }
  }

  template <typename... Args>
  decltype(auto) operator()(Args&&... args) {
    return invoke_filtered(std::forward_as_tuple(std::forward<Args>(args)...),
                           std::index_sequence_for<Args...>{});
  }

 private:
  // Void-future arguments are awaited but dropped from the call, so an
  // unwrapped callable never has to accept placeholder parameters.
  template <typename Tuple, std::size_t... Is>
  decltype(auto) invoke_filtered(Tuple&& tup, std::index_sequence<Is...>) {
    return invoke_drop_units(
        std::tuple_cat(keep_or_drop<Is>(std::forward<Tuple>(tup))...));
  }

  template <std::size_t I, typename Tuple>
  auto keep_or_drop(Tuple&& tup) {
    using elem_t = std::tuple_element_t<I, std::decay_t<Tuple>>;
    if constexpr (is_future_v<elem_t> &&
                  std::is_void_v<future_value_t<elem_t>>) {
      std::get<I>(std::forward<Tuple>(tup)).get();
      return std::tuple<>{};
    } else if constexpr (is_future_v<elem_t>) {
      return std::make_tuple(std::get<I>(std::forward<Tuple>(tup)).get());
    } else {
      return std::forward_as_tuple(std::get<I>(std::forward<Tuple>(tup)));
    }
  }

  template <typename Tuple>
  decltype(auto) invoke_drop_units(Tuple&& tup) {
    return std::apply(fn, std::forward<Tuple>(tup));
  }
};

/// Result type of invoking F on the decayed dataflow arguments.  The
/// stored arguments are MOVED into the call (futures are move-only), so
/// invocability is checked against rvalues.
template <typename F, typename... Ts>
using dataflow_result_t = std::invoke_result_t<F&, std::decay_t<Ts>&&...>;

/// future<future<U>> collapses to future<U>; everything else maps to
/// future<R> (R possibly void).
template <typename R>
struct unwrap_result {
  using type = future<R>;
  template <typename State, typename F, typename Tuple>
  static void fulfil(State& state, F& fn, Tuple& tup) {
    fulfil_from_invoke(state, [&] { return std::apply(fn, std::move(tup)); });
  }
};

template <typename U>
struct unwrap_result<future<U>> {
  using type = future<U>;
  template <typename State, typename F, typename Tuple>
  static void fulfil(State& state, F& fn, Tuple& tup) {
    try {
      future<U> inner = std::apply(fn, std::move(tup));
      if (!inner.valid()) {
        throw no_state();
      }
      auto inner_state = inner.release_state();
      inner_state->add_continuation(
          [state, inner_state] {
            try {
              if constexpr (std::is_void_v<U>) {
                inner_state->throw_if_exceptional();
                state->set_value(unit{});
              } else {
                state->set_value(inner_state->take_value());
              }
            } catch (const operation_cancelled&) {
              state->set_stopped(std::current_exception());
            } catch (...) {
              state->set_error(std::current_exception());
            }
          },
          continuation_mode::inline_);
    } catch (const operation_cancelled&) {
      state->set_stopped(std::current_exception());
    } catch (...) {
      state->set_error(std::current_exception());
    }
  }
};

template <typename R>
struct dataflow_value {
  using type = R;
};
template <typename U>
struct dataflow_value<future<U>> {
  using type = U;
};

/// Counts the future-typed arguments in Ts.
template <typename... Ts>
inline constexpr std::size_t future_arg_count_v =
    (0 + ... + (is_future_v<Ts> ? 1 : 0));

/// The dataflow operation state: result state, callable, argument
/// tuple, completion countdown and the input arms — one object, one
/// pooled allocation.  `self` is the keepalive that survives from
/// arming until the node body has been scheduled.
template <typename V, typename F, typename... Ts>
struct dataflow_op final {
  static constexpr std::size_t nfutures = future_arg_count_v<Ts...>;

  struct arm final : continuation_node {
    dataflow_op* owner = nullptr;
    arm() {
      fire = &dataflow_op::arm_fire;
      abandon = &dataflow_op::arm_abandon;
      mode = continuation_mode::inline_;
    }
  };

  shared_state<V> result;
  F fn;
  std::tuple<std::decay_t<Ts>...> args;
  std::atomic<std::size_t> remaining{nfutures};
  launch policy;
  std::array<arm, nfutures == 0 ? 1 : nfutures> arms;
  std::shared_ptr<dataflow_op> self;

  template <typename Fc, typename... Tc>
  dataflow_op(launch policy_, Fc&& f_, Tc&&... args_)
      : fn(std::forward<Fc>(f_)),
        args(std::forward<Tc>(args_)...),
        policy(policy_) {
    for (auto& a : arms) {
      a.owner = this;
    }
  }

  static void arm_fire(continuation_node* node) {
    auto* owner = static_cast<arm*>(node)->owner;
    if (owner->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      run(std::move(owner->self));
    }
  }

  static void arm_abandon(continuation_node* node) noexcept {
    // An input state died unresolved; unreachable in practice (the held
    // argument futures pin every input), kept defensive: resolve the
    // node exceptionally so downstream consumers are not left hanging.
    auto* owner = static_cast<arm*>(node)->owner;
    if (owner->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      auto keep = std::move(owner->self);
      owner->result.set_error(std::make_exception_ptr(broken_promise()));
    }
  }

  /// Last input arrived: schedule (or run) the body.  `keep` is the
  /// arming keepalive; the submit thunk takes it over, so the op stays
  /// alive through execution even if the consumer drops the future.
  static void run(std::shared_ptr<dataflow_op> keep) {
    if (keep->policy == launch::async) {
      // Prefer the arming worker's own pool (stays valid during a
      // teardown drain); fall back to the default instance, or run
      // inline when no runtime is up.
      runtime* rt = runtime::current();
      if (rt == nullptr && runtime::exists()) {
        rt = &runtime::get();
      }
      if (rt != nullptr) {
        auto thunk = [keep = std::move(keep)]() mutable {
          invoke(std::move(keep));
        };
        static_assert(task_function::stores_inline<decltype(thunk)>,
                      "dataflow body thunk must ride in the task_function "
                      "small buffer");
        rt->submit(std::move(thunk));
        return;
      }
    }
    invoke(std::move(keep));
  }

  static void invoke(std::shared_ptr<dataflow_op> keep) {
    using unwrapper = unwrap_result<dataflow_result_t<F, Ts...>>;
    dataflow_op* op = keep.get();
    // Nested-future unwrapping parks a continuation that must pin this
    // op, so the result state is handed over as an aliased shared_ptr
    // (no allocation — it shares the op's control block).
    shared_state_ptr<V> state(keep, &op->result);
    keep.reset();
    unwrapper::fulfil(state, op->fn, op->args);
  }
};

}  // namespace detail

/// Wraps `f` so that future arguments are passed as their values.
template <typename F>
auto unwrapping(F&& f) {
  return detail::unwrapping_adaptor<std::decay_t<F>>{std::forward<F>(f)};
}

/// Alias matching hpx::util::unwrapped from the paper's listings.
template <typename F>
auto unwrapped(F&& f) {
  return unwrapping(std::forward<F>(f));
}

/// Schedules f(args...) to run once every future among args is ready.
template <typename F, typename... Ts>
auto dataflow(launch policy, F&& f, Ts&&... args) ->
    typename detail::unwrap_result<detail::dataflow_result_t<F, Ts...>>::type {
  using R = detail::dataflow_result_t<F, Ts...>;
  using unwrapper = detail::unwrap_result<R>;
  using V = typename detail::dataflow_value<R>::type;
  using op_t = detail::dataflow_op<V, std::decay_t<F>, Ts...>;

  auto op = detail::make_pooled<op_t>(policy, std::forward<F>(f),
                                      std::forward<Ts>(args)...);
  // The result alias is created before arming so the op outlives any
  // inline fire triggered while the remaining inputs are still walked.
  detail::shared_state_ptr<V> state(op, &op->result);

  if constexpr (op_t::nfutures == 0) {
    op_t::run(std::move(op));
  } else {
    op->self = op;
    std::size_t idx = 0;
    const auto arm_one = [&](auto& arg) {
      if constexpr (detail::is_future_v<decltype(arg)>) {
        HPXLITE_ASSERT(arg.valid(), "dataflow over an invalid future");
        arg.state()->add_continuation(&op->arms[idx++]);
      }
    };
    std::apply([&](auto&... as) { (arm_one(as), ...); }, op->args);
  }
  return typename unwrapper::type(std::move(state));
}

/// Default policy: async (scheduled on the pool once inputs are ready).
template <typename F, typename... Ts,
          typename = std::enable_if_t<
              !std::is_same_v<std::decay_t<F>, launch> &&
              !std::is_same_v<std::decay_t<F>, stop_token>>>
auto dataflow(F&& f, Ts&&... args) {
  return dataflow(launch::async, std::forward<F>(f), std::forward<Ts>(args)...);
}

namespace detail {

/// Fire-time cancellation guard for dataflow nodes: polls the token
/// when the last input arrives, before the wrapped callable runs.  A
/// requested stop resolves the node's future to operation_cancelled
/// without invoking the callable (its kernel never runs) and the op
/// state — closure, argument futures and all — is released right after.
template <typename F>
struct stop_guarded {
  stop_token stop;
  F fn;

  template <typename... As>
  decltype(auto) operator()(As&&... as) {
    stop.throw_if_stopped();
    return fn(std::forward<As>(as)...);
  }
};

}  // namespace detail

/// Cancellable dataflow: like dataflow(policy, f, args...) but gated on
/// `stop`.  Cancelling after the node has been armed (even before its
/// inputs are ready) prevents the callable from ever running; the
/// returned future resolves to operation_cancelled instead.
template <typename F, typename... Ts>
auto dataflow(launch policy, stop_token stop, F&& f, Ts&&... args) {
  return dataflow(
      policy,
      detail::stop_guarded<std::decay_t<F>>{std::move(stop),
                                            std::decay_t<F>(std::forward<F>(f))},
      std::forward<Ts>(args)...);
}

}  // namespace hpxlite
