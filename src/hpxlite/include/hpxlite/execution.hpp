// Execution policies and chunkers (grain-size control).
//
// The paper's listings use exactly this surface:
//
//   hpx::parallel::for_each(par, r.begin(), r.end(), body);
//   hpx::parallel::for_each(par(task), ...);           // -> future<void>
//   static_chunk_size scs(size);
//   hpx::parallel::for_each(par.with(scs), ...);
//
// Grain size ("the amount of time a task takes to execute") is decided
// by a chunker:
//   auto_chunk_size    — the paper's auto-partitioner: sequentially
//                        execute ~1% of the loop, time it, and size
//                        chunks so each takes ~target task time
//   static_chunk_size  — fixed iterations per task
//   dynamic_chunk_size — workers repeatedly grab fixed-size chunks off a
//                        shared counter (load balancing for irregular
//                        bodies)
//   guided_chunk_size  — exponentially decreasing chunks
//   adaptive_chunk_size — chunk chosen by a grain_controller tuned from
//                        whole-run wall-time feedback (no serial probe)
#pragma once

#include <chrono>
#include <cstddef>
#include <memory>
#include <variant>

#include "hpxlite/stop_token.hpp"

namespace hpxlite {

class grain_controller;

/// The paper's auto-partitioner.  `measure_fraction` of the iteration
/// space (at least one iteration) is executed sequentially and timed;
/// the chunk size is then chosen so one chunk costs ~`target_task_time`.
struct auto_chunk_size {
  double measure_fraction = 0.01;
  std::chrono::microseconds target_task_time{200};
};

/// Fixed number of iterations per task.
struct static_chunk_size {
  explicit static_chunk_size(std::size_t s) : size(s == 0 ? 1 : s) {}
  std::size_t size;
};

/// Workers pull `size`-iteration chunks off a shared atomic counter.
struct dynamic_chunk_size {
  explicit dynamic_chunk_size(std::size_t s) : size(s == 0 ? 1 : s) {}
  std::size_t size;
};

/// OpenMP-guided-style: each grab takes remaining/(k*workers), floored
/// at `min_size`.
struct guided_chunk_size {
  explicit guided_chunk_size(std::size_t min = 1)
      : min_size(min == 0 ? 1 : min) {}
  std::size_t min_size;
};

/// Feedback-tuned grain: the chunk is whatever the attached
/// grain_controller currently believes is best (see
/// grain_controller.hpp).  The algorithm never probes; the owner of the
/// controller feeds it whole-run wall times between invocations.  A
/// null controller degrades to the reduce-style n/(4*workers) split.
struct adaptive_chunk_size {
  std::shared_ptr<grain_controller> controller;
};

using chunk_spec =
    std::variant<auto_chunk_size, static_chunk_size, dynamic_chunk_size,
                 guided_chunk_size, adaptive_chunk_size>;

/// Tag selecting the task (asynchronous) flavour of a policy: par(task).
struct task_policy_tag {};
inline constexpr task_policy_tag task{};

class parallel_task_policy;

/// Synchronous parallel execution policy (like hpx::parallel::par).
class parallel_policy {
 public:
  parallel_policy() = default;
  explicit parallel_policy(chunk_spec chunk, stop_token stop = {})
      : chunk_(chunk), stop_(std::move(stop)) {}

  /// par(task) — asynchronous flavour returning futures.
  parallel_task_policy operator()(task_policy_tag) const;

  /// par.with(chunker) — same policy with an explicit grain size.
  parallel_policy with(chunk_spec chunk) const {
    return parallel_policy(chunk, stop_);
  }

  /// par.with(token) — same policy, cancellable: workers poll the token
  /// between chunks and resolve the join future to operation_cancelled.
  parallel_policy with(stop_token stop) const {
    return parallel_policy(chunk_, std::move(stop));
  }

  const chunk_spec& chunk() const { return chunk_; }
  const stop_token& stop() const { return stop_; }

 private:
  chunk_spec chunk_ = auto_chunk_size{};
  stop_token stop_;
};

/// Asynchronous parallel execution policy (like par(task)); algorithms
/// run under it return future<> instead of blocking.
class parallel_task_policy {
 public:
  parallel_task_policy() = default;
  explicit parallel_task_policy(chunk_spec chunk, stop_token stop = {})
      : chunk_(chunk), stop_(std::move(stop)) {}

  parallel_task_policy with(chunk_spec chunk) const {
    return parallel_task_policy(chunk, stop_);
  }

  parallel_task_policy with(stop_token stop) const {
    return parallel_task_policy(chunk_, std::move(stop));
  }

  const chunk_spec& chunk() const { return chunk_; }
  const stop_token& stop() const { return stop_; }

 private:
  chunk_spec chunk_ = auto_chunk_size{};
  stop_token stop_;
};

inline parallel_task_policy parallel_policy::operator()(
    task_policy_tag) const {
  return parallel_task_policy(chunk_, stop_);
}

/// Sequential policy (reference semantics for tests/benchmarks).
class sequenced_policy {
 public:
  constexpr sequenced_policy() = default;
};

inline const parallel_policy par{};
inline constexpr sequenced_policy seq{};

namespace detail {

template <typename Policy>
inline constexpr bool is_task_policy_v =
    std::is_same_v<std::decay_t<Policy>, parallel_task_policy>;

}  // namespace detail

}  // namespace hpxlite
